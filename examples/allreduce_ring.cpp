// Ring allreduce over the TCA sub-cluster, against the MPI/IB baseline.
//
// Sums a vector of doubles distributed across all nodes with
// tca::coll::Communicator::allreduce_sum — the communicator runs the classic
// two-phase ring (reduce-scatter + allgather) with chunked pipelining,
// host-carried relay of each step's fold and doorbell-flag completion; the
// hand-rolled ring loop this example used to carry now lives in src/coll. The identical
// algorithm also runs over the conventional MPI/IB stack
// (baseline::Collectives). Both verify against a locally computed reference
// sum, and because both stacks apply the floating-point additions in the
// same ring order, the TCA and MPI results must match bit for bit.
//
// Run: ./allreduce_ring
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "api/tca.h"
#include "baseline/collectives.h"
#include "baseline/ib_fabric.h"
#include "baseline/mpi_lite.h"
#include "coll/communicator.h"

using namespace tca;

namespace {

constexpr std::uint32_t kNodes = 4;
constexpr std::size_t kElems = 16384;  // doubles per node (divisible by 4)

/// Same collective over the conventional stack, with the vectors GPU-
/// resident like the TCA run: cudaMemcpy D2H, host allreduce over MPI/IB,
/// cudaMemcpy H2D. Returns elapsed time.
TimePs run_mpi_allreduce(std::vector<std::vector<double>>& data) {
  sim::Scheduler sched;
  std::vector<std::unique_ptr<node::ComputeNode>> nodes;
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    nodes.push_back(std::make_unique<node::ComputeNode>(
        sched, static_cast<int>(i),
        node::NodeConfig{.gpu_count = 2,
                         .host_backing_bytes = 32 << 20,
                         .gpu_backing_bytes = 8 << 20}));
  }
  std::vector<node::ComputeNode*> ptrs;
  for (auto& p : nodes) ptrs.push_back(p.get());
  baseline::IbFabric fabric(sched, ptrs);
  baseline::MpiLite mpi(sched, fabric);
  baseline::Collectives coll(mpi, kNodes);

  // Load the vectors into GPU memory first (both runs start GPU-resident).
  for (std::uint32_t r = 0; r < kNodes; ++r) {
    nodes[r]->gpu(0).poke(0, std::as_bytes(std::span(data[r])));
  }

  const TimePs t0 = sched.now();
  for (std::uint32_t r = 0; r < kNodes; ++r) {
    sim::spawn([](baseline::Collectives& c, node::ComputeNode& n,
                  std::uint32_t rank, std::span<double> d) -> sim::Task<> {
      // Step 1: cudaMemcpy D2H of the whole vector.
      co_await n.gpu(0).memcpy_d2h(0, std::as_writable_bytes(d));
      // Step 2: host-side ring allreduce over MPI/IB.
      co_await c.allreduce_sum(rank, d);
      // Step 3: cudaMemcpy H2D of the result.
      co_await n.gpu(0).memcpy_h2d(std::as_bytes(d), 0);
    }(coll, *nodes[r], r, std::span(data[r])));
  }
  sched.run();
  return sched.now() - t0;
}

}  // namespace

int main() {
  sim::Scheduler sched;
  api::Runtime rt(sched, api::TcaConfig{.spec = fabric::TopologySpec::ring(kNodes)});
  auto comm_result = coll::Communicator::create(rt);
  if (!comm_result.is_ok()) {
    std::printf("communicator creation failed: %s\n",
                comm_result.status().message().c_str());
    return 1;
  }
  coll::Communicator& comm = comm_result.value();

  std::vector<api::Buffer> gpu(kNodes);
  std::vector<double> reference(kElems, 0.0);
  std::vector<std::vector<double>> init(kNodes);
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    init[n].resize(kElems);
    for (std::size_t i = 0; i < kElems; ++i) {
      init[n][i] = std::sin(0.001 * static_cast<double>(i * (n + 1)));
      reference[i] += init[n][i];
    }
    gpu[n] = rt.alloc_gpu(n, 0, kElems * sizeof(double)).value();
    rt.write(gpu[n], 0, std::as_bytes(std::span(init[n])));
  }

  const TimePs t0 = sched.now();
  std::vector<Status> status(kNodes);
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    sim::spawn([](coll::Communicator& c, api::Buffer buf, std::uint32_t rank,
                  Status& out) -> sim::Task<> {
      out = co_await c.allreduce_sum(rank, buf, 0, kElems);
    }(comm, gpu[n], n, status[n]));
  }
  sched.run();
  const TimePs elapsed = sched.now() - t0;
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    if (!status[n].is_ok()) {
      std::printf("rank %u allreduce failed: %s\n", n,
                  status[n].message().c_str());
      return 1;
    }
  }

  // Verify every rank holds the global sum (same FP order on every rank by
  // construction of the ring schedule, so all ranks agree bitwise).
  std::vector<std::vector<double>> tca_result(kNodes);
  double max_err = 0;
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    tca_result[n].resize(kElems);
    rt.read(gpu[n], 0, std::as_writable_bytes(std::span(tca_result[n])));
    for (std::size_t i = 0; i < kElems; ++i) {
      max_err =
          std::max(max_err, std::abs(tca_result[n][i] - reference[i]));
    }
  }

  // Same algorithm over the MPI/IB baseline, from the same initial data.
  std::vector<std::vector<double>> mpi_data = init;
  const TimePs mpi_elapsed = run_mpi_allreduce(mpi_data);
  double mpi_max_err = 0;
  bool bitwise_match = true;
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    for (std::size_t i = 0; i < kElems; ++i) {
      mpi_max_err = std::max(mpi_max_err,
                             std::abs(mpi_data[n][i] - reference[i]));
      if (std::memcmp(&mpi_data[n][i], &tca_result[n][i], sizeof(double)) !=
          0) {
        bitwise_match = false;
      }
    }
  }

  const std::uint64_t vector_bytes = kElems * sizeof(double);
  const std::uint64_t chunk_bytes = vector_bytes / kNodes;
  std::printf("allreduce_ring: %u nodes, %zu doubles (%s)\n", kNodes, kElems,
              units::format_size(vector_bytes).c_str());
  std::printf("  elapsed   TCA    : %s\n",
              units::format_time(elapsed).c_str());
  std::printf("  elapsed   MPI/IB : %s  (%.2fx)\n",
              units::format_time(mpi_elapsed).c_str(),
              static_cast<double>(mpi_elapsed) /
                  static_cast<double>(elapsed));
  std::printf("  algorithm bytes  : %s on the wire per node\n",
              units::format_size(2 * (kNodes - 1) * chunk_bytes).c_str());
  std::printf("  max |error| TCA  : %.3e %s\n", max_err,
              max_err < 1e-9 ? "(OK)" : "(FAILED)");
  std::printf("  max |error| MPI  : %.3e %s\n", mpi_max_err,
              mpi_max_err < 1e-9 ? "(OK)" : "(FAILED)");
  std::printf("  TCA == MPI       : %s\n",
              bitwise_match ? "bitwise identical (OK)" : "MISMATCH (FAILED)");
  std::printf(
      "\nNote: tca::coll stages the first GPU chunk D2H and then forwards\n"
      "every later ring step from the host-carried fold of the previous\n"
      "step, so the pipeline runs at wire rate instead of GPU BAR1 read\n"
      "speed — see bench_coll_allreduce for the full size sweep and\n"
      "crossover against the conventional stack.\n");
  return (max_err < 1e-9 && mpi_max_err < 1e-9 && bitwise_match) ? 0 : 1;
}
