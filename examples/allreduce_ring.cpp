// Ring allreduce over the TCA sub-cluster, against the MPI/IB baseline.
//
// Sums a vector of doubles distributed across all nodes using the classic
// two-phase ring algorithm (reduce-scatter + allgather), with the chunk
// puts going GPU-to-GPU through PEACH2 and completion signaled by PIO
// flags. The identical algorithm also runs over the conventional MPI/IB
// stack (baseline::Collectives). Both verify against a locally computed
// reference sum; the elapsed times are compared.
//
// Run: ./allreduce_ring
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "api/tca.h"
#include "baseline/collectives.h"
#include "baseline/ib_fabric.h"
#include "baseline/mpi_lite.h"

using namespace tca;

namespace {

constexpr std::uint32_t kNodes = 4;
constexpr std::size_t kElems = 16384;  // doubles per node (divisible by 4)
constexpr std::size_t kChunk = kElems / kNodes;
constexpr std::uint64_t kChunkBytes = kChunk * sizeof(double);

/// Per-node state: working vector (host mirror of the GPU buffer) plus a
/// staging area at the top of the GPU buffer for incoming chunks.
struct Rank {
  std::vector<double> data;       // kElems working values
  api::Buffer gpu;                // kElems doubles + one staging chunk
  api::Buffer flags;              // host flags
};

sim::Task<> ring_allreduce(api::Runtime& rt, std::vector<Rank>& ranks,
                           std::uint32_t me, sim::Barrier& barrier) {
  const std::uint32_t next = (me + 1) % kNodes;
  constexpr std::uint64_t kStagingOff = kElems * sizeof(double);
  Rank& self = ranks[me];
  std::uint32_t flag_seq = 1;

  // Phase 1: reduce-scatter. Step s: send chunk (me - s) to the next rank,
  // which accumulates it into its own copy.
  for (std::uint32_t s = 0; s < kNodes - 1; ++s) {
    const std::uint32_t send_chunk = (me + kNodes - s) % kNodes;
    const std::uint32_t recv_chunk = (me + kNodes - s - 1) % kNodes;

    // Put my chunk into the neighbor's staging area, then raise its flag.
    rt.write(self.gpu, send_chunk * kChunkBytes,
             std::as_bytes(std::span(self.data.data() + send_chunk * kChunk,
                                     kChunk)));
    co_await rt.memcpy_peer(ranks[next].gpu, kStagingOff, self.gpu,
                            send_chunk * kChunkBytes, kChunkBytes);
    co_await rt.notify(me, ranks[next].flags, 0, flag_seq);

    // Wait for the chunk arriving at me, accumulate it.
    co_await rt.wait_flag(self.flags, 0, flag_seq);
    std::vector<double> incoming(kChunk);
    rt.read(self.gpu, kStagingOff,
            std::as_writable_bytes(std::span(incoming)));
    for (std::size_t i = 0; i < kChunk; ++i) {
      self.data[recv_chunk * kChunk + i] += incoming[i];
    }
    ++flag_seq;
    co_await barrier.arrive();
  }

  // Phase 2: allgather. Step s: forward the fully reduced chunk.
  for (std::uint32_t s = 0; s < kNodes - 1; ++s) {
    const std::uint32_t send_chunk = (me + 1 + kNodes - s) % kNodes;
    const std::uint32_t recv_chunk = (me + kNodes - s) % kNodes;

    rt.write(self.gpu, send_chunk * kChunkBytes,
             std::as_bytes(std::span(self.data.data() + send_chunk * kChunk,
                                     kChunk)));
    co_await rt.memcpy_peer(ranks[next].gpu, kStagingOff, self.gpu,
                            send_chunk * kChunkBytes, kChunkBytes);
    co_await rt.notify(me, ranks[next].flags, 0, flag_seq);

    co_await rt.wait_flag(self.flags, 0, flag_seq);
    std::vector<double> incoming(kChunk);
    rt.read(self.gpu, kStagingOff,
            std::as_writable_bytes(std::span(incoming)));
    std::memcpy(self.data.data() + recv_chunk * kChunk, incoming.data(),
                kChunkBytes);
    ++flag_seq;
    co_await barrier.arrive();
  }
}

/// Same collective over the conventional stack, with the vectors GPU-
/// resident like the TCA run: cudaMemcpy D2H, host allreduce over MPI/IB,
/// cudaMemcpy H2D. Returns elapsed time.
TimePs run_mpi_allreduce(std::vector<std::vector<double>>& data) {
  sim::Scheduler sched;
  std::vector<std::unique_ptr<node::ComputeNode>> nodes;
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    nodes.push_back(std::make_unique<node::ComputeNode>(
        sched, static_cast<int>(i),
        node::NodeConfig{.gpu_count = 2,
                         .host_backing_bytes = 32 << 20,
                         .gpu_backing_bytes = 8 << 20}));
  }
  std::vector<node::ComputeNode*> ptrs;
  for (auto& p : nodes) ptrs.push_back(p.get());
  baseline::IbFabric fabric(sched, ptrs);
  baseline::MpiLite mpi(sched, fabric);
  baseline::Collectives coll(mpi, kNodes);

  // Load the vectors into GPU memory first (both runs start GPU-resident).
  for (std::uint32_t r = 0; r < kNodes; ++r) {
    nodes[r]->gpu(0).poke(0, std::as_bytes(std::span(data[r])));
  }

  const TimePs t0 = sched.now();
  for (std::uint32_t r = 0; r < kNodes; ++r) {
    sim::spawn([](baseline::Collectives& c, node::ComputeNode& n,
                  std::uint32_t rank, std::span<double> d) -> sim::Task<> {
      // Step 1: cudaMemcpy D2H of the whole vector.
      co_await n.gpu(0).memcpy_d2h(0, std::as_writable_bytes(d));
      // Step 2: host-side ring allreduce over MPI/IB.
      co_await c.allreduce_sum(rank, d);
      // Step 3: cudaMemcpy H2D of the result.
      co_await n.gpu(0).memcpy_h2d(std::as_bytes(d), 0);
    }(coll, *nodes[r], r, std::span(data[r])));
  }
  sched.run();
  return sched.now() - t0;
}

}  // namespace

int main() {
  sim::Scheduler sched;
  api::Runtime rt(sched, api::TcaConfig{.node_count = kNodes});
  sim::Barrier barrier(sched, kNodes);

  std::vector<Rank> ranks(kNodes);
  std::vector<double> reference(kElems, 0.0);
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    Rank& r = ranks[n];
    r.data.resize(kElems);
    for (std::size_t i = 0; i < kElems; ++i) {
      r.data[i] = std::sin(0.001 * static_cast<double>(i * (n + 1)));
      reference[i] += r.data[i];
    }
    r.gpu = rt.alloc_gpu(n, 0, (kElems + kChunk) * sizeof(double)).value();
    r.flags = rt.alloc_host(n, 64).value();
  }

  const TimePs t0 = sched.now();
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    sim::spawn(ring_allreduce(rt, ranks, n, barrier));
  }
  sched.run();
  const TimePs elapsed = sched.now() - t0;

  // Verify every rank holds the exact global sum (same FP order on every
  // rank by construction of the ring schedule: chunk i is always reduced in
  // rank order i+1, i+2, ... so results are bitwise identical).
  double max_err = 0;
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    for (std::size_t i = 0; i < kElems; ++i) {
      max_err = std::max(max_err,
                         std::abs(ranks[n].data[i] - reference[i]));
    }
  }

  // Same algorithm over the MPI/IB baseline, from the same initial data.
  std::vector<std::vector<double>> mpi_data(kNodes);
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    mpi_data[n].resize(kElems);
    for (std::size_t i = 0; i < kElems; ++i) {
      mpi_data[n][i] = std::sin(0.001 * static_cast<double>(i * (n + 1)));
    }
  }
  const TimePs mpi_elapsed = run_mpi_allreduce(mpi_data);
  double mpi_max_err = 0;
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    for (std::size_t i = 0; i < kElems; ++i) {
      mpi_max_err = std::max(mpi_max_err,
                             std::abs(mpi_data[n][i] - reference[i]));
    }
  }

  const std::uint64_t vector_bytes = kElems * sizeof(double);
  std::printf("allreduce_ring: %u nodes, %zu doubles (%s)\n", kNodes, kElems,
              units::format_size(vector_bytes).c_str());
  std::printf("  elapsed   TCA    : %s\n",
              units::format_time(elapsed).c_str());
  std::printf("  elapsed   MPI/IB : %s  (%.2fx)\n",
              units::format_time(mpi_elapsed).c_str(),
              static_cast<double>(mpi_elapsed) /
                  static_cast<double>(elapsed));
  std::printf("  algorithm bytes  : %s on the wire per node\n",
              units::format_size(2 * (kNodes - 1) * kChunkBytes).c_str());
  std::printf("  max |error| TCA  : %.3e %s\n", max_err,
              max_err < 1e-9 ? "(OK)" : "(FAILED)");
  std::printf("  max |error| MPI  : %.3e %s\n", mpi_max_err,
              mpi_max_err < 1e-9 ? "(OK)" : "(FAILED)");
  std::printf(
      "\nNote: at this vector size the TCA run is bounded by the paper's\n"
      "830 MB/s GPU *read* ceiling (every ring step DMA-reads a GPU-resident\n"
      "chunk), while the staged baseline reads the GPU once via cudaMemcpy.\n"
      "TCA's win is the latency-bound regime — see pingpong and\n"
      "bench_tca_vs_ib for the crossover.\n");
  return (max_err < 1e-9 && mpi_max_err < 1e-9) ? 0 : 1;
}
