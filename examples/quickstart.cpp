// Quickstart: GPU-to-GPU put across nodes through the TCA fabric.
//
// Builds a 2-node sub-cluster, allocates pinned GPU buffers on both nodes,
// and moves data from node 0's GPU directly into node 1's GPU — no host
// staging, no MPI. Verifies the bytes and reports the simulated latency and
// bandwidth.
//
// Run: ./quickstart
#include <cstdio>
#include <vector>

#include "api/tca.h"

using namespace tca;

int main() {
  sim::Scheduler sched;
  api::Runtime rt(sched, api::TcaConfig{.spec = fabric::TopologySpec::ring(2)});

  // cuMemAlloc + GPUDirect pinning on each node, one call.
  auto src = rt.alloc_gpu(/*node=*/0, /*gpu=*/0, 1 << 20);
  auto dst = rt.alloc_gpu(/*node=*/1, /*gpu=*/0, 1 << 20);
  if (!src.is_ok() || !dst.is_ok()) {
    std::fprintf(stderr, "allocation failed\n");
    return 1;
  }

  // Fill the source GPU buffer with a recognizable pattern.
  std::vector<std::byte> data(1 << 20);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i * 2654435761u >> 24);
  }
  rt.write(src.value(), 0, data);

  // One cudaMemcpyPeer-style call: node 0's PEACH2 reads its GPU over PCIe
  // and puts the bytes into node 1's GPU through the ring.
  const TimePs t0 = sched.now();
  auto copy = rt.memcpy_peer(dst.value(), 0, src.value(), 0, data.size());
  sched.run();
  const TimePs elapsed = sched.now() - t0;

  if (!copy.result().is_ok()) {
    std::fprintf(stderr, "memcpy_peer failed: %s\n",
                 copy.result().to_string().c_str());
    return 1;
  }

  std::vector<std::byte> out(data.size());
  rt.read(dst.value(), 0, out);
  if (out != data) {
    std::fprintf(stderr, "FAILED: data mismatch after transfer\n");
    return 1;
  }

  std::printf("quickstart: moved %zu bytes GPU(node0) -> GPU(node1)\n",
              data.size());
  std::printf("  elapsed   : %s\n", units::format_time(elapsed).c_str());
  std::printf("  bandwidth : %.2f Gbytes/sec\n",
              units::gbytes_per_second(data.size(), elapsed));
  std::printf("  data check: OK\n");

  // Short-message path: a 4-byte flag via PIO, the paper's low-latency
  // mechanism.
  auto flag = rt.alloc_host(1, 64);
  const TimePs t1 = sched.now();
  auto notify = rt.notify(0, flag.value(), 0, 1);
  auto wait = rt.wait_flag(flag.value(), 0, 1);
  sched.run();
  std::printf("  4-byte PIO notify latency: %s\n",
              units::format_time(sched.now() - t1).c_str());
  return 0;
}
