// Distributed matrix transpose: the all-to-all pattern (FFT-style) over
// the TCA sub-cluster vs the MPI/IB baseline.
//
// An N x N matrix of doubles is row-block distributed across 4 nodes, GPU
// resident. Transposing it requires every node to exchange a sub-block with
// every other node — the communication pattern of multidimensional FFTs.
// On TCA each node puts all of its outgoing rows with ONE descriptor chain
// ("block-stride transfer ... effective by using the chaining DMA
// mechanism"), then transposes locally. The MPI baseline packs, exchanges
// with sendrecv, and unpacks. Both verify against a serial reference.
//
// Run: ./transpose
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "api/tca.h"
#include "baseline/ib_fabric.h"
#include "baseline/mpi_lite.h"
#include "sim/sync.h"

using namespace tca;

namespace {

constexpr std::uint32_t kNodes = 4;
constexpr std::size_t kN = 128;                   // matrix is kN x kN
constexpr std::size_t kRowsPer = kN / kNodes;     // rows per node
constexpr std::size_t kColsPer = kN / kNodes;     // block width
constexpr std::uint64_t kRowBytes = kN * sizeof(double);
constexpr std::uint64_t kBlockRowBytes = kColsPer * sizeof(double);

double element(std::size_t r, std::size_t c) {
  return static_cast<double>(r) * 1000.0 + static_cast<double>(c);
}

/// Node i's row block (rows [i*kRowsPer, (i+1)*kRowsPer)).
std::vector<double> make_block(std::uint32_t node) {
  std::vector<double> block(kRowsPer * kN);
  for (std::size_t r = 0; r < kRowsPer; ++r) {
    for (std::size_t c = 0; c < kN; ++c) {
      block[r * kN + c] = element(node * kRowsPer + r, c);
    }
  }
  return block;
}

/// After the exchange, node j holds, for each source i, a kRowsPer x
/// kColsPer sub-block in its staging area; this unpacks them into node j's
/// transposed row block (rows [j*kColsPer...], i.e. original columns).
void unpack_transpose(std::uint32_t /*me*/,
                      const std::vector<double>& staging,
                      std::vector<double>& out) {
  // staging layout: [src_node][src_row][col] of the sub-block destined to
  // me; out: kRowsPer rows of the transposed matrix.
  for (std::uint32_t src = 0; src < kNodes; ++src) {
    for (std::size_t r = 0; r < kRowsPer; ++r) {
      for (std::size_t c = 0; c < kColsPer; ++c) {
        const double v =
            staging[(src * kRowsPer + r) * kColsPer + c];
        // Original element (src*kRowsPer + r, me*kColsPer + c) lands at
        // transposed position (me*kColsPer + c, src*kRowsPer + r).
        out[c * kN + src * kRowsPer + r] = v;
      }
    }
  }
}

bool verify(std::uint32_t node, const std::vector<double>& out) {
  for (std::size_t r = 0; r < kRowsPer; ++r) {
    for (std::size_t c = 0; c < kN; ++c) {
      // Transposed row (node*kRowsPer + r) equals original column.
      if (out[r * kN + c] != element(c, node * kRowsPer + r)) return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  // ---------------- TCA version -------------------------------------------
  sim::Scheduler sched;
  api::Runtime rt(sched, api::TcaConfig{.spec = fabric::TopologySpec::ring(kNodes)});
  sim::Barrier barrier(sched, kNodes);

  std::vector<api::Buffer> src_bufs, stage_bufs;
  std::vector<std::vector<double>> blocks, staging(kNodes),
      result(kNodes);
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    src_bufs.push_back(
        rt.alloc_gpu(n, 0, kRowsPer * kRowBytes).value());
    stage_bufs.push_back(
        rt.alloc_gpu(n, 1, kNodes * kRowsPer * kBlockRowBytes).value());
    blocks.push_back(make_block(n));
    rt.write(src_bufs[n], 0, std::as_bytes(std::span(blocks[n])));
    staging[n].resize(kNodes * kRowsPer * kColsPer);
    result[n].resize(kRowsPer * kN);
  }

  const TimePs t0 = sched.now();
  for (std::uint32_t me = 0; me < kNodes; ++me) {
    sim::spawn([](api::Runtime& r, std::vector<api::Buffer>& src,
                  std::vector<api::Buffer>& stage, std::uint32_t n,
                  sim::Barrier& bar) -> sim::Task<> {
      // One chain: every outgoing sub-block row to every destination.
      std::vector<api::Runtime::CopyOp> ops;
      for (std::uint32_t dst = 0; dst < kNodes; ++dst) {
        for (std::size_t row = 0; row < kRowsPer; ++row) {
          ops.push_back({.dst = stage[dst],
                         .dst_off = (n * kRowsPer + row) * kBlockRowBytes,
                         .src = src[n],
                         .src_off = row * kRowBytes +
                                    dst * kBlockRowBytes,
                         .bytes = kBlockRowBytes});
        }
      }
      const Status st = co_await r.memcpy_peer_batch(n, std::move(ops));
      TCA_ASSERT(st.is_ok());
      co_await bar.arrive();
    }(rt, src_bufs, stage_bufs, me, barrier));
  }
  sched.run();
  const TimePs tca_elapsed = sched.now() - t0;

  bool ok = true;
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    rt.read(stage_bufs[n], 0, std::as_writable_bytes(std::span(staging[n])));
    unpack_transpose(n, staging[n], result[n]);
    ok = ok && verify(n, result[n]);
  }

  // ---------------- MPI baseline ------------------------------------------
  sim::Scheduler msched;
  std::vector<std::unique_ptr<node::ComputeNode>> nodes;
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    nodes.push_back(std::make_unique<node::ComputeNode>(
        msched, static_cast<int>(i),
        node::NodeConfig{.gpu_count = 2,
                         .host_backing_bytes = 32 << 20,
                         .gpu_backing_bytes = 8 << 20}));
  }
  std::vector<node::ComputeNode*> ptrs;
  for (auto& p : nodes) ptrs.push_back(p.get());
  baseline::IbFabric fabric(msched, ptrs);
  baseline::MpiLite mpi(msched, fabric);

  std::vector<std::vector<double>> mpi_staging(kNodes);
  const TimePs m0 = msched.now();
  for (std::uint32_t me = 0; me < kNodes; ++me) {
    mpi_staging[me].resize(kNodes * kRowsPer * kColsPer);
    sim::spawn([](baseline::MpiLite& m, node::ComputeNode& node_ref,
                  std::uint32_t n, std::vector<double> block,
                  std::vector<double>& stage) -> sim::Task<> {
      // cudaMemcpy the whole block down once.
      std::vector<double> host(block.size());
      node_ref.gpu(0).poke(0, std::as_bytes(std::span(block)));
      co_await node_ref.gpu(0).memcpy_d2h(
          0, std::as_writable_bytes(std::span(host)));
      // Pack + exchange with every peer.
      for (std::uint32_t dst = 0; dst < kNodes; ++dst) {
        std::vector<double> packed(kRowsPer * kColsPer);
        for (std::size_t r = 0; r < kRowsPer; ++r) {
          std::memcpy(packed.data() + r * kColsPer,
                      host.data() + r * kN + dst * kColsPer,
                      kBlockRowBytes);
        }
        if (dst == n) {
          std::memcpy(stage.data() + n * kRowsPer * kColsPer, packed.data(),
                      packed.size() * sizeof(double));
          continue;
        }
        sim::Task<> tx = m.send(n, dst, static_cast<int>(n * 16 + dst),
                                std::as_bytes(std::span(packed)));
        auto rx = co_await m.recv(n, dst, static_cast<int>(dst * 16 + n));
        co_await std::move(tx);
        std::memcpy(stage.data() + dst * kRowsPer * kColsPer, rx.data(),
                    rx.size());
      }
      // cudaMemcpy the staged result back up.
      co_await node_ref.gpu(1).memcpy_h2d(std::as_bytes(std::span(stage)),
                                          0);
    }(mpi, *nodes[me], me, blocks[me], mpi_staging[me]));
  }
  msched.run();
  const TimePs mpi_elapsed = msched.now() - m0;

  bool mpi_ok = true;
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    std::vector<double> out(kRowsPer * kN);
    unpack_transpose(n, mpi_staging[n], out);
    mpi_ok = mpi_ok && verify(n, out);
  }

  std::printf("transpose: %zux%zu doubles across %u nodes (all-to-all)\n",
              kN, kN, kNodes);
  std::printf("  TCA (one chain/node)   : %s  %s\n",
              units::format_time(tca_elapsed).c_str(),
              ok ? "(verified)" : "(FAILED)");
  std::printf("  MPI/IB (pack+sendrecv) : %s  %s\n",
              units::format_time(mpi_elapsed).c_str(),
              mpi_ok ? "(verified)" : "(FAILED)");
  std::printf("  descriptors per node   : %zu (in one doorbell)\n",
              (kNodes)*kRowsPer);
  return ok && mpi_ok ? 0 : 1;
}
