// Ping-pong latency ladder: TCA vs the conventional stack.
//
// Measures round-trip/2 latency between two adjacent nodes for a range of
// message sizes over four transports:
//   * TCA PIO        — CPU stores through the PEACH2 window (short messages)
//   * TCA DMA        — one pipelined descriptor per message
//   * MPI host-host  — eager/rendezvous over IB (no GPUs involved)
//   * MPI GPU-GPU    — the conventional 3-copy path
//
// Run: ./pingpong
#include <cstdio>
#include <memory>
#include <vector>

#include "api/tca.h"
#include "baseline/conventional.h"
#include "baseline/ib_fabric.h"
#include "baseline/mpi_lite.h"
#include "common/table.h"

using namespace tca;

namespace {

constexpr int kWarmup = 2;
constexpr int kReps = 8;

/// One-way latency via ping-pong: node0 sends, node1 echoes; RTT/2.
template <typename SendFn>
TimePs pingpong(sim::Scheduler& sched, SendFn&& one_way) {
  // Warmup then measure.
  for (int i = 0; i < kWarmup; ++i) {
    one_way(0, 1);
    one_way(1, 0);
    sched.run();
  }
  const TimePs t0 = sched.now();
  for (int i = 0; i < kReps; ++i) {
    one_way(0, 1);
    sched.run();
    one_way(1, 0);
    sched.run();
  }
  return (sched.now() - t0) / (2 * kReps);
}

}  // namespace

int main() {
  const std::vector<std::uint64_t> sizes = {4,    64,   256,   1024,
                                            4096, 16384, 65536, 262144};

  TablePrinter table({"Size", "TCA PIO", "TCA DMA", "MPI host", "MPI 3-copy",
                      "TCA/MPI speedup"});

  for (std::uint64_t size : sizes) {
    // --- TCA transports ----------------------------------------------------
    sim::Scheduler tca_sched;
    api::Runtime rt(tca_sched, api::TcaConfig{.spec = fabric::TopologySpec::ring(2)});
    auto b0 = rt.alloc_host(0, 1 << 20).value();
    auto b1 = rt.alloc_host(1, 1 << 20).value();
    std::vector<std::byte> payload(size, std::byte{0x5A});
    rt.write(b0, 0, payload);

    // PIO is only sensible for short messages; report '-' above 4 KiB.
    double pio_us = -1;
    if (size <= 4096) {
      auto& drv0 = rt.cluster().driver(0);
      auto& drv1 = rt.cluster().driver(1);
      const TimePs t0 = tca_sched.now();
      for (int i = 0; i < kReps; ++i) {
        auto ping = drv0.pio_store(
            rt.cluster().global_host(1, 0x100), payload);
        tca_sched.run();
        auto pong = drv1.pio_store(
            rt.cluster().global_host(0, 0x100), payload);
        tca_sched.run();
      }
      pio_us = units::to_us((tca_sched.now() - t0) / (2 * kReps));
    }

    const TimePs dma_lat = pingpong(tca_sched, [&](int from, int /*to*/) {
      sim::spawn([](api::Runtime& r, api::Buffer dst, api::Buffer src,
                    std::uint64_t n) -> sim::Task<> {
        co_await r.memcpy_peer(dst, 0, src, 0, n);
      }(rt, from == 0 ? b1 : b0, from == 0 ? b0 : b1, size));
    });

    // --- Conventional transports --------------------------------------------
    sim::Scheduler mpi_sched;
    std::vector<std::unique_ptr<node::ComputeNode>> nodes;
    for (int i = 0; i < 2; ++i) {
      nodes.push_back(std::make_unique<node::ComputeNode>(
          mpi_sched, i,
          node::NodeConfig{.gpu_count = 2,
                           .host_backing_bytes = 32 << 20,
                           .gpu_backing_bytes = 8 << 20}));
    }
    std::vector<node::ComputeNode*> ptrs{nodes[0].get(), nodes[1].get()};
    baseline::IbFabric fabric(mpi_sched, ptrs);
    baseline::MpiLite mpi(mpi_sched, fabric);
    baseline::ConventionalGpuComm conv(mpi, ptrs);

    int tag = 0;
    const TimePs mpi_lat = pingpong(mpi_sched, [&](int from, int to) {
      const int t = tag++;
      sim::spawn([](baseline::MpiLite& m, std::uint32_t f, std::uint32_t to_,
                    int tg, std::uint64_t n) -> sim::Task<> {
        std::vector<std::byte> buf(n, std::byte{1});
        co_await m.send(f, to_, tg, buf);
      }(mpi, static_cast<std::uint32_t>(from),
        static_cast<std::uint32_t>(to), t, size));
      sim::spawn([](baseline::MpiLite& m, std::uint32_t to_, std::uint32_t f,
                    int tg) -> sim::Task<> {
        (void)co_await m.recv(to_, f, tg);
      }(mpi, static_cast<std::uint32_t>(to),
        static_cast<std::uint32_t>(from), t));
    });

    tag = 1000;
    const TimePs gpu_lat = pingpong(mpi_sched, [&](int from, int to) {
      const int t = tag++;
      sim::spawn([](baseline::ConventionalGpuComm& c, std::uint32_t f,
                    std::uint32_t to_, int tg, std::uint64_t n)
                     -> sim::Task<> {
        co_await c.send_gpu(f, 0, 0, n, to_, tg);
      }(conv, static_cast<std::uint32_t>(from),
        static_cast<std::uint32_t>(to), t, size));
      sim::spawn([](baseline::ConventionalGpuComm& c, std::uint32_t to_,
                    std::uint32_t f, int tg, std::uint64_t n)
                     -> sim::Task<> {
        co_await c.recv_gpu(to_, 0, 4 << 20, n, f, tg);
      }(conv, static_cast<std::uint32_t>(to),
        static_cast<std::uint32_t>(from), t, size));
    });

    const double best_tca =
        pio_us > 0 ? std::min(pio_us, units::to_us(dma_lat))
                   : units::to_us(dma_lat);
    table.add_row({units::format_size(size),
                   pio_us > 0 ? TablePrinter::cell(pio_us) + " us" : "-",
                   TablePrinter::cell(units::to_us(dma_lat)) + " us",
                   TablePrinter::cell(units::to_us(mpi_lat)) + " us",
                   TablePrinter::cell(units::to_us(gpu_lat)) + " us",
                   TablePrinter::cell(units::to_us(gpu_lat) / best_tca, 1) +
                       "x"});
  }

  print_section("Ping-pong one-way latency: TCA vs conventional stack");
  table.print();
  std::printf(
      "\nShort messages: TCA PIO is sub-microsecond while the 3-copy path\n"
      "pays two cudaMemcpy overheads plus the MPI stack (Section I).\n");
  return 0;
}
