// Halo exchange: 2-D Jacobi stencil partitioned across a 4-node TCA ring.
//
// The workload class the HA-PACS project targets (particle physics /
// astrophysics stencils): each node owns a slab of the grid in GPU memory;
// every iteration the boundary rows are exchanged with the ring neighbors.
// The same computation runs twice —
//   (a) halos moved through tca::coll::Communicator::neighbor_exchange
//       (both rows in one descriptor chain, doorbell-flag completion and
//       per-direction credit flow control — no global barrier needed), and
//   (b) halos moved through the conventional stack (cudaMemcpy D2H ->
//       MPI/IB -> cudaMemcpy H2D),
// then the final grids are compared element-for-element and the
// communication time per iteration is reported for both.
//
// Run: ./halo_exchange
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "api/tca.h"
#include "baseline/conventional.h"
#include "baseline/ib_fabric.h"
#include "baseline/mpi_lite.h"
#include "coll/communicator.h"

using namespace tca;

namespace {

constexpr std::uint32_t kNodes = 4;
constexpr int kRowsPerNode = 32;  // interior rows per node
constexpr int kCols = 256;
constexpr int kIterations = 10;
constexpr std::uint64_t kRowBytes = kCols * sizeof(double);
/// Slab: halo row + interior rows + halo row.
constexpr std::uint64_t kSlabBytes = (kRowsPerNode + 2) * kRowBytes;
/// Modeled GPU compute time per Jacobi sweep of one slab.
constexpr TimePs kComputePs = units::us(12);

/// Grid slab access helpers (row 0 = north halo, row kRowsPerNode+1 = south
/// halo).
std::vector<double> make_initial_slab(std::uint32_t node) {
  std::vector<double> slab((kRowsPerNode + 2) * kCols, 0.0);
  for (int r = 0; r < kRowsPerNode + 2; ++r) {
    for (int c = 0; c < kCols; ++c) {
      const int global_row = static_cast<int>(node) * kRowsPerNode + r;
      slab[static_cast<std::size_t>(r * kCols + c)] =
          std::sin(0.05 * global_row) * std::cos(0.07 * c);
    }
  }
  return slab;
}

/// One Jacobi sweep over the interior of a slab (host-side math; the GPU
/// kernel time is modeled separately by kComputePs).
void jacobi_sweep(std::vector<double>& slab) {
  std::vector<double> next = slab;
  for (int r = 1; r <= kRowsPerNode; ++r) {
    for (int c = 1; c < kCols - 1; ++c) {
      const std::size_t i = static_cast<std::size_t>(r * kCols + c);
      next[i] = 0.25 * (slab[i - 1] + slab[i + 1] +
                        slab[i - static_cast<std::size_t>(kCols)] +
                        slab[i + static_cast<std::size_t>(kCols)]);
    }
  }
  slab = std::move(next);
}

struct RunResult {
  std::vector<std::vector<double>> slabs;
  TimePs comm_time = 0;
  TimePs total_time = 0;
};

// --- (a) TCA version --------------------------------------------------------

sim::Task<> tca_node_task(api::Runtime& rt, coll::Communicator& comm,
                          std::uint32_t node,
                          std::vector<api::Buffer>& gpu_bufs,
                          std::vector<std::vector<double>>& slabs,
                          TimePs& comm_accum) {
  auto& slab = slabs[node];
  // Ring orientation: next = south neighbor, prev = north neighbor. My last
  // interior row feeds south's north halo; my first interior row feeds
  // north's south halo. The communicator's per-direction credits replace
  // the global barrier the hand-rolled version needed.
  const coll::HaloSpec spec{
      .buf = gpu_bufs[node],
      .send_to_next_off = static_cast<std::uint64_t>(kRowsPerNode) * kRowBytes,
      .send_to_prev_off = 1 * kRowBytes,
      .recv_from_prev_off = 0,
      .recv_from_next_off =
          static_cast<std::uint64_t>(kRowsPerNode + 1) * kRowBytes,
      .bytes = kRowBytes,
  };

  for (int iter = 0; iter < kIterations; ++iter) {
    // Compute phase: modeled kernel time, real math.
    co_await sim::Delay(rt.scheduler(), kComputePs);
    jacobi_sweep(slab);
    rt.write(gpu_bufs[node], 0, std::as_bytes(std::span(slab)));

    const TimePs comm_start = rt.scheduler().now();
    const Status st = co_await comm.neighbor_exchange(node, spec);
    TCA_ASSERT(st.is_ok());
    comm_accum += rt.scheduler().now() - comm_start;

    // Pull the received halos back into the working slab.
    std::vector<std::byte> halo(kRowBytes);
    rt.read(gpu_bufs[node], 0, halo);
    std::memcpy(slab.data(), halo.data(), kRowBytes);
    rt.read(gpu_bufs[node],
            static_cast<std::uint64_t>(kRowsPerNode + 1) * kRowBytes, halo);
    std::memcpy(slab.data() + static_cast<std::size_t>(
                                  (kRowsPerNode + 1) * kCols),
                halo.data(), kRowBytes);
  }
}

RunResult run_tca() {
  sim::Scheduler sched;
  api::Runtime rt(sched, api::TcaConfig{.spec = fabric::TopologySpec::ring(kNodes)});
  auto comm = coll::Communicator::create(rt);
  TCA_ASSERT(comm.is_ok());

  std::vector<api::Buffer> gpu_bufs;
  RunResult result;
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    gpu_bufs.push_back(rt.alloc_gpu(n, 0, kSlabBytes).value());
    result.slabs.push_back(make_initial_slab(n));
    rt.write(gpu_bufs[n], 0, std::as_bytes(std::span(result.slabs[n])));
  }

  TimePs comm_total = 0;
  const TimePs t0 = sched.now();
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    sim::spawn(tca_node_task(rt, comm.value(), n, gpu_bufs, result.slabs,
                             comm_total));
  }
  sched.run();
  result.total_time = sched.now() - t0;
  result.comm_time = comm_total / kNodes;  // average per node
  return result;
}

// --- (b) Conventional MPI version -------------------------------------------

struct MpiRig {
  MpiRig() {
    for (std::uint32_t i = 0; i < kNodes; ++i) {
      nodes.push_back(std::make_unique<node::ComputeNode>(
          sched, static_cast<int>(i),
          node::NodeConfig{.gpu_count = 2,
                           .host_backing_bytes = 32 << 20,
                           .gpu_backing_bytes = 8 << 20}));
    }
    std::vector<node::ComputeNode*> ptrs;
    for (auto& p : nodes) ptrs.push_back(p.get());
    fabric = std::make_unique<baseline::IbFabric>(sched, ptrs);
    mpi = std::make_unique<baseline::MpiLite>(sched, *fabric);
    conv = std::make_unique<baseline::ConventionalGpuComm>(*mpi, ptrs);
  }
  sim::Scheduler sched;
  std::vector<std::unique_ptr<node::ComputeNode>> nodes;
  std::unique_ptr<baseline::IbFabric> fabric;
  std::unique_ptr<baseline::MpiLite> mpi;
  std::unique_ptr<baseline::ConventionalGpuComm> conv;
};

sim::Task<> mpi_node_task(MpiRig& rig, std::uint32_t node,
                          std::vector<std::vector<double>>& slabs,
                          sim::Barrier& barrier, TimePs& comm_accum) {
  const std::uint32_t north = (node + kNodes - 1) % kNodes;
  const std::uint32_t south = (node + 1) % kNodes;
  auto& slab = slabs[node];
  auto& gpu = rig.nodes[node]->gpu(0);

  for (int iter = 0; iter < kIterations; ++iter) {
    co_await sim::Delay(rig.sched, kComputePs);
    jacobi_sweep(slab);
    gpu.poke(0, std::as_bytes(std::span(slab)));
    co_await barrier.arrive();

    const TimePs comm_start = rig.sched.now();
    // The 3-copy path, both directions. Tags encode direction.
    auto tx_north = rig.conv->send_gpu(node, 0, 1 * kRowBytes, kRowBytes,
                                       north, iter * 4 + 0);
    auto tx_south = rig.conv->send_gpu(
        node, 0, static_cast<std::uint64_t>(kRowsPerNode) * kRowBytes,
        kRowBytes, south, iter * 4 + 1);
    auto rx_north = rig.conv->recv_gpu(node, 0, 0, kRowBytes, north,
                                       iter * 4 + 1);
    auto rx_south = rig.conv->recv_gpu(
        node, 0, static_cast<std::uint64_t>(kRowsPerNode + 1) * kRowBytes,
        kRowBytes, south, iter * 4 + 0);
    co_await std::move(tx_north);
    co_await std::move(tx_south);
    co_await std::move(rx_north);
    co_await std::move(rx_south);
    comm_accum += rig.sched.now() - comm_start;

    std::vector<std::byte> halo(kRowBytes);
    gpu.peek(0, halo);
    std::memcpy(slab.data(), halo.data(), kRowBytes);
    gpu.peek(static_cast<std::uint64_t>(kRowsPerNode + 1) * kRowBytes, halo);
    std::memcpy(slab.data() + static_cast<std::size_t>(
                                  (kRowsPerNode + 1) * kCols),
                halo.data(), kRowBytes);
    co_await barrier.arrive();
  }
}

RunResult run_mpi() {
  MpiRig rig;
  sim::Barrier barrier(rig.sched, kNodes);
  RunResult result;
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    result.slabs.push_back(make_initial_slab(n));
    rig.nodes[n]->gpu(0).poke(0, std::as_bytes(std::span(result.slabs[n])));
  }
  TimePs comm_total = 0;
  const TimePs t0 = rig.sched.now();
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    sim::spawn(mpi_node_task(rig, n, result.slabs, barrier, comm_total));
  }
  rig.sched.run();
  result.total_time = rig.sched.now() - t0;
  result.comm_time = comm_total / kNodes;
  return result;
}

}  // namespace

int main() {
  std::printf("halo_exchange: %d-node ring, %dx%d grid slabs, %d Jacobi "
              "iterations\n",
              kNodes, kRowsPerNode, kCols, kIterations);

  RunResult tca = run_tca();
  RunResult mpi = run_mpi();

  // The two runs must compute the identical grid.
  bool match = true;
  for (std::uint32_t n = 0; n < kNodes && match; ++n) {
    match = tca.slabs[n] == mpi.slabs[n];
  }
  double checksum = 0;
  for (const auto& slab : tca.slabs) {
    for (double v : slab) checksum += v;
  }

  std::printf("  result match (TCA vs MPI) : %s\n", match ? "OK" : "FAILED");
  std::printf("  grid checksum              : %.6f\n", checksum);
  std::printf("  comm time/iter  TCA        : %s\n",
              units::format_time(tca.comm_time / kIterations).c_str());
  std::printf("  comm time/iter  MPI 3-copy : %s\n",
              units::format_time(mpi.comm_time / kIterations).c_str());
  std::printf("  total time      TCA        : %s\n",
              units::format_time(tca.total_time).c_str());
  std::printf("  total time      MPI 3-copy : %s\n",
              units::format_time(mpi.total_time).c_str());
  std::printf("  comm speedup               : %.2fx\n",
              static_cast<double>(mpi.comm_time) /
                  static_cast<double>(tca.comm_time));
  return match ? 0 : 1;
}
