// Block-stride transfers through the chaining DMA (Section III-H):
//
//   "Moreover, a series of bulk transfers, such as block transfer and
//    block-stride transfer, are effective by using the chaining DMA
//    mechanism."
//
// A sub-matrix (the left halo column block of a 2-D domain, column-major
// rows) is moved GPU-to-GPU across nodes three ways:
//   1. one descriptor chain (memcpy_block_stride): one doorbell/interrupt,
//   2. one memcpy_peer per row: N doorbells/interrupts,
//   3. pack on host + single contiguous copy + unpack (what MPI datatype
//      users effectively pay).
// Results are verified identical; timings show why chaining matters.
//
// Run: ./block_stride
#include <cstdio>
#include <cstring>
#include <vector>

#include "api/tca.h"
#include "common/table.h"

using namespace tca;

namespace {
constexpr std::uint32_t kRows = 64;        // blocks in the chain
constexpr std::uint64_t kRowPitch = 2048;  // full row stride in bytes
constexpr std::uint64_t kBlockBytes = 256; // sub-block per row
}  // namespace

int main() {
  sim::Scheduler sched;
  api::Runtime rt(sched, api::TcaConfig{.spec = fabric::TopologySpec::ring(2)});

  const std::uint64_t extent = kRows * kRowPitch;
  auto src = rt.alloc_gpu(0, 0, extent).value();
  auto dst_chain = rt.alloc_gpu(1, 0, extent).value();
  auto dst_loop = rt.alloc_gpu(1, 0, extent).value();
  auto dst_pack = rt.alloc_gpu(1, 0, extent).value();
  auto pack_stage_src = rt.alloc_host(0, kRows * kBlockBytes).value();

  // Paint the source matrix.
  std::vector<std::byte> matrix(extent);
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    matrix[i] = static_cast<std::byte>((i * 131) & 0xff);
  }
  rt.write(src, 0, matrix);

  TablePrinter table({"Method", "Elapsed", "Chains", "Note"});

  // --- 1. One descriptor chain -------------------------------------------
  const std::uint64_t chains0 =
      rt.cluster().chip(0).dmac().chains_completed();
  TimePs t0 = sched.now();
  auto c1 = rt.memcpy_block_stride(dst_chain, 0, kRowPitch, src, 0,
                                   kRowPitch, kBlockBytes, kRows);
  sched.run();
  const TimePs chain_time = sched.now() - t0;
  TCA_ASSERT(c1.result().is_ok());
  table.add_row({"block-stride chain", units::format_time(chain_time),
                 TablePrinter::cell(
                     rt.cluster().chip(0).dmac().chains_completed() - chains0),
                 "one doorbell + one interrupt"});

  // --- 2. Row-at-a-time memcpy_peer ----------------------------------------
  t0 = sched.now();
  auto loop = [](api::Runtime& r, api::Buffer dst, api::Buffer s)
      -> sim::Task<> {
    for (std::uint32_t row = 0; row < kRows; ++row) {
      co_await r.memcpy_peer(dst, row * kRowPitch, s, row * kRowPitch,
                             kBlockBytes);
    }
  }(rt, dst_loop, src);
  sched.run();
  const TimePs loop_time = sched.now() - t0;
  table.add_row({"per-row memcpy_peer", units::format_time(loop_time),
                 TablePrinter::cell(std::uint64_t{kRows}),
                 "N doorbells + N interrupts"});

  // --- 3. Pack / contiguous copy / unpack -----------------------------------
  t0 = sched.now();
  auto packed = [](api::Runtime& r, api::Buffer stage, api::Buffer s,
                   api::Buffer dst) -> sim::Task<> {
    // Pack on the source host (reading GPU rows back is itself costly; here
    // we charge only the host-side memcpy via the staging buffer write).
    std::vector<std::byte> block(kBlockBytes);
    for (std::uint32_t row = 0; row < kRows; ++row) {
      r.read(s, row * kRowPitch, block);
      r.write(stage, row * kBlockBytes, block);
    }
    // One contiguous transfer of the packed block...
    co_await r.memcpy_peer(dst, 0, stage, 0, kRows * kBlockBytes);
    // ...then unpack on the destination (functional; remote CPU cost not
    // charged — this is the *optimistic* packing baseline).
  }(rt, pack_stage_src, src, dst_pack);
  sched.run();
  const TimePs pack_time = sched.now() - t0;
  table.add_row({"pack + contiguous", units::format_time(pack_time),
                 "1", "packed on host (optimistic: free pack/unpack)"});

  // --- Verify --------------------------------------------------------------
  bool ok = true;
  std::vector<std::byte> a(kBlockBytes), b(kBlockBytes);
  for (std::uint32_t row = 0; row < kRows && ok; ++row) {
    rt.read(src, row * kRowPitch, a);
    rt.read(dst_chain, row * kRowPitch, b);
    ok = ok && (a == b);
    rt.read(dst_loop, row * kRowPitch, b);
    ok = ok && (a == b);
  }

  print_section("Block-stride GPU-to-GPU transfer across nodes");
  table.print();
  std::printf("\n%u rows x %s sub-blocks (pitch %s): the chain amortizes "
              "the fixed DMA\ncost across all rows — %.1fx faster than "
              "per-row transfers.\n",
              kRows, units::format_size(kBlockBytes).c_str(),
              units::format_size(kRowPitch).c_str(),
              static_cast<double>(loop_time) /
                  static_cast<double>(chain_time));
  std::printf("data check: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
