// Byte-addressable memory with real storage.
//
// The simulator is functional: DMA and PIO move actual bytes, so tests and
// examples can verify data integrity end-to-end. Timing (commit/read
// latency) is applied by the component that owns the memory, not here.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/error.h"

namespace tca::mem {

class Dram {
 public:
  explicit Dram(std::uint64_t size_bytes) : data_(size_bytes) {}

  [[nodiscard]] std::uint64_t size() const { return data_.size(); }

  void write(std::uint64_t offset, std::span<const std::byte> src) {
    TCA_ASSERT(offset + src.size() <= data_.size());
    std::copy(src.begin(), src.end(), data_.begin() + static_cast<std::ptrdiff_t>(offset));
  }

  void read(std::uint64_t offset, std::span<std::byte> dst) const {
    TCA_ASSERT(offset + dst.size() <= data_.size());
    std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(offset),
                dst.size(), dst.begin());
  }

  [[nodiscard]] std::span<const std::byte> view(std::uint64_t offset,
                                                std::uint64_t len) const {
    TCA_ASSERT(offset + len <= data_.size());
    return {data_.data() + offset, len};
  }

  [[nodiscard]] std::span<std::byte> view_mut(std::uint64_t offset,
                                              std::uint64_t len) {
    TCA_ASSERT(offset + len <= data_.size());
    return {data_.data() + offset, len};
  }

  void fill(std::byte value) { std::fill(data_.begin(), data_.end(), value); }

 private:
  std::vector<std::byte> data_;
};

}  // namespace tca::mem
