// Address-range to value mapping with overlap rejection.
//
// Used for every address decode in the simulator: the per-node PCIe address
// map (root complex), GPU BAR pin tables, and the global TCA window layout.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "common/error.h"

namespace tca::mem {

template <typename T>
class RangeMap {
 public:
  struct Range {
    std::uint64_t base;
    std::uint64_t size;
    T value;
    [[nodiscard]] std::uint64_t end() const { return base + size; }
    [[nodiscard]] bool contains(std::uint64_t addr) const {
      return addr >= base && addr < end();
    }
  };

  /// Adds [base, base+size); fails on overlap with an existing range or on
  /// address-space wraparound.
  Status add(std::uint64_t base, std::uint64_t size, T value) {
    if (size == 0) return {ErrorCode::kInvalidArgument, "empty range"};
    if (base + size < base) {
      return {ErrorCode::kOutOfRange, "range wraps the address space"};
    }
    // The first range at or after `base` must start at or after our end;
    // the range before `base` must end at or before our base.
    auto next = ranges_.lower_bound(base);
    if (next != ranges_.end() && next->second.base < base + size) {
      return {ErrorCode::kInvalidArgument, "range overlaps an existing range"};
    }
    if (next != ranges_.begin()) {
      auto prev = std::prev(next);
      if (prev->second.end() > base) {
        return {ErrorCode::kInvalidArgument,
                "range overlaps an existing range"};
      }
    }
    ranges_.emplace(base, Range{base, size, std::move(value)});
    return Status::ok();
  }

  /// Removes the range starting exactly at `base`. Returns false if absent.
  bool remove(std::uint64_t base) { return ranges_.erase(base) > 0; }

  /// Range containing `addr`, or nullptr.
  [[nodiscard]] const Range* find(std::uint64_t addr) const {
    auto it = ranges_.upper_bound(addr);
    if (it == ranges_.begin()) return nullptr;
    --it;
    return it->second.contains(addr) ? &it->second : nullptr;
  }

  /// Like find(), but requires [addr, addr+len) to fit entirely inside the
  /// range — TLPs must not straddle device boundaries.
  [[nodiscard]] const Range* find_span(std::uint64_t addr,
                                       std::uint64_t len) const {
    const Range* r = find(addr);
    if (r == nullptr || addr + len > r->end()) return nullptr;
    return r;
  }

  [[nodiscard]] std::size_t size() const { return ranges_.size(); }
  [[nodiscard]] bool empty() const { return ranges_.empty(); }

  [[nodiscard]] auto begin() const { return ranges_.begin(); }
  [[nodiscard]] auto end() const { return ranges_.end(); }

 private:
  std::map<std::uint64_t, Range> ranges_;
};

}  // namespace tca::mem
