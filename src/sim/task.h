// Coroutine tasks for describing simulated processes.
//
// Hardware engines (DMA controllers, drivers, workload generators) are most
// naturally written as sequential processes that wait for simulated time or
// for events. Task<T> is an *eagerly started* coroutine bound to a Scheduler:
// constructing one runs its body until the first suspension point, and every
// resumption is routed through the Scheduler queue so event ordering stays
// deterministic.
//
// Lifetime contract: a Task owns its coroutine frame. Destroying an
// unfinished Task is allowed (it tears the process down), but the Scheduler
// must not run again afterwards if the task was waiting on a Delay or
// Trigger — standard teardown order (components before scheduler, no run
// after teardown begins) satisfies this.
#pragma once

#include <coroutine>
#include <cstddef>
#include <exception>
#include <utility>

#include "common/error.h"
#include "sim/arena.h"
#include "sim/scheduler.h"

namespace tca::sim {

template <typename T>
class Task;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;
  bool detached = false;
  std::exception_ptr exception;

  /// Coroutine frames route through the executing shard's FrameArena:
  /// spawning a process inside an event reuses pooled, cache-warm memory
  /// instead of hitting the global allocator per frame (frames created
  /// outside event execution fall through to the global heap — the header
  /// written by arena_alloc routes the matching free either way).
  static void* operator new(std::size_t bytes) { return arena_alloc(bytes); }
  static void operator delete(void* p, std::size_t bytes) noexcept {
    arena_free(p, bytes);
  }

  std::suspend_never initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }

    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      PromiseBase& p = h.promise();
      std::coroutine_handle<> cont =
          p.continuation ? p.continuation : std::noop_coroutine();
      if (p.detached) {
        // Detached tasks self-destroy; they can have no awaiter.
        h.destroy();
      }
      return cont;
    }

    void await_resume() const noexcept {}
  };

  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

template <typename T>
struct Promise : PromiseBase {
  T value{};

  Task<T> get_return_object();
  void return_value(T v) { value = std::move(v); }
};

template <>
struct Promise<void> : PromiseBase {
  Task<void> get_return_object();
  void return_void() {}
};

}  // namespace detail

/// An eagerly-started simulated process. `co_await`ing a Task suspends the
/// awaiter until the task completes (immediately resuming if it already has).
template <typename T = void>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::Promise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : handle_(h) {}

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  ~Task() { destroy(); }

  /// True when the coroutine has run to completion.
  [[nodiscard]] bool done() const { return !handle_ || handle_.done(); }

  /// Releases ownership: the frame self-destroys at completion. Used for
  /// fire-and-forget processes (see spawn()).
  void detach() {
    if (!handle_) return;
    if (handle_.done()) {
      destroy();
      return;
    }
    handle_.promise().detached = true;
    handle_ = {};
  }

  /// Result access after completion (void tasks: checks for exceptions).
  T result() const {
    TCA_ASSERT(handle_ && handle_.done());
    if (handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
    if constexpr (!std::is_void_v<T>) {
      return std::move(handle_.promise().value);
    }
  }

  auto operator co_await() & = delete;  // must co_await an rvalue (ownership)

  auto operator co_await() && {
    struct Awaiter {
      Handle h;
      bool await_ready() const { return !h || h.done(); }
      void await_suspend(std::coroutine_handle<> cont) {
        TCA_ASSERT(!h.promise().continuation);
        h.promise().continuation = cont;
      }
      T await_resume() {
        if (h.promise().exception) {
          std::rethrow_exception(h.promise().exception);
        }
        if constexpr (!std::is_void_v<T>) {
          return std::move(h.promise().value);
        }
      }
    };
    return Awaiter{handle_};
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  Handle handle_;
};

namespace detail {

template <typename T>
Task<T> Promise<T>::get_return_object() {
  return Task<T>(std::coroutine_handle<Promise<T>>::from_promise(*this));
}

inline Task<void> Promise<void>::get_return_object() {
  return Task<void>(std::coroutine_handle<Promise<void>>::from_promise(*this));
}

}  // namespace detail

/// Starts a fire-and-forget process; its frame self-destroys on completion.
inline void spawn(Task<> task) { task.detach(); }

/// Awaitable that suspends the current task for `delay` of simulated time.
/// A zero delay yields through the event queue (runs after already-queued
/// same-time events), which is useful for deterministic hand-offs.
class Delay {
 public:
  Delay(Scheduler& sched, TimePs delay) : sched_(sched), delay_(delay) {
    TCA_ASSERT(delay >= 0);
  }

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    sched_.schedule_after(delay_, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}

 private:
  Scheduler& sched_;
  TimePs delay_;
};

}  // namespace tca::sim
