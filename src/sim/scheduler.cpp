#include "sim/scheduler.h"

#include <cstdlib>
#include <utility>

namespace tca::sim {

Scheduler::QueueImpl Scheduler::default_impl() {
  static const QueueImpl impl = [] {
    const char* v = std::getenv("TCA_SCHED_BASELINE");
    if (v == nullptr || v[0] == '\0' || (v[0] == '0' && v[1] == '\0')) {
      return QueueImpl::kIndexed;
    }
    if (v[0] == '2' && v[1] == '\0') return QueueImpl::kSharded;
    return QueueImpl::kBaseline;
  }();
  return impl;
}

void Scheduler::run_until(TimePs t) {
  if (impl_ == QueueImpl::kSharded) {
    sharded_->run_until(t);
    return;
  }
  TCA_ASSERT(t >= now_);
  if (impl_ == QueueImpl::kIndexed) {
    ArenaScope scope(&arena_);
    while (fire_next_indexed(t)) {
    }
  } else {
    while (run_one(t)) {
    }
  }
  now_ = t;
  Log::set_now(now_);
}

// --- Baseline (seed) backend ----------------------------------------------

Scheduler::EventId Scheduler::schedule_baseline(TimePs t,
                                                std::function<void()> fn) {
  TCA_ASSERT(t >= now_);
  TCA_ASSERT(fn != nullptr);
  const EventId id = b_next_id_++;
  b_queue_.push(BaselineEntry{t, id, std::move(fn)});
  return id;
}

bool Scheduler::cancel_baseline(EventId id) {
  if (id == kInvalidEvent || id >= b_next_id_) return false;
  // Seed semantics: mark-and-skip tombstones; the set is consulted by a hash
  // lookup on every pop.
  return b_cancelled_.insert(id).second;
}

bool Scheduler::run_one_baseline(TimePs limit) {
  while (!b_queue_.empty()) {
    const BaselineEntry& top = b_queue_.top();
    if (auto it = b_cancelled_.find(top.id); it != b_cancelled_.end()) {
      b_cancelled_.erase(it);
      b_queue_.pop();
      continue;
    }
    if (top.time > limit) return false;
    BaselineEntry entry = std::move(const_cast<BaselineEntry&>(top));
    b_queue_.pop();
    TCA_ASSERT(entry.time >= now_);
    now_ = entry.time;
    Log::set_now(now_);
    ++processed_;
    entry.fn();
    return true;
  }
  return false;
}

}  // namespace tca::sim
