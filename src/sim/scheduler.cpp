#include "sim/scheduler.h"

#include <utility>

#include "common/error.h"
#include "common/log.h"

namespace tca::sim {

Scheduler::EventId Scheduler::schedule_at(TimePs t, std::function<void()> fn) {
  TCA_ASSERT(t >= now_);
  TCA_ASSERT(fn != nullptr);
  const EventId id = next_id_++;
  queue_.push(Entry{t, id, std::move(fn)});
  return id;
}

Scheduler::EventId Scheduler::schedule_after(TimePs delay,
                                             std::function<void()> fn) {
  TCA_ASSERT(delay >= 0);
  return schedule_at(now_ + delay, std::move(fn));
}

bool Scheduler::cancel(EventId id) {
  if (id == kInvalidEvent || id >= next_id_) return false;
  // We cannot remove from the middle of a priority_queue; mark instead and
  // skip on pop. The set stays small because ids are erased when popped.
  return cancelled_.insert(id).second;
}

bool Scheduler::pop_and_run() {
  while (!queue_.empty()) {
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    if (auto it = cancelled_.find(entry.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    TCA_ASSERT(entry.time >= now_);
    now_ = entry.time;
    Log::set_now(now_);
    ++processed_;
    entry.fn();
    return true;
  }
  return false;
}

bool Scheduler::step() { return pop_and_run(); }

void Scheduler::run() {
  while (pop_and_run()) {
  }
}

void Scheduler::run_until(TimePs t) {
  TCA_ASSERT(t >= now_);
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (cancelled_.count(top.id) != 0) {
      cancelled_.erase(top.id);
      queue_.pop();
      continue;
    }
    if (top.time > t) break;
    pop_and_run();
  }
  now_ = t;
  Log::set_now(now_);
}

}  // namespace tca::sim
