// Three-tier indexed event queue: the storage engine behind sim::Scheduler's
// kIndexed backend and each shard of the kSharded backend.
//
// Callables live in a slot pool as allocation-free sim::EventFn; small
// 24-byte (time, seq, slot, gen) entries order them. Slots carry a
// generation counter with odd = pending, even = free: cancel() checks the
// id's generation, destroys the capture and releases the slot immediately —
// O(1) — and the stale ordering entry is dropped lazily when it surfaces.
//
// Ordering entries land in one of three tiers:
//
//  * Fine calendar: a ring of 2^B buckets, each spanning 2^G ps. An event
//    within the ring's horizon (2^(B+G) ps from `now`) is appended to
//    bucket (t >> G) & (2^B - 1) — a tiny 4-ary heap, almost always a
//    single entry at the default 1 ps grain. Push and pop are O(1) in
//    practice: the simulator's hottest events (poll iterations, timer
//    pacing, engine steps) all live here, and a two-level occupancy bitmap
//    (one bit per bucket, one summary bit per 64-bucket word) jumps the
//    ring scan straight to the next non-empty bucket even when the ring is
//    nearly empty. This tier is what closes the small-event gap against a
//    plain binary heap: no sift through unrelated far-future timers, no
//    comparator-driven cache misses.
//  * Coarse calendar: the same ring structure at 128x the grain over a
//    quarter of the buckets, covering 32x the horizon in a quarter of the
//    cache footprint. It catches the mid-range delays the fine ring can't
//    hold — link serializations, DMA-step spacing, cancel-heavy retry
//    timers — where one global heap pays a full sift per reschedule. At
//    the default geometry the coarse grain still spreads those classes at
//    around one entry per bucket, so its bucket mini-heaps degenerate to
//    single appends too.
//  * Far heap: the 4-ary hole-sift min-heap for everything beyond both
//    horizons (completion timeouts, watchdogs, fault windows). Stale
//    entries are compacted away when they outnumber live ones.
//
// The tiers preserve one total (time, seq) order: a pop compares the two
// calendar heads with the heap head. Ring-distance equals time order for
// live calendar entries (an event is only filed in a ring when its bucket
// lies within one horizon of `now`, and `now` never passes a live entry),
// so the first live entry in ring order from now's bucket IS that ring's
// minimum.
//
// The queue is clock-less: callers pass `now` in (the Scheduler owns global
// time; a shard of the parallel backend owns its local time) and supply the
// `seq` tiebreak explicitly, which is how the sharded backend's merge mode
// reproduces the exact global FIFO order of the single-queue backend.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "common/error.h"
#include "common/units.h"
#include "sim/event_fn.h"

namespace tca::sim {

namespace detail {

/// Ordering entry shared by all tiers. 24 bytes so sifts move no callable
/// state; the EventFn stays in its slot until fire/cancel.
struct QEntry {
  TimePs time;
  std::uint64_t seq;
  std::uint32_t slot;
  std::uint32_t gen;
};

inline bool earlier(const QEntry& a, const QEntry& b) {
  return a.time < b.time || (a.time == b.time && a.seq < b.seq);
}

/// Hole-style 4-ary heap sifts over a vector<QEntry>: the displaced entry
/// rides in a register while holes shift, one 24-byte move per level.
inline void heap_sift_up(std::vector<QEntry>& h, std::size_t i) {
  QEntry* d = h.data();
  const QEntry e = d[i];
  while (i != 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!earlier(e, d[parent])) break;
    d[i] = d[parent];
    i = parent;
  }
  d[i] = e;
}

inline void heap_sift_down(std::vector<QEntry>& h, std::size_t i, QEntry e) {
  QEntry* d = h.data();
  const std::size_t n = h.size();
  for (;;) {
    const std::size_t first_child = 4 * i + 1;
    if (first_child >= n) break;
    std::size_t best = first_child;
    const std::size_t last_child = first_child + 4 < n ? first_child + 4 : n;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (earlier(d[c], d[best])) best = c;
    }
    if (!earlier(d[best], e)) break;
    d[i] = d[best];
    i = best;
  }
  d[i] = e;
}

inline void heap_push(std::vector<QEntry>& h, const QEntry& e) {
  h.push_back(e);
  heap_sift_up(h, h.size() - 1);
}

/// Removes h[0], refilling the hole with the last entry sifted down.
inline void heap_pop(std::vector<QEntry>& h) {
  const QEntry last = h.back();
  h.pop_back();
  if (!h.empty()) heap_sift_down(h, 0, last);
}

/// Rebuilds heap order in place after external filtering. Internal nodes of
/// a 4-ary heap are 0..(n-2)/4, so (n+2)/4 of them need sifting; n/4 would
/// skip the last one when n % 4 is 2 or 3, leaving a heap-order violation
/// that later pops would surface as time running backwards.
inline void heapify(std::vector<QEntry>& h) {
  for (std::size_t i = (h.size() + 2) / 4; i-- > 0;) {
    heap_sift_down(h, i, h[i]);
  }
}

}  // namespace detail

class IndexedQueue {
 public:
  /// Handle for one pending event: the slot index plus the (odd) generation
  /// the slot carried when the event was filed. The caller packs these into
  /// its public EventId.
  struct Ref {
    std::uint32_t index;
    std::uint32_t gen;
  };

  /// The (time, seq) position of an event in the global fire order.
  struct Key {
    TimePs time;
    std::uint64_t seq;
  };

  /// Coarse ring geometry relative to the fine ring: 2^7 = 128x the bucket
  /// span over a quarter the buckets, so the horizon grows 32x while the
  /// ring's cache footprint shrinks to a quarter. Chosen so the default
  /// coarse horizon (~131 ns) covers the simulator's mid-range delay band —
  /// wire times, DMA steps, retry backoff — measured to be where a single
  /// fine-grained ring hands the far heap its worst cancel-heavy churn,
  /// while the small footprint keeps sparse serial streams (one live TLP
  /// per link) from evicting the simulation's own working set.
  static constexpr unsigned kCoarseGranShift = 7;
  static constexpr unsigned kCoarseBucketsShift = 2;

  /// `gran_log2`: log2 of the fine calendar bucket's span in ps.
  /// `buckets_log2`: log2 of the fine ring's size. Fine horizon =
  /// 2^(gran+buckets) ps; the coarse ring spans 32x that. The defaults
  /// (1 ps x 4096 buckets ~ 4 ns, backed by 128 ps x 1024 ~ 131 ns) are
  /// deliberately fine: the simulator's densest event class —
  /// sub-200-ps poll iterations, timer pacing, engine steps — lands at ~1
  /// entry per fine bucket, so push is a plain append and pop never sifts;
  /// a coarser fine grain piles that class into a few buckets whose
  /// mini-heaps cost as much as one global heap. The mid-range band rides
  /// the coarse ring, still far under one entry per bucket. Everything
  /// past both horizons (timeouts, watchdogs) takes the far heap, where
  /// cancel stays O(1). Per-shard queues use a coarser, smaller ring (see
  /// ShardedEngine).
  explicit IndexedQueue(unsigned gran_log2 = 0, unsigned buckets_log2 = 12)
      : fine_(gran_log2, buckets_log2),
        coarse_(gran_log2 + kCoarseGranShift,
                buckets_log2 > 6 + kCoarseBucketsShift
                    ? buckets_log2 - kCoarseBucketsShift
                    : 6) {}

  IndexedQueue(const IndexedQueue&) = delete;
  IndexedQueue& operator=(const IndexedQueue&) = delete;

  /// Files `fn` at (t, seq). `now` only selects the tier; it must be the
  /// caller's current clock (<= t). Captures up to EventFn::kInlineBytes are
  /// constructed directly in their slot, no allocation.
  template <typename F>
  Ref schedule(TimePs t, TimePs now, std::uint64_t seq, F&& fn) {
    const std::uint32_t index = take_slot();
    slots_[index].fn.emplace(std::forward<F>(fn));
    return file_entry(t, now, seq, index);
  }

  /// Same, for an already-type-erased callable (the sharded backend's
  /// cross-shard mailbox path).
  Ref schedule_fn(TimePs t, TimePs now, std::uint64_t seq, EventFn&& fn) {
    const std::uint32_t index = take_slot();
    slots_[index].fn = std::move(fn);
    return file_entry(t, now, seq, index);
  }

  /// Cancels a pending event. Returns false if it already ran, was already
  /// cancelled, or the ref is unknown. O(1); the stale ordering entry is
  /// dropped lazily (or compacted when stale entries outnumber live ones).
  bool cancel(Ref ref) {
    if (ref.index >= slots_.size()) return false;
    Slot& s = slots_[ref.index];
    // Only the one outstanding pending id carries the slot's current (odd)
    // generation; fired/cancelled ids went stale when the slot was released.
    if (s.gen != ref.gen) return false;
    s.fn = EventFn();  // free captured resources eagerly
    const std::uint8_t tier = s.tier;
    release_slot(ref.index);
    --live_;
    cache_valid_ = false;
    if (tier == kTierHeap) {
      --heap_live_;
      if (heap_.size() > 2 * heap_live_ && heap_.size() >= kCompactMin) {
        compact_heap();
      }
    } else {
      Calendar& c = tier == kTierFine ? fine_ : coarse_;
      // Cancelling any entry other than the ring minimum leaves that
      // minimum the earliest live entry; only its own cancel invalidates.
      if (c.min_valid && ref.index == c.min.slot) c.min_valid = false;
      --c.live;
      ++c.stale;
      if (c.stale > 64 && c.stale > 2 * c.live) compact_calendar(c);
    }
    return true;
  }

  /// Earliest live (time, seq), pruning stale heads on the way. Returns
  /// false when the queue is empty. The found position is cached so an
  /// immediately following pop_min does no second search.
  bool peek(TimePs now, Key* out) {
    if (!cache_valid_ && !find_min(now)) return false;
    if (live_ == 0) return false;
    *out = Key{cached_.time, cached_.seq};
    return true;
  }

  /// Pops the earliest live event. peek() must have returned true with no
  /// intervening schedule/cancel. Returns its key; moves the callable out.
  Key pop_min(EventFn* fn) {
    TCA_ASSERT(cache_valid_ && live_ > 0);
    const detail::QEntry e = cached_;
    if (cached_tier_ != kTierHeap) {
      Calendar& c = cached_tier_ == kTierFine ? fine_ : coarse_;
      std::vector<detail::QEntry>& b = c.buckets[cached_bucket_];
      TCA_ASSERT(!b.empty() && b.front().slot == e.slot);
      detail::heap_pop(b);
      if (b.empty()) c.clear_bit(cached_bucket_);
      --c.live;
      c.min_valid = false;  // popped this ring's minimum
    } else {
      TCA_ASSERT(!heap_.empty() && heap_.front().slot == e.slot);
      detail::heap_pop(heap_);
      --heap_live_;
    }
    Slot& s = slots_[e.slot];
    *fn = std::move(s.fn);
    release_slot(e.slot);
    --live_;
    cache_valid_ = false;
    return Key{e.time, e.seq};
  }

  [[nodiscard]] std::uint64_t live() const { return live_; }
  [[nodiscard]] bool empty() const { return live_ == 0; }

  /// Tier occupancy, for tests and diagnostics.
  [[nodiscard]] std::uint64_t calendar_live() const {
    return fine_.live + coarse_.live;
  }
  [[nodiscard]] std::uint64_t heap_live() const { return heap_live_; }

 private:
  /// Heap size below which cancel() never bothers compacting.
  static constexpr std::size_t kCompactMin = 64;
  static constexpr std::uint32_t kNilSlot = 0xffffffffu;

  static constexpr std::uint8_t kTierFine = 0;
  static constexpr std::uint8_t kTierCoarse = 1;
  static constexpr std::uint8_t kTierHeap = 2;

  /// `gen` parity tracks state: odd = pending, even = free. Every release
  /// (fire or cancel) bumps it, so stale refs and stale ordering entries are
  /// recognized by a single compare. `tier` records where the ordering entry
  /// lives so cancel can keep per-tier live counts without searching.
  struct Slot {
    EventFn fn;
    std::uint32_t gen = 0;
    std::uint32_t next_free = kNilSlot;
    std::uint8_t tier = 0;
  };

  /// One calendar ring: bucket vectors (each a tiny 4-ary heap), two-level
  /// occupancy bitmap, live/stale counts, and a memoized minimum.
  struct Calendar {
    Calendar(unsigned gran, unsigned buckets_log2)
        : gran_log2(gran),
          nbuckets(std::size_t{1} << buckets_log2),
          bmask(nbuckets - 1),
          buckets(nbuckets),
          bitmap(nbuckets / 64, 0),
          summary((nbuckets / 64 + 63) / 64, 0) {
      // The two-level bitmap assumes whole 64-bucket words.
      TCA_ASSERT(buckets_log2 >= 6);
    }

    [[nodiscard]] std::uint64_t bucket_abs(TimePs t) const {
      return static_cast<std::uint64_t>(t) >> gran_log2;
    }

    /// True when `t` falls inside this ring's horizon as seen from `now`
    /// (unsigned wrap sends t < now to the far heap, same as out-of-range).
    [[nodiscard]] bool in_horizon(TimePs t, TimePs now) const {
      return bucket_abs(t) - bucket_abs(now) < nbuckets;
    }

    void set_bit(std::size_t b) {
      bitmap[b >> 6] |= std::uint64_t{1} << (b & 63);
      summary[b >> 12] |= std::uint64_t{1} << ((b >> 6) & 63);
    }
    void clear_bit(std::size_t b) {
      std::uint64_t& w = bitmap[b >> 6];
      w &= ~(std::uint64_t{1} << (b & 63));
      if (w == 0) summary[b >> 12] &= ~(std::uint64_t{1} << ((b >> 6) & 63));
    }

    static constexpr std::size_t kNoBucket = ~std::size_t{0};

    /// First occupied bucket scanning the ring from `from` (inclusive),
    /// wrapping once; kNoBucket when every bucket is empty. The summary
    /// bitmap jumps over empty 64-bucket words, so a sparse ring costs a
    /// handful of word reads instead of a word-by-word walk.
    [[nodiscard]] std::size_t next_occupied(std::size_t from) const {
      const std::uint64_t head =
          bitmap[from >> 6] & (~std::uint64_t{0} << (from & 63));
      if (head != 0) {
        return ((from >> 6) << 6) +
               static_cast<std::size_t>(std::countr_zero(head));
      }
      // Summary scan, ring order, starting strictly after `from`'s word.
      // The final pass revisits that word in full: its remaining set bits
      // all lie below `from` (the masked head above was zero), i.e. one
      // wrap away.
      const std::size_t swords = summary.size();
      std::size_t sw = from >> 12;
      const unsigned used = static_cast<unsigned>((from >> 6) & 63) + 1;
      std::uint64_t s =
          used == 64 ? 0 : summary[sw] & (~std::uint64_t{0} << used);
      for (std::size_t pass = 0; pass <= swords; ++pass) {
        if (s != 0) {
          const std::size_t w =
              (sw << 6) + static_cast<std::size_t>(std::countr_zero(s));
          return (w << 6) +
                 static_cast<std::size_t>(std::countr_zero(bitmap[w]));
        }
        sw = sw + 1 == swords ? 0 : sw + 1;
        s = summary[sw];
      }
      return kNoBucket;
    }

    const unsigned gran_log2;
    const std::size_t nbuckets;
    const std::size_t bmask;

    // Two-level occupancy: one bitmap bit per bucket, one summary bit per
    // 64-bucket bitmap word.
    std::vector<std::vector<detail::QEntry>> buckets;
    std::vector<std::uint64_t> bitmap;
    std::vector<std::uint64_t> summary;
    std::uint64_t live = 0;
    std::uint64_t stale = 0;

    // Memoized ring minimum (live entry). Valid until that entry is popped
    // or cancelled; pushes of earlier entries update it in place.
    bool min_valid = false;
    std::size_t min_bucket = 0;
    detail::QEntry min{};
  };

  std::uint32_t take_slot() {
    std::uint32_t index;
    if (free_head_ != kNilSlot) {
      index = free_head_;
      free_head_ = slots_[index].next_free;
    } else {
      index = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    ++slots_[index].gen;  // even (free) -> odd (pending)
    return index;
  }

  void release_slot(std::uint32_t index) {
    Slot& s = slots_[index];
    ++s.gen;  // odd (pending) -> even (free)
    s.next_free = free_head_;
    free_head_ = index;
  }

  Ref file_entry(TimePs t, TimePs now, std::uint64_t seq,
                 std::uint32_t index) {
    Slot& s = slots_[index];
    const detail::QEntry e{t, seq, index, s.gen};
    if (fine_.in_horizon(t, now)) {
      file_calendar(fine_, e);
      s.tier = kTierFine;
    } else if (coarse_.in_horizon(t, now)) {
      file_calendar(coarse_, e);
      s.tier = kTierCoarse;
    } else {
      detail::heap_push(heap_, e);
      ++heap_live_;
      s.tier = kTierHeap;
    }
    ++live_;
    // A new earliest event would make the cached minimum wrong; recompute
    // lazily unless the new entry provably sorts after it.
    if (cache_valid_ && detail::earlier(e, cached_)) cache_valid_ = false;
    return Ref{index, s.gen};
  }

  void file_calendar(Calendar& c, const detail::QEntry& e) {
    const std::size_t b =
        static_cast<std::size_t>(c.bucket_abs(e.time)) & c.bmask;
    detail::heap_push(c.buckets[b], e);
    c.set_bit(b);
    ++c.live;
    // Track the ring minimum incrementally: a new earliest entry replaces
    // it in O(1), anything later leaves it untouched.
    if (c.min_valid && detail::earlier(e, c.min)) {
      c.min = e;
      c.min_bucket = b;
    }
  }

  /// Recomputes `c.min`: the first live entry in ring order from now's
  /// bucket (see file comment for why ring order is time order). During the
  /// scan only buckets whose bit is set are visited; a bucket that turns
  /// out to be all-stale is emptied and its bit cleared, so the resume from
  /// b+1 cannot revisit it.
  void rescan_calendar(Calendar& c, TimePs now) {
    std::size_t b = static_cast<std::size_t>(c.bucket_abs(now)) & c.bmask;
    for (;;) {
      b = c.next_occupied(b);
      if (b == Calendar::kNoBucket) return;
      std::vector<detail::QEntry>& bucket = c.buckets[b];
      while (!bucket.empty()) {
        const detail::QEntry& top = bucket.front();
        if (slots_[top.slot].gen == top.gen) {
          c.min = top;
          c.min_bucket = b;
          c.min_valid = true;
          return;
        }
        detail::heap_pop(bucket);
        --c.stale;
      }
      c.clear_bit(b);
      b = (b + 1) & c.bmask;
    }
  }

  /// Locates the earliest live entry across all tiers, pruning stale heads
  /// as it goes, and fills the pop cache. False when nothing is live.
  bool find_min(TimePs now) {
    // Calendars first: each ring's minimum is memoized across calls —
    // pushes track it incrementally and only popping or cancelling the
    // minimum itself forces a rescan — so a pop served by one tier touches
    // no bucket of the others.
    bool have = false;
    if (fine_.live > 0) {
      if (!fine_.min_valid) rescan_calendar(fine_, now);
      if (fine_.min_valid) {
        cached_ = fine_.min;
        cached_tier_ = kTierFine;
        cached_bucket_ = fine_.min_bucket;
        have = true;
      }
    }
    if (coarse_.live > 0) {
      if (!coarse_.min_valid) rescan_calendar(coarse_, now);
      if (coarse_.min_valid &&
          (!have || detail::earlier(coarse_.min, cached_))) {
        cached_ = coarse_.min;
        cached_tier_ = kTierCoarse;
        cached_bucket_ = coarse_.min_bucket;
        have = true;
      }
    }
    // Far tier: the heap front — live or stale — is a lower bound on every
    // heap entry, so once a calendar minimum sorts before it nothing in
    // the heap can matter and stale heads stay put for the amortized bulk
    // compaction in cancel(). Pruning them here one sift at a time is what
    // made cancel-heavy loads pay per-pop instead (a stale front is only
    // popped when it actually blocks the decision).
    while (!heap_.empty()) {
      const detail::QEntry& top = heap_.front();
      if (have && !detail::earlier(top, cached_)) break;
      if (slots_[top.slot].gen == top.gen) {
        cached_ = top;
        cached_tier_ = kTierHeap;
        have = true;
        break;
      }
      detail::heap_pop(heap_);
    }
    cache_valid_ = have;
    return have;
  }

  /// Drops stale far-heap entries and rebuilds the heap in place. Fire order
  /// is untouched: pops follow the (time, seq) total order, not the array
  /// layout.
  void compact_heap() {
    std::size_t out = 0;
    for (const detail::QEntry& e : heap_) {
      if (slots_[e.slot].gen == e.gen) heap_[out++] = e;
    }
    heap_.resize(out);
    detail::heapify(heap_);
  }

  /// Sweeps cancelled entries out of every bucket of one ring. Rare: only
  /// when stale entries outnumber live ones (cancel storms aimed inside the
  /// horizon), so the cost amortizes like the far-heap compaction. The
  /// memoized minimum survives: it is a live entry, and heapify keeps each
  /// bucket's earliest live entry at the front.
  void compact_calendar(Calendar& c) {
    for (std::size_t b = 0; b < c.nbuckets; ++b) {
      std::vector<detail::QEntry>& bucket = c.buckets[b];
      if (bucket.empty()) continue;
      std::size_t out = 0;
      for (const detail::QEntry& e : bucket) {
        if (slots_[e.slot].gen == e.gen) bucket[out++] = e;
      }
      bucket.resize(out);
      detail::heapify(bucket);
      if (bucket.empty()) c.clear_bit(b);
    }
    c.stale = 0;
  }

  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNilSlot;
  std::uint64_t live_ = 0;

  // Near-now calendar rings: fine for the hot sub-horizon classes, coarse
  // for the mid-range delay band.
  Calendar fine_;
  Calendar coarse_;

  // Far heap.
  std::vector<detail::QEntry> heap_;
  std::uint64_t heap_live_ = 0;

  // Pop cache filled by find_min.
  bool cache_valid_ = false;
  std::uint8_t cached_tier_ = kTierHeap;
  std::size_t cached_bucket_ = 0;
  detail::QEntry cached_{};
};

}  // namespace tca::sim
