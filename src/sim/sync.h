// Synchronization primitives for simulated processes.
//
// All resumptions are deferred through the Scheduler queue (never inline), so
// firing a trigger from inside another component's event keeps deterministic
// FIFO ordering and bounded stack depth.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/error.h"
#include "sim/scheduler.h"
#include "sim/task.h"

namespace tca::sim {

/// A latching event: wait() suspends until fire(); once fired, waits complete
/// immediately until reset(). pulse() wakes current waiters without latching.
class Trigger {
 public:
  explicit Trigger(Scheduler& sched) : sched_(sched) {}
  Trigger(const Trigger&) = delete;
  Trigger& operator=(const Trigger&) = delete;

  [[nodiscard]] bool fired() const { return fired_; }
  [[nodiscard]] std::size_t waiter_count() const { return waiters_.size(); }

  /// Latches the trigger and wakes all waiters.
  void fire() {
    fired_ = true;
    wake_all();
  }

  /// Wakes current waiters without latching (edge-triggered notify).
  void pulse() { wake_all(); }

  void reset() { fired_ = false; }

  auto wait() {
    struct Awaiter {
      Trigger& trigger;
      bool await_ready() const { return trigger.fired_; }
      void await_suspend(std::coroutine_handle<> h) {
        trigger.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  void wake_all() {
    // Move out first: a resumed waiter may wait() again immediately.
    std::vector<std::coroutine_handle<>> ready;
    ready.swap(waiters_);
    for (auto h : ready) {
      sched_.schedule_after(0, [h] { h.resume(); });
    }
  }

  Scheduler& sched_;
  bool fired_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// All-party rendezvous: the first n-1 arrivals suspend, the n-th wakes
/// everyone. Reusable across rounds (generation-free because resumption is
/// deferred through the scheduler and arrivals within one round cannot
/// interleave with the next round's arrivals of the same task).
class Barrier {
 public:
  Barrier(Scheduler& sched, std::size_t parties)
      : trigger_(sched), parties_(parties) {
    TCA_ASSERT(parties > 0);
  }
  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  [[nodiscard]] std::size_t parties() const { return parties_; }
  [[nodiscard]] std::size_t waiting() const { return arrived_; }

  /// Suspends until all parties have arrived.
  Task<> arrive() {
    if (++arrived_ == parties_) {
      arrived_ = 0;
      trigger_.pulse();
    } else {
      co_await trigger_.wait();
    }
  }

 private:
  Trigger trigger_;
  std::size_t parties_;
  std::size_t arrived_ = 0;
};

/// Counting semaphore; models finite resources such as DMA read tags or
/// receive-buffer slots. FIFO fairness: releases wake waiters in wait order.
class Semaphore {
 public:
  Semaphore(Scheduler& sched, std::int64_t initial)
      : sched_(sched), permits_(initial) {
    TCA_ASSERT(initial >= 0);
  }
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  [[nodiscard]] std::int64_t available() const { return permits_; }
  [[nodiscard]] std::size_t waiter_count() const { return waiters_.size(); }

  /// Non-blocking acquire; returns false if no permit is available.
  bool try_acquire() {
    if (permits_ > 0 && waiters_.empty()) {
      --permits_;
      return true;
    }
    return false;
  }

  auto acquire() {
    struct Awaiter {
      Semaphore& sem;
      bool await_ready() const {
        return sem.permits_ > 0 && sem.waiters_.empty();
      }
      void await_suspend(std::coroutine_handle<> h) {
        sem.waiters_.push_back(h);
      }
      void await_resume() const {
        // A waiter resumed by release() was granted its permit there; the
        // fast path consumes it here.
        if (sem.granted_ > 0) {
          --sem.granted_;
        } else {
          TCA_ASSERT(sem.permits_ > 0);
          --sem.permits_;
        }
      }
    };
    return Awaiter{*this};
  }

  void release(std::int64_t n = 1) {
    TCA_ASSERT(n >= 0);
    permits_ += n;
    while (permits_ > 0 && !waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      --permits_;
      ++granted_;
      sched_.schedule_after(0, [h] { h.resume(); });
    }
  }

 private:
  Scheduler& sched_;
  std::int64_t permits_;
  std::int64_t granted_ = 0;  // permits pre-consumed for scheduled waiters
  std::deque<std::coroutine_handle<>> waiters_;
};

}  // namespace tca::sim
