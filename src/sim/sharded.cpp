#include "sim/sharded.h"

#include <barrier>
#include <cstdlib>
#include <thread>

#include "common/trace.h"

namespace tca::sim {

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  return end != nullptr && *end == '\0' ? parsed : fallback;
}

}  // namespace

ShardedEngine::ShardedEngine(const Config& cfg) : cfg_(cfg) {
  TCA_ASSERT(cfg_.shards >= 1 && cfg_.shards <= kMaxShards);
  TCA_ASSERT(cfg_.lookahead_ps > 0);
  shards_.reserve(cfg_.shards);
  for (std::uint32_t s = 0; s < cfg_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(cfg_));
  }
  mail_.resize(static_cast<std::size_t>(cfg_.shards) * cfg_.shards);
}

ShardedEngine::~ShardedEngine() = default;

ShardedEngine::Config ShardedEngine::env_config() {
  Config cfg;
  cfg.shards = static_cast<std::uint32_t>(
      std::clamp<std::uint64_t>(env_u64("TCA_SCHED_SHARDS", 16), 1, kMaxShards));
  cfg.lookahead_ps = static_cast<TimePs>(
      env_u64("TCA_SCHED_LOOKAHEAD_PS", 25'000));
  cfg.threads =
      static_cast<unsigned>(std::min<std::uint64_t>(
          env_u64("TCA_SCHED_THREADS", 0), 64));
  return cfg;
}

bool ShardedEngine::cancel(std::uint64_t id) {
  const std::uint64_t lo = id & 0xffffffu;
  if (lo == 0) return false;
  const auto shard = static_cast<std::uint32_t>((id >> 24) & 0xffu);
  if (shard >= shards_.size()) return false;
  if (parallel()) {
    // During the parallel window only the owning shard's executor may touch
    // the shard queue; outside the window (setup, between runs) anything
    // goes — the engine is quiescent.
    const detail::ShardExec& ex = detail::t_shard_exec;
    TCA_ASSERT(ex.engine != this || ex.shard == shard);
  }
  const IndexedQueue::Ref ref{static_cast<std::uint32_t>(lo - 1),
                              static_cast<std::uint32_t>(id >> 32)};
  const bool ok = shards_[shard]->q.cancel(ref);
  if (ok && !parallel()) refresh_head(shard);
  return ok;
}

void ShardedEngine::refresh_head(std::uint32_t shard) {
  Shard& sh = *shards_[shard];
  ++sh.version;
  IndexedQueue::Key k;
  if (sh.q.peek(now_, &k)) {
    heads_.push_back(Head{k.time, k.seq, shard, sh.version});
    std::push_heap(heads_.begin(), heads_.end(), head_later);
  }
}

bool ShardedEngine::run_one(TimePs limit) {
  TCA_ASSERT(!parallel() &&
             "epoch mode commits whole windows; use run()/run_until()");
  return run_one_merge(limit);
}

bool ShardedEngine::run_one_merge(TimePs limit) {
  while (!heads_.empty()) {
    const Head h = heads_.front();
    Shard& sh = *shards_[h.shard];
    if (h.version != sh.version) {
      // A later schedule/cancel/pop on this shard replaced its front entry.
      std::pop_heap(heads_.begin(), heads_.end(), head_later);
      heads_.pop_back();
      continue;
    }
    if (h.time > limit) return false;
    IndexedQueue::Key k;
    const bool have = sh.q.peek(now_, &k);
    TCA_ASSERT(have && k.time == h.time && k.seq == h.seq);
    EventFn fn;
    sh.q.pop_min(&fn);
    std::pop_heap(heads_.begin(), heads_.end(), head_later);
    heads_.pop_back();
    refresh_head(h.shard);
    if (h.time != now_) {
      now_ = h.time;
      Log::set_now(now_);
    }
    ++processed_;
    ArenaScope arena(&sh.arena);
    ShardExecScope exec(this, h.shard, now_);
    fn();
    return true;
  }
  return false;
}

void ShardedEngine::run_until(TimePs t) {
  TCA_ASSERT(t >= now_);
  if (parallel()) {
    run_epochs(t);
  } else {
    while (run_one_merge(t)) {
    }
  }
  if (t != kNoLimit && now_ < t) {
    now_ = t;
    Log::set_now(now_);
  }
}

void ShardedEngine::run() { run_until(kNoLimit); }

bool ShardedEngine::empty() const {
  for (const auto& sh : shards_) {
    if (!sh->q.empty()) return false;
  }
  for (const auto& box : mail_) {
    if (!box.empty()) return false;
  }
  return true;
}

std::uint64_t ShardedEngine::processed() const {
  std::uint64_t total = processed_;
  for (const auto& sh : shards_) total += sh->processed;
  return total;
}

// --- Epoch mode -------------------------------------------------------------

void ShardedEngine::exec_shard(std::uint32_t shard, TimePs epoch_end,
                               TimePs limit) {
  Shard& sh = *shards_[shard];
  // All pending events are >= the committed clock (the window starts at the
  // global minimum), so the shard clock may be pulled up to it.
  sh.local_now = std::max(sh.local_now, now_);
  ArenaScope arena(&sh.arena);
  ShardExecScope exec(this, shard, sh.local_now);
  for (;;) {
    IndexedQueue::Key k;
    if (!sh.q.peek(sh.local_now, &k)) break;
    if (k.time >= epoch_end || k.time > limit) break;
    EventFn fn;
    sh.q.pop_min(&fn);
    sh.local_now = k.time;
    ShardExecScope::set_now(k.time);
    ++sh.processed;
    fn();
  }
}

void ShardedEngine::drain_mail(std::uint32_t dst) {
  Shard& d = *shards_[dst];
  const std::size_t n = shards_.size();
  for (std::size_t src = 0; src < n; ++src) {
    std::vector<MailItem>& box = mail_[src * n + dst];
    for (MailItem& item : box) {
      TCA_ASSERT(item.t >= d.local_now);
      d.q.schedule_fn(item.t, d.local_now, d.seq++, std::move(item.fn));
    }
    box.clear();
  }
}

bool ShardedEngine::plan_epoch(TimePs limit) {
  TimePs min_t = kNoLimit;
  for (const auto& sh : shards_) {
    IndexedQueue::Key k;
    if (sh->q.peek(sh->local_now, &k)) min_t = std::min(min_t, k.time);
  }
  if (min_t == kNoLimit || min_t > limit) return false;
  // Epochs jump to the earliest pending event, so a quiet millisecond costs
  // one pass, not lookahead-sized increments.
  if (min_t > now_) {
    now_ = min_t;
    Log::set_now(now_);
  }
  epoch_end_ = now_ > kNoLimit - cfg_.lookahead_ps ? kNoLimit
                                                   : now_ + cfg_.lookahead_ps;
  return true;
}

void ShardedEngine::run_epochs(TimePs limit) {
  // The Trace recorder is a process-wide single-threaded singleton; events
  // recording from parallel shard executors would race. Merge mode is the
  // tracing configuration.
  TCA_ASSERT(!Trace::instance().enabled() &&
             "tracing requires merge mode (threads == 0)");
  const unsigned workers = std::max(1u, std::min<unsigned>(
      cfg_.threads, static_cast<unsigned>(shards_.size())));

  if (!plan_epoch(limit)) return;

  // Persistent worker pool for the whole call: the barrier both paces the
  // three phases (execute window / drain mailboxes / plan next) and
  // publishes the plain shared state (epoch_end_, now_, stop) written by
  // worker 0 while the others wait.
  bool stop = false;
  std::barrier<> bar(workers);
  const std::uint32_t nshards = shard_count();

  auto worker = [&](unsigned w) {
    for (;;) {
      bar.arrive_and_wait();  // window parameters published
      if (stop) return;
      const TimePs window_end = epoch_end_;
      for (std::uint32_t s = w; s < nshards; s += workers) {
        exec_shard(s, window_end, limit);
      }
      bar.arrive_and_wait();  // all executors done; mailboxes frozen
      for (std::uint32_t d = w; d < nshards; d += workers) {
        drain_mail(d);
      }
      bar.arrive_and_wait();  // all drains done
      if (w == 0) stop = !plan_epoch(limit);
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (unsigned w = 1; w < workers; ++w) {
    pool.emplace_back(worker, w);
  }
  worker(0);
  for (std::thread& t : pool) t.join();
}

}  // namespace tca::sim
