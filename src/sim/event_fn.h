// Small-buffer-optimized callable for scheduler events.
//
// The event queue is the hottest data structure in the simulator: every TLP
// serialization, DMA descriptor step, credit release and interrupt is one
// callback through it. std::function heap-allocates any capture larger than
// its ~16-byte internal buffer, which made every LinkPort / Dmac / driver
// event a malloc+free pair. EventFn stores captures up to kInlineBytes
// in-place (sized for the largest hot capture: a LinkPort pointer plus a
// moved-in Tlp), falling back to the heap only for oversized or over-aligned
// callables — and counts those fallbacks so tests can assert the hot paths
// stay allocation-free.
//
// Trivially-copyable inline captures (pointers + scalars — most of the
// simulator's hot events) take a fast path on top of that: moves are a plain
// fixed-size memcpy and destruction is a no-op, with no indirect call.
//
// Move-only (so move-only captures work), nothrow-movable, empty-testable.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "common/error.h"
#include "sim/arena.h"

namespace tca::sim {

class EventFn {
 public:
  /// Inline capture capacity. 88 bytes fits the simulator's largest hot
  /// capture ([this, Tlp, base] in peach2::Chip register handling) with the
  /// whole EventFn landing on 96 bytes — 1.5 cache lines.
  static constexpr std::size_t kInlineBytes = 88;

  EventFn() noexcept = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    construct<F>(std::forward<F>(f));
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  /// Destroys the current callable (if any) and constructs `f` in place —
  /// the allocation- and relocation-free way to fill a slot.
  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  void emplace(F&& f) {
    reset();
    construct<F>(std::forward<F>(f));
  }

  void operator()() {
    TCA_ASSERT(vt_ != nullptr);
    vt_->invoke(*this);
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return vt_ != nullptr;
  }

  /// True when the wrapped callable lives on the heap (capture too large or
  /// over-aligned for the inline buffer).
  [[nodiscard]] bool heap_allocated() const noexcept {
    return vt_ != nullptr && vt_->heap;
  }

  /// Process-wide count of heap-fallback constructions. Steady-state
  /// scheduler traffic must not advance it (asserted by tests and
  /// bench_sim_core). Atomic: parallel shard executors may take the
  /// fallback concurrently.
  static std::uint64_t heap_constructions() noexcept {
    return heap_constructions_.load(std::memory_order_relaxed);
  }

 private:
  struct VTable {
    void (*invoke)(EventFn&);
    void (*relocate)(EventFn& src, EventFn& dst) noexcept;
    void (*destroy)(EventFn&) noexcept;
    bool heap;
    /// Trivially-copyable inline callable: relocation is memcpy, destruction
    /// is a no-op — both handled inline without an indirect call.
    bool trivial;
  };

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineBytes &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  /// Over-aligned callables can't use the arena path (arena blocks are
  /// max_align_t-aligned); they fall back to plain aligned new/delete.
  template <typename D>
  static constexpr bool arena_eligible() {
    return alignof(D) <= alignof(std::max_align_t);
  }

  template <typename F, typename D = std::decay_t<F>>
  void construct(F&& f) {
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      vt_ = &kVTable<D, true>;
    } else {
      // Oversized capture: the fallback allocation recycles through the
      // executing shard's FrameArena when one is active (global heap
      // otherwise — setup code, over-aligned captures).
      void* p;
      if constexpr (arena_eligible<D>()) {
        p = ::new (arena_alloc(sizeof(D))) D(std::forward<F>(f));
      } else {
        p = new D(std::forward<F>(f));
      }
      *static_cast<void**>(static_cast<void*>(storage_)) = p;
      vt_ = &kVTable<D, false>;
      heap_constructions_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  template <typename D, bool kInline>
  struct Ops {
    static D* get(EventFn& e) noexcept {
      void* p = static_cast<void*>(e.storage_);
      if constexpr (kInline) {
        return std::launder(static_cast<D*>(p));
      } else {
        return static_cast<D*>(*static_cast<void**>(p));
      }
    }
    static void invoke(EventFn& e) { (*get(e))(); }
    static void relocate(EventFn& src, EventFn& dst) noexcept {
      if constexpr (kInline) {
        ::new (static_cast<void*>(dst.storage_)) D(std::move(*get(src)));
        get(src)->~D();
      } else {
        *static_cast<void**>(static_cast<void*>(dst.storage_)) = get(src);
      }
    }
    static void destroy(EventFn& e) noexcept {
      if constexpr (kInline) {
        get(e)->~D();
      } else if constexpr (arena_eligible<D>()) {
        D* p = get(e);
        p->~D();
        arena_free(p, sizeof(D));  // routes to the owning arena via header
      } else {
        delete get(e);
      }
    }
  };

  template <typename D, bool kInline>
  static constexpr VTable kVTable = {
      &Ops<D, kInline>::invoke, &Ops<D, kInline>::relocate,
      &Ops<D, kInline>::destroy, !kInline,
      kInline && std::is_trivially_copyable_v<D>};

  void move_from(EventFn& other) noexcept {
    vt_ = other.vt_;
    if (vt_ != nullptr) {
      if (vt_->trivial) {
        // Fixed-size copy inlines to a handful of vector moves; trivially
        // copyable guarantees the bytes are the object.
        std::memcpy(storage_, other.storage_, kInlineBytes);
      } else {
        vt_->relocate(other, *this);
      }
      other.vt_ = nullptr;
    }
  }

  void reset() noexcept {
    if (vt_ != nullptr) {
      if (!vt_->trivial) vt_->destroy(*this);
      vt_ = nullptr;
    }
  }

  inline static std::atomic<std::uint64_t> heap_constructions_{0};

  alignas(std::max_align_t) std::byte storage_[kInlineBytes];
  const VTable* vt_ = nullptr;
};

}  // namespace tca::sim
