// Discrete-event scheduler.
//
// Deterministic: events fire in (time, insertion-order) order, so two runs
// with the same inputs produce identical traces. All coroutine resumptions
// in the simulator are routed through this queue, which keeps call stacks
// shallow and event ordering well-defined even when a component fires a
// trigger from inside another component's callback.
//
// Three queue backends share the public API and the ordering contract:
//
//  * kIndexed (default): the two-tier IndexedQueue — a near-now calendar
//    ring fronting a 4-ary min-heap — over a slot pool of allocation-free
//    sim::EventFn (see indexed_queue.h for the full design). Event fires
//    run under the scheduler's FrameArena, so coroutine frames spawned
//    inside events recycle through pooled memory instead of the global
//    heap (see arena.h).
//  * kSharded: per-shard IndexedQueues + per-shard arenas behind a
//    ShardedEngine (see sharded.h). Merge mode (the default, what
//    TCA_SCHED_BASELINE=2 selects) executes the exact global (time, seq)
//    order of kIndexed single-threaded — byte-identical traces — with
//    per-shard locality; epoch mode (threads >= 1, explicit Config) runs
//    conservative lookahead windows in parallel for shard-confined
//    workloads. schedule_on()/schedule_on_after() tag events with a shard
//    (ignored by the other backends), and untagged schedules inherit the
//    currently executing shard.
//  * kBaseline: the seed design — std::priority_queue of (time, id,
//    std::function) plus an unordered_set of cancelled-id tombstones
//    checked on every pop. Kept as the A/B reference for bench_sim_core
//    and selectable via TCA_SCHED_BASELINE=1 so any workload can be
//    replayed on all backends; simulated results are identical by
//    construction.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/error.h"
#include "common/log.h"
#include "common/units.h"
#include "sim/arena.h"
#include "sim/event_fn.h"
#include "sim/indexed_queue.h"
#include "sim/sharded.h"

namespace tca::sim {

class Scheduler {
 public:
  using EventId = std::uint64_t;
  static constexpr EventId kInvalidEvent = 0;

  /// Queue backend (see file comment). kBaseline exists for A/B performance
  /// comparison and regression hunting, not production use.
  enum class QueueImpl { kIndexed, kBaseline, kSharded };

  explicit Scheduler(QueueImpl impl = default_impl()) : impl_(impl) {
    if (impl_ == QueueImpl::kSharded) {
      sharded_ = std::make_unique<ShardedEngine>(ShardedEngine::env_config());
    }
  }

  /// Sharded backend with an explicit configuration (shard count, lookahead
  /// window, worker threads). The env-driven constructor above always picks
  /// merge mode; parallel epoch execution is opt-in through here.
  explicit Scheduler(const ShardedEngine::Config& cfg)
      : impl_(QueueImpl::kSharded),
        sharded_(std::make_unique<ShardedEngine>(cfg)) {}

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// kIndexed unless the TCA_SCHED_BASELINE environment variable says
  /// otherwise: "1" (or any other non-empty value but "0" and "2") selects
  /// kBaseline, "2" selects kSharded merge mode. Read once per process.
  static QueueImpl default_impl();

  [[nodiscard]] QueueImpl impl() const { return impl_; }

  /// Current simulated time. Inside an epoch-mode event this is the
  /// executing shard's local clock — exactly what relative delays must be
  /// measured against.
  [[nodiscard]] TimePs now() const {
    return impl_ == QueueImpl::kSharded ? sharded_->now() : now_;
  }

  /// Schedules `fn` at absolute time `t` (must be >= now). Returns an id
  /// usable with cancel(). Captures up to EventFn::kInlineBytes are stored
  /// without heap allocation, constructed directly in their slot. On the
  /// sharded backend the event lands on the currently executing shard.
  template <typename F>
  EventId schedule_at(TimePs t, F&& fn) {
    if (impl_ == QueueImpl::kSharded) {
      return sharded_->schedule(sharded_->current_shard(), t,
                                std::forward<F>(fn));
    }
    if (impl_ == QueueImpl::kBaseline) {
      if constexpr (std::is_copy_constructible_v<std::decay_t<F>>) {
        return schedule_baseline(t, std::function<void()>(std::forward<F>(fn)));
      } else {
        TCA_ASSERT(false && "baseline queue requires copyable callables");
      }
    }
    TCA_ASSERT(t >= now_);
    const IndexedQueue::Ref ref =
        queue_.schedule(t, now_, seq_++, std::forward<F>(fn));
    // Slot index + 1 keeps 0 == kInvalidEvent; the generation stamp makes ids
    // from recycled slots distinguishable so cancel-after-fire reports false.
    return (static_cast<EventId>(ref.gen) << 32) | (ref.index + 1u);
  }

  /// Schedules `fn` after a relative delay (>= 0).
  template <typename F>
  EventId schedule_after(TimePs delay, F&& fn) {
    TCA_ASSERT(delay >= 0);
    return schedule_at(now() + delay, std::forward<F>(fn));
  }

  /// Schedules `fn` at absolute time `t` on `shard` (sharded backend; the
  /// tag is ignored elsewhere, so components may tag unconditionally).
  /// Fabric code tags link-crossing events with the destination endpoint's
  /// shard — that affinity is what partitions the event space for the
  /// parallel backend.
  template <typename F>
  EventId schedule_on(std::uint32_t shard, TimePs t, F&& fn) {
    if (impl_ == QueueImpl::kSharded) {
      return sharded_->schedule(shard, t, std::forward<F>(fn));
    }
    return schedule_at(t, std::forward<F>(fn));
  }

  template <typename F>
  EventId schedule_on_after(std::uint32_t shard, TimePs delay, F&& fn) {
    TCA_ASSERT(delay >= 0);
    return schedule_on(shard, now() + delay, std::forward<F>(fn));
  }

  /// Cancels a pending event. Returns false if it already ran, was already
  /// cancelled, or the id is unknown. O(1) on the indexed and sharded
  /// backends.
  bool cancel(EventId id) {
    if (impl_ == QueueImpl::kSharded) return sharded_->cancel(id);
    if (impl_ == QueueImpl::kBaseline) return cancel_baseline(id);
    const std::uint64_t lo = id & 0xffffffffu;
    if (lo == 0) return false;
    return queue_.cancel(IndexedQueue::Ref{
        static_cast<std::uint32_t>(lo - 1), static_cast<std::uint32_t>(id >> 32)});
  }

  /// Runs the earliest pending event. Returns false if the queue is empty.
  bool step() { return run_one(kNoLimit); }

  /// Runs events until the queue is empty.
  void run() {
    if (impl_ == QueueImpl::kSharded) {
      sharded_->run();
      return;
    }
    if (impl_ == QueueImpl::kIndexed) {
      // One arena scope spans the whole drain: two thread-local writes
      // total instead of two per event (step() keeps the per-event scope).
      ArenaScope scope(&arena_);
      while (fire_next_indexed(kNoLimit)) {
      }
      return;
    }
    while (run_one(kNoLimit)) {
    }
  }

  /// Runs all events with time <= `t`, then advances now to `t`.
  void run_until(TimePs t);

  /// Runs all events within the next `duration` of simulated time.
  void run_for(TimePs duration) { run_until(now() + duration); }

  [[nodiscard]] bool empty() const {
    switch (impl_) {
      case QueueImpl::kSharded:
        return sharded_->empty();
      case QueueImpl::kBaseline:
        return b_queue_.size() == b_cancelled_.size();
      case QueueImpl::kIndexed:
        break;
    }
    return queue_.empty();
  }

  [[nodiscard]] std::uint64_t events_processed() const {
    return impl_ == QueueImpl::kSharded ? sharded_->processed() : processed_;
  }

  /// The sharded engine, when active (tests/bench introspection: shard
  /// count, per-shard arenas and queues). Null on other backends.
  [[nodiscard]] ShardedEngine* sharded() { return sharded_.get(); }

  /// The indexed backend's frame arena (coroutine frames and EventFn heap
  /// fallbacks allocated during event execution recycle through it).
  [[nodiscard]] FrameArena& arena() { return arena_; }

 private:
  static constexpr TimePs kNoLimit = std::numeric_limits<TimePs>::max();

  /// Indexed drain step: fires the earliest live event iff its time <=
  /// `limit`. Same-timestamp events drain under one clock update; the Log
  /// timestamp only moves when simulated time does. The caller must hold
  /// an ArenaScope on the scheduler's arena (run()/run_until() hoist one
  /// scope around their drain loops; run_one_indexed opens a per-event
  /// one for step()).
  bool fire_next_indexed(TimePs limit) {
    IndexedQueue::Key k;
    if (!queue_.peek(now_, &k)) return false;
    if (k.time > limit) return false;
    TCA_ASSERT(k.time >= now_);
    EventFn fn;
    queue_.pop_min(&fn);
    if (k.time != now_) {
      now_ = k.time;
      Log::set_now(now_);
    }
    ++processed_;
    fn();
    return true;
  }

  bool run_one_indexed(TimePs limit) {
    ArenaScope scope(&arena_);
    return fire_next_indexed(limit);
  }

  // --- Baseline (seed) backend ---------------------------------------------

  struct BaselineEntry {
    TimePs time;
    EventId id;
    std::function<void()> fn;
  };
  struct BaselineLater {
    bool operator()(const BaselineEntry& a, const BaselineEntry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;  // FIFO among same-time events
    }
  };

  EventId schedule_baseline(TimePs t, std::function<void()> fn);
  bool cancel_baseline(EventId id);
  bool run_one_baseline(TimePs limit);

  // --- Shared drain loop ---------------------------------------------------

  /// The one drain loop: skips cancelled heads, then fires the earliest
  /// event iff its time <= `limit`. Returns false when nothing fired.
  bool run_one(TimePs limit) {
    switch (impl_) {
      case QueueImpl::kSharded:
        return sharded_->run_one(limit);
      case QueueImpl::kBaseline:
        return run_one_baseline(limit);
      case QueueImpl::kIndexed:
        break;
    }
    return run_one_indexed(limit);
  }

  QueueImpl impl_;
  TimePs now_ = 0;
  std::uint64_t processed_ = 0;

  // Indexed backend state. The arena is declared before the queue so
  // pending EventFns (whose heap-fallback captures may live in the arena)
  // are destroyed while the arena is still alive.
  FrameArena arena_;
  IndexedQueue queue_;
  std::uint64_t seq_ = 0;

  // Sharded backend.
  std::unique_ptr<ShardedEngine> sharded_;

  // Baseline backend state.
  EventId b_next_id_ = 1;
  std::priority_queue<BaselineEntry, std::vector<BaselineEntry>, BaselineLater>
      b_queue_;
  std::unordered_set<EventId> b_cancelled_;
};

}  // namespace tca::sim
