// Discrete-event scheduler.
//
// Single-threaded, deterministic: events fire in (time, insertion-order)
// order, so two runs with the same inputs produce identical traces. All
// coroutine resumptions in the simulator are routed through this queue, which
// keeps call stacks shallow and event ordering well-defined even when a
// component fires a trigger from inside another component's callback.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/units.h"

namespace tca::sim {

class Scheduler {
 public:
  using EventId = std::uint64_t;
  static constexpr EventId kInvalidEvent = 0;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time.
  [[nodiscard]] TimePs now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (must be >= now). Returns an id
  /// usable with cancel().
  EventId schedule_at(TimePs t, std::function<void()> fn);

  /// Schedules `fn` after a relative delay (>= 0).
  EventId schedule_after(TimePs delay, std::function<void()> fn);

  /// Cancels a pending event. Returns false if it already ran, was already
  /// cancelled, or the id is unknown.
  bool cancel(EventId id);

  /// Runs the earliest pending event. Returns false if the queue is empty.
  bool step();

  /// Runs events until the queue is empty.
  void run();

  /// Runs all events with time <= `t`, then advances now to `t`.
  void run_until(TimePs t);

  /// Runs all events within the next `duration` of simulated time.
  void run_for(TimePs duration) { run_until(now_ + duration); }

  [[nodiscard]] bool empty() const { return queue_.size() == cancelled_.size(); }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

 private:
  struct Entry {
    TimePs time;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;  // FIFO among same-time events
    }
  };

  bool pop_and_run();

  TimePs now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t processed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace tca::sim
