// Discrete-event scheduler.
//
// Single-threaded, deterministic: events fire in (time, insertion-order)
// order, so two runs with the same inputs produce identical traces. All
// coroutine resumptions in the simulator are routed through this queue, which
// keeps call stacks shallow and event ordering well-defined even when a
// component fires a trigger from inside another component's callback.
//
// Two queue backends share the public API and the ordering contract:
//
//  * kIndexed (default, the production engine): callables live in a slot
//    pool as allocation-free sim::EventFn; a 4-ary min-heap of small
//    (time, seq, slot, gen) entries orders them. Slots carry a generation
//    counter with odd = pending, even = free: cancel() checks the id's
//    generation, destroys the capture and releases the slot immediately —
//    O(1), no tombstone set — and the stale heap entry is dropped when it
//    surfaces (its generation no longer matches) or when stale entries
//    outnumber live ones and the heap is compacted in place. Sifts move
//    24-byte entries hole-style (no swaps, callables never move during
//    ordering), pops do an array index instead of a hash lookup, and the
//    clock/log timestamp is updated once per distinct timestamp instead of
//    once per event.
//  * kBaseline: the seed design — std::priority_queue of (time, id,
//    std::function) plus an unordered_set of cancelled-id tombstones checked
//    on every pop. Kept as the A/B reference for bench_sim_core and
//    selectable via TCA_SCHED_BASELINE=1 so any workload can be replayed on
//    both backends; simulated results are identical by construction.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/error.h"
#include "common/log.h"
#include "common/units.h"
#include "sim/event_fn.h"

namespace tca::sim {

class Scheduler {
 public:
  using EventId = std::uint64_t;
  static constexpr EventId kInvalidEvent = 0;

  /// Queue backend (see file comment). kBaseline exists for A/B performance
  /// comparison and regression hunting, not production use.
  enum class QueueImpl { kIndexed, kBaseline };

  explicit Scheduler(QueueImpl impl = default_impl()) : impl_(impl) {}
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// kIndexed unless the TCA_SCHED_BASELINE environment variable is set to a
  /// non-empty value other than "0" (read once per process).
  static QueueImpl default_impl();

  [[nodiscard]] QueueImpl impl() const { return impl_; }

  /// Current simulated time.
  [[nodiscard]] TimePs now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (must be >= now). Returns an id
  /// usable with cancel(). Captures up to EventFn::kInlineBytes are stored
  /// without heap allocation, constructed directly in their slot.
  template <typename F>
  EventId schedule_at(TimePs t, F&& fn) {
    if (impl_ == QueueImpl::kBaseline) {
      if constexpr (std::is_copy_constructible_v<std::decay_t<F>>) {
        return schedule_baseline(t, std::function<void()>(std::forward<F>(fn)));
      } else {
        TCA_ASSERT(false && "baseline queue requires copyable callables");
      }
    }
    TCA_ASSERT(t >= now_);
    std::uint32_t index;
    if (free_head_ != kNilSlot) {
      index = free_head_;
      free_head_ = slots_[index].next_free;
    } else {
      index = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    Slot& s = slots_[index];
    ++s.gen;  // even (free) -> odd (pending)
    s.fn.emplace(std::forward<F>(fn));
    heap_.push_back(HeapEntry{t, seq_++, index, s.gen});
    heap_sift_up(heap_.size() - 1);
    ++live_;
    // Slot index + 1 keeps 0 == kInvalidEvent; the generation stamp makes ids
    // from recycled slots distinguishable so cancel-after-fire reports false.
    return (static_cast<EventId>(s.gen) << 32) | (index + 1u);
  }

  /// Schedules `fn` after a relative delay (>= 0).
  template <typename F>
  EventId schedule_after(TimePs delay, F&& fn) {
    TCA_ASSERT(delay >= 0);
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Cancels a pending event. Returns false if it already ran, was already
  /// cancelled, or the id is unknown. O(1) on the indexed backend.
  bool cancel(EventId id) {
    if (impl_ == QueueImpl::kBaseline) return cancel_baseline(id);
    const std::uint64_t lo = id & 0xffffffffu;
    if (lo == 0) return false;
    const auto index = static_cast<std::uint32_t>(lo - 1);
    if (index >= slots_.size()) return false;
    Slot& s = slots_[index];
    // Only the one outstanding pending id carries the slot's current (odd)
    // generation; fired/cancelled ids went stale when the slot was released.
    if (s.gen != static_cast<std::uint32_t>(id >> 32)) return false;
    s.fn = EventFn();  // free captured resources eagerly
    release_slot(index);
    --live_;
    // Cancellation leaves a stale entry in the heap. When stale entries
    // outnumber live ones, sweep and re-heapify — amortized O(1) per cancel
    // — so cancel-heavy phases keep the heap shallow instead of dragging
    // tombstones until their timestamps pass (the baseline's behavior).
    if (heap_.size() > 2 * live_ && heap_.size() >= kCompactMin) compact();
    return true;
  }

  /// Runs the earliest pending event. Returns false if the queue is empty.
  bool step() { return run_one(kNoLimit); }

  /// Runs events until the queue is empty.
  void run() {
    while (run_one(kNoLimit)) {
    }
  }

  /// Runs all events with time <= `t`, then advances now to `t`.
  void run_until(TimePs t);

  /// Runs all events within the next `duration` of simulated time.
  void run_for(TimePs duration) { run_until(now_ + duration); }

  [[nodiscard]] bool empty() const {
    return impl_ == QueueImpl::kBaseline
               ? b_queue_.size() == b_cancelled_.size()
               : live_ == 0;
  }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

 private:
  static constexpr TimePs kNoLimit = std::numeric_limits<TimePs>::max();
  static constexpr std::uint32_t kNilSlot = 0xffffffffu;
  /// Heap size below which cancel() never bothers compacting.
  static constexpr std::size_t kCompactMin = 64;

  // --- Indexed backend -----------------------------------------------------

  /// `gen` parity tracks state: odd = pending, even = free. Every release
  /// (fire or cancel) bumps it, so stale ids and stale heap entries are
  /// recognized by a single compare.
  struct Slot {
    EventFn fn;
    std::uint32_t gen = 0;
    std::uint32_t next_free = kNilSlot;
  };

  /// Heap entries stay small (24 bytes) so sifts move no callable state; the
  /// EventFn lives in the slot until fire/cancel. `seq` is a global insertion
  /// counter giving FIFO order among equal timestamps.
  struct HeapEntry {
    TimePs time;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    return a.time < b.time || (a.time == b.time && a.seq < b.seq);
  }

  /// The one drain loop of the indexed backend: drops stale heads, then
  /// fires the earliest live event iff its time <= `limit`.
  bool run_one_indexed(TimePs limit) {
    while (!heap_.empty()) {
      const HeapEntry top = heap_.front();
      Slot& s = slots_[top.slot];
      if (s.gen != top.gen) {  // cancelled; slot already released
        pop_root();
        continue;
      }
      if (top.time > limit) return false;
      TCA_ASSERT(top.time >= now_);
      EventFn fn = std::move(s.fn);
      pop_root();
      release_slot(top.slot);
      // Same-timestamp events drain under one clock update; the Log
      // timestamp only moves when simulated time does.
      if (top.time != now_) {
        now_ = top.time;
        Log::set_now(now_);
      }
      ++processed_;
      --live_;
      fn();
      return true;
    }
    return false;
  }

  void release_slot(std::uint32_t index) {
    Slot& s = slots_[index];
    ++s.gen;  // odd (pending) -> even (free)
    s.next_free = free_head_;
    free_head_ = index;
  }

  /// Removes heap_[0], refilling the hole with the last entry sifted down.
  void pop_root() {
    const HeapEntry last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) heap_sift_down(0, last);
  }

  /// Drops stale entries (generation mismatch) and rebuilds the heap in
  /// place. Fire order is untouched: pops follow the (time, seq) total
  /// order, not the array layout.
  void compact() {
    std::size_t out = 0;
    for (const HeapEntry& e : heap_) {
      if (slots_[e.slot].gen == e.gen) heap_[out++] = e;
    }
    heap_.resize(out);
    // Internal nodes of the 4-ary heap are 0..(out-2)/4, so (out+2)/4 of
    // them need sifting; out/4 would skip the last one when out % 4 is
    // 2 or 3, leaving a heap-order violation that later pops would surface
    // as time running backwards.
    for (std::size_t i = (out + 2) / 4; i-- > 0;) heap_sift_down(i, heap_[i]);
  }

  /// Hole-style sifts: the displaced entry rides in a register while holes
  /// shift, one 24-byte move per level instead of a swap.
  void heap_sift_up(std::size_t i) {
    HeapEntry* h = heap_.data();
    const HeapEntry e = h[i];
    while (i != 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!earlier(e, h[parent])) break;
      h[i] = h[parent];
      i = parent;
    }
    h[i] = e;
  }

  void heap_sift_down(std::size_t i, HeapEntry e) {
    HeapEntry* h = heap_.data();
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first_child = 4 * i + 1;
      if (first_child >= n) break;
      std::size_t best = first_child;
      const std::size_t last_child = std::min(first_child + 4, n);
      for (std::size_t c = first_child + 1; c < last_child; ++c) {
        if (earlier(h[c], h[best])) best = c;
      }
      if (!earlier(h[best], e)) break;
      h[i] = h[best];
      i = best;
    }
    h[i] = e;
  }

  // --- Baseline (seed) backend ---------------------------------------------

  struct BaselineEntry {
    TimePs time;
    EventId id;
    std::function<void()> fn;
  };
  struct BaselineLater {
    bool operator()(const BaselineEntry& a, const BaselineEntry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;  // FIFO among same-time events
    }
  };

  EventId schedule_baseline(TimePs t, std::function<void()> fn);
  bool cancel_baseline(EventId id);
  bool run_one_baseline(TimePs limit);

  // --- Shared drain loop ---------------------------------------------------

  /// The one drain loop: skips cancelled heads, then fires the earliest
  /// event iff its time <= `limit`. Returns false when nothing fired.
  bool run_one(TimePs limit) {
    return impl_ == QueueImpl::kBaseline ? run_one_baseline(limit)
                                         : run_one_indexed(limit);
  }

  QueueImpl impl_;
  TimePs now_ = 0;
  std::uint64_t processed_ = 0;

  // Indexed backend state.
  std::vector<Slot> slots_;
  std::vector<HeapEntry> heap_;
  std::uint32_t free_head_ = kNilSlot;
  std::uint64_t seq_ = 0;
  std::uint64_t live_ = 0;  // pending minus cancelled

  // Baseline backend state.
  EventId b_next_id_ = 1;
  std::priority_queue<BaselineEntry, std::vector<BaselineEntry>, BaselineLater>
      b_queue_;
  std::unordered_set<EventId> b_cancelled_;
};

}  // namespace tca::sim
