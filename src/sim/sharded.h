// Conservative parallel DES backend: sharded event execution with
// link-latency lookahead.
//
// The event space is partitioned into shards — one per simulated node or
// link endpoint — each with its own IndexedQueue, its own FrameArena, and
// (in parallel runs) its own clock. Two execution modes share the storage:
//
//  * Merge mode (threads == 0, the default and what TCA_SCHED_BASELINE=2
//    selects): single-threaded. A lazy head-heap over the shard fronts pops
//    the globally earliest event, so execution order is exactly the
//    (time, global-seq) total order of the single-queue indexed backend —
//    traces are byte-identical by construction, for any workload, including
//    the full simulator where a LinkPort delivery synchronously pokes its
//    peer. What merge mode buys over one big queue is locality: each
//    shard's events live in that shard's calendar ring and its coroutine
//    frames recycle through that shard's arena, so a node's working set
//    stays warm instead of being strided across a global heap interleaved
//    with 63 other nodes. This is the production configuration and the one
//    the three-way A/B gate certifies.
//
//  * Epoch mode (threads >= 1, opt-in per engine): conservative lockstep
//    windows. All shards advance through epochs of `lookahead_ps` — the
//    minimum cross-shard link latency, calib::kConservativeLookaheadPs for
//    the TCA fabric — executing their local events with t < epoch_end
//    independently (null-message-free barrier variant of conservative
//    PDES). A cross-shard schedule during the window is legal only at
//    t >= epoch_end (guaranteed when every cross-shard interaction crosses
//    a link with latency >= lookahead; asserted here) and is posted to the
//    per-(src, dst) mailbox. At the epoch barrier, each destination drains
//    its mailboxes in fixed (src ascending, post order) order, assigning
//    fresh destination-local sequence numbers — so the result is
//    deterministic and invariant under the worker-thread count: shard-local
//    event order depends only on (time, per-shard seq), and mailbox-drain
//    order depends only on shard ids and source-side execution order, never
//    on thread interleaving. Epochs jump: the next window starts at the
//    global minimum pending time, so sparse periods cost one barrier, not
//    lookahead-sized busywork.
//
//    Epoch-mode restrictions (asserted where cheap): workloads must be
//    shard-confined — an event may touch only its own shard's state,
//    schedule into its own shard freely, and schedule cross-shard only at
//    >= epoch_end; cross-shard posts are fire-and-forget (cancel requires
//    shard-local ids); the global Trace must be disabled (it is a
//    single-threaded singleton); Log's clock advances only at barriers.
//    The full simulator does not meet the first restriction (synchronous
//    peer pokes inside link delivery), which is exactly why merge mode is
//    the default: same sharded storage, sequential global order.
//
// Event ids pack (gen << 32) | (shard << 24) | (slot + 1): 24 bits of slot
// index per shard, 8 bits of shard, generation on top — ids from different
// shards never collide and 0 stays kInvalidEvent.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "common/error.h"
#include "common/log.h"
#include "common/units.h"
#include "sim/arena.h"
#include "sim/event_fn.h"
#include "sim/indexed_queue.h"

namespace tca::sim {

class ShardedEngine;

namespace detail {
/// Which shard the calling thread is currently executing for (set around
/// every event fire). Routes untagged schedules to the current shard and
/// gives epoch-mode workers a shard-local clock through now().
struct ShardExec {
  ShardedEngine* engine = nullptr;
  std::uint32_t shard = 0;
  TimePs now = 0;
};
inline thread_local ShardExec t_shard_exec;
}  // namespace detail

class ShardedEngine {
 public:
  struct Config {
    /// Number of event shards (1..kMaxShards). One per node or link
    /// endpoint; more shards than workers is normal and cheap.
    std::uint32_t shards = 16;
    /// Conservative epoch width: the minimum latency of any cross-shard
    /// interaction, in ps. The sim layer takes this as a plain number so it
    /// stays independent of calib; fabric-level callers pass
    /// calib::kConservativeLookaheadPs (= kCableLatencyPs = 25 ns), which
    /// the default mirrors.
    TimePs lookahead_ps = 25'000;
    /// Worker threads for epoch mode; 0 selects merge mode.
    unsigned threads = 0;
    /// Per-shard calendar geometry (see IndexedQueue). Shard queues use a
    /// smaller ring than the global indexed backend: 256 ps x 1024 buckets
    /// ~ 262 ns of horizon per shard.
    unsigned gran_log2 = 8;
    unsigned buckets_log2 = 10;
  };

  static constexpr std::uint32_t kMaxShards = 256;
  static constexpr TimePs kNoLimit = std::numeric_limits<TimePs>::max();

  explicit ShardedEngine(const Config& cfg);
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;
  ~ShardedEngine();

  /// Config resolved from the environment: TCA_SCHED_SHARDS (default 16),
  /// TCA_SCHED_LOOKAHEAD_PS (default 25000), TCA_SCHED_THREADS (default 0 =
  /// merge mode). Read once per call, not cached.
  static Config env_config();

  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  [[nodiscard]] bool parallel() const { return cfg_.threads > 0; }

  /// Global committed time — or, from inside an executing event in epoch
  /// mode, the executing shard's local clock (what Delay and schedule_after
  /// must be relative to).
  [[nodiscard]] TimePs now() const {
    const detail::ShardExec& ex = detail::t_shard_exec;
    return ex.engine == this ? ex.now : now_;
  }

  /// Shard affinity for untagged schedules: the currently executing shard,
  /// or shard 0 outside event execution (setup code).
  [[nodiscard]] std::uint32_t current_shard() const {
    const detail::ShardExec& ex = detail::t_shard_exec;
    return ex.engine == this ? ex.shard : 0;
  }

  /// Schedules `fn` on `shard` at absolute time `t`. Returns a cancellable
  /// id, except for epoch-mode cross-shard posts, which go through the
  /// mailbox and return kInvalid (fire-and-forget by design: the event has
  /// no slot until the destination drains it at the barrier).
  template <typename F>
  std::uint64_t schedule(std::uint32_t shard, TimePs t, F&& fn) {
    TCA_ASSERT(shard < shards_.size());
    Shard& sh = *shards_[shard];
    if (!parallel()) {
      TCA_ASSERT(t >= now_);
      const IndexedQueue::Ref ref =
          sh.q.schedule(t, now_, seq_++, std::forward<F>(fn));
      refresh_head(shard);
      return pack(shard, ref);
    }
    const detail::ShardExec& ex = detail::t_shard_exec;
    if (ex.engine == this && ex.shard != shard) {
      // Cross-shard post from inside the parallel window: conservative
      // lookahead says the destination may already have executed up to
      // epoch_end, so earlier arrivals would be causality violations.
      TCA_ASSERT(t >= epoch_end_ &&
                 "cross-shard event inside the lookahead window");
      mail_[ex.shard * shards_.size() + shard].push_back(
          MailItem{t, EventFn(std::forward<F>(fn))});
      return 0;
    }
    const TimePs local = ex.engine == this ? sh.local_now : now_;
    TCA_ASSERT(t >= local);
    const IndexedQueue::Ref ref =
        sh.q.schedule(t, local, sh.seq++, std::forward<F>(fn));
    return pack(shard, ref);
  }

  /// Cancels a pending event by packed id. Epoch mode: only legal from the
  /// owning shard's execution context or outside the parallel window.
  bool cancel(std::uint64_t id);

  /// Merge-mode single step: fires the globally earliest event iff its time
  /// <= limit. Epoch mode does not support single-stepping (events commit
  /// a window at a time); asserted.
  bool run_one(TimePs limit);

  /// Runs all events with time <= t, then advances the committed clock to
  /// t. Dispatches to the merge loop or the epoch loop by mode.
  void run_until(TimePs t);

  /// Drains the queue completely.
  void run();

  [[nodiscard]] bool empty() const;
  [[nodiscard]] std::uint64_t processed() const;

  /// Per-shard allocator, exposed so tests can assert frame recycling.
  [[nodiscard]] FrameArena& arena(std::uint32_t shard) {
    return shards_[shard]->arena;
  }
  [[nodiscard]] const IndexedQueue& queue(std::uint32_t shard) const {
    return shards_[shard]->q;
  }

 private:
  friend struct detail::ShardExec;

  struct Shard {
    explicit Shard(const Config& cfg)
        : q(cfg.gran_log2, cfg.buckets_log2) {}
    FrameArena arena;  // declared before q: pending EventFn frees hit it
    IndexedQueue q;
    TimePs local_now = 0;     // epoch mode: shard clock
    std::uint64_t seq = 0;    // epoch mode: shard-local FIFO tiebreak
    std::uint64_t version = 0;  // merge mode: head-heap invalidation stamp
    std::uint64_t processed = 0;
  };

  /// A cross-shard event waiting for the epoch barrier.
  struct MailItem {
    TimePs t;
    EventFn fn;
  };

  /// Merge-mode head-heap entry: shard `shard`'s front was (time, seq) when
  /// the shard's mutation counter was `version`. Stale entries (version
  /// mismatch) are dropped when they surface — the lazy-invalidation
  /// pattern, so a mutation costs one push instead of a heap rebuild.
  struct Head {
    TimePs time;
    std::uint64_t seq;
    std::uint32_t shard;
    std::uint64_t version;
  };
  static bool head_later(const Head& a, const Head& b) {
    return a.time > b.time || (a.time == b.time && a.seq > b.seq);
  }

  static std::uint64_t pack(std::uint32_t shard, IndexedQueue::Ref ref) {
    TCA_ASSERT(ref.index < 0xffffffu && "shard slot space exhausted");
    return (static_cast<std::uint64_t>(ref.gen) << 32) |
           (static_cast<std::uint64_t>(shard) << 24) | (ref.index + 1u);
  }

  /// Pushes shard's current front onto the head heap with a fresh version
  /// stamp (merge mode, after any mutation of that shard).
  void refresh_head(std::uint32_t shard);

  bool run_one_merge(TimePs limit);
  void run_epochs(TimePs limit);
  void exec_shard(std::uint32_t shard, TimePs epoch_end, TimePs limit);
  void drain_mail(std::uint32_t dst);
  /// Worker 0, exclusive (between barriers): commits the clock and picks
  /// the next epoch window. Returns false when nothing is left <= limit.
  bool plan_epoch(TimePs limit);

  Config cfg_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::vector<MailItem>> mail_;  // [src * shards + dst]

  TimePs now_ = 0;         // committed global clock
  TimePs epoch_end_ = 0;   // current window end (epoch mode, set by plan)
  std::uint64_t seq_ = 0;  // merge mode: global FIFO tiebreak
  std::uint64_t processed_ = 0;  // merge mode (epoch counts per shard)

  std::vector<Head> heads_;  // merge mode: lazy heap of shard fronts
};

/// RAII execution context: marks `shard` as executing on this thread.
class ShardExecScope {
 public:
  ShardExecScope(ShardedEngine* engine, std::uint32_t shard, TimePs now)
      : prev_(detail::t_shard_exec) {
    detail::t_shard_exec = detail::ShardExec{engine, shard, now};
  }
  ShardExecScope(const ShardExecScope&) = delete;
  ShardExecScope& operator=(const ShardExecScope&) = delete;
  ~ShardExecScope() { detail::t_shard_exec = prev_; }

  /// Advances the executing shard's visible clock (epoch mode pops).
  static void set_now(TimePs now) { detail::t_shard_exec.now = now; }

 private:
  detail::ShardExec prev_;
};

}  // namespace tca::sim
