// Per-shard frame arena: pooled allocation for coroutine frames and EventFn
// heap fallbacks.
//
// Simulated processes (sim::Task coroutines) and oversized event captures are
// the last steady-state heap traffic in the event core: every Task spawn is a
// frame malloc and every completion a free, straight through the global
// allocator. FrameArena replaces that with bump-allocated chunks recycled
// through size-class free lists, one arena per scheduler shard, so a shard's
// churn of short-lived frames touches only its own warm memory.
//
// Design:
//  * allocate() rounds the request up to a 64-byte size class (classes up to
//    kMaxPooledBytes; larger requests pass through to ::operator new) and
//    pops the class free list, falling back to bumping the current chunk.
//  * deallocate() pushes the block back onto its class free list — blocks
//    are never returned to the OS until the arena dies, which is exactly the
//    recycling that makes per-frame cost a pointer swap.
//  * Every block carries a one-max_align_t header recording the owning arena
//    so a block can be freed from a different context than it was allocated
//    in (a cross-shard mailbox event is built on the source shard and
//    destroyed on the destination shard). The free-list push/pop is guarded
//    by a mutex for that reason; it is uncontended in single-threaded modes
//    and contended only on the rare cross-shard oversized capture.
//  * arena_alloc()/arena_free() route through the calling thread's current
//    arena (see ArenaScope), falling back to the global allocator when no
//    arena is active — allocations made outside scheduler execution (test
//    setup, main()) behave exactly as before.
//
// Lifetime contract: blocks must be freed before their arena dies. The
// arenas live in the Scheduler (declared before the event queues, destroyed
// after them), and the repo-wide teardown order — components before
// scheduler — means frames are gone by then.
//
// Under AddressSanitizer the pool is disabled (pass-through to the global
// allocator) so use-after-free of frames stays detectable; ThreadSanitizer
// keeps the pool, whose mutex makes cross-thread recycling well-synchronized.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <new>
#include <vector>

#include "common/error.h"

#if defined(__SANITIZE_ADDRESS__)
#define TCA_ARENA_PASSTHROUGH 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define TCA_ARENA_PASSTHROUGH 1
#endif
#endif
#ifndef TCA_ARENA_PASSTHROUGH
#define TCA_ARENA_PASSTHROUGH 0
#endif

namespace tca::sim {

class FrameArena {
 public:
  /// Size-class granularity and the largest pooled request. Coroutine frames
  /// in this codebase are 100-600 bytes; 4 KiB covers every frame with room
  /// for growth, and anything larger is rare enough for the global heap.
  static constexpr std::size_t kClassBytes = 64;
  static constexpr std::size_t kMaxPooledBytes = 4096;
  static constexpr std::size_t kChunkBytes = 64 * 1024;

  FrameArena() = default;
  FrameArena(const FrameArena&) = delete;
  FrameArena& operator=(const FrameArena&) = delete;

  ~FrameArena() {
    for (void* c : chunks_) ::operator delete(c);
  }

  void* allocate(std::size_t bytes) {
    const std::size_t cls = (bytes + kClassBytes - 1) / kClassBytes;
    std::lock_guard<std::mutex> lock(mu_);
    ++allocations_;
    if (FreeBlock*& head = free_[cls]; head != nullptr) {
      FreeBlock* b = head;
      head = b->next;
      ++reuses_;
      return b;
    }
    const std::size_t sz = cls * kClassBytes;
    if (bump_left_ < sz) {
      chunks_.push_back(::operator new(kChunkBytes));
      bump_ = static_cast<std::byte*>(chunks_.back());
      bump_left_ = kChunkBytes;
    }
    void* p = bump_;
    bump_ += sz;
    bump_left_ -= sz;
    return p;
  }

  void deallocate(void* p, std::size_t bytes) {
    const std::size_t cls = (bytes + kClassBytes - 1) / kClassBytes;
    std::lock_guard<std::mutex> lock(mu_);
    auto* b = static_cast<FreeBlock*>(p);
    b->next = free_[cls];
    free_[cls] = b;
  }

  [[nodiscard]] static bool pools(std::size_t bytes) {
    return bytes <= kMaxPooledBytes;
  }

  /// Observability for tests: total pooled allocations and how many were
  /// served by recycling a freed block rather than bumping fresh memory.
  [[nodiscard]] std::uint64_t allocations() const { return allocations_; }
  [[nodiscard]] std::uint64_t reuses() const { return reuses_; }
  [[nodiscard]] std::size_t chunk_count() const { return chunks_.size(); }

 private:
  struct FreeBlock {
    FreeBlock* next;
  };
  static constexpr std::size_t kClasses = kMaxPooledBytes / kClassBytes + 1;

  std::mutex mu_;
  FreeBlock* free_[kClasses] = {};
  std::byte* bump_ = nullptr;
  std::size_t bump_left_ = 0;
  std::vector<void*> chunks_;
  std::uint64_t allocations_ = 0;
  std::uint64_t reuses_ = 0;
};

namespace detail {
/// The calling thread's active arena (set by ArenaScope, null outside
/// scheduler execution). thread_local so parallel shards never share one.
inline thread_local FrameArena* t_current_arena = nullptr;
}  // namespace detail

// tca-protocol: borrows(arena)
[[nodiscard]] inline FrameArena* current_arena() {
  return detail::t_current_arena;
}

/// RAII activation of an arena for the current thread. The scheduler wraps
/// event execution in one of these so every frame allocated inside an event
/// lands in the firing shard's pool.
class ArenaScope {
 public:
  explicit ArenaScope(FrameArena* arena) : prev_(detail::t_current_arena) {
    detail::t_current_arena = arena;
  }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;
  ~ArenaScope() { detail::t_current_arena = prev_; }

 private:
  FrameArena* prev_;
};

/// Allocates `bytes` through the current arena (global heap when none is
/// active or the request is too large to pool). The returned block hides a
/// header recording the owner so arena_free works from any context.
inline void* arena_alloc(std::size_t bytes) {
  constexpr std::size_t kHeader = alignof(std::max_align_t);
  static_assert(kHeader >= sizeof(FrameArena*));
  const std::size_t total = bytes + kHeader;
#if TCA_ARENA_PASSTHROUGH
  FrameArena* arena = nullptr;
#else
  FrameArena* arena =
      FrameArena::pools(total) ? detail::t_current_arena : nullptr;
#endif
  void* raw = arena != nullptr ? arena->allocate(total) : ::operator new(total);
  *static_cast<FrameArena**>(raw) = arena;
  return static_cast<std::byte*>(raw) + kHeader;
}

inline void arena_free(void* p, std::size_t bytes) noexcept {
  constexpr std::size_t kHeader = alignof(std::max_align_t);
  void* raw = static_cast<std::byte*>(p) - kHeader;
  FrameArena* arena = *static_cast<FrameArena**>(raw);
  if (arena != nullptr) {
    arena->deallocate(raw, bytes + kHeader);
  } else {
    ::operator delete(raw);
  }
}

}  // namespace tca::sim
