#include "peach2/dmac.h"

#include <algorithm>
#include <cstring>

#include "common/log.h"
#include "common/trace.h"
#include "peach2/chip.h"
#include "peach2/registers.h"

namespace tca::peach2 {

using calib::kDescriptorProcessPs;
using calib::kDescriptorTableFetchPs;
using calib::kDmaReadTags;
using calib::kDoorbellPs;
using calib::kMaxPayloadBytes;
using calib::kMaxReadRequestBytes;
using calib::kReadDescriptorGapPs;
using calib::kReadIssueIntervalPs;
using calib::kRemoteAckWindow;

namespace {
constexpr std::uint64_t kStatusBusy = 1;
constexpr std::uint64_t kStatusDone = 2;
constexpr std::uint64_t kStatusError = 4;
}  // namespace

DmaController::DmaController(sim::Scheduler& sched, Peach2Chip& chip,
                             int channel)
    : sched_(sched),
      chip_(chip),
      channel_(channel),
      tag_sem_(sched, kDmaReadTags),
      reads_drained_(sched),
      forwards_done_(sched),
      ack_event_(sched) {
  TCA_ASSERT(channel >= 0 && channel < calib::kDmaChannels);
  // Disjoint per-channel tag window (see the constructor comment).
  const auto base = static_cast<std::uint8_t>(channel * 64);
  free_tags_.reserve(kDmaReadTags);
  for (std::uint32_t t = 0; t < kDmaReadTags; ++t) {
    free_tags_.push_back(static_cast<std::uint8_t>(base + t));
  }
  next_ack_tag_ = static_cast<std::uint8_t>(base + 32);
}

void DmaController::arm_chain() {
  ++doorbells_;
  status_ = kStatusBusy;
  aborted_ = false;
  error_info_ = 0;
  current_desc_ = 0;
}

void DmaController::doorbell() {
  if (stuck_) {
    Log::write(LogLevel::kWarn, "dmac", "doorbell swallowed (engine stuck)");
    return;
  }
  if (busy()) {
    Log::write(LogLevel::kWarn, "dmac", "doorbell while busy ignored");
    return;
  }
  if (!fetch_table_ || count_ == 0) {
    status_ = kStatusError;
    return;
  }
  arm_chain();
  chain_task_ = run_chain({}, /*fetch_table=*/true);
}

void DmaController::kick_immediate() {
  if (stuck_) {
    Log::write(LogLevel::kWarn, "dmac", "kick swallowed (engine stuck)");
    return;
  }
  if (busy()) {
    Log::write(LogLevel::kWarn, "dmac", "immediate kick while busy ignored");
    return;
  }
  if (imm_.length == 0) {
    status_ = kStatusError;
    return;
  }
  arm_chain();
  chain_task_ = run_immediate(imm_);
}

Status DmaController::start(std::vector<DmaDescriptor> chain) {
  if (stuck_) return {ErrorCode::kBusy, "DMA engine stuck (fault injection)"};
  if (busy()) return {ErrorCode::kBusy, "DMA chain already active"};
  if (chain.empty()) return {ErrorCode::kInvalidArgument, "empty chain"};
  arm_chain();
  chain_task_ = run_chain(std::move(chain), /*fetch_table=*/false);
  return Status::ok();
}

void DmaController::fail_descriptor(ErrorCode code) {
  ++errors_;
  status_ |= kStatusError;
  error_info_ =
      (static_cast<std::uint64_t>(code) << 32) | current_desc_;
}

void DmaController::abort(ErrorCode code) {
  if (!busy() || aborted_) return;
  aborted_ = true;
  ++aborts_;
  fail_descriptor(code);
  chip_.raise_error(regs::kErrDmaAbort);
  // Forget outstanding non-posted requests: cancel their completion timers
  // and hand their tags back. A completion that still arrives later is
  // counted as unexpected (errors_) and otherwise ignored.
  for (auto& [tag, pr] : pending_reads_) {
    if (pr.timeout_event != sim::Scheduler::kInvalidEvent) {
      sched_.cancel(pr.timeout_event);
    }
    release_tag(tag);
  }
  pending_reads_.clear();
  outstanding_reads_ = 0;
  reads_drained_.pulse();
  // Drop the delivery-notification window: the acks may be stranded behind
  // a dead link and must not gate chain teardown.
  pending_acks_.clear();
  ack_arrived_.clear();
  ack_event_.pulse();
  forwards_done_.pulse();
  // Wake engine coroutines parked on egress backpressure so they can
  // observe aborted_ and unwind.
  chip_.pulse_egress_waiters();
}

void DmaController::on_completion_timeout(std::uint8_t tag) {
  auto it = pending_reads_.find(tag);
  if (it == pending_reads_.end()) return;
  it->second.timeout_event = sim::Scheduler::kInvalidEvent;
  ++completion_timeouts_;
  Log::write(LogLevel::kWarn, "dmac", "completion timeout, aborting chain");
  chip_.raise_error(regs::kErrCompletionTimeout);
  abort(ErrorCode::kTimedOut);
}

sim::Task<> DmaController::run_chain(std::vector<DmaDescriptor> chain,
                                     bool fetch_table) {
  if (fetch_table) {
    // Doorbell cost is emergent (MMIO store through the N link); only the
    // table fetch is modeled as a lump: the MRd round trip for the first
    // descriptor group ("retrieving the descriptor table is the dominant
    // factor", Figure 8).
    co_await sim::Delay(sched_, kDescriptorTableFetchPs);
    ++table_fetches_;
    chain = fetch_table_(table_addr_, count_);
  } else {
    // Direct start (tests/benches bypassing the register file): model the
    // doorbell MMIO cost explicitly so both paths time alike.
    co_await sim::Delay(sched_, kDoorbellPs + kDescriptorTableFetchPs);
  }

  for (const DmaDescriptor& d : chain) {
    if ((status_ & kStatusError) != 0) break;
    co_await exec_one(d);
    if (!aborted_) ++descs_done_;
    ++current_desc_;
  }
  co_await complete_chain();
}

sim::Task<> DmaController::run_immediate(DmaDescriptor d) {
  // No doorbell-to-table round trip: the descriptor is already latched in
  // registers; only the engine arbitration gap remains.
  co_await sim::Delay(sched_, kDescriptorProcessPs);
  co_await exec_one(d);
  ++descs_done_;
  co_await complete_chain();
}

// By value: coroutine parameters taken by reference can dangle across the
// first suspension; the descriptor is small and is moved into the frame.
sim::Task<> DmaController::exec_one(DmaDescriptor d) {
  const TimePs begin = sched_.now();
  switch (d.direction) {
    case DmaDirection::kWrite: co_await exec_write(d); break;
    case DmaDirection::kRead: co_await exec_read(d); break;
    case DmaDirection::kPipelined: co_await exec_pipelined(d); break;
  }
  if (Trace::instance().enabled()) {
    const char* kind = d.direction == DmaDirection::kWrite      ? "write"
                       : d.direction == DmaDirection::kRead     ? "read"
                                                                : "pipelined";
    Trace::instance().duration(
        "dmac/node" + std::to_string(chip_.node_id()),
        std::string(kind) + " " + units::format_size(d.length), begin,
        sched_.now());
  }
}

sim::Task<> DmaController::complete_chain() {
  // Chain completion: every delivery notification and read completion in,
  // every pipelined forward injected, and the egress FIFOs flushed — so a
  // PIO flag issued after the completion signal cannot overtake chain data.
  co_await drain_acks(0);
  while (outstanding_reads_ > 0 && !aborted_) co_await reads_drained_.wait();
  while (pending_forwards_ > 0 && !aborted_) co_await forwards_done_.wait();
  for (std::size_t p = 0; p < kPortCount && !aborted_; ++p) {
    const auto port = static_cast<PortId>(p);
    if (chip_.link_up(port)) co_await chip_.drain_egress(port, &aborted_);
  }

  status_ = (status_ & kStatusError) | kStatusDone;
  ++chains_done_;
  if (Trace::instance().enabled()) {
    Trace::instance().instant(
        "dmac/node" + std::to_string(chip_.node_id()),
        writeback_addr_ != 0 ? "writeback" : "interrupt", sched_.now());
  }

  if (writeback_addr_ != 0) {
    // Polled completion: one 8-byte posted write to host memory (cheaper
    // than the interrupt path; the driver spins on the word).
    std::uint64_t value = chains_done_;
    std::vector<std::byte> bytes(8);
    std::memcpy(bytes.data(), &value, 8);
    co_await chip_.inject(
        pcie::Tlp::mem_write(writeback_addr_, bytes, chip_.device_id()),
        &aborted_);
  } else {
    ++interrupts_;
    chip_.raise_interrupt(channel_);
  }
}

sim::Task<> DmaController::exec_write(DmaDescriptor d) {
  // "the internal memory of PEACH2 must be specified as the source address
  //  on DMA write" (Section IV-B2).
  const auto src = chip_.layout().decode(d.src);
  const auto dst = chip_.layout().decode(d.dst);
  if (!src.has_value() || src->node != chip_.node_id() ||
      src->target != TcaTarget::kInternal ||
      src->offset < Peach2Chip::kInternalRamOffset ||
      src->offset - Peach2Chip::kInternalRamOffset + d.length >
          chip_.internal_ram().size() ||
      !dst.has_value() || d.length == 0) {
    fail_descriptor(ErrorCode::kInvalidArgument);
    co_return;
  }
  const std::uint64_t src_off = src->offset - Peach2Chip::kInternalRamOffset;
  // Every remote memory destination gets a PEARL delivery notification on
  // the descriptor's final TLP — GPU windows included, or a "reliable" put
  // into a GPU staging buffer would complete at source-egress drain with no
  // end-to-end evidence the bytes ever landed. Internal targets are the
  // mailbox itself: acking them would ack the acks. CPU targets throttle
  // descriptor issue on the 2-deep window (the Figure 12 small-size
  // degradation); GPU targets get the full-tag-rotation window — the GPU's
  // deep request queue absorbs posted writes, so remote GPU bandwidth stays
  // equal to in-node at all sizes while the chain still holds completion
  // until every notification is in.
  const bool want_ack =
      dst->node != chip_.node_id() && dst->target != TcaTarget::kInternal;
  const std::uint32_t ack_window = dst->target == TcaTarget::kHost
                                       ? kRemoteAckWindow
                                       : calib::kGpuRemoteAckWindow;

  co_await sim::Delay(sched_, kDescriptorProcessPs);

  std::uint8_t ack_tag = 0;
  std::uint64_t sent = 0;
  while (sent < d.length && !aborted_) {
    const auto chunk = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(kMaxPayloadBytes, d.length - sent));
    pcie::Tlp tlp = pcie::Tlp::mem_write(
        d.dst + sent, chip_.internal_ram().view(src_off + sent, chunk),
        chip_.device_id());
    if (want_ack && sent + chunk == d.length) {
      ack_tag = next_ack_tag_;
      next_ack_tag_ = next_ack_tag();
      ack_arrived_[ack_tag] = false;
      tlp.ack_address = chip_.internal_block_base();
      tlp.tag = ack_tag;
    }
    co_await chip_.inject(std::move(tlp), &aborted_);
    sent += chunk;
  }
  if (aborted_) co_return;

  // Chaining-engine serialization: the next descriptor is decoded only
  // after this one's data has left the chip (see drain_egress).
  if (const auto port = chip_.egress_port_for(d.dst); port.has_value()) {
    co_await chip_.drain_egress(*port, &aborted_);
  }

  if (want_ack && !aborted_) {
    pending_acks_.push_back(ack_tag);
    // Window the delivery notifications: the engine may run ahead of the
    // outstanding acks by the destination's window, so per-descriptor cost
    // becomes max(wire_time, ack_rtt / window) — the Figure 12 shape.
    co_await drain_acks(ack_window - 1);
  }
  bytes_written_ += d.length;
}

sim::Task<> DmaController::exec_read(DmaDescriptor d) {
  // "the internal memory ... as the destination address on DMA read";
  // remote get is unsupported (put-only fabric).
  const auto src = chip_.layout().decode(d.src);
  const auto dst = chip_.layout().decode(d.dst);
  if (!dst.has_value() || dst->node != chip_.node_id() ||
      dst->target != TcaTarget::kInternal ||
      dst->offset < Peach2Chip::kInternalRamOffset ||
      dst->offset - Peach2Chip::kInternalRamOffset + d.length >
          chip_.internal_ram().size() ||
      !src.has_value() || src->node != chip_.node_id() ||
      src->target == TcaTarget::kInternal || d.length == 0) {
    fail_descriptor(ErrorCode::kInvalidArgument);
    co_return;
  }
  const auto local_src = chip_.convert_to_local(*src);
  TCA_ASSERT(local_src.has_value());
  const std::uint64_t dst_off = dst->offset - Peach2Chip::kInternalRamOffset;

  co_await sim::Delay(sched_, kDescriptorProcessPs);

  std::uint64_t issued = 0;
  while (issued < d.length && !aborted_) {
    const auto chunk = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(kMaxReadRequestBytes, d.length - issued));
    const std::uint8_t tag = co_await acquire_tag();
    if (aborted_) {
      release_tag(tag);
      co_return;
    }
    co_await sim::Delay(sched_, kReadIssueIntervalPs);
    if (aborted_) {
      release_tag(tag);
      co_return;
    }
    // tca-protocol: transfer(dma-tag)
    pending_reads_[tag] = PendingRead{.dst_internal_offset = dst_off + issued,
                                      .remaining = chunk};
    pending_reads_[tag].timeout_event = sched_.schedule_after(
        calib::kCompletionTimeoutPs, [this, tag] { on_completion_timeout(tag); });
    ++outstanding_reads_;
    co_await chip_.inject(pcie::Tlp::mem_read(*local_src + issued, chunk,
                                              chip_.device_id(), tag),
                          &aborted_);
    issued += chunk;
  }
  // Residual drain bubble at the descriptor boundary (calibrated; see
  // kReadDescriptorGapPs).
  co_await sim::Delay(sched_, kReadDescriptorGapPs);
  bytes_read_ += d.length;
}

sim::Task<> DmaController::exec_pipelined(DmaDescriptor d) {
  // The redesigned DMAC of Section IV-B2: local source -> (remote)
  // destination in one descriptor, reads and writes overlapped in a
  // pipeline instead of staging through internal memory.
  const auto src = chip_.layout().decode(d.src);
  const auto dst = chip_.layout().decode(d.dst);
  if (!src.has_value() || src->node != chip_.node_id() ||
      src->target == TcaTarget::kInternal || !dst.has_value() ||
      dst->target == TcaTarget::kInternal || d.length == 0) {
    fail_descriptor(ErrorCode::kInvalidArgument);
    co_return;
  }
  const auto local_src = chip_.convert_to_local(*src);
  TCA_ASSERT(local_src.has_value());
  // Same remote-destination notification and windowing rules as exec_write.
  const bool want_ack =
      dst->node != chip_.node_id() && dst->target != TcaTarget::kInternal;
  const std::uint32_t ack_window = dst->target == TcaTarget::kHost
                                       ? kRemoteAckWindow
                                       : calib::kGpuRemoteAckWindow;

  co_await sim::Delay(sched_, kDescriptorProcessPs);

  std::uint64_t issued = 0;
  while (issued < d.length && !aborted_) {
    const auto chunk = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(kMaxReadRequestBytes, d.length - issued));
    const bool last = issued + chunk == d.length;
    const std::uint8_t tag = co_await acquire_tag();
    co_await sim::Delay(sched_, kReadIssueIntervalPs);
    if (aborted_) {
      release_tag(tag);
      co_return;
    }
    PendingRead pending{.forward_to = d.dst + issued, .remaining = chunk,
                        .last_of_descriptor = last};
    if (want_ack && last) {
      pending.ack_tag = next_ack_tag_;
      next_ack_tag_ = next_ack_tag();
      pending.ack_address = chip_.internal_block_base();
      ack_arrived_[pending.ack_tag] = false;
      pending_acks_.push_back(pending.ack_tag);
    }
    pending.timeout_event = sched_.schedule_after(
        calib::kCompletionTimeoutPs, [this, tag] { on_completion_timeout(tag); });
    pending_reads_[tag] = pending;  // tca-protocol: transfer(dma-tag)
    ++outstanding_reads_;
    co_await chip_.inject(pcie::Tlp::mem_read(*local_src + issued, chunk,
                                              chip_.device_id(), tag),
                          &aborted_);
    issued += chunk;
  }
  co_await drain_acks(ack_window - 1);
  bytes_read_ += d.length;
  bytes_written_ += d.length;
}

void DmaController::on_read_completion(pcie::Tlp cpl) {
  auto it = pending_reads_.find(cpl.tag);
  if (it == pending_reads_.end()) {
    ++errors_;
    return;
  }
  PendingRead& pr = it->second;
  TCA_ASSERT(cpl.payload.size() <= pr.remaining);
  const auto size = static_cast<std::uint32_t>(cpl.payload.size());

  if (pr.forward_to != 0) {
    // Pipelined mode: forward the chunk toward the destination immediately.
    pcie::Tlp out =
        pcie::Tlp::mem_write(pr.forward_to, cpl.payload, chip_.device_id());
    pr.forward_to += size;
    if (pr.last_of_descriptor && pr.remaining == size &&
        pr.ack_address != 0) {
      out.ack_address = pr.ack_address;
      out.tag = pr.ack_tag;
    }
    ++pending_forwards_;
    sim::spawn([](DmaController& dmac, pcie::Tlp tlp) -> sim::Task<> {
      co_await dmac.chip_.inject(std::move(tlp), &dmac.aborted_);
      if (--dmac.pending_forwards_ == 0) dmac.forwards_done_.pulse();
    }(*this, std::move(out)));
  } else {
    chip_.internal_ram().write(pr.dst_internal_offset, cpl.payload);
    pr.dst_internal_offset += size;
  }

  pr.remaining -= size;
  if (pr.remaining == 0) {
    const std::uint8_t tag = cpl.tag;
    if (pr.timeout_event != sim::Scheduler::kInvalidEvent) {
      sched_.cancel(pr.timeout_event);
    }
    pending_reads_.erase(it);
    release_tag(tag);
    TCA_ASSERT(outstanding_reads_ > 0);
    if (--outstanding_reads_ == 0) reads_drained_.pulse();
  }
}

void DmaController::on_delivery_ack(std::uint8_t tag) {
  auto it = ack_arrived_.find(tag);
  if (it == ack_arrived_.end()) {
    ++errors_;
    return;
  }
  it->second = true;
  ack_event_.pulse();
}

sim::Task<> DmaController::drain_acks(std::size_t max_pending) {
  while (pending_acks_.size() > max_pending) {
    const std::uint8_t front = pending_acks_.front();
    // An abort clears the window maps while this loop is suspended, so the
    // abort check must come before any map access.
    while (!aborted_ && !ack_arrived_.at(front)) co_await ack_event_.wait();
    if (aborted_) co_return;
    ack_arrived_.erase(front);
    pending_acks_.pop_front();
  }
}

// tca-protocol: acquires(dma-tag)
sim::Task<std::uint8_t> DmaController::acquire_tag() {
  co_await tag_sem_.acquire();
  TCA_ASSERT(!free_tags_.empty());
  const std::uint8_t tag = free_tags_.back();
  free_tags_.pop_back();
  co_return tag;
}

// tca-protocol: releases(dma-tag)
void DmaController::release_tag(std::uint8_t tag) {
  free_tags_.push_back(tag);
  tag_sem_.release();
}

}  // namespace tca::peach2
