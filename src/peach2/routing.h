// PEACH2 routing table (Section III-E, Fig. 5).
//
// "the control registers for the address mask, the lower bound, and the
//  upper bound are prepared, and the destination port is statically decided
//  by checking the result from the AND operation with the address mask."
//
// Each entry holds (mask, lower, upper, port); a destination address matches
// when lower <= (addr & mask) <= upper. Entries are evaluated in order and
// the first match wins — no table search or per-packet address conversion.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/error.h"

namespace tca::peach2 {

/// The PCIe ports of the chip plus the internal destination (DMAC /
/// internal RAM / register mailbox). The paper's board exposes N/E/W/S;
/// the torus build stuffs three more cable ports onto the expansion
/// mezzanine so each dimension gets a +/- pair: E/W serve X, S/Y- serve Y,
/// Z+/Z- serve Z. Ring topologies leave ports 3..6 (or 4..6) unattached.
enum class PortId : std::uint8_t {
  kNorth = 0,  ///< to the host CPU (always)
  kEast = 1,   ///< ring / torus X+, fixed EP role
  kWest = 2,   ///< ring / torus X-, fixed RC role
  kSouth = 3,  ///< ring-coupling port / torus Y+, role selectable
  kYNeg = 4,   ///< torus Y-
  kZPos = 5,   ///< torus Z+
  kZNeg = 6,   ///< torus Z-
  kInternal = 7,
};
inline constexpr std::size_t kPortCount = 7;  // physical PCIe ports

/// Cable ports serving torus dimension `dim` (0 = X, 1 = Y, 2 = Z) in the
/// increasing / decreasing coordinate direction.
constexpr PortId torus_plus_port(std::uint32_t dim) {
  return dim == 0 ? PortId::kEast : dim == 1 ? PortId::kSouth : PortId::kZPos;
}
constexpr PortId torus_minus_port(std::uint32_t dim) {
  return dim == 0 ? PortId::kWest : dim == 1 ? PortId::kYNeg : PortId::kZNeg;
}

const char* to_string(PortId port);

struct RouteEntry {
  std::uint64_t mask = ~0ull;
  std::uint64_t lower = 0;
  std::uint64_t upper = 0;
  PortId port = PortId::kNorth;

  [[nodiscard]] bool matches(std::uint64_t addr) const {
    const std::uint64_t masked = addr & mask;
    return masked >= lower && masked <= upper;
  }
};

class RoutingTable {
 public:
  /// Register-file capacity for route entries.
  static constexpr std::size_t kCapacity = 64;

  Status add(const RouteEntry& entry);
  void clear() { entries_.clear(); }

  /// First matching entry's port, or nullopt (packet is dropped and counted
  /// by the chip — an unroutable address is a configuration error).
  [[nodiscard]] std::optional<PortId> lookup(std::uint64_t addr) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const RouteEntry& entry(std::size_t i) const {
    return entries_.at(i);
  }
  /// Mutable access for register-file writes (entry i may be rewritten).
  RouteEntry& entry_mut(std::size_t i);

 private:
  std::vector<RouteEntry> entries_;
};

}  // namespace tca::peach2
