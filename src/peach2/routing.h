// PEACH2 routing table (Section III-E, Fig. 5).
//
// "the control registers for the address mask, the lower bound, and the
//  upper bound are prepared, and the destination port is statically decided
//  by checking the result from the AND operation with the address mask."
//
// Each entry holds (mask, lower, upper, port); a destination address matches
// when lower <= (addr & mask) <= upper. Entries are evaluated in order and
// the first match wins — no table search or per-packet address conversion.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/error.h"

namespace tca::peach2 {

/// The four PCIe ports of the chip plus the internal destination (DMAC /
/// internal RAM / register mailbox).
enum class PortId : std::uint8_t {
  kNorth = 0,  ///< to the host CPU (always)
  kEast = 1,   ///< ring, fixed EP role
  kWest = 2,   ///< ring, fixed RC role
  kSouth = 3,  ///< ring-coupling port, role selectable (RC or EP)
  kInternal = 4,
};
inline constexpr std::size_t kPortCount = 4;  // physical PCIe ports

const char* to_string(PortId port);

struct RouteEntry {
  std::uint64_t mask = ~0ull;
  std::uint64_t lower = 0;
  std::uint64_t upper = 0;
  PortId port = PortId::kNorth;

  [[nodiscard]] bool matches(std::uint64_t addr) const {
    const std::uint64_t masked = addr & mask;
    return masked >= lower && masked <= upper;
  }
};

class RoutingTable {
 public:
  /// Register-file capacity for route entries.
  static constexpr std::size_t kCapacity = 64;

  Status add(const RouteEntry& entry);
  void clear() { entries_.clear(); }

  /// First matching entry's port, or nullopt (packet is dropped and counted
  /// by the chip — an unroutable address is a configuration error).
  [[nodiscard]] std::optional<PortId> lookup(std::uint64_t addr) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const RouteEntry& entry(std::size_t i) const {
    return entries_.at(i);
  }
  /// Mutable access for register-file writes (entry i may be rewritten).
  RouteEntry& entry_mut(std::size_t i);

 private:
  std::vector<RouteEntry> entries_;
};

}  // namespace tca::peach2
