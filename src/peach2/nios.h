// NIOS management processor (Section III-D).
//
// "The PEACH2 chip also includes Altera's NIOS processor as a micro
//  controller. The controller works only to monitor and manage PEARL,
//  except for the packet transfer. Thus, a small, low-power controller is
//  sufficient."
//
// Modeled as interrupt-driven firmware: port attach / link up / link down
// notifications land in a timestamped event log (after a firmware service
// delay), counters accumulate, and management commands arrive via the
// register file. The Gigabit Ethernet / RS-232 side channels of the real
// board are subsumed by the register interface (see DESIGN.md §7).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/units.h"
#include "peach2/routing.h"
#include "sim/scheduler.h"

namespace tca::peach2 {

class Peach2Chip;

class NiosController {
 public:
  /// Firmware interrupt-service delay: a link event becomes visible in the
  /// log/registers this long after the hardware transition.
  static constexpr TimePs kServiceDelay = units::us(2);

  NiosController(sim::Scheduler& sched, Peach2Chip& chip);

  /// Hardware notification of a link transition (surprise down / retrain);
  /// becomes visible after kServiceDelay.
  void on_link_change(PortId port, bool up);

  /// Construction-time cabling: recorded synchronously (not a runtime
  /// transition, and it must not leave stray events in the scheduler).
  void on_port_attached(PortId port);

  struct LinkEvent {
    TimePs time;
    PortId port;
    bool up;
  };

  [[nodiscard]] const std::vector<LinkEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::uint64_t event_count() const { return events_.size(); }
  [[nodiscard]] TimePs uptime() const;
  [[nodiscard]] std::uint64_t ping_count() const { return pings_; }

  /// Firmware's latched view of a port's link state (updated after the
  /// service delay).
  [[nodiscard]] bool link_view(PortId port) const {
    return link_view_[static_cast<std::size_t>(port)];
  }

  /// Registers the (single) listener fired when the firmware services a
  /// link transition — i.e. kServiceDelay after the hardware edge, with
  /// duplicates collapsed. This is the hook the fabric manager uses for
  /// ring failover: reacting at firmware speed, not wire speed, matches the
  /// paper's division of labor (the NIOS "works only to monitor and manage
  /// PEARL").
  void set_link_listener(std::function<void(PortId, bool)> listener) {
    link_listener_ = std::move(listener);
  }

  // --- Register-file surface (dispatched by the chip) -----------------------
  static constexpr std::uint64_t kCmdClearEvents = 1;
  static constexpr std::uint64_t kCmdPing = 2;

  [[nodiscard]] std::uint64_t read_register(std::uint64_t offset) const;
  void write_register(std::uint64_t offset, std::uint64_t value);

 private:
  sim::Scheduler& sched_;
  Peach2Chip& chip_;
  TimePs boot_time_;
  std::array<bool, kPortCount> link_view_{};
  std::vector<LinkEvent> events_;
  std::function<void(PortId, bool)> link_listener_;
  std::uint64_t pings_ = 0;
};

}  // namespace tca::peach2
