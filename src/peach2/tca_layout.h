// Global TCA address-space layout (Fig. 4 of the paper).
//
// PEACH2 reserves one large PCIe window (512 GB in the paper). The window is
// split into equal, aligned per-node slices; each slice is split into equal
// aligned blocks for the targets reachable inside that node: GPU0, GPU1, the
// host memory, and the PEACH2-internal region. Because everything is
// power-of-two aligned, a router decides the output port by comparing upper
// address bits only — no table search or address conversion on the way
// (Section III-E).
#pragma once

#include <cstdint>
#include <optional>

#include "common/error.h"

namespace tca::peach2 {

/// Targets addressable inside one node's slice, in block order.
enum class TcaTarget : std::uint32_t {
  kGpu0 = 0,
  kGpu1 = 1,
  kHost = 2,
  kInternal = 3,
};
inline constexpr std::uint32_t kTcaTargetCount = 4;

const char* to_string(TcaTarget target);

struct TcaLocation {
  std::uint32_t node;
  TcaTarget target;
  std::uint64_t offset;  ///< byte offset inside the target's block
};

/// The window geometry. Identical on every node of a sub-cluster ("the
/// address offset information for each node can be commonly shared by every
/// node").
struct TcaLayout {
  std::uint64_t window_base = 0;
  std::uint64_t window_size = 0;
  std::uint32_t node_count = 0;

  /// Builds the layout for `node_count` nodes (power of two, <= 16) over
  /// [window_base, window_base + window_size).
  static Result<TcaLayout> create(std::uint64_t window_base,
                                  std::uint64_t window_size,
                                  std::uint32_t node_count);

  [[nodiscard]] std::uint64_t slice_size() const {
    return window_size / node_count;
  }
  [[nodiscard]] std::uint64_t block_size() const {
    return slice_size() / kTcaTargetCount;
  }

  [[nodiscard]] std::uint64_t slice_base(std::uint32_t node) const {
    return window_base + node * slice_size();
  }

  /// Global address of (node, target, offset).
  [[nodiscard]] std::uint64_t encode(std::uint32_t node, TcaTarget target,
                                     std::uint64_t offset) const {
    TCA_ASSERT(node < node_count);
    TCA_ASSERT(offset < block_size());
    return slice_base(node) +
           static_cast<std::uint64_t>(target) * block_size() + offset;
  }

  /// Decodes a global address; nullopt if outside the window.
  [[nodiscard]] std::optional<TcaLocation> decode(std::uint64_t addr) const {
    if (addr < window_base || addr >= window_base + window_size) {
      return std::nullopt;
    }
    const std::uint64_t rel = addr - window_base;
    const std::uint32_t node = static_cast<std::uint32_t>(rel / slice_size());
    const std::uint64_t in_slice = rel % slice_size();
    const auto target = static_cast<TcaTarget>(in_slice / block_size());
    return TcaLocation{node, target, in_slice % block_size()};
  }

  [[nodiscard]] bool contains(std::uint64_t addr) const {
    return addr >= window_base && addr < window_base + window_size;
  }
};

}  // namespace tca::peach2
