// Chaining-DMA descriptors (Section III-F2).
//
// The driver builds a descriptor table in host memory; the DMAC fetches it
// once on doorbell and then executes all entries by hard-wired logic — the
// mechanism that lets 255 chained requests amortize the table-fetch cost
// (Figures 8/9). Descriptors are serialized to a fixed 32-byte layout so the
// table genuinely lives in simulated host DRAM.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/error.h"

namespace tca::peach2 {

enum class DmaDirection : std::uint32_t {
  /// "DMA write": PEACH2 internal memory -> CPU/GPU (local or remote).
  kWrite = 0,
  /// "DMA read": CPU/GPU (local only; remote get is not supported) ->
  /// PEACH2 internal memory.
  kRead = 1,
  /// Pipelined source->destination transfer (the "new DMAC" the paper's
  /// Section IV-B2 closes with); reads the local source and writes the
  /// remote destination simultaneously.
  kPipelined = 2,
};

struct DmaDescriptor {
  /// Global TCA address of the source. For kWrite this must decode to the
  /// chip's own internal block.
  std::uint64_t src = 0;
  /// Global TCA address of the destination. For kRead this must decode to
  /// the chip's own internal block.
  std::uint64_t dst = 0;
  std::uint32_t length = 0;
  DmaDirection direction = DmaDirection::kWrite;
  /// Reserved flags (interrupt suppression etc.); kept for layout fidelity.
  std::uint32_t flags = 0;

  static constexpr std::size_t kWireSize = 32;

  void serialize(std::span<std::byte> out) const {
    TCA_ASSERT(out.size() >= kWireSize);
    std::uint32_t dir = static_cast<std::uint32_t>(direction);
    std::memcpy(out.data() + 0, &src, 8);
    std::memcpy(out.data() + 8, &dst, 8);
    std::memcpy(out.data() + 16, &length, 4);
    std::memcpy(out.data() + 20, &dir, 4);
    std::memcpy(out.data() + 24, &flags, 4);
    std::memset(out.data() + 28, 0, 4);
  }

  static DmaDescriptor deserialize(std::span<const std::byte> in) {
    TCA_ASSERT(in.size() >= kWireSize);
    DmaDescriptor d;
    std::uint32_t dir = 0;
    std::memcpy(&d.src, in.data() + 0, 8);
    std::memcpy(&d.dst, in.data() + 8, 8);
    std::memcpy(&d.length, in.data() + 16, 4);
    std::memcpy(&dir, in.data() + 20, 4);
    std::memcpy(&d.flags, in.data() + 24, 4);
    d.direction = static_cast<DmaDirection>(dir);
    return d;
  }
};

/// Serializes a descriptor chain into the byte image the driver writes into
/// host memory.
inline std::vector<std::byte> serialize_table(
    std::span<const DmaDescriptor> descriptors) {
  std::vector<std::byte> image(descriptors.size() * DmaDescriptor::kWireSize);
  for (std::size_t i = 0; i < descriptors.size(); ++i) {
    descriptors[i].serialize(
        std::span(image).subspan(i * DmaDescriptor::kWireSize));
  }
  return image;
}

}  // namespace tca::peach2
