#include "peach2/chip.h"

#include <utility>

#include "common/log.h"
#include "peach2/dmac.h"
#include "peach2/nios.h"
#include "peach2/registers.h"

namespace tca::peach2 {

using calib::kRegAccessPs;
using calib::kRouteLatencyPs;
using calib::kRouteOccupancyPs;

// The register map's decoded regions must agree with the structures they
// front: the address decoder below dispatches by these same bounds.
static_assert(regs::kDmaChannelBanks ==
                  static_cast<std::uint64_t>(calib::kDmaChannels),
              "registers.h DMA bank count must match calib::kDmaChannels");
static_assert(regs::kRouteEntries == RoutingTable::kCapacity,
              "registers.h route-entry count must match "
              "RoutingTable::kCapacity");
static_assert(regs::kLinkStatusBase + 8 * kPortCount <= regs::kNiosEventCount,
              "per-port link-status words must not shadow the NIOS "
              "telemetry registers");

namespace {
constexpr std::size_t idx(PortId port) { return static_cast<std::size_t>(port); }
}  // namespace

Peach2Chip::Peach2Chip(sim::Scheduler& sched, const Peach2Config& config)
    : sched_(sched),
      cfg_(config),
      internal_ram_(calib::kInternalRamBytes),
      board_dram_(calib::kBoardDramBytes) {
  for (std::size_t p = 0; p < kPortCount; ++p) {
    egress_[p].space = std::make_unique<sim::Trigger>(sched_);
    ingress_[p].pending = std::make_unique<sim::Trigger>(sched_);
  }
  for (int ch = 0; ch < calib::kDmaChannels; ++ch) {
    dmac_channels_[static_cast<std::size_t>(ch)] =
        std::make_unique<DmaController>(sched_, *this, ch);
  }
  nios_ = std::make_unique<NiosController>(sched_, *this);
  // Engines start after all state exists.
  for (std::size_t p = 0; p < kPortCount; ++p) {
    ingress_[p].engine = forwarding_engine(static_cast<PortId>(p));
  }
}

Peach2Chip::~Peach2Chip() = default;

void Peach2Chip::attach_port(PortId port, pcie::LinkPort& link) {
  TCA_ASSERT(port != PortId::kInternal);
  const std::size_t p = idx(port);
  TCA_ASSERT(ports_[p] == nullptr && "port already attached");
  ports_[p] = &link;
  egress_[p].port = &link;
  ingress_[p].link = &link;
  link.set_sink(this);
  link.set_tx_ready([this, port] { pump_egress(port); });
  link.set_link_state_callback([this, port](bool up) {
    nios_->on_link_change(port, up);
    if (up) {
      pump_egress(port);  // resume traffic held during the outage
    } else {
      // Wake drain waiters so they observe the dead link and stop gating
      // chain completion on bytes the replay buffer is holding.
      egress_[static_cast<std::size_t>(port)].space->pulse();
    }
  });
  link.set_replay_threshold_callback(
      [this] { raise_error(regs::kErrReplayThreshold); });
  nios_->on_port_attached(port);  // cabled and trained
}

void Peach2Chip::on_tlp(pcie::Tlp tlp, pcie::LinkPort& port) {
  for (std::size_t p = 0; p < kPortCount; ++p) {
    if (ports_[p] == &port) {
      ingress_[p].queue.push_back(std::move(tlp));
      ingress_[p].pending->pulse();
      return;
    }
  }
  TCA_ASSERT(false && "TLP from unknown port");
}

std::optional<PortId> Peach2Chip::decide(std::uint64_t addr) const {
  const auto loc = cfg_.layout.decode(addr);
  if (loc.has_value() && loc->node == cfg_.node_id) {
    return loc->target == TcaTarget::kInternal ? PortId::kInternal
                                               : PortId::kNorth;
  }
  if (!loc.has_value()) {
    // Local bus address (host memory, GPU BARs): lives behind the host port.
    return PortId::kNorth;
  }
  return routing_.lookup(addr);
}

std::optional<std::uint64_t> Peach2Chip::convert_to_local(
    const TcaLocation& loc) const {
  switch (loc.target) {
    case TcaTarget::kGpu0: return cfg_.local_gpu0_base + loc.offset;
    case TcaTarget::kGpu1: return cfg_.local_gpu1_base + loc.offset;
    case TcaTarget::kHost: return cfg_.local_host_base + loc.offset;
    case TcaTarget::kInternal: return std::nullopt;  // consumed, not converted
  }
  return std::nullopt;
}

sim::Task<> Peach2Chip::forwarding_engine(PortId in_port) {
  Ingress& in = ingress_[idx(in_port)];
  for (;;) {
    while (in.queue.empty()) co_await in.pending->wait();
    pcie::Tlp tlp = std::move(in.queue.front());
    in.queue.pop_front();
    const std::uint64_t wire = tlp.wire_bytes();
    // Store-and-forward pipeline occupancy: one TLP per kRouteOccupancyPs.
    co_await sim::Delay(sched_, kRouteOccupancyPs);

    // DMAC read completions terminate here.
    if (tlp.type == pcie::TlpType::kCompletion) {
      in.link->release_rx(wire);
      if (tlp.requester == cfg_.device_id) {
        dmac(tlp.tag / 64).on_read_completion(std::move(tlp));
      } else {
        ++dropped_;
      }
      continue;
    }

    // Register window (BAR0): host-side control path.
    if (in_port == PortId::kNorth && tlp.address >= cfg_.reg_base &&
        tlp.address < cfg_.reg_base + regs::kWindowBytes) {
      in.link->release_rx(wire);
      handle_register_tlp(std::move(tlp));
      continue;
    }

    const auto loc = cfg_.layout.decode(tlp.address);

    // PEARL is put-only between nodes: a read that did not come from the
    // local host is rejected ("PEACH2 supports only RDMA put protocol").
    if (tlp.type == pcie::TlpType::kMemRead &&
        (in_port != PortId::kNorth ||
         (loc.has_value() && loc->node != cfg_.node_id))) {
      ++dropped_;
      in.link->release_rx(wire);
      continue;
    }

    if (loc.has_value() && loc->node == cfg_.node_id &&
        loc->target == TcaTarget::kInternal) {
      in.link->release_rx(wire);
      handle_internal_tlp(std::move(tlp));
      continue;
    }

    PortId out;
    if (loc.has_value() && loc->node == cfg_.node_id) {
      // Final hop: Port-N address conversion into the local bus space. An
      // ack request rides along to the memory endpoint, which calls back
      // on_write_commit() when the payload actually lands — that callback
      // (not an estimate made here) times the PEARL delivery notification,
      // so the ack can never outrun its data through RC/device queues.
      const auto local = convert_to_local(*loc);
      TCA_ASSERT(local.has_value());
      if (tlp.ack_address != 0) tlp.commit_notifier = this;
      tlp.address = *local;
      out = PortId::kNorth;
    } else {
      const auto decision = decide(tlp.address);
      if (!decision.has_value() || *decision == PortId::kInternal ||
          ports_[idx(*decision)] == nullptr) {
        ++dropped_;
        ++unroutable_;
        raise_error(regs::kErrUnroutable);
        Log::write(LogLevel::kWarn, "peach2", "unroutable TLP dropped");
        in.link->release_rx(wire);
        continue;
      }
      out = *decision;
    }

    co_await enqueue_egress(out, std::move(tlp));
    in.link->release_rx(wire);
    ++forwarded_;
    ++port_forwards_[idx(out)];
  }
}

sim::Task<> Peach2Chip::enqueue_egress(PortId out, pcie::Tlp tlp) {
  Egress& eg = egress_[idx(out)];
  const std::uint64_t wire = tlp.wire_bytes();
  while (eg.reserved_bytes + wire > cfg_.egress_queue_bytes) {
    co_await eg.space->wait();
  }
  eg.reserved_bytes += wire;
  // Remaining pipeline latency before the TLP reaches the egress FIFO. The
  // generation captured here detects a failover flushing this port while
  // the TLP is mid-pipeline: arriving under a stale generation, it joins
  // the abandoned traffic rather than outliving the flush as a zombie.
  const std::uint64_t gen = eg.generation;
  sched_.schedule_after(kRouteLatencyPs - kRouteOccupancyPs,
                        [this, out, gen, t = std::move(tlp)]() mutable {
                          Egress& dst = egress_[idx(out)];
                          if (dst.generation != gen) {
                            dst.reserved_bytes -= t.wire_bytes();
                            ++abandoned_;
                            dst.space->pulse();
                            return;
                          }
                          dst.queue.push_back(std::move(t));
                          pump_egress(out);
                        });
}

void Peach2Chip::pump_egress(PortId out) {
  Egress& eg = egress_[idx(out)];
  TCA_ASSERT(eg.port != nullptr);
  while (!eg.queue.empty() && eg.port->can_send(eg.queue.front())) {
    const std::uint64_t wire = eg.queue.front().wire_bytes();
    eg.port->send(std::move(eg.queue.front()));
    eg.queue.pop_front();
    TCA_ASSERT(eg.reserved_bytes >= wire);
    eg.reserved_bytes -= wire;
  }
  eg.space->pulse();
}

std::optional<PortId> Peach2Chip::egress_port_for(std::uint64_t addr) const {
  const auto loc = cfg_.layout.decode(addr);
  if (!loc.has_value()) return PortId::kNorth;  // local bus address
  if (loc->node == cfg_.node_id) {
    if (loc->target == TcaTarget::kInternal) return std::nullopt;
    return PortId::kNorth;
  }
  const auto decision = routing_.lookup(addr);
  if (!decision.has_value() || *decision == PortId::kInternal ||
      ports_[idx(*decision)] == nullptr) {
    return std::nullopt;
  }
  return decision;
}

sim::Task<> Peach2Chip::inject(pcie::Tlp tlp, const bool* aborted) {
  const auto loc = cfg_.layout.decode(tlp.address);
  if (loc.has_value() && loc->node == cfg_.node_id &&
      loc->target == TcaTarget::kInternal) {
    // DMAC loopback into own internal region: no wire involved.
    handle_internal_tlp(std::move(tlp));
    co_return;
  }
  const auto out = egress_port_for(tlp.address);
  if (!out.has_value()) {
    ++dropped_;
    ++unroutable_;
    raise_error(regs::kErrUnroutable);
    co_return;
  }
  if (loc.has_value() && loc->node == cfg_.node_id) {
    const auto local = convert_to_local(*loc);
    TCA_ASSERT(local.has_value());
    tlp.address = *local;
    tlp.ack_address = 0;  // local delivery needs no notification
  }
  // The DMA engine sits at the egress stage: its TLPs do not traverse the
  // ingress store-and-forward pipeline, they enter the egress FIFO directly
  // (still subject to its backpressure).
  Egress& eg = egress_[idx(*out)];
  const std::uint64_t wire = tlp.wire_bytes();
  while (eg.reserved_bytes + wire > cfg_.egress_queue_bytes) {
    if (aborted != nullptr && *aborted) co_return;  // chain abort: give up
    co_await eg.space->wait();
  }
  eg.reserved_bytes += wire;
  eg.queue.push_back(std::move(tlp));
  pump_egress(*out);
  ++forwarded_;
  ++port_forwards_[idx(*out)];
}

sim::Task<> Peach2Chip::drain_egress(PortId out, const bool* aborted) {
  // "Left the chip" = egress FIFO empty AND the link serializer idle. The
  // link's tx_ready callback is pump_egress, which pulses the space trigger
  // on every wire completion, so this loop wakes exactly when state changes.
  Egress& eg = egress_[idx(out)];
  while (eg.reserved_bytes > 0 || !eg.port->tx_idle()) {
    if (aborted != nullptr && *aborted) co_return;
    // A dead link cannot drain: its bytes sit in the replay buffer until
    // retrain. Chain completion must not hang on them — after a ring
    // failover the retried data takes the other direction, and the held
    // bytes retransmit whenever the cable returns.
    if (!eg.port->link_up()) co_return;
    co_await eg.space->wait();
  }
}

void Peach2Chip::pulse_egress_waiters() {
  for (std::size_t p = 0; p < kPortCount; ++p) egress_[p].space->pulse();
}

void Peach2Chip::abandon_egress(PortId port) {
  Egress& eg = egress_[idx(port)];
  ++eg.generation;  // mid-pipeline TLPs discard themselves on arrival
  abandoned_ += eg.queue.size();
  for (const pcie::Tlp& t : eg.queue) {
    TCA_ASSERT(eg.reserved_bytes >= t.wire_bytes());
    eg.reserved_bytes -= t.wire_bytes();
  }
  eg.queue.clear();
  // Freed space may unblock enqueuers, and drain waiters must re-evaluate:
  // with the queue empty their chains stop gating on bytes that will never
  // transmit (the missing remote acks make the watchdog retry them).
  eg.space->pulse();
}

// tca-protocol: acks-on-commit
void Peach2Chip::on_write_commit(std::uint64_t ack_address, std::uint8_t tag) {
  // The destination memory endpoint confirmed a delivered write has
  // committed: send the PEARL delivery notification back to the source
  // chip's mailbox over the fabric.
  ++acks_sent_;
  sim::spawn([](Peach2Chip& chip, pcie::Tlp msg) -> sim::Task<> {
    co_await chip.inject(std::move(msg));
  }(*this, pcie::Tlp::vendor_msg(ack_address, cfg_.device_id, tag)));
}

void Peach2Chip::raise_error(std::uint64_t bits) {
  err_status_ |= bits;
  const std::uint64_t unmasked = bits & ~err_mask_;
  if (unmasked != 0 && error_handler_) {
    ++error_irqs_;
    error_handler_(unmasked);
  }
}

void Peach2Chip::handle_internal_tlp(pcie::Tlp tlp) {
  const auto loc = cfg_.layout.decode(tlp.address);
  TCA_ASSERT(loc.has_value() && loc->target == TcaTarget::kInternal);
  switch (tlp.type) {
    case pcie::TlpType::kVendorMsg:
      // PEARL delivery notification lands in the mailbox page; the tag
      // window identifies the owning DMA channel.
      ++mailbox_count_;
      dmac(tlp.tag / 64).on_delivery_ack(tlp.tag);
      break;
    case pcie::TlpType::kMemWrite: {
      if (loc->offset < kInternalRamOffset ||
          loc->offset - kInternalRamOffset + tlp.payload.size() >
              internal_ram_.size()) {
        ++dropped_;
        break;
      }
      internal_ram_.write(loc->offset - kInternalRamOffset, tlp.payload);
      break;
    }
    case pcie::TlpType::kMemRead: {
      // Local host reading internal RAM (driver diagnostics).
      if (loc->offset < kInternalRamOffset ||
          loc->offset - kInternalRamOffset + tlp.length >
              internal_ram_.size()) {
        ++dropped_;
        break;
      }
      const std::uint64_t base = loc->offset - kInternalRamOffset;
      sched_.schedule_after(kRegAccessPs, [this, req = std::move(tlp), base] {
        std::uint32_t remaining = req.length;
        while (remaining > 0) {
          const std::uint32_t chunk =
              std::min(remaining, calib::kMaxPayloadBytes);
          std::vector<std::byte> data(chunk);
          internal_ram_.read(base + (req.length - remaining), data);
          sim::spawn([](Peach2Chip& chip, pcie::Tlp cpl) -> sim::Task<> {
            co_await chip.enqueue_egress(PortId::kNorth, std::move(cpl));
          }(*this, pcie::Tlp::completion(req, data, remaining)));
          remaining -= chunk;
        }
      });
      break;
    }
    case pcie::TlpType::kCompletion:
      ++dropped_;
      break;
  }
}

void Peach2Chip::handle_register_tlp(pcie::Tlp tlp) {
  const std::uint64_t offset = tlp.address - cfg_.reg_base;
  if (tlp.type == pcie::TlpType::kMemWrite) {
    TCA_ASSERT(tlp.payload.size() == 8 && "registers are 64-bit");
    std::uint64_t value = 0;
    std::memcpy(&value, tlp.payload.data(), 8);
    sched_.schedule_after(kRegAccessPs, [this, offset, value] {
      write_register(offset, value);
    });
    return;
  }
  if (tlp.type == pcie::TlpType::kMemRead) {
    TCA_ASSERT(tlp.length == 8 && "registers are 64-bit");
    sched_.schedule_after(kRegAccessPs, [this, req = std::move(tlp), offset] {
      const std::uint64_t value = read_register(offset);
      std::vector<std::byte> data(8);
      std::memcpy(data.data(), &value, 8);
      sim::spawn([](Peach2Chip& chip, pcie::Tlp cpl) -> sim::Task<> {
        co_await chip.enqueue_egress(PortId::kNorth, std::move(cpl));
      }(*this, pcie::Tlp::completion(req, data, req.length)));
    });
    return;
  }
  ++dropped_;
}

std::uint64_t Peach2Chip::read_register(std::uint64_t offset) const {
  namespace r = regs;
  if (offset >= r::kRouteBase &&
      offset < r::kRouteBase + RoutingTable::kCapacity * r::kRouteStride) {
    const std::size_t entry = (offset - r::kRouteBase) / r::kRouteStride;
    const std::uint64_t field = (offset - r::kRouteBase) % r::kRouteStride;
    if (entry >= routing_.size()) return 0;
    const RouteEntry& e = routing_.entry(entry);
    switch (field) {
      case r::kRouteMask: return e.mask;
      case r::kRouteLower: return e.lower;
      case r::kRouteUpper: return e.upper;
      case r::kRoutePort: return static_cast<std::uint64_t>(e.port);
      default: return 0;
    }
  }
  if (offset >= r::kLinkStatusBase &&
      offset < r::kLinkStatusBase + 8 * kPortCount) {
    const std::size_t p = (offset - r::kLinkStatusBase) / 8;
    return port_operational(static_cast<PortId>(p)) ? r::kLinkUp
                                                    : r::kLinkDown;
  }
  if (offset >= r::kNiosEventCount && offset <= r::kNiosLastEvent) {
    return nios_->read_register(offset);
  }
  if (offset >= r::kDmaBankBase &&
      offset < r::kDmaBankBase + calib::kDmaChannels * r::kDmaBankStride) {
    const auto ch = static_cast<int>((offset - r::kDmaBankBase) /
                                     r::kDmaBankStride);
    const std::uint64_t field = (offset - r::kDmaBankBase) % r::kDmaBankStride;
    const DmaController& d = *dmac_channels_[static_cast<std::size_t>(ch)];
    switch (field) {
      case r::kDmaBankStatus: return d.status();
      case r::kDmaBankWriteback: return d.writeback_addr();
      case r::kDmaBankErrInfo: return d.error_info();
      default: return 0;  // write-only / unimplemented bank fields
    }
  }
  switch (offset) {
    case r::kChipId: return r::kChipIdValue;
    case r::kLogicVersion: return r::kLogicVersionValue;
    case r::kNodeId: return cfg_.node_id;
    case r::kMailboxCount: return mailbox_count_;
    case r::kErrStatus: return err_status_;
    case r::kErrMask: return err_mask_;
    case r::kConvWindowBase: return cfg_.layout.window_base;
    case r::kConvWindowSize: return cfg_.layout.window_size;
    case r::kConvNodeCount: return cfg_.layout.node_count;
    case r::kConvLocalGpu0: return cfg_.local_gpu0_base;
    case r::kConvLocalGpu1: return cfg_.local_gpu1_base;
    case r::kConvLocalHost: return cfg_.local_host_base;
    default: return 0;
  }
}

void Peach2Chip::write_register(std::uint64_t offset, std::uint64_t value) {
  namespace r = regs;
  if (offset >= r::kRouteBase &&
      offset < r::kRouteBase + RoutingTable::kCapacity * r::kRouteStride) {
    const std::size_t entry = (offset - r::kRouteBase) / r::kRouteStride;
    const std::uint64_t field = (offset - r::kRouteBase) % r::kRouteStride;
    RouteEntry& e = routing_.entry_mut(entry);
    switch (field) {
      case r::kRouteMask: e.mask = value; break;
      case r::kRouteLower: e.lower = value; break;
      case r::kRouteUpper: e.upper = value; break;
      case r::kRoutePort: e.port = static_cast<PortId>(value); break;
      default: break;
    }
    return;
  }
  if (offset == r::kNiosCmd) {
    nios_->write_register(offset, value);
    return;
  }
  if (offset >= r::kDmaBankBase &&
      offset < r::kDmaBankBase + calib::kDmaChannels * r::kDmaBankStride) {
    const auto ch = static_cast<int>((offset - r::kDmaBankBase) /
                                     r::kDmaBankStride);
    const std::uint64_t field = (offset - r::kDmaBankBase) % r::kDmaBankStride;
    DmaController& d = *dmac_channels_[static_cast<std::size_t>(ch)];
    switch (field) {
      case r::kDmaBankTableAddr: d.set_table_addr(value); break;
      case r::kDmaBankCount:
        d.set_count(static_cast<std::uint32_t>(value));
        break;
      case r::kDmaBankDoorbell:
        if (value != 0) d.doorbell();
        break;
      case r::kDmaBankImmSrc: d.set_imm_src(value); break;
      case r::kDmaBankImmDst: d.set_imm_dst(value); break;
      case r::kDmaBankImmLen: d.set_imm_len(value); break;
      case r::kDmaBankImmKick:
        if (value != 0) d.kick_immediate();
        break;
      case r::kDmaBankWriteback: d.set_writeback_addr(value); break;
      case r::kDmaBankIntAck: d.ack_interrupt(); break;
      default: break;
    }
    return;
  }
  switch (offset) {
    case r::kNodeId:
      cfg_.node_id = static_cast<std::uint32_t>(value);
      break;
    case r::kErrMask: err_mask_ = value; break;
    case r::kErrAck: err_status_ &= ~value; break;  // write-1-to-clear
    case r::kConvWindowBase: cfg_.layout.window_base = value; break;
    case r::kConvWindowSize: cfg_.layout.window_size = value; break;
    case r::kConvNodeCount:
      cfg_.layout.node_count = static_cast<std::uint32_t>(value);
      break;
    case r::kConvLocalGpu0: cfg_.local_gpu0_base = value; break;
    case r::kConvLocalGpu1: cfg_.local_gpu1_base = value; break;
    case r::kConvLocalHost: cfg_.local_host_base = value; break;
    default: break;  // writes to RO/unknown registers are ignored
  }
}

}  // namespace tca::peach2
