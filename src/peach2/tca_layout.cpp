#include "peach2/tca_layout.h"

#include <string>

#include "calib/calibration.h"

namespace tca::peach2 {

const char* to_string(TcaTarget target) {
  switch (target) {
    case TcaTarget::kGpu0: return "GPU0";
    case TcaTarget::kGpu1: return "GPU1";
    case TcaTarget::kHost: return "HOST";
    case TcaTarget::kInternal: return "PEACH2";
  }
  return "?";
}

namespace {
bool is_power_of_two(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

Result<TcaLayout> TcaLayout::create(std::uint64_t window_base,
                                    std::uint64_t window_size,
                                    std::uint32_t node_count) {
  // The layout itself only needs power-of-two partitioning up to the
  // torus-scale fabric bound; per-topology node-count rules (the paper's
  // [2, 16] ring) live in fabric::TopologySpec::validate().
  if (node_count == 0 || node_count > calib::kMaxFabricNodes ||
      !is_power_of_two(node_count)) {
    return Status{ErrorCode::kInvalidArgument,
                  "node count must be a power of two in [1, " +
                      std::to_string(calib::kMaxFabricNodes) + "]"};
  }
  if (!is_power_of_two(window_size) ||
      window_size < node_count * kTcaTargetCount) {
    return Status{ErrorCode::kInvalidArgument,
                  "window size must be a power of two covering all blocks"};
  }
  if (window_base % window_size != 0) {
    return Status{ErrorCode::kUnaligned,
                  "window base must be aligned to the window size"};
  }
  return TcaLayout{window_base, window_size, node_count};
}

}  // namespace tca::peach2
