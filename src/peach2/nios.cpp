#include "peach2/nios.h"

#include "peach2/chip.h"
#include "peach2/registers.h"

namespace tca::peach2 {

NiosController::NiosController(sim::Scheduler& sched, Peach2Chip& chip)
    : sched_(sched), chip_(chip), boot_time_(sched.now()) {}

TimePs NiosController::uptime() const { return sched_.now() - boot_time_; }

void NiosController::on_port_attached(PortId port) {
  const auto p = static_cast<std::size_t>(port);
  if (link_view_[p]) return;
  link_view_[p] = true;
  events_.push_back(LinkEvent{sched_.now(), port, true});
}

void NiosController::on_link_change(PortId port, bool up) {
  // Firmware services the interrupt after a small delay; the latched view
  // and the event log update together.
  sched_.schedule_after(kServiceDelay, [this, port, up] {
    const auto p = static_cast<std::size_t>(port);
    if (link_view_[p] == up) return;  // duplicate transition collapsed
    link_view_[p] = up;
    events_.push_back(LinkEvent{sched_.now(), port, up});
    if (link_listener_) link_listener_(port, up);
  });
}

std::uint64_t NiosController::read_register(std::uint64_t offset) const {
  namespace r = regs;
  switch (offset) {
    case r::kNiosEventCount: return events_.size();
    case r::kNiosUptime:
      return static_cast<std::uint64_t>(units::to_ns(uptime()));
    case r::kNiosPingCount: return pings_;
    case r::kNiosLastEvent: {
      if (events_.empty()) return 0;
      const LinkEvent& e = events_.back();
      return static_cast<std::uint64_t>(e.port) |
             (static_cast<std::uint64_t>(e.up) << 8);
    }
    default: return 0;
  }
}

void NiosController::write_register(std::uint64_t offset,
                                    std::uint64_t value) {
  if (offset != regs::kNiosCmd) return;
  switch (value) {
    case kCmdClearEvents: events_.clear(); break;
    case kCmdPing: ++pings_; break;
    default: break;  // unknown commands ignored, like real firmware
  }
}

}  // namespace tca::peach2
