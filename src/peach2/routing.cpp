#include "peach2/routing.h"

namespace tca::peach2 {

const char* to_string(PortId port) {
  switch (port) {
    case PortId::kNorth: return "N";
    case PortId::kEast: return "E";
    case PortId::kWest: return "W";
    case PortId::kSouth: return "S";
    case PortId::kYNeg: return "Y-";
    case PortId::kZPos: return "Z+";
    case PortId::kZNeg: return "Z-";
    case PortId::kInternal: return "INT";
  }
  return "?";
}

Status RoutingTable::add(const RouteEntry& entry) {
  if (entries_.size() >= kCapacity) {
    return {ErrorCode::kResourceExhausted, "routing table full"};
  }
  if (entry.lower > entry.upper) {
    return {ErrorCode::kInvalidArgument, "lower bound above upper bound"};
  }
  entries_.push_back(entry);
  return Status::ok();
}

std::optional<PortId> RoutingTable::lookup(std::uint64_t addr) const {
  for (const RouteEntry& e : entries_) {
    if (e.matches(addr)) return e.port;
  }
  return std::nullopt;
}

RouteEntry& RoutingTable::entry_mut(std::size_t i) {
  TCA_ASSERT(i < kCapacity);
  if (i >= entries_.size()) entries_.resize(i + 1);
  return entries_[i];
}

}  // namespace tca::peach2
