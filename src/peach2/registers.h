// PEACH2 register file (BAR0).
//
// The driver controls the chip exclusively through 64-bit MMIO accesses to
// these offsets: routing/conversion setup, DMA descriptor-table address and
// doorbell, interrupt acknowledge, and NIOS-maintained link status. Tests
// may also use the structured accessors directly (the register path and the
// struct path share the same state).
#pragma once

#include <cstdint>

namespace tca::peach2::regs {

// -- Identification ----------------------------------------------------------
inline constexpr std::uint64_t kChipId = 0x000;       // RO
inline constexpr std::uint64_t kLogicVersion = 0x008; // RO
inline constexpr std::uint64_t kNodeId = 0x010;       // RW

/// Value of kChipId: "PEACH2" in ASCII.
inline constexpr std::uint64_t kChipIdValue = 0x0000'3248'4341'4550ull;
/// Value of kLogicVersion: the FPGA logic revision in Table II.
inline constexpr std::uint64_t kLogicVersionValue = 20121112;

// -- DMA controller ----------------------------------------------------------
// The chip carries kDmaChannels independent DMA engines (the production
// PEACH2 board's multi-channel DMAC); each channel has a register bank of
// kDmaBankStride bytes at kDmaBankBase + channel * kDmaBankStride.
inline constexpr std::uint64_t kDmaBankBase = 0x200;
inline constexpr std::uint64_t kDmaBankStride = 0x80;

// Offsets within a channel bank:
inline constexpr std::uint64_t kDmaBankTableAddr = 0x00;  // RW
inline constexpr std::uint64_t kDmaBankCount = 0x08;      // RW
inline constexpr std::uint64_t kDmaBankDoorbell = 0x10;   // WO
inline constexpr std::uint64_t kDmaBankStatus = 0x18;     // RO
inline constexpr std::uint64_t kDmaBankIntAck = 0x20;     // WO
inline constexpr std::uint64_t kDmaBankImmSrc = 0x28;     // RW
inline constexpr std::uint64_t kDmaBankImmDst = 0x30;     // RW
inline constexpr std::uint64_t kDmaBankImmLen = 0x38;     // RW: len|dir<<32
inline constexpr std::uint64_t kDmaBankImmKick = 0x40;    // WO
inline constexpr std::uint64_t kDmaBankWriteback = 0x48;  // RW

constexpr std::uint64_t dma_bank(int channel, std::uint64_t field) {
  return kDmaBankBase +
         static_cast<std::uint64_t>(channel) * kDmaBankStride + field;
}

// Channel-0 aliases (the common single-channel path).
inline constexpr std::uint64_t kDmaTableAddr = kDmaBankBase + kDmaBankTableAddr;
inline constexpr std::uint64_t kDmaCount = kDmaBankBase + kDmaBankCount;
inline constexpr std::uint64_t kDmaDoorbell = kDmaBankBase + kDmaBankDoorbell;
inline constexpr std::uint64_t kDmaStatus = kDmaBankBase + kDmaBankStatus;
inline constexpr std::uint64_t kIntAck = kDmaBankBase + kDmaBankIntAck;
inline constexpr std::uint64_t kDmaImmSrc = kDmaBankBase + kDmaBankImmSrc;
inline constexpr std::uint64_t kDmaImmDst = kDmaBankBase + kDmaBankImmDst;
inline constexpr std::uint64_t kDmaImmLen = kDmaBankBase + kDmaBankImmLen;
inline constexpr std::uint64_t kDmaImmKick = kDmaBankBase + kDmaBankImmKick;
inline constexpr std::uint64_t kDmaWritebackAddr =
    kDmaBankBase + kDmaBankWriteback;

inline constexpr std::uint64_t kMailboxCount = 0x048;  // RO: acks received

/// kDmaBankStatus bits.
inline constexpr std::uint64_t kDmaStatusBusy = 1ull << 0;
inline constexpr std::uint64_t kDmaStatusDone = 1ull << 1;
inline constexpr std::uint64_t kDmaStatusError = 1ull << 2;

/// Per-bank error info (RO): failing descriptor index | error code << 32.
/// Valid while kDmaStatusError is set; cleared by the next doorbell/kick.
inline constexpr std::uint64_t kDmaBankErrInfo = 0x50;

// -- Error reporting (AER-flavored) ------------------------------------------
// A sticky error-status register, a mask register gating the error
// interrupt, and a write-1-to-clear acknowledge. Unmasked bits raising in
// kErrStatus fire the chip's error interrupt toward the driver.
inline constexpr std::uint64_t kErrStatus = 0x0b0;  // RO, sticky
inline constexpr std::uint64_t kErrMask = 0x0b8;    // RW, 1 = masked
inline constexpr std::uint64_t kErrAck = 0x0c0;     // WO, write-1-to-clear

/// kErrStatus bits.
inline constexpr std::uint64_t kErrCompletionTimeout = 1ull << 0;
inline constexpr std::uint64_t kErrUnroutable = 1ull << 1;
inline constexpr std::uint64_t kErrReplayThreshold = 1ull << 2;
inline constexpr std::uint64_t kErrDmaAbort = 1ull << 3;

// -- Address conversion (Section III-E, "only at Port N") --------------------
inline constexpr std::uint64_t kConvWindowBase = 0x080;
inline constexpr std::uint64_t kConvWindowSize = 0x088;
inline constexpr std::uint64_t kConvNodeCount = 0x090;
inline constexpr std::uint64_t kConvLocalGpu0 = 0x098;
inline constexpr std::uint64_t kConvLocalGpu1 = 0x0a0;
inline constexpr std::uint64_t kConvLocalHost = 0x0a8;

// -- Routing table -----------------------------------------------------------
// Entry i occupies 4 consecutive 64-bit registers starting at
// kRouteBase + i*kRouteStride: MASK, LOWER, UPPER, PORT.
inline constexpr std::uint64_t kRouteBase = 0x400;
inline constexpr std::uint64_t kRouteStride = 0x20;
inline constexpr std::uint64_t kRouteMask = 0x00;
inline constexpr std::uint64_t kRouteLower = 0x08;
inline constexpr std::uint64_t kRouteUpper = 0x10;
inline constexpr std::uint64_t kRoutePort = 0x18;

// -- NIOS management processor ----------------------------------------------
// Link status per port (N/E/W/S), maintained by the management firmware.
inline constexpr std::uint64_t kLinkStatusBase = 0xc00;  // + 8*port, RO
inline constexpr std::uint64_t kLinkUp = 1;
inline constexpr std::uint64_t kLinkDown = 0;

// Firmware telemetry and the management-command mailbox.
inline constexpr std::uint64_t kNiosEventCount = 0xc20;  // RO
inline constexpr std::uint64_t kNiosUptime = 0xc28;      // RO, nanoseconds
inline constexpr std::uint64_t kNiosCmd = 0xc30;         // WO
inline constexpr std::uint64_t kNiosPingCount = 0xc38;   // RO
inline constexpr std::uint64_t kNiosLastEvent = 0xc40;   // RO: port | up<<8

/// Register window size (must fit in the BAR claimed by the node).
inline constexpr std::uint64_t kWindowBytes = 64 << 10;

}  // namespace tca::peach2::regs
