// PEACH2 register file (BAR0).
//
// The driver controls the chip exclusively through 64-bit MMIO accesses to
// these offsets: routing/conversion setup, DMA descriptor-table address and
// doorbell, interrupt acknowledge, and NIOS-maintained link status. Tests
// may also use the structured accessors directly (the register path and the
// struct path share the same state).
//
// Every register constant carries a structured annotation in its same-line
// comment, consumed by tools/tca_lint (reg-* rules) and mirrored in the
// constexpr kRegMap table at the bottom of this header:
//
//   // RO | RW | WO          absolute BAR0 register (8 bytes unless span:N)
//   // RW bank:dma           field relative to a DMA channel bank
//   // RW bank:route         field relative to a route-table entry
//   // alias                 channel-0 convenience alias (base + field)
//   span:N                   register occupies N bytes (e.g. per-port array)
//
// The kRegMap table re-states offset/access/bank/span for each register and
// is validated by static_assert below; tca_lint cross-checks the comments
// against the table so neither representation can rot alone.
#pragma once

#include <cstdint>

namespace tca::peach2::regs {

// -- Identification ----------------------------------------------------------
inline constexpr std::uint64_t kChipId = 0x000;       // RO
inline constexpr std::uint64_t kLogicVersion = 0x008; // RO
inline constexpr std::uint64_t kNodeId = 0x010;       // RW

/// Value of kChipId: "PEACH2" in ASCII.
inline constexpr std::uint64_t kChipIdValue = 0x0000'3248'4341'4550ull;
/// Value of kLogicVersion: the FPGA logic revision in Table II.
inline constexpr std::uint64_t kLogicVersionValue = 20121112;

// -- DMA controller ----------------------------------------------------------
// The chip carries kDmaChannelBanks independent DMA engines (the production
// PEACH2 board's multi-channel DMAC); each channel has a register bank of
// kDmaBankStride bytes at kDmaBankBase + channel * kDmaBankStride. The bank
// count must match calib::kDmaChannels (static_assert in chip.cpp).
inline constexpr std::uint64_t kDmaBankBase = 0x200;
inline constexpr std::uint64_t kDmaBankStride = 0x80;
inline constexpr std::uint64_t kDmaChannelBanks = 4;

// Offsets within a channel bank:
inline constexpr std::uint64_t kDmaBankTableAddr = 0x00;  // RW bank:dma
inline constexpr std::uint64_t kDmaBankCount = 0x08;      // RW bank:dma
inline constexpr std::uint64_t kDmaBankDoorbell = 0x10;   // WO bank:dma
inline constexpr std::uint64_t kDmaBankStatus = 0x18;     // RO bank:dma
inline constexpr std::uint64_t kDmaBankIntAck = 0x20;     // WO bank:dma
inline constexpr std::uint64_t kDmaBankImmSrc = 0x28;     // RW bank:dma
inline constexpr std::uint64_t kDmaBankImmDst = 0x30;     // RW bank:dma
inline constexpr std::uint64_t kDmaBankImmLen = 0x38;     // RW bank:dma: len|dir<<32
inline constexpr std::uint64_t kDmaBankImmKick = 0x40;    // WO bank:dma
inline constexpr std::uint64_t kDmaBankWriteback = 0x48;  // RW bank:dma
/// Per-bank error info: failing descriptor index | error code << 32.
/// Valid while kDmaStatusError is set; cleared by the next doorbell/kick.
inline constexpr std::uint64_t kDmaBankErrInfo = 0x50;    // RO bank:dma

constexpr std::uint64_t dma_bank(int channel, std::uint64_t field) {
  return kDmaBankBase +
         static_cast<std::uint64_t>(channel) * kDmaBankStride + field;
}

// Channel-0 conveniences (the common single-channel path).
inline constexpr std::uint64_t kDmaTableAddr =  // alias
    kDmaBankBase + kDmaBankTableAddr;
inline constexpr std::uint64_t kDmaCount = kDmaBankBase + kDmaBankCount;  // alias
inline constexpr std::uint64_t kDmaDoorbell =  // alias
    kDmaBankBase + kDmaBankDoorbell;
inline constexpr std::uint64_t kDmaStatus = kDmaBankBase + kDmaBankStatus;  // alias
inline constexpr std::uint64_t kIntAck = kDmaBankBase + kDmaBankIntAck;  // alias
inline constexpr std::uint64_t kDmaImmSrc = kDmaBankBase + kDmaBankImmSrc;  // alias
inline constexpr std::uint64_t kDmaImmDst = kDmaBankBase + kDmaBankImmDst;  // alias
inline constexpr std::uint64_t kDmaImmLen = kDmaBankBase + kDmaBankImmLen;  // alias
inline constexpr std::uint64_t kDmaImmKick =  // alias
    kDmaBankBase + kDmaBankImmKick;
inline constexpr std::uint64_t kDmaWritebackAddr =  // alias
    kDmaBankBase + kDmaBankWriteback;

inline constexpr std::uint64_t kMailboxCount = 0x048;  // RO: acks received

/// kDmaBankStatus bits.
inline constexpr std::uint64_t kDmaStatusBusy = 1ull << 0;
inline constexpr std::uint64_t kDmaStatusDone = 1ull << 1;
inline constexpr std::uint64_t kDmaStatusError = 1ull << 2;

// -- Error reporting (AER-flavored) ------------------------------------------
// A sticky error-status register, a mask register gating the error
// interrupt, and a write-1-to-clear acknowledge. Unmasked bits raising in
// kErrStatus fire the chip's error interrupt toward the driver.
inline constexpr std::uint64_t kErrStatus = 0x0b0;  // RO: sticky
inline constexpr std::uint64_t kErrMask = 0x0b8;    // RW: 1 = masked
inline constexpr std::uint64_t kErrAck = 0x0c0;     // WO: write-1-to-clear

/// kErrStatus bits.
inline constexpr std::uint64_t kErrCompletionTimeout = 1ull << 0;
inline constexpr std::uint64_t kErrUnroutable = 1ull << 1;
inline constexpr std::uint64_t kErrReplayThreshold = 1ull << 2;
inline constexpr std::uint64_t kErrDmaAbort = 1ull << 3;

// -- Address conversion (Section III-E, "only at Port N") --------------------
inline constexpr std::uint64_t kConvWindowBase = 0x080;  // RW
inline constexpr std::uint64_t kConvWindowSize = 0x088;  // RW
inline constexpr std::uint64_t kConvNodeCount = 0x090;   // RW
inline constexpr std::uint64_t kConvLocalGpu0 = 0x098;   // RW
inline constexpr std::uint64_t kConvLocalGpu1 = 0x0a0;   // RW
inline constexpr std::uint64_t kConvLocalHost = 0x0a8;   // RW

// -- Routing table -----------------------------------------------------------
// Entry i occupies 4 consecutive 64-bit registers starting at
// kRouteBase + i*kRouteStride: MASK, LOWER, UPPER, PORT. The entry count
// must match RoutingTable::kCapacity (static_assert in chip.cpp).
inline constexpr std::uint64_t kRouteBase = 0x400;
inline constexpr std::uint64_t kRouteStride = 0x20;
inline constexpr std::uint64_t kRouteEntries = 64;
inline constexpr std::uint64_t kRouteMask = 0x00;   // RW bank:route
inline constexpr std::uint64_t kRouteLower = 0x08;  // RW bank:route
inline constexpr std::uint64_t kRouteUpper = 0x10;  // RW bank:route
inline constexpr std::uint64_t kRoutePort = 0x18;   // RW bank:route

// -- NIOS management processor ----------------------------------------------
// Link status per port (N/E/W/S/Y-/Z+/Z-), maintained by the management
// firmware. One 64-bit word per physical port (7 in the torus build).
inline constexpr std::uint64_t kLinkStatusBase = 0xc00;  // RO span:56: + 8*port
inline constexpr std::uint64_t kLinkUp = 1;
inline constexpr std::uint64_t kLinkDown = 0;

// Firmware telemetry and the management-command mailbox.
inline constexpr std::uint64_t kNiosEventCount = 0xc40;  // RO
inline constexpr std::uint64_t kNiosUptime = 0xc48;      // RO: nanoseconds
inline constexpr std::uint64_t kNiosCmd = 0xc50;         // WO
inline constexpr std::uint64_t kNiosPingCount = 0xc58;   // RO
inline constexpr std::uint64_t kNiosLastEvent = 0xc60;   // RO: port | up<<8

/// Register window size (must fit in the BAR claimed by the node).
inline constexpr std::uint64_t kWindowBytes = 64 << 10;

// -- Machine-checkable register map ------------------------------------------
// One row per register: the same offset/access/bank/span facts as the
// annotated constants above, in a form both static_assert and tca_lint can
// consume. Keep the two in sync — the linter's reg-table-mismatch rule
// flags any drift.

enum class RegAccess : std::uint8_t { kRO, kRW, kWO };
enum class RegBank : std::uint8_t { kGlobal, kDmaChannel, kRouteEntry };

struct RegSpec {
  std::uint64_t offset;
  RegAccess access;
  RegBank bank;
  const char* name;
  std::uint64_t span = 8;
};

inline constexpr RegSpec kRegMap[] = {
    {kChipId, RegAccess::kRO, RegBank::kGlobal, "kChipId"},
    {kLogicVersion, RegAccess::kRO, RegBank::kGlobal, "kLogicVersion"},
    {kNodeId, RegAccess::kRW, RegBank::kGlobal, "kNodeId"},
    {kMailboxCount, RegAccess::kRO, RegBank::kGlobal, "kMailboxCount"},
    {kConvWindowBase, RegAccess::kRW, RegBank::kGlobal, "kConvWindowBase"},
    {kConvWindowSize, RegAccess::kRW, RegBank::kGlobal, "kConvWindowSize"},
    {kConvNodeCount, RegAccess::kRW, RegBank::kGlobal, "kConvNodeCount"},
    {kConvLocalGpu0, RegAccess::kRW, RegBank::kGlobal, "kConvLocalGpu0"},
    {kConvLocalGpu1, RegAccess::kRW, RegBank::kGlobal, "kConvLocalGpu1"},
    {kConvLocalHost, RegAccess::kRW, RegBank::kGlobal, "kConvLocalHost"},
    {kErrStatus, RegAccess::kRO, RegBank::kGlobal, "kErrStatus"},
    {kErrMask, RegAccess::kRW, RegBank::kGlobal, "kErrMask"},
    {kErrAck, RegAccess::kWO, RegBank::kGlobal, "kErrAck"},
    {kLinkStatusBase, RegAccess::kRO, RegBank::kGlobal, "kLinkStatusBase", 56},
    {kNiosEventCount, RegAccess::kRO, RegBank::kGlobal, "kNiosEventCount"},
    {kNiosUptime, RegAccess::kRO, RegBank::kGlobal, "kNiosUptime"},
    {kNiosCmd, RegAccess::kWO, RegBank::kGlobal, "kNiosCmd"},
    {kNiosPingCount, RegAccess::kRO, RegBank::kGlobal, "kNiosPingCount"},
    {kNiosLastEvent, RegAccess::kRO, RegBank::kGlobal, "kNiosLastEvent"},
    {kDmaBankTableAddr, RegAccess::kRW, RegBank::kDmaChannel,
     "kDmaBankTableAddr"},
    {kDmaBankCount, RegAccess::kRW, RegBank::kDmaChannel, "kDmaBankCount"},
    {kDmaBankDoorbell, RegAccess::kWO, RegBank::kDmaChannel,
     "kDmaBankDoorbell"},
    {kDmaBankStatus, RegAccess::kRO, RegBank::kDmaChannel, "kDmaBankStatus"},
    {kDmaBankIntAck, RegAccess::kWO, RegBank::kDmaChannel, "kDmaBankIntAck"},
    {kDmaBankImmSrc, RegAccess::kRW, RegBank::kDmaChannel, "kDmaBankImmSrc"},
    {kDmaBankImmDst, RegAccess::kRW, RegBank::kDmaChannel, "kDmaBankImmDst"},
    {kDmaBankImmLen, RegAccess::kRW, RegBank::kDmaChannel, "kDmaBankImmLen"},
    {kDmaBankImmKick, RegAccess::kWO, RegBank::kDmaChannel,
     "kDmaBankImmKick"},
    {kDmaBankWriteback, RegAccess::kRW, RegBank::kDmaChannel,
     "kDmaBankWriteback"},
    {kDmaBankErrInfo, RegAccess::kRO, RegBank::kDmaChannel,
     "kDmaBankErrInfo"},
    {kRouteMask, RegAccess::kRW, RegBank::kRouteEntry, "kRouteMask"},
    {kRouteLower, RegAccess::kRW, RegBank::kRouteEntry, "kRouteLower"},
    {kRouteUpper, RegAccess::kRW, RegBank::kRouteEntry, "kRouteUpper"},
    {kRoutePort, RegAccess::kRW, RegBank::kRouteEntry, "kRoutePort"},
};

// Decoded bank regions: DMA banks then route entries, both inside BAR0.
inline constexpr std::uint64_t kDmaRegionEnd =
    kDmaBankBase + kDmaChannelBanks * kDmaBankStride;
inline constexpr std::uint64_t kRouteRegionEnd =
    kRouteBase + kRouteEntries * kRouteStride;

namespace detail {

constexpr std::uint64_t reg_limit(RegBank bank) {
  switch (bank) {
    case RegBank::kGlobal: return kWindowBytes;
    case RegBank::kDmaChannel: return kDmaBankStride;
    case RegBank::kRouteEntry: return kRouteStride;
  }
  return 0;
}

/// All MMIO is 64-bit: every offset and span is a multiple of 8 bytes.
constexpr bool reg_map_aligned() {
  for (const RegSpec& r : kRegMap) {
    if (r.span == 0 || r.span % 8 != 0 || r.offset % 8 != 0) return false;
  }
  return true;
}

/// Globals fit the BAR0 window; bank fields fit their bank stride.
constexpr bool reg_map_in_bounds() {
  for (const RegSpec& r : kRegMap) {
    if (r.offset + r.span > reg_limit(r.bank)) return false;
  }
  return true;
}

/// No two registers of the same bank kind overlap.
constexpr bool reg_map_disjoint() {
  for (const RegSpec& a : kRegMap) {
    for (const RegSpec& b : kRegMap) {
      if (&a == &b || a.bank != b.bank) continue;
      if (a.offset < b.offset + b.span && b.offset < a.offset + a.span) {
        return false;
      }
    }
  }
  return true;
}

/// Absolute registers must not fall inside a decoded bank region — the
/// chip's address decoder would shadow them.
constexpr bool reg_map_outside_bank_regions() {
  for (const RegSpec& r : kRegMap) {
    if (r.bank != RegBank::kGlobal) continue;
    const std::uint64_t end = r.offset + r.span;
    if (r.offset < kDmaRegionEnd && end > kDmaBankBase) return false;
    if (r.offset < kRouteRegionEnd && end > kRouteBase) return false;
  }
  return true;
}

}  // namespace detail

static_assert(detail::reg_map_aligned(),
              "register offsets/spans must be 8-byte aligned");
static_assert(detail::reg_map_in_bounds(),
              "registers must fit their window/bank stride");
static_assert(detail::reg_map_disjoint(),
              "register offsets must not overlap within a bank kind");
static_assert(detail::reg_map_outside_bank_regions(),
              "absolute registers must not shadow DMA/route bank regions");
static_assert(kDmaRegionEnd <= kRouteBase,
              "DMA channel banks must end at or before the route table");
static_assert(kRouteRegionEnd <= kLinkStatusBase,
              "route table must end at or before the NIOS region");
static_assert(kWindowBytes % 4096 == 0 && kRouteRegionEnd <= kWindowBytes,
              "decoded regions must fit the BAR0 window");

}  // namespace tca::peach2::regs
