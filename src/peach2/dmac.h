// Chaining DMA controller of the PEACH2 chip (Sections III-F2, IV-A/B).
//
// Three transfer kinds (see DmaDirection):
//  * kWrite — internal RAM -> CPU/GPU, posted MWr TLPs. Remote writes
//    request a PEARL delivery notification on each descriptor's final TLP;
//    the engine overlaps notifications with subsequent descriptors' data
//    (kRemoteAckWindow deep for CPU targets — what makes small remote
//    transfers latency-bound and 4 KiB line-rate; kGpuRemoteAckWindow deep
//    for GPU targets, whose request queue absorbs posted writes) (Fig. 12).
//    The chain holds completion until every notification is in.
//  * kRead — local CPU/GPU -> internal RAM via tag-limited MRd requests,
//    paced at kReadIssueIntervalPs. Remote reads are rejected: "PEACH2
//    supports only RDMA put protocol".
//  * kPipelined — the "new DMAC" of Section IV-B2: reads the local source
//    and forwards each completion as a write toward the (possibly remote)
//    destination without staging the whole transfer in internal memory.
//
// The descriptor table lives in simulated host memory; the driver installs
// a fetch callback (the hardware would issue MRds — the fetch latency is
// modeled by kDescriptorTableFetchPs and the fetched bytes are the ones the
// driver actually wrote).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "calib/calibration.h"
#include "peach2/descriptor.h"
#include "peach2/tca_layout.h"
#include "pcie/tlp.h"
#include "sim/scheduler.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace tca::peach2 {

class Peach2Chip;

class DmaController {
 public:
  /// Each channel owns a disjoint 64-wide tag window: read tags live at
  /// [channel*64, channel*64 + kDmaReadTags), delivery-notification tags at
  /// [channel*64 + 32, channel*64 + 64). The chip dispatches completions
  /// and acks back to the owning channel via tag/64.
  DmaController(sim::Scheduler& sched, Peach2Chip& chip, int channel);

  [[nodiscard]] int channel() const { return channel_; }

  /// Installed by the driver: reads `count` descriptors from the table at
  /// host bus address `table_addr` (which the driver previously serialized
  /// into host DRAM).
  using TableFetcher =
      std::function<std::vector<DmaDescriptor>(std::uint64_t table_addr,
                                               std::uint32_t count)>;
  void set_table_fetcher(TableFetcher fetcher) {
    fetch_table_ = std::move(fetcher);
  }

  // --- Register-file surface ----------------------------------------------
  void set_table_addr(std::uint64_t addr) { table_addr_ = addr; }
  void set_count(std::uint32_t count) { count_ = count; }
  void set_imm_src(std::uint64_t addr) { imm_.src = addr; }
  void set_imm_dst(std::uint64_t addr) { imm_.dst = addr; }
  void set_imm_len(std::uint64_t value) {
    imm_.length = static_cast<std::uint32_t>(value);
    imm_.direction = static_cast<DmaDirection>((value >> 32) & 0x3);
  }
  /// Completion writeback target (0 = interrupt mode).
  void set_writeback_addr(std::uint64_t addr) { writeback_addr_ = addr; }
  [[nodiscard]] std::uint64_t writeback_addr() const {
    return writeback_addr_;
  }
  [[nodiscard]] std::uint64_t status() const { return status_; }
  /// Clears the done bit; the error bit stays sticky until the next chain
  /// starts so the driver can diagnose a failed chain after acknowledging.
  void ack_interrupt() { status_ &= ~2ull /*done*/; }

  /// Doorbell: fetches the table and runs the chain. No-op if busy.
  void doorbell();

  /// Immediate kick: runs the register-latched descriptor, skipping the
  /// descriptor-table fetch entirely. No-op if busy.
  void kick_immediate();

  /// Direct start for tests/benches that bypass the register file.
  Status start(std::vector<DmaDescriptor> chain);

  [[nodiscard]] bool busy() const { return (status_ & 1ull) != 0; }

  /// Cooperative chain abort (driver watchdog / error ISR). Marks the chain
  /// failed with `code`, forgets outstanding reads and delivery
  /// notifications, and wakes every suspended engine coroutine so the chain
  /// unwinds and still signals completion (done|error + interrupt or
  /// writeback) — the driver always gets its completion edge. No-op when
  /// idle or already aborting.
  void abort(ErrorCode code);
  [[nodiscard]] bool aborted() const { return aborted_; }

  /// Fault injection: while stuck, doorbells/kicks are silently swallowed
  /// (a wedged engine that never sets busy) — the driver-watchdog scenario.
  void set_stuck(bool stuck) { stuck_ = stuck; }

  /// kDmaBankErrInfo register value: failing descriptor index in the low
  /// word, ErrorCode in the high word. Valid while the error bit is set.
  [[nodiscard]] std::uint64_t error_info() const { return error_info_; }

  // --- Hooks called by the chip ---------------------------------------------
  void on_read_completion(pcie::Tlp cpl);
  void on_delivery_ack(std::uint8_t tag);

  // --- Statistics -------------------------------------------------------------
  [[nodiscard]] std::uint64_t chains_completed() const { return chains_done_; }
  [[nodiscard]] std::uint64_t descriptors_completed() const {
    return descs_done_;
  }
  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_written_; }
  [[nodiscard]] std::uint64_t bytes_read() const { return bytes_read_; }
  [[nodiscard]] std::uint64_t errors() const { return errors_; }
  /// Chains aborted (watchdog/error-ISR initiated), a subset of errors().
  [[nodiscard]] std::uint64_t aborts() const { return aborts_; }
  /// Non-posted requests whose completion timer expired.
  [[nodiscard]] std::uint64_t completion_timeouts() const {
    return completion_timeouts_;
  }
  /// Chain starts accepted (doorbell, immediate kick, or direct start).
  [[nodiscard]] std::uint64_t doorbells() const { return doorbells_; }
  /// Descriptor-table fetches from host memory (Figure 8's dominant cost).
  [[nodiscard]] std::uint64_t table_fetches() const { return table_fetches_; }
  /// Completion interrupts raised toward the host (0 in writeback mode).
  [[nodiscard]] std::uint64_t interrupts() const { return interrupts_; }

 private:
  sim::Task<> run_chain(std::vector<DmaDescriptor> chain, bool fetch_table);
  sim::Task<> run_immediate(DmaDescriptor d);
  sim::Task<> exec_one(DmaDescriptor d);
  sim::Task<> complete_chain();
  sim::Task<> exec_write(DmaDescriptor d);
  sim::Task<> exec_read(DmaDescriptor d);
  sim::Task<> exec_pipelined(DmaDescriptor d);

  /// Awaits delivery notifications until at most `max_pending` remain.
  sim::Task<> drain_acks(std::size_t max_pending);

  struct PendingRead {
    std::uint64_t dst_internal_offset = 0;  ///< where the data lands
    std::uint64_t forward_to = 0;  ///< kPipelined: global dst addr (0: none)
    std::uint64_t ack_address = 0; ///< kPipelined: ack request on last chunk
    std::uint8_t ack_tag = 0;
    std::uint32_t remaining = 0;
    bool last_of_descriptor = false;
    /// Completion-timeout timer armed at MRd issue, cancelled on the final
    /// completion chunk. Firing aborts the chain with kTimedOut.
    sim::Scheduler::EventId timeout_event = sim::Scheduler::kInvalidEvent;
  };

  /// Marks chain-start bookkeeping (clears a previous abort/error record).
  void arm_chain();
  /// Records a per-descriptor failure into status + error-info.
  void fail_descriptor(ErrorCode code);
  void on_completion_timeout(std::uint8_t tag);

  /// Completion-tag pool. Every tag handed out by acquire_tag must reach
  /// exactly one release_tag or be transferred into pending_reads_ (whose
  /// completion/timeout/abort paths release it) — proved by the proto-leak
  /// lint over the annotations below.
  // tca-protocol: acquires(dma-tag)
  sim::Task<std::uint8_t> acquire_tag();
  // tca-protocol: releases(dma-tag)
  void release_tag(std::uint8_t tag);

  /// Next delivery-notification tag, rolling within this channel's
  /// [base+32, base+64) window.
  [[nodiscard]] std::uint8_t next_ack_tag() const {
    const auto base = static_cast<std::uint8_t>(channel_ * 64 + 32);
    return static_cast<std::uint8_t>(base +
                                     ((next_ack_tag_ - base + 1) & 31));
  }

  sim::Scheduler& sched_;
  Peach2Chip& chip_;
  int channel_;
  TableFetcher fetch_table_;

  std::uint64_t table_addr_ = 0;
  std::uint32_t count_ = 0;
  std::uint64_t status_ = 0;
  DmaDescriptor imm_;  ///< register-latched immediate descriptor
  std::uint64_t writeback_addr_ = 0;
  bool aborted_ = false;
  bool stuck_ = false;
  std::uint64_t error_info_ = 0;
  std::uint32_t current_desc_ = 0;  ///< index of the in-progress descriptor

  // Read machinery.
  sim::Semaphore tag_sem_;
  std::vector<std::uint8_t> free_tags_;
  // Ordered map: abort() walks the outstanding reads and hands their tags
  // back, and that walk must be deterministic (the free-tag list feeds
  // later tag assignment, so unordered iteration would diverge replay).
  std::map<std::uint8_t, PendingRead> pending_reads_;
  std::uint32_t outstanding_reads_ = 0;
  sim::Trigger reads_drained_;

  // Pipelined-mode forwarded writes still being injected (the interrupt
  // must not fire before they have left the chip, or a subsequent PIO flag
  // could overtake the data).
  std::uint32_t pending_forwards_ = 0;
  sim::Trigger forwards_done_;

  // Remote-write delivery-notification window.
  std::deque<std::uint8_t> pending_acks_;
  std::map<std::uint8_t, bool> ack_arrived_;
  sim::Trigger ack_event_;
  std::uint8_t next_ack_tag_ = 0;

  sim::Task<> chain_task_;

  std::uint64_t chains_done_ = 0;
  std::uint64_t descs_done_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t errors_ = 0;
  std::uint64_t aborts_ = 0;
  std::uint64_t completion_timeouts_ = 0;
  std::uint64_t doorbells_ = 0;
  std::uint64_t table_fetches_ = 0;
  std::uint64_t interrupts_ = 0;
};

}  // namespace tca::peach2
