// The PEACH2 chip (Section III).
//
// Four PCIe Gen2 x8 ports: North (always the host), East/West (ring,
// EP/RC roles fixed), South (ring coupling, role selectable). A per-input
// store-and-forward engine routes TLPs by address-range compare only
// (Section III-E); the sole address *conversion* happens at Port N, where
// global TCA addresses are rewritten into the local node's PCIe space.
// The chip further contains: internal packet RAM (+ board DRAM), a chaining
// DMA controller (peach2/dmac.h), a register file driven over BAR0, a PEARL
// delivery-notification mailbox, and a NIOS management stub that tracks
// per-port link status.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>

#include "calib/calibration.h"
#include "memory/dram.h"
#include "pcie/link.h"
#include "peach2/routing.h"
#include "peach2/tca_layout.h"
#include "sim/scheduler.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace tca::peach2 {

class DmaController;
class NiosController;

/// S-port role: a PCIe link needs one RC and one EP end; the paper swaps
/// FPGA images to choose, we make it a construction parameter.
enum class PortRole : std::uint8_t { kEndpoint, kRootComplex };

struct Peach2Config {
  pcie::DeviceId device_id = 0;
  std::uint32_t node_id = 0;
  TcaLayout layout;

  /// BAR0 (register window) base in the node's bus-address space.
  std::uint64_t reg_base = 0;

  /// Local bus addresses the N-port conversion rewrites global TCA
  /// addresses into (Section III-E: "the base address of the PEACH2 chip
  /// and the address offset for the specified device are added ...").
  std::uint64_t local_gpu0_base = 0;
  std::uint64_t local_gpu1_base = 0;
  std::uint64_t local_host_base = 0;

  PortRole south_role = PortRole::kEndpoint;

  /// Per-output-port egress FIFO capacity. Deliberately small: the DMA
  /// engine's descriptor pacing emerges from egress backpressure tracking
  /// the link drain rate.
  std::uint64_t egress_queue_bytes = 1024;
};

class Peach2Chip : public pcie::TlpSink, public pcie::CommitNotifier {
 public:
  Peach2Chip(sim::Scheduler& sched, const Peach2Config& config);
  ~Peach2Chip() override;

  Peach2Chip(const Peach2Chip&) = delete;
  Peach2Chip& operator=(const Peach2Chip&) = delete;

  /// Attaches a physical port. North goes to the host slot; E/W/S to PCIe
  /// external cables. Marks the port's link status up (NIOS view).
  void attach_port(PortId port, pcie::LinkPort& link);

  [[nodiscard]] pcie::DeviceId device_id() const { return cfg_.device_id; }
  [[nodiscard]] std::uint32_t node_id() const { return cfg_.node_id; }
  [[nodiscard]] const TcaLayout& layout() const { return cfg_.layout; }
  [[nodiscard]] const Peach2Config& config() const { return cfg_; }

  [[nodiscard]] RoutingTable& routing() { return routing_; }
  [[nodiscard]] const RoutingTable& routing() const { return routing_; }
  /// Channel 0 — the engine the paper's prototype exposes.
  [[nodiscard]] DmaController& dmac() { return *dmac_channels_[0]; }
  /// The production board's multi-channel DMAC.
  [[nodiscard]] DmaController& dmac(int channel) {
    return *dmac_channels_.at(static_cast<std::size_t>(channel));
  }
  [[nodiscard]] mem::Dram& internal_ram() { return internal_ram_; }
  [[nodiscard]] mem::Dram& board_dram() { return board_dram_; }

  /// Interrupt line toward the host (wired to the driver). The handler
  /// receives the DMA channel that completed.
  void set_interrupt_handler(std::function<void(int)> handler) {
    interrupt_ = std::move(handler);
  }
  void raise_interrupt(int channel) {
    if (interrupt_) interrupt_(channel);
  }

  /// Error interrupt line (AER-flavored). The handler receives the newly
  /// raised, unmasked kErrStatus bits. Status is sticky until the driver
  /// writes 1s to kErrAck; masked bits still latch but do not interrupt.
  void set_error_handler(std::function<void(std::uint64_t)> handler) {
    error_handler_ = std::move(handler);
  }
  /// Latches `bits` into the error-status register and fires the error
  /// interrupt for any unmasked ones.
  void raise_error(std::uint64_t bits);
  [[nodiscard]] std::uint64_t error_status() const { return err_status_; }
  [[nodiscard]] std::uint64_t error_mask() const { return err_mask_; }

  /// Global address of this chip's internal block (mailbox at offset 0,
  /// internal RAM window right after it).
  [[nodiscard]] std::uint64_t internal_block_base() const {
    return cfg_.layout.encode(cfg_.node_id, TcaTarget::kInternal, 0);
  }
  /// Byte offset of the internal RAM inside the internal block (the first
  /// page is the mailbox / register shadow).
  static constexpr std::uint64_t kInternalRamOffset = 4096;

  /// Injects a DMAC-originated TLP into the routing fabric; suspends on
  /// egress backpressure. This is the DMA engine's only way to the wire.
  /// If `aborted` is non-null, the injection gives up (dropping the TLP)
  /// once it observes *aborted == true — the DMAC's cooperative chain-abort
  /// escape hatch from a backpressure wait that will never resolve.
  sim::Task<> inject(pcie::Tlp tlp, const bool* aborted = nullptr);

  /// Port-N address conversion: global TCA location -> local bus address.
  /// Exposed for the DMAC, which issues local MRds in bus addresses.
  [[nodiscard]] std::optional<std::uint64_t> convert_to_local(
      const TcaLocation& loc) const;

  /// Output port a DMAC injection to `addr` would take (nullopt: internal
  /// target or unroutable).
  [[nodiscard]] std::optional<PortId> egress_port_for(
      std::uint64_t addr) const;

  /// Suspends until the egress FIFO of `out` has fully drained onto the
  /// link. The chaining DMA engine serializes descriptors on this: the next
  /// descriptor is not decoded until the previous one's data has left the
  /// chip, which is what keeps measured chained-write bandwidth at the
  /// paper's 3.3 GB/s rather than the 3.66 GB/s wire peak. A non-null
  /// `aborted` flag lets a chain abort bail out of a drain that cannot
  /// complete (e.g. the port's link is dead and holding its bytes).
  sim::Task<> drain_egress(PortId out, const bool* aborted = nullptr);

  /// Wakes every coroutine blocked on egress backpressure so it can observe
  /// a freshly set abort flag. Called by the DMAC on chain abort.
  void pulse_egress_waiters();

  /// Fault recovery: discards every TLP parked in `port`'s egress FIFO and
  /// any still in the route pipeline toward it. The fabric calls this when
  /// a failover reroutes traffic away from the cable behind `port`: the
  /// parked TLPs were routed with the pre-failover tables and would
  /// otherwise transmit on retrain as stale duplicates of data the driver's
  /// retry has since redelivered the other way. Their chains never see the
  /// remote acks, so the watchdog/retry layer owns redelivery.
  void abandon_egress(PortId port);

  // TlpSink.
  void on_tlp(pcie::Tlp tlp, pcie::LinkPort& port) override;

  // CommitNotifier: called by the destination memory endpoint when a write
  // this chip delivered into its node actually commits. Emits the PEARL
  // delivery notification back to the source chip's mailbox.
  void on_write_commit(std::uint64_t ack_address, std::uint8_t tag) override;

  // --- NIOS management processor --------------------------------------------
  /// True if a link is attached to the port (cabling).
  [[nodiscard]] bool link_up(PortId port) const {
    return ports_[static_cast<std::size_t>(port)] != nullptr;
  }
  /// True if the port is attached AND the link trained/operational (fault
  /// injection can take a link down without uncabling it).
  [[nodiscard]] bool port_operational(PortId port) const {
    const auto* p = ports_[static_cast<std::size_t>(port)];
    return p != nullptr && p->link_up();
  }
  [[nodiscard]] NiosController& nios() { return *nios_; }

  // --- Statistics ------------------------------------------------------------
  [[nodiscard]] std::uint64_t forwarded_tlps() const { return forwarded_; }
  [[nodiscard]] std::uint64_t dropped_tlps() const { return dropped_; }
  [[nodiscard]] std::uint64_t acks_sent() const { return acks_sent_; }
  [[nodiscard]] std::uint64_t mailbox_count() const { return mailbox_count_; }
  /// Forwards broken out by output port (router utilization per direction).
  [[nodiscard]] std::uint64_t port_forwards(PortId port) const {
    return port_forwards_[static_cast<std::size_t>(port)];
  }
  /// Drops specifically due to address-decode misses (no route entry matched
  /// or the decided port is uncabled) — a subset of dropped_tlps().
  [[nodiscard]] std::uint64_t unroutable_tlps() const { return unroutable_; }
  /// TLPs discarded by abandon_egress() — traffic parked for a dead port
  /// that a route failover steered around. Not part of dropped_tlps(): an
  /// abandonment is an accounted recovery action, not a routing failure.
  [[nodiscard]] std::uint64_t abandoned_tlps() const { return abandoned_; }
  /// Error-interrupt assertions toward the driver (unmasked raises).
  [[nodiscard]] std::uint64_t error_interrupts() const { return error_irqs_; }

  // --- Register file (shared by the MMIO path and direct test access) ------
  [[nodiscard]] std::uint64_t read_register(std::uint64_t offset) const;
  void write_register(std::uint64_t offset, std::uint64_t value);

 private:
  struct Egress {
    pcie::LinkPort* port = nullptr;
    std::deque<pcie::Tlp> queue;
    std::uint64_t reserved_bytes = 0;
    std::unique_ptr<sim::Trigger> space;
    /// Bumped by abandon_egress(). TLPs in the route-pipeline delay carry
    /// the generation they were admitted under; a mismatch on arrival means
    /// a failover flushed this port while they were in flight through the
    /// pipeline, and they are discarded instead of parked.
    std::uint64_t generation = 0;
  };
  struct Ingress {
    std::deque<pcie::Tlp> queue;
    pcie::LinkPort* link = nullptr;
    std::unique_ptr<sim::Trigger> pending;
    sim::Task<> engine;
  };

  sim::Task<> forwarding_engine(PortId in_port);

  /// Routing decision for a TCA-window (or local-bus) address.
  /// Returns the output port, or nullopt for "drop".
  [[nodiscard]] std::optional<PortId> decide(std::uint64_t addr) const;

  void handle_register_tlp(pcie::Tlp tlp);
  void handle_internal_tlp(pcie::Tlp tlp);
  sim::Task<> enqueue_egress(PortId out, pcie::Tlp tlp);
  void pump_egress(PortId out);

  sim::Scheduler& sched_;
  Peach2Config cfg_;
  RoutingTable routing_;
  mem::Dram internal_ram_;
  mem::Dram board_dram_;
  std::array<pcie::LinkPort*, kPortCount> ports_{};
  std::array<Egress, kPortCount> egress_;
  std::array<Ingress, kPortCount> ingress_;
  std::function<void(int)> interrupt_;
  std::function<void(std::uint64_t)> error_handler_;
  std::uint64_t err_status_ = 0;
  std::uint64_t err_mask_ = 0;
  std::array<std::unique_ptr<DmaController>, 4> dmac_channels_;
  std::unique_ptr<NiosController> nios_;

  std::uint64_t forwarded_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t acks_sent_ = 0;
  std::uint64_t mailbox_count_ = 0;
  std::array<std::uint64_t, kPortCount> port_forwards_{};
  std::uint64_t unroutable_ = 0;
  std::uint64_t abandoned_ = 0;
  std::uint64_t error_irqs_ = 0;
};

}  // namespace tca::peach2
