// Deterministic fault-injection plan for a sub-cluster.
//
// A FaultPlan is a list of timestamped fault events the SubCluster schedules
// at construction: cable link flaps (surprise-down + retrain), bit-error-rate
// burst windows (LCRC failures / replays), and stuck-doorbell windows (a DMA
// engine that swallows kicks). Because every event fires at an exact
// simulated time and the BER process is seeded per cable, two runs of the
// same plan produce identical traces — the property the fault-recovery tests
// and the `tca_explore --fault-plan` campaigns rely on.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.h"
#include "common/units.h"

namespace tca::fabric {

class TopologySpec;

struct FaultEvent {
  enum class Kind : std::uint8_t {
    kLinkDown,       ///< cable surprise-down at `at` (up again after `duration`)
    kLinkUp,         ///< explicit retrain (clears any overlapping down windows)
    kBerBurst,       ///< cable bit_error_rate = `ber` for `duration`
    kStuckDoorbell,  ///< dmac(node, channel) swallows kicks for `duration`
  };

  Kind kind = Kind::kLinkDown;
  TimePs at = 0;        ///< relative to SubCluster construction
  TimePs duration = 0;  ///< 0 on kLinkDown = permanent cut (until kLinkUp)
  std::uint32_t cable = 0;  ///< kLinkDown/kLinkUp/kBerBurst
  std::uint32_t node = 0;   ///< kStuckDoorbell
  int channel = 0;          ///< kStuckDoorbell
  double ber = 0;           ///< kBerBurst
};

const char* to_string(FaultEvent::Kind kind);

/// One event in the FaultPlan::to_string() grammar ("flap:at=5000000ps,
/// cable=0,for=100000000ps") — also the rendering validation errors embed.
std::string to_string(const FaultEvent& event);

struct FaultPlan {
  std::vector<FaultEvent> events;

  [[nodiscard]] bool empty() const { return events.empty(); }

  // --- Builders (chainable) -------------------------------------------------
  /// Cable down at `at`, retrained `duration` later.
  FaultPlan& flap(std::uint32_t cable, TimePs at, TimePs duration);
  /// Cable down at `at`, permanently (until an explicit up()).
  FaultPlan& cut(std::uint32_t cable, TimePs at);
  /// Explicit retrain, cancelling every still-open down window on the cable.
  FaultPlan& up(std::uint32_t cable, TimePs at);
  /// Cable bit error rate raised to `rate` in [at, at+duration).
  FaultPlan& ber_burst(std::uint32_t cable, TimePs at, TimePs duration,
                       double rate);
  /// dmac(node, channel) swallows doorbells/kicks in [at, at+duration).
  FaultPlan& stuck_doorbell(std::uint32_t node, int channel, TimePs at,
                            TimePs duration);

  /// Parses the CLI grammar used by `tca_explore --fault-plan`:
  ///
  ///   plan  := event (';' event)*
  ///   event := kind ':' key '=' value (',' key '=' value)*
  ///   kind  := 'flap' | 'cut' | 'up' | 'ber' | 'stuck'
  ///   key   := 'cable' | 'node' | 'ch' | 'at' | 'for' | 'rate'
  ///
  /// Times take a unit suffix (ps/ns/us/ms/s; bare numbers are ps); rates
  /// are plain doubles ("1e-6"). Example:
  ///
  ///   flap:cable=0,at=5us,for=100us;ber:cable=1,at=0,for=1ms,rate=1e-6
  ///
  /// Each kind accepts exactly its own keys (flap/cut: cable,at,for;
  /// up: cable,at; ber: cable,at,for,rate; stuck: node,ch,at,for) and every
  /// key at most once — a duplicate or foreign key is a parse error, not a
  /// silent overwrite. parse(to_string()) reproduces the plan exactly.
  static Result<FaultPlan> parse(std::string_view spec);

  /// Canonical one-line rendering (diagnostics / campaign logs);
  /// parse() accepts it back verbatim.
  [[nodiscard]] std::string to_string() const;

  /// Checks every event against the fabric `topo` describes: cable ids
  /// must fall inside TopologySpec::cable_count(), stuck-doorbell node /
  /// channel inside the node count / calib::kDmaChannels, times must be
  /// non-negative and BER rates in (0, 1]. The error names the offending
  /// event — an out-of-range fault would otherwise never fire and the
  /// campaign would silently test nothing.
  [[nodiscard]] Status validate(const TopologySpec& topo) const;
};

}  // namespace tca::fabric
