// TCA sub-cluster builder (Sections II-B, III-E).
//
// Assembles N compute nodes, one PEACH2 board each, wires the boards into
// the requested topology — the paper's E/W ring, two rings coupled by the
// South ports, or a 1D/2D/3D torus with one cable ring per dimension —
// programs every chip's routing registers per Fig. 5 (dimension-order for
// tori, compressed to contiguous address-range entries), and instantiates a
// driver per node. A 1D torus is wired, routed, and traced byte-identically
// to the ring.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "calib/calibration.h"
#include "driver/peach2_driver.h"
#include "fabric/fault_plan.h"
#include "fabric/topology.h"
#include "node/compute_node.h"
#include "obs/metrics.h"
#include "peach2/chip.h"
#include "peach2/tca_layout.h"
#include "pcie/link.h"
#include "sim/scheduler.h"

namespace tca::fabric {

struct SubClusterConfig {
  /// Preferred topology description (see fabric::TopologySpec). When left
  /// empty the deprecated node_count/topology pair below is resolved
  /// through TopologySpec::from_legacy.
  TopologySpec spec;
  [[deprecated("set SubClusterConfig::spec instead")]]
  std::uint32_t node_count = 2;
  [[deprecated("set SubClusterConfig::spec instead")]]
  Topology topology = Topology::kRing;
  node::NodeConfig node_config;
  std::uint64_t window_base = calib::kTcaWindowBase;
  std::uint64_t window_bytes = calib::kTcaWindowBytes;
  /// Fault injection: bit error rate on the inter-node cables (LCRC
  /// failures trigger data-link-layer replays; data is never lost).
  double cable_bit_error_rate = 0;
  /// Deterministic fault schedule applied at construction (cable flaps, BER
  /// bursts, stuck doorbells). Event times are relative to construction.
  FaultPlan fault_plan;
  /// Route failover: when the NIOS firmware services a cable-down event,
  /// rewrite the address-range routing registers (the Fig. 5 mechanism) so
  /// traffic steers the other way around the affected ring — the whole ring
  /// for kRing, the dead cable's dimension ring for a torus — and restore
  /// the shortest-path tables on link-up. Ring and torus topologies only.
  /// When every usable direction is dead (a full-ring outage in that
  /// dimension) routes are left alone and traffic is held in the replay
  /// buffers, exactly as with failover disabled.
  bool enable_failover = true;
};

/// The topology a config resolves to: `spec` when set, otherwise the legacy
/// enum fields. Lives out-of-line so the deprecated-field read is confined
/// to one audited spot.
[[nodiscard]] TopologySpec resolved_topology(const SubClusterConfig& config);

class SubCluster {
 public:
  SubCluster(sim::Scheduler& sched, const SubClusterConfig& config);

  // Fault-plan events and NIOS link listeners capture `this`.
  SubCluster(const SubCluster&) = delete;
  SubCluster& operator=(const SubCluster&) = delete;

  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  [[nodiscard]] const peach2::TcaLayout& layout() const { return layout_; }
  [[nodiscard]] const SubClusterConfig& config() const { return cfg_; }
  /// The resolved topology this fabric was built as.
  [[nodiscard]] const TopologySpec& topology() const { return topo_; }

  [[nodiscard]] node::ComputeNode& node(std::uint32_t i) {
    return *nodes_.at(i);
  }
  [[nodiscard]] peach2::Peach2Chip& chip(std::uint32_t i) {
    return *chips_.at(i);
  }
  [[nodiscard]] driver::Peach2Driver& driver(std::uint32_t i) {
    return *drivers_.at(i);
  }

  /// Global TCA addresses of targets inside node `i`.
  [[nodiscard]] std::uint64_t global_host(std::uint32_t i,
                                          std::uint64_t offset) const {
    return layout_.encode(i, peach2::TcaTarget::kHost, offset);
  }
  [[nodiscard]] std::uint64_t global_gpu(std::uint32_t i, int gpu,
                                         std::uint64_t offset) const {
    return layout_.encode(i,
                          gpu == 0 ? peach2::TcaTarget::kGpu0
                                   : peach2::TcaTarget::kGpu1,
                          offset);
  }

  /// Hop count from node `from` to node `to` as the routing tables steer
  /// it: shortest ring direction for rings, the per-dimension ring
  /// distances summed for tori (dimension-order routing).
  [[nodiscard]] std::uint32_t hops(std::uint32_t from,
                                   std::uint32_t to) const {
    return topo_.hops(from, to);
  }

  [[deprecated("use hops()")]]
  [[nodiscard]] std::uint32_t ring_hops(std::uint32_t from,
                                        std::uint32_t to) const {
    return topo_.hops(from, to);
  }

  /// Fault injection: takes every inter-node cable down (or back up).
  /// Host-to-chip slot links are untouched — the Section V property that
  /// distinguishes PEACH2 from NTB-based fabrics.
  void set_fabric_up(bool up) {
    for (auto& cable : cables_) cable->set_up(up);
  }

  /// Exports every hardware counter in the fabric into `reg` under
  /// hierarchical names: per-cable link stats (`pcie.cable.<a>-<b>.fwd.*`,
  /// forward = end_a->end_b), per-node chip/DMAC/driver/CPU/host/GPU stats
  /// (`node<i>.peach2.dmac.ch<c>.*`, ...), and fabric-level roll-ups
  /// (`fabric.*`). This is the structured replacement for the old printf
  /// stats dump; serialize with MetricRegistry::to_json().
  void export_metrics(obs::MetricRegistry& reg) const;

  /// Number of inter-node cables (dimension rings + optional South
  /// cross-links).
  [[nodiscard]] std::size_t cable_count() const { return cables_.size(); }
  /// Cable `k` and the (from, to) node pair it connects; end_a is `from`.
  [[nodiscard]] const pcie::PcieLink& cable(CableId k) const {
    return *cables_.at(k);
  }
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> cable_nodes(
      CableId k) const {
    return cable_ends_.at(k);
  }
  /// Torus dimension cable `k` runs along (0 for ring cables; the South
  /// cross-links of the dual ring report dimension 1).
  [[nodiscard]] std::uint32_t cable_dim(CableId k) const {
    return cable_dim_.at(k);
  }

  /// Firmware's view of cable `k` (false once a NIOS has serviced its down
  /// event; the routing tables reflect this view, not the wire state).
  [[nodiscard]] bool cable_usable(CableId k) const {
    return cable_usable_.at(k);
  }

  [[deprecated("use cable_usable()")]]
  [[nodiscard]] bool ring_cable_usable(CableId k) const {
    return cable_usable_.at(k);
  }

  /// Reroute events: failovers_ counts down-transitions that changed at
  /// least one routing entry; failbacks_ counts up-transitions that
  /// restored entries. Zero unless enable_failover and the topology is a
  /// ring or torus.
  [[nodiscard]] std::uint64_t failovers() const { return failovers_; }
  [[nodiscard]] std::uint64_t failbacks() const { return failbacks_; }

  /// TLPs abandoned by failovers: traffic held for a dead cable (link
  /// replay buffers plus the endpoint chips' egress FIFOs) that a reroute
  /// steered around. Discarding it is what prevents zombie replays — held
  /// TLPs retransmitting after retrain into staging buffers the driver's
  /// retry has since recycled. Exported as `fabric.abandoned_tlps`.
  [[nodiscard]] std::uint64_t abandoned_tlps() const;

  /// DMA chains aborted by route changes. The PEARL delivery notification
  /// tags only the final TLP of a descriptor, so its arrival proves full
  /// delivery only while the whole descriptor followed one FIFO path. A
  /// reroute voids that premise — the tail can arrive via the new path
  /// while earlier TLPs sit stranded on the dead one — so every chain in
  /// flight when routes are rewritten is aborted and left to the driver
  /// retry layer to redeliver whole. Exported as `fabric.chain_quiesces`.
  [[nodiscard]] std::uint64_t chain_quiesces() const {
    return chain_quiesces_;
  }

  /// Route registers whose port disagrees with what the failover logic
  /// would program under the current cable_usable_ view. Nonzero means a
  /// reroute was missed or half-applied — the system invariant the chaos
  /// campaigns assert after every failover/failback (exported as
  /// `fabric.route_mismatches`). Always 0 for the dual ring (no records).
  [[nodiscard]] std::uint32_t route_mismatches() const;
  [[nodiscard]] bool routes_consistent() const {
    return route_mismatches() == 0;
  }

  /// Whether dimension-order routing can steer traffic from `from` to `to`
  /// under the firmware's current cable view: walking dimensions highest
  /// first, each differing coordinate needs at least one fully usable arc
  /// (plus or minus) around that dimension's ring. Both arcs dead in any
  /// dimension is a genuine partition for this fabric — the address-range
  /// route registers cannot express a detour through another dimension, so
  /// the API surfaces such destinations as kUnreachable instead of letting
  /// every transfer burn its full deadline. Cables the NIOS has not
  /// serviced yet still count as usable (the tables reflect the firmware
  /// view, not the wire). Dual rings carry no failover state and always
  /// report reachable.
  [[nodiscard]] bool reachable(std::uint32_t from, std::uint32_t to) const;

 private:
  /// One programmed route register and the torus range it steers: node
  /// `node`'s entry `entry_index` covers every destination whose dimension
  /// `dim` coordinate is `target` (higher dims equal to the node's own,
  /// lower dims arbitrary). Failover recomputes ports from these records —
  /// the ranges themselves never change shape after construction.
  struct RouteRecord {
    std::uint32_t node;
    std::uint32_t dim;
    std::uint32_t target;
    std::size_t entry_index;
  };

  void wire_ring(sim::Scheduler& sched, std::uint32_t first,
                 std::uint32_t count);
  /// Wires one cable ring per torus dimension (dimension 0 first; for a 1D
  /// torus/ring this produces the exact cable order of wire_ring(0, n)).
  void wire_torus(sim::Scheduler& sched);
  void add_cable(sim::Scheduler& sched, std::uint32_t from, std::uint32_t to,
                 std::uint32_t dim, peach2::PortId from_port,
                 peach2::PortId to_port);
  /// Programs dimension-order routes for ring/torus topologies and records
  /// a RouteRecord per entry.
  void program_torus_routes();
  void program_ring_routes(std::uint32_t first, std::uint32_t count);
  void program_dual_ring_routes();

  /// Installs the NIOS link listeners that drive route failover.
  void arm_failover(sim::Scheduler& sched);
  /// Discards traffic held for `cable` after a failover rerouted around it
  /// (both link directions' queues and the endpoint chips' facing egress
  /// FIFOs). Redelivery belongs to the driver retry layer from here on.
  void abandon_dead_path(CableId cable);
  /// Aborts every busy DMA engine in the sub-cluster after a route change
  /// (see chain_quiesces() for why a reroute invalidates in-flight chains).
  void quiesce_in_flight_chains();
  /// Schedules every FaultPlan event onto `sched`.
  void schedule_faults(sim::Scheduler& sched);
  /// Rewrites every recorded route honoring cable_usable_; returns the
  /// number of route entries whose port changed. Only ports within the
  /// affected dimension's rings ever flip — dimension-order ranges are
  /// direction-agnostic by construction. Every record is evaluated against
  /// its own dimension ring, so concurrent dead cables in different
  /// dimensions each fail over independently.
  std::uint32_t reprogram_routes();
  /// Whether each arc (plus, minus) of the dimension-`dim` ring through
  /// `node`, from the node's own coordinate to `target`, is free of
  /// firmware-dead cables.
  [[nodiscard]] std::pair<bool, bool> arcs_clean(std::uint32_t node,
                                                 std::uint32_t dim,
                                                 std::uint32_t target) const;
  /// Port the dimension-order tables should steer `r` through given the
  /// current cable_usable_ view: the clean direction when exactly one arc
  /// is clean, shortest otherwise (both-dirty keeps shortest so traffic is
  /// held in the replay buffer, the pre-failover behavior).
  [[nodiscard]] peach2::PortId expected_port(const RouteRecord& r) const;
  /// Cable carrying traffic from the node at coordinate `coord` toward
  /// coordinate + 1 inside the dimension-`dim` ring through node `node`.
  [[nodiscard]] CableId ring_cable_at(std::uint32_t node, std::uint32_t dim,
                                      std::uint32_t coord) const;

  SubClusterConfig cfg_;
  TopologySpec topo_;
  peach2::TcaLayout layout_;
  std::vector<std::unique_ptr<node::ComputeNode>> nodes_;
  std::vector<std::unique_ptr<peach2::Peach2Chip>> chips_;
  std::vector<std::unique_ptr<driver::Peach2Driver>> drivers_;
  std::vector<std::unique_ptr<pcie::PcieLink>> cables_;
  /// (from, to) node ids per cable, parallel to cables_; end_a is `from`.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> cable_ends_;
  /// Torus dimension each cable runs along, parallel to cables_.
  std::vector<std::uint32_t> cable_dim_;
  /// Per node and dimension: the cable on the node's plus side (whose
  /// end_a is this node). kNoCable where unwired.
  static constexpr CableId kNoCable = static_cast<CableId>(-1);
  std::vector<std::array<CableId, TopologySpec::kMaxDims>> plus_cable_;
  std::vector<std::array<CableId, TopologySpec::kMaxDims>> minus_cable_;

  /// Dimension-order route records for failover rewrites (ring/torus).
  std::vector<RouteRecord> route_records_;

  /// Failover state: firmware-serviced view of each inter-node cable.
  std::vector<bool> cable_usable_;
  std::uint64_t failovers_ = 0;
  std::uint64_t failbacks_ = 0;
  std::uint64_t chain_quiesces_ = 0;

  /// FaultPlan window nesting: a resource stays faulted until every
  /// overlapping window has closed.
  std::vector<int> cable_down_depth_;
  std::vector<int> cable_ber_depth_;
  std::vector<int> dmac_stuck_depth_;  // node * kDmaChannels + channel
};

}  // namespace tca::fabric
