// TCA sub-cluster builder (Sections II-B, III-E).
//
// Assembles N compute nodes, one PEACH2 board each, wires the boards into a
// ring over their East/West ports (optionally two rings coupled by the South
// ports), programs every chip's routing registers per Fig. 5, and
// instantiates a driver per node. "The basic unit is the sub-cluster, which
// consists of eight to 16 nodes" — the builder accepts 2..16 (power of two).
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "calib/calibration.h"
#include "driver/peach2_driver.h"
#include "node/compute_node.h"
#include "obs/metrics.h"
#include "peach2/chip.h"
#include "peach2/tca_layout.h"
#include "pcie/link.h"
#include "sim/scheduler.h"

namespace tca::fabric {

enum class Topology {
  /// Single ring over E/W ports (the paper's primary configuration).
  kRing,
  /// Two rings of N/2 nodes, coupled pairwise by the S ports ("Port S is
  /// ... used to combine two rings by connecting to Port S on the peer
  /// node"). Requires node_count >= 4.
  kDualRing,
};

struct SubClusterConfig {
  std::uint32_t node_count = 2;  ///< power of two, 2..16
  Topology topology = Topology::kRing;
  node::NodeConfig node_config;
  std::uint64_t window_base = calib::kTcaWindowBase;
  std::uint64_t window_bytes = calib::kTcaWindowBytes;
  /// Fault injection: bit error rate on the inter-node cables (LCRC
  /// failures trigger data-link-layer replays; data is never lost).
  double cable_bit_error_rate = 0;
};

class SubCluster {
 public:
  SubCluster(sim::Scheduler& sched, const SubClusterConfig& config);

  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  [[nodiscard]] const peach2::TcaLayout& layout() const { return layout_; }
  [[nodiscard]] const SubClusterConfig& config() const { return cfg_; }

  [[nodiscard]] node::ComputeNode& node(std::uint32_t i) {
    return *nodes_.at(i);
  }
  [[nodiscard]] peach2::Peach2Chip& chip(std::uint32_t i) {
    return *chips_.at(i);
  }
  [[nodiscard]] driver::Peach2Driver& driver(std::uint32_t i) {
    return *drivers_.at(i);
  }

  /// Global TCA addresses of targets inside node `i`.
  [[nodiscard]] std::uint64_t global_host(std::uint32_t i,
                                          std::uint64_t offset) const {
    return layout_.encode(i, peach2::TcaTarget::kHost, offset);
  }
  [[nodiscard]] std::uint64_t global_gpu(std::uint32_t i, int gpu,
                                         std::uint64_t offset) const {
    return layout_.encode(i,
                          gpu == 0 ? peach2::TcaTarget::kGpu0
                                   : peach2::TcaTarget::kGpu1,
                          offset);
  }

  /// Ring hop count from node `from` to node `to` (shortest direction),
  /// as the routing tables will steer it.
  [[nodiscard]] std::uint32_t ring_hops(std::uint32_t from,
                                        std::uint32_t to) const;

  /// Fault injection: takes every inter-node cable down (or back up).
  /// Host-to-chip slot links are untouched — the Section V property that
  /// distinguishes PEACH2 from NTB-based fabrics.
  void set_fabric_up(bool up) {
    for (auto& cable : cables_) cable->set_up(up);
  }

  /// Exports every hardware counter in the fabric into `reg` under
  /// hierarchical names: per-cable link stats (`pcie.cable.<a>-<b>.fwd.*`,
  /// forward = end_a->end_b), per-node chip/DMAC/driver/CPU/host/GPU stats
  /// (`node<i>.peach2.dmac.ch<c>.*`, ...), and fabric-level roll-ups
  /// (`fabric.*`). This is the structured replacement for the old printf
  /// stats dump; serialize with MetricRegistry::to_json().
  void export_metrics(obs::MetricRegistry& reg) const;

  /// Number of inter-node cables (ring + optional South cross-links).
  [[nodiscard]] std::size_t cable_count() const { return cables_.size(); }
  /// Cable `k` and the (from, to) node pair it connects; end_a is `from`.
  [[nodiscard]] const pcie::PcieLink& cable(std::size_t k) const {
    return *cables_.at(k);
  }
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> cable_nodes(
      std::size_t k) const {
    return cable_ends_.at(k);
  }

 private:
  void wire_ring(sim::Scheduler& sched, std::uint32_t first,
                 std::uint32_t count);
  void program_ring_routes(std::uint32_t first, std::uint32_t count);
  void program_dual_ring_routes();

  SubClusterConfig cfg_;
  peach2::TcaLayout layout_;
  std::vector<std::unique_ptr<node::ComputeNode>> nodes_;
  std::vector<std::unique_ptr<peach2::Peach2Chip>> chips_;
  std::vector<std::unique_ptr<driver::Peach2Driver>> drivers_;
  std::vector<std::unique_ptr<pcie::PcieLink>> cables_;
  /// (from, to) node ids per cable, parallel to cables_; end_a is `from`.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> cable_ends_;
};

}  // namespace tca::fabric
