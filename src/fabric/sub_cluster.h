// TCA sub-cluster builder (Sections II-B, III-E).
//
// Assembles N compute nodes, one PEACH2 board each, wires the boards into a
// ring over their East/West ports (optionally two rings coupled by the South
// ports), programs every chip's routing registers per Fig. 5, and
// instantiates a driver per node. "The basic unit is the sub-cluster, which
// consists of eight to 16 nodes" — the builder accepts 2..16 (power of two).
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "calib/calibration.h"
#include "driver/peach2_driver.h"
#include "fabric/fault_plan.h"
#include "node/compute_node.h"
#include "obs/metrics.h"
#include "peach2/chip.h"
#include "peach2/tca_layout.h"
#include "pcie/link.h"
#include "sim/scheduler.h"

namespace tca::fabric {

enum class Topology {
  /// Single ring over E/W ports (the paper's primary configuration).
  kRing,
  /// Two rings of N/2 nodes, coupled pairwise by the S ports ("Port S is
  /// ... used to combine two rings by connecting to Port S on the peer
  /// node"). Requires node_count >= 4.
  kDualRing,
};

struct SubClusterConfig {
  std::uint32_t node_count = 2;  ///< power of two, 2..16
  Topology topology = Topology::kRing;
  node::NodeConfig node_config;
  std::uint64_t window_base = calib::kTcaWindowBase;
  std::uint64_t window_bytes = calib::kTcaWindowBytes;
  /// Fault injection: bit error rate on the inter-node cables (LCRC
  /// failures trigger data-link-layer replays; data is never lost).
  double cable_bit_error_rate = 0;
  /// Deterministic fault schedule applied at construction (cable flaps, BER
  /// bursts, stuck doorbells). Event times are relative to construction.
  FaultPlan fault_plan;
  /// Ring failover: when the NIOS firmware services a ring-cable-down event,
  /// rewrite the address-range routing registers (the Fig. 5 mechanism) so
  /// traffic steers the other way around the ring; restore the shortest-path
  /// tables on link-up. kRing topology only. When every usable direction is
  /// dead (a full-fabric outage) routes are left alone and traffic is held
  /// in the replay buffers, exactly as with failover disabled.
  bool enable_failover = true;
};

class SubCluster {
 public:
  SubCluster(sim::Scheduler& sched, const SubClusterConfig& config);

  // Fault-plan events and NIOS link listeners capture `this`.
  SubCluster(const SubCluster&) = delete;
  SubCluster& operator=(const SubCluster&) = delete;

  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  [[nodiscard]] const peach2::TcaLayout& layout() const { return layout_; }
  [[nodiscard]] const SubClusterConfig& config() const { return cfg_; }

  [[nodiscard]] node::ComputeNode& node(std::uint32_t i) {
    return *nodes_.at(i);
  }
  [[nodiscard]] peach2::Peach2Chip& chip(std::uint32_t i) {
    return *chips_.at(i);
  }
  [[nodiscard]] driver::Peach2Driver& driver(std::uint32_t i) {
    return *drivers_.at(i);
  }

  /// Global TCA addresses of targets inside node `i`.
  [[nodiscard]] std::uint64_t global_host(std::uint32_t i,
                                          std::uint64_t offset) const {
    return layout_.encode(i, peach2::TcaTarget::kHost, offset);
  }
  [[nodiscard]] std::uint64_t global_gpu(std::uint32_t i, int gpu,
                                         std::uint64_t offset) const {
    return layout_.encode(i,
                          gpu == 0 ? peach2::TcaTarget::kGpu0
                                   : peach2::TcaTarget::kGpu1,
                          offset);
  }

  /// Ring hop count from node `from` to node `to` (shortest direction),
  /// as the routing tables will steer it.
  [[nodiscard]] std::uint32_t ring_hops(std::uint32_t from,
                                        std::uint32_t to) const;

  /// Fault injection: takes every inter-node cable down (or back up).
  /// Host-to-chip slot links are untouched — the Section V property that
  /// distinguishes PEACH2 from NTB-based fabrics.
  void set_fabric_up(bool up) {
    for (auto& cable : cables_) cable->set_up(up);
  }

  /// Exports every hardware counter in the fabric into `reg` under
  /// hierarchical names: per-cable link stats (`pcie.cable.<a>-<b>.fwd.*`,
  /// forward = end_a->end_b), per-node chip/DMAC/driver/CPU/host/GPU stats
  /// (`node<i>.peach2.dmac.ch<c>.*`, ...), and fabric-level roll-ups
  /// (`fabric.*`). This is the structured replacement for the old printf
  /// stats dump; serialize with MetricRegistry::to_json().
  void export_metrics(obs::MetricRegistry& reg) const;

  /// Number of inter-node cables (ring + optional South cross-links).
  [[nodiscard]] std::size_t cable_count() const { return cables_.size(); }
  /// Cable `k` and the (from, to) node pair it connects; end_a is `from`.
  [[nodiscard]] const pcie::PcieLink& cable(std::size_t k) const {
    return *cables_.at(k);
  }
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> cable_nodes(
      std::size_t k) const {
    return cable_ends_.at(k);
  }

  /// Firmware's view of ring cable `k` (false once a NIOS has serviced its
  /// down event; the routing tables reflect this view, not the wire state).
  [[nodiscard]] bool ring_cable_usable(std::size_t k) const {
    return ring_cable_up_.at(k);
  }

  /// Reroute events: failovers_ counts down-transitions that changed at
  /// least one routing entry; failbacks_ counts up-transitions that restored
  /// entries. Zero unless enable_failover and topology == kRing.
  [[nodiscard]] std::uint64_t failovers() const { return failovers_; }
  [[nodiscard]] std::uint64_t failbacks() const { return failbacks_; }

 private:
  void wire_ring(sim::Scheduler& sched, std::uint32_t first,
                 std::uint32_t count);
  void program_ring_routes(std::uint32_t first, std::uint32_t count);
  void program_dual_ring_routes();

  /// Installs the NIOS link listeners that drive ring failover.
  void arm_failover(sim::Scheduler& sched);
  /// Schedules every FaultPlan event onto `sched`.
  void schedule_faults(sim::Scheduler& sched);
  /// Rewrites every node's ring routes honoring ring_cable_up_; returns the
  /// number of route entries whose port changed.
  std::uint32_t reprogram_ring_routes();

  SubClusterConfig cfg_;
  peach2::TcaLayout layout_;
  std::vector<std::unique_ptr<node::ComputeNode>> nodes_;
  std::vector<std::unique_ptr<peach2::Peach2Chip>> chips_;
  std::vector<std::unique_ptr<driver::Peach2Driver>> drivers_;
  std::vector<std::unique_ptr<pcie::PcieLink>> cables_;
  /// (from, to) node ids per cable, parallel to cables_; end_a is `from`.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> cable_ends_;

  /// Failover state (kRing only): firmware-serviced view of each ring cable
  /// (cable k joins nodes k and (k+1) % n, node k's East port).
  std::vector<bool> ring_cable_up_;
  std::uint64_t failovers_ = 0;
  std::uint64_t failbacks_ = 0;

  /// FaultPlan window nesting: a resource stays faulted until every
  /// overlapping window has closed.
  std::vector<int> cable_down_depth_;
  std::vector<int> cable_ber_depth_;
  std::vector<int> dmac_stuck_depth_;  // node * kDmaChannels + channel
};

}  // namespace tca::fabric
