#include "fabric/topology.h"

#include <charconv>

#include "calib/calibration.h"
#include "peach2/routing.h"

namespace tca::fabric {

namespace {

bool is_power_of_two(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

constexpr const char* kDimNames[TopologySpec::kMaxDims] = {"x", "y", "z"};

}  // namespace

// The largest advertised torus (calib::kMaxFabricNodes as a square) must
// compress into the chip's route table; validate() enforces the same bound
// per shape at runtime, this pins the register-file sizing at compile time.
static_assert(2 * (32 - 1) <= peach2::RoutingTable::kCapacity,
              "route table too small for the 32x32 torus (2*(E-1) entries)");
static_assert(3 * (calib::kMaxTorusExtent3D - 1) <=
                  peach2::RoutingTable::kCapacity,
              "route table too small for the max cubic torus");

TopologySpec TopologySpec::ring(std::uint32_t nodes) {
  return TopologySpec{Kind::kRing, {nodes, 1, 1}, 1};
}

TopologySpec TopologySpec::dual_ring(std::uint32_t nodes) {
  return TopologySpec{Kind::kDualRing, {nodes, 1, 1}, 1};
}

TopologySpec TopologySpec::torus(const std::vector<std::uint32_t>& extents) {
  TCA_ASSERT(!extents.empty() && extents.size() <= kMaxDims);
  std::array<std::uint32_t, kMaxDims> e = {1, 1, 1};
  for (std::size_t d = 0; d < extents.size(); ++d) e[d] = extents[d];
  return TopologySpec{Kind::kTorus, e,
                      static_cast<std::uint32_t>(extents.size())};
}

TopologySpec TopologySpec::from_legacy(Topology topology,
                                       std::uint32_t nodes) {
  return topology == Topology::kDualRing ? dual_ring(nodes) : ring(nodes);
}

Status TopologySpec::validate() const {
  if (empty()) {
    return {ErrorCode::kInvalidArgument, "topology spec is empty"};
  }
  const std::uint32_t n = node_count();
  switch (kind_) {
    case Kind::kRing:
      if (n < 2 || n > calib::kMaxSubClusterNodes || !is_power_of_two(n)) {
        return {ErrorCode::kInvalidArgument,
                "ring node count must be a power of two in [2, 16]"};
      }
      return Status::ok();
    case Kind::kDualRing:
      if (n < 4 || n > calib::kMaxSubClusterNodes || !is_power_of_two(n)) {
        return {ErrorCode::kInvalidArgument,
                "dual-ring node count must be a power of two in [4, 16] "
                "(two rings of >= 2)"};
      }
      return Status::ok();
    case Kind::kTorus:
      break;
  }
  for (std::uint32_t d = 0; d < dims_; ++d) {
    if (extents_[d] < 2) {
      return {ErrorCode::kInvalidArgument,
              "torus dimension " + std::string(kDimNames[d]) + " (extent " +
                  std::to_string(extents_[d]) +
                  ") must be >= 2 — each dimension is a ring"};
    }
  }
  if (!is_power_of_two(n)) {
    return {ErrorCode::kInvalidArgument,
            "torus node count " + std::to_string(n) +
                " must be a power of two (slices decode by masked compare)"};
  }
  if (n > calib::kMaxFabricNodes) {
    return {ErrorCode::kInvalidArgument,
            "torus node count " + std::to_string(n) + " exceeds the fabric "
            "limit of " + std::to_string(calib::kMaxFabricNodes)};
  }
  if (route_entries_per_node() > peach2::RoutingTable::kCapacity) {
    // Name the widest dimension — that is the one to shrink.
    std::uint32_t widest = 0;
    for (std::uint32_t d = 1; d < dims_; ++d) {
      if (extents_[d] > extents_[widest]) widest = d;
    }
    return {ErrorCode::kInvalidArgument,
            "torus needs " + std::to_string(route_entries_per_node()) +
                " route entries per node, above the register-file capacity "
                "of " + std::to_string(peach2::RoutingTable::kCapacity) +
                " — dimension " + std::string(kDimNames[widest]) +
                " (extent " + std::to_string(extents_[widest]) +
                ") is the widest"};
  }
  return Status::ok();
}

std::uint32_t TopologySpec::route_entries_per_node() const {
  if (kind_ == Kind::kDualRing) return node_count() - 1;
  std::uint32_t entries = 0;
  for (std::uint32_t d = 0; d < dims_; ++d) entries += extents_[d] - 1;
  return entries;
}

std::array<std::uint32_t, TopologySpec::kMaxDims> TopologySpec::coords(
    std::uint32_t node) const {
  std::array<std::uint32_t, kMaxDims> c = {0, 0, 0};
  for (std::uint32_t d = 0; d < dims_; ++d) {
    c[d] = node % extents_[d];
    node /= extents_[d];
  }
  return c;
}

std::uint32_t TopologySpec::node_at(
    const std::array<std::uint32_t, kMaxDims>& c) const {
  std::uint32_t node = 0;
  for (std::uint32_t d = dims_; d-- > 0;) {
    node = node * extents_[d] + c[d];
  }
  return node;
}

std::uint32_t TopologySpec::ring_distance(std::uint32_t dim,
                                          std::uint32_t from,
                                          std::uint32_t to) const {
  const std::uint32_t e = extents_[dim];
  const std::uint32_t plus = (to + e - from) % e;
  const std::uint32_t minus = (from + e - to) % e;
  return plus < minus ? plus : minus;
}

std::uint32_t TopologySpec::hops(std::uint32_t from, std::uint32_t to) const {
  if (from == to) return 0;
  if (kind_ == Kind::kDualRing) {
    const std::uint32_t half = node_count() / 2;
    const std::uint32_t p = from % half;
    const std::uint32_t q = to % half;
    const bool same_ring = (from < half) == (to < half);
    const std::uint32_t plus = (q + half - p) % half;
    const std::uint32_t minus = (p + half - q) % half;
    const std::uint32_t ride = plus < minus ? plus : minus;
    // Cross rings at the destination's pairing position: ride + one S hop.
    return same_ring ? ride : ride + 1;
  }
  std::uint32_t total = 0;
  const auto cf = coords(from);
  const auto ct = coords(to);
  for (std::uint32_t d = 0; d < dims_; ++d) {
    total += ring_distance(d, cf[d], ct[d]);
  }
  return total;
}

std::vector<std::uint32_t> TopologySpec::ring_order() const {
  const std::uint32_t n = node_count();
  std::vector<std::uint32_t> order(n);
  if (kind_ != Kind::kTorus || dims_ == 1) {
    for (std::uint32_t p = 0; p < n; ++p) order[p] = p;
    return order;
  }
  // Reflected mixed-radix walk (boustrophedon): digit d of the position
  // index maps to coordinate d, mirrored whenever the sum of the more
  // significant *reflected* coordinates is odd (accumulated MSB-first —
  // mirroring on the raw digits breaks at carries that ripple through
  // more than one dimension). Consecutive positions then differ by one
  // coordinate step, so every logical-ring hop rides a single cable.
  for (std::uint32_t p = 0; p < n; ++p) {
    std::array<std::uint32_t, kMaxDims> digits = {0, 0, 0};
    std::uint32_t rem = p;
    for (std::uint32_t d = 0; d < dims_; ++d) {
      digits[d] = rem % extents_[d];
      rem /= extents_[d];
    }
    std::array<std::uint32_t, kMaxDims> c = {0, 0, 0};
    std::uint32_t parity = 0;
    for (std::uint32_t d = dims_; d-- > 0;) {
      c[d] = (parity % 2 == 0) ? digits[d] : extents_[d] - 1 - digits[d];
      parity += c[d];
    }
    order[p] = node_at(c);
  }
  return order;
}

std::string TopologySpec::to_string() const {
  switch (kind_) {
    case Kind::kRing: return "ring";
    case Kind::kDualRing: return "dual-ring";
    case Kind::kTorus: break;
  }
  std::string out = "torus:";
  for (std::uint32_t d = 0; d < dims_; ++d) {
    if (d > 0) out += 'x';
    out += std::to_string(extents_[d]);
  }
  return out;
}

Result<TopologySpec> TopologySpec::parse(std::string_view text) {
  if (text == "ring") return ring(0);  // node count supplied separately
  if (text == "dual-ring") return dual_ring(0);
  constexpr std::string_view kPrefix = "torus:";
  if (text.substr(0, kPrefix.size()) != kPrefix) {
    return Status{ErrorCode::kInvalidArgument,
                  "unknown topology '" + std::string(text) +
                      "' (ring | dual-ring | torus:XxY[xZ])"};
  }
  std::string_view rest = text.substr(kPrefix.size());
  std::vector<std::uint32_t> extents;
  while (!rest.empty()) {
    std::uint32_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(rest.data(), rest.data() + rest.size(), value);
    if (ec != std::errc{} || ptr == rest.data()) {
      return Status{ErrorCode::kInvalidArgument,
                    "bad torus extent in '" + std::string(text) + "'"};
    }
    extents.push_back(value);
    rest.remove_prefix(static_cast<std::size_t>(ptr - rest.data()));
    if (rest.empty()) break;
    if (rest.front() != 'x') {
      return Status{ErrorCode::kInvalidArgument,
                    "torus extents must be separated by 'x' in '" +
                        std::string(text) + "'"};
    }
    rest.remove_prefix(1);
    if (rest.empty()) {
      return Status{ErrorCode::kInvalidArgument,
                    "trailing 'x' in '" + std::string(text) + "'"};
    }
  }
  if (extents.empty() || extents.size() > kMaxDims) {
    return Status{ErrorCode::kInvalidArgument,
                  "torus takes 1 to 3 extents (torus:XxY[xZ])"};
  }
  return torus(extents);
}

}  // namespace tca::fabric
