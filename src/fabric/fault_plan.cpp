#include "fabric/fault_plan.h"

#include <cstdlib>
#include <sstream>

#include "calib/calibration.h"
#include "fabric/topology.h"

namespace tca::fabric {

const char* to_string(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kLinkDown: return "flap";
    case FaultEvent::Kind::kLinkUp: return "up";
    case FaultEvent::Kind::kBerBurst: return "ber";
    case FaultEvent::Kind::kStuckDoorbell: return "stuck";
  }
  return "?";
}

FaultPlan& FaultPlan::flap(std::uint32_t cable, TimePs at, TimePs duration) {
  events.push_back({.kind = FaultEvent::Kind::kLinkDown,
                    .at = at,
                    .duration = duration,
                    .cable = cable});
  return *this;
}

FaultPlan& FaultPlan::cut(std::uint32_t cable, TimePs at) {
  events.push_back(
      {.kind = FaultEvent::Kind::kLinkDown, .at = at, .cable = cable});
  return *this;
}

FaultPlan& FaultPlan::up(std::uint32_t cable, TimePs at) {
  events.push_back(
      {.kind = FaultEvent::Kind::kLinkUp, .at = at, .cable = cable});
  return *this;
}

FaultPlan& FaultPlan::ber_burst(std::uint32_t cable, TimePs at,
                                TimePs duration, double rate) {
  events.push_back({.kind = FaultEvent::Kind::kBerBurst,
                    .at = at,
                    .duration = duration,
                    .cable = cable,
                    .ber = rate});
  return *this;
}

FaultPlan& FaultPlan::stuck_doorbell(std::uint32_t node, int channel,
                                     TimePs at, TimePs duration) {
  events.push_back({.kind = FaultEvent::Kind::kStuckDoorbell,
                    .at = at,
                    .duration = duration,
                    .node = node,
                    .channel = channel});
  return *this;
}

namespace {

Status parse_error(std::string_view spec, const std::string& why) {
  return {ErrorCode::kInvalidArgument,
          "fault plan \"" + std::string(spec) + "\": " + why};
}

/// Parses "5us" / "100ns" / "1ms" / "2s" / bare picoseconds.
bool parse_time(std::string_view v, TimePs* out) {
  char* end = nullptr;
  const std::string s(v);
  const double num = std::strtod(s.c_str(), &end);
  if (end == s.c_str()) return false;
  const std::string_view suffix(end);
  double scale = 1;  // bare = ps
  if (suffix == "ps") scale = 1;
  else if (suffix == "ns") scale = 1e3;
  else if (suffix == "us") scale = 1e6;
  else if (suffix == "ms") scale = 1e9;
  else if (suffix == "s") scale = 1e12;
  else if (!suffix.empty()) return false;
  *out = static_cast<TimePs>(num * scale);
  return *out >= 0;
}

bool parse_double(std::string_view v, double* out) {
  char* end = nullptr;
  const std::string s(v);
  *out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size() && *out >= 0;
}

bool parse_u32(std::string_view v, std::uint32_t* out) {
  char* end = nullptr;
  const std::string s(v);
  const unsigned long num = std::strtoul(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) return false;
  *out = static_cast<std::uint32_t>(num);
  return true;
}

/// Key bits for the per-kind allowed sets and duplicate detection.
enum KeyBit : unsigned {
  kKeyCable = 1u << 0,
  kKeyNode = 1u << 1,
  kKeyCh = 1u << 2,
  kKeyAt = 1u << 3,
  kKeyFor = 1u << 4,
  kKeyRate = 1u << 5,
};

unsigned allowed_keys(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kLinkDown: return kKeyCable | kKeyAt | kKeyFor;
    case FaultEvent::Kind::kLinkUp: return kKeyCable | kKeyAt;
    case FaultEvent::Kind::kBerBurst:
      return kKeyCable | kKeyAt | kKeyFor | kKeyRate;
    case FaultEvent::Kind::kStuckDoorbell:
      return kKeyNode | kKeyCh | kKeyAt | kKeyFor;
  }
  return 0;
}

}  // namespace

Result<FaultPlan> FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t semi = spec.find(';', pos);
    if (semi == std::string_view::npos) semi = spec.size();
    const std::string_view item = spec.substr(pos, semi - pos);
    pos = semi + 1;
    if (item.empty()) continue;

    const std::size_t colon = item.find(':');
    if (colon == std::string_view::npos) {
      return parse_error(spec, "missing ':' in \"" + std::string(item) + "\"");
    }
    const std::string_view kind_name = item.substr(0, colon);

    FaultEvent e;
    if (kind_name == "flap" || kind_name == "cut") {
      e.kind = FaultEvent::Kind::kLinkDown;
    } else if (kind_name == "up") {
      e.kind = FaultEvent::Kind::kLinkUp;
    } else if (kind_name == "ber") {
      e.kind = FaultEvent::Kind::kBerBurst;
    } else if (kind_name == "stuck") {
      e.kind = FaultEvent::Kind::kStuckDoorbell;
    } else {
      return parse_error(spec,
                         "unknown kind \"" + std::string(kind_name) + "\"");
    }

    const unsigned allowed = allowed_keys(e.kind);
    unsigned seen = 0;
    std::size_t kpos = colon + 1;
    while (kpos < item.size()) {
      std::size_t comma = item.find(',', kpos);
      if (comma == std::string_view::npos) comma = item.size();
      const std::string_view kv = item.substr(kpos, comma - kpos);
      kpos = comma + 1;
      const std::size_t eq = kv.find('=');
      if (eq == std::string_view::npos) {
        return parse_error(spec, "missing '=' in \"" + std::string(kv) + "\"");
      }
      const std::string_view key = kv.substr(0, eq);
      const std::string_view value = kv.substr(eq + 1);
      unsigned bit = 0;
      bool ok = true;
      if (key == "cable") {
        bit = kKeyCable;
        ok = parse_u32(value, &e.cable);
      } else if (key == "node") {
        bit = kKeyNode;
        ok = parse_u32(value, &e.node);
      } else if (key == "ch") {
        bit = kKeyCh;
        std::uint32_t ch = 0;
        ok = parse_u32(value, &ch);
        e.channel = static_cast<int>(ch);
      } else if (key == "at") {
        bit = kKeyAt;
        ok = parse_time(value, &e.at);
      } else if (key == "for") {
        bit = kKeyFor;
        ok = parse_time(value, &e.duration);
      } else if (key == "rate") {
        bit = kKeyRate;
        ok = parse_double(value, &e.ber);
      } else {
        return parse_error(spec, "unknown key \"" + std::string(key) + "\"");
      }
      if ((allowed & bit) == 0) {
        return parse_error(spec, "key \"" + std::string(key) +
                                     "\" is not valid for \"" +
                                     std::string(kind_name) + "\"");
      }
      if ((seen & bit) != 0) {
        return parse_error(spec, "duplicate key \"" + std::string(key) +
                                     "\" in \"" + std::string(item) + "\"");
      }
      seen |= bit;
      if (!ok) {
        return parse_error(spec, "bad value \"" + std::string(value) +
                                     "\" for " + std::string(key));
      }
    }

    if (e.kind == FaultEvent::Kind::kBerBurst &&
        (e.ber <= 0 || e.duration <= 0)) {
      return parse_error(spec, "ber needs rate>0 and for>0");
    }
    if (e.kind == FaultEvent::Kind::kStuckDoorbell && e.duration <= 0) {
      return parse_error(spec, "stuck needs for>0");
    }
    plan.events.push_back(e);
  }
  return plan;
}

std::string to_string(const FaultEvent& e) {
  std::ostringstream out;
  out << to_string(e.kind) << ":at=" << e.at << "ps";
  switch (e.kind) {
    case FaultEvent::Kind::kLinkDown:
    case FaultEvent::Kind::kLinkUp:
      out << ",cable=" << e.cable;
      break;
    case FaultEvent::Kind::kBerBurst:
      out << ",cable=" << e.cable << ",rate=" << e.ber;
      break;
    case FaultEvent::Kind::kStuckDoorbell:
      out << ",node=" << e.node << ",ch=" << e.channel;
      break;
  }
  // kLinkUp has no duration key (parse rejects "for" on "up"); a stray
  // duration on such an event must not leak into the canonical form.
  if (e.duration > 0 && e.kind != FaultEvent::Kind::kLinkUp) {
    out << ",for=" << e.duration << "ps";
  }
  return out.str();
}

std::string FaultPlan::to_string() const {
  std::string out;
  for (const FaultEvent& e : events) {
    if (!out.empty()) out += ';';
    out += fabric::to_string(e);
  }
  return out;
}

Status FaultPlan::validate(const TopologySpec& topo) const {
  const std::uint32_t cables = topo.cable_count();
  const std::uint32_t nodes = topo.node_count();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& e = events[i];
    const auto fail = [&](const std::string& why) {
      return Status{ErrorCode::kInvalidArgument,
                    "fault plan event " + std::to_string(i) + " (" +
                        fabric::to_string(e) + "): " + why};
    };
    if (e.at < 0) return fail("event time must be >= 0");
    if (e.duration < 0) return fail("duration must be >= 0");
    switch (e.kind) {
      case FaultEvent::Kind::kLinkDown:
      case FaultEvent::Kind::kLinkUp:
      case FaultEvent::Kind::kBerBurst:
        if (e.cable >= cables) {
          return fail("cable " + std::to_string(e.cable) +
                      " out of range: topology " + topo.to_string() +
                      " has " + std::to_string(cables) + " cables");
        }
        break;
      case FaultEvent::Kind::kStuckDoorbell:
        if (e.node >= nodes) {
          return fail("node " + std::to_string(e.node) +
                      " out of range: topology " + topo.to_string() +
                      " has " + std::to_string(nodes) + " nodes");
        }
        if (e.channel < 0 || e.channel >= calib::kDmaChannels) {
          return fail("channel " + std::to_string(e.channel) +
                      " out of range: DMAC has " +
                      std::to_string(calib::kDmaChannels) + " channels");
        }
        break;
    }
    if (e.kind == FaultEvent::Kind::kBerBurst &&
        (e.ber <= 0 || e.ber > 1 || e.duration <= 0)) {
      return fail("ber burst needs rate in (0, 1] and for > 0");
    }
    if (e.kind == FaultEvent::Kind::kStuckDoorbell && e.duration <= 0) {
      return fail("stuck doorbell needs for > 0");
    }
  }
  return Status::ok();
}

}  // namespace tca::fabric
