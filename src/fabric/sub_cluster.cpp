#include "fabric/sub_cluster.h"

#include "common/log.h"
#include "common/trace.h"
#include "peach2/nios.h"

namespace tca::fabric {

using peach2::Peach2Chip;
using peach2::Peach2Config;
using peach2::PortId;
using peach2::RouteEntry;
using peach2::TcaLayout;

namespace {

/// Shard affinity for the sharded scheduler backend: one shard per node,
/// folded onto the configured shard count. Every cross-node event then
/// crosses a cable (latency >= calib::kConservativeLookaheadPs), which is
/// the invariant the conservative lookahead window relies on. No-op (all
/// zero) on non-sharded backends.
std::uint32_t node_shard(sim::Scheduler& sched, std::uint32_t node) {
  const sim::ShardedEngine* engine = sched.sharded();
  return engine != nullptr ? node % engine->shard_count() : 0;
}

pcie::LinkConfig cable_config(std::uint32_t from, std::uint32_t to,
                              double bit_error_rate) {
  // PCIe external cable between boards: Gen2 x8 with repeater/propagation
  // latency (Section III-G). Shallow egress queue — see the PEACH2 slot
  // link: backpressure must reach the DMA engine promptly.
  return {.gen = 2,
          .lanes = 8,
          .propagation_ps = calib::kCableLatencyPs,
          .tx_queue_bytes = 600,
          .name = "cable/" + std::to_string(from) + "-" +
                  std::to_string(to),
          .bit_error_rate = bit_error_rate,
          .error_seed = 0x5EED0000ull + from * 97 + to};
}

}  // namespace

SubCluster::SubCluster(sim::Scheduler& sched, const SubClusterConfig& config)
    : cfg_(config) {
  auto layout_result = TcaLayout::create(config.window_base,
                                         config.window_bytes,
                                         config.node_count);
  TCA_ASSERT(layout_result.is_ok());
  layout_ = layout_result.value();
  TCA_ASSERT(config.node_count >= 2);
  TCA_ASSERT(config.topology != Topology::kDualRing ||
             config.node_count >= 4);

  for (std::uint32_t i = 0; i < config.node_count; ++i) {
    auto& n = nodes_.emplace_back(std::make_unique<node::ComputeNode>(
        sched, static_cast<int>(i), config.node_config));

    Peach2Config pcfg{
        .device_id = static_cast<pcie::DeviceId>(i * 16 + 8),
        .node_id = i,
        .layout = layout_,
        .reg_base = node::layout::kPeach2RegBase,
        .local_gpu0_base = node::layout::gpu_bar_base(0),
        .local_gpu1_base = node::layout::gpu_bar_base(1),
        .local_host_base = node::layout::kHostBase,
    };
    auto& chip = chips_.emplace_back(std::make_unique<Peach2Chip>(sched, pcfg));
    pcie::LinkPort& slot = n->attach_peach2_slot(
        pcfg.device_id, node::layout::kPeach2RegBase,
        /*claim_tca_window=*/true);
    slot.set_shard(node_shard(sched, i));  // node-internal: same shard
    chip->attach_port(PortId::kNorth, slot);
    drivers_.emplace_back(
        std::make_unique<driver::Peach2Driver>(*n, *chip));
  }

  if (config.topology == Topology::kRing) {
    wire_ring(sched, 0, config.node_count);
    program_ring_routes(0, config.node_count);
    ring_cable_up_.assign(cables_.size(), true);
    if (config.enable_failover) arm_failover(sched);
  } else {
    const std::uint32_t half = config.node_count / 2;
    wire_ring(sched, 0, half);
    wire_ring(sched, half, half);
    // South cross-links pair node i with node i + half.
    for (std::uint32_t i = 0; i < half; ++i) {
      auto& cable = cables_.emplace_back(std::make_unique<pcie::PcieLink>(
          sched, cable_config(i, i + half, cfg_.cable_bit_error_rate)));
      cable_ends_.emplace_back(i, i + half);
      cable->end_a().set_shard(node_shard(sched, i));
      cable->end_b().set_shard(node_shard(sched, i + half));
      chips_[i]->attach_port(PortId::kSouth, cable->end_a());
      chips_[i + half]->attach_port(PortId::kSouth, cable->end_b());
    }
    program_dual_ring_routes();
  }

  if (!config.fault_plan.empty()) schedule_faults(sched);
}

void SubCluster::arm_failover(sim::Scheduler& sched) {
  // Ring cable k joins node k (East end) to node (k+1) % n (West end), so
  // node i's East port maps to cable i and its West port to cable i-1. Both
  // endpoints report each transition; the first serviced one reroutes.
  const std::uint32_t n = cfg_.node_count;
  for (std::uint32_t i = 0; i < n; ++i) {
    chips_[i]->nios().set_link_listener(
        [this, i, n, &sched](PortId port, bool up) {
          std::size_t cable;
          if (port == PortId::kEast) {
            cable = i;
          } else if (port == PortId::kWest) {
            cable = (i + n - 1) % n;
          } else {
            return;  // N (host slot) and S (no cable in kRing)
          }
          if (ring_cable_up_[cable] == up) return;  // peer already serviced
          ring_cable_up_[cable] = up;
          const std::uint32_t changed = reprogram_ring_routes();
          if (changed == 0) return;
          up ? ++failbacks_ : ++failovers_;
          Log::write(LogLevel::kInfo, "fabric",
                     std::string(up ? "failback" : "failover") + ": cable " +
                         std::to_string(cable) + (up ? " up, " : " down, ") +
                         std::to_string(changed) + " routes rewritten");
          if (Trace::instance().enabled()) {
            Trace::instance().instant(
                "fabric",
                std::string(up ? "failback" : "failover") + " cable " +
                    std::to_string(cable),
                sched.now());
          }
        });
  }
}

std::uint32_t SubCluster::reprogram_ring_routes() {
  const std::uint32_t n = cfg_.node_count;
  std::uint32_t changed = 0;
  for (std::uint32_t a = 0; a < n; ++a) {
    peach2::RoutingTable& table = chips_[a]->routing();
    for (std::uint32_t b = 0; b < n; ++b) {
      if (a == b) continue;
      const std::uint32_t cw = (b + n - a) % n;   // hops going East
      const std::uint32_t ccw = (a + n - b) % n;  // hops going West
      bool cw_clean = true, ccw_clean = true;
      for (std::uint32_t h = 0; h < cw; ++h) {
        cw_clean = cw_clean && ring_cable_up_[(a + h) % n];
      }
      for (std::uint32_t h = 0; h < ccw; ++h) {
        ccw_clean = ccw_clean && ring_cable_up_[(a + n - 1 - h) % n];
      }
      // Shortest path when both directions are clean — and also when both
      // are dirty: with no usable detour, traffic is held in the replay
      // buffer of the shortest direction, the pre-failover behavior.
      PortId port;
      if (cw_clean == ccw_clean) {
        port = cw <= ccw ? PortId::kEast : PortId::kWest;
      } else {
        port = cw_clean ? PortId::kEast : PortId::kWest;
      }
      // Rewrite the Fig. 5 register for destination b (matched by its
      // slice's lower bound — route order is stable after construction).
      const std::uint64_t lower = layout_.slice_base(b);
      for (std::size_t e = 0; e < table.size(); ++e) {
        RouteEntry& entry = table.entry_mut(e);
        if (entry.lower != lower) continue;
        if (entry.port != port) {
          entry.port = port;
          ++changed;
        }
        break;
      }
    }
  }
  return changed;
}

void SubCluster::schedule_faults(sim::Scheduler& sched) {
  cable_down_depth_.assign(cables_.size(), 0);
  cable_ber_depth_.assign(cables_.size(), 0);
  dmac_stuck_depth_.assign(cfg_.node_count * calib::kDmaChannels, 0);

  for (const FaultEvent& e : cfg_.fault_plan.events) {
    switch (e.kind) {
      case FaultEvent::Kind::kLinkDown: {
        TCA_ASSERT(e.cable < cables_.size());
        const std::size_t c = e.cable;
        sched.schedule_after(e.at, [this, c] {
          if (++cable_down_depth_[c] == 1) cables_[c]->set_up(false);
        });
        if (e.duration > 0) {
          sched.schedule_after(e.at + e.duration, [this, c] {
            if (--cable_down_depth_[c] == 0) cables_[c]->set_up(true);
          });
        }
        break;
      }
      case FaultEvent::Kind::kLinkUp: {
        TCA_ASSERT(e.cable < cables_.size());
        const std::size_t c = e.cable;
        sched.schedule_after(e.at, [this, c] {
          cable_down_depth_[c] = 0;  // cancels every open down window
          cables_[c]->set_up(true);
        });
        break;
      }
      case FaultEvent::Kind::kBerBurst: {
        TCA_ASSERT(e.cable < cables_.size());
        const std::size_t c = e.cable;
        const double rate = e.ber;
        sched.schedule_after(e.at, [this, c, rate] {
          ++cable_ber_depth_[c];
          cables_[c]->set_bit_error_rate(rate);
        });
        sched.schedule_after(e.at + e.duration, [this, c] {
          if (--cable_ber_depth_[c] == 0) {
            cables_[c]->set_bit_error_rate(cfg_.cable_bit_error_rate);
          }
        });
        break;
      }
      case FaultEvent::Kind::kStuckDoorbell: {
        TCA_ASSERT(e.node < cfg_.node_count);
        TCA_ASSERT(e.channel >= 0 && e.channel < calib::kDmaChannels);
        const std::size_t idx =
            e.node * calib::kDmaChannels + static_cast<std::size_t>(e.channel);
        const std::uint32_t node = e.node;
        const int ch = e.channel;
        sched.schedule_after(e.at, [this, idx, node, ch] {
          if (++dmac_stuck_depth_[idx] == 1) {
            chips_[node]->dmac(ch).set_stuck(true);
          }
        });
        sched.schedule_after(e.at + e.duration, [this, idx, node, ch] {
          if (--dmac_stuck_depth_[idx] == 0) {
            chips_[node]->dmac(ch).set_stuck(false);
          }
        });
        break;
      }
    }
  }
}

void SubCluster::wire_ring(sim::Scheduler& sched, std::uint32_t first,
                           std::uint32_t count) {
  if (count < 2) return;
  // A 2-node ring degenerates to two cables between the same pair of
  // boards (E0-W1 and E1-W0), which is exactly how two PEACH2 boards are
  // cabled back to back.
  for (std::uint32_t k = 0; k < count; ++k) {
    const std::uint32_t i = first + k;
    const std::uint32_t j = first + (k + 1) % count;
    auto& cable = cables_.emplace_back(
        std::make_unique<pcie::PcieLink>(sched, cable_config(i, j, cfg_.cable_bit_error_rate)));
    cable_ends_.emplace_back(i, j);
    cable->end_a().set_shard(node_shard(sched, i));
    cable->end_b().set_shard(node_shard(sched, j));
    chips_[i]->attach_port(PortId::kEast, cable->end_a());
    chips_[j]->attach_port(PortId::kWest, cable->end_b());
  }
}

void SubCluster::program_ring_routes(std::uint32_t first,
                                     std::uint32_t count) {
  const std::uint64_t slice = layout_.slice_size();
  for (std::uint32_t a = 0; a < count; ++a) {
    for (std::uint32_t b = 0; b < count; ++b) {
      if (a == b) continue;
      const std::uint32_t cw = (b + count - a) % count;   // hops going East
      const std::uint32_t ccw = (a + count - b) % count;  // hops going West
      const PortId port = cw <= ccw ? PortId::kEast : PortId::kWest;
      const Status st = chips_[first + a]->routing().add(RouteEntry{
          .mask = ~(slice - 1),
          .lower = layout_.slice_base(first + b),
          .upper = layout_.slice_base(first + b),
          .port = port,
      });
      TCA_ASSERT(st.is_ok());
    }
  }
}

void SubCluster::program_dual_ring_routes() {
  const std::uint32_t half = cfg_.node_count / 2;
  const std::uint64_t slice = layout_.slice_size();
  program_ring_routes(0, half);
  program_ring_routes(half, half);
  // Destinations in the other ring: cross at the paired node first, then
  // ride that ring. Each node needs an S entry for every cross-ring slice;
  // the ring entries at the far side take over after the hop.
  for (std::uint32_t i = 0; i < cfg_.node_count; ++i) {
    const bool in_first = i < half;
    const std::uint32_t p = i % half;  // position within own ring
    const std::uint32_t other_base = in_first ? half : 0;
    for (std::uint32_t q = 0; q < half; ++q) {
      const std::uint32_t dest = other_base + q;
      // Cross South at the node that pairs with the destination: if we are
      // at the pairing position, hop rings; otherwise ride our ring toward
      // that position (shortest direction).
      PortId port;
      if (p == q) {
        port = PortId::kSouth;
      } else {
        const std::uint32_t cw = (q + half - p) % half;
        const std::uint32_t ccw = (p + half - q) % half;
        port = cw <= ccw ? PortId::kEast : PortId::kWest;
      }
      const Status st = chips_[i]->routing().add(RouteEntry{
          .mask = ~(slice - 1),
          .lower = layout_.slice_base(dest),
          .upper = layout_.slice_base(dest),
          .port = port,
      });
      TCA_ASSERT(st.is_ok());
    }
  }
}

namespace {

/// Exports one link direction's counters under `prefix` and accumulates the
/// fabric roll-up.
void export_port(obs::MetricRegistry& reg, const std::string& prefix,
                 const pcie::LinkPort& port, std::uint64_t* roll) {
  reg.counter(prefix + ".tlps").set(port.tlps_sent());
  reg.counter(prefix + ".wire_bytes").set(port.wire_bytes_sent());
  reg.counter(prefix + ".payload_bytes").set(port.payload_bytes_sent());
  reg.counter(prefix + ".replays").set(port.replays());
  reg.counter(prefix + ".dropped").set(port.dropped_tlps());
  reg.counter(prefix + ".credit_stall_ps")
      .set(static_cast<std::uint64_t>(port.credit_stall_ps()));
  roll[0] += port.tlps_sent();
  roll[1] += port.wire_bytes_sent();
  roll[2] += port.payload_bytes_sent();
  roll[3] += port.replays();
  roll[4] += static_cast<std::uint64_t>(port.credit_stall_ps());
  roll[5] += port.dropped_tlps();
}

}  // namespace

void SubCluster::export_metrics(obs::MetricRegistry& reg) const {
  reg.gauge("fabric.node_count").set(size());
  reg.gauge("fabric.cable_count").set(static_cast<double>(cables_.size()));

  // Inter-node cables. "fwd" is the end_a -> end_b direction, which by
  // wiring convention is `from` -> `to` of cable_nodes().
  std::uint64_t link_roll[6] = {};  // tlps, wire, payload, replays, stall,
                                    // dropped
  for (std::size_t k = 0; k < cables_.size(); ++k) {
    const auto [from, to] = cable_ends_[k];
    const std::string base = "pcie.cable." + std::to_string(from) + "-" +
                             std::to_string(to);
    export_port(reg, base + ".fwd", cables_[k]->end_a(), link_roll);
    export_port(reg, base + ".rev", cables_[k]->end_b(), link_roll);
  }
  reg.counter("fabric.tlps").set(link_roll[0]);
  reg.counter("fabric.wire_bytes").set(link_roll[1]);
  reg.counter("fabric.payload_bytes").set(link_roll[2]);
  reg.counter("fabric.replays").set(link_roll[3]);
  reg.counter("fabric.credit_stall_ps").set(link_roll[4]);
  reg.counter("fabric.link_dropped_tlps").set(link_roll[5]);
  reg.counter("fabric.failovers").set(failovers_);
  reg.counter("fabric.failbacks").set(failbacks_);

  std::uint64_t forwarded = 0, dropped = 0, unroutable = 0;
  std::uint64_t dma_chains = 0, dma_written = 0, dma_read = 0, dma_errors = 0;
  std::uint64_t error_irqs = 0, dma_aborts = 0, dma_timeouts = 0;
  std::uint64_t wd_timeouts = 0, drv_retries = 0;
  static constexpr const char* kPortNames[peach2::kPortCount] = {"n", "e", "w",
                                                                 "s"};
  for (std::uint32_t i = 0; i < size(); ++i) {
    const std::string n = "node" + std::to_string(i);
    const Peach2Chip& chip = *chips_[i];
    reg.counter(n + ".peach2.router.forwarded").set(chip.forwarded_tlps());
    reg.counter(n + ".peach2.router.dropped").set(chip.dropped_tlps());
    reg.counter(n + ".peach2.router.unroutable").set(chip.unroutable_tlps());
    reg.counter(n + ".peach2.router.acks_sent").set(chip.acks_sent());
    reg.counter(n + ".peach2.router.mailbox").set(chip.mailbox_count());
    reg.counter(n + ".peach2.error_irqs").set(chip.error_interrupts());
    error_irqs += chip.error_interrupts();
    forwarded += chip.forwarded_tlps();
    dropped += chip.dropped_tlps();
    unroutable += chip.unroutable_tlps();
    for (std::size_t p = 0; p < peach2::kPortCount; ++p) {
      reg.counter(n + ".peach2.port." + kPortNames[p] + ".forwards")
          .set(chip.port_forwards(static_cast<PortId>(p)));
    }

    auto& mutable_chip = *chips_[i];  // dmac() is non-const
    for (int ch = 0; ch < calib::kDmaChannels; ++ch) {
      const auto& d = mutable_chip.dmac(ch);
      const std::string c = n + ".peach2.dmac.ch" + std::to_string(ch);
      reg.counter(c + ".chains").set(d.chains_completed());
      reg.counter(c + ".descriptors").set(d.descriptors_completed());
      reg.counter(c + ".bytes_written").set(d.bytes_written());
      reg.counter(c + ".bytes_read").set(d.bytes_read());
      reg.counter(c + ".errors").set(d.errors());
      reg.counter(c + ".doorbells").set(d.doorbells());
      reg.counter(c + ".table_fetches").set(d.table_fetches());
      reg.counter(c + ".interrupts").set(d.interrupts());
      reg.counter(c + ".aborts").set(d.aborts());
      reg.counter(c + ".completion_timeouts").set(d.completion_timeouts());
      dma_chains += d.chains_completed();
      dma_written += d.bytes_written();
      dma_read += d.bytes_read();
      dma_errors += d.errors();
      dma_aborts += d.aborts();
      dma_timeouts += d.completion_timeouts();
    }

    const auto& drv = *drivers_[i];
    reg.counter(n + ".driver.chains").set(drv.chains_run());
    reg.counter(n + ".driver.pio_stores").set(drv.pio_stores());
    reg.counter(n + ".driver.pio_bytes").set(drv.pio_bytes());
    reg.counter(n + ".driver.watchdog_timeouts").set(drv.watchdog_timeouts());
    reg.counter(n + ".driver.retries").set(drv.chain_retries());
    reg.counter(n + ".driver.error_irqs").set(drv.error_irqs());
    wd_timeouts += drv.watchdog_timeouts();
    drv_retries += drv.chain_retries();
    if (!drv.chain_latency_ps().empty()) {
      reg.histogram(n + ".driver.chain_latency_ps")
          .record_series(drv.chain_latency_ps());
    }

    auto& node_ref = *nodes_[i];
    reg.counter(n + ".cpu.poll_iterations")
        .set(node_ref.cpu().poll_iterations());
    reg.counter(n + ".host.bytes_written")
        .set(node_ref.socket(0).host_bytes_written());
    reg.counter(n + ".host.bytes_read")
        .set(node_ref.socket(0).host_bytes_read());
    reg.counter(n + ".host.unroutable")
        .set(node_ref.socket(0).unroutable_tlps() +
             node_ref.socket(1).unroutable_tlps());
    for (int g = 0; g < node_ref.gpu_count(); ++g) {
      const auto& gpu = node_ref.gpu(g);
      const std::string gp = n + ".gpu" + std::to_string(g);
      reg.counter(gp + ".writes").set(gpu.writes_received());
      reg.counter(gp + ".reads").set(gpu.reads_received());
      reg.counter(gp + ".errors").set(gpu.access_errors());
    }
  }
  reg.counter("fabric.forwarded").set(forwarded);
  reg.counter("fabric.dropped").set(dropped);
  reg.counter("fabric.unroutable").set(unroutable);
  reg.counter("fabric.dma.chains").set(dma_chains);
  reg.counter("fabric.dma.bytes_written").set(dma_written);
  reg.counter("fabric.dma.bytes_read").set(dma_read);
  reg.counter("fabric.dma.errors").set(dma_errors);
  reg.counter("fabric.dma.aborts").set(dma_aborts);
  reg.counter("fabric.dma.completion_timeouts").set(dma_timeouts);
  reg.counter("fabric.error_irqs").set(error_irqs);
  reg.counter("fabric.driver.watchdog_timeouts").set(wd_timeouts);
  reg.counter("fabric.driver.retries").set(drv_retries);
}

std::uint32_t SubCluster::ring_hops(std::uint32_t from,
                                    std::uint32_t to) const {
  const std::uint32_t n = size();
  const std::uint32_t cw = (to + n - from) % n;
  const std::uint32_t ccw = (from + n - to) % n;
  return std::min(cw, ccw);
}

}  // namespace tca::fabric
