#include "fabric/sub_cluster.h"

namespace tca::fabric {

using peach2::Peach2Chip;
using peach2::Peach2Config;
using peach2::PortId;
using peach2::RouteEntry;
using peach2::TcaLayout;

namespace {

pcie::LinkConfig cable_config(std::uint32_t from, std::uint32_t to,
                              double bit_error_rate) {
  // PCIe external cable between boards: Gen2 x8 with repeater/propagation
  // latency (Section III-G). Shallow egress queue — see the PEACH2 slot
  // link: backpressure must reach the DMA engine promptly.
  return {.gen = 2,
          .lanes = 8,
          .propagation_ps = calib::kCableLatencyPs,
          .tx_queue_bytes = 600,
          .name = "cable/" + std::to_string(from) + "-" +
                  std::to_string(to),
          .bit_error_rate = bit_error_rate,
          .error_seed = 0x5EED0000ull + from * 97 + to};
}

}  // namespace

SubCluster::SubCluster(sim::Scheduler& sched, const SubClusterConfig& config)
    : cfg_(config) {
  auto layout_result = TcaLayout::create(config.window_base,
                                         config.window_bytes,
                                         config.node_count);
  TCA_ASSERT(layout_result.is_ok());
  layout_ = layout_result.value();
  TCA_ASSERT(config.node_count >= 2);
  TCA_ASSERT(config.topology != Topology::kDualRing ||
             config.node_count >= 4);

  for (std::uint32_t i = 0; i < config.node_count; ++i) {
    auto& n = nodes_.emplace_back(std::make_unique<node::ComputeNode>(
        sched, static_cast<int>(i), config.node_config));

    Peach2Config pcfg{
        .device_id = static_cast<pcie::DeviceId>(i * 16 + 8),
        .node_id = i,
        .layout = layout_,
        .reg_base = node::layout::kPeach2RegBase,
        .local_gpu0_base = node::layout::gpu_bar_base(0),
        .local_gpu1_base = node::layout::gpu_bar_base(1),
        .local_host_base = node::layout::kHostBase,
    };
    auto& chip = chips_.emplace_back(std::make_unique<Peach2Chip>(sched, pcfg));
    chip->attach_port(PortId::kNorth,
                      n->attach_peach2_slot(pcfg.device_id,
                                            node::layout::kPeach2RegBase,
                                            /*claim_tca_window=*/true));
    drivers_.emplace_back(
        std::make_unique<driver::Peach2Driver>(*n, *chip));
  }

  if (config.topology == Topology::kRing) {
    wire_ring(sched, 0, config.node_count);
    program_ring_routes(0, config.node_count);
  } else {
    const std::uint32_t half = config.node_count / 2;
    wire_ring(sched, 0, half);
    wire_ring(sched, half, half);
    // South cross-links pair node i with node i + half.
    for (std::uint32_t i = 0; i < half; ++i) {
      auto& cable = cables_.emplace_back(std::make_unique<pcie::PcieLink>(
          sched, cable_config(i, i + half, cfg_.cable_bit_error_rate)));
      chips_[i]->attach_port(PortId::kSouth, cable->end_a());
      chips_[i + half]->attach_port(PortId::kSouth, cable->end_b());
    }
    program_dual_ring_routes();
  }
}

void SubCluster::wire_ring(sim::Scheduler& sched, std::uint32_t first,
                           std::uint32_t count) {
  if (count < 2) return;
  // A 2-node ring degenerates to two cables between the same pair of
  // boards (E0-W1 and E1-W0), which is exactly how two PEACH2 boards are
  // cabled back to back.
  for (std::uint32_t k = 0; k < count; ++k) {
    const std::uint32_t i = first + k;
    const std::uint32_t j = first + (k + 1) % count;
    auto& cable = cables_.emplace_back(
        std::make_unique<pcie::PcieLink>(sched, cable_config(i, j, cfg_.cable_bit_error_rate)));
    chips_[i]->attach_port(PortId::kEast, cable->end_a());
    chips_[j]->attach_port(PortId::kWest, cable->end_b());
  }
}

void SubCluster::program_ring_routes(std::uint32_t first,
                                     std::uint32_t count) {
  const std::uint64_t slice = layout_.slice_size();
  for (std::uint32_t a = 0; a < count; ++a) {
    for (std::uint32_t b = 0; b < count; ++b) {
      if (a == b) continue;
      const std::uint32_t cw = (b + count - a) % count;   // hops going East
      const std::uint32_t ccw = (a + count - b) % count;  // hops going West
      const PortId port = cw <= ccw ? PortId::kEast : PortId::kWest;
      const Status st = chips_[first + a]->routing().add(RouteEntry{
          .mask = ~(slice - 1),
          .lower = layout_.slice_base(first + b),
          .upper = layout_.slice_base(first + b),
          .port = port,
      });
      TCA_ASSERT(st.is_ok());
    }
  }
}

void SubCluster::program_dual_ring_routes() {
  const std::uint32_t half = cfg_.node_count / 2;
  const std::uint64_t slice = layout_.slice_size();
  program_ring_routes(0, half);
  program_ring_routes(half, half);
  // Destinations in the other ring: cross at the paired node first, then
  // ride that ring. Each node needs an S entry for every cross-ring slice;
  // the ring entries at the far side take over after the hop.
  for (std::uint32_t i = 0; i < cfg_.node_count; ++i) {
    const bool in_first = i < half;
    const std::uint32_t p = i % half;  // position within own ring
    const std::uint32_t other_base = in_first ? half : 0;
    for (std::uint32_t q = 0; q < half; ++q) {
      const std::uint32_t dest = other_base + q;
      // Cross South at the node that pairs with the destination: if we are
      // at the pairing position, hop rings; otherwise ride our ring toward
      // that position (shortest direction).
      PortId port;
      if (p == q) {
        port = PortId::kSouth;
      } else {
        const std::uint32_t cw = (q + half - p) % half;
        const std::uint32_t ccw = (p + half - q) % half;
        port = cw <= ccw ? PortId::kEast : PortId::kWest;
      }
      const Status st = chips_[i]->routing().add(RouteEntry{
          .mask = ~(slice - 1),
          .lower = layout_.slice_base(dest),
          .upper = layout_.slice_base(dest),
          .port = port,
      });
      TCA_ASSERT(st.is_ok());
    }
  }
}

void SubCluster::print_stats(std::FILE* out) const {
  std::fprintf(out, "sub-cluster statistics (%u nodes)\n", size());
  for (std::uint32_t i = 0; i < size(); ++i) {
    const Peach2Chip& chip = *chips_[i];
    std::fprintf(out,
                 "  chip %u: forwarded=%llu dropped=%llu acks_sent=%llu "
                 "mailbox=%llu\n",
                 i, static_cast<unsigned long long>(chip.forwarded_tlps()),
                 static_cast<unsigned long long>(chip.dropped_tlps()),
                 static_cast<unsigned long long>(chip.acks_sent()),
                 static_cast<unsigned long long>(chip.mailbox_count()));
    auto& mutable_chip = *chips_[i];  // dmac() is non-const
    for (int ch = 0; ch < calib::kDmaChannels; ++ch) {
      const auto& d = mutable_chip.dmac(ch);
      if (d.chains_completed() == 0 && d.errors() == 0) continue;
      std::fprintf(
          out,
          "    dma ch%d: chains=%llu descs=%llu wr=%llu rd=%llu err=%llu\n",
          ch, static_cast<unsigned long long>(d.chains_completed()),
          static_cast<unsigned long long>(d.descriptors_completed()),
          static_cast<unsigned long long>(d.bytes_written()),
          static_cast<unsigned long long>(d.bytes_read()),
          static_cast<unsigned long long>(d.errors()));
    }
    auto& node_ref = *nodes_[i];
    std::fprintf(
        out, "    host: written=%llu read=%llu unroutable=%llu+%llu\n",
        static_cast<unsigned long long>(
            node_ref.socket(0).host_bytes_written()),
        static_cast<unsigned long long>(node_ref.socket(0).host_bytes_read()),
        static_cast<unsigned long long>(node_ref.socket(0).unroutable_tlps()),
        static_cast<unsigned long long>(
            node_ref.socket(1).unroutable_tlps()));
    for (int g = 0; g < node_ref.gpu_count(); ++g) {
      const auto& gpu = node_ref.gpu(g);
      if (gpu.writes_received() == 0 && gpu.reads_received() == 0) continue;
      std::fprintf(out, "    gpu%d: writes=%llu reads=%llu errors=%llu\n", g,
                   static_cast<unsigned long long>(gpu.writes_received()),
                   static_cast<unsigned long long>(gpu.reads_received()),
                   static_cast<unsigned long long>(gpu.access_errors()));
    }
  }
}

std::uint32_t SubCluster::ring_hops(std::uint32_t from,
                                    std::uint32_t to) const {
  const std::uint32_t n = size();
  const std::uint32_t cw = (to + n - from) % n;
  const std::uint32_t ccw = (from + n - to) % n;
  return std::min(cw, ccw);
}

}  // namespace tca::fabric
