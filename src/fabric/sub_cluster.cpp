#include "fabric/sub_cluster.h"

#include "common/log.h"
#include "common/trace.h"
#include "peach2/dmac.h"
#include "peach2/nios.h"

namespace tca::fabric {

using peach2::Peach2Chip;
using peach2::Peach2Config;
using peach2::PortId;
using peach2::RouteEntry;
using peach2::TcaLayout;
using peach2::torus_minus_port;
using peach2::torus_plus_port;

namespace {

/// Shard affinity for the sharded scheduler backend: one shard per node,
/// folded onto the configured shard count. Every cross-node event then
/// crosses a cable (latency >= calib::kConservativeLookaheadPs), which is
/// the invariant the conservative lookahead window relies on. No-op (all
/// zero) on non-sharded backends.
std::uint32_t node_shard(sim::Scheduler& sched, std::uint32_t node) {
  const sim::ShardedEngine* engine = sched.sharded();
  return engine != nullptr ? node % engine->shard_count() : 0;
}

pcie::LinkConfig cable_config(std::uint32_t from, std::uint32_t to,
                              double bit_error_rate) {
  // PCIe external cable between boards: Gen2 x8 with repeater/propagation
  // latency (Section III-G). Shallow egress queue — see the PEACH2 slot
  // link: backpressure must reach the DMA engine promptly.
  return {.gen = 2,
          .lanes = 8,
          .propagation_ps = calib::kCableLatencyPs,
          .tx_queue_bytes = 600,
          .name = "cable/" + std::to_string(from) + "-" +
                  std::to_string(to),
          .bit_error_rate = bit_error_rate,
          .error_seed = 0x5EED0000ull + from * 97 + to};
}

}  // namespace

TopologySpec resolved_topology(const SubClusterConfig& config) {
  if (!config.spec.empty()) return config.spec;
  // One release of compatibility for the pre-TopologySpec enum surface.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  return TopologySpec::from_legacy(config.topology, config.node_count);
#pragma GCC diagnostic pop
}

SubCluster::SubCluster(sim::Scheduler& sched, const SubClusterConfig& config)
    : cfg_(config), topo_(resolved_topology(config)) {
  const Status topo_ok = topo_.validate();
  TCA_ASSERT(topo_ok.is_ok());
  const std::uint32_t n = topo_.node_count();
  auto layout_result = TcaLayout::create(config.window_base,
                                         config.window_bytes, n);
  TCA_ASSERT(layout_result.is_ok());
  layout_ = layout_result.value();

  for (std::uint32_t i = 0; i < n; ++i) {
    auto& cn = nodes_.emplace_back(std::make_unique<node::ComputeNode>(
        sched, static_cast<int>(i), config.node_config));

    Peach2Config pcfg{
        .device_id = static_cast<pcie::DeviceId>(i * 16 + 8),
        .node_id = i,
        .layout = layout_,
        .reg_base = node::layout::kPeach2RegBase,
        .local_gpu0_base = node::layout::gpu_bar_base(0),
        .local_gpu1_base = node::layout::gpu_bar_base(1),
        .local_host_base = node::layout::kHostBase,
    };
    auto& chip = chips_.emplace_back(std::make_unique<Peach2Chip>(sched, pcfg));
    pcie::LinkPort& slot = cn->attach_peach2_slot(
        pcfg.device_id, node::layout::kPeach2RegBase,
        /*claim_tca_window=*/true);
    slot.set_shard(node_shard(sched, i));  // node-internal: same shard
    chip->attach_port(PortId::kNorth, slot);
    drivers_.emplace_back(
        std::make_unique<driver::Peach2Driver>(*cn, *chip));
  }

  plus_cable_.assign(n, {kNoCable, kNoCable, kNoCable});
  minus_cable_.assign(n, {kNoCable, kNoCable, kNoCable});

  if (topo_.kind() == TopologySpec::Kind::kDualRing) {
    const std::uint32_t half = n / 2;
    wire_ring(sched, 0, half);
    wire_ring(sched, half, half);
    // South cross-links pair node i with node i + half.
    for (std::uint32_t i = 0; i < half; ++i) {
      add_cable(sched, i, i + half, 1, PortId::kSouth, PortId::kSouth);
    }
    program_dual_ring_routes();
    cable_usable_.assign(cables_.size(), true);
  } else {
    wire_torus(sched);
    program_torus_routes();
    cable_usable_.assign(cables_.size(), true);
    if (config.enable_failover) arm_failover(sched);
  }

  if (!config.fault_plan.empty()) {
    // Runtime::create surfaces this as a Status before construction; the
    // assert here is the backstop for direct SubCluster users. An
    // out-of-range event would otherwise never fire and the campaign would
    // silently test a quieter fabric than it claims.
    const Status plan_ok = cfg_.fault_plan.validate(topo_);
    if (!plan_ok.is_ok()) {
      Log::write(LogLevel::kError, "fabric", plan_ok.to_string());
    }
    TCA_ASSERT(plan_ok.is_ok());
    schedule_faults(sched);
  }
}

void SubCluster::add_cable(sim::Scheduler& sched, std::uint32_t from,
                           std::uint32_t to, std::uint32_t dim,
                           PortId from_port, PortId to_port) {
  auto& cable = cables_.emplace_back(std::make_unique<pcie::PcieLink>(
      sched, cable_config(from, to, cfg_.cable_bit_error_rate)));
  const CableId id = cables_.size() - 1;
  cable_ends_.emplace_back(from, to);
  cable_dim_.push_back(dim);
  cable->end_a().set_shard(node_shard(sched, from));
  cable->end_b().set_shard(node_shard(sched, to));
  chips_[from]->attach_port(from_port, cable->end_a());
  chips_[to]->attach_port(to_port, cable->end_b());
  if (from_port == torus_plus_port(dim)) plus_cable_[from][dim] = id;
  if (to_port == torus_minus_port(dim)) minus_cable_[to][dim] = id;
}

void SubCluster::wire_ring(sim::Scheduler& sched, std::uint32_t first,
                           std::uint32_t count) {
  if (count < 2) return;
  // A 2-node ring degenerates to two cables between the same pair of
  // boards (E0-W1 and E1-W0), which is exactly how two PEACH2 boards are
  // cabled back to back.
  for (std::uint32_t k = 0; k < count; ++k) {
    const std::uint32_t i = first + k;
    const std::uint32_t j = first + (k + 1) % count;
    add_cable(sched, i, j, 0, PortId::kEast, PortId::kWest);
  }
}

void SubCluster::wire_torus(sim::Scheduler& sched) {
  // One cable ring per dimension, dimension 0 first; rings within a
  // dimension in ascending base-node order. For a 1D torus (and the ring
  // topology) this is cable (k, k+1 % n) for k ascending — byte-identical
  // to the paper's E/W ring wiring, names and error seeds included.
  const std::uint32_t n = topo_.node_count();
  for (std::uint32_t d = 0; d < topo_.dims(); ++d) {
    const std::uint32_t extent = topo_.extent(d);
    for (std::uint32_t base = 0; base < n; ++base) {
      if (topo_.coords(base)[d] != 0) continue;
      for (std::uint32_t k = 0; k < extent; ++k) {
        auto ci = topo_.coords(base);
        auto cj = ci;
        ci[d] = k;
        cj[d] = (k + 1) % extent;
        add_cable(sched, topo_.node_at(ci), topo_.node_at(cj), d,
                  torus_plus_port(d), torus_minus_port(d));
      }
    }
  }
}

void SubCluster::program_torus_routes() {
  // Dimension-order routing from the highest dimension down, compressed to
  // address-range entries (Fig. 5): destinations in a wrong plane of the
  // top dimension occupy one contiguous id range (one entry), wrong rows of
  // the right plane another, and only same-row targets need single-slice
  // entries — sum(extent_d - 1) entries per node. First-match order places
  // the high-dimension ranges first, which is exactly dimension order.
  const std::uint64_t slice = layout_.slice_size();
  const std::uint32_t n = topo_.node_count();
  for (std::uint32_t a = 0; a < n; ++a) {
    const auto ca = topo_.coords(a);
    std::size_t entry_index = 0;
    for (std::uint32_t d = topo_.dims(); d-- > 0;) {
      const std::uint32_t extent = topo_.extent(d);
      for (std::uint32_t t = 0; t < extent; ++t) {
        if (t == ca[d]) continue;
        // Range: higher dims fixed to our own coordinates, dim d at t,
        // lower dims spanning their full extent. Ids are linearized x
        // fastest, so the covered destinations are contiguous.
        auto lo = ca;
        auto hi = ca;
        lo[d] = hi[d] = t;
        for (std::uint32_t l = 0; l < d; ++l) {
          lo[l] = 0;
          hi[l] = topo_.extent(l) - 1;
        }
        const std::uint32_t plus = (t + extent - ca[d]) % extent;
        const std::uint32_t minus = (ca[d] + extent - t) % extent;
        const PortId port =
            plus <= minus ? torus_plus_port(d) : torus_minus_port(d);
        const Status st = chips_[a]->routing().add(RouteEntry{
            .mask = ~(slice - 1),
            .lower = layout_.slice_base(topo_.node_at(lo)),
            .upper = layout_.slice_base(topo_.node_at(hi)),
            .port = port,
        });
        TCA_ASSERT(st.is_ok());
        route_records_.push_back(RouteRecord{a, d, t, entry_index++});
      }
    }
  }
}

void SubCluster::program_ring_routes(std::uint32_t first,
                                     std::uint32_t count) {
  const std::uint64_t slice = layout_.slice_size();
  for (std::uint32_t a = 0; a < count; ++a) {
    for (std::uint32_t b = 0; b < count; ++b) {
      if (a == b) continue;
      const std::uint32_t cw = (b + count - a) % count;   // hops going East
      const std::uint32_t ccw = (a + count - b) % count;  // hops going West
      const PortId port = cw <= ccw ? PortId::kEast : PortId::kWest;
      const Status st = chips_[first + a]->routing().add(RouteEntry{
          .mask = ~(slice - 1),
          .lower = layout_.slice_base(first + b),
          .upper = layout_.slice_base(first + b),
          .port = port,
      });
      TCA_ASSERT(st.is_ok());
    }
  }
}

void SubCluster::program_dual_ring_routes() {
  const std::uint32_t half = topo_.node_count() / 2;
  const std::uint64_t slice = layout_.slice_size();
  program_ring_routes(0, half);
  program_ring_routes(half, half);
  // Destinations in the other ring: cross at the paired node first, then
  // ride that ring. Each node needs an S entry for every cross-ring slice;
  // the ring entries at the far side take over after the hop.
  for (std::uint32_t i = 0; i < topo_.node_count(); ++i) {
    const bool in_first = i < half;
    const std::uint32_t p = i % half;  // position within own ring
    const std::uint32_t other_base = in_first ? half : 0;
    for (std::uint32_t q = 0; q < half; ++q) {
      const std::uint32_t dest = other_base + q;
      // Cross South at the node that pairs with the destination: if we are
      // at the pairing position, hop rings; otherwise ride our ring toward
      // that position (shortest direction).
      PortId port;
      if (p == q) {
        port = PortId::kSouth;
      } else {
        const std::uint32_t cw = (q + half - p) % half;
        const std::uint32_t ccw = (p + half - q) % half;
        port = cw <= ccw ? PortId::kEast : PortId::kWest;
      }
      const Status st = chips_[i]->routing().add(RouteEntry{
          .mask = ~(slice - 1),
          .lower = layout_.slice_base(dest),
          .upper = layout_.slice_base(dest),
          .port = port,
      });
      TCA_ASSERT(st.is_ok());
    }
  }
}

void SubCluster::arm_failover(sim::Scheduler& sched) {
  // Every fabric port maps to exactly one cable per the plus/minus tables
  // built during wiring; both endpoints report each transition and the
  // first serviced one reroutes. Reroutes stay within the dead cable's
  // dimension ring — the address ranges the entries cover are fixed at
  // construction, only their ports ever flip.
  const std::uint32_t n = topo_.node_count();
  for (std::uint32_t i = 0; i < n; ++i) {
    chips_[i]->nios().set_link_listener(
        [this, i, &sched](PortId port, bool up) {
          CableId cable = kNoCable;
          for (std::uint32_t d = 0; d < topo_.dims(); ++d) {
            if (port == torus_plus_port(d)) cable = plus_cable_[i][d];
            if (port == torus_minus_port(d)) cable = minus_cable_[i][d];
          }
          if (cable == kNoCable) return;  // N (host slot) or unwired port
          // A transition superseded before the NIOS could service it — a
          // flap shorter than the service delay — is a no-op: the link is
          // already back in its previous state, the link layer's replay
          // absorbs the blip, and rerouting now would abandon held traffic
          // the retrained cable is about to deliver. The counterpart event
          // that restored the state is (or will be) skipped the same way.
          if (cables_[cable]->is_up() != up) return;
          if (cable_usable_[cable] == up) return;  // peer already serviced
          // Servicing a link interrupt reads *current* fabric-wide link
          // state rather than replaying the event log one edge at a time.
          // This keeps multi-cable transitions atomic: a reroute never
          // commits to a detour whose own down event is still queued
          // behind the NIOS service delay, and a mass retrain never
          // staggers through asymmetric intermediate states that would
          // rewrite routes (and quiesce chains) only to rewrite them back
          // a service-tick later.
          std::vector<CableId> newly_dead;
          for (CableId c = 0; c < cables_.size(); ++c) {
            const bool phys = cables_[c]->is_up();
            if (cable_usable_[c] != phys) {
              cable_usable_[c] = phys;
              if (!phys) newly_dead.push_back(c);
            }
          }
          const std::uint32_t changed = reprogram_routes();
          if (changed == 0) return;
          up ? ++failbacks_ : ++failovers_;
          // Traffic already committed to a dead cable must not outlive
          // the reroute: held TLPs replaying after retrain would land as
          // stale duplicates of data the driver retry redelivers the other
          // way. When changed == 0 (no detour exists) nothing is touched —
          // holding in the replay buffers stays the pre-failover behavior.
          for (CableId c : newly_dead) abandon_dead_path(c);
          // A reroute breaks the FIFO-path guarantee the PEARL delivery
          // notification rests on: the ack tags only the *last* TLP of a
          // descriptor, so with part of the descriptor committed to the old
          // path and the rest taking the new one, the ack can arrive while
          // earlier bytes are still stranded — the chain would report ok
          // with a hole in the delivered data. Quiesce every in-flight
          // chain instead; the driver retry layer redelivers them whole
          // over the settled routes.
          quiesce_in_flight_chains();
          Log::write(LogLevel::kInfo, "fabric",
                     std::string(up ? "failback" : "failover") + ": cable " +
                         std::to_string(cable) + (up ? " up, " : " down, ") +
                         std::to_string(changed) + " routes rewritten");
          if (Trace::instance().enabled()) {
            Trace::instance().instant(
                "fabric",
                std::string(up ? "failback" : "failover") + " cable " +
                    std::to_string(cable),
                sched.now());
          }
        });
  }
}

void SubCluster::abandon_dead_path(CableId cable) {
  // The zombie-replay hazard: TLPs parked for the dead cable (its replay
  // buffers and the endpoint chips' egress FIFOs) would retransmit after
  // retrain, long after the watchdog-driven retry delivered the same
  // transfer via the detour — overwriting staging buffers the protocol has
  // since recycled, while every op still reports success. Once the reroute
  // is in force the held traffic is declared undeliverable instead; the
  // missing remote acks make the retry layer redeliver it.
  auto& link = *cables_[cable];
  std::size_t n = link.end_a().abandon_queued();
  n += link.end_b().abandon_queued();
  const auto [from, to] = cable_ends_[cable];
  const std::uint32_t dim = cable_dim_[cable];
  TCA_ASSERT(plus_cable_[from][dim] == cable &&
             minus_cable_[to][dim] == cable);
  chips_[from]->abandon_egress(torus_plus_port(dim));
  chips_[to]->abandon_egress(torus_minus_port(dim));
  if (n > 0) {
    Log::write(LogLevel::kInfo, "fabric",
               "failover: abandoned " + std::to_string(n) +
                   " held TLPs on cable " + std::to_string(cable));
  }
}

void SubCluster::quiesce_in_flight_chains() {
  std::uint32_t aborted = 0;
  for (const auto& chip : chips_) {
    for (int ch = 0; ch < calib::kDmaChannels; ++ch) {
      peach2::DmaController& engine = chip->dmac(ch);
      if (engine.busy()) {
        engine.abort(ErrorCode::kLinkDown);
        ++aborted;
      }
    }
  }
  chain_quiesces_ += aborted;
  if (aborted > 0) {
    Log::write(LogLevel::kInfo, "fabric",
               "route change: quiesced " + std::to_string(aborted) +
                   " in-flight DMA chains");
  }
}

std::uint64_t SubCluster::abandoned_tlps() const {
  std::uint64_t total = 0;
  for (const auto& cable : cables_) {
    total += cable->end_a().abandoned_tlps();
    total += cable->end_b().abandoned_tlps();
  }
  for (const auto& chip : chips_) total += chip->abandoned_tlps();
  return total;
}

CableId SubCluster::ring_cable_at(std::uint32_t node, std::uint32_t dim,
                                  std::uint32_t coord) const {
  auto c = topo_.coords(node);
  c[dim] = coord;
  return plus_cable_[topo_.node_at(c)][dim];
}

std::pair<bool, bool> SubCluster::arcs_clean(std::uint32_t node,
                                             std::uint32_t dim,
                                             std::uint32_t target) const {
  const std::uint32_t extent = topo_.extent(dim);
  const std::uint32_t own = topo_.coords(node)[dim];
  const std::uint32_t plus = (target + extent - own) % extent;
  const std::uint32_t minus = (own + extent - target) % extent;
  bool plus_clean = true, minus_clean = true;
  for (std::uint32_t h = 0; h < plus; ++h) {
    plus_clean = plus_clean &&
                 cable_usable_[ring_cable_at(node, dim, (own + h) % extent)];
  }
  for (std::uint32_t h = 0; h < minus; ++h) {
    minus_clean = minus_clean &&
                  cable_usable_[ring_cable_at(node, dim,
                                              (own + extent - 1 - h) %
                                                  extent)];
  }
  return {plus_clean, minus_clean};
}

peach2::PortId SubCluster::expected_port(const RouteRecord& r) const {
  const std::uint32_t extent = topo_.extent(r.dim);
  const std::uint32_t own = topo_.coords(r.node)[r.dim];
  const std::uint32_t plus = (r.target + extent - own) % extent;
  const std::uint32_t minus = (own + extent - r.target) % extent;
  const auto [plus_clean, minus_clean] = arcs_clean(r.node, r.dim, r.target);
  // Shortest path when both directions are clean — and also when both
  // are dirty: with no usable detour, traffic is held in the replay
  // buffer of the shortest direction, the pre-failover behavior.
  if (plus_clean == minus_clean) {
    return plus <= minus ? torus_plus_port(r.dim) : torus_minus_port(r.dim);
  }
  return plus_clean ? torus_plus_port(r.dim) : torus_minus_port(r.dim);
}

std::uint32_t SubCluster::reprogram_routes() {
  std::uint32_t changed = 0;
  for (const RouteRecord& r : route_records_) {
    const PortId port = expected_port(r);
    RouteEntry& entry = chips_[r.node]->routing().entry_mut(r.entry_index);
    if (entry.port != port) {
      entry.port = port;
      ++changed;
    }
  }
  return changed;
}

std::uint32_t SubCluster::route_mismatches() const {
  std::uint32_t mismatches = 0;
  for (const RouteRecord& r : route_records_) {
    const RouteEntry& entry = chips_[r.node]->routing().entry(r.entry_index);
    if (entry.port != expected_port(r)) ++mismatches;
  }
  return mismatches;
}

bool SubCluster::reachable(std::uint32_t from, std::uint32_t to) const {
  if (from >= size() || to >= size()) return false;
  if (from == to) return true;
  if (topo_.kind() == TopologySpec::Kind::kDualRing) return true;
  // Walk the dimension-order path: the packet corrects the highest
  // differing dimension first, and the direction choice is made by the
  // ring-entry node (intermediate nodes along a clean arc see a clean
  // sub-arc and keep steering the same way).
  auto cur = topo_.coords(from);
  const auto dst = topo_.coords(to);
  for (std::uint32_t d = topo_.dims(); d-- > 0;) {
    if (cur[d] == dst[d]) continue;
    const auto [plus_clean, minus_clean] =
        arcs_clean(topo_.node_at(cur), d, dst[d]);
    if (!plus_clean && !minus_clean) return false;
    cur[d] = dst[d];
  }
  return true;
}

void SubCluster::schedule_faults(sim::Scheduler& sched) {
  cable_down_depth_.assign(cables_.size(), 0);
  cable_ber_depth_.assign(cables_.size(), 0);
  dmac_stuck_depth_.assign(size() * calib::kDmaChannels, 0);

  for (const FaultEvent& e : cfg_.fault_plan.events) {
    switch (e.kind) {
      case FaultEvent::Kind::kLinkDown: {
        TCA_ASSERT(e.cable < cables_.size());
        const std::size_t c = e.cable;
        sched.schedule_after(e.at, [this, c] {
          if (++cable_down_depth_[c] == 1) cables_[c]->set_up(false);
        });
        if (e.duration > 0) {
          // The depth may already be 0 if an explicit kLinkUp cancelled
          // this window before it closed; decrementing past 0 would make a
          // later kLinkDown's ++depth==1 edge test miss and leave the cable
          // silently up.
          sched.schedule_after(e.at + e.duration, [this, c] {
            if (cable_down_depth_[c] > 0 && --cable_down_depth_[c] == 0) {
              cables_[c]->set_up(true);
            }
          });
        }
        break;
      }
      case FaultEvent::Kind::kLinkUp: {
        TCA_ASSERT(e.cable < cables_.size());
        const std::size_t c = e.cable;
        sched.schedule_after(e.at, [this, c] {
          cable_down_depth_[c] = 0;  // cancels every open down window
          cables_[c]->set_up(true);
        });
        break;
      }
      case FaultEvent::Kind::kBerBurst: {
        TCA_ASSERT(e.cable < cables_.size());
        const std::size_t c = e.cable;
        const double rate = e.ber;
        sched.schedule_after(e.at, [this, c, rate] {
          ++cable_ber_depth_[c];
          cables_[c]->set_bit_error_rate(rate);
        });
        sched.schedule_after(e.at + e.duration, [this, c] {
          if (--cable_ber_depth_[c] == 0) {
            cables_[c]->set_bit_error_rate(cfg_.cable_bit_error_rate);
          }
        });
        break;
      }
      case FaultEvent::Kind::kStuckDoorbell: {
        TCA_ASSERT(e.node < size());
        TCA_ASSERT(e.channel >= 0 && e.channel < calib::kDmaChannels);
        const std::size_t idx =
            e.node * calib::kDmaChannels + static_cast<std::size_t>(e.channel);
        const std::uint32_t node = e.node;
        const int ch = e.channel;
        sched.schedule_after(e.at, [this, idx, node, ch] {
          if (++dmac_stuck_depth_[idx] == 1) {
            chips_[node]->dmac(ch).set_stuck(true);
          }
        });
        sched.schedule_after(e.at + e.duration, [this, idx, node, ch] {
          if (--dmac_stuck_depth_[idx] == 0) {
            chips_[node]->dmac(ch).set_stuck(false);
          }
        });
        break;
      }
    }
  }
}

namespace {

/// Exports one link direction's counters under `prefix` and accumulates the
/// fabric roll-up.
void export_port(obs::MetricRegistry& reg, const std::string& prefix,
                 const pcie::LinkPort& port, std::uint64_t* roll) {
  reg.counter(prefix + ".tlps").set(port.tlps_sent());
  reg.counter(prefix + ".wire_bytes").set(port.wire_bytes_sent());
  reg.counter(prefix + ".payload_bytes").set(port.payload_bytes_sent());
  reg.counter(prefix + ".replays").set(port.replays());
  reg.counter(prefix + ".dropped").set(port.dropped_tlps());
  reg.counter(prefix + ".credit_stall_ps")
      .set(static_cast<std::uint64_t>(port.credit_stall_ps()));
  roll[0] += port.tlps_sent();
  roll[1] += port.wire_bytes_sent();
  roll[2] += port.payload_bytes_sent();
  roll[3] += port.replays();
  roll[4] += static_cast<std::uint64_t>(port.credit_stall_ps());
  roll[5] += port.dropped_tlps();
}

}  // namespace

void SubCluster::export_metrics(obs::MetricRegistry& reg) const {
  reg.gauge("fabric.node_count").set(size());
  reg.gauge("fabric.cable_count").set(static_cast<double>(cables_.size()));

  // Inter-node cables. "fwd" is the end_a -> end_b direction, which by
  // wiring convention is `from` -> `to` of cable_nodes().
  std::uint64_t link_roll[6] = {};  // tlps, wire, payload, replays, stall,
                                    // dropped
  for (std::size_t k = 0; k < cables_.size(); ++k) {
    const auto [from, to] = cable_ends_[k];
    const std::string base = "pcie.cable." + std::to_string(from) + "-" +
                             std::to_string(to);
    export_port(reg, base + ".fwd", cables_[k]->end_a(), link_roll);
    export_port(reg, base + ".rev", cables_[k]->end_b(), link_roll);
  }
  reg.counter("fabric.tlps").set(link_roll[0]);
  reg.counter("fabric.wire_bytes").set(link_roll[1]);
  reg.counter("fabric.payload_bytes").set(link_roll[2]);
  reg.counter("fabric.replays").set(link_roll[3]);
  reg.counter("fabric.credit_stall_ps").set(link_roll[4]);
  reg.counter("fabric.link_dropped_tlps").set(link_roll[5]);
  reg.counter("fabric.failovers").set(failovers_);
  reg.counter("fabric.failbacks").set(failbacks_);
  reg.counter("fabric.abandoned_tlps").set(abandoned_tlps());
  reg.counter("fabric.chain_quiesces").set(chain_quiesces_);
  reg.counter("fabric.route_mismatches").set(route_mismatches());

  std::uint64_t forwarded = 0, dropped = 0, unroutable = 0;
  std::uint64_t dma_chains = 0, dma_written = 0, dma_read = 0, dma_errors = 0;
  std::uint64_t error_irqs = 0, dma_aborts = 0, dma_timeouts = 0;
  std::uint64_t wd_timeouts = 0, drv_retries = 0;
  static constexpr const char* kPortNames[peach2::kPortCount] = {
      "n", "e", "w", "s", "yn", "zp", "zn"};
  for (std::uint32_t i = 0; i < size(); ++i) {
    const std::string n = "node" + std::to_string(i);
    const Peach2Chip& chip = *chips_[i];
    reg.counter(n + ".peach2.router.forwarded").set(chip.forwarded_tlps());
    reg.counter(n + ".peach2.router.dropped").set(chip.dropped_tlps());
    reg.counter(n + ".peach2.router.unroutable").set(chip.unroutable_tlps());
    reg.counter(n + ".peach2.router.acks_sent").set(chip.acks_sent());
    reg.counter(n + ".peach2.router.mailbox").set(chip.mailbox_count());
    reg.counter(n + ".peach2.error_irqs").set(chip.error_interrupts());
    error_irqs += chip.error_interrupts();
    forwarded += chip.forwarded_tlps();
    dropped += chip.dropped_tlps();
    unroutable += chip.unroutable_tlps();
    for (std::size_t p = 0; p < peach2::kPortCount; ++p) {
      reg.counter(n + ".peach2.port." + kPortNames[p] + ".forwards")
          .set(chip.port_forwards(static_cast<PortId>(p)));
    }

    auto& mutable_chip = *chips_[i];  // dmac() is non-const
    for (int ch = 0; ch < calib::kDmaChannels; ++ch) {
      const auto& d = mutable_chip.dmac(ch);
      const std::string c = n + ".peach2.dmac.ch" + std::to_string(ch);
      reg.counter(c + ".chains").set(d.chains_completed());
      reg.counter(c + ".descriptors").set(d.descriptors_completed());
      reg.counter(c + ".bytes_written").set(d.bytes_written());
      reg.counter(c + ".bytes_read").set(d.bytes_read());
      reg.counter(c + ".errors").set(d.errors());
      reg.counter(c + ".doorbells").set(d.doorbells());
      reg.counter(c + ".table_fetches").set(d.table_fetches());
      reg.counter(c + ".interrupts").set(d.interrupts());
      reg.counter(c + ".aborts").set(d.aborts());
      reg.counter(c + ".completion_timeouts").set(d.completion_timeouts());
      dma_chains += d.chains_completed();
      dma_written += d.bytes_written();
      dma_read += d.bytes_read();
      dma_errors += d.errors();
      dma_aborts += d.aborts();
      dma_timeouts += d.completion_timeouts();
    }

    const auto& drv = *drivers_[i];
    reg.counter(n + ".driver.chains").set(drv.chains_run());
    reg.counter(n + ".driver.pio_stores").set(drv.pio_stores());
    reg.counter(n + ".driver.pio_bytes").set(drv.pio_bytes());
    reg.counter(n + ".driver.watchdog_timeouts").set(drv.watchdog_timeouts());
    reg.counter(n + ".driver.retries").set(drv.chain_retries());
    reg.counter(n + ".driver.error_irqs").set(drv.error_irqs());
    wd_timeouts += drv.watchdog_timeouts();
    drv_retries += drv.chain_retries();
    if (!drv.chain_latency_ps().empty()) {
      reg.histogram(n + ".driver.chain_latency_ps")
          .record_series(drv.chain_latency_ps());
    }

    auto& node_ref = *nodes_[i];
    reg.counter(n + ".cpu.poll_iterations")
        .set(node_ref.cpu().poll_iterations());
    reg.counter(n + ".host.bytes_written")
        .set(node_ref.socket(0).host_bytes_written());
    reg.counter(n + ".host.bytes_read")
        .set(node_ref.socket(0).host_bytes_read());
    reg.counter(n + ".host.unroutable")
        .set(node_ref.socket(0).unroutable_tlps() +
             node_ref.socket(1).unroutable_tlps());
    for (int g = 0; g < node_ref.gpu_count(); ++g) {
      const auto& gpu = node_ref.gpu(g);
      const std::string gp = n + ".gpu" + std::to_string(g);
      reg.counter(gp + ".writes").set(gpu.writes_received());
      reg.counter(gp + ".reads").set(gpu.reads_received());
      reg.counter(gp + ".errors").set(gpu.access_errors());
    }
  }
  reg.counter("fabric.forwarded").set(forwarded);
  reg.counter("fabric.dropped").set(dropped);
  reg.counter("fabric.unroutable").set(unroutable);
  reg.counter("fabric.dma.chains").set(dma_chains);
  reg.counter("fabric.dma.bytes_written").set(dma_written);
  reg.counter("fabric.dma.bytes_read").set(dma_read);
  reg.counter("fabric.dma.errors").set(dma_errors);
  reg.counter("fabric.dma.aborts").set(dma_aborts);
  reg.counter("fabric.dma.completion_timeouts").set(dma_timeouts);
  reg.counter("fabric.error_irqs").set(error_irqs);
  reg.counter("fabric.driver.watchdog_timeouts").set(wd_timeouts);
  reg.counter("fabric.driver.retries").set(drv_retries);
}

}  // namespace tca::fabric
