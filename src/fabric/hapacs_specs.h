// HA-PACS system specifications (Tables I and II of the paper), kept as
// structured data so the spec benches can both print the tables and verify
// their internal arithmetic (peak-FLOPS math, lane budgets) against the
// simulator's configuration.
#pragma once

#include <cstdint>

namespace tca::fabric::specs {

/// Table I: the HA-PACS base cluster.
struct BaseCluster {
  // Computation node.
  const char* cpu = "Intel Xeon-E5 2670 2.6 GHz x two sockets";
  double cpu_ghz = 2.6;
  int cores_per_socket = 8;
  int sockets = 2;
  int flops_per_cycle = 8;  // AVX: 4 DP mul + 4 DP add
  const char* cpu_cache = "20-Mbyte cache / socket";
  const char* host_memory = "DDR3 1600 MHz x 4 ch, 128 Gbytes";
  double cpu_peak_gflops = 332.8;

  const char* gpu = "NVIDIA Tesla M2090 1.3 GHz x 4";
  int gpus_per_node = 4;
  double gpu_peak_gflops_each = 665.0;
  double gpu_peak_gflops = 2660.0;
  const char* gpu_memory = "GDDR5 6 Gbytes / GPU";

  const char* interconnect_nic = "Mellanox Connect-X3 Dual-port QDR";

  // System.
  int node_count = 268;
  const char* storage = "Lustre File System 504 Tbytes";
  const char* interconnect = "InfiniBand QDR 288 ports switch x 2";
  double total_peak_tflops = 802.0;
  int racks = 26;
  int max_power_kw = 408;
  double gflops_per_watt = 1.04;

  // PCIe budget (Section II-A): 40 Gen3 lanes per CPU.
  int pcie_lanes_per_cpu = 40;
  int gpu_lanes = 16;   // x16 per GPU
  int nic_lanes = 8;    // x8 per IB port set
};

/// Table II: the preliminary-evaluation test environment.
struct TestEnvironment {
  const char* cpu = "Xeon-E5 2670 2.6 GHz x 2";
  const char* memory = "DDR3 1600 MHz x 4 ch, 128 Gbytes";
  const char* motherboard_a = "SuperMicro X9DRG-QF";
  const char* motherboard_b = "Intel S2600IP";
  const char* gpu = "NVIDIA K20 2496 cores, 705 MHz";
  const char* gpu_memory = "GDDR5 2600 MHz, 5 Gbytes";
  const char* board = "PEACH2 prototype, 16 layers (main) + 8 layers (sub)";
  const char* fpga = "Altera Stratix IV GX 530/290, 1932 pin";
  std::uint64_t peach2_logic_version = 20121112;
  const char* os = "Linux, CentOS 6.3";
  const char* kernel = "kernel-2.6.32-279.{9,14,19}.1.el6.x86_64";
  const char* gpu_driver = "NVIDIA-Linux-x86_64-304.{51,64}";
  const char* cuda = "CUDA 5.0";
  double peach2_clock_mhz = 250.0;
};

}  // namespace tca::fabric::specs
