// Fabric topology descriptions (Section II-B and beyond).
//
// The paper's sub-cluster is a ring of 2..16 PEACH2 boards (optionally two
// rings coupled over the South ports). The APEnet+ line shows where the
// architecture goes next: a 3D torus of FPGA NICs. `TopologySpec` is the
// value type the public config surfaces carry to describe either — the
// legacy `Topology` enum survives as factory shorthand.
//
// Torus node ids are linearized dimension-major, x fastest:
//   id = x + y*X + z*X*Y
// Routing is dimension-ordered from the highest dimension down (correct Z,
// then Y, then X), which is what lets the per-node route tables compress to
// sum(extent_d - 1) address-range entries: all destinations in a wrong
// Z-plane share one contiguous slice range, all destinations in a wrong row
// of the right plane share another, and only same-row targets need
// single-slice entries.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.h"

namespace tca::fabric {

enum class Topology {
  /// Single ring over E/W ports (the paper's primary configuration).
  kRing,
  /// Two rings of N/2 nodes, coupled pairwise by the S ports ("Port S is
  /// ... used to combine two rings by connecting to Port S on the peer
  /// node"). Requires node_count >= 4.
  kDualRing,
};

/// Index of an inter-node cable inside a SubCluster (creation order).
using CableId = std::size_t;

class TopologySpec {
 public:
  enum class Kind : std::uint8_t {
    kRing,      ///< the paper's E/W ring
    kDualRing,  ///< two rings coupled over the S ports
    kTorus,     ///< 1D/2D/3D torus, dimension-order routed
  };

  /// At most three torus dimensions (X, Y, Z) — one port pair each.
  static constexpr std::uint32_t kMaxDims = 3;

  /// Default-constructed spec is *empty* (no nodes): config structs use it
  /// as the "not set, fall back to the legacy enum fields" sentinel.
  constexpr TopologySpec() = default;

  static TopologySpec ring(std::uint32_t nodes);
  static TopologySpec dual_ring(std::uint32_t nodes);
  /// `extents` lists per-dimension sizes, x first; 1..3 dimensions. A 1D
  /// torus is wired and routed identically to ring(extents[0]).
  static TopologySpec torus(const std::vector<std::uint32_t>& extents);
  /// Legacy-enum shorthand (the deprecated config fields resolve through
  /// this).
  static TopologySpec from_legacy(Topology topology, std::uint32_t nodes);

  [[nodiscard]] constexpr Kind kind() const { return kind_; }
  [[nodiscard]] constexpr bool empty() const { return extents_[0] == 0; }
  [[nodiscard]] constexpr std::uint32_t dims() const { return dims_; }
  [[nodiscard]] constexpr std::uint32_t extent(std::uint32_t dim) const {
    return extents_[dim];
  }
  [[nodiscard]] constexpr std::uint32_t node_count() const {
    std::uint32_t n = 1;
    for (std::uint32_t d = 0; d < dims_; ++d) n *= extents_[d];
    return empty() ? 0 : n;
  }

  /// Per-topology construction rules. Rings keep the paper's sub-cluster
  /// bounds (power of two in [2, 16]; dual ring needs >= 4). Tori accept
  /// any 1-3 dimension shape whose extents are >= 2, whose node product is
  /// a power of two (the layout decodes slices by masked compare alone) at
  /// most calib::kMaxFabricNodes, and whose compressed route-entry count
  /// sum(extent_d - 1) fits the chip's table. Violations name the offending
  /// dimension.
  [[nodiscard]] Status validate() const;

  /// Dimension-order route-entry count each node needs: sum(extent_d - 1)
  /// for ring/torus, node_count - 1 for the dual ring (own ring + cross
  /// entries).
  [[nodiscard]] std::uint32_t route_entries_per_node() const;

  /// Number of inter-node cables the sub-cluster builder lays for this
  /// topology: n for the ring (a 2-node ring is two back-to-back cables),
  /// n + n/2 for the dual ring (two half rings plus the South cross-links),
  /// and dims * n for a torus (one full cable ring per dimension). This is
  /// the valid-CableId bound a FaultPlan is validated against.
  [[nodiscard]] constexpr std::uint32_t cable_count() const {
    const std::uint32_t n = node_count();
    switch (kind_) {
      case Kind::kRing: return n;
      case Kind::kDualRing: return n + n / 2;
      case Kind::kTorus: return dims_ * n;
    }
    return 0;
  }

  /// Torus coordinates of a node id (unused dimensions read 0).
  [[nodiscard]] std::array<std::uint32_t, kMaxDims> coords(
      std::uint32_t node) const;
  [[nodiscard]] std::uint32_t node_at(
      const std::array<std::uint32_t, kMaxDims>& c) const;

  /// Shortest distance along dimension `dim`'s ring between two
  /// coordinates.
  [[nodiscard]] std::uint32_t ring_distance(std::uint32_t dim,
                                            std::uint32_t from,
                                            std::uint32_t to) const;

  /// Hop count from node `from` to node `to` as the routing tables steer
  /// it: the per-dimension ring distances summed (dimension-order routing
  /// takes the shortest way around each ring in turn). For the dual ring:
  /// ride the own ring to the pairing position, then one S hop.
  [[nodiscard]] std::uint32_t hops(std::uint32_t from, std::uint32_t to) const;

  /// A Hamiltonian cycle over the nodes in which consecutive entries are
  /// fabric neighbors (boustrophedon over the torus dimensions); identity
  /// for ring/dual-ring. This is the rank order the collective library
  /// rides so its logical ring maps onto physical cables.
  [[nodiscard]] std::vector<std::uint32_t> ring_order() const;

  /// "ring" | "dual-ring" | "torus:XxY[xZ]".
  [[nodiscard]] std::string to_string() const;
  /// Parses the to_string()/CLI grammar; shape errors come back as
  /// kInvalidArgument (validate() still applies separately).
  static Result<TopologySpec> parse(std::string_view text);

  bool operator==(const TopologySpec&) const = default;

 private:
  constexpr TopologySpec(Kind kind, std::array<std::uint32_t, kMaxDims> e,
                         std::uint32_t dims)
      : kind_(kind), extents_(e), dims_(dims) {}

  Kind kind_ = Kind::kRing;
  std::array<std::uint32_t, kMaxDims> extents_ = {0, 1, 1};
  std::uint32_t dims_ = 1;
};

}  // namespace tca::fabric
