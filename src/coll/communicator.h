// NCCL-style collectives over the TCA fabric (`tca::coll`).
//
// The paper's claim is that PEACH2's PCIe-native RDMA-put plus chaining DMA
// make inter-GPU communication cheap enough for tightly coupled algorithms
// across a sub-cluster; this layer turns that primitive into a communicator
// library so applications stop re-implementing ring loops by hand (the
// examples used to). APEnet+ (Ammendola et al.) judges the same class of
// FPGA interconnect by its GPU collective performance — barrier, broadcast,
// reduce-scatter, allgather, allreduce and halo exchange are the workloads
// that earn an interconnect model its keep.
//
// What the Communicator does that the ad-hoc example loops could not:
//
//  * Message-size algorithm selection. Host-resident payloads at or below
//    CollConfig::eager_threshold go through the PIO/eager path (CPU MMIO
//    stores into per-peer mailbox slots); everything else uses chained-DMA
//    ring pipelines. The ~2 KB default mirrors the paper's PIO/DMA
//    crossover: an eager put of 2 KB costs ~8 TLPs x 150 ns issue, right at
//    the DMA engine's ~2.1 us fixed activation cost.
//  * Chunked pipelining. Large buffers move around the ring in
//    pipeline_seg_bytes segments through per-rank GPU staging slots with
//    credit-based flow control, so the DMA of segment i overlaps the
//    cudaMemcpy staging of segment i+1 and ring steps overlap across ranks.
//  * Host-carried relay. In every ring schedule the chunk a rank sends at
//    step s+1 is exactly the chunk it received (and folded) at step s — and
//    the fold already materialized those bytes host-side. Steps after the
//    first therefore DMA straight from the carried host copy instead of
//    paying a fresh cudaMemcpy D2H per step, which removes the staging
//    latency from the pipeline's critical path. This is the move that keeps
//    the 3.66 GB/s TCA link ahead of the dual-rail IB baseline at bulk
//    sizes, and it leaves the floating-point fold order untouched.
//  * GPU-read avoidance. The fabric DMA-reads GPU memory at the paper's
//    830 MB/s BAR1 ceiling; large GPU-sourced sends are staged D2H into a
//    double-buffered host bounce buffer and DMA'd from host at wire rate
//    (writes into the destination GPU sink at line rate either way).
//  * Fault-aware completion. Every put runs under CollConfig::sync
//    (deadline + bounded retry, PR 3 machinery) and every flag wait under
//    CollConfig::flag_timeout_ps, so a collective either survives a link
//    flap deterministically (ring failover + doorbell retry) or returns
//    kTimedOut instead of wedging the simulation.
//  * Observability. Per-collective counters and latency series (CollMetrics,
//    exported as `coll.*`) and chrome://tracing spans per rank.
//
// Usage contract (standard communicator semantics):
//  * rank r lives on node r; buffers passed to rank-r calls must be on node r.
//  * Every rank issues the same sequence of collectives with matching
//    shape parameters; the communicator detects divergence deterministically
//    and returns kInvalidArgument on the rank that diverged.
//  * Collectives on one communicator are issued sequentially per rank
//    (no overlapping calls by the same rank).
//  * After a collective returns a failure the communicator's internal
//    sequence state may be torn; create a fresh communicator to continue.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/tca.h"
#include "common/stats.h"

namespace tca::coll {

/// Which path a collective takes for a given payload (see
/// Communicator::select_algorithm).
enum class Algorithm {
  kEager,  ///< PIO mailbox deposits (host-resident, small)
  kRing,   ///< chained-DMA ring pipeline through GPU staging
};

struct CollConfig {
  /// PIO/eager vs chained-DMA crossover in bytes (paper: ~2 KB). Payloads
  /// at or below this — when host-resident — use the eager path.
  std::uint64_t eager_threshold = 2048;
  /// Ring pipeline segment: staging-slot granularity and the unit of
  /// D2H/DMA overlap. Must be a multiple of 8.
  std::uint64_t pipeline_seg_bytes = 64ull << 10;
  /// Staging slots per rank (credit depth of each ring link). >= 2.
  std::uint32_t staging_slots = 4;
  /// GPU-resident sends at or above this stage through the host bounce
  /// buffer instead of letting the DMA engine read BAR1 at 830 MB/s.
  std::uint64_t gpu_staging_min = 8ull << 10;
  /// Recovery policy for every DMA put this communicator issues.
  api::SyncOptions sync;
  /// Bound on every flag wait (0 = poll forever). Set this alongside
  /// `sync` in fault campaigns so a dead peer surfaces as kTimedOut.
  TimePs flag_timeout_ps = 0;
};

/// Raw per-communicator counters plus (while obs::sampling_enabled())
/// per-algorithm latency series. Counters count per-rank calls: one
/// n-rank allreduce adds n to allreduce_ops.
struct CollMetrics {
  std::uint64_t barrier_ops = 0;
  std::uint64_t broadcast_ops = 0;
  std::uint64_t reduce_scatter_ops = 0;
  std::uint64_t allgather_ops = 0;
  std::uint64_t allreduce_ops = 0;
  std::uint64_t halo_ops = 0;
  /// Payload bytes this communicator pushed through the fabric (eager
  /// deposits + ring segments; excludes flags and staging copies).
  std::uint64_t bytes = 0;
  std::uint64_t eager_ops = 0;  ///< collectives routed to the eager path
  std::uint64_t ring_ops = 0;   ///< collectives routed to the ring path
  /// Bytes staged D2H to avoid the GPU BAR1 read ceiling.
  std::uint64_t staged_d2h_bytes = 0;
  /// Bytes sent from the host-carried copy of a previous step's fold,
  /// skipping the per-step D2H a naive ring pipeline would pay.
  std::uint64_t host_carry_bytes = 0;
  /// Doorbell re-rings across all puts (CollConfig::sync retries).
  std::uint64_t put_retries = 0;
  SampleSeries barrier_latency_ps;
  SampleSeries broadcast_latency_ps;
  SampleSeries allreduce_eager_latency_ps;
  SampleSeries allreduce_ring_latency_ps;
  SampleSeries halo_latency_ps;
};

/// Neighbor/halo exchange descriptor: where this rank's outgoing boundary
/// rows live and where the neighbors' rows land, all within `buf` on the
/// calling rank. `bytes` (per direction) must match across ranks and fit a
/// staging slot (<= CollConfig::pipeline_seg_bytes); offsets are local to
/// each rank and may differ.
struct HaloSpec {
  api::Buffer buf;
  std::uint64_t send_to_next_off = 0;
  std::uint64_t send_to_prev_off = 0;
  std::uint64_t recv_from_prev_off = 0;
  std::uint64_t recv_from_next_off = 0;
  std::uint64_t bytes = 0;
};

/// A communicator over all nodes of the runtime's sub-cluster (rank == node
/// ID). Owns per-rank GPU staging, host bounce/eager buffers and the flag
/// words every collective synchronizes through. Collectives are coroutines:
/// spawn one call per rank and run the scheduler.
class Communicator {
 public:
  /// Allocates the per-rank communication resources out of `rt`. Keep the
  /// returned Communicator at a stable address while collectives are in
  /// flight (in-flight calls hold `this`).
  static Result<Communicator> create(api::Runtime& rt, CollConfig config = {});

  Communicator(Communicator&&) = default;
  Communicator& operator=(Communicator&&) = delete;
  Communicator(const Communicator&) = delete;
  Communicator& operator=(const Communicator&) = delete;

  [[nodiscard]] std::uint32_t ranks() const { return ranks_; }
  [[nodiscard]] const CollConfig& config() const { return cfg_; }

  /// The size-based path choice, identical on every rank for matching
  /// arguments: eager needs a host-resident payload at or below the
  /// threshold (PIO stores cannot source GPU memory); everything else
  /// rides the chained-DMA ring.
  [[nodiscard]] Algorithm select_algorithm(std::uint64_t payload_bytes,
                                           bool host_resident) const {
    return (host_resident && payload_bytes <= cfg_.eager_threshold)
               ? Algorithm::kEager
               : Algorithm::kRing;
  }

  /// Dissemination barrier: ceil(log2(n)) rounds of PIO flag stores.
  sim::Task<Status> barrier(std::uint32_t rank);

  /// Broadcasts [offset, offset+bytes) of root's buffer into the same-shape
  /// region on every rank. Eager: root deposits into each peer's mailbox.
  /// Ring: pipelined store-and-forward around the ring.
  sim::Task<Status> broadcast(std::uint32_t rank, std::uint32_t root,
                              api::Buffer buf, std::uint64_t offset,
                              std::uint64_t bytes);

  /// In-place ring reduce-scatter (sum of doubles). `count` doubles at
  /// `offset`, count % ranks == 0. On return, rank r owns the fully
  /// reduced chunk r (count/ranks doubles at offset + r*chunk bytes);
  /// other chunk regions hold partial sums, as usual for in-place rings.
  sim::Task<Status> reduce_scatter_sum(std::uint32_t rank, api::Buffer buf,
                                       std::uint64_t offset,
                                       std::uint64_t count);

  /// Ring allgather: rank r's chunk (chunk_bytes at offset + r*chunk_bytes)
  /// is replicated to every rank; the buffer holds ranks*chunk_bytes.
  sim::Task<Status> allgather(std::uint32_t rank, api::Buffer buf,
                              std::uint64_t offset,
                              std::uint64_t chunk_bytes);

  /// In-place allreduce (sum of doubles): two-phase ring (reduce-scatter +
  /// allgather) or, for small host payloads, eager gather-to-root +
  /// re-broadcast. Both paths apply floating-point additions in the exact
  /// order of baseline::Collectives' ring, so results are bitwise
  /// interchangeable with the conventional-stack library.
  sim::Task<Status> allreduce_sum(std::uint32_t rank, api::Buffer buf,
                                  std::uint64_t offset, std::uint64_t count);

  /// Halo exchange with both ring neighbors: sends two boundary regions,
  /// receives two, with credit flow control instead of a global barrier.
  sim::Task<Status> neighbor_exchange(std::uint32_t rank, HaloSpec spec);

  [[nodiscard]] const CollMetrics& metrics() const { return metrics_; }

  /// Exports `coll.*` counters/histograms, then delegates to
  /// api::Runtime::export_metrics (which pulls `api.*` and the whole
  /// fabric's hardware counters via SubCluster::export_metrics).
  void export_metrics(obs::MetricRegistry& reg) const;

 private:
  /// How ring_recv folds an arriving segment into the user buffer.
  enum class RecvMode { kCopy, kAccumulate };

  /// Signature of one collective call, compared across ranks to detect a
  /// diverging op sequence deterministically.
  struct OpSig {
    int kind = 0;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    bool host = false;
    [[nodiscard]] bool operator==(const OpSig&) const = default;
  };

  struct RankState {
    api::Buffer staging;  ///< GPU: (slots + 2 halo) x slot_stride
    api::Buffer bounce;   ///< host: 2 x slot_stride staging double buffer
    api::Buffer eager;    ///< host: ranks x eager_slot mailbox row
    api::Buffer flags;    ///< host: flag words, 8-byte stride
    std::string track;    ///< trace track name ("coll.rank<r>")
    std::uint32_t ring_tx_seq = 0;  ///< segments sent to next
    std::uint32_t ring_rx_seq = 0;  ///< segments consumed from prev
    std::uint32_t barrier_epoch = 0;
    std::uint32_t halo_seq = 0;
    std::uint64_t op_index = 0;  ///< position in the communicator op log
  };

  Communicator(api::Runtime& rt, CollConfig cfg);

  static Status validate_config(const CollConfig& cfg);
  Status validate_buffer(std::uint32_t rank, const api::Buffer& buf,
                         std::uint64_t offset, std::uint64_t bytes) const;
  /// Records/compares the rank's next op signature (see OpSig).
  Status check_op(std::uint32_t rank, OpSig sig);

  /// wait_flag_ge on `rank`'s flag word, bounded by cfg_.flag_timeout_ps.
  sim::Task<Status> wait_word_ge(std::uint32_t rank, std::uint32_t word,
                                 std::uint32_t expected);
  /// PIO-stores `value` into `dst_rank`'s flag word, driven by `from`.
  sim::Task<> signal(std::uint32_t from, std::uint32_t dst_rank,
                     std::uint32_t word, std::uint32_t value);

  /// One DMA put into `dst_rank`'s staging at `staging_off`, under the
  /// communicator's recovery policy; accumulates retry metrics.
  sim::Task<Status> put_seg(api::Buffer src, std::uint64_t src_off,
                            std::uint32_t dst_rank, std::uint64_t staging_off,
                            std::uint64_t bytes);

  /// Sends [src_off, src_off+bytes) to the ring successor, segment by
  /// segment with credit flow control; overlaps D2H staging of segment i+1
  /// with the DMA chain of segment i (double-buffered bounce). When
  /// `host_src` is non-null it holds a host-resident copy of the payload
  /// (the carry from the previous ring step's fold) and the per-segment
  /// D2H staging is skipped entirely.
  sim::Task<Status> ring_send(std::uint32_t rank, api::Buffer buf,
                              std::uint64_t src_off, std::uint64_t bytes,
                              const std::vector<std::byte>* host_src);
  /// Receives `bytes` from the ring predecessor into `buf` at `dst_off`,
  /// acking each consumed staging slot. When `carry_out` is non-null the
  /// post-fold bytes are also kept there for the next step's ring_send.
  sim::Task<Status> ring_recv(std::uint32_t rank, api::Buffer buf,
                              std::uint64_t dst_off, std::uint64_t bytes,
                              RecvMode mode,
                              std::vector<std::byte>* carry_out);
  /// One ring phase: n-1 steps, step s sends chunk (rank+shift-s) mod n and
  /// folds chunk (rank+shift-s-1) mod n. shift 0 + kAccumulate is the
  /// baseline reduce-scatter schedule; shift 1 + kCopy its allgather. In
  /// every such schedule step s+1 sends the chunk step s received, so when
  /// `carry` is non-null the folded bytes ride host-side from one step's
  /// recv to the next step's send (and across the phases of an allreduce):
  /// on entry *carry may hold the first chunk to send, on exit it holds the
  /// last chunk received.
  sim::Task<Status> ring_phase(std::uint32_t rank, api::Buffer buf,
                               std::uint64_t offset,
                               std::uint64_t chunk_bytes, int shift,
                               RecvMode mode, std::vector<std::byte>* carry);

  /// Eager deposit into `dst`'s mailbox slot for this rank (PIO), with
  /// per-pair sequence/ack flow control.
  sim::Task<Status> eager_send(std::uint32_t rank, std::uint32_t dst,
                               std::vector<std::byte> payload);
  /// Receives the next eager deposit from `src` (bytes known by protocol).
  sim::Task<Status> eager_recv(std::uint32_t rank, std::uint32_t src,
                               std::uint64_t bytes,
                               std::vector<std::byte>* out);

  sim::Task<Status> eager_allreduce(std::uint32_t rank, api::Buffer buf,
                                    std::uint64_t offset, std::uint64_t count);
  /// Pipelined store-and-forward broadcast around the ring.
  sim::Task<Status> ring_broadcast(std::uint32_t rank, std::uint32_t root,
                                   api::Buffer buf, std::uint64_t offset,
                                   std::uint64_t bytes);

  [[nodiscard]] std::uint64_t halo_slot_off(bool from_prev) const;

  /// Logical ring order over the ranks, derived from the fabric topology
  /// (TopologySpec::ring_order): identity on ring/dual-ring — which keeps
  /// every ring schedule bitwise identical to the pre-topology library —
  /// and a boustrophedon walk on tori, so each logical-ring hop rides a
  /// single cable instead of crossing the torus. ring_pos_ is the inverse
  /// permutation.
  [[nodiscard]] std::uint32_t ring_pos(std::uint32_t rank) const {
    return ring_pos_[rank];
  }
  [[nodiscard]] std::uint32_t rank_at(std::uint32_t pos) const {
    return ring_order_[pos % ranks_];
  }
  [[nodiscard]] std::uint32_t ring_next(std::uint32_t rank) const {
    return rank_at(ring_pos_[rank] + 1);
  }
  [[nodiscard]] std::uint32_t ring_prev(std::uint32_t rank) const {
    return rank_at(ring_pos_[rank] + ranks_ - 1);
  }

  api::Runtime* rt_;
  CollConfig cfg_;
  std::uint32_t ranks_ = 0;
  std::vector<std::uint32_t> ring_order_;
  std::vector<std::uint32_t> ring_pos_;
  std::uint64_t slot_stride_ = 0;   ///< staging/bounce slot stride (256-aligned)
  std::uint64_t eager_slot_ = 0;    ///< mailbox slot stride (256-aligned)
  std::vector<RankState> states_;
  /// Per-(src,dst) eager deposit counters, flattened src*ranks+dst. The tx
  /// view advances on send, the rx view on receive; they stay aligned
  /// because every rank runs the same op sequence.
  std::vector<std::uint32_t> eager_tx_seq_;
  std::vector<std::uint32_t> eager_rx_seq_;
  /// Shared op log for sequence-divergence detection (first rank to reach
  /// index i defines the expected signature).
  std::vector<OpSig> op_log_;
  CollMetrics metrics_;
};

}  // namespace tca::coll
