#include "coll/communicator.h"

#include <algorithm>
#include <cstring>
#include <optional>
#include <utility>

#include "calib/calibration.h"
#include "common/trace.h"

namespace tca::coll {

namespace {

// Flag-word layout of each rank's flag buffer (8-byte word stride; every
// word has exactly one writer, and all values are monotonic sequence
// counters waited on with >= semantics — no missed wakeups, no reuse races).
//
//   word 0           ring data      written by the ring predecessor
//   word 1           ring ack       written by the ring successor
//   words 2..5       barrier rounds written by rank (self - 2^round)
//   word 6           halo data      written by prev ("your from-prev slot is full")
//   word 7           halo data      written by next ("your from-next slot is full")
//   word 8           halo ack       written by prev ("I consumed your to-prev put")
//   word 9           halo ack       written by next ("I consumed your to-next put")
//   word 10+q        eager data     written by rank q (deposits made)
//   word 10+n+q      eager ack      written by rank q (deposits consumed)
// The partition proof the coll-flag-overlap lint checks: for every world
// size n in [1, 16], the per-purpose flag-word regions below must be
// pairwise disjoint and fit in the kEagerWordBase + 2n words each rank maps.
// tca-flags: param(n, 1, 16)
// tca-flags: region(ring-data, kRingDataWord, 1), region(ring-ack, kRingAckWord, 1)
// tca-flags: region(barrier-rounds, kBarrierWordBase, 4)
// tca-flags: region(halo-data-prev, kHaloDataPrevWord, 1), region(halo-data-next, kHaloDataNextWord, 1)
// tca-flags: region(halo-ack-prev, kHaloAckPrevWord, 1), region(halo-ack-next, kHaloAckNextWord, 1)
// tca-flags: region(eager-data, kEagerWordBase, n), region(eager-ack, kEagerWordBase + n, n)
// tca-flags: total(kEagerWordBase + 2 * n)
constexpr std::uint32_t kRingDataWord = 0;
constexpr std::uint32_t kRingAckWord = 1;
constexpr std::uint32_t kBarrierWordBase = 2;  // 4 rounds cover <= 16 ranks
constexpr std::uint32_t kHaloDataPrevWord = 6;
constexpr std::uint32_t kHaloDataNextWord = 7;
constexpr std::uint32_t kHaloAckPrevWord = 8;
constexpr std::uint32_t kHaloAckNextWord = 9;
constexpr std::uint32_t kEagerWordBase = 10;
constexpr std::uint64_t kFlagStride = 8;

// OpSig kinds for cross-rank op-sequence checking.
constexpr int kOpBarrier = 1;
constexpr int kOpBroadcast = 2;
constexpr int kOpReduceScatter = 3;
constexpr int kOpAllgather = 4;
constexpr int kOpAllreduce = 5;
constexpr int kOpHalo = 6;

constexpr std::uint64_t round_up_256(std::uint64_t v) {
  return (v + 255) & ~255ull;
}
// acc += add over `len` bytes of doubles, exactly baseline::Collectives'
// per-step update (`data[recv_chunk][i] += incoming[i]`): local operand on
// the left, arriving partial sum on the right. memcpy keeps it UB-free on
// byte storage.
void accumulate_doubles(std::byte* acc, const std::byte* add,
                        std::uint64_t len) {
  for (std::uint64_t i = 0; i < len; i += 8) {
    double a = 0;
    double b = 0;
    std::memcpy(&a, acc + i, 8);
    std::memcpy(&b, add + i, 8);
    a += b;
    std::memcpy(acc + i, &a, 8);
  }
}

}  // namespace

Communicator::Communicator(api::Runtime& rt, CollConfig cfg)
    : rt_(&rt),
      cfg_(cfg),
      ranks_(rt.node_count()),
      ring_order_(rt.cluster().topology().ring_order()),
      ring_pos_(ranks_, 0),
      slot_stride_(round_up_256(cfg.pipeline_seg_bytes)),
      eager_slot_(round_up_256(std::max<std::uint64_t>(cfg.eager_threshold, 8))),
      eager_tx_seq_(std::size_t{ranks_} * ranks_, 0),
      eager_rx_seq_(std::size_t{ranks_} * ranks_, 0) {
  for (std::uint32_t p = 0; p < ranks_; ++p) ring_pos_[ring_order_[p]] = p;
}

Status Communicator::validate_config(const CollConfig& cfg) {
  if (cfg.pipeline_seg_bytes < 256 || cfg.pipeline_seg_bytes % 8 != 0) {
    return {ErrorCode::kInvalidArgument,
            "pipeline_seg_bytes must be >= 256 and a multiple of 8"};
  }
  if (cfg.staging_slots < 2 || cfg.staging_slots > 64) {
    return {ErrorCode::kInvalidArgument, "staging_slots must be in [2, 64]"};
  }
  return Status::ok();
}

Result<Communicator> Communicator::create(api::Runtime& rt, CollConfig config) {
  if (Status st = validate_config(config); !st.is_ok()) return st;
  Communicator comm(rt, config);
  const std::uint32_t n = comm.ranks_;
  const std::uint32_t flag_words = kEagerWordBase + 2 * n;
  comm.op_log_.reserve(64);
  comm.states_.reserve(n);
  for (std::uint32_t r = 0; r < n; ++r) {
    // Ring staging slots + 2 dedicated halo slots, on the PEACH2-side GPU.
    auto staging = rt.alloc_gpu(
        r, 0, (config.staging_slots + 2) * comm.slot_stride_);
    if (!staging.is_ok()) return staging.status();
    // Host staging bounce: double buffer so segment i+1 stages while
    // segment i's DMA chain is in flight.
    auto bounce = rt.alloc_host(r, 2 * comm.slot_stride_);
    if (!bounce.is_ok()) return bounce.status();
    // Eager mailbox row: slot q holds deposits from rank q; the own-rank
    // slot (never a deposit target) doubles as PIO TX staging.
    auto eager = rt.alloc_host(r, std::uint64_t{n} * comm.eager_slot_);
    if (!eager.is_ok()) return eager.status();
    auto flags = rt.alloc_host(r, flag_words * kFlagStride);
    if (!flags.is_ok()) return flags.status();
    const std::vector<std::byte> zeros(flag_words * kFlagStride);
    rt.write(flags.value(), 0, zeros);
    comm.states_.push_back(RankState{
        .staging = staging.value(),
        .bounce = bounce.value(),
        .eager = eager.value(),
        .flags = flags.value(),
        .track = "coll.rank" + std::to_string(r),
    });
  }
  return comm;
}

Status Communicator::validate_buffer(std::uint32_t rank,
                                     const api::Buffer& buf,
                                     std::uint64_t offset,
                                     std::uint64_t bytes) const {
  if (rank >= ranks_) {
    return {ErrorCode::kInvalidArgument, "no such rank"};
  }
  if (buf.node != rank) {
    return {ErrorCode::kInvalidArgument,
            "rank r collective arguments must live on node r"};
  }
  if (offset + bytes > buf.size) {
    return {ErrorCode::kOutOfRange, "collective region outside buffer"};
  }
  return Status::ok();
}

Status Communicator::check_op(std::uint32_t rank, OpSig sig) {
  const std::uint64_t i = states_[rank].op_index++;
  if (i < op_log_.size()) {
    if (!(op_log_[i] == sig)) {
      return {ErrorCode::kInvalidArgument,
              "collective op sequence diverged from the other ranks"};
    }
  } else {
    // Ranks advance one collective at a time, so the first rank to reach
    // index i defines the expected signature (i == size exactly).
    op_log_.push_back(sig);
  }
  return Status::ok();
}

sim::Task<Status> Communicator::wait_word_ge(std::uint32_t rank,
                                             std::uint32_t word,
                                             std::uint32_t expected) {
  co_return co_await rt_->wait_flag_ge(states_[rank].flags,
                                       word * kFlagStride, expected,
                                       cfg_.flag_timeout_ps);
}

sim::Task<> Communicator::signal(std::uint32_t from, std::uint32_t dst_rank,
                                 std::uint32_t word, std::uint32_t value) {
  co_await rt_->notify(from, states_[dst_rank].flags, word * kFlagStride,
                       value);
}

sim::Task<Status> Communicator::put_seg(api::Buffer src, std::uint64_t src_off,
                                        std::uint32_t dst_rank,
                                        std::uint64_t staging_off,
                                        std::uint64_t bytes) {
  std::uint32_t retries = 0;
  const Status st = co_await rt_->memcpy_peer_reliable(
      states_[dst_rank].staging, staging_off, src, src_off, bytes, cfg_.sync,
      &retries);
  metrics_.put_retries += retries;
  metrics_.bytes += bytes;
  co_return st;
}

sim::Task<Status> Communicator::ring_send(
    std::uint32_t rank, api::Buffer buf, std::uint64_t src_off,
    std::uint64_t bytes, const std::vector<std::byte>* host_src) {
  const std::uint32_t next = ring_next(rank);
  RankState& me = states_[rank];
  // `host_src` carries the previous step's fold result, already
  // host-resident — forward it straight from the bounce buffer (the same
  // move ring_broadcast's relay makes). Otherwise large GPU payloads stage
  // through the bounce via cudaMemcpy D2H: the fabric reads GPU BAR1 at
  // ~830 MB/s but host memory at wire rate, and the D2H of segment i+1
  // overlaps the DMA chain of segment i.
  const bool carried = host_src != nullptr && !buf.is_host();
  const bool staged =
      !carried && !buf.is_host() && bytes >= cfg_.gpu_staging_min;
  const std::uint64_t seg = cfg_.pipeline_seg_bytes;
  std::optional<sim::Task<Status>> pending;
  std::uint32_t pending_seq = 0;
  Status result = Status::ok();
  for (std::uint64_t off = 0; off < bytes; off += seg) {
    const std::uint64_t len = std::min(seg, bytes - off);
    const std::uint32_t seq = ++me.ring_tx_seq;
    // Credit flow control: the successor acks each consumed staging slot,
    // so slot reuse waits for ack seq - slots.
    if (seq > cfg_.staging_slots) {
      if (Status st = co_await wait_word_ge(rank, kRingAckWord,
                                            seq - cfg_.staging_slots);
          !st.is_ok()) {
        result = st;
        break;
      }
    }
    api::Buffer put_src = buf;
    std::uint64_t put_src_off = src_off + off;
    if (carried) {
      const std::uint64_t bounce_off = (seq % 2) * slot_stride_;
      rt_->write(me.bounce, bounce_off,
                 std::span(host_src->data() + off, len));
      metrics_.host_carry_bytes += len;
      put_src = me.bounce;
      put_src_off = bounce_off;
    } else if (staged) {
      std::vector<std::byte> tmp(len);
      co_await rt_->cluster()
          .node(rank)
          .gpu(*buf.gpu_index())
          .memcpy_d2h(buf.block_offset + src_off + off, tmp);
      const std::uint64_t bounce_off = (seq % 2) * slot_stride_;
      rt_->write(me.bounce, bounce_off, tmp);
      metrics_.staged_d2h_bytes += len;
      put_src = me.bounce;
      put_src_off = bounce_off;
    }
    if (pending) {
      const Status st = co_await *std::move(pending);
      pending.reset();
      if (!st.is_ok()) {
        result = st;
        break;
      }
      // Publish segment pending_seq only after its put completed: two
      // in-flight chains could finish out of order otherwise, and the
      // receiver's >= wait would consume a slot whose data hasn't landed.
      co_await signal(rank, next, kRingDataWord, pending_seq);
    }
    pending.emplace(put_seg(put_src, put_src_off, next,
                            ((seq - 1) % cfg_.staging_slots) * slot_stride_,
                            len));
    pending_seq = seq;
  }
  if (pending) {
    const Status st = co_await *std::move(pending);
    if (result.is_ok() && st.is_ok()) {
      co_await signal(rank, next, kRingDataWord, pending_seq);
    } else if (result.is_ok()) {
      result = st;
    }
  }
  co_return result;
}

sim::Task<Status> Communicator::ring_recv(std::uint32_t rank, api::Buffer buf,
                                          std::uint64_t dst_off,
                                          std::uint64_t bytes, RecvMode mode,
                                          std::vector<std::byte>* carry_out) {
  const std::uint32_t prev = ring_prev(rank);
  RankState& me = states_[rank];
  const std::uint64_t seg = cfg_.pipeline_seg_bytes;
  if (carry_out != nullptr) carry_out->resize(bytes);
  for (std::uint64_t off = 0; off < bytes; off += seg) {
    const std::uint64_t len = std::min(seg, bytes - off);
    const std::uint32_t seq = ++me.ring_rx_seq;
    if (Status st = co_await wait_word_ge(rank, kRingDataWord, seq);
        !st.is_ok()) {
      co_return st;
    }
    const std::uint64_t slot = ((seq - 1) % cfg_.staging_slots) * slot_stride_;
    std::vector<std::byte> in(len);
    rt_->read(me.staging, slot, in);
    if (mode == RecvMode::kAccumulate) {
      std::vector<std::byte> own(len);
      rt_->read(buf, dst_off + off, own);
      accumulate_doubles(own.data(), in.data(), len);
      rt_->write(buf, dst_off + off, own);
      if (carry_out != nullptr) {
        std::memcpy(carry_out->data() + off, own.data(), len);
      }
    } else {
      rt_->write(buf, dst_off + off, in);
      if (carry_out != nullptr) {
        std::memcpy(carry_out->data() + off, in.data(), len);
      }
    }
    co_await signal(rank, prev, kRingAckWord, seq);
  }
  co_return Status::ok();
}

sim::Task<Status> Communicator::ring_phase(std::uint32_t rank, api::Buffer buf,
                                           std::uint64_t offset,
                                           std::uint64_t chunk_bytes,
                                           int shift, RecvMode mode,
                                           std::vector<std::byte>* carry) {
  const int n = static_cast<int>(ranks_);
  // Chunk ids are ranks (rank r owns chunk r), but the rotation schedule
  // walks ring *positions*: position arithmetic maps back to a chunk id via
  // rank_at. On ring topologies the order is the identity and this reduces
  // to the classic (rank + shift - s) mod n schedule, step for step.
  std::vector<std::byte> incoming;
  for (int s = 0; s + 1 < n; ++s) {
    const auto send_chunk = static_cast<std::uint64_t>(rank_at(
        static_cast<std::uint32_t>(
            (static_cast<int>(ring_pos(rank)) + 2 * n + shift - s) % n)));
    const auto recv_chunk = static_cast<std::uint64_t>(rank_at(
        static_cast<std::uint32_t>(
            (static_cast<int>(ring_pos(rank)) + 2 * n + shift - s - 1) % n)));
    // tx starts eagerly; rx runs concurrently so the step can't deadlock
    // even when segment count exceeds the staging credit depth. The chunk
    // sent here is exactly the one received last step, so a non-empty
    // carry feeds the send while the recv fills `incoming` for the next.
    const std::vector<std::byte>* tx_src =
        (carry != nullptr && carry->size() == chunk_bytes) ? carry : nullptr;
    sim::Task<Status> tx = ring_send(
        rank, buf, offset + send_chunk * chunk_bytes, chunk_bytes, tx_src);
    const Status rx = co_await ring_recv(
        rank, buf, offset + recv_chunk * chunk_bytes, chunk_bytes, mode,
        carry != nullptr ? &incoming : nullptr);
    const Status txs = co_await std::move(tx);
    if (!txs.is_ok()) co_return txs;
    if (!rx.is_ok()) co_return rx;
    if (carry != nullptr) {
      std::swap(*carry, incoming);
    }
  }
  co_return Status::ok();
}

sim::Task<Status> Communicator::eager_send(std::uint32_t rank,
                                           std::uint32_t dst,
                                           std::vector<std::byte> payload) {
  const std::uint32_t s = ++eager_tx_seq_[std::size_t{rank} * ranks_ + dst];
  // One deposit outstanding per (src, dst) pair: wait for dst to have
  // consumed deposit s-1 before overwriting the mailbox slot.
  if (s > 1) {
    if (Status st =
            co_await wait_word_ge(rank, kEagerWordBase + ranks_ + dst, s - 1);
        !st.is_ok()) {
      co_return st;
    }
  }
  RankState& me = states_[rank];
  rt_->write(me.eager, rank * eager_slot_, payload);
  const Status st = co_await rt_->memcpy_pio(
      states_[dst].eager, rank * eager_slot_, me.eager, rank * eager_slot_,
      payload.size());
  if (!st.is_ok()) co_return st;
  metrics_.bytes += payload.size();
  co_await signal(rank, dst, kEagerWordBase + rank, s);
  co_return Status::ok();
}

sim::Task<Status> Communicator::eager_recv(std::uint32_t rank,
                                           std::uint32_t src,
                                           std::uint64_t bytes,
                                           std::vector<std::byte>* out) {
  const std::uint32_t s = ++eager_rx_seq_[std::size_t{rank} * ranks_ + src];
  if (Status st = co_await wait_word_ge(rank, kEagerWordBase + src, s);
      !st.is_ok()) {
    co_return st;
  }
  out->resize(bytes);
  rt_->read(states_[rank].eager, src * eager_slot_, *out);
  co_await signal(rank, src, kEagerWordBase + ranks_ + rank, s);
  co_return Status::ok();
}

sim::Task<Status> Communicator::eager_allreduce(std::uint32_t rank,
                                                api::Buffer buf,
                                                std::uint64_t offset,
                                                std::uint64_t count) {
  const std::uint32_t n = ranks_;
  const std::uint64_t bytes = count * 8;
  if (rank != 0) {
    std::vector<std::byte> mine(bytes);
    rt_->read(buf, offset, mine);
    if (Status st = co_await eager_send(rank, 0, std::move(mine));
        !st.is_ok()) {
      co_return st;
    }
    std::vector<std::byte> reduced;
    if (Status st = co_await eager_recv(rank, 0, bytes, &reduced);
        !st.is_ok()) {
      co_return st;
    }
    rt_->write(buf, offset, reduced);
    co_return Status::ok();
  }
  // Root gathers every contribution, reduces, re-broadcasts.
  std::vector<std::vector<std::byte>> contrib(n);
  contrib[0].resize(bytes);
  rt_->read(buf, offset, contrib[0]);
  for (std::uint32_t q = 1; q < n; ++q) {
    if (Status st = co_await eager_recv(0, q, bytes, &contrib[q]);
        !st.is_ok()) {
      co_return st;
    }
  }
  // Reduce in the exact ring fold order — chunk c accumulates as
  // a_{c+n-1} + (... + (a_{c+1} + a_c)) — so eager and ring allreduce
  // results are bitwise interchangeable.
  std::vector<std::byte> reduced(bytes);
  const std::uint64_t chunk = count / n;
  for (std::uint32_t c = 0; c < n; ++c) {
    for (std::uint64_t i = 0; i < chunk; ++i) {
      const std::uint64_t at = (c * chunk + i) * 8;
      double acc = 0;
      std::memcpy(&acc, contrib[c].data() + at, 8);
      for (std::uint32_t k = 1; k < n; ++k) {
        double v = 0;
        std::memcpy(&v, contrib[(c + k) % n].data() + at, 8);
        acc = v + acc;
      }
      std::memcpy(reduced.data() + at, &acc, 8);
    }
  }
  rt_->write(buf, offset, reduced);
  for (std::uint32_t q = 1; q < n; ++q) {
    std::vector<std::byte> copy = reduced;
    if (Status st = co_await eager_send(0, q, std::move(copy)); !st.is_ok()) {
      co_return st;
    }
  }
  co_return Status::ok();
}

sim::Task<Status> Communicator::ring_broadcast(std::uint32_t rank,
                                               std::uint32_t root,
                                               api::Buffer buf,
                                               std::uint64_t offset,
                                               std::uint64_t bytes) {
  const std::uint32_t n = ranks_;
  const std::uint32_t pos = (ring_pos(rank) + n - ring_pos(root)) % n;
  if (pos == 0) {
    co_return co_await ring_send(rank, buf, offset, bytes, nullptr);
  }
  if (pos == n - 1) {
    co_return co_await ring_recv(rank, buf, offset, bytes, RecvMode::kCopy,
                                 nullptr);
  }
  // Store-and-forward relay: consume each segment from the predecessor,
  // land it in the user buffer, then put it onward from the host bounce
  // buffer (the staging read already made it host-resident, so the relay
  // DMA runs at wire rate regardless of where `buf` lives).
  const std::uint32_t prev = ring_prev(rank);
  const std::uint32_t next = ring_next(rank);
  RankState& me = states_[rank];
  const std::uint64_t seg = cfg_.pipeline_seg_bytes;
  for (std::uint64_t off = 0; off < bytes; off += seg) {
    const std::uint64_t len = std::min(seg, bytes - off);
    const std::uint32_t rx = ++me.ring_rx_seq;
    if (Status st = co_await wait_word_ge(rank, kRingDataWord, rx);
        !st.is_ok()) {
      co_return st;
    }
    std::vector<std::byte> data(len);
    rt_->read(me.staging, ((rx - 1) % cfg_.staging_slots) * slot_stride_,
              data);
    rt_->write(buf, offset + off, data);
    co_await signal(rank, prev, kRingAckWord, rx);

    const std::uint32_t tx = ++me.ring_tx_seq;
    if (tx > cfg_.staging_slots) {
      if (Status st = co_await wait_word_ge(rank, kRingAckWord,
                                            tx - cfg_.staging_slots);
          !st.is_ok()) {
        co_return st;
      }
    }
    const std::uint64_t bounce_off = (tx % 2) * slot_stride_;
    rt_->write(me.bounce, bounce_off, data);
    if (Status st = co_await put_seg(
            me.bounce, bounce_off, next,
            ((tx - 1) % cfg_.staging_slots) * slot_stride_, len);
        !st.is_ok()) {
      co_return st;
    }
    co_await signal(rank, next, kRingDataWord, tx);
  }
  co_return Status::ok();
}

sim::Task<Status> Communicator::barrier(std::uint32_t rank) {
  if (rank >= ranks_) {
    co_return Status{ErrorCode::kInvalidArgument, "no such rank"};
  }
  if (Status st = check_op(rank, OpSig{kOpBarrier, 0, 0, false});
      !st.is_ok()) {
    co_return st;
  }
  RankState& me = states_[rank];
  const std::uint32_t e = ++me.barrier_epoch;
  const TimePs t0 = rt_->scheduler().now();
  TraceSpan span(me.track, "barrier", t0);
  std::uint32_t round = 0;
  for (std::uint32_t dist = 1; dist < ranks_; dist <<= 1, ++round) {
    co_await signal(rank, (rank + dist) % ranks_, kBarrierWordBase + round, e);
    if (Status st = co_await wait_word_ge(rank, kBarrierWordBase + round, e);
        !st.is_ok()) {
      co_return st;
    }
  }
  ++metrics_.barrier_ops;
  if (obs::sampling_enabled()) {
    metrics_.barrier_latency_ps.add_time(rt_->scheduler().now() - t0);
  }
  span.end(rt_->scheduler().now());
  co_return Status::ok();
}

sim::Task<Status> Communicator::broadcast(std::uint32_t rank,
                                          std::uint32_t root, api::Buffer buf,
                                          std::uint64_t offset,
                                          std::uint64_t bytes) {
  if (root >= ranks_) {
    co_return Status{ErrorCode::kInvalidArgument, "no such root rank"};
  }
  if (Status st = validate_buffer(rank, buf, offset, bytes); !st.is_ok()) {
    co_return st;
  }
  if (Status st = check_op(rank, OpSig{kOpBroadcast, bytes, root,
                                       buf.is_host()});
      !st.is_ok()) {
    co_return st;
  }
  if (bytes == 0) {
    ++metrics_.broadcast_ops;
    co_return Status::ok();
  }
  const Algorithm algo = select_algorithm(bytes, buf.is_host());
  const TimePs t0 = rt_->scheduler().now();
  RankState& me = states_[rank];
  TraceSpan span(me.track,
                 algo == Algorithm::kEager ? "bcast.eager" : "bcast.ring", t0);
  Status st = Status::ok();
  if (algo == Algorithm::kEager) {
    ++metrics_.eager_ops;
    if (rank == root) {
      std::vector<std::byte> payload(bytes);
      rt_->read(buf, offset, payload);
      for (std::uint32_t q = 0; q < ranks_ && st.is_ok(); ++q) {
        if (q == root) continue;
        std::vector<std::byte> copy = payload;
        st = co_await eager_send(rank, q, std::move(copy));
      }
    } else {
      std::vector<std::byte> data;
      st = co_await eager_recv(rank, root, bytes, &data);
      if (st.is_ok()) rt_->write(buf, offset, data);
    }
  } else {
    ++metrics_.ring_ops;
    st = co_await ring_broadcast(rank, root, buf, offset, bytes);
  }
  if (!st.is_ok()) co_return st;
  ++metrics_.broadcast_ops;
  if (obs::sampling_enabled()) {
    metrics_.broadcast_latency_ps.add_time(rt_->scheduler().now() - t0);
  }
  span.end(rt_->scheduler().now());
  co_return Status::ok();
}

sim::Task<Status> Communicator::reduce_scatter_sum(std::uint32_t rank,
                                                   api::Buffer buf,
                                                   std::uint64_t offset,
                                                   std::uint64_t count) {
  if (count == 0 || count % ranks_ != 0) {
    co_return Status{ErrorCode::kInvalidArgument,
                     "reduce_scatter count must be a positive multiple of "
                     "the rank count"};
  }
  if (Status st = validate_buffer(rank, buf, offset, count * 8);
      !st.is_ok()) {
    co_return st;
  }
  if (Status st = check_op(rank, OpSig{kOpReduceScatter, count, 0,
                                       buf.is_host()});
      !st.is_ok()) {
    co_return st;
  }
  RankState& me = states_[rank];
  TraceSpan span(me.track, "reduce_scatter", rt_->scheduler().now());
  ++metrics_.ring_ops;
  // shift -1 makes rank r end the n-1 steps holding fully reduced chunk r.
  std::vector<std::byte> carry;
  const Status st = co_await ring_phase(
      rank, buf, offset, (count / ranks_) * 8, -1, RecvMode::kAccumulate,
      buf.is_host() ? nullptr : &carry);
  if (!st.is_ok()) co_return st;
  ++metrics_.reduce_scatter_ops;
  span.end(rt_->scheduler().now());
  co_return Status::ok();
}

sim::Task<Status> Communicator::allgather(std::uint32_t rank, api::Buffer buf,
                                          std::uint64_t offset,
                                          std::uint64_t chunk_bytes) {
  if (chunk_bytes == 0) {
    co_return Status{ErrorCode::kInvalidArgument,
                     "allgather chunk must be non-empty"};
  }
  if (Status st =
          validate_buffer(rank, buf, offset, chunk_bytes * ranks_);
      !st.is_ok()) {
    co_return st;
  }
  if (Status st = check_op(rank, OpSig{kOpAllgather, chunk_bytes, 0,
                                       buf.is_host()});
      !st.is_ok()) {
    co_return st;
  }
  RankState& me = states_[rank];
  TraceSpan span(me.track, "allgather", rt_->scheduler().now());
  ++metrics_.ring_ops;
  // shift 0: rank r injects its own chunk r at step 0 and relays from
  // there; after n-1 steps every rank holds every chunk.
  std::vector<std::byte> carry;
  const Status st =
      co_await ring_phase(rank, buf, offset, chunk_bytes, 0, RecvMode::kCopy,
                          buf.is_host() ? nullptr : &carry);
  if (!st.is_ok()) co_return st;
  ++metrics_.allgather_ops;
  span.end(rt_->scheduler().now());
  co_return Status::ok();
}

sim::Task<Status> Communicator::allreduce_sum(std::uint32_t rank,
                                              api::Buffer buf,
                                              std::uint64_t offset,
                                              std::uint64_t count) {
  if (count == 0 || count % ranks_ != 0) {
    co_return Status{ErrorCode::kInvalidArgument,
                     "allreduce count must be a positive multiple of the "
                     "rank count"};
  }
  const std::uint64_t bytes = count * 8;
  if (Status st = validate_buffer(rank, buf, offset, bytes); !st.is_ok()) {
    co_return st;
  }
  if (Status st = check_op(rank, OpSig{kOpAllreduce, count, 0,
                                       buf.is_host()});
      !st.is_ok()) {
    co_return st;
  }
  const Algorithm algo = select_algorithm(bytes, buf.is_host());
  const TimePs t0 = rt_->scheduler().now();
  RankState& me = states_[rank];
  TraceSpan span(
      me.track,
      algo == Algorithm::kEager ? "allreduce.eager" : "allreduce.ring", t0);
  Status st = Status::ok();
  if (algo == Algorithm::kEager) {
    ++metrics_.eager_ops;
    st = co_await eager_allreduce(rank, buf, offset, count);
  } else {
    ++metrics_.ring_ops;
    // Two-phase ring: reduce-scatter leaves rank r with reduced chunk
    // (r+1) mod n, the allgather phase (shift +1) starts there — the
    // exact baseline::Collectives schedule, step for step. The carry
    // threads through both phases: the reduce-scatter's final fold is
    // precisely the chunk the allgather sends first.
    const std::uint64_t chunk_bytes = (count / ranks_) * 8;
    std::vector<std::byte> carry;
    std::vector<std::byte>* cp = buf.is_host() ? nullptr : &carry;
    st = co_await ring_phase(rank, buf, offset, chunk_bytes, 0,
                             RecvMode::kAccumulate, cp);
    if (st.is_ok()) {
      st = co_await ring_phase(rank, buf, offset, chunk_bytes, 1,
                               RecvMode::kCopy, cp);
    }
  }
  if (!st.is_ok()) co_return st;
  ++metrics_.allreduce_ops;
  if (obs::sampling_enabled()) {
    const TimePs dt = rt_->scheduler().now() - t0;
    if (algo == Algorithm::kEager) {
      metrics_.allreduce_eager_latency_ps.add_time(dt);
    } else {
      metrics_.allreduce_ring_latency_ps.add_time(dt);
    }
  }
  span.end(rt_->scheduler().now());
  co_return Status::ok();
}

std::uint64_t Communicator::halo_slot_off(bool from_prev) const {
  return (cfg_.staging_slots + (from_prev ? 0 : 1)) * slot_stride_;
}

sim::Task<Status> Communicator::neighbor_exchange(std::uint32_t rank,
                                                  HaloSpec spec) {
  if (spec.bytes > cfg_.pipeline_seg_bytes) {
    co_return Status{ErrorCode::kInvalidArgument,
                     "halo rows must fit one staging slot "
                     "(bytes <= pipeline_seg_bytes)"};
  }
  for (const std::uint64_t off :
       {spec.send_to_next_off, spec.send_to_prev_off, spec.recv_from_prev_off,
        spec.recv_from_next_off}) {
    if (Status st = validate_buffer(rank, spec.buf, off, spec.bytes);
        !st.is_ok()) {
      co_return st;
    }
  }
  if (Status st = check_op(rank, OpSig{kOpHalo, spec.bytes, 0,
                                       spec.buf.is_host()});
      !st.is_ok()) {
    co_return st;
  }
  if (spec.bytes == 0) {
    ++metrics_.halo_ops;
    co_return Status::ok();
  }
  const std::uint32_t next = ring_next(rank);
  const std::uint32_t prev = ring_prev(rank);
  RankState& me = states_[rank];
  const std::uint32_t h = ++me.halo_seq;
  const TimePs t0 = rt_->scheduler().now();
  TraceSpan span(me.track, "halo", t0);
  // Both neighbors must have consumed exchange h-1's puts before their
  // halo slots are overwritten (credit of depth 1 per direction).
  if (h > 1) {
    if (Status st = co_await wait_word_ge(rank, kHaloAckNextWord, h - 1);
        !st.is_ok()) {
      co_return st;
    }
    if (Status st = co_await wait_word_ge(rank, kHaloAckPrevWord, h - 1);
        !st.is_ok()) {
      co_return st;
    }
  }
  const Algorithm algo = select_algorithm(spec.bytes, spec.buf.is_host());
  if (algo == Algorithm::kEager) {
    ++metrics_.eager_ops;
    if (Status st = co_await rt_->memcpy_pio(
            states_[next].staging, halo_slot_off(true), spec.buf,
            spec.send_to_next_off, spec.bytes);
        !st.is_ok()) {
      co_return st;
    }
    if (Status st = co_await rt_->memcpy_pio(
            states_[prev].staging, halo_slot_off(false), spec.buf,
            spec.send_to_prev_off, spec.bytes);
        !st.is_ok()) {
      co_return st;
    }
  } else {
    ++metrics_.ring_ops;
    api::Buffer src_next = spec.buf;
    api::Buffer src_prev = spec.buf;
    std::uint64_t off_next = spec.send_to_next_off;
    std::uint64_t off_prev = spec.send_to_prev_off;
    if (!spec.buf.is_host() && spec.bytes >= cfg_.gpu_staging_min) {
      std::vector<std::byte> tmp(spec.bytes);
      co_await rt_->cluster()
          .node(rank)
          .gpu(*spec.buf.gpu_index())
          .memcpy_d2h(spec.buf.block_offset + spec.send_to_next_off, tmp);
      rt_->write(me.bounce, 0, tmp);
      co_await rt_->cluster()
          .node(rank)
          .gpu(*spec.buf.gpu_index())
          .memcpy_d2h(spec.buf.block_offset + spec.send_to_prev_off, tmp);
      rt_->write(me.bounce, slot_stride_, tmp);
      metrics_.staged_d2h_bytes += 2 * spec.bytes;
      src_next = me.bounce;
      off_next = 0;
      src_prev = me.bounce;
      off_prev = slot_stride_;
    }
    // Both rows ride one descriptor chain: one doorbell, one interrupt.
    api::Stream stream(*rt_);
    if (Status st = stream.enqueue_copy(states_[next].staging,
                                        halo_slot_off(true), src_next,
                                        off_next, spec.bytes);
        !st.is_ok()) {
      co_return st;
    }
    if (Status st = stream.enqueue_copy(states_[prev].staging,
                                        halo_slot_off(false), src_prev,
                                        off_prev, spec.bytes);
        !st.is_ok()) {
      co_return st;
    }
    const api::SyncReport report = co_await stream.synchronize(cfg_.sync);
    metrics_.put_retries += report.total_retries();
    if (!report.ok()) co_return report.status;
  }
  metrics_.bytes += 2 * spec.bytes;
  co_await signal(rank, next, kHaloDataPrevWord, h);
  co_await signal(rank, prev, kHaloDataNextWord, h);
  if (Status st = co_await wait_word_ge(rank, kHaloDataPrevWord, h);
      !st.is_ok()) {
    co_return st;
  }
  if (Status st = co_await wait_word_ge(rank, kHaloDataNextWord, h);
      !st.is_ok()) {
    co_return st;
  }
  std::vector<std::byte> row(spec.bytes);
  rt_->read(me.staging, halo_slot_off(true), row);
  rt_->write(spec.buf, spec.recv_from_prev_off, row);
  rt_->read(me.staging, halo_slot_off(false), row);
  rt_->write(spec.buf, spec.recv_from_next_off, row);
  co_await signal(rank, prev, kHaloAckNextWord, h);
  co_await signal(rank, next, kHaloAckPrevWord, h);
  ++metrics_.halo_ops;
  if (obs::sampling_enabled()) {
    metrics_.halo_latency_ps.add_time(rt_->scheduler().now() - t0);
  }
  span.end(rt_->scheduler().now());
  co_return Status::ok();
}

void Communicator::export_metrics(obs::MetricRegistry& reg) const {
  reg.counter("coll.barrier_ops").set(metrics_.barrier_ops);
  reg.counter("coll.broadcast_ops").set(metrics_.broadcast_ops);
  reg.counter("coll.reduce_scatter_ops").set(metrics_.reduce_scatter_ops);
  reg.counter("coll.allgather_ops").set(metrics_.allgather_ops);
  reg.counter("coll.allreduce_ops").set(metrics_.allreduce_ops);
  reg.counter("coll.halo_ops").set(metrics_.halo_ops);
  reg.counter("coll.bytes").set(metrics_.bytes);
  reg.counter("coll.eager_ops").set(metrics_.eager_ops);
  reg.counter("coll.ring_ops").set(metrics_.ring_ops);
  reg.counter("coll.staged_d2h_bytes").set(metrics_.staged_d2h_bytes);
  reg.counter("coll.host_carry_bytes").set(metrics_.host_carry_bytes);
  reg.counter("coll.put_retries").set(metrics_.put_retries);
  if (!metrics_.barrier_latency_ps.empty()) {
    reg.histogram("coll.barrier.latency_ps")
        .record_series(metrics_.barrier_latency_ps);
  }
  if (!metrics_.broadcast_latency_ps.empty()) {
    reg.histogram("coll.broadcast.latency_ps")
        .record_series(metrics_.broadcast_latency_ps);
  }
  if (!metrics_.allreduce_eager_latency_ps.empty()) {
    reg.histogram("coll.allreduce.eager_latency_ps")
        .record_series(metrics_.allreduce_eager_latency_ps);
  }
  if (!metrics_.allreduce_ring_latency_ps.empty()) {
    reg.histogram("coll.allreduce.ring_latency_ps")
        .record_series(metrics_.allreduce_ring_latency_ps);
  }
  if (!metrics_.halo_latency_ps.empty()) {
    reg.histogram("coll.halo.latency_ps")
        .record_series(metrics_.halo_latency_ps);
  }
  rt_->export_metrics(reg);
}

}  // namespace tca::coll
