// PEACH2 device driver + P2P (GPUDirect) driver emulation.
//
// The paper's Section IV: "We develop two device drivers: the PEACH2 driver
// for controlling the PEACH2 board and the P2P driver for enabling GPUDirect
// Support for RDMA." This module models both at the level the evaluation
// measures:
//
//  * Peach2Driver — register-file programming over MMIO, descriptor-table
//    construction in host DRAM, doorbell/interrupt DMA flow (including the
//    TSC-measured elapsed time exactly as Section IV-A describes: read the
//    clock just before DMA start, read it again in the completion interrupt
//    handler), the mmapped PIO window, and a host-side DMA buffer.
//  * P2pDriver — pins GPU pages into the BAR1 aperture using the CUDA-style
//    token handshake so PEACH2 (or any PCIe device) can address GPU memory.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "calib/calibration.h"
#include "common/stats.h"
#include "gpu/gpu_device.h"
#include "node/compute_node.h"
#include "peach2/chip.h"
#include "peach2/descriptor.h"
#include "peach2/dmac.h"
#include "peach2/registers.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace tca::driver {

/// P2P driver: performs the 4-step GPUDirect pinning dance of Section IV-A2.
class P2pDriver {
 public:
  explicit P2pDriver(node::ComputeNode& node) : node_(node) {}

  /// Pins [ptr, ptr+len) of `gpu_index`'s memory and returns its PCIe bus
  /// address (BAR1). Steps: token lookup (cuPointerGetAttribute) then pin.
  Result<std::uint64_t> pin(int gpu_index, gpu::DevPtr ptr, std::uint64_t len);

  Status unpin(int gpu_index, gpu::DevPtr ptr, std::uint64_t len);

 private:
  node::ComputeNode& node_;
};

/// Layout of the driver's reserved region inside host DRAM: the descriptor
/// table takes the last megabyte, everything below it is the DMA buffer.
struct DriverHostLayout {
  /// DMA buffer available to users of the driver (source/target of DMA).
  std::uint64_t dma_buffer_offset = 0;
  std::uint64_t dma_buffer_bytes = 0;
  /// Descriptor table written by run_chain.
  std::uint64_t desc_table_offset = 0;
  std::uint64_t desc_table_bytes = 0;

  static DriverHostLayout for_dram_size(std::uint64_t dram_bytes);
};

/// Bounded-retry policy for Peach2Driver::run_chain_reliable: exponential
/// backoff between attempts, each attempt guarded by the chain watchdog.
/// (Namespace scope so it can serve as an in-class default argument.)
struct RetryPolicy {
  std::uint32_t max_attempts = 3;
  TimePs timeout_ps = calib::kChainWatchdogPs;
  TimePs backoff_base_ps = calib::kRetryBackoffBasePs;
  std::uint32_t backoff_multiplier = 2;
  /// Optional preflight consulted after a failed attempt, before the next
  /// doorbell re-ring. A non-OK return stops the retry loop immediately
  /// with that status — the hook the API layer uses to surface a fabric
  /// partition as a prompt kUnreachable instead of burning the remaining
  /// attempts' deadlines against a destination no reroute can reach.
  std::function<Status()> abort_check;
};

/// Outcome of run_chain_reliable.
struct ChainResult {
  Status status;
  TimePs elapsed = 0;  ///< elapsed time of the final attempt
  std::uint32_t attempts = 0;
};

class Peach2Driver {
 public:
  /// `reg_base` is the bus address of the board's BAR0 (a node may carry two
  /// boards in the Fig. 10 loopback setup).
  Peach2Driver(node::ComputeNode& node, peach2::Peach2Chip& chip,
               std::uint64_t reg_base = node::layout::kPeach2RegBase);

  [[nodiscard]] node::ComputeNode& node() { return node_; }
  [[nodiscard]] peach2::Peach2Chip& chip() { return chip_; }
  [[nodiscard]] const DriverHostLayout& host_layout() const { return layout_; }
  [[nodiscard]] P2pDriver& p2p() { return p2p_; }

  // --- Register access (MMIO) ----------------------------------------------
  sim::Task<> write_register(std::uint64_t offset, std::uint64_t value);
  sim::Task<std::uint64_t> read_register(std::uint64_t offset);

  // --- DMA -------------------------------------------------------------------
  /// Serializes the chain into the descriptor table in host memory, rings
  /// the doorbell over MMIO, and waits for the completion interrupt.
  /// Returns the TSC-measured elapsed time from just-before-doorbell to the
  /// interrupt handler's clock read (the paper's measurement method).
  /// `channel` selects one of the kDmaChannels independent engines.
  /// `timeout_ps` > 0 arms a chain watchdog: if the completion interrupt
  /// has not arrived by then, the driver aborts the engine and the chain
  /// finishes with chain_status() == kTimedOut instead of hanging forever.
  sim::Task<TimePs> run_chain(std::vector<peach2::DmaDescriptor> chain,
                              int channel = 0, TimePs timeout_ps = 0);

  /// Outcome of the most recent run_chain/run_immediate on `channel`:
  /// kOk, kTimedOut (watchdog fired), or the per-descriptor DMAC error.
  [[nodiscard]] const Status& chain_status(int channel = 0) const {
    return last_status_[static_cast<std::size_t>(channel)];
  }

  using RetryPolicy = driver::RetryPolicy;
  using ChainResult = driver::ChainResult;

  /// Reliable chain submission: acquires a channel, runs the chain under
  /// the watchdog, and on failure re-rings the doorbell after exponential
  /// backoff — giving a NIOS-serviced ring failover time to reroute before
  /// the retry. Returns the final status plus the attempt count.
  sim::Task<ChainResult> run_chain_reliable(
      std::vector<peach2::DmaDescriptor> chain, RetryPolicy policy = {});

  /// Acquires a free DMA channel (suspending if all are busy), runs the
  /// chain on it, releases it. The concurrent-friendly entry point the API
  /// layer uses.
  sim::Task<TimePs> run_chain_auto(std::vector<peach2::DmaDescriptor> chain);

  /// run_chain_auto plus an error check of the channel that actually ran
  /// the chain (the DMAC's error bit is per-channel and sticky).
  sim::Task<Status> run_chain_checked(
      std::vector<peach2::DmaDescriptor> chain);

  /// Descriptor-less immediate DMA: latches src/dst/len in registers and
  /// kicks — no table in host memory, no table fetch. The low-latency path
  /// for small transfers the paper calls for in Section IV-A1. Takes the
  /// descriptor by value: a coroutine must not keep a reference to a
  /// caller temporary across its suspension points.
  sim::Task<TimePs> run_immediate(peach2::DmaDescriptor desc,
                                  int channel = 0);

  /// Like run_chain, but completion is signaled by a status writeback into
  /// host memory that the driver polls, instead of an interrupt. Shaves the
  /// interrupt-delivery latency off every chain.
  sim::Task<TimePs> run_chain_polled(
      std::vector<peach2::DmaDescriptor> chain, int channel = 0);

  /// True while a chain is in flight on `channel`.
  [[nodiscard]] bool dma_busy(int channel = 0) const {
    return dma_in_flight_[static_cast<std::size_t>(channel)];
  }

  // --- PIO --------------------------------------------------------------------
  /// Store through the mmapped window: `global_addr` is a TCA global
  /// address (the window is identity-mapped onto the global space).
  sim::Task<> pio_store(std::uint64_t global_addr,
                        std::span<const std::byte> data);

  /// Convenience: 32-bit PIO store (the paper's 4-byte latency probe).
  sim::Task<> pio_store_u32(std::uint64_t global_addr, std::uint32_t value);

  // --- Helpers -----------------------------------------------------------------
  /// Global TCA address of this node's DMA buffer at `offset`.
  [[nodiscard]] std::uint64_t host_buffer_global(std::uint64_t offset) const;

  /// Global TCA address of pinned GPU memory (gpu_index 0/1 only: PEACH2
  /// reaches only the two GPUs on its own socket).
  [[nodiscard]] std::uint64_t gpu_global(int gpu_index,
                                         gpu::DevPtr ptr) const;

  /// Global TCA address inside this chip's internal RAM.
  [[nodiscard]] std::uint64_t internal_global(std::uint64_t offset) const;

  // --- Statistics -------------------------------------------------------------
  /// DMA chains completed through this driver (any completion mode).
  [[nodiscard]] std::uint64_t chains_run() const { return chains_run_; }
  [[nodiscard]] std::uint64_t pio_stores() const { return pio_stores_; }
  [[nodiscard]] std::uint64_t pio_bytes() const { return pio_bytes_; }
  /// Doorbell-to-interrupt latency samples (the paper's TSC measurement);
  /// recorded only while obs::sampling_enabled().
  [[nodiscard]] const SampleSeries& chain_latency_ps() const {
    return chain_latency_;
  }
  /// Chain watchdog expirations (each one aborted an engine).
  [[nodiscard]] std::uint64_t watchdog_timeouts() const { return timeouts_; }
  /// Doorbell re-rings performed by run_chain_reliable.
  [[nodiscard]] std::uint64_t chain_retries() const { return retries_; }
  /// Error interrupts serviced (AER-flavored kErrStatus raises).
  [[nodiscard]] std::uint64_t error_irqs() const { return error_irqs_; }
  /// Every error-status bit ever serviced by the error ISR (diagnostics).
  [[nodiscard]] std::uint64_t error_bits_seen() const {
    return error_bits_seen_;
  }

 private:
  /// Per-channel slice of the descriptor-table region; the completion
  /// writeback word sits at the slice's tail.
  [[nodiscard]] std::uint64_t table_offset(int channel) const;
  [[nodiscard]] std::uint64_t table_slice_bytes() const;
  sim::Task<> write_table(std::span<const peach2::DmaDescriptor> chain,
                          int channel);
  sim::Task<> error_isr(std::uint64_t bits);

  node::ComputeNode& node_;
  peach2::Peach2Chip& chip_;
  std::uint64_t reg_base_;
  DriverHostLayout layout_;
  P2pDriver p2p_;
  std::array<std::unique_ptr<sim::Trigger>, 4> dma_done_;
  std::array<bool, 4> dma_in_flight_{};
  sim::Semaphore channel_sem_;
  std::vector<int> free_channels_;

  std::array<Status, 4> last_status_{};

  std::uint64_t chains_run_ = 0;
  std::uint64_t pio_stores_ = 0;
  std::uint64_t pio_bytes_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t error_irqs_ = 0;
  std::uint64_t error_bits_seen_ = 0;
  SampleSeries chain_latency_;
};

}  // namespace tca::driver
