#include "driver/peach2_driver.h"

#include <cstring>

#include "common/log.h"
#include "common/trace.h"
#include "obs/metrics.h"

namespace tca::driver {

using peach2::DmaDescriptor;
namespace regs = peach2::regs;

Result<std::uint64_t> P2pDriver::pin(int gpu_index, gpu::DevPtr ptr,
                                     std::uint64_t len) {
  if (gpu_index < 0 || gpu_index >= node_.gpu_count()) {
    return Status{ErrorCode::kInvalidArgument, "no such GPU"};
  }
  gpu::GpuDevice& dev = node_.gpu(gpu_index);
  // Step 2 of Section IV-A2: obtain the P2P token for the allocation.
  auto token = dev.get_p2p_token(ptr);
  if (!token.is_ok()) return token.status();
  // Step 3: the P2P driver pins the pages into the PCIe address space.
  return dev.pin_pages(token.value(), ptr, len);
}

Status P2pDriver::unpin(int gpu_index, gpu::DevPtr ptr, std::uint64_t len) {
  if (gpu_index < 0 || gpu_index >= node_.gpu_count()) {
    return {ErrorCode::kInvalidArgument, "no such GPU"};
  }
  return node_.gpu(gpu_index).unpin_pages(ptr, len);
}

DriverHostLayout DriverHostLayout::for_dram_size(std::uint64_t dram_bytes) {
  constexpr std::uint64_t kTableBytes = 1ull << 20;
  TCA_ASSERT(dram_bytes > 2 * kTableBytes);
  return DriverHostLayout{
      .dma_buffer_offset = 0,
      .dma_buffer_bytes = dram_bytes - kTableBytes,
      .desc_table_offset = dram_bytes - kTableBytes,
      .desc_table_bytes = kTableBytes,
  };
}

Peach2Driver::Peach2Driver(node::ComputeNode& node, peach2::Peach2Chip& chip,
                           std::uint64_t reg_base)
    : node_(node),
      chip_(chip),
      reg_base_(reg_base),
      layout_(DriverHostLayout::for_dram_size(node.host_dram().size())),
      p2p_(node),
      channel_sem_(node.cpu().scheduler(), calib::kDmaChannels) {
  for (int ch = 0; ch < calib::kDmaChannels; ++ch) {
    dma_done_[static_cast<std::size_t>(ch)] =
        std::make_unique<sim::Trigger>(node.cpu().scheduler());
    free_channels_.push_back(calib::kDmaChannels - 1 - ch);  // pop() -> 0..
  }

  // Interrupt line: the handler's cost (vector dispatch, ISR prologue, TSC
  // read) is kCompletionInterruptPs; after it the driver observes which
  // channel completed.
  chip_.set_interrupt_handler([this](int channel) {
    node_.cpu().scheduler().schedule_after(
        calib::kCompletionInterruptPs, [this, channel] {
          dma_done_[static_cast<std::size_t>(channel)]->fire();
        });
  });

  // Error interrupt line (AER-flavored): the ISR services the sticky error
  // status after the same vector-dispatch latency as the completion path.
  chip_.set_error_handler([this](std::uint64_t bits) {
    ++error_irqs_;
    node_.cpu().scheduler().schedule_after(
        calib::kCompletionInterruptPs,
        [this, bits] { sim::spawn(error_isr(bits)); });
  });

  // The hardware DMAC fetches the descriptor table with MRds; the fetch
  // latency is modeled inside the DMAC, the bytes are the ones write_table
  // serialized into host DRAM.
  auto fetcher = [this](std::uint64_t table_addr, std::uint32_t count) {
    std::vector<DmaDescriptor> chain(count);
    const std::uint64_t base = table_addr - node::layout::kHostBase;
    for (std::uint32_t i = 0; i < count; ++i) {
      chain[i] = DmaDescriptor::deserialize(node_.host_dram().view(
          base + i * DmaDescriptor::kWireSize, DmaDescriptor::kWireSize));
    }
    return chain;
  };
  for (int ch = 0; ch < calib::kDmaChannels; ++ch) {
    chip_.dmac(ch).set_table_fetcher(fetcher);
  }
}

std::uint64_t Peach2Driver::table_slice_bytes() const {
  return layout_.desc_table_bytes / calib::kDmaChannels;
}

std::uint64_t Peach2Driver::table_offset(int channel) const {
  return layout_.desc_table_offset +
         static_cast<std::uint64_t>(channel) * table_slice_bytes();
}

sim::Task<> Peach2Driver::write_table(
    std::span<const peach2::DmaDescriptor> chain, int channel) {
  const auto image = peach2::serialize_table(chain);
  TCA_ASSERT(image.size() <= table_slice_bytes() - 8);
  node_.host_dram().write(table_offset(channel), image);
  const auto copy_ps = static_cast<TimePs>(
      static_cast<double>(image.size()) / calib::kHostCopyBytesPerSec * 1e12);
  co_await sim::Delay(node_.cpu().scheduler(), copy_ps);
}

sim::Task<> Peach2Driver::write_register(std::uint64_t offset,
                                         std::uint64_t value) {
  std::array<std::byte, 8> bytes;
  std::memcpy(bytes.data(), &value, 8);
  co_await node_.cpu().mmio_store(reg_base_ + offset, bytes);
}

sim::Task<std::uint64_t> Peach2Driver::read_register(std::uint64_t offset) {
  auto data = co_await node_.cpu().mmio_load(reg_base_ + offset, 8);
  std::uint64_t value = 0;
  std::memcpy(&value, data.data(), 8);
  co_return value;
}

sim::Task<> Peach2Driver::error_isr(std::uint64_t bits) {
  error_bits_seen_ |= bits;
  Log::write(LogLevel::kWarn, "driver",
             "error interrupt, status bits " + std::to_string(bits));
  // Acknowledge the serviced bits (write-1-to-clear) so the next raise of
  // the same condition interrupts again.
  co_await write_register(regs::kErrAck, bits);
}

sim::Task<TimePs> Peach2Driver::run_chain(
    std::vector<peach2::DmaDescriptor> chain, int channel, TimePs timeout_ps) {
  const auto ch = static_cast<std::size_t>(channel);
  TCA_ASSERT(!dma_in_flight_[ch] && "channel already has a chain in flight");
  TCA_ASSERT(!chain.empty());
  TCA_ASSERT(chain.size() <= calib::kMaxDescriptors);
  dma_in_flight_[ch] = true;

  co_await write_table(chain, channel);
  co_await write_register(regs::dma_bank(channel, regs::kDmaBankTableAddr),
                          node::layout::kHostBase + table_offset(channel));
  co_await write_register(regs::dma_bank(channel, regs::kDmaBankCount),
                          chain.size());

  dma_done_[ch]->reset();
  // "the clock counter is checked just before DMA start" (Section IV-A).
  const TimePs t0 = node_.cpu().scheduler().now();
  co_await write_register(regs::dma_bank(channel, regs::kDmaBankDoorbell), 1);

  // Chain watchdog. Three cases when it fires: engine busy — abort it, the
  // teardown still raises the completion interrupt, so the wait below
  // finishes; engine done — the interrupt is already in flight, nothing to
  // do; engine idle (doorbell swallowed by a wedged engine) — nothing will
  // ever interrupt, so the watchdog itself releases the wait.
  bool timed_out = false;
  sim::Scheduler::EventId watchdog = sim::Scheduler::kInvalidEvent;
  if (timeout_ps > 0) {
    watchdog = node_.cpu().scheduler().schedule_after(
        timeout_ps, [this, channel, ch, &timed_out] {
          peach2::DmaController& engine = chip_.dmac(channel);
          if ((engine.status() & regs::kDmaStatusDone) != 0) return;
          ++timeouts_;
          timed_out = true;
          Log::write(LogLevel::kWarn, "driver", "chain watchdog expired");
          if (engine.busy()) {
            engine.abort(ErrorCode::kTimedOut);
          } else {
            dma_done_[ch]->fire();
          }
        });
  }

  co_await dma_done_[ch]->wait();
  // "... checked again in the interrupt handler generated by the completion
  // from the DMAC in the PEACH2 driver."
  const TimePs elapsed = node_.cpu().scheduler().now() - t0;
  if (watchdog != sim::Scheduler::kInvalidEvent) node_.cpu().scheduler().cancel(watchdog);

  if (timed_out) {
    last_status_[ch] = Status{ErrorCode::kTimedOut, "chain watchdog expired"};
  } else if ((chip_.dmac(channel).status() & regs::kDmaStatusError) != 0) {
    const std::uint64_t info = chip_.dmac(channel).error_info();
    const auto code = static_cast<ErrorCode>(info >> 32);
    last_status_[ch] =
        Status{code == ErrorCode::kOk ? ErrorCode::kInternal : code,
               "DMA chain error at descriptor " +
                   std::to_string(info & 0xffffffff)};
  } else {
    last_status_[ch] = Status::ok();
  }

  co_await write_register(regs::dma_bank(channel, regs::kDmaBankIntAck), 1);
  dma_in_flight_[ch] = false;
  ++chains_run_;
  if (obs::sampling_enabled()) chain_latency_.add_time(elapsed);
  if (Trace::instance().enabled()) {
    Trace::instance().duration(
        "driver/node" + std::to_string(chip_.node_id()),
        "run_chain[" + std::to_string(chain.size()) + "]@ch" +
            std::to_string(channel),
        t0, t0 + elapsed);
  }
  co_return elapsed;
}

sim::Task<TimePs> Peach2Driver::run_chain_auto(
    std::vector<peach2::DmaDescriptor> chain) {
  co_await channel_sem_.acquire();
  TCA_ASSERT(!free_channels_.empty());
  const int channel = free_channels_.back();  // tca-protocol: acquire(dma-channel)
  free_channels_.pop_back();
  const TimePs elapsed = co_await run_chain(std::move(chain), channel);
  free_channels_.push_back(channel);  // tca-protocol: release(dma-channel)
  channel_sem_.release();
  co_return elapsed;
}

sim::Task<Status> Peach2Driver::run_chain_checked(
    std::vector<peach2::DmaDescriptor> chain) {
  co_await channel_sem_.acquire();
  TCA_ASSERT(!free_channels_.empty());
  const int channel = free_channels_.back();  // tca-protocol: acquire(dma-channel)
  free_channels_.pop_back();
  co_await run_chain(std::move(chain), channel);
  const Status status = chain_status(channel);
  free_channels_.push_back(channel);  // tca-protocol: release(dma-channel)
  channel_sem_.release();
  co_return status;
}

sim::Task<Peach2Driver::ChainResult> Peach2Driver::run_chain_reliable(
    std::vector<peach2::DmaDescriptor> chain, RetryPolicy policy) {
  TCA_ASSERT(policy.max_attempts > 0);
  co_await channel_sem_.acquire();
  TCA_ASSERT(!free_channels_.empty());
  const int channel = free_channels_.back();  // tca-protocol: acquire(dma-channel)
  free_channels_.pop_back();

  ChainResult result;
  TimePs backoff = policy.backoff_base_ps;
  for (std::uint32_t attempt = 1; attempt <= policy.max_attempts; ++attempt) {
    result.attempts = attempt;
    result.elapsed = co_await run_chain(chain, channel, policy.timeout_ps);
    result.status = chain_status(channel);
    if (result.status.is_ok()) break;
    if (attempt == policy.max_attempts) break;
    if (policy.abort_check) {
      if (Status verdict = policy.abort_check(); !verdict.is_ok()) {
        result.status = verdict;
        break;
      }
    }
    // Back off before re-ringing the doorbell: gives the NIOS firmware and
    // fabric manager time to fail the ring over before the next attempt.
    ++retries_;
    Log::write(LogLevel::kWarn, "driver",
               "chain failed (" + result.status.to_string() +
                   "), retrying after backoff");
    co_await sim::Delay(node_.cpu().scheduler(), backoff);
    backoff *= policy.backoff_multiplier;
  }

  free_channels_.push_back(channel);  // tca-protocol: release(dma-channel)
  channel_sem_.release();
  co_return result;
}

sim::Task<TimePs> Peach2Driver::run_immediate(peach2::DmaDescriptor desc,
                                              int channel) {
  const auto ch = static_cast<std::size_t>(channel);
  TCA_ASSERT(!dma_in_flight_[ch] && "channel already has a chain in flight");
  dma_in_flight_[ch] = true;

  co_await write_register(regs::dma_bank(channel, regs::kDmaBankImmSrc),
                          desc.src);
  co_await write_register(regs::dma_bank(channel, regs::kDmaBankImmDst),
                          desc.dst);
  co_await write_register(
      regs::dma_bank(channel, regs::kDmaBankImmLen),
      static_cast<std::uint64_t>(desc.length) |
          (static_cast<std::uint64_t>(desc.direction) << 32));

  dma_done_[ch]->reset();
  const TimePs t0 = node_.cpu().scheduler().now();
  co_await write_register(regs::dma_bank(channel, regs::kDmaBankImmKick), 1);
  co_await dma_done_[ch]->wait();
  const TimePs elapsed = node_.cpu().scheduler().now() - t0;

  if ((chip_.dmac(channel).status() & regs::kDmaStatusError) != 0) {
    const std::uint64_t info = chip_.dmac(channel).error_info();
    const auto code = static_cast<ErrorCode>(info >> 32);
    last_status_[ch] =
        Status{code == ErrorCode::kOk ? ErrorCode::kInternal : code,
               "immediate DMA error"};
  } else {
    last_status_[ch] = Status::ok();
  }

  co_await write_register(regs::dma_bank(channel, regs::kDmaBankIntAck), 1);
  dma_in_flight_[ch] = false;
  ++chains_run_;
  if (obs::sampling_enabled()) chain_latency_.add_time(elapsed);
  co_return elapsed;
}

sim::Task<TimePs> Peach2Driver::run_chain_polled(
    std::vector<peach2::DmaDescriptor> chain, int channel) {
  const auto ch = static_cast<std::size_t>(channel);
  TCA_ASSERT(!dma_in_flight_[ch] && "channel already has a chain in flight");
  TCA_ASSERT(!chain.empty() && chain.size() <= calib::kMaxDescriptors);
  dma_in_flight_[ch] = true;

  // The completion word lives just past this channel's table slice.
  const std::uint64_t word_offset =
      table_offset(channel) + table_slice_bytes() - 8;
  std::uint64_t zero = 0;
  node_.host_dram().write(word_offset, std::as_bytes(std::span(&zero, 1)));

  co_await write_table(chain, channel);
  co_await write_register(regs::dma_bank(channel, regs::kDmaBankWriteback),
                          node::layout::kHostBase + word_offset);
  co_await write_register(regs::dma_bank(channel, regs::kDmaBankTableAddr),
                          node::layout::kHostBase + table_offset(channel));
  co_await write_register(regs::dma_bank(channel, regs::kDmaBankCount),
                          chain.size());

  const TimePs t0 = node_.cpu().scheduler().now();
  co_await write_register(regs::dma_bank(channel, regs::kDmaBankDoorbell), 1);
  co_await node_.cpu().poll_host_until_change(word_offset, 0);
  const TimePs elapsed = node_.cpu().scheduler().now() - t0;

  // Restore interrupt mode for subsequent run_chain callers.
  co_await write_register(regs::dma_bank(channel, regs::kDmaBankWriteback),
                          0);
  dma_in_flight_[ch] = false;
  ++chains_run_;
  if (obs::sampling_enabled()) chain_latency_.add_time(elapsed);
  co_return elapsed;
}

sim::Task<> Peach2Driver::pio_store(std::uint64_t global_addr,
                                    std::span<const std::byte> data) {
  // The window is mmapped into user space; a store is an ordinary MMIO
  // write whose bus address equals the global TCA address.
  ++pio_stores_;
  pio_bytes_ += data.size();
  co_await node_.cpu().mmio_store(global_addr, data);
}

sim::Task<> Peach2Driver::pio_store_u32(std::uint64_t global_addr,
                                        std::uint32_t value) {
  std::array<std::byte, 4> bytes;
  std::memcpy(bytes.data(), &value, 4);
  co_await pio_store(global_addr, bytes);
}

std::uint64_t Peach2Driver::host_buffer_global(std::uint64_t offset) const {
  TCA_ASSERT(offset < layout_.dma_buffer_bytes);
  return chip_.layout().encode(chip_.node_id(), peach2::TcaTarget::kHost,
                               layout_.dma_buffer_offset + offset);
}

std::uint64_t Peach2Driver::gpu_global(int gpu_index, gpu::DevPtr ptr) const {
  TCA_ASSERT(gpu_index == 0 || gpu_index == 1);
  return chip_.layout().encode(chip_.node_id(),
                               gpu_index == 0 ? peach2::TcaTarget::kGpu0
                                              : peach2::TcaTarget::kGpu1,
                               ptr);
}

std::uint64_t Peach2Driver::internal_global(std::uint64_t offset) const {
  return chip_.internal_block_base() + peach2::Peach2Chip::kInternalRamOffset +
         offset;
}

}  // namespace tca::driver
