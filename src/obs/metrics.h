// Fabric-wide observability layer (`tca::obs`).
//
// The paper's evaluation is an exercise in observing where bytes and
// nanoseconds go — link efficiency (Fig. 9), descriptor-fetch overhead
// (Fig. 8), per-hop cost (Fig. 12). APEnet+ attributes its tuning wins to
// per-port/per-channel hardware counters; this module gives the simulator
// the same first-class metrics surface:
//
//  * MetricRegistry — typed counters, gauges, and latency histograms under
//    hierarchical dotted names ("node0.peach2.dmac.ch2.descriptors"), with
//    JSON snapshot export and chrome://tracing counter events riding the
//    interned Trace.
//  * A process-wide sampling gate (`sampling_enabled`) so hot paths record
//    latency samples only when observability is on: with sampling off the
//    simulator's per-event cost is exactly what it was before this layer
//    existed (plain integer counters, no allocation).
//
// Components keep cheap raw counters as members (the "hardware counters");
// each layer exposes an export hook (fabric::SubCluster::export_metrics,
// api::Runtime::export_metrics) that pulls them into a registry at snapshot
// time. Snapshots are therefore free until requested.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/error.h"
#include "common/stats.h"
#include "common/units.h"

namespace tca::obs {

namespace detail {
inline bool g_sampling_enabled = false;
}  // namespace detail

/// Global gate for per-event *sample* recording (latency histograms). Raw
/// counters are always on — an integer increment is cheaper than the check
/// would be — but sample series grow memory per event, so they default off.
[[nodiscard]] inline bool sampling_enabled() {
  return detail::g_sampling_enabled;
}
inline void set_sampling_enabled(bool on) { detail::g_sampling_enabled = on; }

/// Monotonically increasing 64-bit event/byte count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  void set(std::uint64_t v) { value_ = v; }
  [[nodiscard]] std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Point-in-time measurement (queue depth, ratio, configuration value).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  [[nodiscard]] double value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  double value_ = 0;
};

/// Latency/size distribution: streaming moments (RunningStats) plus exact
/// percentiles (SampleSeries keeps every sample — simulator runs record at
/// most a few hundred thousand).
class Histogram {
 public:
  void record(double x) {
    stats_.add(x);
    samples_.add(x);
  }
  void record_series(const SampleSeries& series) {
    for (double s : series.samples()) record(s);
  }

  [[nodiscard]] std::uint64_t count() const { return stats_.count(); }
  [[nodiscard]] double mean() const { return stats_.mean(); }
  [[nodiscard]] double min() const { return stats_.min(); }
  [[nodiscard]] double max() const { return stats_.max(); }
  [[nodiscard]] double percentile(double p) const {
    return samples_.percentile(p);
  }
  void reset() { *this = Histogram{}; }

 private:
  RunningStats stats_;
  SampleSeries samples_;
};

/// The JSON-visible summary of a histogram (what snapshots round-trip).
struct HistogramSummary {
  std::uint64_t count = 0;
  double mean = 0;
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

/// A parsed metrics snapshot — the JSON document as plain maps. Produced by
/// MetricRegistry::snapshot() and by from_json() (round-trip), consumed by
/// tests and sidecar tooling.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSummary> histograms;

  /// Parses a document previously produced by MetricRegistry::to_json().
  /// Minimal, schema-specific JSON reader — not a general-purpose parser.
  static Result<MetricsSnapshot> from_json(std::string_view json);
};

/// Central registry: find-or-create metrics by hierarchical name. Returned
/// references are stable for the registry's lifetime (node-based storage),
/// so instrumentation sites may cache them. Iteration is name-sorted, which
/// makes JSON output deterministic.
class MetricRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Lookup without creation; 0 / empty summary when absent (tests).
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;
  [[nodiscard]] double gauge_value(std::string_view name) const;
  [[nodiscard]] bool has_counter(std::string_view name) const;
  [[nodiscard]] bool has_histogram(std::string_view name) const;

  [[nodiscard]] std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Zeroes every value but keeps the registered names (so a long-running
  /// harness can diff intervals without re-registering).
  void reset();
  /// Drops everything.
  void clear();

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Serializes the snapshot as a JSON document:
  ///   {"meta": {"schema": "tca-metrics-v1"},
  ///    "counters": {...}, "gauges": {...}, "histograms": {...}}
  [[nodiscard]] std::string to_json() const;
  Status write_json(const std::string& path) const;

  /// Emits one chrome://tracing counter event per counter/gauge at simulated
  /// time `at`, riding the interned Trace (no-op when tracing is disabled).
  void emit_trace_counters(TimePs at) const;

 private:
  // std::map: stable references (node-based) + sorted deterministic dumps.
  // Transparent comparator allows string_view lookups without a copy.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace tca::obs
