#include "obs/metrics.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/trace.h"

namespace tca::obs {

namespace {

template <typename Map>
auto& find_or_create(Map& map, std::string_view name) {
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name), typename Map::mapped_type{}).first;
  }
  return it->second;
}

// JSON number formatting: integers render without a fraction so counter
// values round-trip exactly; non-finite doubles (empty histogram min/max)
// degrade to 0, as JSON has no Inf/NaN.
void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "0";
    return;
  }
  if (v == std::floor(v) && std::abs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out += buf;
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_quoted(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
}

// --- Minimal recursive-descent reader for the documents this module emits --

struct JsonReader {
  std::string_view text;
  std::size_t pos = 0;
  bool failed = false;

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    failed = true;
    return false;
  }

  [[nodiscard]] bool peek(char c) {
    skip_ws();
    return pos < text.size() && text[pos] == c;
  }

  std::string parse_string() {
    std::string out;
    if (!consume('"')) return out;
    while (pos < text.size() && text[pos] != '"') {
      char c = text[pos++];
      if (c == '\\' && pos < text.size()) {
        char e = text[pos++];
        switch (e) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          default: out += e;
        }
      } else {
        out += c;
      }
    }
    if (pos >= text.size()) {
      failed = true;
      return out;
    }
    ++pos;  // closing quote
    return out;
  }

  double parse_number() {
    skip_ws();
    std::size_t start = pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '-' || text[pos] == '+' || text[pos] == '.' ||
            text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
    }
    if (pos == start) {
      failed = true;
      return 0;
    }
    return std::strtod(std::string(text.substr(start, pos - start)).c_str(),
                       nullptr);
  }

  /// Walks `{ "key": <number>, ... }` invoking `fn(key, value)`.
  template <typename Fn>
  void parse_number_object(Fn&& fn) {
    if (!consume('{')) return;
    if (peek('}')) {
      ++pos;
      return;
    }
    while (!failed) {
      std::string key = parse_string();
      if (!consume(':')) return;
      double v = parse_number();
      if (failed) return;
      fn(key, v);
      if (peek(',')) {
        ++pos;
        continue;
      }
      consume('}');
      return;
    }
  }
};

}  // namespace

Counter& MetricRegistry::counter(std::string_view name) {
  return find_or_create(counters_, name);
}

Gauge& MetricRegistry::gauge(std::string_view name) {
  return find_or_create(gauges_, name);
}

Histogram& MetricRegistry::histogram(std::string_view name) {
  return find_or_create(histograms_, name);
}

std::uint64_t MetricRegistry::counter_value(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

double MetricRegistry::gauge_value(std::string_view name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second.value();
}

bool MetricRegistry::has_counter(std::string_view name) const {
  return counters_.find(name) != counters_.end();
}

bool MetricRegistry::has_histogram(std::string_view name) const {
  return histograms_.find(name) != histograms_.end();
}

void MetricRegistry::reset() {
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

void MetricRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

MetricsSnapshot MetricRegistry::snapshot() const {
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c.value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g.value();
  for (const auto& [name, h] : histograms_) {
    HistogramSummary s;
    s.count = h.count();
    s.mean = h.mean();
    s.min = h.min();
    s.max = h.max();
    if (s.count > 0) {
      s.p50 = h.percentile(50.0);
      s.p95 = h.percentile(95.0);
      s.p99 = h.percentile(99.0);
    }
    snap.histograms[name] = s;
  }
  return snap;
}

std::string MetricRegistry::to_json() const {
  const MetricsSnapshot snap = snapshot();
  std::string out;
  out.reserve(256 + 64 * (counters_.size() + gauges_.size()) +
              192 * histograms_.size());
  out += "{\n  \"meta\": {\"schema\": \"tca-metrics-v1\"},\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_quoted(out, name);
    out += ": ";
    append_number(out, static_cast<double>(v));
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_quoted(out, name);
    out += ": ";
    append_number(out, v);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_quoted(out, name);
    out += ": {\"count\": ";
    append_number(out, static_cast<double>(h.count));
    out += ", \"mean\": ";
    append_number(out, h.mean);
    out += ", \"min\": ";
    append_number(out, h.min);
    out += ", \"max\": ";
    append_number(out, h.max);
    out += ", \"p50\": ";
    append_number(out, h.p50);
    out += ", \"p95\": ";
    append_number(out, h.p95);
    out += ", \"p99\": ";
    append_number(out, h.p99);
    out += "}";
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

Status MetricRegistry::write_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    return {ErrorCode::kInvalidArgument,
            "cannot open metrics output file: " + path};
  }
  const std::string json = to_json();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return Status::ok();
}

void MetricRegistry::emit_trace_counters(TimePs at) const {
  Trace& trace = Trace::instance();
  if (!trace.enabled()) return;
  const Trace::StrId track = trace.intern("metrics");
  for (const auto& [name, c] : counters_) {
    trace.counter(track, trace.intern(name), at,
                  static_cast<double>(c.value()));
  }
  for (const auto& [name, g] : gauges_) {
    trace.counter(track, trace.intern(name), at, g.value());
  }
}

Result<MetricsSnapshot> MetricsSnapshot::from_json(std::string_view json) {
  MetricsSnapshot snap;
  JsonReader r{json};
  if (!r.consume('{')) {
    return Status{ErrorCode::kInvalidArgument, "metrics JSON: expected '{'"};
  }
  bool saw_meta = false;
  while (!r.failed) {
    std::string section = r.parse_string();
    if (r.failed || !r.consume(':')) break;
    if (section == "meta") {
      bool schema_ok = false;
      // meta values are strings, not numbers; walk it by hand.
      if (r.consume('{')) {
        while (!r.failed && !r.peek('}')) {
          std::string key = r.parse_string();
          if (!r.consume(':')) break;
          std::string value = r.parse_string();
          if (key == "schema" && value == "tca-metrics-v1") schema_ok = true;
          if (r.peek(',')) ++r.pos;
        }
        r.consume('}');
      }
      if (!schema_ok) {
        return Status{ErrorCode::kInvalidArgument,
                      "metrics JSON: missing or unknown schema"};
      }
      saw_meta = true;
    } else if (section == "counters") {
      r.parse_number_object([&snap](const std::string& k, double v) {
        snap.counters[k] = static_cast<std::uint64_t>(v);
      });
    } else if (section == "gauges") {
      r.parse_number_object(
          [&snap](const std::string& k, double v) { snap.gauges[k] = v; });
    } else if (section == "histograms") {
      if (!r.consume('{')) break;
      if (r.peek('}')) {
        ++r.pos;
      } else {
        while (!r.failed) {
          std::string name = r.parse_string();
          if (!r.consume(':')) break;
          HistogramSummary h;
          r.parse_number_object([&h](const std::string& k, double v) {
            if (k == "count") h.count = static_cast<std::uint64_t>(v);
            else if (k == "mean") h.mean = v;
            else if (k == "min") h.min = v;
            else if (k == "max") h.max = v;
            else if (k == "p50") h.p50 = v;
            else if (k == "p95") h.p95 = v;
            else if (k == "p99") h.p99 = v;
          });
          snap.histograms[name] = h;
          if (r.peek(',')) {
            ++r.pos;
            continue;
          }
          r.consume('}');
          break;
        }
      }
    } else {
      return Status{ErrorCode::kInvalidArgument,
                    "metrics JSON: unknown section '" + section + "'"};
    }
    if (r.peek(',')) {
      ++r.pos;
      continue;
    }
    r.consume('}');
    break;
  }
  if (r.failed) {
    return Status{ErrorCode::kInvalidArgument, "metrics JSON: parse error"};
  }
  if (!saw_meta) {
    return Status{ErrorCode::kInvalidArgument,
                  "metrics JSON: missing meta section"};
  }
  return snap;
}

}  // namespace tca::obs
