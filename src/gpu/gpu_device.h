// GPU device model (NVIDIA K20-class, Kepler).
//
// The GPU participates in the TCA evaluation exclusively through its PCIe
// behaviour (Section III-C / IV-A2):
//
//  * BAR1 aperture: device memory mapped into PCIe space at page granularity
//    by the P2P driver (GPUDirect Support for RDMA). Only *pinned* pages are
//    accessible; access to unpinned pages is dropped and counted, matching
//    the Unsupported-Request semantics of real hardware.
//  * Posted writes sink at line rate: "the GPU is assumed to be of
//    sufficient size for the request queue" (Fig. 12 discussion).
//  * Reads are served by a serialized translation+fetch pipeline at
//    kGpuReadServicePs per 256 B chunk, reproducing the paper's asymmetry:
//    "the maximum DMA read performance is only 830 Mbytes/sec".
//  * A copy engine provides cudaMemcpy-style H2D/D2H transfers with fixed
//    driver overhead plus rate; only the conventional-path baseline uses it.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "calib/calibration.h"
#include "common/error.h"
#include "memory/dram.h"
#include "pcie/link.h"
#include "sim/scheduler.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace tca::gpu {

/// Device-memory pointer (byte offset into GDDR).
using DevPtr = std::uint64_t;

/// Opaque P2P token pair, mirroring CUDA's CU_POINTER_ATTRIBUTE_P2P_TOKENS.
/// Obtained per allocation and consumed by the P2P driver when pinning.
struct P2pToken {
  std::uint64_t p2p_token = 0;
  std::uint32_t va_space_token = 0;
};

struct GpuConfig {
  std::uint64_t memory_bytes = 5ull << 30;  ///< K20: 5 GB GDDR5
  std::uint64_t bar1_base = 0;              ///< set by the node's address map
  TimePs write_commit_ps = units::ns(40);   ///< GDDR write commit
  int socket = 0;                           ///< CPU socket the GPU hangs off
};

class GpuDevice : public pcie::TlpSink {
 public:
  GpuDevice(sim::Scheduler& sched, pcie::DeviceId id, const GpuConfig& config);

  [[nodiscard]] pcie::DeviceId id() const { return id_; }
  [[nodiscard]] const GpuConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint64_t bar1_base() const { return cfg_.bar1_base; }
  [[nodiscard]] std::uint64_t bar1_size() const { return gddr_.size(); }

  /// Attaches the device side of the PCIe link toward the root complex.
  void attach(pcie::LinkPort& port);

  // --- CUDA-runtime-like surface (what the TCA software stack uses) -------

  /// cuMemAlloc: bump allocation out of GDDR.
  Result<DevPtr> mem_alloc(std::uint64_t bytes);

  /// cuPointerGetAttribute(CU_POINTER_ATTRIBUTE_P2P_TOKENS, ...).
  Result<P2pToken> get_p2p_token(DevPtr ptr) const;

  /// P2P-driver pin: exposes [ptr, ptr+len) through BAR1 at page
  /// granularity. Returns the PCIe bus address of `ptr`.
  Result<std::uint64_t> pin_pages(const P2pToken& token, DevPtr ptr,
                                  std::uint64_t len);

  /// Unpins previously pinned pages.
  Status unpin_pages(DevPtr ptr, std::uint64_t len);

  [[nodiscard]] bool is_pinned(DevPtr ptr, std::uint64_t len) const;

  // --- Direct (functional) access, used by tests and kernels --------------

  void poke(DevPtr ptr, std::span<const std::byte> data) {
    gddr_.write(ptr, data);
  }
  void peek(DevPtr ptr, std::span<std::byte> out) const {
    gddr_.read(ptr, out);
  }
  [[nodiscard]] std::span<const std::byte> view(DevPtr ptr,
                                                std::uint64_t len) const {
    return gddr_.view(ptr, len);
  }

  // --- Copy engine (cudaMemcpy semantics, used by the baseline path) ------

  /// Host-to-device copy: fixed overhead + bytes at the engine rate.
  sim::Task<> memcpy_h2d(std::span<const std::byte> src, DevPtr dst);

  /// Device-to-host copy.
  sim::Task<> memcpy_d2h(DevPtr src, std::span<std::byte> dst);

  // --- TlpSink -------------------------------------------------------------

  void on_tlp(pcie::Tlp tlp, pcie::LinkPort& port) override;

  // --- Introspection -------------------------------------------------------

  [[nodiscard]] std::uint64_t access_errors() const { return access_errors_; }
  [[nodiscard]] std::uint64_t writes_received() const { return writes_rx_; }
  [[nodiscard]] std::uint64_t reads_received() const { return reads_rx_; }

 private:
  sim::Task<> read_service_loop();
  void send_or_queue(pcie::Tlp tlp);
  void pump_tx();

  /// Translates a BAR1 bus address to a GDDR offset; nullopt if out of the
  /// aperture or not pinned.
  [[nodiscard]] std::optional<DevPtr> translate(std::uint64_t bus_addr,
                                                std::uint32_t len) const;

  sim::Scheduler& sched_;
  pcie::DeviceId id_;
  GpuConfig cfg_;
  mem::Dram gddr_;
  pcie::LinkPort* port_ = nullptr;

  std::uint64_t alloc_cursor_ = 0;
  std::vector<bool> pinned_;  // one flag per kGpuPinPageBytes page

  std::deque<pcie::Tlp> read_queue_;
  sim::Trigger read_pending_;
  sim::Task<> read_task_;

  std::deque<pcie::Tlp> tx_queue_;

  std::uint64_t access_errors_ = 0;
  std::uint64_t writes_rx_ = 0;
  std::uint64_t reads_rx_ = 0;
};

}  // namespace tca::gpu
