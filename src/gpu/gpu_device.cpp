#include "gpu/gpu_device.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace tca::gpu {

using calib::kGpuPinPageBytes;
using calib::kGpuReadChunkBytes;
using calib::kGpuReadLatencyPs;
using calib::kGpuReadServicePs;

GpuDevice::GpuDevice(sim::Scheduler& sched, pcie::DeviceId id,
                     const GpuConfig& config)
    : sched_(sched),
      id_(id),
      cfg_(config),
      gddr_(config.memory_bytes),
      pinned_((config.memory_bytes + kGpuPinPageBytes - 1) / kGpuPinPageBytes,
              false),
      read_pending_(sched),
      read_task_(read_service_loop()) {}

void GpuDevice::attach(pcie::LinkPort& port) {
  port_ = &port;
  port.set_sink(this);
  port.set_tx_ready([this] { pump_tx(); });
}

Result<DevPtr> GpuDevice::mem_alloc(std::uint64_t bytes) {
  if (bytes == 0) return Status{ErrorCode::kInvalidArgument, "zero-size alloc"};
  // 256 B alignment like cuMemAlloc.
  const std::uint64_t base = (alloc_cursor_ + 255) & ~255ull;
  if (base + bytes > gddr_.size()) {
    return Status{ErrorCode::kResourceExhausted, "GDDR exhausted"};
  }
  alloc_cursor_ = base + bytes;
  return base;
}

Result<P2pToken> GpuDevice::get_p2p_token(DevPtr ptr) const {
  if (ptr >= gddr_.size()) {
    return Status{ErrorCode::kOutOfRange, "pointer outside device memory"};
  }
  // Token derived from the allocation address; the P2P driver validates it.
  return P2pToken{.p2p_token = 0x7c00'0000'0000'0000ull | ptr,
                  .va_space_token = static_cast<std::uint32_t>(id_)};
}

Result<std::uint64_t> GpuDevice::pin_pages(const P2pToken& token, DevPtr ptr,
                                           std::uint64_t len) {
  if (token.va_space_token != static_cast<std::uint32_t>(id_) ||
      (token.p2p_token >> 56) != 0x7c) {
    return Status{ErrorCode::kPermissionDenied, "invalid P2P token"};
  }
  if (len == 0 || ptr + len > gddr_.size()) {
    return Status{ErrorCode::kOutOfRange, "pin range outside device memory"};
  }
  const std::uint64_t first = ptr / kGpuPinPageBytes;
  const std::uint64_t last = (ptr + len - 1) / kGpuPinPageBytes;
  for (std::uint64_t p = first; p <= last; ++p) pinned_[p] = true;
  return cfg_.bar1_base + ptr;
}

Status GpuDevice::unpin_pages(DevPtr ptr, std::uint64_t len) {
  if (len == 0 || ptr + len > gddr_.size()) {
    return {ErrorCode::kOutOfRange, "unpin range outside device memory"};
  }
  const std::uint64_t first = ptr / kGpuPinPageBytes;
  const std::uint64_t last = (ptr + len - 1) / kGpuPinPageBytes;
  for (std::uint64_t p = first; p <= last; ++p) pinned_[p] = false;
  return Status::ok();
}

bool GpuDevice::is_pinned(DevPtr ptr, std::uint64_t len) const {
  if (len == 0 || ptr + len > gddr_.size()) return false;
  const std::uint64_t first = ptr / kGpuPinPageBytes;
  const std::uint64_t last = (ptr + len - 1) / kGpuPinPageBytes;
  for (std::uint64_t p = first; p <= last; ++p) {
    if (!pinned_[p]) return false;
  }
  return true;
}

std::optional<DevPtr> GpuDevice::translate(std::uint64_t bus_addr,
                                           std::uint32_t len) const {
  if (bus_addr < cfg_.bar1_base) return std::nullopt;
  const std::uint64_t offset = bus_addr - cfg_.bar1_base;
  if (offset + len > gddr_.size()) return std::nullopt;
  if (!is_pinned(offset, len)) return std::nullopt;
  return offset;
}

sim::Task<> GpuDevice::memcpy_h2d(std::span<const std::byte> src, DevPtr dst) {
  co_await sim::Delay(sched_, calib::kCudaMemcpyOverheadPs);
  const auto copy_ps = static_cast<TimePs>(std::llround(
      static_cast<double>(src.size()) / calib::kCudaMemcpyBytesPerSec * 1e12));
  co_await sim::Delay(sched_, copy_ps);
  gddr_.write(dst, src);
}

sim::Task<> GpuDevice::memcpy_d2h(DevPtr src, std::span<std::byte> dst) {
  co_await sim::Delay(sched_, calib::kCudaMemcpyOverheadPs);
  const auto copy_ps = static_cast<TimePs>(std::llround(
      static_cast<double>(dst.size()) / calib::kCudaMemcpyBytesPerSec * 1e12));
  co_await sim::Delay(sched_, copy_ps);
  gddr_.read(src, dst);
}

// tca-protocol: owns(rx-credit)
void GpuDevice::on_tlp(pcie::Tlp tlp, pcie::LinkPort& port) {
  const std::uint64_t wire = tlp.wire_bytes();
  switch (tlp.type) {
    case pcie::TlpType::kMemWrite: {
      ++writes_rx_;
      auto dev = translate(tlp.address,
                           static_cast<std::uint32_t>(tlp.payload.size()));
      if (!dev) {
        ++access_errors_;
        Log::write(LogLevel::kWarn, "gpu",
                   "dropped write to unpinned/out-of-aperture address");
      } else {
        // Deep request queue: commit after a small fixed latency; the queue
        // absorbs posted writes at line rate so credits return immediately.
        const DevPtr offset = *dev;
        auto data = std::move(tlp.payload);
        sched_.schedule_after(
            cfg_.write_commit_ps,
            // tca-protocol: commit-point, owns(commit-ack)
            [this, offset, d = std::move(data),
             notifier = tlp.commit_notifier, ack = tlp.ack_address,
             tag = tlp.tag] {
              gddr_.write(offset, d);  // tca-protocol: commit
              // tca-protocol: release(commit-ack)
              if (notifier != nullptr) notifier->on_write_commit(ack, tag);
            });
      }
      port.release_rx(wire);
      break;
    }
    case pcie::TlpType::kMemRead: {
      ++reads_rx_;
      read_queue_.push_back(std::move(tlp));
      read_pending_.pulse();
      port.release_rx(wire);
      break;
    }
    default:
      // Completions and vendor messages: GPUs never issue MRd in this model
      // and PEARL messages target PEACH2. The explicit default keeps the
      // rx-credit proof total — every inbound TLP returns its credits.
      ++access_errors_;
      port.release_rx(wire);
      break;
  }
}

sim::Task<> GpuDevice::read_service_loop() {
  // Serialized translation + GDDR fetch pipeline: one kGpuReadChunkBytes
  // chunk per kGpuReadServicePs. This occupancy is what caps DMA-read
  // bandwidth from the GPU at ~830 MB/s (Figure 7, "GPU (read)").
  for (;;) {
    while (read_queue_.empty()) {
      co_await read_pending_.wait();
    }
    pcie::Tlp req = std::move(read_queue_.front());
    read_queue_.pop_front();

    auto dev = translate(req.address, req.length);
    std::uint32_t remaining = req.length;
    while (remaining > 0) {
      const std::uint32_t chunk = std::min(
          remaining, std::min(kGpuReadChunkBytes, calib::kMaxPayloadBytes));
      co_await sim::Delay(sched_, kGpuReadServicePs);
      std::vector<std::byte> data(chunk);
      if (dev) {
        gddr_.read(*dev + (req.length - remaining), data);
      } else {
        ++access_errors_;
        std::fill(data.begin(), data.end(), std::byte{0xFF});
      }
      pcie::Tlp cpl = pcie::Tlp::completion(req, data, remaining);
      // In-flight pipeline latency: delays delivery, does not occupy the
      // translation unit.
      sched_.schedule_after(kGpuReadLatencyPs,
                            [this, c = std::move(cpl)]() mutable {
                              send_or_queue(std::move(c));
                            });
      remaining -= chunk;
    }
  }
}

void GpuDevice::send_or_queue(pcie::Tlp tlp) {
  tx_queue_.push_back(std::move(tlp));
  pump_tx();
}

void GpuDevice::pump_tx() {
  TCA_ASSERT(port_ != nullptr);
  while (!tx_queue_.empty() && port_->can_send(tx_queue_.front())) {
    port_->send(std::move(tx_queue_.front()));
    tx_queue_.pop_front();
  }
}

}  // namespace tca::gpu
