#include "api/tca.h"

#include <algorithm>
#include <cstring>

namespace tca::api {

using peach2::DmaDescriptor;
using peach2::DmaDirection;
using peach2::TcaTarget;

fabric::TopologySpec Runtime::resolved_topology(const TcaConfig& config) {
  if (!config.spec.empty()) return config.spec;
  // One release of compatibility for the pre-TopologySpec enum surface.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  return fabric::TopologySpec::from_legacy(config.topology,
                                           config.node_count);
#pragma GCC diagnostic pop
}

Status Runtime::validate_config(const TcaConfig& config) {
  // Per-topology shape rules (ring [2, 16], torus extents/route capacity)
  // live with the spec itself.
  const fabric::TopologySpec spec = resolved_topology(config);
  if (Status st = spec.validate(); !st.is_ok()) return st;
  // The address window must still partition across the nodes.
  auto layout = peach2::TcaLayout::create(
      calib::kTcaWindowBase, calib::kTcaWindowBytes, spec.node_count());
  if (!layout.is_ok()) return layout.status();
  if (config.node_config.gpu_count < 1 || config.node_config.gpu_count > 4) {
    return {ErrorCode::kInvalidArgument,
            "per-node GPU count must be 1..4 (two per socket)"};
  }
  // The driver carves its descriptor table out of the last megabyte of host
  // DRAM (DriverHostLayout); anything smaller cannot hold a DMA buffer.
  if (config.node_config.host_backing_bytes <= 2ull << 20) {
    return {ErrorCode::kInvalidArgument,
            "host backing store must exceed 2 MiB (descriptor table + DMA "
            "buffer)"};
  }
  if (config.node_config.gpu_backing_bytes == 0) {
    return {ErrorCode::kInvalidArgument, "GPU backing store must be > 0"};
  }
  // Fault-plan events must name resources the resolved fabric actually has
  // (an out-of-range cable would never fire and the campaign would silently
  // test nothing).
  if (Status st = config.fault_plan.validate(spec); !st.is_ok()) return st;
  return Status::ok();
}

Result<Runtime> Runtime::create(sim::Scheduler& sched,
                                const TcaConfig& config) {
  if (Status st = validate_config(config); !st.is_ok()) return st;
  return Runtime(sched, config);
}

Runtime::Runtime(sim::Scheduler& sched, const TcaConfig& config)
    : sched_(sched),
      cluster_((TCA_ASSERT(validate_config(config).is_ok()),
                std::make_unique<fabric::SubCluster>(
                    sched, fabric::SubClusterConfig{
                               .spec = resolved_topology(config),
                               .node_config = config.node_config,
                               .cable_bit_error_rate =
                                   config.cable_bit_error_rate,
                               .fault_plan = config.fault_plan,
                               .enable_failover = config.enable_failover,
                           }))),
      host_alloc_cursor_(cluster_->size(), 0) {}

Result<Buffer> Runtime::alloc_host(std::uint32_t node, std::uint64_t bytes) {
  if (node >= node_count()) {
    return Status{ErrorCode::kInvalidArgument, "no such node"};
  }
  if (bytes == 0) {
    return Status{ErrorCode::kInvalidArgument, "zero-size buffer"};
  }
  auto& cursor = host_alloc_cursor_[node];
  const std::uint64_t base = (cursor + 255) & ~255ull;
  const auto& region = cluster_->driver(node).host_layout();
  if (base + bytes > region.dma_buffer_bytes) {
    return Status{ErrorCode::kResourceExhausted, "host DMA region exhausted"};
  }
  cursor = base + bytes;
  return Buffer{.node = node,
                .target = TcaTarget::kHost,
                .block_offset = region.dma_buffer_offset + base,
                .size = bytes};
}

Result<Buffer> Runtime::alloc_gpu(std::uint32_t node, int gpu,
                                  std::uint64_t bytes) {
  if (node >= node_count()) {
    return Status{ErrorCode::kInvalidArgument, "no such node"};
  }
  if (gpu != 0 && gpu != 1) {
    return Status{ErrorCode::kInvalidArgument,
                  "PEACH2 reaches only GPU0/GPU1 (QPI crossing prohibited)"};
  }
  auto ptr = cluster_->node(node).gpu(gpu).mem_alloc(bytes);
  if (!ptr.is_ok()) return ptr.status();
  auto pinned = cluster_->driver(node).p2p().pin(gpu, ptr.value(), bytes);
  if (!pinned.is_ok()) return pinned.status();
  return Buffer{.node = node,
                .target = gpu == 0 ? TcaTarget::kGpu0 : TcaTarget::kGpu1,
                .block_offset = ptr.value(),
                .size = bytes};
}

std::uint64_t Runtime::global_addr(const Buffer& buf,
                                   std::uint64_t offset) const {
  return cluster_->layout().encode(buf.node, buf.target,
                                  buf.block_offset + offset);
}

Status Runtime::validate(const Buffer& buf, std::uint64_t offset,
                         std::uint64_t bytes) const {
  if (buf.node >= node_count()) {
    return {ErrorCode::kInvalidArgument, "buffer on unknown node"};
  }
  if (offset + bytes > buf.size) {
    return {ErrorCode::kOutOfRange, "access outside buffer"};
  }
  return Status::ok();
}

Status Runtime::check_reachable(std::uint32_t from, std::uint32_t to) const {
  if (cluster_->reachable(from, to)) return Status::ok();
  return {ErrorCode::kUnreachable,
          "node " + std::to_string(to) + " is unreachable from node " +
              std::to_string(from) +
              ": every dimension-order route crosses a dead cable"};
}

void Runtime::write(const Buffer& buf, std::uint64_t offset,
                    std::span<const std::byte> data) {
  TCA_ASSERT(validate(buf, offset, data.size()).is_ok());
  node::ComputeNode& n = cluster_->node(buf.node);
  if (buf.is_host()) {
    n.host_dram().write(buf.block_offset + offset, data);
  } else {
    n.gpu(*buf.gpu_index()).poke(buf.block_offset + offset, data);
  }
}

void Runtime::read(const Buffer& buf, std::uint64_t offset,
                   std::span<std::byte> out) const {
  TCA_ASSERT(validate(buf, offset, out.size()).is_ok());
  // cluster_ accessors are non-const; the runtime object itself is the
  // logical owner, so a const_cast here is confined and safe.
  auto& cluster = const_cast<fabric::SubCluster&>(*cluster_);
  node::ComputeNode& n = cluster.node(buf.node);
  if (buf.is_host()) {
    n.host_dram().read(buf.block_offset + offset, out);
  } else {
    n.gpu(*buf.gpu_index()).peek(buf.block_offset + offset, out);
  }
}

sim::Task<Status> Runtime::memcpy_peer(Buffer dst, std::uint64_t dst_off,
                                       Buffer src, std::uint64_t src_off,
                                       std::uint64_t bytes) {
  if (Status st = validate(dst, dst_off, bytes); !st.is_ok()) co_return st;
  if (Status st = validate(src, src_off, bytes); !st.is_ok()) co_return st;
  if (Status st = check_reachable(src.node, dst.node); !st.is_ok()) {
    co_return st;
  }
  if (bytes == 0) co_return Status::ok();

  ++metrics_.memcpy_ops;
  metrics_.memcpy_bytes += bytes;
  const TimePs t0 = sched_.now();
  driver::Peach2Driver& drv = cluster_->driver(src.node);

  // Short host-sourced messages: PIO store through the mmapped window.
  if (src.is_host() && bytes <= kPioThreshold) {
    ++metrics_.pio_ops;
    std::vector<std::byte> staged(bytes);
    read(src, src_off, staged);
    co_await drv.pio_store(global_addr(dst, dst_off), staged);
    if (obs::sampling_enabled()) {
      metrics_.memcpy_latency_ps.add_time(sched_.now() - t0);
    }
    co_return Status::ok();
  }
  ++metrics_.dma_ops;

  // Everything else: one pipelined DMA descriptor driven by the source
  // node's PEACH2 (local source requirement == put-only fabric). Channels
  // are auto-acquired, so concurrent memcpy_peer calls on one node overlap
  // across the chip's independent DMA engines.
  std::vector<DmaDescriptor> chain{
      DmaDescriptor{.src = global_addr(src, src_off),
                    .dst = global_addr(dst, dst_off),
                    .length = static_cast<std::uint32_t>(bytes),
                    .direction = DmaDirection::kPipelined}};
  const Status st = co_await drv.run_chain_checked(std::move(chain));
  if (obs::sampling_enabled()) {
    metrics_.memcpy_latency_ps.add_time(sched_.now() - t0);
  }
  co_return st;
}

Status Runtime::build_batch_chain(
    std::uint32_t driving_node, const std::vector<CopyOp>& ops,
    std::vector<peach2::DmaDescriptor>* chain) const {
  if (ops.size() > calib::kMaxDescriptors) {
    return {ErrorCode::kInvalidArgument,
            "batch exceeds descriptor-chain capacity"};
  }
  chain->reserve(ops.size());
  for (const CopyOp& op : ops) {
    if (Status st = validate(op.src, op.src_off, op.bytes); !st.is_ok()) {
      return st;
    }
    if (Status st = validate(op.dst, op.dst_off, op.bytes); !st.is_ok()) {
      return st;
    }
    if (op.src.node != driving_node) {
      return {ErrorCode::kPermissionDenied,
              "put-only fabric: batch sources must be local to the "
              "driving node"};
    }
    if (Status st = check_reachable(driving_node, op.dst.node); !st.is_ok()) {
      return st;
    }
    chain->push_back(
        DmaDescriptor{.src = global_addr(op.src, op.src_off),
                      .dst = global_addr(op.dst, op.dst_off),
                      .length = static_cast<std::uint32_t>(op.bytes),
                      .direction = DmaDirection::kPipelined});
  }
  return Status::ok();
}

sim::Task<Status> Runtime::memcpy_peer_batch(std::uint32_t driving_node,
                                             std::vector<CopyOp> ops) {
  if (ops.empty()) co_return Status::ok();
  std::vector<DmaDescriptor> chain;
  if (Status st = build_batch_chain(driving_node, ops, &chain); !st.is_ok()) {
    co_return st;
  }
  ++metrics_.batches;
  metrics_.batch_ops += ops.size();
  co_return co_await cluster_->driver(driving_node).run_chain_checked(
      std::move(chain));
}

sim::Task<Status> Runtime::batch_with_policy(std::uint32_t driving_node,
                                             std::vector<CopyOp> ops,
                                             SyncOptions options,
                                             std::uint32_t* retries_out) {
  *retries_out = 0;
  if (options.deadline_ps <= 0 && options.max_attempts <= 1) {
    // Legacy path: wait forever, one attempt.
    co_return co_await memcpy_peer_batch(driving_node, std::move(ops));
  }
  if (ops.empty()) co_return Status::ok();
  std::vector<DmaDescriptor> chain;
  if (Status st = build_batch_chain(driving_node, ops, &chain); !st.is_ok()) {
    co_return st;
  }
  ++metrics_.batches;
  metrics_.batch_ops += ops.size();
  // Between attempts, ask the fabric manager whether every destination is
  // still dimension-order reachable: a partition that forms mid-transfer
  // then surfaces as kUnreachable after the current attempt's deadline
  // instead of after the full attempts-times-deadline budget.
  std::vector<std::uint32_t> dst_nodes;
  for (const CopyOp& op : ops) {
    if (std::find(dst_nodes.begin(), dst_nodes.end(), op.dst.node) ==
        dst_nodes.end()) {
      dst_nodes.push_back(op.dst.node);
    }
  }
  driver::Peach2Driver::RetryPolicy policy{
      .max_attempts = std::max<std::uint32_t>(1, options.max_attempts),
      .timeout_ps = options.deadline_ps > 0 ? options.deadline_ps
                                            : calib::kChainWatchdogPs,
      .backoff_base_ps = options.backoff_base_ps,
  };
  policy.abort_check = [this, driving_node,
                        dst_nodes = std::move(dst_nodes)]() -> Status {
    for (const std::uint32_t dst : dst_nodes) {
      if (Status st = check_reachable(driving_node, dst); !st.is_ok()) {
        return st;
      }
    }
    return Status::ok();
  };
  const driver::Peach2Driver::ChainResult result =
      co_await cluster_->driver(driving_node).run_chain_reliable(
          std::move(chain), policy);
  *retries_out = result.attempts > 0 ? result.attempts - 1 : 0;
  co_return result.status;
}

sim::Task<Status> Runtime::memcpy_block_stride(
    Buffer dst, std::uint64_t dst_off, std::uint64_t dst_stride, Buffer src,
    std::uint64_t src_off, std::uint64_t src_stride,
    std::uint64_t block_bytes, std::uint32_t count) {
  if (count == 0 || block_bytes == 0) co_return Status::ok();
  if (count > calib::kMaxDescriptors) {
    co_return Status{ErrorCode::kInvalidArgument,
                     "block count exceeds descriptor-chain capacity"};
  }
  const std::uint64_t src_extent =
      src_off + (count - 1) * src_stride + block_bytes;
  const std::uint64_t dst_extent =
      dst_off + (count - 1) * dst_stride + block_bytes;
  if (Status st = validate(src, 0, src_extent); !st.is_ok()) co_return st;
  if (Status st = validate(dst, 0, dst_extent); !st.is_ok()) co_return st;

  std::vector<DmaDescriptor> chain;
  chain.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    chain.push_back(
        DmaDescriptor{.src = global_addr(src, src_off + i * src_stride),
                      .dst = global_addr(dst, dst_off + i * dst_stride),
                      .length = static_cast<std::uint32_t>(block_bytes),
                      .direction = DmaDirection::kPipelined});
  }
  ++metrics_.block_stride_ops;
  co_return co_await cluster_->driver(src.node).run_chain_checked(
      std::move(chain));
}

void Runtime::export_metrics(obs::MetricRegistry& reg) const {
  reg.counter("api.memcpy.ops").set(metrics_.memcpy_ops);
  reg.counter("api.memcpy.bytes").set(metrics_.memcpy_bytes);
  reg.counter("api.memcpy.pio_ops").set(metrics_.pio_ops);
  reg.counter("api.memcpy.dma_ops").set(metrics_.dma_ops);
  reg.counter("api.batch.calls").set(metrics_.batches);
  reg.counter("api.batch.ops").set(metrics_.batch_ops);
  reg.counter("api.block_stride.calls").set(metrics_.block_stride_ops);
  reg.counter("api.notify.ops").set(metrics_.notify_ops);
  reg.counter("api.wait_flag.ops").set(metrics_.wait_flag_ops);
  if (!metrics_.memcpy_latency_ps.empty()) {
    reg.histogram("api.memcpy.latency_ps")
        .record_series(metrics_.memcpy_latency_ps);
  }
  cluster_->export_metrics(reg);
}

Status Stream::enqueue_copy(Buffer dst, std::uint64_t dst_off, Buffer src,
                            std::uint64_t src_off, std::uint64_t bytes) {
  if (Status st = rt_.validate(dst, dst_off, bytes); !st.is_ok()) return st;
  if (Status st = rt_.validate(src, src_off, bytes); !st.is_ok()) return st;
  if (bytes == 0) return Status::ok();
  ops_.push_back(Runtime::CopyOp{.dst = dst,
                                 .dst_off = dst_off,
                                 .src = src,
                                 .src_off = src_off,
                                 .bytes = bytes});
  return Status::ok();
}

Status Stream::enqueue_block_stride(Buffer dst, std::uint64_t dst_off,
                                    std::uint64_t dst_stride, Buffer src,
                                    std::uint64_t src_off,
                                    std::uint64_t src_stride,
                                    std::uint64_t block_bytes,
                                    std::uint32_t count) {
  if (count == 0 || block_bytes == 0) return Status::ok();
  const std::uint64_t src_extent =
      src_off + (count - 1) * src_stride + block_bytes;
  const std::uint64_t dst_extent =
      dst_off + (count - 1) * dst_stride + block_bytes;
  if (Status st = rt_.validate(src, 0, src_extent); !st.is_ok()) return st;
  if (Status st = rt_.validate(dst, 0, dst_extent); !st.is_ok()) return st;

  for (std::uint32_t i = 0; i < count; ++i) {
    ops_.push_back(Runtime::CopyOp{.dst = dst,
                                   .dst_off = dst_off + i * dst_stride,
                                   .src = src,
                                   .src_off = src_off + i * src_stride,
                                   .bytes = block_bytes});
  }
  return Status::ok();
}

sim::Task<SyncReport> Stream::synchronize(SyncOptions options) {
  SyncReport report;
  if (ops_.empty()) co_return report;
  std::vector<Runtime::CopyOp> ops = std::move(ops_);
  ops_.clear();

  // Group by source node, preserving enqueue order within each group and
  // remembering every op's enqueue index so outcomes can be attributed.
  struct IndexedOp {
    std::size_t index;
    Runtime::CopyOp op;
  };
  std::vector<std::vector<IndexedOp>> by_node(rt_.node_count());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    by_node[ops[i].src.node].push_back(IndexedOp{i, std::move(ops[i])});
  }

  // One batch per source node, all nodes concurrently. A group larger than
  // the descriptor-chain capacity splits into consecutive batches. Each
  // group coroutine writes only its own ops' slots in op_status (disjoint
  // index sets), so no synchronization is needed beyond the trigger.
  std::vector<Status> op_status(ops.size());
  std::vector<std::uint32_t> op_retries(ops.size(), 0);
  sim::Trigger all_done(rt_.sched_);
  std::size_t remaining = 0;
  for (std::uint32_t n = 0; n < rt_.node_count(); ++n) {
    if (!by_node[n].empty()) ++remaining;
  }
  const std::size_t total_groups = remaining;

  for (std::uint32_t n = 0; n < rt_.node_count(); ++n) {
    if (by_node[n].empty()) continue;
    sim::spawn([](Runtime& rt, std::uint32_t node,
                  std::vector<IndexedOp> group, SyncOptions sync_opts,
                  std::vector<Status>& statuses,
                  std::vector<std::uint32_t>& retry_counts,
                  std::size_t& left, sim::Trigger& done) -> sim::Task<> {
      Status status = Status::ok();
      std::size_t i = 0;
      while (i < group.size()) {
        if (!status.is_ok()) {
          // An earlier batch failed; the chain for these ops never ran.
          for (; i < group.size(); ++i) {
            statuses[group[i].index] =
                Status{ErrorCode::kAborted,
                       "not attempted: earlier batch on this node failed"};
          }
          break;
        }
        const std::size_t count = std::min<std::size_t>(
            group.size() - i, calib::kMaxDescriptors);
        std::vector<Runtime::CopyOp> batch;
        batch.reserve(count);
        for (std::size_t j = i; j < i + count; ++j) {
          batch.push_back(group[j].op);
        }
        std::uint32_t retries = 0;
        status = co_await rt.batch_with_policy(node, std::move(batch),
                                               sync_opts, &retries);
        for (std::size_t j = i; j < i + count; ++j) {
          statuses[group[j].index] = status;
          retry_counts[group[j].index] = retries;
        }
        i += count;
      }
      if (--left == 0) done.fire();
    }(rt_, n, std::move(by_node[n]), options, op_status, op_retries,
      remaining, all_done));
  }
  if (total_groups > 0) co_await all_done.wait();

  report.ops.reserve(op_status.size());
  for (std::size_t i = 0; i < op_status.size(); ++i) {
    if (!op_status[i].is_ok() && report.status.is_ok()) {
      report.status = op_status[i];
    }
    report.ops.push_back(
        SyncReport::OpStatus{i, std::move(op_status[i]), op_retries[i]});
  }
  co_return report;
}

sim::Task<> Runtime::notify(std::uint32_t from_node, Buffer host_flag,
                            std::uint64_t offset, std::uint32_t value) {
  TCA_ASSERT(host_flag.is_host());
  TCA_ASSERT(validate(host_flag, offset, 4).is_ok());
  ++metrics_.notify_ops;
  co_await cluster_->driver(from_node).pio_store_u32(
      global_addr(host_flag, offset), value);
}

sim::Task<> Runtime::wait_flag(Buffer host_flag, std::uint64_t offset,
                               std::uint32_t expected) {
  TCA_ASSERT(host_flag.is_host());
  ++metrics_.wait_flag_ops;
  for (;;) {
    std::uint32_t now_value = 0;
    read(host_flag, offset,
         std::as_writable_bytes(std::span(&now_value, 1)));
    if (now_value == expected) co_return;
    co_await sim::Delay(sched_, calib::kCpuPollIterationPs);
  }
}

sim::Task<Status> Runtime::wait_flag_ge(Buffer host_flag, std::uint64_t offset,
                                        std::uint32_t expected,
                                        TimePs timeout_ps) {
  TCA_ASSERT(host_flag.is_host());
  ++metrics_.wait_flag_ops;
  const TimePs deadline = timeout_ps > 0 ? sched_.now() + timeout_ps : 0;
  for (;;) {
    std::uint32_t now_value = 0;
    read(host_flag, offset,
         std::as_writable_bytes(std::span(&now_value, 1)));
    if (now_value >= expected) co_return Status::ok();
    if (deadline > 0 && sched_.now() >= deadline) {
      co_return Status{ErrorCode::kTimedOut, "flag wait deadline expired"};
    }
    co_await sim::Delay(sched_, calib::kCpuPollIterationPs);
  }
}

sim::Task<Status> Runtime::memcpy_pio(Buffer dst, std::uint64_t dst_off,
                                      Buffer src, std::uint64_t src_off,
                                      std::uint64_t bytes) {
  if (Status st = validate(dst, dst_off, bytes); !st.is_ok()) co_return st;
  if (Status st = validate(src, src_off, bytes); !st.is_ok()) co_return st;
  if (!src.is_host()) {
    co_return Status{ErrorCode::kInvalidArgument,
                     "PIO stores source host memory (the CPU issues them)"};
  }
  if (Status st = check_reachable(src.node, dst.node); !st.is_ok()) {
    co_return st;
  }
  if (bytes == 0) co_return Status::ok();
  ++metrics_.memcpy_ops;
  metrics_.memcpy_bytes += bytes;
  ++metrics_.pio_ops;
  const TimePs t0 = sched_.now();
  std::vector<std::byte> staged(bytes);
  read(src, src_off, staged);
  co_await cluster_->driver(src.node).pio_store(global_addr(dst, dst_off),
                                                staged);
  if (obs::sampling_enabled()) {
    metrics_.memcpy_latency_ps.add_time(sched_.now() - t0);
  }
  co_return Status::ok();
}

sim::Task<Status> Runtime::memcpy_peer_reliable(
    Buffer dst, std::uint64_t dst_off, Buffer src, std::uint64_t src_off,
    std::uint64_t bytes, SyncOptions options, std::uint32_t* retries_out) {
  std::uint32_t retries = 0;
  Status st = Status::ok();
  if (bytes > 0) {
    ++metrics_.memcpy_ops;
    metrics_.memcpy_bytes += bytes;
    ++metrics_.dma_ops;
    std::vector<CopyOp> ops{CopyOp{.dst = dst,
                                   .dst_off = dst_off,
                                   .src = src,
                                   .src_off = src_off,
                                   .bytes = bytes}};
    st = co_await batch_with_policy(src.node, std::move(ops), options,
                                    &retries);
  }
  if (retries_out != nullptr) *retries_out = retries;
  co_return st;
}

}  // namespace tca::api
