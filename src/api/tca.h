// Public TCA programming interface (Section III-H).
//
// "CUDA-like APIs are very useful for expanding existing CUDA applications
//  to the TCA sub-cluster": the user addresses memory by (node ID, device,
//  offset) and moves data with a cudaMemcpyPeer-style call that works across
//  nodes. Under the hood the runtime picks PIO for short host-sourced
//  messages and the chaining DMA engine otherwise; block-stride transfers
//  map onto descriptor chains ("a series of bulk transfers, such as block
//  transfer and block-stride transfer, are effective by using the chaining
//  DMA mechanism").
//
// Everything here is simulation-clocked: calls are coroutines that complete
// in simulated time, and data really moves (verify with read()/write()).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "fabric/sub_cluster.h"
#include "obs/metrics.h"
#include "peach2/tca_layout.h"
#include "sim/task.h"

namespace tca::api {

struct TcaConfig {
  /// Preferred topology description — ring, dual ring, or a 1D/2D/3D torus
  /// (see fabric::TopologySpec). When left empty the deprecated
  /// node_count/topology pair below is resolved through
  /// TopologySpec::from_legacy.
  fabric::TopologySpec spec;
  [[deprecated("set TcaConfig::spec instead")]]
  std::uint32_t node_count = 2;
  [[deprecated("set TcaConfig::spec instead")]]
  fabric::Topology topology = fabric::Topology::kRing;
  node::NodeConfig node_config = {
      .gpu_count = 2,
      .host_backing_bytes = 64ull << 20,
      .gpu_backing_bytes = 16ull << 20,
  };
  /// Fault campaign applied at construction (see fabric::FaultPlan) and the
  /// ring-failover switch, forwarded to the sub-cluster builder.
  fabric::FaultPlan fault_plan;
  bool enable_failover = true;
  double cable_bit_error_rate = 0;
};

/// A registered communication buffer: host memory or pinned GPU memory on a
/// specific node. Copyable value; the Runtime owns the storage.
struct Buffer {
  std::uint32_t node = 0;
  peach2::TcaTarget target = peach2::TcaTarget::kHost;
  /// Offset within the target's TCA block (for GPU buffers this equals the
  /// device pointer; for host buffers an offset in the driver DMA region).
  std::uint64_t block_offset = 0;
  std::uint64_t size = 0;

  [[nodiscard]] bool is_host() const {
    return target == peach2::TcaTarget::kHost;
  }
  /// GPU ordinal for GPU-backed buffers; nullopt for host (and internal)
  /// targets. Callers must check — a host buffer has no GPU index.
  [[nodiscard]] std::optional<int> gpu_index() const {
    if (target == peach2::TcaTarget::kGpu0) return 0;
    if (target == peach2::TcaTarget::kGpu1) return 1;
    return std::nullopt;
  }
};

/// Per-call counters the Runtime keeps about its own API surface: operation
/// mix, the PIO-vs-DMA policy split, and (while obs::sampling_enabled())
/// end-to-end memcpy latency samples.
struct ApiMetrics {
  std::uint64_t memcpy_ops = 0;
  std::uint64_t memcpy_bytes = 0;
  std::uint64_t pio_ops = 0;  ///< memcpy_peer calls routed to PIO
  std::uint64_t dma_ops = 0;  ///< memcpy_peer calls routed to DMA
  std::uint64_t batches = 0;
  std::uint64_t batch_ops = 0;
  std::uint64_t block_stride_ops = 0;
  std::uint64_t notify_ops = 0;
  std::uint64_t wait_flag_ops = 0;
  SampleSeries memcpy_latency_ps;
};

/// Recovery policy for Stream::synchronize(). The default is the legacy
/// behavior: wait forever, one attempt.
struct SyncOptions {
  /// Per-attempt chain deadline. When > 0 the driver arms its watchdog: a
  /// chain that has not completed by then is aborted and reported as
  /// kTimedOut instead of hanging the stream.
  TimePs deadline_ps = 0;
  /// Attempts per chain (> 1 enables the driver's bounded retry with
  /// exponential backoff — enough time for a NIOS-serviced ring failover to
  /// reroute before the doorbell rings again).
  std::uint32_t max_attempts = 1;
  TimePs backoff_base_ps = calib::kRetryBackoffBasePs;
};

class Runtime {
 public:
  /// Validates `config` without building anything. Per-topology shape
  /// rules come from fabric::TopologySpec::validate() — rings keep the
  /// paper's power-of-two [2, 16] bound, tori accept shapes like 4x4x4 and
  /// name the violated dimension on error. On top of that: the address
  /// window must partition across the nodes, per-node GPU count must be
  /// 1..4, and the backing stores must be large enough for the driver's
  /// host layout. Returns the first violation.
  static Status validate_config(const TcaConfig& config);

  /// The topology `config` resolves to: `spec` when set, otherwise the
  /// deprecated enum fields.
  static fabric::TopologySpec resolved_topology(const TcaConfig& config);

  /// Fallible construction: validates, then builds. Prefer this over the
  /// constructor — an invalid config comes back as a Status instead of an
  /// assertion failure inside the fabric builder.
  static Result<Runtime> create(sim::Scheduler& sched,
                                const TcaConfig& config = {});

  /// Asserting construction (legacy surface); delegates to the same
  /// validation as create() and aborts on violation.
  explicit Runtime(sim::Scheduler& sched, const TcaConfig& config = {});

  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }
  [[nodiscard]] fabric::SubCluster& cluster() { return *cluster_; }
  [[nodiscard]] std::uint32_t node_count() const { return cluster_->size(); }

  /// Below/equal this byte count, host-sourced copies use PIO stores
  /// instead of a DMA descriptor (short-message latency optimization).
  static constexpr std::uint64_t kPioThreshold = 512;

  // --- Allocation -----------------------------------------------------------

  /// Pinned host communication buffer on `node`.
  Result<Buffer> alloc_host(std::uint32_t node, std::uint64_t bytes);

  /// GPU buffer on `node`: cuMemAlloc + P2P pin (GPUDirect). `gpu` must be
  /// 0 or 1 — PEACH2 reaches only the GPUs on its own socket.
  Result<Buffer> alloc_gpu(std::uint32_t node, int gpu, std::uint64_t bytes);

  // --- Functional access (what a kernel / the host app would see) -----------

  void write(const Buffer& buf, std::uint64_t offset,
             std::span<const std::byte> data);
  void read(const Buffer& buf, std::uint64_t offset,
            std::span<std::byte> out) const;

  // --- Communication ----------------------------------------------------------

  /// cudaMemcpyPeer extended with node IDs: copies `bytes` from src to dst,
  /// driven by the source node's PEACH2. Works across nodes and between any
  /// host/GPU combination; remote *reads* are rejected at build time by the
  /// put-only policy (the source must live on the driving node).
  sim::Task<Status> memcpy_peer(Buffer dst, std::uint64_t dst_off, Buffer src,
                                std::uint64_t src_off, std::uint64_t bytes);

  /// One entry of a batched transfer (see memcpy_peer_batch).
  struct CopyOp {
    Buffer dst;
    std::uint64_t dst_off = 0;
    Buffer src;
    std::uint64_t src_off = 0;
    std::uint64_t bytes = 0;
  };

  /// Executes several peer copies as a single descriptor chain — one
  /// doorbell, one table fetch, one interrupt ("a series of bulk transfers
  /// ... are effective by using the chaining DMA mechanism"). All sources
  /// must live on `driving_node`; destinations may be anywhere.
  sim::Task<Status> memcpy_peer_batch(std::uint32_t driving_node,
                                      std::vector<CopyOp> ops);

  /// Block-stride transfer via one descriptor chain: `count` blocks of
  /// `block_bytes`, advancing src/dst by their strides between blocks.
  sim::Task<Status> memcpy_block_stride(Buffer dst, std::uint64_t dst_off,
                                        std::uint64_t dst_stride, Buffer src,
                                        std::uint64_t src_off,
                                        std::uint64_t src_stride,
                                        std::uint64_t block_bytes,
                                        std::uint32_t count);

  // --- Synchronization flags ---------------------------------------------------

  /// Writes a 32-bit flag into a (usually remote) host buffer via PIO.
  /// `from_node` is the storing side. Buffer is taken by value — a
  /// reference coroutine parameter could dangle across suspension.
  sim::Task<> notify(std::uint32_t from_node, Buffer host_flag,
                     std::uint64_t offset, std::uint32_t value);

  /// Polls a local host flag until it equals `expected`.
  sim::Task<> wait_flag(Buffer host_flag, std::uint64_t offset,
                        std::uint32_t expected);

  /// Polls a local host flag until it is >= `expected` — the right wait for
  /// monotonic sequence counters, where a waiter may arrive after several
  /// increments. `timeout_ps` bounds the wait (0 = poll forever); expiry
  /// returns kTimedOut instead of hanging the simulation.
  sim::Task<Status> wait_flag_ge(Buffer host_flag, std::uint64_t offset,
                                 std::uint32_t expected,
                                 TimePs timeout_ps = 0);

  /// Forced-PIO copy of any size: CPU MMIO stores through the mmapped
  /// window, no DMA engine involvement (no doorbell/table-fetch/interrupt
  /// cost). The source must be host-resident — the CPU issues the stores.
  /// This is the eager-message transport for payloads around the paper's
  /// ~2 KB PIO/DMA crossover, above kPioThreshold where memcpy_peer would
  /// switch to DMA on its own.
  sim::Task<Status> memcpy_pio(Buffer dst, std::uint64_t dst_off, Buffer src,
                               std::uint64_t src_off, std::uint64_t bytes);

  /// Single peer copy under a recovery policy: one pipelined descriptor
  /// run with `options`' per-attempt deadline and bounded retry (see
  /// Stream::synchronize). `retries_out`, when non-null, receives the
  /// number of doorbell re-rings the copy needed.
  sim::Task<Status> memcpy_peer_reliable(Buffer dst, std::uint64_t dst_off,
                                         Buffer src, std::uint64_t src_off,
                                         std::uint64_t bytes,
                                         SyncOptions options,
                                         std::uint32_t* retries_out = nullptr);

  // --- Observability -----------------------------------------------------------

  [[nodiscard]] const ApiMetrics& api_metrics() const { return metrics_; }

  /// Exports the API-level counters (`api.*`) plus the whole fabric's
  /// hardware counters (see fabric::SubCluster::export_metrics) into `reg`.
  void export_metrics(obs::MetricRegistry& reg) const;

 private:
  friend class Stream;
  [[nodiscard]] std::uint64_t global_addr(const Buffer& buf,
                                          std::uint64_t offset) const;
  Status validate(const Buffer& buf, std::uint64_t offset,
                  std::uint64_t bytes) const;
  /// kUnreachable when the fabric manager reports `to` partitioned away
  /// from `from` (see fabric::SubCluster::reachable). Checked before every
  /// transfer submission and between retry attempts, so a genuine
  /// partition surfaces promptly instead of as a full deadline timeout.
  Status check_reachable(std::uint32_t from, std::uint32_t to) const;
  /// Validates a batch and serializes it into a descriptor chain.
  Status build_batch_chain(std::uint32_t driving_node,
                           const std::vector<CopyOp>& ops,
                           std::vector<peach2::DmaDescriptor>* chain) const;
  /// memcpy_peer_batch with a recovery policy; reports retry count.
  sim::Task<Status> batch_with_policy(std::uint32_t driving_node,
                                      std::vector<CopyOp> ops,
                                      SyncOptions options,
                                      std::uint32_t* retries_out);

  sim::Scheduler& sched_;
  // unique_ptr: the sub-cluster schedules fault events and NIOS listeners
  // that capture its address, so it must stay put while Runtime moves
  // (Result<Runtime> construction).
  std::unique_ptr<fabric::SubCluster> cluster_;
  std::vector<std::uint64_t> host_alloc_cursor_;
  ApiMetrics metrics_;
};

/// Result of Stream::synchronize(): the overall status plus one entry per
/// enqueued op (in enqueue order) saying what happened to it. When a batch
/// fails, every op in that batch carries the batch's error and later ops in
/// the same source-node group report kAborted (never attempted); ops in
/// other groups are unaffected.
struct SyncReport {
  /// First error in enqueue order; OK when every op succeeded.
  Status status;

  struct OpStatus {
    std::size_t index = 0;  ///< position among the enqueued ops
    Status status;
    /// Doorbell re-rings this op's chain needed (0 = first attempt stuck).
    std::uint32_t retries = 0;
  };
  std::vector<OpStatus> ops;

  [[nodiscard]] bool ok() const { return status.is_ok(); }
  /// True when the first failure was a deadline expiry (kTimedOut) — the
  /// outcome SyncOptions::deadline_ps guarantees instead of a hang.
  [[nodiscard]] bool timed_out() const {
    return status.code() == ErrorCode::kTimedOut;
  }
  /// Total doorbell re-rings across all chains this synchronize ran.
  [[nodiscard]] std::uint64_t total_retries() const {
    std::uint64_t total = 0;
    for (const OpStatus& op : ops) total += op.retries;
    return total;
  }
};


/// Deferred command queue (CUDA-stream flavored).
///
/// enqueue_copy() only records; synchronize() coalesces the recorded copies
/// into one descriptor chain per source node (the chaining amortization of
/// Figures 8/9, applied automatically) and runs the chains concurrently
/// across nodes. Copies on one stream respect enqueue order per source
/// node (they land in one chain, which the DMAC executes in order).
class Stream {
 public:
  explicit Stream(Runtime& runtime) : rt_(runtime) {}

  /// Records a copy; no traffic until synchronize().
  Status enqueue_copy(Buffer dst, std::uint64_t dst_off, Buffer src,
                      std::uint64_t src_off, std::uint64_t bytes);

  /// Records a block-stride transfer as `count` copies (one descriptor
  /// each), validated eagerly — parity with Runtime::memcpy_block_stride.
  Status enqueue_block_stride(Buffer dst, std::uint64_t dst_off,
                              std::uint64_t dst_stride, Buffer src,
                              std::uint64_t src_off, std::uint64_t src_stride,
                              std::uint64_t block_bytes, std::uint32_t count);

  [[nodiscard]] std::size_t pending() const { return ops_.size(); }

  /// Executes everything recorded so far and reports per-op outcomes.
  /// `options` adds fault tolerance: a per-attempt deadline (kTimedOut
  /// instead of hanging) and bounded retry with backoff (retries surfaces
  /// in each OpStatus).
  sim::Task<SyncReport> synchronize(SyncOptions options = {});

 private:
  Runtime& rt_;
  std::vector<Runtime::CopyOp> ops_;
};

}  // namespace tca::api
