#include "pcie/tlp.h"

#include <algorithm>

#include "common/error.h"

namespace tca::pcie {

const char* to_string(TlpType type) {
  switch (type) {
    case TlpType::kMemWrite: return "MWr";
    case TlpType::kMemRead: return "MRd";
    case TlpType::kCompletion: return "CplD";
    case TlpType::kVendorMsg: return "Msg";
  }
  return "?";
}

std::uint64_t Tlp::wire_bytes() const {
  switch (type) {
    case TlpType::kMemWrite:
      return calib::kTlpWithDataOverheadBytes + payload.size();
    case TlpType::kMemRead:
      return calib::kTlpReadRequestBytes;
    case TlpType::kCompletion:
      return calib::kTlpCompletionOverheadBytes + payload.size();
    case TlpType::kVendorMsg:
      return calib::kTlpReadRequestBytes;  // header-only message
  }
  return calib::kTlpWithDataOverheadBytes;
}

Tlp Tlp::mem_write(std::uint64_t address, std::span<const std::byte> data,
                   DeviceId requester) {
  TCA_ASSERT(data.size() <= calib::kMaxPayloadBytes);
  Tlp tlp;
  tlp.type = TlpType::kMemWrite;
  tlp.address = address;
  tlp.length = static_cast<std::uint32_t>(data.size());
  tlp.requester = requester;
  tlp.payload.assign(data.begin(), data.end());
  return tlp;
}

Tlp Tlp::mem_read(std::uint64_t address, std::uint32_t length,
                  DeviceId requester, std::uint8_t tag) {
  TCA_ASSERT(length > 0 && length <= calib::kMaxReadRequestBytes);
  Tlp tlp;
  tlp.type = TlpType::kMemRead;
  tlp.address = address;
  tlp.length = length;
  tlp.requester = requester;
  tlp.tag = tag;
  tlp.byte_count_remaining = length;
  return tlp;
}

Tlp Tlp::completion(const Tlp& request, std::span<const std::byte> data,
                    std::uint32_t byte_count_remaining) {
  TCA_ASSERT(request.type == TlpType::kMemRead);
  Tlp tlp;
  tlp.type = TlpType::kCompletion;
  tlp.address = request.address + (request.length - byte_count_remaining);
  tlp.length = static_cast<std::uint32_t>(data.size());
  tlp.requester = request.requester;
  tlp.tag = request.tag;
  tlp.byte_count_remaining = byte_count_remaining;
  tlp.payload.assign(data.begin(), data.end());
  return tlp;
}

Tlp Tlp::vendor_msg(std::uint64_t address, DeviceId requester,
                    std::uint8_t tag) {
  Tlp tlp;
  tlp.type = TlpType::kVendorMsg;
  tlp.address = address;
  tlp.requester = requester;
  tlp.tag = tag;
  return tlp;
}

}  // namespace tca::pcie
