// Point-to-point PCIe link model.
//
// A PcieLink is full duplex: each direction has an independent serializer
// (one TLP on the wire at a time, occupying wire_bytes * ps_per_byte) and a
// credit pool modeling the receiver buffer. A TLP starts transmission only
// when the peer has buffer space for it; the receiving sink returns credits
// once it has consumed or forwarded the TLP, which is how backpressure
// propagates hop by hop through the fabric (e.g. a slow GPU BAR read path
// stalls the PEACH2 DMA engine several links upstream).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "common/error.h"
#include "common/rng.h"
#include "pcie/tlp.h"
#include "sim/scheduler.h"

namespace tca::pcie {

/// Physical link parameters.
struct LinkConfig {
  int gen = 2;    ///< PCIe generation: 1, 2 (8b/10b) or 3 (128b/130b)
  int lanes = 8;  ///< x1..x16
  TimePs propagation_ps = 0;  ///< cable / trace flight time
  std::uint64_t rx_buffer_bytes = 16 * 1024;  ///< per-direction credit pool
  std::uint64_t tx_queue_bytes = 16 * 1024;   ///< per-direction egress queue

  /// When > 0, overrides the gen/lanes rate. Used for non-PCIe transports
  /// modeled with the same machinery (QPI peer path, InfiniBand).
  double custom_bytes_per_sec = 0;

  /// Optional identity for tracing (chrome://tracing track name). Links
  /// without a name produce no trace events.
  std::string name;

  /// Bit error rate for fault injection. A corrupted TLP fails its LCRC at
  /// the receiver and is retransmitted after kReplayDelayPs — the
  /// data-link-layer reliability PEARL builds on. 0 disables (default).
  double bit_error_rate = 0;
  /// Seed for the deterministic error process.
  std::uint64_t error_seed = 0x5EED;

  /// Raw post-encoding byte rate (e.g. Gen2 x8 = 4.0 GB/s).
  [[nodiscard]] double raw_bytes_per_sec() const;

  /// Picoseconds to place one byte on the wire.
  [[nodiscard]] double ps_per_byte() const;

  /// Serialization time for a whole TLP. Hot path: called once or twice per
  /// TLP, so the rate is computed once and sealed (see RateCache) rather
  /// than re-derived from gen/lanes with a switch + divide per call.
  [[nodiscard]] TimePs serialize_ps(std::uint64_t wire_bytes) const;

  /// Rate cache, sealed on first rate query. Public only because LinkConfig
  /// must stay an aggregate (designated initializers at every call site);
  /// treat as internal and never set it. The sealed copies of the rate
  /// parameters let seal_check() assert the config is immutable after first
  /// use — mutating gen/lanes/custom_bytes_per_sec once traffic has flowed
  /// would silently desynchronize every cached timing.
  struct RateCache {
    double ps_per_byte = 0;  ///< 0 = not sealed yet
    double raw_bytes_per_sec = 0;
    int gen = 0;
    int lanes = 0;
    double custom_bytes_per_sec = 0;
  };
  mutable RateCache rate_cache_;

 private:
  void seal() const;
  void seal_check() const;
};

class LinkPort;

/// Receiver interface. The sink takes ownership of the TLP and MUST call
/// `port.release_rx(wire_bytes)` once the TLP has been consumed or forwarded;
/// until then the sender's credits stay held (backpressure).
class TlpSink {
 public:
  virtual ~TlpSink() = default;
  virtual void on_tlp(Tlp tlp, LinkPort& port) = 0;
};

/// One endpoint of a PcieLink. Exposes the transmit queue toward the peer
/// and receive-credit management for traffic from the peer.
class LinkPort {
 public:
  LinkPort(const LinkPort&) = delete;
  LinkPort& operator=(const LinkPort&) = delete;

  /// True if the egress queue can accept this TLP now.
  [[nodiscard]] bool can_send(const Tlp& tlp) const;

  /// Enqueues a TLP for transmission. Caller must check can_send() first.
  void send(Tlp tlp);

  /// Registers the (single) callback invoked whenever egress space frees.
  void set_tx_ready(std::function<void()> cb) { tx_ready_ = std::move(cb); }

  /// Registers the receiver for inbound TLPs.
  void set_sink(TlpSink* sink) { sink_ = sink; }

  /// Returns receive credits after consuming/forwarding an inbound TLP.
  // tca-protocol: releases(rx-credit)
  void release_rx(std::uint64_t wire_bytes);

  /// True when nothing is queued and the wire is idle (all accepted TLPs
  /// fully serialized).
  [[nodiscard]] bool tx_idle() const { return tx_queue_.empty() && !wire_busy_; }

  /// Link operational state (both directions share it).
  [[nodiscard]] bool link_up() const { return *link_up_; }

  /// Registers the (single) callback invoked on link up/down transitions
  /// (LTSSM surprise-down / retrain notification toward the device).
  void set_link_state_callback(std::function<void(bool)> cb) {
    link_state_cb_ = std::move(cb);
  }

  /// Registers the (single) callback invoked when the same TLP has been
  /// replayed calib::kReplayThreshold consecutive times — the REPLAY_NUM
  /// escalation an AER-capable device surfaces as a correctable-error
  /// interrupt before the LTSSM forces a retrain.
  void set_replay_threshold_callback(std::function<void()> cb) {
    replay_threshold_cb_ = std::move(cb);
  }

  /// Shard affinity for the sharded scheduler backend: events that mutate
  /// this port's state (serializer completion, replay retry) are tagged with
  /// this shard, and TLP deliveries are tagged with the *peer's* shard — a
  /// delivery crosses the cable, which is exactly the cross-shard edge whose
  /// latency bounds the conservative lookahead. Fabric construction assigns
  /// each endpoint its node's shard; untagged ports default to shard 0, and
  /// non-sharded backends ignore the tag entirely.
  void set_shard(std::uint32_t shard) { shard_ = shard; }
  [[nodiscard]] std::uint32_t shard() const { return shard_; }

  /// Fault recovery: discards every TLP queued for transmission, including
  /// surprise-down returns parked in the replay buffer. The fabric calls
  /// this when a failover has rerouted traffic away from this cable: after
  /// the reroute, retransmitting the held TLPs on retrain would deliver
  /// stale duplicates into buffers the transfer's retry has since recycled,
  /// so the data-link layer gives them up (DL_Down) and redelivery belongs
  /// to the driver's retry layer. Returns the number of TLPs discarded,
  /// which is also accumulated into abandoned_tlps().
  std::size_t abandon_queued();

  /// Statistics ------------------------------------------------------------
  [[nodiscard]] std::uint64_t tlps_sent() const { return tlps_sent_; }
  [[nodiscard]] std::uint64_t wire_bytes_sent() const { return wire_sent_; }
  [[nodiscard]] std::uint64_t payload_bytes_sent() const { return data_sent_; }
  /// LCRC-failed transmissions retried from the replay buffer.
  [[nodiscard]] std::uint64_t replays() const { return replays_; }
  /// TLPs that were in flight when the link went down. Each one is returned
  /// to the replay buffer (front of the egress queue) for retransmission
  /// after retrain, so data is delayed, not lost — but the drop is counted
  /// and traced rather than silently absorbed. If a failover reroutes away
  /// from this cable before retrain, abandon_queued() discards them instead.
  [[nodiscard]] std::uint64_t dropped_tlps() const { return dropped_tlps_; }
  /// TLPs discarded by abandon_queued() — held traffic a route failover
  /// declared undeliverable on this path.
  [[nodiscard]] std::uint64_t abandoned_tlps() const {
    return abandoned_tlps_;
  }
  /// Simulated time this direction spent head-of-line blocked waiting for
  /// receiver credits — the per-link backpressure figure the APEnet+ paper
  /// tunes against.
  [[nodiscard]] TimePs credit_stall_ps() const { return credit_stall_ps_; }
  [[nodiscard]] std::uint64_t tx_queued_bytes() const { return tx_queued_; }
  [[nodiscard]] const LinkConfig& config() const { return *cfg_; }

 private:
  friend class PcieLink;
  LinkPort(sim::Scheduler& sched, const LinkConfig& cfg)
      : sched_(&sched), cfg_(&cfg), rx_free_(cfg.rx_buffer_bytes) {}

  void try_transmit();
  void deliver(Tlp tlp);
  void on_link_down();

  /// A TLP past the serializer but not yet at the peer (propagation delay).
  struct InFlight {
    sim::Scheduler::EventId event;
    Tlp tlp;
  };

  sim::Scheduler* sched_;
  const LinkConfig* cfg_;
  std::uint32_t shard_ = 0;
  LinkPort* peer_ = nullptr;
  const bool* link_up_ = nullptr;
  std::function<void(bool)> link_state_cb_;

  // Transmit side.
  std::deque<Tlp> tx_queue_;
  std::uint64_t tx_queued_ = 0;
  bool wire_busy_ = false;
  std::function<void()> tx_ready_;
  std::function<void()> replay_threshold_cb_;
  sim::Scheduler::EventId wire_done_event_ = sim::Scheduler::kInvalidEvent;
  std::deque<InFlight> in_flight_;  // FIFO: front is oldest
  std::uint32_t head_replay_count_ = 0;  // consecutive replays of head TLP

  // Receive side.
  TlpSink* sink_ = nullptr;
  std::uint64_t rx_free_;

  std::uint64_t tlps_sent_ = 0;
  std::uint64_t wire_sent_ = 0;
  std::uint64_t data_sent_ = 0;
  std::uint64_t replays_ = 0;
  std::uint64_t dropped_tlps_ = 0;
  std::uint64_t abandoned_tlps_ = 0;
  TimePs credit_stall_ps_ = 0;
  TimePs stall_since_ = -1;  // head-of-line credit wait start, -1 = not stalled
  Rng* error_rng_ = nullptr;  // shared per-link error process
};

/// A full-duplex link between two ports.
class PcieLink {
 public:
  PcieLink(sim::Scheduler& sched, LinkConfig cfg);

  [[nodiscard]] LinkPort& end_a() { return a_; }
  [[nodiscard]] LinkPort& end_b() { return b_; }
  [[nodiscard]] const LinkPort& end_a() const { return a_; }
  [[nodiscard]] const LinkPort& end_b() const { return b_; }
  [[nodiscard]] const LinkConfig& config() const { return cfg_; }

  /// Fault injection: surprise-down. In-flight TLPs are dropped off the
  /// wire and counted (dropped_tlps) but not destroyed — the data-link layer
  /// never saw their ack DLLPs, so they return to the replay buffer and
  /// retransmit after retrain. Bringing the link back up resumes queued
  /// traffic — unless a route failover abandoned it first (see
  /// LinkPort::abandon_queued). Unlike an NTB-based fabric, a TCA link loss
  /// is survivable: the host-to-chip connection is unaffected (Section V).
  void set_up(bool up);
  [[nodiscard]] bool is_up() const { return up_; }

  /// Fault injection: change the bit error rate at runtime (BER burst
  /// windows in a FaultPlan). Safe to mutate — the rate cache seals only
  /// the gen/lanes/custom-rate timing parameters.
  void set_bit_error_rate(double ber) { cfg_.bit_error_rate = ber; }

 private:
  LinkConfig cfg_;
  bool up_ = true;
  Rng error_rng_;
  LinkPort a_;
  LinkPort b_;
};

}  // namespace tca::pcie
