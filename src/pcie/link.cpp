#include "pcie/link.h"

#include <cmath>
#include <utility>

#include "common/trace.h"

namespace tca::pcie {

// The serializer/replay completions below capture [this, Tlp]; they must fit
// EventFn's inline buffer so steady-state transmission never heap-allocates.
static_assert(sizeof(Tlp) + sizeof(LinkPort*) <= sim::EventFn::kInlineBytes,
              "LinkPort transmit captures must stay inline in EventFn");

void LinkConfig::seal() const {
  double raw = custom_bytes_per_sec;
  if (raw <= 0) {
    // Per-lane byte rates after line encoding:
    //   Gen1: 2.5 GT/s * 8/10 = 250 MB/s   Gen2: 5 GT/s * 8/10 = 500 MB/s
    //   Gen3: 8 GT/s * 128/130 = 984.6 MB/s
    double per_lane = 0.0;
    switch (gen) {
      case 1: per_lane = 250e6; break;
      case 2: per_lane = 500e6; break;
      case 3: per_lane = 8e9 * 128.0 / 130.0 / 8.0; break;
      default: TCA_ASSERT(false && "unsupported PCIe generation");
    }
    raw = per_lane * lanes;
  }
  rate_cache_.raw_bytes_per_sec = raw;
  rate_cache_.ps_per_byte = 1e12 / raw;
  rate_cache_.gen = gen;
  rate_cache_.lanes = lanes;
  rate_cache_.custom_bytes_per_sec = custom_bytes_per_sec;
}

void LinkConfig::seal_check() const {
  if (rate_cache_.ps_per_byte == 0) {
    seal();
    return;
  }
  TCA_ASSERT(rate_cache_.gen == gen && rate_cache_.lanes == lanes &&
             rate_cache_.custom_bytes_per_sec == custom_bytes_per_sec &&
             "LinkConfig rate parameters mutated after first use");
}

double LinkConfig::raw_bytes_per_sec() const {
  seal_check();
  return rate_cache_.raw_bytes_per_sec;
}

double LinkConfig::ps_per_byte() const {
  seal_check();
  return rate_cache_.ps_per_byte;
}

TimePs LinkConfig::serialize_ps(std::uint64_t wire_bytes) const {
  seal_check();
  return static_cast<TimePs>(std::llround(static_cast<double>(wire_bytes) *
                                          rate_cache_.ps_per_byte));
}

bool LinkPort::can_send(const Tlp& tlp) const {
  return tx_queued_ + tlp.wire_bytes() <= cfg_->tx_queue_bytes;
}

void LinkPort::send(Tlp tlp) {
  TCA_ASSERT(can_send(tlp));
  tx_queued_ += tlp.wire_bytes();
  tx_queue_.push_back(std::move(tlp));
  try_transmit();
}

void LinkPort::release_rx(std::uint64_t wire_bytes) {
  rx_free_ += wire_bytes;
  TCA_ASSERT(rx_free_ <= cfg_->rx_buffer_bytes);
  // Freed buffer space may unblock the peer's serializer.
  peer_->try_transmit();
}

void LinkPort::try_transmit() {
  if (wire_busy_ || tx_queue_.empty() || !*link_up_) return;
  const std::uint64_t wb = tx_queue_.front().wire_bytes();
  if (peer_->rx_free_ < wb) {
    // No credits: head-of-line blocked until release_rx. Time the stall so
    // per-link backpressure shows up in the metrics export.
    if (stall_since_ < 0) stall_since_ = sched_->now();
    return;
  }
  if (stall_since_ >= 0) {
    credit_stall_ps_ += sched_->now() - stall_since_;
    stall_since_ = -1;
  }

  Tlp tlp = std::move(tx_queue_.front());
  tx_queue_.pop_front();
  tx_queued_ -= wb;
  peer_->rx_free_ -= wb;
  wire_busy_ = true;

  ++tlps_sent_;
  wire_sent_ += wb;
  data_sent_ += tlp.payload.size();

  const TimePs serialize = cfg_->serialize_ps(wb);

  // Data-link-layer reliability: a corrupted TLP fails its LCRC at the
  // receiver, which NAKs; the sender retransmits from the replay buffer.
  // Receiver credits stay reserved across the retry.
  if (cfg_->bit_error_rate > 0) {
    const double p_err =
        1.0 - std::pow(1.0 - cfg_->bit_error_rate,
                       static_cast<double>(wb) * 8.0);
    if (error_rng_->next_double() < p_err) {
      ++replays_;
      if (++head_replay_count_ == calib::kReplayThreshold &&
          replay_threshold_cb_) {
        replay_threshold_cb_();
      }
      // The wire stays busy until the retry is requeued: replay-buffer
      // ordering forbids later TLPs overtaking the failed one.
      sched_->schedule_on_after(
          shard_, serialize + calib::kReplayDelayPs,
          [this, t = std::move(tlp)]() mutable {
            wire_busy_ = false;
            peer_->rx_free_ += t.wire_bytes();  // re-reserved on the retry
            tx_queued_ += t.wire_bytes();
            tx_queue_.push_front(std::move(t));
            try_transmit();
          });
      return;
    }
  }
  head_replay_count_ = 0;

  if (Trace::instance().enabled() && !cfg_->name.empty()) {
    Trace::instance().duration(
        cfg_->name,
        std::string(to_string(tlp.type)) + " " +
            units::format_size(tlp.payload.empty() ? wb
                                                   : tlp.payload.size()),
        sched_->now(), sched_->now() + serialize);
  }
  wire_done_event_ = sched_->schedule_on_after(shard_, serialize, [this] {
    wire_done_event_ = sim::Scheduler::kInvalidEvent;
    wire_busy_ = false;
    try_transmit();
    if (tx_ready_) tx_ready_();
  });
  // Track the delivery event so a surprise-down can pull the TLP off the
  // wire. Deliveries fire in FIFO order (the serializer forbids overtaking),
  // so the handler always consumes the front element. The delivery crosses
  // the link, so it is tagged with the peer endpoint's shard.
  in_flight_.push_back(InFlight{sim::Scheduler::kInvalidEvent, std::move(tlp)});
  in_flight_.back().event = sched_->schedule_on_after(
      peer_->shard_, serialize + cfg_->propagation_ps, [this] {
        Tlp t = std::move(in_flight_.front().tlp);
        in_flight_.pop_front();
        peer_->deliver(std::move(t));
      });
}

void LinkPort::on_link_down() {
  // Surprise-down: TLPs in flight never reach the peer. The data-link layer
  // never received their ack DLLPs, so they go back to the head of the
  // replay buffer (front of the egress queue, newest pushed first to keep
  // original order) and their reserved receiver credits are returned. Count
  // and trace every drop — silent TLP loss is how fault bugs hide.
  const std::size_t dropped = in_flight_.size();
  while (!in_flight_.empty()) {
    InFlight& f = in_flight_.back();
    TCA_ASSERT(sched_->cancel(f.event));
    ++dropped_tlps_;
    peer_->rx_free_ += f.tlp.wire_bytes();
    tx_queued_ += f.tlp.wire_bytes();
    tx_queue_.push_front(std::move(f.tlp));
    in_flight_.pop_back();
  }
  if (wire_done_event_ != sim::Scheduler::kInvalidEvent) {
    TCA_ASSERT(sched_->cancel(wire_done_event_));
    wire_done_event_ = sim::Scheduler::kInvalidEvent;
    wire_busy_ = false;
  }
  head_replay_count_ = 0;
  if (dropped > 0 && Trace::instance().enabled() && !cfg_->name.empty()) {
    Trace::instance().instant(
        cfg_->name, "link-down: " + std::to_string(dropped) + " TLPs dropped",
        sched_->now());
  }
}

std::size_t LinkPort::abandon_queued() {
  // Only queued (never-transmitted or surprise-down-returned) TLPs are
  // discarded. TLPs already past the serializer stay untouched: when the
  // link is up they are committed to the wire and deliver exactly once, and
  // when it is down on_link_down has already pulled them back into the
  // queue we are about to clear. Queued TLPs hold no receiver credits
  // (credits are reserved at transmit, and on_link_down returns them), so
  // no credit bookkeeping is needed here.
  const std::size_t n = tx_queue_.size();
  for (const Tlp& t : tx_queue_) tx_queued_ -= t.wire_bytes();
  tx_queue_.clear();
  abandoned_tlps_ += n;
  if (n > 0 && Trace::instance().enabled() && !cfg_->name.empty()) {
    Trace::instance().instant(
        cfg_->name,
        "failover: " + std::to_string(n) + " held TLPs abandoned",
        sched_->now());
  }
  return n;
}

void LinkPort::deliver(Tlp tlp) {
  TCA_ASSERT(sink_ != nullptr && "LinkPort has no sink attached");
  sink_->on_tlp(std::move(tlp), *this);
}

PcieLink::PcieLink(sim::Scheduler& sched, LinkConfig cfg)
    : cfg_(cfg), error_rng_(cfg.error_seed), a_(sched, cfg_), b_(sched, cfg_) {
  a_.peer_ = &b_;
  b_.peer_ = &a_;
  a_.link_up_ = &up_;
  b_.link_up_ = &up_;
  a_.error_rng_ = &error_rng_;
  b_.error_rng_ = &error_rng_;
}

void PcieLink::set_up(bool up) {
  if (up_ == up) return;
  up_ = up;
  if (!up_) {
    a_.on_link_down();
    b_.on_link_down();
  }
  if (a_.link_state_cb_) a_.link_state_cb_(up_);
  if (b_.link_state_cb_) b_.link_state_cb_(up_);
  if (up_) {
    a_.try_transmit();
    b_.try_transmit();
  }
}

}  // namespace tca::pcie
