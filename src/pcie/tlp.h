// Transaction-layer packets (TLPs).
//
// The simulator models PCIe at TLP granularity: Memory Write Request
// (posted), Memory Read Request (non-posted), Completion-with-Data, and a
// vendor-defined message used by PEARL for end-to-end delivery notification.
// TLPs carry *real payload bytes* so data integrity is checkable end-to-end.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "calib/calibration.h"
#include "common/units.h"

namespace tca::pcie {

enum class TlpType : std::uint8_t {
  kMemWrite,    ///< MWr: posted write, routed by address
  kMemRead,     ///< MRd: non-posted read request, routed by address
  kCompletion,  ///< CplD: read completion with data, routed by requester id
  kVendorMsg,   ///< PEARL delivery notification, routed by address
};

const char* to_string(TlpType type);

/// Identifies a requester (bus/device function in real PCIe; a flat device
/// id here). Used to route completions back to the issuing device.
using DeviceId = std::uint16_t;

/// Observer a final-hop PEACH2 chip plants on a MemWrite so the memory
/// endpoint (host DRAM controller, GPU GDDR queue) can announce the instant
/// the payload actually commits. This times the PEARL delivery notification
/// off the real commit — including link serialization, root-complex and
/// device queueing, and the endpoint's own commit latency — so an ack can
/// never outrun its data through a congested path. Dropped or abandoned
/// TLPs never notify: the missing ack is what makes the source DMAC's
/// watchdog retry the chain.
class CommitNotifier {
 public:
  // tca-protocol: acks-on-commit
  virtual void on_write_commit(std::uint64_t ack_address,
                               std::uint8_t tag) = 0;

 protected:
  ~CommitNotifier() = default;
};

struct Tlp {
  TlpType type = TlpType::kMemWrite;

  /// Target PCIe bus address (MWr/MRd/kVendorMsg). For completions this
  /// holds the original request address (useful for reassembly offsets).
  std::uint64_t address = 0;

  /// Requested byte count for MRd; payload size for MWr/CplD.
  std::uint32_t length = 0;

  DeviceId requester = 0;
  std::uint8_t tag = 0;

  /// Remaining byte count for multi-completion reads (PCIe's Byte Count
  /// field): the requester knows the read finished when this completion's
  /// payload covers the remainder.
  std::uint32_t byte_count_remaining = 0;

  /// PEARL delivery notification: when non-zero on a MemWrite, the chip
  /// that forwards this TLP out its North port (i.e. delivers it into the
  /// destination node) arranges for a kVendorMsg with the same `tag` to be
  /// sent to this global mailbox address once the write commits (see
  /// CommitNotifier). Used by the DMAC's remote-write completion window.
  std::uint64_t ack_address = 0;

  std::vector<std::byte> payload;

  /// When non-null on a MemWrite, the committing endpoint calls
  /// `commit_notifier->on_write_commit(ack_address, tag)` at the simulated
  /// instant the payload lands in memory. Set by the final-hop chip, which
  /// leaves `ack_address` populated for the endpoint to echo back.
  CommitNotifier* commit_notifier = nullptr;

  /// Bytes this TLP occupies on the wire (payload + header/DLL/PHY framing),
  /// using the overhead terms of the paper's peak-bandwidth formula.
  [[nodiscard]] std::uint64_t wire_bytes() const;

  [[nodiscard]] bool carries_data() const {
    return type == TlpType::kMemWrite || type == TlpType::kCompletion;
  }

  /// Builders -------------------------------------------------------------

  static Tlp mem_write(std::uint64_t address, std::span<const std::byte> data,
                       DeviceId requester = 0);
  static Tlp mem_read(std::uint64_t address, std::uint32_t length,
                      DeviceId requester, std::uint8_t tag);
  static Tlp completion(const Tlp& request, std::span<const std::byte> data,
                        std::uint32_t byte_count_remaining);
  // tca-protocol: acks-on-commit
  static Tlp vendor_msg(std::uint64_t address, DeviceId requester,
                        std::uint8_t tag);
};

/// Splits a byte range into TLP-payload-sized chunks honoring
/// MaxPayloadSize. f(offset, chunk_len) is invoked in address order.
template <typename F>
void for_each_payload_chunk(std::uint64_t offset, std::uint64_t total,
                            std::uint32_t max_payload, F&& f) {
  std::uint64_t done = 0;
  while (done < total) {
    const auto chunk = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(max_payload, total - done));
    f(offset + done, chunk);
    done += chunk;
  }
}

}  // namespace tca::pcie
