#include "baseline/ib_fabric.h"

#include <cmath>

namespace tca::baseline {

IbFabric::IbFabric(sim::Scheduler& sched,
                   std::vector<node::ComputeNode*> nodes, IbConfig config)
    : sched_(sched), cfg_(config), nodes_(std::move(nodes)) {
  TCA_ASSERT(!nodes_.empty());
  TCA_ASSERT(cfg_.rails >= 1);
  nics_.resize(nodes_.size());
  for (auto& nic : nics_) {
    nic.engine = std::make_unique<sim::Semaphore>(sched_, 1);
  }
}

sim::Task<> IbFabric::rdma_write(std::uint32_t src_node,
                                 std::uint32_t dst_node,
                                 std::span<const std::byte> data,
                                 std::uint64_t dst_offset, int use_rails) {
  co_await rdma_write_notify(src_node, dst_node, data, dst_offset,
                             /*delivered=*/nullptr, use_rails);
}

sim::Task<> IbFabric::rdma_write_notify(std::uint32_t src_node,
                                        std::uint32_t dst_node,
                                        std::span<const std::byte> data,
                                        std::uint64_t dst_offset,
                                        sim::Trigger* delivered,
                                        int use_rails) {
  TCA_ASSERT(src_node < size() && dst_node < size());
  TCA_ASSERT(src_node != dst_node);
  const int rails = use_rails > 0 ? use_rails : cfg_.rails;
  const double rate =
      cfg_.bytes_per_sec_per_rail * std::min(rails, cfg_.rails);

  // Serialize on the sender NIC.
  sim::Semaphore& engine = *nics_[src_node].engine;
  co_await engine.acquire();
  const auto send_ps = static_cast<TimePs>(
      std::llround(static_cast<double>(data.size()) / rate * 1e12));
  co_await sim::Delay(sched_, send_ps);
  ++messages_;
  bytes_sent_ += data.size();
  engine.release();

  // Wire + switch latency, then the bytes land in destination host memory.
  std::vector<std::byte> payload;
  if (dst_offset != kTimingOnly) {
    payload.assign(data.begin(), data.end());
  }
  sched_.schedule_after(
      cfg_.verbs_latency_ps,
      [this, dst_node, dst_offset, p = std::move(payload), delivered] {
        if (dst_offset != kTimingOnly) {
          nodes_[dst_node]->host_dram().write(dst_offset, p);
        }
        if (delivered != nullptr) delivered->fire();
      });
}

}  // namespace tca::baseline
