#include "baseline/ntb.h"

namespace tca::baseline {

NtbBridge::NtbBridge(sim::Scheduler& sched, node::ComputeNode& node_a,
                     node::ComputeNode& node_b, NtbConfig config)
    : sched_(sched), cfg_(config), nodes_{&node_a, &node_b} {
  for (int side = 0; side < 2; ++side) {
    endpoints_[static_cast<std::size_t>(side)] =
        std::make_unique<Endpoint>(*this, side);
    links_[static_cast<std::size_t>(side)] = std::make_unique<pcie::PcieLink>(
        sched, pcie::LinkConfig{.gen = 2,
                                .lanes = 8,
                                .name = "ntb/side" + std::to_string(side)});
    auto& link = *links_[static_cast<std::size_t>(side)];
    // The NTB endpoint claims the aperture BAR on its node's bus. Device id
    // 200+side keeps clear of node-local ids.
    const Status st =
        nodes_[static_cast<std::size_t>(side)]->socket(0).attach_device(
            static_cast<pcie::DeviceId>(200 + side), link.end_a(),
            {{cfg_.aperture_base, cfg_.aperture_bytes}});
    TCA_ASSERT(st.is_ok());
    link.end_b().set_sink(endpoints_[static_cast<std::size_t>(side)].get());
  }
}

void NtbBridge::Endpoint::on_tlp(pcie::Tlp tlp, pcie::LinkPort& port) {
  port.release_rx(tlp.wire_bytes());
  bridge_.forward(side_, std::move(tlp));
}

void NtbBridge::forward(int from_side, pcie::Tlp tlp) {
  if (!link_up_) {
    // The Section V failure mode: the host expects an EP that can no longer
    // respond; the transaction times out and the hierarchy wedges until
    // reboot.
    hung_[from_side & 1] = true;
    ++dropped_;
    return;
  }
  if (tlp.type != pcie::TlpType::kMemWrite) {
    // Posted-write path only (reads would need completion forwarding across
    // the bridge; the comparison needs only the put path).
    ++dropped_;
    return;
  }
  // Address translation: aperture offset -> peer host window.
  const std::uint64_t offset = tlp.address - cfg_.aperture_base;
  const std::uint64_t peer_addr =
      node::layout::kHostBase + cfg_.peer_window_offset + offset;
  const int to_side = 1 - from_side;
  ++forwarded_;

  sched_.schedule_after(
      cfg_.translation_ps,
      [this, to_side, peer_addr, payload = std::move(tlp.payload)]() mutable {
        pcie::Tlp out = pcie::Tlp::mem_write(peer_addr, payload);
        // Inject into the peer's root complex as if from the NTB EP.
        nodes_[static_cast<std::size_t>(to_side)]->socket(0).inject_from_cpu(
            std::move(out));
      });
}

}  // namespace tca::baseline
