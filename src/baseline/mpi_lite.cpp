#include "baseline/mpi_lite.h"

#include <cmath>

namespace tca::baseline {

using calib::kHostCopyBytesPerSec;
using calib::kIbEagerThresholdBytes;
using calib::kIbRendezvousRttPs;
using calib::kMpiSoftwareOverheadPs;

namespace {

TimePs copy_ps(std::uint64_t bytes) {
  return static_cast<TimePs>(std::llround(
      static_cast<double>(bytes) / kHostCopyBytesPerSec * 1e12));
}

/// Eager ring: 2 MiB region near the top of the receiver's host DRAM
/// (below the PEACH2 driver's descriptor table, so hybrid TCA+MPI setups
/// don't collide).
constexpr std::uint64_t kEagerRingBytes = 2ull << 20;
constexpr std::uint64_t kEagerRingFromTop = 4ull << 20;

}  // namespace

MpiLite::MpiLite(sim::Scheduler& sched, IbFabric& fabric)
    : sched_(sched), fabric_(fabric), eager_cursor_(fabric.size(), 0) {}

MpiLite::Mailbox& MpiLite::mailbox(const Key& key) {
  Mailbox& box = mailboxes_[key];
  if (!box.arrived) {
    box.arrived = std::make_unique<sim::Trigger>(sched_);
    box.recv_posted = std::make_unique<sim::Trigger>(sched_);
  }
  return box;
}

std::uint64_t MpiLite::eager_slot(std::uint32_t dst, std::uint64_t bytes) {
  TCA_ASSERT(bytes <= kEagerRingBytes);
  std::uint64_t& cursor = eager_cursor_[dst];
  if (cursor + bytes > kEagerRingBytes) cursor = 0;
  const std::uint64_t slot = cursor;
  cursor += (bytes + 63) & ~63ull;  // cacheline-align slots
  const std::uint64_t ring_base =
      fabric_.host_dram_bytes(dst) - kEagerRingFromTop;
  return ring_base + slot;
}

sim::Task<> MpiLite::send(std::uint32_t rank, std::uint32_t dst, int tag,
                          std::span<const std::byte> data) {
  TCA_ASSERT(rank != dst);
  Mailbox& box = mailbox(Key{rank, dst, tag});
  co_await sim::Delay(sched_, kMpiSoftwareOverheadPs);

  if (data.size() <= kIbEagerThresholdBytes) {
    ++eager_sends_;
    // Stage into the pinned comm buffer, then fire one fabric message into
    // the receiver's eager ring.
    co_await sim::Delay(sched_, copy_ps(data.size()));
    const std::uint64_t slot = eager_slot(dst, data.size());
    // Keep our own payload copy for the functional handoff (the eager ring
    // bytes model the physical landing zone).
    std::vector<std::byte> payload(data.begin(), data.end());
    sim::Trigger delivered(sched_);
    co_await fabric_.rdma_write_notify(rank, dst, data, slot, &delivered);
    // MPI_Send returns once the staged buffer is handed to the NIC; hand
    // the payload to the matching layer when it physically arrives.
    co_await delivered.wait();
    box.messages.push_back(std::move(payload));
    box.arrived->pulse();
    co_return;
  }

  // Rendezvous: handshake with the receiver (RTS/CTS round trip), then the
  // zero-copy transfer directly into the posted buffer.
  ++rndv_sends_;
  while (box.waiting_recvs == 0) co_await box.recv_posted->wait();
  co_await sim::Delay(sched_, kIbRendezvousRttPs);
  std::vector<std::byte> payload(data.begin(), data.end());
  sim::Trigger delivered(sched_);
  // Zero-copy: the bytes land directly in the receiver's posted buffer,
  // which the matching layer (not host-DRAM offsets) tracks.
  co_await fabric_.rdma_write_notify(rank, dst, data, IbFabric::kTimingOnly,
                                     &delivered);
  co_await delivered.wait();
  box.messages.push_back(std::move(payload));
  box.arrived->pulse();
}

sim::Task<std::vector<std::byte>> MpiLite::recv(std::uint32_t rank,
                                                std::uint32_t src, int tag) {
  Mailbox& box = mailbox(Key{src, rank, tag});
  co_await sim::Delay(sched_, kMpiSoftwareOverheadPs);
  ++box.waiting_recvs;
  box.recv_posted->pulse();
  while (box.messages.empty()) co_await box.arrived->wait();
  std::vector<std::byte> data = std::move(box.messages.front());
  box.messages.pop_front();
  --box.waiting_recvs;
  // Copy out of the comm buffer into the application buffer (eager path
  // pays this; rendezvous landed in place, model the tail software cost).
  if (data.size() <= kIbEagerThresholdBytes) {
    co_await sim::Delay(sched_, copy_ps(data.size()));
  } else {
    co_await sim::Delay(sched_, kMpiSoftwareOverheadPs);
  }
  co_return data;
}

sim::Task<std::vector<std::byte>> MpiLite::sendrecv(
    std::uint32_t rank, std::uint32_t peer, int tag,
    std::span<const std::byte> data) {
  sim::Task<> tx = send(rank, peer, tag, data);
  std::vector<std::byte> result = co_await recv(rank, peer, tag);
  co_await std::move(tx);
  co_return result;
}

}  // namespace tca::baseline
