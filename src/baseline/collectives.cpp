#include "baseline/collectives.h"

#include <array>
#include <cstring>

namespace tca::baseline {

namespace {
/// Tag space partitioning: collectives use high tags so they never collide
/// with application point-to-point traffic.
constexpr int kBarrierTagBase = 1 << 20;
constexpr int kAllreduceTagBase = 1 << 21;
}  // namespace

sim::Task<> Collectives::barrier(std::uint32_t rank) {
  // Dissemination barrier: in round k, rank r signals r + 2^k and waits for
  // r - 2^k (mod n). Tags encode the round; each call uses a fresh epoch
  // window so back-to-back barriers cannot cross-match.
  const int epoch = barrier_epochs_[rank]++;
  std::array<std::byte, 1> token{std::byte{1}};
  int round = 0;
  for (std::uint32_t dist = 1; dist < ranks_; dist <<= 1, ++round) {
    const std::uint32_t to = (rank + dist) % ranks_;
    const std::uint32_t from = (rank + ranks_ - dist) % ranks_;
    const int tag = kBarrierTagBase + epoch * 64 + round;
    sim::Task<> tx = mpi_.send(rank, to, tag, token);
    (void)co_await mpi_.recv(rank, from, tag);
    co_await std::move(tx);
  }
}

sim::Task<> Collectives::allreduce_sum(std::uint32_t rank,
                                       std::span<double> data) {
  TCA_ASSERT(data.size() % ranks_ == 0);
  const std::size_t chunk = data.size() / ranks_;
  const std::uint32_t next = (rank + 1) % ranks_;
  const std::uint32_t prev = (rank + ranks_ - 1) % ranks_;

  auto chunk_bytes = [&](std::uint32_t c) {
    return std::as_bytes(std::span(data.data() + c * chunk, chunk));
  };

  // Phase 1: reduce-scatter.
  for (std::uint32_t s = 0; s < ranks_ - 1; ++s) {
    const std::uint32_t send_chunk = (rank + ranks_ - s) % ranks_;
    const std::uint32_t recv_chunk = (rank + ranks_ - s - 1) % ranks_;
    const int tag = kAllreduceTagBase + static_cast<int>(s);
    sim::Task<> tx = mpi_.send(rank, next, tag, chunk_bytes(send_chunk));
    std::vector<std::byte> incoming = co_await mpi_.recv(rank, prev, tag);
    co_await std::move(tx);
    TCA_ASSERT(incoming.size() == chunk * sizeof(double));
    const auto* in = reinterpret_cast<const double*>(incoming.data());
    for (std::size_t i = 0; i < chunk; ++i) {
      data[recv_chunk * chunk + i] += in[i];
    }
  }
  // Phase 2: allgather.
  for (std::uint32_t s = 0; s < ranks_ - 1; ++s) {
    const std::uint32_t send_chunk = (rank + 1 + ranks_ - s) % ranks_;
    const std::uint32_t recv_chunk = (rank + ranks_ - s) % ranks_;
    const int tag = kAllreduceTagBase + 1024 + static_cast<int>(s);
    sim::Task<> tx = mpi_.send(rank, next, tag, chunk_bytes(send_chunk));
    std::vector<std::byte> incoming = co_await mpi_.recv(rank, prev, tag);
    co_await std::move(tx);
    std::memcpy(data.data() + recv_chunk * chunk, incoming.data(),
                incoming.size());
  }
}

}  // namespace tca::baseline
