// The conventional GPU-cluster communication path the paper's introduction
// motivates against (Section III-A):
//
//   1) copy from the memory in GPU-A to the memory in Node-A through PCIe,
//   2) copy from the memory in Node-A to the memory in Node-B through the
//      interconnect,
//   3) copy from the memory in Node-B to the memory in GPU-B through PCIe.
//
// Implemented literally: cudaMemcpy D2H -> MPI send/recv over IB ->
// cudaMemcpy H2D, with an optional chunked-pipelining variant (what tuned
// MPI+CUDA applications do to partially hide the staging copies).
#pragma once

#include <cstdint>

#include "baseline/mpi_lite.h"
#include "gpu/gpu_device.h"
#include "node/compute_node.h"
#include "sim/task.h"

namespace tca::baseline {

class ConventionalGpuComm {
 public:
  ConventionalGpuComm(MpiLite& mpi, std::vector<node::ComputeNode*> nodes)
      : mpi_(mpi), nodes_(std::move(nodes)) {}

  /// GPU-to-GPU transfer over nodes via the 3-copy path.
  sim::Task<> send_gpu(std::uint32_t rank, int gpu, gpu::DevPtr src,
                       std::uint64_t bytes, std::uint32_t dst_rank, int tag);
  sim::Task<> recv_gpu(std::uint32_t rank, int gpu, gpu::DevPtr dst,
                       std::uint64_t bytes, std::uint32_t src_rank, int tag);

  /// Chunked-pipelined variant: overlaps D2H/wire/H2D at `chunk` bytes
  /// granularity. The tuned baseline for the bandwidth comparison.
  sim::Task<> send_gpu_pipelined(std::uint32_t rank, int gpu,
                                 gpu::DevPtr src, std::uint64_t bytes,
                                 std::uint32_t dst_rank, int tag,
                                 std::uint64_t chunk = 256 << 10);
  sim::Task<> recv_gpu_pipelined(std::uint32_t rank, int gpu,
                                 gpu::DevPtr dst, std::uint64_t bytes,
                                 std::uint32_t src_rank, int tag,
                                 std::uint64_t chunk = 256 << 10);

 private:
  MpiLite& mpi_;
  std::vector<node::ComputeNode*> nodes_;
};

}  // namespace tca::baseline
