// MPI-style collectives over MpiLite: dissemination barrier and ring
// allreduce. Used as the conventional-stack comparison for the TCA
// collective examples (allreduce_ring) and by the halo-exchange workload.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "baseline/mpi_lite.h"

namespace tca::baseline {

class Collectives {
 public:
  Collectives(MpiLite& mpi, std::uint32_t ranks)
      : mpi_(mpi), ranks_(ranks), barrier_epochs_(ranks, 0) {}

  [[nodiscard]] std::uint32_t ranks() const { return ranks_; }

  /// Dissemination barrier: ceil(log2(n)) rounds of pairwise messages.
  sim::Task<> barrier(std::uint32_t rank);

  /// Ring allreduce (sum) of doubles, in place. Classic two-phase
  /// reduce-scatter + allgather; every rank ends with the identical global
  /// sum. `data.size()` must be divisible by the rank count.
  sim::Task<> allreduce_sum(std::uint32_t rank, std::span<double> data);

 private:
  MpiLite& mpi_;
  std::uint32_t ranks_;
  /// Per-rank barrier entry counters (every rank passes the same barrier
  /// sequence, so counting locally keeps epochs consistent).
  std::vector<int> barrier_epochs_;
};

}  // namespace tca::baseline
