// Non-transparent bridge (NTB) baseline — the Section V related work.
//
// "The non-transparent bridge (NTB), which is embedded in the PCI-E switch,
//  allows inter-node communication by means of a special function. ... The
//  bridge behaves as two different EPs ... and address translation is
//  performed between the upstream port and the downstream port within the
//  NTB. ... However, the NTB is not defined in the standard of PCI-E ...
//  Furthermore, during the BIOS scan at boot time, the host must recognize
//  the EPs in the NTB and disconnection of the node causes a system reboot."
//
// Modeled: a bridge joining exactly two nodes (NTB is point-to-point; no
// fabric, no routing). Each side exposes an aperture BAR; posted writes into
// it are address-translated and forwarded into the peer node's host memory.
// The fragility is modeled too: if the inter-node link is down, an access to
// the aperture leaves the issuing node's PCIe hierarchy wedged (`hung()`),
// requiring a reboot — unlike PEACH2, whose host link is independent of the
// fabric state (see tests/fault_test.cpp for the contrast).
#pragma once

#include <cstdint>
#include <memory>

#include "node/compute_node.h"
#include "pcie/link.h"
#include "sim/scheduler.h"

namespace tca::baseline {

struct NtbConfig {
  /// Aperture BAR each side exposes (same local bus address on both nodes).
  std::uint64_t aperture_base = 0x38'0000'0000ull;
  std::uint64_t aperture_bytes = 16ull << 20;
  /// Peer host-memory offset the aperture translates to.
  std::uint64_t peer_window_offset = 0;
  /// Translation + switch traversal latency per TLP.
  TimePs translation_ps = units::ns(150);
};

class NtbBridge {
 public:
  NtbBridge(sim::Scheduler& sched, node::ComputeNode& node_a,
            node::ComputeNode& node_b, NtbConfig config = {});

  [[nodiscard]] const NtbConfig& config() const { return cfg_; }

  /// Inter-node cable state. Taking it down does NOT stall traffic like a
  /// PEACH2 cable: the next aperture access wedges the issuing node.
  void set_link_up(bool up) { link_up_ = up; }
  [[nodiscard]] bool link_up() const { return link_up_; }

  /// True once a node accessed the aperture during an outage: its PCIe
  /// hierarchy is wedged until reboot (the Section V failure mode).
  [[nodiscard]] bool hung(int side) const { return hung_[side & 1]; }

  /// Clears the wedge — models the reboot the paper says is required.
  void reboot(int side) { hung_[side & 1] = false; }

  [[nodiscard]] std::uint64_t forwarded_tlps() const { return forwarded_; }
  [[nodiscard]] std::uint64_t dropped_tlps() const { return dropped_; }

 private:
  /// One NTB endpoint: EP on its node's bus, forwards into the peer.
  class Endpoint : public pcie::TlpSink {
   public:
    Endpoint(NtbBridge& bridge, int side) : bridge_(bridge), side_(side) {}
    void on_tlp(pcie::Tlp tlp, pcie::LinkPort& port) override;

   private:
    NtbBridge& bridge_;
    int side_;
  };

  void forward(int from_side, pcie::Tlp tlp);

  sim::Scheduler& sched_;
  NtbConfig cfg_;
  std::array<node::ComputeNode*, 2> nodes_;
  std::array<std::unique_ptr<pcie::PcieLink>, 2> links_;
  std::array<std::unique_ptr<Endpoint>, 2> endpoints_;
  bool link_up_ = true;
  std::array<bool, 2> hung_{false, false};
  std::uint64_t forwarded_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace tca::baseline
