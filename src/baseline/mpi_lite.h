// Minimal MPI-like message layer over the IB fabric.
//
// Models what the TCA architecture eliminates (Sections I and V): the
// protocol stack between two host processes. Eager protocol below the
// threshold (staging copy + one fabric message), rendezvous above it
// (RTS/CTS handshake RTT + zero-copy transfer). All costs come from the
// calibration constants; payloads are real bytes landed in the receiver's
// host memory before being handed to the application.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "baseline/ib_fabric.h"
#include "calib/calibration.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace tca::baseline {

class MpiLite {
 public:
  MpiLite(sim::Scheduler& sched, IbFabric& fabric);

  /// Blocking-semantics send (returns when the send buffer is reusable:
  /// eager = after NIC send of the staged copy; rendezvous = after the
  /// zero-copy transfer completes).
  sim::Task<> send(std::uint32_t rank, std::uint32_t dst, int tag,
                   std::span<const std::byte> data);

  /// Blocking receive; returns the message payload.
  sim::Task<std::vector<std::byte>> recv(std::uint32_t rank,
                                         std::uint32_t src, int tag);

  /// Paired exchange (common halo pattern): sends and receives run
  /// concurrently on the calling rank.
  sim::Task<std::vector<std::byte>> sendrecv(std::uint32_t rank,
                                             std::uint32_t peer, int tag,
                                             std::span<const std::byte> data);

  [[nodiscard]] std::uint64_t eager_sends() const { return eager_sends_; }
  [[nodiscard]] std::uint64_t rendezvous_sends() const { return rndv_sends_; }

 private:
  struct Mailbox {
    std::deque<std::vector<std::byte>> messages;  // arrived, unmatched
    std::unique_ptr<sim::Trigger> arrived;
    std::uint32_t waiting_recvs = 0;  // posted receives (rendezvous CTS gate)
    std::unique_ptr<sim::Trigger> recv_posted;
  };
  using Key = std::tuple<std::uint32_t, std::uint32_t, int>;  // src,dst,tag

  Mailbox& mailbox(const Key& key);

  /// Rotating eager-region offset in the receiver's host DRAM.
  std::uint64_t eager_slot(std::uint32_t dst, std::uint64_t bytes);

  sim::Scheduler& sched_;
  IbFabric& fabric_;
  std::map<Key, Mailbox> mailboxes_;
  std::vector<std::uint64_t> eager_cursor_;
  std::uint64_t eager_sends_ = 0;
  std::uint64_t rndv_sends_ = 0;
};

}  // namespace tca::baseline
