// InfiniBand fabric model (the conventional interconnect of Table I).
//
// HA-PACS connects its nodes with dual-rail InfiniBand QDR through a
// full-bisection fat tree; for the latency/bandwidth comparison against TCA
// only the per-message behaviour matters: verbs-level one-way latency, rail
// bandwidth, and NIC serialization. Messages carry real bytes into the
// destination node's host memory, so the baselines are functionally checked
// just like the TCA path.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "calib/calibration.h"
#include "common/error.h"
#include "node/compute_node.h"
#include "sim/scheduler.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace tca::baseline {

struct IbConfig {
  int rails = 2;  ///< Table I: "Mellanox Connect-X3 Dual-port QDR"
  double bytes_per_sec_per_rail = calib::kIbBytesPerSecPerRail;
  TimePs verbs_latency_ps = calib::kIbRawLatencyPs;
};

/// Verbs-level RDMA fabric between the nodes of a cluster. One NIC per
/// node; each rail serializes sends independently (messages are striped
/// across rails at 4 KiB granularity when both are idle — we model the
/// aggregate rate for multi-rail sends, which is what MPI achieves with
/// rail binding).
class IbFabric {
 public:
  IbFabric(sim::Scheduler& sched, std::vector<node::ComputeNode*> nodes,
           IbConfig config = {});

  [[nodiscard]] const IbConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }

  /// Sentinel for dst_offset: model timing/delivery but skip the physical
  /// landing (used when the destination buffer is tracked elsewhere).
  static constexpr std::uint64_t kTimingOnly = ~0ull;

  /// RDMA write: src node's NIC reads `data` (already staged in pinned
  /// memory — staging costs are the caller's, i.e. MPI's) and writes it
  /// into dst node's host memory at `dst_offset`. Completes at the sender
  /// when the NIC finishes the send; delivery lands after wire latency.
  /// `use_rails` limits striping (1 = single rail).
  sim::Task<> rdma_write(std::uint32_t src_node, std::uint32_t dst_node,
                         std::span<const std::byte> data,
                         std::uint64_t dst_offset, int use_rails = 0);

  /// Completion signal: fires `delivered` (if non-null) when the bytes are
  /// visible at the destination (used by MpiLite to complete receives).
  /// The trigger must outlive the delivery (wire latency past send
  /// completion).
  sim::Task<> rdma_write_notify(std::uint32_t src_node,
                                std::uint32_t dst_node,
                                std::span<const std::byte> data,
                                std::uint64_t dst_offset,
                                sim::Trigger* delivered, int use_rails = 0);

  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] std::uint64_t messages_sent() const { return messages_; }
  [[nodiscard]] std::uint64_t host_dram_bytes(std::uint32_t node) const {
    return nodes_.at(node)->host_dram().size();
  }

 private:
  /// Per-NIC serialization: one DMA engine per rail set.
  struct Nic {
    std::unique_ptr<sim::Semaphore> engine;  // 1 permit: serializes sends
  };

  sim::Scheduler& sched_;
  IbConfig cfg_;
  std::vector<node::ComputeNode*> nodes_;
  std::vector<Nic> nics_;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t messages_ = 0;
};

}  // namespace tca::baseline
