#include "baseline/conventional.h"

namespace tca::baseline {

sim::Task<> ConventionalGpuComm::send_gpu(std::uint32_t rank, int gpu,
                                          gpu::DevPtr src,
                                          std::uint64_t bytes,
                                          std::uint32_t dst_rank, int tag) {
  // Step 1: GPU memory -> host staging buffer (cudaMemcpy D2H).
  std::vector<std::byte> staging(bytes);
  co_await nodes_[rank]->gpu(gpu).memcpy_d2h(src, staging);
  // Step 2: host -> host over the interconnect (MPI).
  co_await mpi_.send(rank, dst_rank, tag, staging);
}

sim::Task<> ConventionalGpuComm::recv_gpu(std::uint32_t rank, int gpu,
                                          gpu::DevPtr dst,
                                          std::uint64_t bytes,
                                          std::uint32_t src_rank, int tag) {
  std::vector<std::byte> staging = co_await mpi_.recv(rank, src_rank, tag);
  TCA_ASSERT(staging.size() == bytes);
  // Step 3: host staging buffer -> GPU memory (cudaMemcpy H2D).
  co_await nodes_[rank]->gpu(gpu).memcpy_h2d(staging, dst);
}

sim::Task<> ConventionalGpuComm::send_gpu_pipelined(
    std::uint32_t rank, int gpu, gpu::DevPtr src, std::uint64_t bytes,
    std::uint32_t dst_rank, int tag, std::uint64_t chunk) {
  TCA_ASSERT(chunk > 0);
  std::uint64_t off = 0;
  // `in_flight_buf` must outlive the send that reads it (MPI takes a span).
  std::vector<std::byte> in_flight_buf;
  sim::Task<> previous_send = []() -> sim::Task<> { co_return; }();
  int seq = 0;
  while (off < bytes) {
    const std::uint64_t len = std::min(chunk, bytes - off);
    std::vector<std::byte> staging(len);
    // D2H of chunk k overlaps the MPI send of chunk k-1.
    co_await nodes_[rank]->gpu(gpu).memcpy_d2h(src + off, staging);
    co_await std::move(previous_send);
    in_flight_buf = std::move(staging);
    previous_send = mpi_.send(rank, dst_rank, tag * 1000 + seq, in_flight_buf);
    off += len;
    ++seq;
  }
  co_await std::move(previous_send);
}

sim::Task<> ConventionalGpuComm::recv_gpu_pipelined(
    std::uint32_t rank, int gpu, gpu::DevPtr dst, std::uint64_t bytes,
    std::uint32_t src_rank, int tag, std::uint64_t chunk) {
  TCA_ASSERT(chunk > 0);
  std::uint64_t off = 0;
  int seq = 0;
  while (off < bytes) {
    const std::uint64_t len = std::min(chunk, bytes - off);
    std::vector<std::byte> staging =
        co_await mpi_.recv(rank, src_rank, tag * 1000 + seq);
    TCA_ASSERT(staging.size() == len);
    co_await nodes_[rank]->gpu(gpu).memcpy_h2d(staging, dst + off);
    off += len;
    ++seq;
  }
}

}  // namespace tca::baseline
