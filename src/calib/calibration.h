// Calibration constants.
//
// Every latency/throughput parameter of the simulator lives here, each
// annotated with the paper quantity (Hanawa et al., IPDPSW 2013) it is
// calibrated against. The model is mechanistic — these constants parameterize
// real protocol machinery (TLP serialization, descriptor engines, routing
// pipelines), they are not curve-fit lookup tables.
//
// Derivation sketch for the DMA engine constants (Section IV-A):
//   * PCIe Gen2 x8 raw rate: 5 GT/s x 8 lanes x 8b/10b = 4.0 GB/s
//     => 250 ps per byte on the wire.
//   * MaxPayloadSize 256 B; per-TLP overhead 16 B TL header + 2 B DLL
//     sequence + 4 B LCRC + 2 B framing = 24 B (the paper's formula), so a
//     256 B payload occupies 280 B => theoretical peak
//     4 GB/s x 256/280 = 3.657 GB/s ("3.66" in the paper).
//   * 255 chained 4 KiB writes measure 3.3 GB/s. 4 KiB = 16 TLPs = 1120 ns
//     wire time, so per-descriptor total must be ~1233 ns:
//     255*4096 B / 3.3 GB/s = 316.5 us = T0 + 255*(t_desc + 1120 ns)
//     with T0 ~ 2.1 us => t_desc ~ 113 ns.
//   * Figure 9: 4 requests reach ~70% of max =>
//     16384 B / (2100 + 4*1233) ns = 2.33 GB/s = 70.6% of 3.3 GB/s.  OK.
//   * Figure 8 single 4 KiB: 4096 B / (2100 + 1233) ns = 1.23 GB/s
//     ("severely degraded").  2x4 KiB chained == 1x8 KiB single (paper's
//     observation that equal total bytes give equal bandwidth).
#pragma once

#include <cstdint>

#include "common/units.h"

namespace tca::calib {

using units::ns;
using units::us;

// ---------------------------------------------------------------------------
// PCIe wire parameters (Section III-A, IV-A)
// ---------------------------------------------------------------------------

/// MaxPayloadSize in the test environment (Section IV-A: "the maximum
/// payload size is 256 bytes").
inline constexpr std::uint32_t kMaxPayloadBytes = 256;

/// MaxReadRequestSize: largest read a requester may ask for in one MRd.
inline constexpr std::uint32_t kMaxReadRequestBytes = 512;

/// Per-TLP overhead for a TLP with data: 16 B transaction-layer header
/// (64-bit address) + 2 B sequence + 4 B LCRC + 1 B STP + 1 B END framing.
/// Exactly the terms in the paper's peak-performance formula.
inline constexpr std::uint32_t kTlpWithDataOverheadBytes = 16 + 2 + 4 + 1 + 1;

/// A memory-read request TLP carries a header but no payload.
inline constexpr std::uint32_t kTlpReadRequestBytes = 16 + 2 + 4 + 1 + 1;

/// Completion-with-data TLP: 12 B (3 DW) header + DLL/PHY overhead.
inline constexpr std::uint32_t kTlpCompletionOverheadBytes = 12 + 2 + 4 + 1 + 1;

// ---------------------------------------------------------------------------
// PEACH2 chip (Section III-D/E/F, IV)
// ---------------------------------------------------------------------------

/// Router pipeline latency per hop: address-range compare + store-and-forward
/// buffer turnaround in the Stratix IV fabric at 250 MHz. One term of the
/// 782 ns adjacent-node PIO latency budget (Section IV-B1).
inline constexpr TimePs kRouteLatencyPs = ns(190);

/// Router per-TLP occupancy. Below the 70 ns wire time of a full 256 B TLP,
/// so forwarding sustains line rate (Figure 12: remote 4 KiB bandwidth equals
/// in-node bandwidth).
inline constexpr TimePs kRouteOccupancyPs = ns(60);

/// DMA engine per-descriptor processing time (descriptor decode, address
/// setup). Calibrated: 255x4 KiB chained writes -> 3.3 GB/s (Figure 7).
inline constexpr TimePs kDescriptorProcessPs = ns(113);

/// One-time DMA activation: MMIO doorbell write reaching the chip.
inline constexpr TimePs kDoorbellPs = ns(250);

/// One-time fetch of the descriptor table from host memory into the chip
/// ("retrieving the descriptor table is the dominant factor" — Figure 8).
inline constexpr TimePs kDescriptorTableFetchPs = ns(900);

/// Completion interrupt delivery + handler until the driver reads the TSC.
/// kDoorbellPs + kDescriptorTableFetchPs + kCompletionInterruptPs = 2.1 us,
/// the fixed cost that Figure 9 amortizes over the number of requests.
inline constexpr TimePs kCompletionInterruptPs = ns(950);

/// Residual per-descriptor drain bubble on the DMA *read* path (completion
/// round-trip not fully overlapped at descriptor boundaries). Makes read
/// bandwidth trail write bandwidth below 4 KiB and converge at 4 KiB
/// (Figure 7's read-vs-write relation).
inline constexpr TimePs kReadDescriptorGapPs = ns(100);

/// Non-posted request issue pacing of the DMA read engine (tag allocation,
/// tracking-structure update per MRd). With 512 B read requests this caps
/// the read path slightly below the posted-write path — the paper's "DMA
/// write is better than DMA read ... because read requires a reply".
inline constexpr TimePs kReadIssueIntervalPs = ns(140);

/// Register-file access latency inside the chip (BAR0 MMIO decode).
inline constexpr TimePs kRegAccessPs = ns(100);

/// Data-link-layer replay turnaround: LCRC failure detected at the
/// receiver -> NAK DLLP -> retransmission from the replay buffer. The
/// "Reliable" in PEARL (the link protocol inherits from the dependable-
/// embedded-systems PEACH1 work, reference [5] of the paper).
inline constexpr TimePs kReplayDelayPs = ns(200);

/// Completion timeout for non-posted requests (MRd waiting on a CplD).
/// PCIe AER defines the range A/B mechanism (50 us .. 50 ms); the simulator
/// sits at the aggressive end so fault tests stay fast while remaining far
/// above any legitimate completion latency in the model (~2 us worst case).
inline constexpr TimePs kCompletionTimeoutPs = us(50);

/// Consecutive replays of the *same* TLP before the data-link layer declares
/// the link unreliable and raises the replay-threshold error (the REPLAY_NUM
/// rollover in the PCIe spec escalates to link retrain after 4 attempts).
inline constexpr std::uint32_t kReplayThreshold = 8;

/// Driver chain-watchdog default: how long a kicked chain may run before the
/// driver aborts it. Sized for the largest tier-1 transfers (255 x 4 KiB
/// ~ 320 us) with generous headroom.
inline constexpr TimePs kChainWatchdogPs = us(2000);

/// Driver retry backoff: first wait after an aborted chain, doubled per
/// attempt. Long enough for a NIOS-serviced failover (kServiceDelay = 2 us)
/// plus route reprogramming to land before the doorbell re-rings.
inline constexpr TimePs kRetryBackoffBasePs = us(10);

/// Remote writes carry a PEARL delivery-notification request on each
/// descriptor's final TLP; the destination chip answers with a vendor
/// message to the source chip's mailbox once the bytes actually commit at
/// the memory endpoint. The DMAC overlaps the ack of descriptor i with the
/// transfer of descriptor i+1 (2-deep window for CPU targets), so the
/// per-descriptor cost is max(wire_time, ack_rtt). The ack RTT is
/// *emergent* from the physical path (2 x route latency + cable + wire
/// times, ~600-700 ns) — no constant pins it. This reproduces Figure 12:
/// small remote transfers degraded by inter-PEACH2 latency, 4 KiB equal to
/// in-node.
inline constexpr std::uint32_t kRemoteAckWindow = 2;

/// GPU targets post into the GPU's deep request queue, so descriptor issue
/// is not throttled on their notifications the way CPU targets are — the
/// window is the full 32-tag per-channel rotation, deep enough that the
/// ack stream never gates issue (Figure 12: remote GPU == local GPU at all
/// sizes). The notification itself is still requested and the chain holds
/// completion until every ack is in (complete_chain drains to zero), which
/// is the end-to-end evidence the reliable-put path needs.
inline constexpr std::uint32_t kGpuRemoteAckWindow = 32;

/// PEACH2 internal packet RAM (embedded FPGA memory; Section III-D —
/// a Stratix IV GX530 carries ~20 Mbit of block RAM).
inline constexpr std::uint64_t kInternalRamBytes = 2ull << 20;  // 2 MiB

/// DDR3 SODIMM on the PEACH2 board (packet buffer + NIOS main memory).
/// Modeled backing store; the physical SODIMM is far larger.
inline constexpr std::uint64_t kBoardDramBytes = 8ull << 20;  // 8 MiB

/// Descriptor table capacity: the paper chains up to 255 requests.
inline constexpr std::uint32_t kMaxDescriptors = 255;

/// Independent DMA channels per chip (the production PEACH2 board shipped a
/// multi-channel DMAC; the prototype evaluated in the paper exposes one —
/// channel 0 — which all single-channel paths use).
inline constexpr int kDmaChannels = 4;

/// PEACH2 core clock (Section III-G: "250 MHz, the operating clock frequency
/// of the PCIe Gen2 x8 logic block").
inline constexpr std::uint64_t kPeach2ClockHz = 250'000'000;

// ---------------------------------------------------------------------------
// Host / CPU (Xeon E5-2670 node, Table II)
// ---------------------------------------------------------------------------

/// Uncached MMIO store issue latency (CPU store -> TLP on the N link).
/// Term of the 782 ns PIO latency budget.
inline constexpr TimePs kCpuMmioStorePs = ns(150);

/// Root-complex + DRAM commit latency for an inbound posted write until the
/// data is visible to a polling core.
inline constexpr TimePs kHostWriteCommitPs = ns(160);

/// Host memory read latency seen by a device MRd (root complex + DRAM).
inline constexpr TimePs kHostReadLatencyPs = ns(350);

/// Polling loop granularity (cached spin-read) and mean detection delay.
inline constexpr TimePs kCpuPollIterationPs = ns(50);
inline constexpr TimePs kCpuPollDetectPs = ns(32);

/// Outstanding non-posted tags the PEACH2 DMA engine uses toward the host.
inline constexpr std::uint32_t kDmaReadTags = 32;

/// Cross-socket (QPI) peer-to-peer access: "severely degraded by up to
/// several hundred Mbytes/sec" (Section IV-A2).
inline constexpr double kQpiPeerBytesPerSec = 300e6;
inline constexpr TimePs kQpiExtraLatencyPs = ns(400);

// ---------------------------------------------------------------------------
// GPU (NVIDIA K20, GPUDirect RDMA; Section III-C, IV-A2)
// ---------------------------------------------------------------------------

/// BAR1 write sink: deep request queue, absorbs posted writes at line rate
/// ("the GPU is assumed to be of sufficient size for the request queue").
inline constexpr std::uint32_t kGpuWriteQueueDepth = 64;

/// BAR1 read service: the address-conversion mechanism serializes read
/// completions. 256 B per 308 ns => 831 MB/s, the paper's "maximum DMA read
/// performance is only 830 Mbytes/sec".
inline constexpr std::uint32_t kGpuReadChunkBytes = 256;
inline constexpr TimePs kGpuReadServicePs = ns(308);

/// First-word latency of a BAR1 read (translation miss + GDDR access).
inline constexpr TimePs kGpuReadLatencyPs = ns(1200);

/// GPUDirect RDMA pinning granularity (page-locked BAR window).
inline constexpr std::uint64_t kGpuPinPageBytes = 64ull << 10;  // 64 KiB

/// cudaMemcpy (H2D/D2H over PCIe Gen2 x16): fixed driver/launch overhead plus
/// an effective copy rate. Used by the conventional-path baseline and by
/// tca::coll's source-side D2H staging (which trades this copy for DMA
/// reads at the GPU BAR1 ceiling).
inline constexpr TimePs kCudaMemcpyOverheadPs = us(7);
inline constexpr double kCudaMemcpyBytesPerSec = 5.7e9;

// ---------------------------------------------------------------------------
// TCA fabric (Section III-E, IV-B)
// ---------------------------------------------------------------------------

/// PCIe external cable: propagation + repeater/serdes, a few meters
/// (Section II-B: "the length of the PCIe external cable is limited to
/// several meters").
inline constexpr TimePs kCableLatencyPs = ns(25);

/// Conservative-PDES lookahead for the sharded scheduler backend: the
/// minimum simulated latency of any interaction that crosses a shard
/// boundary. Shards are nodes (or link endpoints), so every cross-shard
/// event rides a PCIe external cable and arrives no earlier than
/// kCableLatencyPs after it was sent — that bound is what lets all shards
/// advance a full window of this width in parallel without risking a
/// causality violation (see src/sim/sharded.h). Derivation: of the
/// cross-node terms only the cable hop is unavoidable per crossing;
/// kRouteLatencyPs and wire time only add on top, so the cable latency is
/// the infimum. Callers pass this into ShardedEngine::Config::lookahead_ps;
/// the sim layer deliberately does not include calib.
inline constexpr TimePs kConservativeLookaheadPs = kCableLatencyPs;

/// TCA global PCIe window reserved by PEACH2 BARs (Section III-E: "current
/// implementation is 512 Gbytes").
inline constexpr std::uint64_t kTcaWindowBytes = 512ull << 30;

/// Base PCIe bus address of the TCA window (aligned to the window size so
/// the routers can decode slices by masked compare alone).
inline constexpr std::uint64_t kTcaWindowBase = 0x80'0000'0000ull;  // 512 GiB

/// Sub-cluster size bounds (Section II-B: "eight to 16 nodes"). Ring and
/// dual-ring topologies keep this paper limit.
inline constexpr std::uint32_t kMaxSubClusterNodes = 16;

/// Torus-scale fabric bound (the APEnet+ direction: 2D/3D tori of FPGA
/// NICs). Upper limit on the product of torus extents; the address window
/// still partitions into power-of-two slices decoded by masked compare.
inline constexpr std::uint32_t kMaxFabricNodes = 1024;

/// Largest cubic torus extent under kMaxFabricNodes (8x8x8 = 512); pins the
/// compile-time route-table capacity check in fabric/topology.cpp.
inline constexpr std::uint32_t kMaxTorusExtent3D = 8;

// ---------------------------------------------------------------------------
// InfiniBand / MPI baseline (Sections I, II-A, IV-B1, V)
// ---------------------------------------------------------------------------

/// MPI short-message (eager) one-way latency over IB QDR. The paper quotes
/// "latency of InfiniBand FDR ... less than 1 usec" for the raw adapter;
/// the MPI-level number includes the protocol stack the TCA avoids.
inline constexpr TimePs kIbMpiEagerLatencyPs = ns(1300);

/// Raw IB QDR adapter-to-adapter latency (verbs level, no MPI).
inline constexpr TimePs kIbRawLatencyPs = ns(950);

/// Effective IB QDR bandwidth per rail (4x QDR = 4 GB/s line rate, ~80%
/// protocol efficiency). HA-PACS uses a dual-rail configuration (Table I).
inline constexpr double kIbBytesPerSecPerRail = 3.2e9;

/// Eager/rendezvous switch-over and the rendezvous handshake cost.
inline constexpr std::uint64_t kIbEagerThresholdBytes = 16ull << 10;
inline constexpr TimePs kIbRendezvousRttPs = ns(2600);

/// MPI library per-call software overhead (matching, queues).
inline constexpr TimePs kMpiSoftwareOverheadPs = ns(300);

/// Host staging copy (memcpy into/out of pinned comm buffers).
inline constexpr double kHostCopyBytesPerSec = 8e9;

}  // namespace tca::calib
