#include "chaos/chaos.h"

#include <algorithm>
#include <cstring>
#include <optional>
#include <utility>

#include "api/tca.h"
#include "calib/calibration.h"
#include "coll/communicator.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/trace.h"
#include "fabric/sub_cluster.h"
#include "obs/metrics.h"
#include "sim/scheduler.h"
#include "sim/task.h"

namespace tca::chaos {

using units::ms;
using units::ns;
using units::us;

const char* to_string(Workload w) {
  switch (w) {
    case Workload::kAllreduce: return "allreduce";
    case Workload::kHalo: return "halo";
    case Workload::kPingPong: return "pingpong";
    case Workload::kMixed: return "mixed";
  }
  return "?";
}

Result<Workload> parse_workload(std::string_view text) {
  if (text == "allreduce") return Workload::kAllreduce;
  if (text == "halo") return Workload::kHalo;
  if (text == "pingpong") return Workload::kPingPong;
  if (text == "mixed") return Workload::kMixed;
  return Status(ErrorCode::kInvalidArgument,
                "unknown workload \"" + std::string(text) +
                    "\" (want allreduce|halo|pingpong|mixed)");
}

namespace {

Result<std::uint32_t> parse_count(std::string_view text,
                                  std::string_view what) {
  std::uint32_t n = 0;
  if (text.empty()) {
    return Status(ErrorCode::kInvalidArgument,
                  std::string(what) + ": missing node count");
  }
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status(ErrorCode::kInvalidArgument,
                    std::string(what) + ": bad node count \"" +
                        std::string(text) + "\"");
    }
    n = n * 10 + static_cast<std::uint32_t>(c - '0');
    if (n > calib::kMaxFabricNodes) break;
  }
  return n;
}

}  // namespace

Result<fabric::TopologySpec> parse_topology(std::string_view text) {
  if (text.starts_with("ring:")) {
    auto n = parse_count(text.substr(5), "ring");
    if (!n.is_ok()) return n.status();
    return fabric::TopologySpec::ring(n.value());
  }
  if (text.starts_with("dual-ring:")) {
    auto n = parse_count(text.substr(10), "dual-ring");
    if (!n.is_ok()) return n.status();
    return fabric::TopologySpec::dual_ring(n.value());
  }
  if (text.starts_with("torus:")) {
    return fabric::TopologySpec::parse(text);
  }
  return Status(ErrorCode::kInvalidArgument,
                "unknown topology \"" + std::string(text) +
                    "\" (want ring:N, dual-ring:N or torus:XxY[xZ])");
}

std::string topology_to_string(const fabric::TopologySpec& topo) {
  switch (topo.kind()) {
    case fabric::TopologySpec::Kind::kRing:
      return "ring:" + std::to_string(topo.node_count());
    case fabric::TopologySpec::Kind::kDualRing:
      return "dual-ring:" + std::to_string(topo.node_count());
    case fabric::TopologySpec::Kind::kTorus:
      return topo.to_string();  // "torus:XxY[xZ]" carries the shape already
  }
  return "?";
}

// --- CampaignSpec serialization ---------------------------------------------

std::string CampaignSpec::to_string() const {
  std::string out;
  out += "seed=" + std::to_string(seed) + "\n";
  out += "topology=" + topology_to_string(topology) + "\n";
  out += "workload=" + std::string(chaos::to_string(workload)) + "\n";
  out += "plan=" + plan.to_string() + "\n";
  return out;
}

Result<CampaignSpec> CampaignSpec::parse(std::string_view text) {
  CampaignSpec spec;
  spec.plan.events.clear();
  unsigned seen = 0;  // bit per key, duplicate detection
  std::size_t pos = 0;
  int line_no = 0;
  while (pos <= text.size()) {
    const std::size_t eol = std::min(text.find('\n', pos), text.size());
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t')) {
      line.remove_prefix(1);
    }
    while (!line.empty() &&
           (line.back() == ' ' || line.back() == '\t' || line.back() == '\r')) {
      line.remove_suffix(1);
    }
    if (line.empty() || line.front() == '#') continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Status(ErrorCode::kInvalidArgument,
                    "campaign line " + std::to_string(line_no) +
                        ": expected key=value, got \"" + std::string(line) +
                        "\"");
    }
    const std::string_view key = line.substr(0, eq);
    const std::string_view value = line.substr(eq + 1);
    unsigned bit = 0;
    if (key == "seed") {
      bit = 1u << 0;
      spec.seed = 0;
      if (value.empty()) {
        return Status(ErrorCode::kInvalidArgument, "campaign: empty seed");
      }
      for (char c : value) {
        if (c < '0' || c > '9') {
          return Status(ErrorCode::kInvalidArgument,
                        "campaign: bad seed \"" + std::string(value) + "\"");
        }
        spec.seed = spec.seed * 10 + static_cast<std::uint64_t>(c - '0');
      }
    } else if (key == "topology") {
      bit = 1u << 1;
      auto topo = parse_topology(value);
      if (!topo.is_ok()) return topo.status();
      spec.topology = topo.value();
    } else if (key == "workload") {
      bit = 1u << 2;
      auto w = parse_workload(value);
      if (!w.is_ok()) return w.status();
      spec.workload = w.value();
    } else if (key == "plan") {
      bit = 1u << 3;
      if (!value.empty()) {
        auto plan = fabric::FaultPlan::parse(value);
        if (!plan.is_ok()) return plan.status();
        spec.plan = std::move(plan).value();
      }
    } else {
      return Status(ErrorCode::kInvalidArgument,
                    "campaign line " + std::to_string(line_no) +
                        ": unknown key \"" + std::string(key) + "\"");
    }
    if (seen & bit) {
      return Status(ErrorCode::kInvalidArgument,
                    "campaign: duplicate key \"" + std::string(key) + "\"");
    }
    seen |= bit;
  }
  return spec;
}

// --- Fault-plan generation ---------------------------------------------------

fabric::FaultPlan generate_fault_plan(std::uint64_t seed,
                                      const fabric::TopologySpec& topo) {
  // Distinct stream from workload data fills so reordering draws in one
  // never perturbs the other.
  Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
  fabric::FaultPlan plan;
  const std::uint32_t cables = topo.cable_count();
  const std::uint32_t nodes = topo.node_count();
  if (cables == 0 || nodes == 0) return plan;

  // BER rates restricted to values whose default ostream rendering parses
  // back to the same double, so generated plans round-trip through
  // FaultPlan::parse(to_string()) exactly.
  static constexpr double kBerRates[] = {1e-7, 5e-7, 1e-6,
                                         2.5e-6, 5e-6, 1e-5};

  const std::uint64_t max_events =
      std::min<std::uint64_t>(12, 4 + cables / 8);
  const std::uint64_t count = 1 + rng.next_below(max_events);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t kind = rng.next_below(100);
    const TimePs at = static_cast<TimePs>(rng.next_below(
        static_cast<std::uint64_t>(us(200))));
    if (kind < 40) {
      // Flap; 1 in 5 shorter than the NIOS failover service latency so
      // retrain can race the reroute.
      const TimePs dur =
          rng.next_below(5) == 0
              ? ns(1) + static_cast<TimePs>(rng.next_below(
                            static_cast<std::uint64_t>(us(1))))
              : us(1) + static_cast<TimePs>(rng.next_below(
                            static_cast<std::uint64_t>(us(149))));
      plan.flap(static_cast<std::uint32_t>(rng.next_below(cables)), at, dur);
    } else if (kind < 50) {
      plan.cut(static_cast<std::uint32_t>(rng.next_below(cables)), at);
    } else if (kind < 60) {
      plan.up(static_cast<std::uint32_t>(rng.next_below(cables)), at);
    } else if (kind < 80) {
      const TimePs dur = us(1) + static_cast<TimePs>(rng.next_below(
                                     static_cast<std::uint64_t>(us(49))));
      plan.ber_burst(static_cast<std::uint32_t>(rng.next_below(cables)), at,
                     dur, kBerRates[rng.next_below(std::size(kBerRates))]);
    } else {
      const TimePs dur = us(1) + static_cast<TimePs>(rng.next_below(
                                     static_cast<std::uint64_t>(us(99))));
      plan.stuck_doorbell(
          static_cast<std::uint32_t>(rng.next_below(nodes)),
          static_cast<int>(rng.next_below(calib::kDmaChannels)), at, dur);
    }
  }
  return plan;
}

// --- Campaign execution ------------------------------------------------------

namespace {

/// Deterministic small-integer payloads: every derived double is an integer
/// in [0, 1024), so cross-rank sums are exact regardless of fold order.
double init_value(std::uint64_t seed, std::uint32_t rank, std::uint64_t j) {
  return static_cast<double>((j * 7 + rank * 13 + seed % 64) % 1024);
}

std::byte pattern_byte(std::uint64_t seed, std::uint32_t sender, int stream,
                       std::uint64_t j) {
  return static_cast<std::byte>(
      (seed * 31 + sender * 131 + static_cast<std::uint64_t>(stream) * 17 +
       j * 7) &
      0xff);
}

struct TaskSlot {
  Status status;
  bool done = false;
};

sim::Task<> allreduce_rank(coll::Communicator* comm, std::uint32_t rank,
                           api::Buffer buf, std::uint64_t count,
                           TaskSlot* slot) {
  slot->status = co_await comm->allreduce_sum(rank, buf, 0, count);
  slot->done = true;
}

sim::Task<> halo_rank(coll::Communicator* comm, std::uint32_t rank,
                      coll::HaloSpec spec, TaskSlot* slot) {
  slot->status = co_await comm->neighbor_exchange(rank, spec);
  slot->done = true;
}

sim::Task<> pingpong_node(api::Runtime* rt, api::Buffer send_fwd,
                          api::Buffer dst_fwd, api::Buffer send_rev,
                          api::Buffer dst_rev, std::uint64_t bytes,
                          api::SyncOptions opts, TaskSlot* fwd,
                          TaskSlot* rev) {
  fwd->status =
      co_await rt->memcpy_peer_reliable(dst_fwd, 0, send_fwd, 0, bytes, opts);
  fwd->done = true;
  rev->status =
      co_await rt->memcpy_peer_reliable(dst_rev, 0, send_rev, 0, bytes, opts);
  rev->done = true;
}

/// A campaign failure is any status outside the clean-outcome set: a fault
/// may fail an op, but only through the recovery machinery's vocabulary.
bool clean_status(const Status& st) {
  switch (st.code()) {
    case ErrorCode::kOk:
    case ErrorCode::kTimedOut:
    case ErrorCode::kLinkDown:
    case ErrorCode::kUnreachable:
    case ErrorCode::kAborted:
      return true;
    default:
      return false;
  }
}

}  // namespace

CampaignResult run_campaign(const CampaignSpec& spec) {
  CampaignResult result;
  auto violate = [&result](std::string msg) {
    result.violations.push_back(std::move(msg));
  };

  // The campaign owns the global trace for its duration: deterministic
  // same-seed replay is judged on the full event stream.
  Trace& trace = Trace::instance();
  const bool trace_was_enabled = trace.enabled();
  trace.clear();
  trace.enable();

  fabric::FaultPlan plan = spec.plan.empty()
                               ? generate_fault_plan(spec.seed, spec.topology)
                               : spec.plan;

  {
    sim::Scheduler sched;
    api::TcaConfig cfg;
    cfg.spec = spec.topology;
    // Keep the eagerly-backed DRAM model small: 64-node campaigns would
    // otherwise allocate gigabytes. 3 MiB clears the driver-layout floor.
    cfg.node_config.gpu_count = 2;
    cfg.node_config.host_backing_bytes = 3ull << 20;
    cfg.node_config.gpu_backing_bytes = 256ull << 10;
    cfg.fault_plan = plan;

    auto rt_result = api::Runtime::create(sched, cfg);
    if (!rt_result.is_ok()) {
      violate("runtime rejected campaign config: " +
              rt_result.status().to_string());
    } else {
      api::Runtime rt = std::move(rt_result).value();
      const std::uint32_t n = rt.node_count();
      const api::SyncOptions sync{.deadline_ps = spec.deadline_ps,
                                  .max_attempts = spec.max_attempts};

      // Heartbeats: probes spread across the horizon that record the clock;
      // the monotonic-time invariant checks them after the run.
      std::vector<TimePs> heartbeats;
      heartbeats.reserve(16);
      for (int i = 1; i <= 16; ++i) {
        sched.schedule_at(spec.horizon_ps * i / 16, [&sched, &heartbeats] {
          heartbeats.push_back(sched.now());
        });
      }

      const bool wants_coll = spec.workload == Workload::kAllreduce ||
                              spec.workload == Workload::kHalo ||
                              spec.workload == Workload::kMixed;
      const bool wants_pingpong = spec.workload == Workload::kPingPong ||
                                  spec.workload == Workload::kMixed;

      std::optional<coll::Communicator> comm;
      if (wants_coll) {
        coll::CollConfig ccfg;
        ccfg.pipeline_seg_bytes = 4096;
        ccfg.staging_slots = 2;
        ccfg.sync = sync;
        ccfg.flag_timeout_ps = spec.flag_timeout_ps;
        auto comm_result = coll::Communicator::create(rt, ccfg);
        if (!comm_result.is_ok()) {
          violate("communicator construction failed: " +
                  comm_result.status().to_string());
        } else {
          comm.emplace(std::move(comm_result).value());
        }
      }

      // --- Workload setup + spawn ---------------------------------------
      std::vector<TaskSlot> slots;
      bool setup_ok = !wants_coll || comm.has_value();

      // Allreduce state. Seed-scaled payload straddles the eager/ring
      // crossover: n*64 doubles (512 B/rank at n=8) rides eager, n*256
      // doubles rides the chained-DMA ring pipeline.
      std::vector<api::Buffer> ar_bufs;
      const std::uint64_t ar_count = n * (1 + spec.seed % 4) * 64;
      // Halo state: 1/2/4 KiB per direction — the 4 KiB draw crosses the
      // eager threshold onto the DMA staging path.
      std::vector<api::Buffer> halo_bufs;
      const std::uint64_t kHaloBytes = 1024ull << (spec.seed % 3);
      // PingPong state.
      std::vector<api::Buffer> pp_send_fwd, pp_send_rev, pp_recv_fwd,
          pp_recv_rev;
      constexpr std::uint64_t kPpBytes = 4096;
      const std::vector<std::uint32_t> ring = spec.topology.ring_order();
      std::vector<std::uint32_t> ring_pos(n);
      for (std::uint32_t p = 0; p < n; ++p) ring_pos[ring[p]] = p;
      auto ring_next = [&](std::uint32_t r) { return ring[(ring_pos[r] + 1) % n]; };
      auto ring_prev = [&](std::uint32_t r) {
        return ring[(ring_pos[r] + n - 1) % n];
      };

      if (setup_ok && (spec.workload == Workload::kAllreduce ||
                       spec.workload == Workload::kMixed)) {
        for (std::uint32_t r = 0; r < n && setup_ok; ++r) {
          auto buf = rt.alloc_host(r, ar_count * sizeof(double));
          if (!buf.is_ok()) {
            violate("allreduce alloc failed on node " + std::to_string(r) +
                    ": " + buf.status().to_string());
            setup_ok = false;
            break;
          }
          std::vector<double> init(ar_count);
          for (std::uint64_t j = 0; j < ar_count; ++j) {
            init[j] = init_value(spec.seed, r, j);
          }
          rt.write(buf.value(), 0,
                   std::as_bytes(std::span<const double>(init)));
          ar_bufs.push_back(buf.value());
        }
      }
      if (setup_ok && spec.workload == Workload::kHalo) {
        for (std::uint32_t r = 0; r < n && setup_ok; ++r) {
          auto buf = rt.alloc_host(r, 4 * kHaloBytes);
          if (!buf.is_ok()) {
            violate("halo alloc failed on node " + std::to_string(r) + ": " +
                    buf.status().to_string());
            setup_ok = false;
            break;
          }
          std::vector<std::byte> region(kHaloBytes);
          for (std::uint64_t j = 0; j < kHaloBytes; ++j) {
            region[j] = pattern_byte(spec.seed, r, 0, j);
          }
          rt.write(buf.value(), 0, region);  // send_to_next
          for (std::uint64_t j = 0; j < kHaloBytes; ++j) {
            region[j] = pattern_byte(spec.seed, r, 1, j);
          }
          rt.write(buf.value(), kHaloBytes, region);  // send_to_prev
          halo_bufs.push_back(buf.value());
        }
      }
      if (setup_ok && wants_pingpong) {
        for (std::uint32_t r = 0; r < n && setup_ok; ++r) {
          auto mk = [&](std::vector<api::Buffer>& into,
                        int stream) -> bool {
            auto buf = rt.alloc_host(r, kPpBytes);
            if (!buf.is_ok()) {
              violate("pingpong alloc failed on node " + std::to_string(r) +
                      ": " + buf.status().to_string());
              return false;
            }
            if (stream >= 0) {
              std::vector<std::byte> fill(kPpBytes);
              for (std::uint64_t j = 0; j < kPpBytes; ++j) {
                fill[j] = pattern_byte(spec.seed, r, 2 + stream, j);
              }
              rt.write(buf.value(), 0, fill);
            }
            into.push_back(buf.value());
            return true;
          };
          setup_ok = mk(pp_send_fwd, 0) && mk(pp_send_rev, 1) &&
                     mk(pp_recv_fwd, -1) && mk(pp_recv_rev, -1);
        }
      }

      // Slot layout: [0,n) allreduce ranks, then n halo ranks or 2n
      // pingpong ops, in workload order. Reserve before spawning — tasks
      // hold raw pointers into the vector.
      std::size_t slot_count = 0;
      if (setup_ok) {
        if (spec.workload == Workload::kAllreduce) slot_count = n;
        if (spec.workload == Workload::kHalo) slot_count = n;
        if (spec.workload == Workload::kPingPong) slot_count = 2 * n;
        if (spec.workload == Workload::kMixed) slot_count = 3 * n;
      }
      slots.resize(slot_count);

      if (setup_ok) {
        std::size_t next_slot = 0;
        if (spec.workload == Workload::kAllreduce ||
            spec.workload == Workload::kMixed) {
          for (std::uint32_t r = 0; r < n; ++r) {
            sim::spawn(allreduce_rank(&*comm, r, ar_bufs[r], ar_count,
                                      &slots[next_slot++]));
          }
        }
        if (spec.workload == Workload::kHalo) {
          for (std::uint32_t r = 0; r < n; ++r) {
            coll::HaloSpec hs;
            hs.buf = halo_bufs[r];
            hs.send_to_next_off = 0;
            hs.send_to_prev_off = kHaloBytes;
            hs.recv_from_prev_off = 2 * kHaloBytes;
            hs.recv_from_next_off = 3 * kHaloBytes;
            hs.bytes = kHaloBytes;
            sim::spawn(halo_rank(&*comm, r, hs, &slots[next_slot++]));
          }
        }
        if (wants_pingpong) {
          for (std::uint32_t r = 0; r < n; ++r) {
            sim::spawn(pingpong_node(
                &rt, pp_send_fwd[r], pp_recv_fwd[ring_next(r)],
                pp_send_rev[r], pp_recv_rev[ring_prev(r)], kPpBytes, sync,
                &slots[next_slot], &slots[next_slot + 1]));
            next_slot += 2;
          }
        }
      }

      // --- Run -----------------------------------------------------------
      sched.run_for(spec.horizon_ps);

      bool wedged = false;
      for (std::size_t i = 0; i < slots.size(); ++i) {
        if (!slots[i].done) {
          wedged = true;
          violate("no-wedge: workload task " + std::to_string(i) +
                  " still pending at the " +
                  units::format_time(spec.horizon_ps) + " horizon");
        }
      }
      // Drain fault-plan tails (window closes, retrains) so end-state
      // invariants see quiescence. Skipped when wedged: a hung poller
      // would spin this drain forever.
      if (!wedged) sched.run();
      result.sim_end_ps = sched.now();

      // --- Invariants -----------------------------------------------------
      for (std::size_t i = 0; i < slots.size(); ++i) {
        if (!slots[i].done) continue;
        if (!clean_status(slots[i].status)) {
          violate("status vocabulary: task " + std::to_string(i) +
                  " returned " + slots[i].status.to_string());
        }
        if (slots[i].status.is_ok()) {
          ++result.ops_ok;
        } else {
          ++result.ops_failed;
        }
      }

      for (std::size_t i = 1; i < heartbeats.size(); ++i) {
        if (heartbeats[i] <= heartbeats[i - 1]) {
          violate("monotonic time: heartbeat " + std::to_string(i) +
                  " observed " + std::to_string(heartbeats[i]) +
                  " ps after " + std::to_string(heartbeats[i - 1]) + " ps");
          break;
        }
      }

      // Data integrity, checked only where the protocol promised delivery.
      if (setup_ok && !wedged) {
        if ((spec.workload == Workload::kAllreduce ||
             spec.workload == Workload::kMixed)) {
          bool all_ok = true;
          for (std::uint32_t r = 0; r < n; ++r) {
            all_ok = all_ok && slots[r].status.is_ok();
          }
          if (all_ok) {
            std::vector<double> expected(ar_count);
            for (std::uint64_t j = 0; j < ar_count; ++j) {
              double sum = 0;
              for (std::uint32_t r = 0; r < n; ++r) {
                sum += init_value(spec.seed, r, j);
              }
              expected[j] = sum;
            }
            std::vector<double> got(ar_count);
            for (std::uint32_t r = 0; r < n; ++r) {
              rt.read(ar_bufs[r], 0,
                      std::as_writable_bytes(std::span<double>(got)));
              for (std::uint64_t j = 0; j < ar_count; ++j) {
                if (got[j] != expected[j]) {
                  violate("data: allreduce rank " + std::to_string(r) +
                          " element " + std::to_string(j) + " = " +
                          std::to_string(got[j]) + ", want " +
                          std::to_string(expected[j]));
                  break;
                }
              }
            }
          }
        }
        if (spec.workload == Workload::kHalo) {
          std::vector<std::byte> got(kHaloBytes);
          for (std::uint32_t r = 0; r < n; ++r) {
            const std::uint32_t prev = ring_prev(r);
            const std::uint32_t next = ring_next(r);
            if (!slots[r].status.is_ok() || !slots[prev].status.is_ok() ||
                !slots[next].status.is_ok()) {
              continue;
            }
            rt.read(halo_bufs[r], 2 * kHaloBytes, got);
            for (std::uint64_t j = 0; j < kHaloBytes; ++j) {
              if (got[j] != pattern_byte(spec.seed, prev, 0, j)) {
                violate("data: halo rank " + std::to_string(r) +
                        " recv_from_prev byte " + std::to_string(j) +
                        " wrong");
                break;
              }
            }
            rt.read(halo_bufs[r], 3 * kHaloBytes, got);
            for (std::uint64_t j = 0; j < kHaloBytes; ++j) {
              if (got[j] != pattern_byte(spec.seed, next, 1, j)) {
                violate("data: halo rank " + std::to_string(r) +
                        " recv_from_next byte " + std::to_string(j) +
                        " wrong");
                break;
              }
            }
          }
        }
        if (wants_pingpong) {
          const std::size_t base =
              spec.workload == Workload::kMixed ? n : 0;
          std::vector<std::byte> got(kPpBytes);
          for (std::uint32_t r = 0; r < n; ++r) {
            // recv_fwd[r] was written by ring_prev(r)'s forward op.
            const std::uint32_t pf = ring_prev(r);
            if (slots[base + 2 * pf].status.is_ok()) {
              rt.read(pp_recv_fwd[r], 0, got);
              for (std::uint64_t j = 0; j < kPpBytes; ++j) {
                if (got[j] != pattern_byte(spec.seed, pf, 2, j)) {
                  violate("data: pingpong fwd into node " +
                          std::to_string(r) + " byte " + std::to_string(j) +
                          " wrong");
                  break;
                }
              }
            }
            // recv_rev[r] was written by ring_next(r)'s reverse op.
            const std::uint32_t pr = ring_next(r);
            if (slots[base + 2 * pr + 1].status.is_ok()) {
              rt.read(pp_recv_rev[r], 0, got);
              for (std::uint64_t j = 0; j < kPpBytes; ++j) {
                if (got[j] != pattern_byte(spec.seed, pr, 3, j)) {
                  violate("data: pingpong rev into node " +
                          std::to_string(r) + " byte " + std::to_string(j) +
                          " wrong");
                  break;
                }
              }
            }
          }
        }
      }

      // Hardware-counter invariants via the metrics surface.
      obs::MetricRegistry reg;
      if (comm.has_value()) {
        comm->export_metrics(reg);
      } else {
        rt.export_metrics(reg);
      }

      const fabric::SubCluster& cluster = rt.cluster();
      for (std::size_t k = 0; k < cluster.cable_count(); ++k) {
        const auto [from, to] = cluster.cable_nodes(k);
        const std::string base = "pcie.cable." + std::to_string(from) + "-" +
                                 std::to_string(to);
        for (const char* dir : {".fwd", ".rev"}) {
          const std::string p = base + dir;
          const std::uint64_t tlps = reg.counter_value(p + ".tlps");
          const std::uint64_t wire = reg.counter_value(p + ".wire_bytes");
          const std::uint64_t payload =
              reg.counter_value(p + ".payload_bytes");
          const std::uint64_t want =
              payload + calib::kTlpWithDataOverheadBytes * tlps;
          if (wire != want) {
            violate("byte conservation: " + p + " wire_bytes=" +
                    std::to_string(wire) + " != payload_bytes+" +
                    std::to_string(calib::kTlpWithDataOverheadBytes) +
                    "*tlps=" + std::to_string(want));
          }
        }
      }
      if (const std::uint64_t u = reg.counter_value("fabric.unroutable");
          u != 0) {
        violate("routing: fabric.unroutable = " + std::to_string(u));
      }
      if (const std::uint64_t m =
              reg.counter_value("fabric.route_mismatches");
          m != 0) {
        violate("route consistency: " + std::to_string(m) +
                " route registers disagree with the failover view");
      }

      result.failovers = cluster.failovers();
      result.failbacks = cluster.failbacks();
      result.metrics_json = reg.to_json();
      result.metrics_hash = fnv1a64(result.metrics_json);
    }
  }

  result.trace_hash = fnv1a64(trace.to_json());
  trace.clear();
  if (!trace_was_enabled) trace.disable();
  return result;
}

// --- Shrinking ---------------------------------------------------------------

ShrinkOutcome shrink_campaign(const CampaignSpec& failing,
                              std::uint32_t max_runs) {
  ShrinkOutcome out;
  CampaignSpec spec = failing;
  if (spec.plan.empty()) {
    spec.plan = generate_fault_plan(spec.seed, spec.topology);
  }
  out.original_events = spec.plan.events.size();

  auto fails = [&out](const CampaignSpec& s) {
    ++out.runs;
    return !run_campaign(s).passed();
  };

  if (!fails(spec)) {
    out.minimized = spec;
    out.minimized_events = spec.plan.events.size();
    return out;  // reproduced stays false: nothing to shrink
  }
  out.reproduced = true;

  // ddmin, complement-removal form: try dropping each of `granularity`
  // chunks; on success restart at coarse granularity, otherwise refine
  // until chunks are single events.
  std::vector<fabric::FaultEvent> events = spec.plan.events;
  std::size_t granularity = 2;
  while (events.size() >= 2 && out.runs < max_runs) {
    granularity = std::min(granularity, events.size());
    const std::size_t chunk =
        (events.size() + granularity - 1) / granularity;
    bool reduced = false;
    for (std::size_t start = 0; start < events.size() && out.runs < max_runs;
         start += chunk) {
      std::vector<fabric::FaultEvent> rest;
      rest.reserve(events.size());
      rest.insert(rest.end(), events.begin(),
                  events.begin() + static_cast<std::ptrdiff_t>(start));
      rest.insert(rest.end(),
                  events.begin() + static_cast<std::ptrdiff_t>(
                                       std::min(events.size(), start + chunk)),
                  events.end());
      if (rest.empty()) continue;
      CampaignSpec trial = spec;
      trial.plan.events = rest;
      if (fails(trial)) {
        events = std::move(rest);
        granularity = 2;
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (granularity >= events.size()) break;  // 1-minimal
      granularity *= 2;
    }
  }

  spec.plan.events = std::move(events);
  out.minimized = spec;
  out.minimized_events = spec.plan.events.size();
  return out;
}

}  // namespace tca::chaos
