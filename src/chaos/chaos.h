// Chaos campaign engine (`tca::chaos`).
//
// The fault-recovery machinery grown across the last PRs — link flaps with
// NIOS-serviced route failover, BER bursts, stuck doorbells, chain watchdogs
// with bounded retry, reachability-gated kUnreachable — was exercised by
// hand-written scenarios. This module turns that into *campaigns*: a seeded
// generator draws a random FaultPlan scaled to the topology, composes it
// with a real workload (collective, halo exchange, peer pingpong, or a mix)
// over a ring / dual-ring / torus fabric, runs the whole thing under the
// deterministic scheduler, and then audits **system invariants** that must
// hold for every seed:
//
//  * Byte conservation — on every cable port, wire_bytes equals
//    payload_bytes + 24 * tlps exactly (the fabric carries only MemWrite
//    TLPs and 24-byte VendorMsg acks; replays increment all three
//    consistently). Bytes are never created or destroyed by a fault.
//  * No wedge — every spawned workload task either completes or returns a
//    clean failure (kTimedOut / kLinkDown / kUnreachable / kAborted) before
//    the campaign horizon. Nothing hangs.
//  * Route consistency — after the dust settles, every routing register
//    agrees with what the failover logic would program for the firmware's
//    current cable view (SubCluster::route_mismatches() == 0).
//  * No unroutable traffic — the address-range tables never steer a TLP
//    off the fabric (fabric.unroutable == 0).
//  * Monotonic time — heartbeat probes observe strictly increasing
//    simulated time across the campaign.
//  * Determinism — a campaign is a pure function of its spec: trace and
//    metric snapshots hash identically on every replay (and across
//    scheduler backends, which the CLI's --replay-check exercises).
//  * Data integrity — when a workload reports success, the payload it
//    delivered is verified element-for-element (initial values are small
//    integers, so floating-point sums are exact and fold-order-free).
//
// A failing campaign is delta-debugged (`shrink_campaign`): the FaultPlan's
// event list is ddmin-reduced to a locally minimal reproducer, rendered via
// FaultPlan::to_string(), and checked into tests/chaos/ as a regression
// corpus that replays forever after.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.h"
#include "common/units.h"
#include "fabric/fault_plan.h"
#include "fabric/topology.h"

namespace tca::chaos {

/// Workload a campaign drives while the fault plan fires.
enum class Workload : std::uint8_t {
  kAllreduce,  ///< coll::Communicator::allreduce_sum on every rank
  kHalo,       ///< coll::Communicator::neighbor_exchange on every rank
  kPingPong,   ///< raw memcpy_peer_reliable ring, both directions
  kMixed,      ///< allreduce and pingpong concurrently
};

const char* to_string(Workload w);
Result<Workload> parse_workload(std::string_view text);

/// Parses the campaign grammar's topology token: "ring:N", "dual-ring:N" or
/// "torus:XxY[xZ]". Unlike TopologySpec::parse, ring node counts ride in
/// the token itself — a campaign spec is self-contained.
Result<fabric::TopologySpec> parse_topology(std::string_view text);
/// Inverse of parse_topology ("ring:8", "torus:4x4x4", ...).
std::string topology_to_string(const fabric::TopologySpec& topo);

/// One campaign: everything run_campaign needs, serializable for the
/// regression corpus. A default-constructed spec runs seed 1 over a 4-node
/// ring with a generated fault plan.
struct CampaignSpec {
  std::uint64_t seed = 1;
  fabric::TopologySpec topology = fabric::TopologySpec::ring(4);
  Workload workload = Workload::kAllreduce;
  /// Fault schedule. Empty means "generate from seed" — shrinking and the
  /// corpus always materialize it explicitly.
  fabric::FaultPlan plan;

  /// Recovery policy the workloads run under (not serialized; the corpus
  /// pins behavior through seed/topology/workload/plan alone).
  TimePs deadline_ps = units::us(300);
  std::uint32_t max_attempts = 3;
  TimePs flag_timeout_ps = units::ms(2);
  /// No-wedge horizon: every workload task must resolve by then.
  TimePs horizon_ps = units::ms(100);

  /// Line-oriented rendering (the .campaign corpus format):
  ///   seed=42
  ///   topology=torus:4x4
  ///   workload=allreduce
  ///   plan=cut:cable=0,at=5us;flap:cable=2,at=10us,for=40us
  /// '#' starts a comment line; parse() rejects unknown or duplicate keys.
  [[nodiscard]] std::string to_string() const;
  static Result<CampaignSpec> parse(std::string_view text);
};

/// Everything a campaign audit produced. `violations` is empty iff every
/// invariant held; each entry names the invariant and the observed values.
struct CampaignResult {
  std::vector<std::string> violations;
  /// FNV-1a fingerprints of the full trace / metrics JSON — the replay
  /// determinism gate compares these across runs.
  std::uint64_t trace_hash = 0;
  std::uint64_t metrics_hash = 0;
  std::string metrics_json;
  TimePs sim_end_ps = 0;
  std::uint32_t ops_ok = 0;      ///< workload tasks that returned kOk
  std::uint32_t ops_failed = 0;  ///< tasks that returned a clean failure
  std::uint64_t failovers = 0;
  std::uint64_t failbacks = 0;

  [[nodiscard]] bool passed() const { return violations.empty(); }
};

/// Draws a seeded-random FaultPlan scaled to `topo`: 1..12 events mixing
/// flaps (including back-to-back sub-failover-latency blips), permanent
/// cuts, explicit retrains, BER bursts (rates from a fixed
/// round-trip-exact table) and stuck doorbells, with overlapping windows.
/// Deterministic: same (seed, topo) always yields the same plan, and the
/// plan round-trips through FaultPlan::parse/to_string exactly.
fabric::FaultPlan generate_fault_plan(std::uint64_t seed,
                                      const fabric::TopologySpec& topo);

/// Builds the fabric, applies the plan, drives the workload, audits every
/// invariant. Pure function of `spec` — it clears and re-enables the global
/// Trace for the duration (restoring the previous enable state), so callers
/// must not hold trace state across it.
CampaignResult run_campaign(const CampaignSpec& spec);

/// shrink_campaign's report: the locally-minimal failing spec plus how much
/// work the reduction took.
struct ShrinkOutcome {
  CampaignSpec minimized;
  std::uint32_t runs = 0;  ///< campaigns executed during reduction
  std::size_t original_events = 0;
  std::size_t minimized_events = 0;
  /// False when the input unexpectedly passed (nothing to shrink).
  bool reproduced = false;
};

/// ddmin over the failing spec's fault events: repeatedly re-runs the
/// campaign with event subsets removed until no single removal still fails,
/// bounded by `max_runs` campaigns. The returned spec always has its plan
/// materialized (generated plans are made explicit first) so the rendering
/// is a self-contained reproducer.
ShrinkOutcome shrink_campaign(const CampaignSpec& failing,
                              std::uint32_t max_runs = 64);

}  // namespace tca::chaos
