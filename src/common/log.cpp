#include "common/log.h"

namespace tca {

LogLevel Log::level_ = LogLevel::kWarn;
TimePs Log::now_ = 0;

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void Log::write(LogLevel level, const char* component,
                const std::string& message) {
  if (!enabled(level)) return;
  std::fprintf(stderr, "[%12s] %-5s %-10s %s\n",
               units::format_time(now_).c_str(), level_name(level), component,
               message.c_str());
}

}  // namespace tca
