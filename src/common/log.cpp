#include "common/log.h"

#include <cstdlib>
#include <string_view>

namespace tca {

namespace {
/// Initial verbosity: TCA_LOG=trace|debug|info|warn|error|off overrides the
/// default so tools can be made chatty without a rebuild.
LogLevel initial_level() {
  const char* env = std::getenv("TCA_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  const std::string_view v(env);
  if (v == "trace") return LogLevel::kTrace;
  if (v == "debug") return LogLevel::kDebug;
  if (v == "info") return LogLevel::kInfo;
  if (v == "warn") return LogLevel::kWarn;
  if (v == "error") return LogLevel::kError;
  if (v == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}
}  // namespace

LogLevel Log::level_ = initial_level();
TimePs Log::now_ = 0;

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void Log::write(LogLevel level, const char* component,
                const std::string& message) {
  if (!enabled(level)) return;
  std::fprintf(stderr, "[%12s] %-5s %-10s %s\n",
               units::format_time(now_).c_str(), level_name(level), component,
               message.c_str());
}

}  // namespace tca
