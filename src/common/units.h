// Units used throughout the TCA simulator.
//
// Simulated time is kept as a signed 64-bit count of *picoseconds*.  At PCIe
// Gen2 x8 speed one byte occupies 250 ps on the wire, so nanosecond
// resolution would accumulate rounding error over multi-kilobyte TLPs;
// picoseconds keep every wire-time computation exact while still giving a
// simulation horizon of ~106 days.
#pragma once

#include <cstdint>
#include <string>

namespace tca {

/// Simulated time in picoseconds.
using TimePs = std::int64_t;

namespace units {

inline constexpr TimePs kPicosecond = 1;
inline constexpr TimePs kNanosecond = 1'000;
inline constexpr TimePs kMicrosecond = 1'000'000;
inline constexpr TimePs kMillisecond = 1'000'000'000;
inline constexpr TimePs kSecond = 1'000'000'000'000;

/// Convenience constructors so call sites read like physical quantities.
constexpr TimePs ps(std::int64_t v) { return v; }
constexpr TimePs ns(std::int64_t v) { return v * kNanosecond; }
constexpr TimePs us(std::int64_t v) { return v * kMicrosecond; }
constexpr TimePs ms(std::int64_t v) { return v * kMillisecond; }

constexpr double to_ns(TimePs t) { return static_cast<double>(t) / 1e3; }
constexpr double to_us(TimePs t) { return static_cast<double>(t) / 1e6; }
constexpr double to_s(TimePs t) { return static_cast<double>(t) / 1e12; }

inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;
inline constexpr std::uint64_t kGiB = 1024 * kMiB;

constexpr std::uint64_t kib(std::uint64_t v) { return v * kKiB; }
constexpr std::uint64_t mib(std::uint64_t v) { return v * kMiB; }
constexpr std::uint64_t gib(std::uint64_t v) { return v * kGiB; }

/// Bandwidth in bytes/second given a byte count and elapsed simulated time.
/// Returns 0 for a non-positive duration (caller decides how to report it).
constexpr double bytes_per_second(std::uint64_t bytes, TimePs elapsed) {
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(bytes) / (static_cast<double>(elapsed) / 1e12);
}

/// Bandwidth helper expressed in the paper's unit (Gbytes/sec = 1e9 B/s).
constexpr double gbytes_per_second(std::uint64_t bytes, TimePs elapsed) {
  return bytes_per_second(bytes, elapsed) / 1e9;
}

/// Human-readable time, e.g. "782 ns", "1.24 us".
std::string format_time(TimePs t);

/// Human-readable size, e.g. "4 KiB", "256 B".
std::string format_size(std::uint64_t bytes);

}  // namespace units
}  // namespace tca
