// Deterministic random number generation.
//
// Every stochastic element of a simulation (payload contents, workload
// arrival jitter) draws from an explicitly-seeded Xoshiro256** stream so runs
// are reproducible bit-for-bit; std::mt19937 is avoided because its state is
// large and its seeding via seed_seq is easy to get subtly wrong.
#pragma once

#include <cstdint>
#include <span>

namespace tca {

/// Xoshiro256** PRNG (Blackman & Vigna). Deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound) without modulo bias (Lemire reduction).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Fill a byte span with pseudo-random data (for payload verification).
  void fill(std::span<std::byte> out);

 private:
  std::uint64_t s_[4];
};

}  // namespace tca
