#include "common/rng.h"

#include <cstring>

#include "common/error.h"

namespace tca {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

/// SplitMix64, used only to expand the user seed into Xoshiro state.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  TCA_ASSERT(bound > 0);
  // Lemire's unbiased multiply-shift rejection method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t Rng::next_in(std::uint64_t lo, std::uint64_t hi) {
  TCA_ASSERT(lo <= hi);
  if (lo == 0 && hi == ~0ULL) return next_u64();
  return lo + next_below(hi - lo + 1);
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

void Rng::fill(std::span<std::byte> out) {
  std::size_t i = 0;
  while (i + 8 <= out.size()) {
    const std::uint64_t word = next_u64();
    std::memcpy(out.data() + i, &word, 8);
    i += 8;
  }
  if (i < out.size()) {
    const std::uint64_t word = next_u64();
    std::memcpy(out.data() + i, &word, out.size() - i);
  }
}

}  // namespace tca
