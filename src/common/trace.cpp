#include "common/trace.h"

#include <cstdio>
#include <map>

namespace tca {

Trace& Trace::instance() {
  static Trace trace;
  return trace;
}

Trace::StrId Trace::intern(std::string_view s) {
  if (auto it = index_.find(s); it != index_.end()) return it->second;
  const StrId id = static_cast<StrId>(strings_.size());
  strings_.emplace_back(s);
  index_.emplace(strings_.back(), id);
  return id;
}

void Trace::duration(std::string_view track, std::string_view name,
                     TimePs begin, TimePs end) {
  if (!enabled_) return;
  duration(intern(track), intern(name), begin, end);
}

void Trace::duration(StrId track, StrId name, TimePs begin, TimePs end) {
  if (!enabled_) return;
  events_.push_back(Event{Kind::kDuration, track, name, begin, end, 0});
}

void Trace::instant(std::string_view track, std::string_view name, TimePs at) {
  if (!enabled_) return;
  instant(intern(track), intern(name), at);
}

void Trace::instant(StrId track, StrId name, TimePs at) {
  if (!enabled_) return;
  events_.push_back(Event{Kind::kInstant, track, name, at, at, 0});
}

void Trace::counter(std::string_view track, std::string_view name, TimePs at,
                    double value) {
  if (!enabled_) return;
  counter(intern(track), intern(name), at, value);
}

void Trace::counter(StrId track, StrId name, TimePs at, double value) {
  if (!enabled_) return;
  events_.push_back(Event{Kind::kCounter, track, name, at, at, value});
}

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string Trace::to_json() const {
  // Trace Event Format: ts/dur in microseconds (fractional allowed; we use
  // nanosecond precision = ps/1000). Tracks become tid values under one pid.
  // tid assignment (first appearance in event order) and the sorted-by-name
  // metadata block reproduce the pre-interning output byte for byte.
  std::map<std::string, int> tids;
  auto tid_of = [&](StrId track) {
    auto [it, inserted] =
        tids.emplace(strings_[track], static_cast<int>(tids.size()) + 1);
    return it->second;
  };

  std::string out = "{\"traceEvents\":[\n";
  char buf[512];
  for (const Event& e : events_) {
    const double ts = static_cast<double>(e.begin) / 1e6;
    switch (e.kind) {
      case Kind::kDuration: {
        const double dur = static_cast<double>(e.end - e.begin) / 1e6;
        std::snprintf(buf, sizeof buf,
                      "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,"
                      "\"ts\":%.3f,\"dur\":%.3f},\n",
                      escape(strings_[e.name]).c_str(), tid_of(e.track), ts,
                      dur);
        break;
      }
      case Kind::kInstant:
        std::snprintf(buf, sizeof buf,
                      "{\"name\":\"%s\",\"ph\":\"i\",\"pid\":1,\"tid\":%d,"
                      "\"ts\":%.3f,\"s\":\"t\"},\n",
                      escape(strings_[e.name]).c_str(), tid_of(e.track), ts);
        break;
      case Kind::kCounter:
        std::snprintf(buf, sizeof buf,
                      "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":1,\"tid\":%d,"
                      "\"ts\":%.3f,\"args\":{\"value\":%g}},\n",
                      escape(strings_[e.name]).c_str(), tid_of(e.track), ts,
                      e.value);
        break;
    }
    out += buf;
  }
  // Thread-name metadata so tracks show component names.
  for (const auto& [track, tid] : tids) {
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%d,\"args\":{\"name\":\"%s\"}},\n",
                  tid, escape(track).c_str());
    out += buf;
  }
  if (out.size() >= 2 && out[out.size() - 2] == ',') {
    out.erase(out.size() - 2, 1);  // trailing comma
  }
  out += "]}\n";
  return out;
}

Status Trace::write_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return {ErrorCode::kInvalidArgument, "cannot open trace file " + path};
  }
  const std::string json = to_json();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return {ErrorCode::kInternal, "short write to " + path};
  }
  return Status::ok();
}

}  // namespace tca
