#include "common/trace.h"

#include <cstdio>
#include <map>

namespace tca {

Trace& Trace::instance() {
  static Trace trace;
  return trace;
}

void Trace::duration(const std::string& track, const std::string& name,
                     TimePs begin, TimePs end) {
  if (!enabled_) return;
  events_.push_back(Event{Kind::kDuration, track, name, begin, end, 0});
}

void Trace::instant(const std::string& track, const std::string& name,
                    TimePs at) {
  if (!enabled_) return;
  events_.push_back(Event{Kind::kInstant, track, name, at, at, 0});
}

void Trace::counter(const std::string& track, const std::string& name,
                    TimePs at, double value) {
  if (!enabled_) return;
  events_.push_back(Event{Kind::kCounter, track, name, at, at, value});
}

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string Trace::to_json() const {
  // Trace Event Format: ts/dur in microseconds (fractional allowed; we use
  // nanosecond precision = ps/1000). Tracks become tid values under one pid.
  std::map<std::string, int> tids;
  auto tid_of = [&](const std::string& track) {
    auto [it, inserted] = tids.emplace(track, static_cast<int>(tids.size()) + 1);
    return it->second;
  };

  std::string out = "{\"traceEvents\":[\n";
  char buf[512];
  for (const Event& e : events_) {
    const double ts = static_cast<double>(e.begin) / 1e6;
    switch (e.kind) {
      case Kind::kDuration: {
        const double dur = static_cast<double>(e.end - e.begin) / 1e6;
        std::snprintf(buf, sizeof buf,
                      "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,"
                      "\"ts\":%.3f,\"dur\":%.3f},\n",
                      escape(e.name).c_str(), tid_of(e.track), ts, dur);
        break;
      }
      case Kind::kInstant:
        std::snprintf(buf, sizeof buf,
                      "{\"name\":\"%s\",\"ph\":\"i\",\"pid\":1,\"tid\":%d,"
                      "\"ts\":%.3f,\"s\":\"t\"},\n",
                      escape(e.name).c_str(), tid_of(e.track), ts);
        break;
      case Kind::kCounter:
        std::snprintf(buf, sizeof buf,
                      "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":1,\"tid\":%d,"
                      "\"ts\":%.3f,\"args\":{\"value\":%g}},\n",
                      escape(e.name).c_str(), tid_of(e.track), ts, e.value);
        break;
    }
    out += buf;
  }
  // Thread-name metadata so tracks show component names.
  for (const auto& [track, tid] : tids) {
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%d,\"args\":{\"name\":\"%s\"}},\n",
                  tid, escape(track).c_str());
    out += buf;
  }
  if (out.size() >= 2 && out[out.size() - 2] == ',') {
    out.erase(out.size() - 2, 1);  // trailing comma
  }
  out += "]}\n";
  return out;
}

Status Trace::write_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return {ErrorCode::kInvalidArgument, "cannot open trace file " + path};
  }
  const std::string json = to_json();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return {ErrorCode::kInternal, "short write to " + path};
  }
  return Status::ok();
}

}  // namespace tca
