// Deterministic fingerprinting for replay gates.
//
// FNV-1a is not a cryptographic hash; it is a fast, platform-independent
// fingerprint for the byte-identical-output checks (trace JSON, metric
// snapshots) the determinism gates compare across runs, seeds and scheduler
// backends. Two equal fingerprints are treated as equal documents only in
// contexts where the full documents are also available for a hard diff.
#pragma once

#include <cstdint>
#include <string_view>

namespace tca {

constexpr std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t hash = 14695981039346656037ull;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace tca
