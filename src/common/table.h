// Fixed-width table printer used by the benchmark harnesses to reproduce the
// paper's tables and figure series as aligned text.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace tca {

/// Collects rows of string cells and prints them with aligned columns.
///
/// Usage:
///   TablePrinter t({"Size", "CPU write (GB/s)", "GPU write (GB/s)"});
///   t.add_row({"4 KiB", "3.30", "3.28"});
///   t.print();
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Renders the table (header, rule, rows) to `out` (default stdout).
  void print(std::FILE* out = stdout) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// printf-style cell formatting helpers.
  static std::string cell(double v, int precision = 2);
  static std::string cell(std::uint64_t v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a "### <title>" section banner; benches use it to label each
/// reproduced figure/table.
void print_section(const std::string& title);

}  // namespace tca
