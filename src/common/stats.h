// Running statistics and latency histograms for benchmark reporting.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/units.h"

namespace tca {

/// Streaming mean/min/max/stddev accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact-percentile sample recorder. Benchmarks in this project record at
/// most a few hundred thousand samples, so keeping them all is cheaper than
/// maintaining an approximate sketch and keeps percentiles exact.
class SampleSeries {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  void add_time(TimePs t) { add(static_cast<double>(t)); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Percentile in [0, 100] by nearest-rank on the sorted samples.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }

  /// Raw samples in insertion order (may be re-sorted by percentile calls;
  /// callers must not rely on ordering, only on the multiset of values).
  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

}  // namespace tca
