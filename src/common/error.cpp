#include "common/error.h"

namespace tca {

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kOutOfRange: return "OUT_OF_RANGE";
    case ErrorCode::kUnaligned: return "UNALIGNED";
    case ErrorCode::kPermissionDenied: return "PERMISSION_DENIED";
    case ErrorCode::kUnreachable: return "UNREACHABLE";
    case ErrorCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case ErrorCode::kNotPinned: return "NOT_PINNED";
    case ErrorCode::kBusy: return "BUSY";
    case ErrorCode::kAborted: return "ABORTED";
    case ErrorCode::kInternal: return "INTERNAL";
    case ErrorCode::kTimedOut: return "TIMED_OUT";
    case ErrorCode::kLinkDown: return "LINK_DOWN";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string out = tca::to_string(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

void assert_fail(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "TCA_ASSERT failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace tca
