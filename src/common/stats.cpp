#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace tca {

void RunningStats::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void SampleSeries::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSeries::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double SampleSeries::min() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double SampleSeries::max() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

double SampleSeries::percentile(double p) const {
  TCA_ASSERT(p >= 0.0 && p <= 100.0);
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  if (samples_.size() == 1) return samples_[0];
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

}  // namespace tca
