// Event tracing with chrome://tracing (Perfetto-compatible) JSON export.
//
// Opt-in and zero-cost when disabled: instrumentation sites check
// Trace::enabled() before formatting anything. Tracks map to simulator
// components (one "thread" per chip/engine/link), durations to DMA
// descriptors / TLP serializations / driver operations, instants to
// interrupts and notifications. Load the JSON in chrome://tracing or
// ui.perfetto.dev to see a transfer's anatomy on the simulated timeline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/units.h"

namespace tca {

class Trace {
 public:
  /// Process-wide recorder (the simulator is single-threaded).
  static Trace& instance();

  void enable() { enabled_ = true; }
  void disable() { enabled_ = false; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// A completed span on `track` from `begin` to `end` (simulated time).
  void duration(const std::string& track, const std::string& name,
                TimePs begin, TimePs end);

  /// A point event.
  void instant(const std::string& track, const std::string& name, TimePs at);

  /// A counter sample (rendered as a track graph).
  void counter(const std::string& track, const std::string& name, TimePs at,
               double value);

  [[nodiscard]] std::size_t event_count() const { return events_.size(); }
  void clear() { events_.clear(); }

  /// Serializes the Trace Event Format JSON (returns it; write_json saves).
  [[nodiscard]] std::string to_json() const;
  Status write_json(const std::string& path) const;

 private:
  enum class Kind { kDuration, kInstant, kCounter };
  struct Event {
    Kind kind;
    std::string track;
    std::string name;
    TimePs begin;
    TimePs end;     // durations only
    double value;   // counters only
  };

  bool enabled_ = false;
  std::vector<Event> events_;
};

/// RAII span helper: records `name` on `track` from construction to
/// destruction (simulated time read through the global Log clock set by the
/// Scheduler). No-op when tracing is disabled.
class TraceSpan {
 public:
  TraceSpan(std::string track, std::string name, TimePs begin)
      : active_(Trace::instance().enabled()),
        track_(std::move(track)),
        name_(std::move(name)),
        begin_(begin) {}

  /// Explicit completion with the end timestamp.
  void end(TimePs end_time) {
    if (active_) {
      Trace::instance().duration(track_, name_, begin_, end_time);
      active_ = false;
    }
  }

 private:
  bool active_;
  std::string track_;
  std::string name_;
  TimePs begin_;
};

}  // namespace tca
