// Event tracing with chrome://tracing (Perfetto-compatible) JSON export.
//
// Opt-in and zero-cost when disabled: instrumentation sites check
// Trace::enabled() before formatting anything. Tracks map to simulator
// components (one "thread" per chip/engine/link), durations to DMA
// descriptors / TLP serializations / driver operations, instants to
// interrupts and notifications. Load the JSON in chrome://tracing or
// ui.perfetto.dev to see a transfer's anatomy on the simulated timeline.
//
// Track and name strings are interned: each distinct string is stored once
// in an id table and events carry two 32-bit ids, so recording an event is a
// 40-byte append instead of two std::string copies (which heap-allocated for
// every non-SSO name and made enabling tracing measurably perturb long
// runs). The string_view API is a drop-in for the old std::string one;
// hot sites may also pre-intern and record by StrId. JSON output is
// byte-identical to the pre-interning format.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/error.h"
#include "common/units.h"

namespace tca {

class Trace {
 public:
  /// Index into the interned-string table; stable for the process lifetime
  /// (clear() drops events, not strings).
  using StrId = std::uint32_t;

  /// Process-wide recorder (the simulator is single-threaded).
  static Trace& instance();

  void enable() { enabled_ = true; }
  void disable() { enabled_ = false; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Returns the id for `s`, copying it into the table on first sight.
  StrId intern(std::string_view s);

  /// A completed span on `track` from `begin` to `end` (simulated time).
  void duration(std::string_view track, std::string_view name, TimePs begin,
                TimePs end);
  void duration(StrId track, StrId name, TimePs begin, TimePs end);

  /// A point event.
  void instant(std::string_view track, std::string_view name, TimePs at);
  void instant(StrId track, StrId name, TimePs at);

  /// A counter sample (rendered as a track graph).
  void counter(std::string_view track, std::string_view name, TimePs at,
               double value);
  void counter(StrId track, StrId name, TimePs at, double value);

  [[nodiscard]] std::size_t event_count() const { return events_.size(); }
  void clear() { events_.clear(); }

  /// Serializes the Trace Event Format JSON (returns it; write_json saves).
  [[nodiscard]] std::string to_json() const;
  Status write_json(const std::string& path) const;

 private:
  enum class Kind { kDuration, kInstant, kCounter };
  struct Event {
    Kind kind;
    StrId track;
    StrId name;
    TimePs begin;
    TimePs end;     // durations only
    double value;   // counters only
  };

  struct TransparentHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  bool enabled_ = false;
  std::vector<Event> events_;
  std::vector<std::string> strings_;
  std::unordered_map<std::string, StrId, TransparentHash, std::equal_to<>>
      index_;
};

/// RAII span helper: records `name` on `track` from construction to
/// destruction (simulated time read through the global Log clock set by the
/// Scheduler). No-op when tracing is disabled.
class TraceSpan {
 public:
  TraceSpan(std::string_view track, std::string_view name, TimePs begin)
      : active_(Trace::instance().enabled()), begin_(begin) {
    if (active_) {
      track_ = Trace::instance().intern(track);
      name_ = Trace::instance().intern(name);
    }
  }

  /// Explicit completion with the end timestamp.
  void end(TimePs end_time) {
    if (active_) {
      Trace::instance().duration(track_, name_, begin_, end_time);
      active_ = false;
    }
  }

 private:
  bool active_;
  Trace::StrId track_ = 0;
  Trace::StrId name_ = 0;
  TimePs begin_;
};

}  // namespace tca
