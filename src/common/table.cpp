#include "common/table.h"

#include <algorithm>

#include "common/error.h"

namespace tca {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  TCA_ASSERT(!header_.empty());
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  TCA_ASSERT(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::FILE* out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%s%-*s", c == 0 ? "" : "  ",
                   static_cast<int>(widths[c]), row[c].c_str());
    }
    std::fprintf(out, "\n");
  };

  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  for (std::size_t i = 0; i < total; ++i) std::fputc('-', out);
  std::fputc('\n', out);
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::cell(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::cell(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  return buf;
}

void print_section(const std::string& title) {
  std::printf("\n### %s\n\n", title.c_str());
}

}  // namespace tca
