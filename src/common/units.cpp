#include "common/units.h"

#include <cmath>
#include <cstdio>

namespace tca::units {
namespace {

std::string format_scaled(double value, const char* unit) {
  char buf[64];
  if (value == std::floor(value) && value < 1e6) {
    std::snprintf(buf, sizeof buf, "%.0f %s", value, unit);
  } else {
    std::snprintf(buf, sizeof buf, "%.3g %s", value, unit);
  }
  return buf;
}

}  // namespace

std::string format_time(TimePs t) {
  const double v = static_cast<double>(t);
  if (t < 0) return "-" + format_time(-t);
  if (t < kNanosecond) return format_scaled(v, "ps");
  if (t < kMicrosecond) return format_scaled(v / 1e3, "ns");
  if (t < kMillisecond) return format_scaled(v / 1e6, "us");
  if (t < kSecond) return format_scaled(v / 1e9, "ms");
  return format_scaled(v / 1e12, "s");
}

std::string format_size(std::uint64_t bytes) {
  const double v = static_cast<double>(bytes);
  if (bytes < kKiB) return format_scaled(v, "B");
  if (bytes < kMiB) return format_scaled(v / static_cast<double>(kKiB), "KiB");
  if (bytes < kGiB) return format_scaled(v / static_cast<double>(kMiB), "MiB");
  return format_scaled(v / static_cast<double>(kGiB), "GiB");
}

}  // namespace tca::units
