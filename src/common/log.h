// Minimal leveled logger.
//
// The simulator is deterministic and single-threaded per Scheduler, so the
// logger deliberately avoids locking. Benchmarks run with the logger at
// kWarn; tests can raise verbosity per-fixture to trace protocol exchanges.
#pragma once

#include <cstdio>
#include <string>

#include "common/units.h"

namespace tca {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide log configuration.
class Log {
 public:
  static LogLevel level() { return level_; }
  static void set_level(LogLevel level) { level_ = level; }

  /// Current simulated time prefix for messages; components set this via
  /// Scheduler so log lines are attributable to a simulation instant.
  static void set_now(TimePs now) { now_ = now; }

  static bool enabled(LogLevel level) { return level >= level_; }

  static void write(LogLevel level, const char* component,
                    const std::string& message);

 private:
  static LogLevel level_;
  static TimePs now_;
};

}  // namespace tca
