// Lightweight error handling for the simulator.
//
// Configuration and protocol errors are reported through Status/Result rather
// than exceptions: the simulator is also used from benchmark harnesses that
// want to probe invalid configurations without unwinding, and the C++ Core
// Guidelines (E.2/E.3) reserve exceptions for truly exceptional conditions.
// Programming errors (broken invariants inside the engine) use TCA_ASSERT,
// which aborts with a message.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace tca {

/// Error categories used across the library.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kUnaligned,
  kPermissionDenied,  ///< e.g. remote read on a put-only fabric
  kUnreachable,       ///< no route to the destination address
  kResourceExhausted, ///< descriptor slots, tags, buffer space
  kNotPinned,         ///< GPUDirect access to an unpinned page
  kBusy,              ///< DMA channel already active
  kAborted,           ///< op not attempted because an earlier op failed
  kInternal,
  kTimedOut,          ///< completion/chain deadline expired
  kLinkDown,          ///< port dead: TLPs held in the replay buffer
};

/// Number of ErrorCode values. Keep in sync with the enum above; the
/// common_test round-trips every value in [0, kErrorCodeCount) through
/// to_string so a new code cannot ship unnamed.
inline constexpr int kErrorCodeCount =
    static_cast<int>(ErrorCode::kLinkDown) + 1;

const char* to_string(ErrorCode code);

/// A status: either OK or an error code plus a human-readable message.
class Status {
 public:
  Status() = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return {}; }

  [[nodiscard]] bool is_ok() const { return code_ == ErrorCode::kOk; }
  [[nodiscard]] ErrorCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// Full "CODE: message" rendering for logs and test failures.
  [[nodiscard]] std::string to_string() const;

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

/// A value or a Status. Minimal expected<>-style type; the simulator does not
/// need monadic composition, just explicit checking at call sites.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  [[nodiscard]] bool is_ok() const { return value_.has_value(); }
  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] T& value() & { return *value_; }
  [[nodiscard]] const T& value() const& { return *value_; }
  [[nodiscard]] T&& value() && { return *std::move(value_); }

 private:
  std::optional<T> value_;
  Status status_;
};

[[noreturn]] void assert_fail(const char* expr, const char* file, int line);

}  // namespace tca

/// Engine-invariant assertion: active in all build types because simulator
/// correctness is the product.
#define TCA_ASSERT(expr) \
  ((expr) ? static_cast<void>(0) : ::tca::assert_fail(#expr, __FILE__, __LINE__))
