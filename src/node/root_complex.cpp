#include "node/root_complex.h"

#include <algorithm>
#include <utility>

#include "common/log.h"

namespace tca::node {

using calib::kHostReadLatencyPs;
using calib::kHostWriteCommitPs;
using calib::kMaxPayloadBytes;

RootComplex::RootComplex(sim::Scheduler& sched, int socket,
                         mem::Dram& host_dram, std::uint64_t host_base,
                         pcie::DeviceId cpu_id)
    : sched_(sched),
      socket_(socket),
      host_dram_(host_dram),
      host_base_(host_base),
      cpu_id_(cpu_id) {
  const Status st = map_.add(host_base, host_dram.size(),
                             Attachment{Attachment::Kind::kHostMemory});
  TCA_ASSERT(st.is_ok());
}

Status RootComplex::attach_device(
    pcie::DeviceId id, pcie::LinkPort& rc_port,
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& bars) {
  for (const auto& [base, size] : bars) {
    Status st =
        map_.add(base, size, Attachment{Attachment::Kind::kDevice, &rc_port});
    if (!st.is_ok()) return st;
  }
  requester_route_[id] = Attachment{Attachment::Kind::kDevice, &rc_port};
  rc_port.set_sink(this);
  rc_port.set_tx_ready([this, port = &rc_port] { pump(port); });
  egress_.emplace(&rc_port, std::deque<pcie::Tlp>{});
  return Status::ok();
}

void RootComplex::connect_qpi(pcie::LinkPort& qpi_port) {
  qpi_port_ = &qpi_port;
  qpi_port.set_sink(this);
  qpi_port.set_tx_ready([this, port = &qpi_port] { pump(port); });
  egress_.emplace(&qpi_port, std::deque<pcie::Tlp>{});
}

void RootComplex::inject_from_cpu(pcie::Tlp tlp) {
  route(std::move(tlp), /*arrived_via_qpi=*/false);
}

// tca-protocol: owns(rx-credit)
void RootComplex::on_tlp(pcie::Tlp tlp, pcie::LinkPort& port) {
  // The RC has ample internal buffering: return link credits on receipt.
  port.release_rx(tlp.wire_bytes());
  route(std::move(tlp), /*arrived_via_qpi=*/&port == qpi_port_);
}

void RootComplex::route(pcie::Tlp tlp, bool arrived_via_qpi) {
  if (tlp.type == pcie::TlpType::kCompletion) {
    send_to_requester(std::move(tlp));
    return;
  }

  const std::uint64_t span = std::max<std::uint64_t>(
      1, tlp.type == pcie::TlpType::kMemRead ? tlp.length
                                             : tlp.payload.size());
  const auto* range = map_.find_span(tlp.address, span);
  if (range == nullptr) {
    // Not local to this socket: cross QPI once.
    if (!arrived_via_qpi && qpi_port_ != nullptr) {
      forward(qpi_port_, std::move(tlp));
      return;
    }
    ++unroutable_;
    Log::write(LogLevel::kWarn, "rc", "unroutable TLP dropped");
    return;
  }

  switch (range->value.kind) {
    case Attachment::Kind::kHostMemory:
      if (tlp.type == pcie::TlpType::kMemWrite) {
        handle_host_write(std::move(tlp));
      } else if (tlp.type == pcie::TlpType::kMemRead) {
        handle_host_read(std::move(tlp));
      } else {
        ++unroutable_;  // vendor messages never target host memory
      }
      break;
    case Attachment::Kind::kDevice:
      forward(range->value.port, std::move(tlp));
      break;
    case Attachment::Kind::kQpi:
      forward(qpi_port_, std::move(tlp));
      break;
  }
}

void RootComplex::handle_host_write(pcie::Tlp tlp) {
  host_wr_ += tlp.payload.size();
  const std::uint64_t offset = tlp.address - host_base_;
  sched_.schedule_after(
      kHostWriteCommitPs,
      // tca-protocol: commit-point, owns(commit-ack)
      [this, offset, data = std::move(tlp.payload),
       notifier = tlp.commit_notifier, ack = tlp.ack_address, tag = tlp.tag] {
        host_dram_.write(offset, data);  // tca-protocol: commit
        // tca-protocol: release(commit-ack)
        if (notifier != nullptr) notifier->on_write_commit(ack, tag);
      });
}

void RootComplex::handle_host_read(pcie::Tlp tlp) {
  host_rd_ += tlp.length;
  sched_.schedule_after(kHostReadLatencyPs, [this, req = std::move(tlp)] {
    const std::uint64_t offset = req.address - host_base_;
    std::uint32_t remaining = req.length;
    while (remaining > 0) {
      const std::uint32_t chunk = std::min(remaining, kMaxPayloadBytes);
      std::vector<std::byte> data(chunk);
      host_dram_.read(offset + (req.length - remaining), data);
      send_to_requester(pcie::Tlp::completion(req, data, remaining));
      remaining -= chunk;
    }
  });
}

void RootComplex::send_to_requester(pcie::Tlp cpl) {
  if (cpl.requester == cpu_id_) {
    TCA_ASSERT(cpu_completion_ != nullptr);
    cpu_completion_(std::move(cpl));
    return;
  }
  if (auto it = requester_route_.find(cpl.requester);
      it != requester_route_.end()) {
    forward(it->second.port, std::move(cpl));
    return;
  }
  if (qpi_port_ != nullptr) {
    forward(qpi_port_, std::move(cpl));
    return;
  }
  ++unroutable_;
}

void RootComplex::forward(pcie::LinkPort* port, pcie::Tlp tlp) {
  TCA_ASSERT(port != nullptr);
  egress_[port].push_back(std::move(tlp));
  pump(port);
}

void RootComplex::pump(pcie::LinkPort* port) {
  auto& queue = egress_[port];
  while (!queue.empty() && port->can_send(queue.front())) {
    port->send(std::move(queue.front()));
    queue.pop_front();
  }
}

}  // namespace tca::node
