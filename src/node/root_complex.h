// Root complex / host-side PCIe switch of one CPU socket.
//
// Fig. 2 of the paper: every device (GPUs, the PEACH2 board) hangs off the
// "PCIe switch embedded in the CPU socket", all sharing one PCIe address
// space — that shared space is what makes GPUDirect peer-to-peer and the
// PEACH2 window work. The RootComplex routes TLPs between:
//   * host DRAM (memory writes commit after kHostWriteCommitPs; reads are
//     answered with split completions after kHostReadLatencyPs),
//   * downstream device BARs (peer-to-peer forwarding, e.g. PEACH2 -> GPU),
//   * the peer socket over QPI (heavily throttled, matching the paper's
//     observation that P2P over QPI degrades to a few hundred MB/s),
//   * the CPU cores (MMIO stores/loads injected by CpuAgent).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "calib/calibration.h"
#include "memory/dram.h"
#include "memory/range_map.h"
#include "pcie/link.h"
#include "sim/scheduler.h"

namespace tca::node {

class RootComplex : public pcie::TlpSink {
 public:
  /// `host_dram` backs the host-memory range [host_base, host_base+size).
  RootComplex(sim::Scheduler& sched, int socket, mem::Dram& host_dram,
              std::uint64_t host_base, pcie::DeviceId cpu_id);

  [[nodiscard]] int socket() const { return socket_; }
  [[nodiscard]] pcie::DeviceId cpu_device_id() const { return cpu_id_; }

  /// Attaches a downstream device: the RC-side end of its link plus the BAR
  /// ranges it claims. The RC becomes the port's sink and sole sender.
  Status attach_device(
      pcie::DeviceId id, pcie::LinkPort& rc_port,
      const std::vector<std::pair<std::uint64_t, std::uint64_t>>& bars);

  /// Connects this socket to its peer over QPI. Addresses that don't decode
  /// locally are forwarded there (and only there, one hop: traffic arriving
  /// *from* QPI never re-crosses it).
  void connect_qpi(pcie::LinkPort& qpi_port);

  /// CPU-core access: injects a TLP as if issued by a core (MMIO store or
  /// load). No link is modeled between core and RC; issue costs are applied
  /// by CpuAgent.
  void inject_from_cpu(pcie::Tlp tlp);

  /// Handler for completions addressed to the CPU (MMIO load replies).
  void set_cpu_completion_handler(std::function<void(pcie::Tlp)> handler) {
    cpu_completion_ = std::move(handler);
  }

  // TlpSink.
  void on_tlp(pcie::Tlp tlp, pcie::LinkPort& port) override;

  [[nodiscard]] std::uint64_t host_bytes_written() const { return host_wr_; }
  [[nodiscard]] std::uint64_t host_bytes_read() const { return host_rd_; }
  [[nodiscard]] std::uint64_t unroutable_tlps() const { return unroutable_; }

 private:
  struct Attachment {
    enum class Kind { kHostMemory, kDevice, kQpi } kind;
    pcie::LinkPort* port = nullptr;  // for kDevice/kQpi
  };

  void route(pcie::Tlp tlp, bool arrived_via_qpi);
  void handle_host_write(pcie::Tlp tlp);
  void handle_host_read(pcie::Tlp tlp);
  void send_to_requester(pcie::Tlp cpl);
  void forward(pcie::LinkPort* port, pcie::Tlp tlp);
  void pump(pcie::LinkPort* port);

  sim::Scheduler& sched_;
  int socket_;
  mem::Dram& host_dram_;
  std::uint64_t host_base_;
  pcie::DeviceId cpu_id_;

  mem::RangeMap<Attachment> map_;
  pcie::LinkPort* qpi_port_ = nullptr;
  std::unordered_map<pcie::DeviceId, Attachment> requester_route_;
  std::function<void(pcie::Tlp)> cpu_completion_;

  // Per-port egress queues (the RC has ample internal buffering; inbound
  // credits are returned on receipt).
  std::map<pcie::LinkPort*, std::deque<pcie::Tlp>> egress_;

  std::uint64_t host_wr_ = 0;
  std::uint64_t host_rd_ = 0;
  std::uint64_t unroutable_ = 0;
};

}  // namespace tca::node
