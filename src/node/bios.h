// BIOS BAR-assignment model (footnote 2 of the paper).
//
// "The address region is set to the base address register (BAR) at boot
//  time. In fact, the BIOS must be able to assign such large address
//  regions. Currently, only a few motherboards can support the PEACH2
//  board."
//
// The model keeps the repository's deterministic bus-address layout but
// makes BAR *capability* explicit: a board profile bounds the MMIO window a
// device may claim, and enumeration fails for boards that cannot map the
// 512 GB TCA window — exactly why Table II lists the two qualified
// motherboards.
#pragma once

#include <cstdint>

#include "common/error.h"

namespace tca::node {

struct MotherboardProfile {
  const char* name;
  /// Largest single device BAR the firmware can place above 4 GiB.
  std::uint64_t max_device_bar_bytes;
  /// Total 64-bit MMIO space the firmware reserves for devices.
  std::uint64_t mmio_window_bytes;
};

/// The two qualified boards of Table II.
inline constexpr MotherboardProfile kSuperMicroX9DRG_QF{
    "SuperMicro X9DRG-QF", 1ull << 40, 2ull << 40};
inline constexpr MotherboardProfile kIntelS2600IP{
    "Intel S2600IP", 1ull << 40, 2ull << 40};

/// A typical contemporary board whose firmware tops out well below the TCA
/// window — the footnote's "only a few motherboards" case.
inline constexpr MotherboardProfile kCommodityBoard{
    "commodity dual-socket board", 64ull << 30, 256ull << 30};

class Bios {
 public:
  explicit Bios(const MotherboardProfile& profile) : profile_(profile) {}

  [[nodiscard]] const MotherboardProfile& profile() const { return profile_; }

  /// Boot-time BAR sizing check; called once per claimed BAR.
  Status claim_bar(std::uint64_t size) {
    if (size > profile_.max_device_bar_bytes) {
      return {ErrorCode::kResourceExhausted,
              std::string(profile_.name) +
                  ": firmware cannot assign a BAR this large"};
    }
    if (claimed_ + size > profile_.mmio_window_bytes) {
      return {ErrorCode::kResourceExhausted,
              std::string(profile_.name) + ": 64-bit MMIO window exhausted"};
    }
    claimed_ += size;
    return Status::ok();
  }

  [[nodiscard]] std::uint64_t claimed_bytes() const { return claimed_; }

 private:
  MotherboardProfile profile_;
  std::uint64_t claimed_ = 0;
};

}  // namespace tca::node
