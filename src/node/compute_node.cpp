#include "node/compute_node.h"

namespace tca::node {

namespace {

pcie::LinkConfig qpi_config(int node) {
  // Models the *observed* peer-to-peer path over QPI: "the performance of
  // DMA write access to the GPU on another socket over QPI is severely
  // degraded by up to several hundred Mbytes/sec" (Section IV-A2).
  return {.gen = 2,
          .lanes = 8,
          .propagation_ps = calib::kQpiExtraLatencyPs,
          .custom_bytes_per_sec = calib::kQpiPeerBytesPerSec,
          .name = "qpi/node" + std::to_string(node)};
}

pcie::LinkConfig gpu_link_config(int node, int gpu) {
  return {.gen = 2,  // K20: PCIe Gen2 x16
          .lanes = 16,
          // The BAR1 write queue ("sufficient size for the request queue",
          // Fig. 12 discussion) is the link-level receive buffer here.
          .rx_buffer_bytes = calib::kGpuWriteQueueDepth *
                             (calib::kMaxPayloadBytes +
                              calib::kTlpWithDataOverheadBytes),
          .name = "gpu" + std::to_string(gpu) + "/node" +
                  std::to_string(node)};
}

}  // namespace

ComputeNode::ComputeNode(sim::Scheduler& sched, int node_index,
                         const NodeConfig& config)
    : sched_(sched),
      index_(node_index),
      cfg_(config),
      bios_(config.board),
      host_dram_(config.host_backing_bytes),
      rc0_(sched, 0, host_dram_, layout::kHostBase, make_id(1)),
      rc1_(sched, 1, host_dram_, layout::kHostBase, make_id(1)),
      qpi_link_(sched, qpi_config(node_index)),
      cpu_(sched, rc0_, host_dram_, layout::kHostBase) {
  rc0_.connect_qpi(qpi_link_.end_a());
  rc1_.connect_qpi(qpi_link_.end_b());

  TCA_ASSERT(config.gpu_count >= 0 && config.gpu_count <= 4);
  for (int i = 0; i < config.gpu_count; ++i) {
    const Status bar = bios_.claim_bar(config.gpu_backing_bytes);
    TCA_ASSERT(bar.is_ok() && "firmware cannot map the GPU BAR1 aperture");
    gpu::GpuConfig gcfg{
        .memory_bytes = config.gpu_backing_bytes,
        .bar1_base = layout::gpu_bar_base(i),
        .socket = i < 2 ? 0 : 1,  // Fig. 2: GPU0/1 on socket 0, GPU2/3 on 1
    };
    auto& link = gpu_links_.emplace_back(
        std::make_unique<pcie::PcieLink>(sched, gpu_link_config(node_index, i)));
    auto& dev = gpus_.emplace_back(std::make_unique<gpu::GpuDevice>(
        sched, make_id(2 + i), gcfg));
    dev->attach(link->end_b());
    const Status st = socket(gcfg.socket)
                          .attach_device(dev->id(), link->end_a(),
                                         {{gcfg.bar1_base, gcfg.memory_bytes}});
    TCA_ASSERT(st.is_ok());
  }
}

pcie::LinkPort& ComputeNode::attach_peach2_slot(pcie::DeviceId device_id,
                                                std::uint64_t reg_base,
                                                bool claim_tca_window) {
  auto port = try_attach_peach2_slot(device_id, reg_base, claim_tca_window);
  TCA_ASSERT(port.is_ok());
  return *port.value();
}

Result<pcie::LinkPort*> ComputeNode::try_attach_peach2_slot(
    pcie::DeviceId device_id, std::uint64_t reg_base, bool claim_tca_window) {
  // Boot-time BAR sizing: the register window always fits; the 512 GB TCA
  // window needs a qualified board (footnote 2).
  if (Status st = bios_.claim_bar(layout::kPeach2RegSize); !st.is_ok()) {
    return st;
  }
  if (claim_tca_window) {
    if (Status st = bios_.claim_bar(calib::kTcaWindowBytes); !st.is_ok()) {
      return st;
    }
  }
  // Shallow egress queue: the PEACH2 DMA engine's descriptor pacing derives
  // from real link backpressure, so the slot link must not buffer a whole
  // descriptor's worth of TLPs.
  auto& link = peach2_links_.emplace_back(std::make_unique<pcie::PcieLink>(
      sched_,
      pcie::LinkConfig{.gen = 2,
                       .lanes = 8,
                       .tx_queue_bytes = 600,
                       .name = "slot" + std::to_string(peach2_links_.size()) +
                               "/node" + std::to_string(index_)}));
  std::vector<std::pair<std::uint64_t, std::uint64_t>> bars = {
      {reg_base, layout::kPeach2RegSize}};
  if (claim_tca_window) {
    bars.emplace_back(calib::kTcaWindowBase, calib::kTcaWindowBytes);
  }
  Status st = rc0_.attach_device(device_id, link->end_a(), bars);
  if (!st.is_ok()) return st;
  return &link->end_b();
}

}  // namespace tca::node
