// A HA-PACS/TCA compute node (Fig. 2 of the paper).
//
// Two Xeon E5 sockets, each with its own root complex; GPU0/GPU1 and the
// PEACH2 slot on socket 0, GPU2/GPU3 on socket 1; the sockets joined by QPI
// over which peer-to-peer traffic is severely throttled. One CpuAgent models
// the driver thread (it runs on socket 0, where the PEACH2 board lives).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "calib/calibration.h"
#include "gpu/gpu_device.h"
#include "memory/dram.h"
#include "node/bios.h"
#include "node/cpu_agent.h"
#include "node/root_complex.h"
#include "pcie/link.h"
#include "sim/scheduler.h"

namespace tca::node {

/// Node-local PCIe bus-address layout.
namespace layout {
inline constexpr std::uint64_t kHostBase = 0x0;
inline constexpr std::uint64_t kGpuBarBase = 0x20'0000'0000ull;
inline constexpr std::uint64_t kGpuBarStride = 0x2'0000'0000ull;  // 8 GiB
inline constexpr std::uint64_t kPeach2RegBase = 0x30'0000'0000ull;
inline constexpr std::uint64_t kPeach2RegSize = 64ull << 10;

constexpr std::uint64_t gpu_bar_base(int gpu_index) {
  return kGpuBarBase +
         static_cast<std::uint64_t>(gpu_index) * kGpuBarStride;
}
}  // namespace layout

struct NodeConfig {
  int gpu_count = 4;
  /// Backing-store sizes (functional model capacity; the *nominal* hardware
  /// sizes — 128 GB DDR3, 5 GB GDDR5 — are reported by the spec tables).
  std::uint64_t host_backing_bytes = 64ull << 20;
  std::uint64_t gpu_backing_bytes = 32ull << 20;
  /// Firmware profile: bounds the BARs devices may claim (footnote 2 —
  /// the TCA window needs one of the Table II qualified boards).
  MotherboardProfile board = kSuperMicroX9DRG_QF;
};

class ComputeNode {
 public:
  ComputeNode(sim::Scheduler& sched, int node_index,
              const NodeConfig& config = {});

  [[nodiscard]] int index() const { return index_; }
  [[nodiscard]] const NodeConfig& config() const { return cfg_; }

  [[nodiscard]] mem::Dram& host_dram() { return host_dram_; }
  [[nodiscard]] RootComplex& socket(int i) {
    TCA_ASSERT(i == 0 || i == 1);
    return i == 0 ? rc0_ : rc1_;
  }
  [[nodiscard]] CpuAgent& cpu() { return cpu_; }
  [[nodiscard]] gpu::GpuDevice& gpu(int i) {
    TCA_ASSERT(i >= 0 && i < static_cast<int>(gpus_.size()));
    return *gpus_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] int gpu_count() const { return static_cast<int>(gpus_.size()); }

  /// Creates a PCIe Gen2 x8 slot for a PEACH2 board on socket 0 and returns
  /// the board-side link port. `device_id` identifies the chip for
  /// completion routing. BARs claimed: the register window at `reg_base`
  /// and — only when `claim_tca_window` — the 512 GB TCA window (a node can
  /// host two boards for the paper's Fig. 10 loopback experiment, but only
  /// one of them owns the window mapping).
  pcie::LinkPort& attach_peach2_slot(pcie::DeviceId device_id,
                                     std::uint64_t reg_base,
                                     bool claim_tca_window);

  /// Like attach_peach2_slot, but reports BIOS BAR-capability failures
  /// instead of asserting — the footnote-2 scenario where a board's
  /// firmware cannot map the 512 GB window.
  Result<pcie::LinkPort*> try_attach_peach2_slot(pcie::DeviceId device_id,
                                                 std::uint64_t reg_base,
                                                 bool claim_tca_window);

  [[nodiscard]] Bios& bios() { return bios_; }

  /// Device id allocator shared with the fabric builder.
  [[nodiscard]] pcie::DeviceId cpu_device_id() const {
    return rc0_.cpu_device_id();
  }
  [[nodiscard]] pcie::DeviceId gpu_device_id(int i) const {
    return gpus_[static_cast<std::size_t>(i)]->id();
  }

 private:
  /// Globally unique device ids: node_index*16 + slot.
  [[nodiscard]] pcie::DeviceId make_id(int slot) const {
    return static_cast<pcie::DeviceId>(index_ * 16 + slot);
  }

  sim::Scheduler& sched_;
  int index_;
  NodeConfig cfg_;
  Bios bios_;
  mem::Dram host_dram_;
  RootComplex rc0_;
  RootComplex rc1_;
  pcie::PcieLink qpi_link_;
  CpuAgent cpu_;
  std::vector<std::unique_ptr<pcie::PcieLink>> gpu_links_;
  std::vector<std::unique_ptr<gpu::GpuDevice>> gpus_;
  std::vector<std::unique_ptr<pcie::PcieLink>> peach2_links_;
};

}  // namespace tca::node
