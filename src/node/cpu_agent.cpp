#include "node/cpu_agent.h"

#include <cstring>

#include "pcie/tlp.h"

namespace tca::node {

using calib::kCpuMmioStorePs;
using calib::kCpuPollDetectPs;
using calib::kCpuPollIterationPs;
using calib::kMaxPayloadBytes;

CpuAgent::CpuAgent(sim::Scheduler& sched, RootComplex& rc,
                   mem::Dram& host_dram, std::uint64_t host_base)
    : sched_(sched),
      rc_(rc),
      host_dram_(host_dram),
      host_base_(host_base),
      load_tags_(sched, 32) {
  rc_.set_cpu_completion_handler(
      [this](pcie::Tlp cpl) { on_completion(std::move(cpl)); });
}

sim::Task<> CpuAgent::mmio_store(std::uint64_t bus_addr,
                                 std::span<const std::byte> data) {
  std::uint64_t done = 0;
  while (done < data.size()) {
    const auto chunk = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        kMaxPayloadBytes, data.size() - done));
    // Store issue cost: the write-combining buffer flush per TLP.
    co_await sim::Delay(sched_, kCpuMmioStorePs);
    rc_.inject_from_cpu(pcie::Tlp::mem_write(
        bus_addr + done, data.subspan(done, chunk), device_id()));
    done += chunk;
  }
}

sim::Task<std::vector<std::byte>> CpuAgent::mmio_load(std::uint64_t bus_addr,
                                                      std::uint32_t length) {
  TCA_ASSERT(length > 0 && length <= calib::kMaxReadRequestBytes);
  co_await load_tags_.acquire();
  const std::uint8_t tag = next_tag_++;
  sim::Trigger done(sched_);
  auto [it, inserted] = pending_loads_.try_emplace(tag);
  TCA_ASSERT(inserted && "tag collision");
  it->second.buffer.resize(length);
  it->second.done = &done;

  co_await sim::Delay(sched_, kCpuMmioStorePs);  // uncached load issue
  rc_.inject_from_cpu(pcie::Tlp::mem_read(bus_addr, length, device_id(), tag));

  co_await done.wait();
  std::vector<std::byte> result = std::move(pending_loads_[tag].buffer);
  pending_loads_.erase(tag);
  load_tags_.release();
  co_return result;
}

void CpuAgent::on_completion(pcie::Tlp cpl) {
  auto it = pending_loads_.find(cpl.tag);
  TCA_ASSERT(it != pending_loads_.end() && "completion for unknown tag");
  PendingLoad& load = it->second;
  const std::uint32_t total = static_cast<std::uint32_t>(load.buffer.size());
  TCA_ASSERT(cpl.byte_count_remaining <= total);
  const std::uint32_t offset = total - cpl.byte_count_remaining;
  TCA_ASSERT(offset + cpl.payload.size() <= total);
  std::copy(cpl.payload.begin(), cpl.payload.end(),
            load.buffer.begin() + offset);
  load.received += static_cast<std::uint32_t>(cpl.payload.size());
  if (load.received == total) load.done->fire();
}

sim::Task<TimePs> CpuAgent::poll_host_until_change(std::uint64_t offset,
                                                   std::uint32_t initial) {
  for (;;) {
    ++poll_iterations_;
    std::uint32_t now_value = 0;
    host_dram_.read(offset, std::as_writable_bytes(std::span(&now_value, 1)));
    if (now_value != initial) {
      co_await sim::Delay(sched_, kCpuPollDetectPs);  // TSC read + compare
      co_return sched_.now();
    }
    co_await sim::Delay(sched_, kCpuPollIterationPs);
  }
}

}  // namespace tca::node
