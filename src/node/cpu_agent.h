// CPU-core agent: MMIO stores/loads and host-memory polling.
//
// Models the software-visible costs of the driver-level operations the paper
// measures with the TSC: uncached stores into the mmapped PEACH2 window (PIO
// communication, Section III-F1), MMIO register reads, and the polling loop
// of the latency experiment (Section IV-B1).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "calib/calibration.h"
#include "memory/dram.h"
#include "node/root_complex.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace tca::node {

class CpuAgent {
 public:
  CpuAgent(sim::Scheduler& sched, RootComplex& rc, mem::Dram& host_dram,
           std::uint64_t host_base);

  [[nodiscard]] pcie::DeviceId device_id() const { return rc_.cpu_device_id(); }
  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }

  /// Uncached MMIO store (posted). Splits into MaxPayloadSize TLPs for large
  /// spans (write-combining); completes when the last TLP is issued — posted
  /// writes do not wait for delivery.
  sim::Task<> mmio_store(std::uint64_t bus_addr,
                         std::span<const std::byte> data);

  /// MMIO load: issues an MRd and suspends until all completions return.
  sim::Task<std::vector<std::byte>> mmio_load(std::uint64_t bus_addr,
                                              std::uint32_t length);

  /// Direct (cache-coherent) host memory access; no TLPs involved.
  void write_host(std::uint64_t offset, std::span<const std::byte> data) {
    host_dram_.write(offset, data);
  }
  void read_host(std::uint64_t offset, std::span<std::byte> out) const {
    host_dram_.read(offset, out);
  }

  /// Polls a host-memory word every kCpuPollIterationPs until it differs
  /// from `initial`; returns the detection time (includes the TSC-read
  /// cost). This is exactly step 6 of the paper's loopback latency
  /// measurement.
  sim::Task<TimePs> poll_host_until_change(std::uint64_t offset,
                                           std::uint32_t initial);

  /// Total polling-loop iterations across all poll_host_until_change calls
  /// (each iteration burns kCpuPollIterationPs of CPU).
  [[nodiscard]] std::uint64_t poll_iterations() const {
    return poll_iterations_;
  }

 private:
  void on_completion(pcie::Tlp cpl);

  struct PendingLoad {
    std::vector<std::byte> buffer;
    std::uint32_t received = 0;
    sim::Trigger* done = nullptr;
  };

  sim::Scheduler& sched_;
  RootComplex& rc_;
  mem::Dram& host_dram_;
  std::uint64_t host_base_;
  sim::Semaphore load_tags_;
  std::unordered_map<std::uint8_t, PendingLoad> pending_loads_;
  std::uint8_t next_tag_ = 0;
  std::uint64_t poll_iterations_ = 0;
};

}  // namespace tca::node
