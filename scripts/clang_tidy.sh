#!/usr/bin/env bash
# clang-tidy gate with a committed baseline.
#
#   scripts/clang_tidy.sh [BUILD_DIR]          diff findings vs the baseline
#   scripts/clang_tidy.sh --update [BUILD_DIR] reseed the baseline
#
# Behavior:
#  * clang-tidy absent       -> report and exit 0 (the dev container does
#                               not ship it; CI installs it).
#  * baseline uninitialized  -> report findings informationally, exit 0.
#  * otherwise               -> fail on any finding not in the baseline.
#
# Findings are normalized to `relative/path [check-name]` lines so line
# numbers drifting with unrelated edits do not churn the baseline.
set -eu
cd "$(dirname "$0")/.."

UPDATE=0
if [ "${1:-}" = "--update" ]; then
  UPDATE=1
  shift
fi
BUILD="${1:-build-check}"
BASELINE=tools/tca_lint/clang_tidy_baseline.txt

if ! command -v clang-tidy > /dev/null 2>&1; then
  echo "clang_tidy.sh: clang-tidy not installed — skipping (CI runs it)"
  exit 0
fi

if [ ! -f "$BUILD/compile_commands.json" ]; then
  cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
fi

# Sources under src/ and the lint tool itself; tests and benches are
# covered by tca_lint plus their own suites.
mapfile -t SOURCES < <(find src tools/tca_lint -name '*.cpp' | sort)

# Checks that may never be baselined: findings from these fail the gate
# even if a stale baseline lists them, and --update filters them out.
# Both map onto the coroutine-lifetime bug class the tca_lint coro-* rules
# chase; freezing them as debt would defeat the point.
RATCHETED='bugprone-use-after-move\|bugprone-dangling-handle'

RAW=$(mktemp)
CURRENT=$(mktemp)
trap 'rm -f "$RAW" "$CURRENT"' EXIT

clang-tidy -p "$BUILD" --quiet "${SOURCES[@]}" > "$RAW" 2> /dev/null || true

# `/abs/path/file.cpp:12:3: warning: ... [check-name]` -> `path [check-name]`
ROOT=$(pwd)
sed -n "s|^$ROOT/\([^:]*\):[0-9]*:[0-9]*: warning: .*\(\[[A-Za-z0-9.,-]*\]\)\$|\1 \2|p" \
  "$RAW" | sort -u > "$CURRENT"

if [ "$UPDATE" -eq 1 ]; then
  {
    echo "# clang-tidy baseline for scripts/clang_tidy.sh."
    echo "# One \`path [check]\` line per accepted pre-existing finding;"
    echo "# regenerate with \`scripts/clang_tidy.sh --update\`."
    echo "# bugprone-use-after-move / bugprone-dangling-handle are ratcheted:"
    echo "# never written here, always fail the gate directly."
    grep -v "$RATCHETED" "$CURRENT" || true
  } > "$BASELINE"
  DROPPED=$(grep -c "$RATCHETED" "$CURRENT" || true)
  if [ "$DROPPED" -gt 0 ]; then
    echo "clang_tidy.sh: refused to baseline $DROPPED ratcheted finding(s):"
    grep "$RATCHETED" "$CURRENT"
  fi
  echo "clang_tidy.sh: baseline updated ($(grep -cv "$RATCHETED" "$CURRENT" || true) findings)"
  exit 0
fi

if grep -q '^# status: uninitialized$' "$BASELINE"; then
  echo "clang_tidy.sh: baseline uninitialized — reporting only"
  cat "$CURRENT"
  echo "clang_tidy.sh: $(wc -l < "$CURRENT") finding(s); run with --update to seed the baseline"
  exit 0
fi

# Ratcheted checks fail even when a stale baseline lists them.
BASE=$(grep -v '^#' "$BASELINE" | grep -v "$RATCHETED" | sort -u || true)
NEW=$(echo "$BASE" | comm -13 - "$CURRENT")
if [ -n "$NEW" ]; then
  echo "clang_tidy.sh: new findings not in the baseline:"
  echo "$NEW"
  exit 1
fi
echo "clang_tidy.sh: OK (no findings beyond the baseline)"
