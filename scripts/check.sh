#!/usr/bin/env bash
# Fast pre-commit gate: Release build with warnings, full test suite, and a
# ~1 s bench_sim_core smoke run (scheduler speedup tripwire + allocation,
# determinism and backend-equivalence checks).
#
# For a deeper pass, configure with -DTCA_SANITIZE=address (or undefined)
# and re-run the suite instrumented.
set -eu
cd "$(dirname "$0")/.."

BUILD=build-check

cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build "$BUILD" -j

echo "== tests =="
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"

echo "== bench_sim_core smoke =="
"$BUILD"/bench/bench_sim_core --smoke

echo "check.sh: OK"
