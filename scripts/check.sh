#!/usr/bin/env bash
# Fast pre-commit gate: Release build with warnings, tca_lint over the
# whole tree (coroutine-lifetime / determinism / register-map invariants),
# a clang-tidy baseline diff (skipped when clang-tidy is not installed),
# full test suite (soak label excluded — run `ctest -L soak` for the long
# fault campaigns), a sanitizer pass over the fault and collective suites,
# a TSan pass over the sharded-scheduler suite (epoch-mode worker threads;
# skipped when the toolchain or kernel can't run TSan binaries),
# a ~1 s bench_sim_core smoke run (scheduler speedup tripwire + allocation,
# determinism and backend-equivalence checks), collective bench smoke runs,
# a chaos smoke (seeded campaigns with same-seed replay check + committed
# corpus replay), and tca_explore smoke invocations (--stats and
# --workload).
#
# The build trees are CMake presets (CMakePresets.json): `check` is the
# Release gate, `asan`/`tsan` the instrumented suites, `perf` the bench
# tree. For a full instrumented pass: cmake --preset asan && ctest
# --preset asan (drop the filter by running ctest --test-dir
# build-check-asan directly).
set -eu
cd "$(dirname "$0")/.."

BUILD=build-check

cmake --preset check > /dev/null
cmake --build --preset check -j

echo "== tca_lint (project invariants) =="
# --cache-dir: per-file lex/analysis results keyed by content hash, so
# repeated gate runs only re-analyze what changed.
"$BUILD"/tools/tca_lint/tca_lint --root . --cache-dir "$BUILD"/lint-cache

echo "== clang-tidy (baseline diff; skips when not installed) =="
scripts/clang_tidy.sh "$BUILD"

echo "== tests =="
ctest --preset check -j "$(nproc)"

echo "== fault suites under ASan/UBSan =="
SAN_BUILD=build-check-asan
cmake --preset asan > /dev/null
cmake --build --preset asan -j --target fault_test fault_recovery_test coll_test
ctest --preset asan -j "$(nproc)"

echo "== sharded scheduler suite under TSan (skips when unsupported) =="
# Epoch mode runs shard workers on real threads; TSan is the gate that the
# barrier/mailbox protocol stays race-free. Probe first: some toolchains
# and kernels (ASLR vs tsan shadow ranges) can't run TSan binaries at all —
# skip gracefully there, like the clang-tidy stage.
TSAN_BUILD=build-check-tsan
mkdir -p "$TSAN_BUILD"
printf 'int main() { return 0; }\n' > "$TSAN_BUILD/tsan_probe.cpp"
if c++ -fsanitize=thread "$TSAN_BUILD/tsan_probe.cpp" \
     -o "$TSAN_BUILD/tsan_probe" 2> /dev/null \
   && "$TSAN_BUILD/tsan_probe" 2> /dev/null; then
  cmake --preset tsan > /dev/null
  cmake --build --preset tsan -j --target scheduler_stress_test
  ctest --preset tsan -j "$(nproc)"
else
  echo "TSan probe failed to build or run; skipping the TSan stage"
fi

echo "== bench_sim_core smoke =="
"$BUILD"/bench/bench_sim_core --smoke

echo "== collective bench smoke =="
"$BUILD"/bench/bench_coll_allreduce --smoke
"$BUILD"/bench/bench_coll_halo --smoke

echo "== tca_explore --stats smoke =="
METRICS_JSON=$(mktemp)
trap 'rm -f "$METRICS_JSON"' EXIT
"$BUILD"/tools/tca_explore --nodes 4 --op pipelined --target remote-host \
  --dest 2 --burst 8 --sizes 4096 --stats-out "$METRICS_JSON"
if command -v python3 > /dev/null 2>&1; then
  python3 - "$METRICS_JSON" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
for key in ("meta", "counters", "gauges", "histograms"):
    assert key in doc, f"metrics JSON missing top-level key: {key}"
assert doc["meta"].get("schema") == "tca-metrics-v1", "unknown metrics schema"
assert doc["counters"].get("fabric.payload_bytes", 0) > 0, \
    "no payload crossed the fabric"
print(f"metrics JSON OK ({len(doc['counters'])} counters)")
EOF
else
  # No python3: at least require the schema marker and a fabric counter.
  grep -q '"schema": "tca-metrics-v1"' "$METRICS_JSON"
  grep -q '"fabric.payload_bytes"' "$METRICS_JSON"
  echo "metrics JSON OK (grep fallback)"
fi

echo "== tca_explore --workload smoke =="
"$BUILD"/tools/tca_explore --workload allreduce --size 65536 --nodes 4
"$BUILD"/tools/tca_explore --workload halo --size 2048 --nodes 4

echo "== chaos smoke (seeded campaigns + same-seed replay check) =="
# Fast slice of the nightly soak: 25 seeded campaigns over both fabrics,
# each replayed to hold metrics/traces byte-identical, plus a replay of the
# committed regression corpus. The full 1000+-campaign sweep runs nightly
# (.github/workflows/nightly-soak.yml).
# TCA_LOG=error: fault campaigns legitimately emit driver/link WARNs;
# keep the per-campaign summary lines readable.
TCA_LOG=error "$BUILD"/tools/tca_chaos --seed 1 --campaigns 25 --replay-check
TCA_LOG=error "$BUILD"/tools/tca_chaos --corpus tests/chaos

echo "== tca_explore torus smoke =="
# 2D torus, dimension-order routed: a cross-dimension DMA plus a collective
# riding the boustrophedon ring order (allreduce verifies the result).
"$BUILD"/tools/tca_explore --topology torus:4x4 --op pipelined \
  --target remote-host --dest 5 --burst 8 --sizes 4096
"$BUILD"/tools/tca_explore --topology torus:4x4 --workload allreduce \
  --size 65536

echo "check.sh: OK"
