#!/usr/bin/env bash
# Full reproduction pipeline: build, test, regenerate every table/figure,
# and run the examples. Outputs land in test_output.txt / bench_output.txt
# at the repository root.
set -u
cd "$(dirname "$0")/.."

cmake -B build -G Ninja || exit 1
cmake --build build || exit 1

echo "== tests =="
ctest --test-dir build 2>&1 | tee test_output.txt
test_status=${PIPESTATUS[0]}

echo "== benches (every paper table & figure + extensions) =="
: > bench_output.txt
bench_status=0
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "===== $b" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
  [ "${PIPESTATUS[0]}" -ne 0 ] && bench_status=1
done

echo "== examples =="
for e in quickstart halo_exchange pingpong allreduce_ring block_stride \
         transpose; do
  echo "----- $e"
  ./build/examples/$e || bench_status=1
done

echo
echo "tests:   $([ "$test_status" -eq 0 ] && echo OK || echo FAIL)"
echo "benches: $([ "$bench_status" -eq 0 ] && echo OK || echo FAIL)"
exit $((test_status + bench_status))
