#!/usr/bin/env bash
# Simulator-core performance measurement (see docs/ARCHITECTURE.md,
# "Simulator core performance" and "Parallel DES core").
#
# Builds Release, then:
#   1. bench_sim_core — events/sec of the indexed and sharded (merge-mode)
#      schedulers vs. the seed baseline backend on synthetic churn (gates
#      the >=3x headline and timer_fire_small >= 1.0x), plus
#      allocation-free / determinism / three-way equivalence checks.
#   2. bench_sharded_scaling — ring-sweep wall clock of the conservative
#      parallel DES core (gates >=2x over baseline at >=64 nodes and the
#      per-shard thread-count-invariance checks).
#   3. Wall-clock A/B of full-simulator benches (bench_fig9_dma_chain,
#      bench_ring_scaling) across all three backends — TCA_SCHED_BASELINE
#      0 (indexed) / 1 (baseline) / 2 (sharded merge) — with byte-for-byte
#      diffs of their reports: simulated results must not drift by a single
#      picosecond between backends.
#   4. The collective-library sweeps (bench_coll_allreduce, bench_coll_halo)
#      against the conventional MPI/IB stack, with the same three-way
#      backend diff on bench_coll_allreduce.
#
# Everything lands in BENCH_sim_core.json and BENCH_coll.json at the
# repository root. Collector outputs (reports, JSON fragments) live under
# $BUILD/bench_out inside the repo — require_in_repo refuses any path that
# escapes the repository root, loudly.
set -u
cd "$(dirname "$0")/.."
REPO_ROOT=$(pwd)

BUILD=build-perf
OUT="$BUILD/bench_out"
JSON=BENCH_sim_core.json
COLL_JSON=BENCH_coll.json

# Every path a collector writes must resolve inside the repository root.
# A collector quietly dropping files in /tmp (or anywhere else outside the
# repo) is how benchmark artifacts silently diverge from what gets
# committed — fail loudly instead.
require_in_repo() {
  local resolved
  resolved=$(realpath -m "$1")
  case "$resolved" in
    "$REPO_ROOT"/*) return 0 ;;
    *)
      echo "FATAL: collector output '$1' resolves to '$resolved'," >&2
      echo "       which is outside the repository root '$REPO_ROOT'" >&2
      exit 1
      ;;
  esac
}

cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release > /dev/null || exit 1
cmake --build "$BUILD" -j --target \
  bench_sim_core bench_sharded_scaling bench_fig9_dma_chain \
  bench_ring_scaling bench_coll_allreduce bench_coll_halo > /dev/null \
  || exit 1
mkdir -p "$OUT"

echo "== bench_sim_core (events/sec: indexed + sharded vs. baseline) =="
require_in_repo "$OUT/sim_core.json"
"$BUILD"/bench/bench_sim_core --json "$OUT/sim_core.json" || exit 1

echo
echo "== bench_sharded_scaling (ring sweep wall clock) =="
require_in_repo "$OUT/sharded_scaling.json"
"$BUILD"/bench/bench_sharded_scaling --json "$OUT/sharded_scaling.json" \
  || exit 1

wallclock_once() { # binary -> seconds, report saved to $2
  local t0 t1
  t0=$(date +%s.%N)
  "$1" > "$2" 2>&1 || return 1
  t1=$(date +%s.%N)
  echo "$t0 $t1" | awk '{printf "%.3f", $2 - $1}'
}

min_s() { # a b -> min(a, b), empty-tolerant
  if [ -z "$1" ]; then echo "$2"
  elif awk "BEGIN{exit !($2 < $1)}"; then echo "$2"
  else echo "$1"; fi
}

echo
echo "== wall-clock A/B on full-simulator benches (three-way) =="
status=0
drift=false
entries=""
for bench in bench_fig9_dma_chain bench_ring_scaling; do
  bin="$BUILD/bench/$bench"
  require_in_repo "$OUT/$bench.indexed.txt"
  require_in_repo "$OUT/$bench.baseline.txt"
  require_in_repo "$OUT/$bench.sharded.txt"
  # Best-of-5, with the backends interleaved inside each repetition: the
  # box's slow phases (thermal, noisy neighbours) then penalize all three
  # equally instead of whichever backend owned the slow minute, and five
  # samples put each backend's minimum at its true floor — these two
  # benches run at parity by design (full-simulator wall clock), so the
  # recorded ratio is all noise floor.
  idx_s="" base_s="" shard_s=""
  for _rep in 1 2 3 4 5; do
    s=$(TCA_SCHED_BASELINE=0 wallclock_once "$bin" "$OUT/$bench.indexed.txt") \
      || status=1
    idx_s=$(min_s "$idx_s" "$s")
    s=$(TCA_SCHED_BASELINE=1 wallclock_once "$bin" "$OUT/$bench.baseline.txt") \
      || status=1
    base_s=$(min_s "$base_s" "$s")
    s=$(TCA_SCHED_BASELINE=2 wallclock_once "$bin" "$OUT/$bench.sharded.txt") \
      || status=1
    shard_s=$(min_s "$shard_s" "$s")
  done
  if diff -q "$OUT/$bench.indexed.txt" "$OUT/$bench.baseline.txt" \
       > /dev/null \
     && diff -q "$OUT/$bench.indexed.txt" "$OUT/$bench.sharded.txt" \
          > /dev/null
  then
    drift_txt="identical output across 3 backends (0 ps drift)"
  else
    drift_txt="OUTPUT DIFFERS"
    drift=true
    status=1
  fi
  speed=$(echo "$base_s $idx_s" | awk '{printf "%.3f", $1 / $2}')
  shard_speed=$(echo "$base_s $shard_s" | awk '{printf "%.3f", $1 / $2}')
  printf '%-24s baseline %ss  indexed %ss (%sx)  sharded %ss (%sx)  %s\n' \
    "$bench" "$base_s" "$idx_s" "$speed" "$shard_s" "$shard_speed" \
    "$drift_txt"
  entries="$entries  \"$bench\": {\"baseline_wall_s\": $base_s, \
\"indexed_wall_s\": $idx_s, \"wall_speedup\": $speed, \
\"sharded_wall_s\": $shard_s, \"sharded_wall_speedup\": $shard_speed},\n"
done

# Merge bench_sim_core + bench_sharded_scaling + the wall-clock numbers into
# one JSON (each fragment's last line is its lone closing brace; the scaling
# fragment's first two lines are "{" and its bench/smoke tags).
{
  head -n -1 "$OUT/sim_core.json"
  echo "  ,"
  tail -n +4 "$OUT/sharded_scaling.json" | head -n -1
  echo "  ,"
  printf '%b' "$entries"
  echo "  \"zero_drift\": $($drift && echo false || echo true)"
  echo "}"
} > "$JSON"
echo
echo "wrote $JSON"

echo
echo "== collective library vs the conventional stack (three-way A/B) =="
require_in_repo "$OUT/bench_coll_allreduce.json"
require_in_repo "$OUT/bench_coll_halo.json"
for mode in 0 1 2; do
  TCA_SCHED_BASELINE=$mode "$BUILD"/bench/bench_coll_allreduce \
    --json "$OUT/bench_coll_allreduce.json" \
    > "$OUT/bench_coll_allreduce.$mode.txt" 2>&1 || status=1
done
if diff -q "$OUT/bench_coll_allreduce.0.txt" \
     "$OUT/bench_coll_allreduce.1.txt" > /dev/null \
   && diff -q "$OUT/bench_coll_allreduce.0.txt" \
        "$OUT/bench_coll_allreduce.2.txt" > /dev/null
then
  echo "bench_coll_allreduce: identical output across 3 backends"
else
  echo "bench_coll_allreduce: OUTPUT DIFFERS across backends"
  status=1
fi
"$BUILD"/bench/bench_coll_halo --json "$OUT/bench_coll_halo.json" \
  > "$OUT/bench_coll_halo.txt" 2>&1 || status=1
{
  echo "{"
  echo "\"allreduce\":"
  cat "$OUT/bench_coll_allreduce.json"
  echo ","
  echo "\"halo\":"
  cat "$OUT/bench_coll_halo.json"
  echo "}"
} > "$COLL_JSON"
echo
echo "wrote $COLL_JSON"
exit $status
