#!/usr/bin/env bash
# Simulator-core performance measurement (see docs/ARCHITECTURE.md,
# "Simulator core performance").
#
# Builds Release, then:
#   1. bench_sim_core — events/sec of the indexed scheduler vs. the seed
#      baseline backend on synthetic churn (gates the >=3x headline), plus
#      allocation-free / determinism / equivalence checks.
#   2. Wall-clock A/B of two full-simulator benches (bench_fig9_dma_chain,
#      bench_ring_scaling) with TCA_SCHED_BASELINE toggling the backend, and
#      a byte-for-byte diff of their reports: simulated results must not
#      drift by a single picosecond between backends.
#   3. The collective-library sweeps (bench_coll_allreduce,
#      bench_coll_halo) against the conventional MPI/IB stack.
#
# Everything lands in BENCH_sim_core.json and BENCH_coll.json at the
# repository root.
set -u
cd "$(dirname "$0")/.."

BUILD=build-perf
JSON=BENCH_sim_core.json
COLL_JSON=BENCH_coll.json

cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release > /dev/null || exit 1
cmake --build "$BUILD" -j --target \
  bench_sim_core bench_fig9_dma_chain bench_ring_scaling \
  bench_coll_allreduce bench_coll_halo > /dev/null || exit 1

echo "== bench_sim_core (events/sec, indexed vs. baseline backend) =="
"$BUILD"/bench/bench_sim_core --json "$JSON.tmp" || exit 1

wallclock() { # binary -> best-of-2 seconds, report saved to $2
  local t0 t1 best="" s
  for _rep in 1 2; do
    t0=$(date +%s.%N)
    "$1" > "$2" 2>&1 || return 1
    t1=$(date +%s.%N)
    s=$(echo "$t0 $t1" | awk '{printf "%.3f", $2 - $1}')
    if [ -z "$best" ] || awk "BEGIN{exit !($s < $best)}"; then best=$s; fi
  done
  echo "$best"
}

echo
echo "== wall-clock A/B on full-simulator benches =="
status=0
drift=false
entries=""
for bench in bench_fig9_dma_chain bench_ring_scaling; do
  bin="$BUILD/bench/$bench"
  idx_s=$(TCA_SCHED_BASELINE=0 wallclock "$bin" "/tmp/$bench.indexed.txt") \
    || status=1
  base_s=$(TCA_SCHED_BASELINE=1 wallclock "$bin" "/tmp/$bench.baseline.txt") \
    || status=1
  if diff -q "/tmp/$bench.indexed.txt" "/tmp/$bench.baseline.txt" > /dev/null
  then
    drift_txt="identical output (0 ps drift)"
  else
    drift_txt="OUTPUT DIFFERS"
    drift=true
    status=1
  fi
  speed=$(echo "$base_s $idx_s" | awk '{printf "%.3f", $1 / $2}')
  printf '%-24s baseline %ss  indexed %ss  (%sx)  %s\n' \
    "$bench" "$base_s" "$idx_s" "$speed" "$drift_txt"
  entries="$entries  \"$bench\": {\"baseline_wall_s\": $base_s, \
\"indexed_wall_s\": $idx_s, \"wall_speedup\": $speed},\n"
done

# Merge the wall-clock numbers into the bench_sim_core JSON (its last line
# is the lone closing brace).
{
  head -n -1 "$JSON.tmp"
  echo "  ,"
  printf '%b' "$entries"
  echo "  \"zero_drift\": $($drift && echo false || echo true)"
  echo "}"
} > "$JSON"
rm -f "$JSON.tmp"
echo
echo "wrote $JSON"

echo
echo "== collective library vs the conventional stack =="
"$BUILD"/bench/bench_coll_allreduce --json /tmp/bench_coll_allreduce.json \
  || status=1
"$BUILD"/bench/bench_coll_halo --json /tmp/bench_coll_halo.json || status=1
{
  echo "{"
  echo "\"allreduce\":"
  cat /tmp/bench_coll_allreduce.json
  echo ","
  echo "\"halo\":"
  cat /tmp/bench_coll_halo.json
  echo "}"
} > "$COLL_JSON"
rm -f /tmp/bench_coll_allreduce.json /tmp/bench_coll_halo.json
echo
echo "wrote $COLL_JSON"
exit $status
