// Flow-sensitive protocol-lifecycle rules (proto-*, coro-borrow-across-
// suspend, coll-flag-overlap) over the CFGs of cfg.h.
//
// Annotation grammar (full write-up in docs/ARCHITECTURE.md):
//
//   // tca-protocol: <clause>[, <clause>...]
//
// Function-level clauses (on the declaration/definition header line, the
// line above it, or — for lambdas — the capture-intro line or the line
// above):
//   acquires(kind)    calling this function yields one `kind`; the callee
//                     is the primitive, so its own body is exempt for that
//                     kind
//   releases(kind)    calling discharges one `kind`
//   abandons(kind)    calling discharges one `kind` without completing it
//   borrows(kind)     the result borrows from pool `kind` (arena frames)
//   acks-on-commit    this function IS the PEARL ack emission
//   commit-point      the body performs the commit; ack emission must not
//                     be reachable before a `commit` statement
//   owns(kind)        the body enters holding one `kind` and must
//                     discharge it on every path
//
// Statement-level clauses (trailing on the statement line or standalone on
// the line above; they attach to a CFG node, so deleting the statement
// while leaving the annotation is a proto-bad-annotation):
//   acquire(kind)  release(kind)  abandon(kind)  transfer(kind)
//   commit         borrow(kind)
//
//   // tca-flags: param(name, min, max) | region(name, base, count)
//                 | total(expr)
//
// Flag-partition clauses are collected file-wide; every `region` interval
// must stay pairwise disjoint and inside [0, total) for every assignment of
// the declared params (expressions may use the file's constexpr constants).
//
// Known limitation (deliberate): the analysis is path-insensitive, so an
// acquire and its discharge guarded by the *same* runtime condition (the
// DMAC want_ack window) would report a false may-leak — such windows stay
// unannotated and are covered by the chaos campaigns instead.
#include <algorithm>
#include <cctype>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tca_lint/cfg.h"
#include "tca_lint/eval.h"
#include "tca_lint/lint.h"

namespace tca::lint::rules {

namespace {

// ---------------------------------------------------------------------------
// Annotation parsing

struct Clause {
  std::string name;
  std::vector<std::string> args;
  int line = 0;
};

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Parses `<clause>[, <clause>...]` starting after the marker. Returns
/// false on any junk — a typo in an annotation must be loud, not ignored.
bool parse_clause_list(const std::string& text, std::size_t at, int line,
                       std::vector<Clause>* out) {
  std::size_t i = at;
  bool any = false;
  while (i < text.size()) {
    const char c = text[i];
    if (c == ' ' || c == '\t' || c == ',') {
      ++i;
      continue;
    }
    std::size_t b = i;
    while (i < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[i])) ||
            text[i] == '-')) {
      ++i;
    }
    if (i == b) return false;
    Clause cl;
    cl.name = text.substr(b, i - b);
    cl.line = line;
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
    if (i < text.size() && text[i] == '(') {
      ++i;
      int depth = 1;
      std::string cur;
      bool closed = false;
      while (i < text.size()) {
        const char ch = text[i];
        if (ch == '(') ++depth;
        if (ch == ')') {
          --depth;
          if (depth == 0) {
            closed = true;
            ++i;
            break;
          }
        }
        if (ch == ',' && depth == 1) {
          cl.args.push_back(trim(cur));
          cur.clear();
          ++i;
          continue;
        }
        cur += ch;
        ++i;
      }
      if (!closed) return false;
      cl.args.push_back(trim(cur));
    }
    out->push_back(std::move(cl));
    any = true;
  }
  return any;
}

bool valid_kind(const std::string& k) {
  if (k.empty()) return false;
  for (char c : k) {
    if (!std::islower(static_cast<unsigned char>(c)) &&
        !std::isdigit(static_cast<unsigned char>(c)) && c != '-') {
      return false;
    }
  }
  return true;
}

enum class Level { kFn, kStmt, kBad };

/// Classifies a tca-protocol clause and validates its arity.
Level classify(const Clause& c) {
  const bool one_kind = c.args.size() == 1 && valid_kind(c.args[0]);
  if (c.name == "acquires" || c.name == "releases" || c.name == "abandons" ||
      c.name == "borrows" || c.name == "owns") {
    return one_kind ? Level::kFn : Level::kBad;
  }
  if (c.name == "acks-on-commit" || c.name == "commit-point") {
    return c.args.empty() ? Level::kFn : Level::kBad;
  }
  if (c.name == "acquire" || c.name == "release" || c.name == "abandon" ||
      c.name == "transfer" || c.name == "borrow") {
    return one_kind ? Level::kStmt : Level::kBad;
  }
  if (c.name == "commit") {
    return c.args.empty() ? Level::kStmt : Level::kBad;
  }
  return Level::kBad;
}

/// Marker position in a comment, or npos.
std::size_t marker_at(const std::string& text, const char* marker) {
  return text.find(marker);
}

/// First token index on `line`, or toks.size().
std::size_t first_tok_on_line(const std::vector<Tok>& toks, int line) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].line == line) return i;
    if (toks[i].line > line) break;
  }
  return toks.size();
}

bool name_is_keywordish(const std::string& t) {
  return t == "if" || t == "for" || t == "while" || t == "switch" ||
         t == "return" || t == "co_return" || t == "co_await" ||
         t == "sizeof" || t == "catch" || t == "static_assert";
}

/// The function name a function-level annotation on `line` refers to: the
/// first non-keyword identifier directly followed by `(` among the tokens
/// of `line` (trailing form) or `line + 1` (standalone form). Lambdas
/// (line starting with `[`) yield no name — their clauses are local-only.
std::string annotated_decl_name(const std::vector<Tok>& toks, int line) {
  for (int cand : {line, line + 1}) {
    const std::size_t first = first_tok_on_line(toks, cand);
    if (first >= toks.size()) continue;
    // A lambda's clauses are local-only; `[[attr]]` lines scan on.
    if (is_lambda_intro(toks, first)) return "";
    for (std::size_t i = first;
         i + 1 < toks.size() && toks[i].line == cand; ++i) {
      if (toks[i].kind == TokKind::kIdent && toks[i + 1].text == "(" &&
          !name_is_keywordish(toks[i].text)) {
        return toks[i].text;
      }
    }
  }
  return "";
}

std::string last_component(const std::string& name) {
  const std::size_t at = name.rfind("::");
  return at == std::string::npos ? name : name.substr(at + 2);
}

// ---------------------------------------------------------------------------
// Per-function annotation + event model

struct FnAnno {
  std::vector<std::string> owns;
  std::vector<std::string> prim_kinds;  ///< acquires/releases/abandons here
  bool commit_point = false;
  bool acks_on_commit = false;
};

struct Event {
  enum Type { kAcquire, kDischarge, kCommit, kBorrowDef } type;
  std::string kind;
  std::size_t tok = 0;  ///< anchor token index (call site / node begin)
  int line = 0;
  std::string what;  ///< human-readable source ("release_tag()", ...)
};

/// Iterates tokens of a node, skipping nested-lambda body ranges.
template <typename Fn>
void for_node_toks(const FunctionCfg& cfg, const CfgNode& node, Fn&& fn) {
  for (std::size_t i = node.begin; i < node.end; ++i) {
    bool skipped = false;
    for (const auto& [open, close] : cfg.nested_lambdas) {
      if (i >= open && i <= close) {
        i = close;
        skipped = true;
        break;
      }
    }
    if (skipped) continue;
    fn(i);
  }
}

struct Interval {
  int lo = 0;
  int hi = 0;
};

constexpr int kSat = 2;  // saturation keeps loops convergent

Interval transfer(const Interval& in, const std::vector<Event>& evs,
                  const std::string& kind) {
  Interval s = in;
  for (const Event& e : evs) {
    if (e.kind != kind) continue;
    if (e.type == Event::kAcquire) {
      s.lo = std::min(s.lo + 1, kSat);
      s.hi = std::min(s.hi + 1, kSat);
    } else if (e.type == Event::kDischarge) {
      s.lo = std::max(s.lo - 1, 0);
      s.hi = std::max(s.hi - 1, 0);
    }
  }
  return s;
}

std::string fn_label(const FunctionCfg& cfg) {
  return cfg.is_lambda ? "lambda" : "'" + cfg.name + "'";
}

// ---------------------------------------------------------------------------
// coll-flag-overlap

struct FlagParam {
  std::string name;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  int line = 0;
};
struct FlagRegion {
  std::string name;
  std::string base;
  std::string count;
  int line = 0;
};

bool eval_expr(const std::string& expr,
               const std::map<std::string, std::uint64_t>& env,
               std::uint64_t* out) {
  const LexedFile lf = lex(expr);
  if (lf.toks.empty()) return false;
  Eval ev{lf.toks, 0, lf.toks.size(), env};
  const std::uint64_t v = ev.or_expr();
  if (!ev.ok || ev.pos != lf.toks.size()) return false;
  *out = v;
  return true;
}

void check_flag_partitions(const std::string& path, const LexedFile& f,
                           const std::vector<FlagParam>& params,
                           const std::vector<FlagRegion>& regions,
                           const std::string& total_expr, int total_line,
                           std::vector<Finding>& out) {
  const std::map<std::string, std::uint64_t> consts = collect_constexpr_env(f);

  // Cartesian sweep over the declared parameter ranges.
  std::uint64_t combos = 1;
  for (const FlagParam& p : params) {
    combos *= p.max - p.min + 1;
    if (combos > 4096) {
      out.push_back({path, p.line, "proto-bad-annotation",
                     "tca-flags param sweep exceeds 4096 combinations"});
      return;
    }
  }

  std::set<std::string> reported;
  std::vector<std::uint64_t> idx(params.size(), 0);
  for (std::uint64_t combo = 0; combo < combos; ++combo) {
    std::map<std::string, std::uint64_t> env = consts;
    std::string assign;
    std::uint64_t rest = combo;
    for (std::size_t p = 0; p < params.size(); ++p) {
      const std::uint64_t span = params[p].max - params[p].min + 1;
      const std::uint64_t v = params[p].min + rest % span;
      rest /= span;
      env[params[p].name] = v;
      if (!assign.empty()) assign += ", ";
      assign += params[p].name + "=" + std::to_string(v);
    }

    struct Iv {
      const FlagRegion* r;
      std::uint64_t b, e;
    };
    std::vector<Iv> ivs;
    for (const FlagRegion& r : regions) {
      std::uint64_t b = 0;
      std::uint64_t c = 0;
      if (!eval_expr(r.base, env, &b) || !eval_expr(r.count, env, &c)) {
        if (reported.insert("eval:" + r.name).second) {
          out.push_back({path, r.line, "proto-bad-annotation",
                         "tca-flags region '" + r.name +
                             "' has an unevaluable base/count expression"});
        }
        continue;
      }
      ivs.push_back({&r, b, b + c});
    }
    for (std::size_t a = 0; a < ivs.size(); ++a) {
      for (std::size_t b = a + 1; b < ivs.size(); ++b) {
        if (ivs[a].b < ivs[b].e && ivs[b].b < ivs[a].e) {
          const std::string key =
              "ov:" + ivs[a].r->name + ":" + ivs[b].r->name;
          if (reported.insert(key).second) {
            out.push_back(
                {path, ivs[b].r->line, "coll-flag-overlap",
                 "flag regions '" + ivs[a].r->name + "' [" +
                     std::to_string(ivs[a].b) + ", " +
                     std::to_string(ivs[a].e) + ") and '" + ivs[b].r->name +
                     "' [" + std::to_string(ivs[b].b) + ", " +
                     std::to_string(ivs[b].e) + ") overlap" +
                     (assign.empty() ? "" : " at " + assign)});
          }
        }
      }
    }
    if (!total_expr.empty()) {
      std::uint64_t total = 0;
      if (!eval_expr(total_expr, env, &total)) {
        if (reported.insert("eval:total").second) {
          out.push_back({path, total_line, "proto-bad-annotation",
                         "tca-flags total expression is unevaluable"});
        }
      } else {
        for (const Iv& iv : ivs) {
          if (iv.e > total && reported.insert("tot:" + iv.r->name).second) {
            out.push_back(
                {path, iv.r->line, "coll-flag-overlap",
                 "flag region '" + iv.r->name + "' [" +
                     std::to_string(iv.b) + ", " + std::to_string(iv.e) +
                     ") exceeds the declared total of " +
                     std::to_string(total) +
                     (assign.empty() ? "" : " at " + assign)});
          }
        }
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Registry collection (first pass, across all protocol-scope files)

void collect_protocol_annotations(const LexedFile& f, Context& ctx) {
  for (const auto& [line, text] : f.comments) {
    const std::size_t at = marker_at(text, "tca-protocol:");
    if (at == std::string::npos) continue;
    std::vector<Clause> clauses;
    if (!parse_clause_list(text, at + 13, line, &clauses)) continue;
    std::string name;  // resolved lazily: only registry clauses need it
    for (const Clause& c : clauses) {
      const bool registry_clause =
          c.name == "acquires" || c.name == "releases" ||
          c.name == "abandons" || c.name == "borrows" ||
          c.name == "acks-on-commit";
      if (!registry_clause || classify(c) != Level::kFn) continue;
      if (name.empty()) name = annotated_decl_name(f.toks, line);
      if (name.empty()) break;  // lambda or unattached: local/bad elsewhere
      ProtoEffects& eff = ctx.protocol[name];
      auto add = [](std::vector<std::string>& v, const std::string& k) {
        if (std::find(v.begin(), v.end(), k) == v.end()) v.push_back(k);
      };
      if (c.name == "acquires") add(eff.acquires, c.args[0]);
      if (c.name == "releases") add(eff.releases, c.args[0]);
      if (c.name == "abandons") add(eff.abandons, c.args[0]);
      if (c.name == "borrows") add(eff.borrows, c.args[0]);
      if (c.name == "acks-on-commit") eff.acks_on_commit = true;
    }
  }
}

// ---------------------------------------------------------------------------
// The checker

void check_protocol(const std::string& path, const LexedFile& f,
                    const Context& ctx, std::vector<Finding>& out) {
  // -- Parse every annotation in the file.
  struct Anno {
    int line;
    std::vector<Clause> clauses;
  };
  std::vector<Anno> protos;
  std::vector<FlagParam> flag_params;
  std::vector<FlagRegion> flag_regions;
  std::string flag_total;
  int flag_total_line = 0;
  bool has_flags = false;

  for (const auto& [line, text] : f.comments) {
    const std::size_t pat = marker_at(text, "tca-protocol:");
    if (pat != std::string::npos) {
      std::vector<Clause> clauses;
      if (!parse_clause_list(text, pat + 13, line, &clauses)) {
        out.push_back({path, line, "proto-bad-annotation",
                       "unparsable tca-protocol annotation"});
      } else {
        bool ok = true;
        for (const Clause& c : clauses) {
          if (classify(c) == Level::kBad) {
            out.push_back({path, line, "proto-bad-annotation",
                           "unknown or malformed tca-protocol clause '" +
                               c.name + "'"});
            ok = false;
          }
        }
        if (ok) protos.push_back({line, std::move(clauses)});
      }
    }
    const std::size_t fat = marker_at(text, "tca-flags:");
    if (fat != std::string::npos) {
      std::vector<Clause> clauses;
      if (!parse_clause_list(text, fat + 10, line, &clauses)) {
        out.push_back({path, line, "proto-bad-annotation",
                       "unparsable tca-flags annotation"});
        continue;
      }
      for (const Clause& c : clauses) {
        if (c.name == "param" && c.args.size() == 3) {
          const std::map<std::string, std::uint64_t> empty;
          std::uint64_t mn = 0;
          std::uint64_t mx = 0;
          if (!eval_expr(c.args[1], empty, &mn) ||
              !eval_expr(c.args[2], empty, &mx) || mx < mn) {
            out.push_back({path, line, "proto-bad-annotation",
                           "tca-flags param '" + c.args[0] +
                               "' needs literal min <= max bounds"});
            continue;
          }
          flag_params.push_back({c.args[0], mn, mx, line});
          has_flags = true;
        } else if (c.name == "region" && c.args.size() == 3) {
          flag_regions.push_back({c.args[0], c.args[1], c.args[2], line});
          has_flags = true;
        } else if (c.name == "total" && c.args.size() == 1) {
          flag_total = c.args[0];
          flag_total_line = line;
          has_flags = true;
        } else {
          out.push_back({path, line, "proto-bad-annotation",
                         "unknown or malformed tca-flags clause '" + c.name +
                             "'"});
        }
      }
    }
  }

  // -- Build CFGs and attach annotations.
  const std::vector<FunctionCfg> cfgs = build_cfgs(f);
  std::vector<FnAnno> annos(cfgs.size());
  // Statement events per (cfg, node), merged with call events below.
  std::vector<std::map<std::size_t, std::vector<Event>>> stmt_events(
      cfgs.size());

  for (const Anno& an : protos) {
    for (const Clause& c : an.clauses) {
      const Level lvl = classify(c);
      if (lvl == Level::kFn) {
        // Innermost function whose header range covers the comment line.
        std::size_t best = cfgs.size();
        for (std::size_t i = 0; i < cfgs.size(); ++i) {
          if (an.line >= cfgs[i].header_line - 1 &&
              an.line <= cfgs[i].body_line &&
              (best == cfgs.size() ||
               cfgs[i].header_line > cfgs[best].header_line)) {
            best = i;
          }
        }
        if (best < cfgs.size()) {
          FnAnno& a = annos[best];
          if (c.name == "owns") a.owns.push_back(c.args[0]);
          if (c.name == "commit-point") a.commit_point = true;
          if (c.name == "acks-on-commit") a.acks_on_commit = true;
          if (c.name == "acquires" || c.name == "releases" ||
              c.name == "abandons") {
            a.prim_kinds.push_back(c.args[0]);
          }
          continue;
        }
        // No body here: a pure declaration consumes registry clauses only.
        const bool registry_ok =
            (c.name != "owns" && c.name != "commit-point") &&
            !annotated_decl_name(f.toks, an.line).empty();
        if (!registry_ok) {
          out.push_back({path, an.line, "proto-bad-annotation",
                         "function-level clause '" + c.name +
                             "' attaches to no function definition" +
                             (c.name == "owns" || c.name == "commit-point"
                                  ? " (it needs a body)"
                                  : " or declaration")});
        }
      } else {
        // Statement-level: node starting on this line (trailing) or the
        // next (standalone). Entry/exit nodes never consume annotations —
        // that is what makes a dangling annotation loud.
        bool attached = false;
        for (int target : {an.line, an.line + 1}) {
          for (std::size_t i = 0; i < cfgs.size() && !attached; ++i) {
            for (std::size_t n = 2; n < cfgs[i].nodes.size(); ++n) {
              if (cfgs[i].nodes[n].line != target) continue;
              Event e;
              e.kind = c.args.empty() ? "" : c.args[0];
              e.tok = cfgs[i].nodes[n].begin;
              e.line = an.line;
              e.what = c.name + " annotation";
              if (c.name == "acquire") {
                e.type = Event::kAcquire;
              } else if (c.name == "commit") {
                e.type = Event::kCommit;
              } else if (c.name == "borrow") {
                e.type = Event::kBorrowDef;
              } else {
                e.type = Event::kDischarge;  // release/abandon/transfer
              }
              stmt_events[i][n].push_back(std::move(e));
              attached = true;
              break;
            }
          }
          if (attached) break;
        }
        if (!attached) {
          out.push_back({path, an.line, "proto-bad-annotation",
                         "statement-level clause '" + c.name +
                             "' attaches to no statement"});
        }
      }
    }
  }

  // -- Per-function event tables (registry call sites + statement events).
  const std::set<std::string> emitters = [&ctx] {
    std::set<std::string> s;
    for (const auto& [name, eff] : ctx.protocol) {
      if (eff.acks_on_commit) s.insert(name);
    }
    return s;
  }();

  for (std::size_t ci = 0; ci < cfgs.size(); ++ci) {
    const FunctionCfg& cfg = cfgs[ci];
    const FnAnno& anno = annos[ci];
    const std::string self = last_component(cfg.name);

    std::vector<std::vector<Event>> events(cfg.nodes.size());
    std::vector<std::size_t> ack_call_nodes;

    for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
      for_node_toks(cfg, cfg.nodes[n], [&](std::size_t i) {
        if (f.toks[i].kind != TokKind::kIdent ||
            i + 1 >= f.toks.size() || f.toks[i + 1].text != "(") {
          return;
        }
        const std::string& callee = f.toks[i].text;
        if (emitters.count(callee) != 0) ack_call_nodes.push_back(n);
        auto it = ctx.protocol.find(callee);
        if (it == ctx.protocol.end()) return;
        auto push = [&](Event::Type t, const std::string& k) {
          events[n].push_back(
              {t, k, i, f.toks[i].line, callee + "()"});
        };
        for (const std::string& k : it->second.acquires) {
          push(Event::kAcquire, k);
        }
        for (const std::string& k : it->second.releases) {
          push(Event::kDischarge, k);
        }
        for (const std::string& k : it->second.abandons) {
          push(Event::kDischarge, k);
        }
        for (const std::string& k : it->second.borrows) {
          push(Event::kBorrowDef, k);
        }
      });
      auto sit = stmt_events[ci].find(n);
      if (sit != stmt_events[ci].end()) {
        for (Event& e : sit->second) events[n].push_back(e);
      }
    }

    const auto succ_edges = cfg_successors(cfg);

    // ---- proto-leak / proto-double-release: interval dataflow per kind.
    std::set<std::string> kinds(anno.owns.begin(), anno.owns.end());
    for (const auto& evs : events) {
      for (const Event& e : evs) {
        if (e.type == Event::kAcquire) kinds.insert(e.kind);
      }
    }
    for (const std::string& k : anno.prim_kinds) kinds.erase(k);

    for (const std::string& kind : kinds) {
      const int owned = static_cast<int>(
          std::count(anno.owns.begin(), anno.owns.end(), kind));
      std::vector<Interval> in(cfg.nodes.size());
      std::vector<char> reach(cfg.nodes.size(), 0);
      in[kCfgEntry] = {owned, owned};
      reach[kCfgEntry] = 1;
      bool changed = true;
      while (changed) {
        changed = false;
        for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
          if (!reach[n]) continue;
          const Interval s = transfer(in[n], events[n], kind);
          for (std::size_t ei : succ_edges[n]) {
            const std::size_t to = cfg.edges[ei].to;
            if (!reach[to]) {
              reach[to] = 1;
              in[to] = s;
              changed = true;
            } else if (s.lo < in[to].lo || s.hi > in[to].hi) {
              in[to].lo = std::min(in[to].lo, s.lo);
              in[to].hi = std::max(in[to].hi, s.hi);
              changed = true;
            }
          }
        }
      }
      // Reporting pass: double releases, then the exit state.
      std::set<int> dr_lines;
      for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
        if (!reach[n]) continue;
        Interval s = in[n];
        for (const Event& e : events[n]) {
          if (e.kind != kind) continue;
          if (e.type == Event::kAcquire) {
            s.lo = std::min(s.lo + 1, kSat);
            s.hi = std::min(s.hi + 1, kSat);
          } else if (e.type == Event::kDischarge) {
            if (s.hi == 0 && dr_lines.insert(e.line).second) {
              out.push_back({path, e.line, "proto-double-release",
                             fn_label(cfg) + " discharges '" + kind +
                                 "' via " + e.what +
                                 " on a path where none is held"});
            }
            s.lo = std::max(s.lo - 1, 0);
            s.hi = std::max(s.hi - 1, 0);
          }
        }
      }
      if (reach[kCfgExit]) {
        const Interval s = in[kCfgExit];
        if (s.lo > 0) {
          out.push_back({path, cfg.header_line, "proto-leak",
                         fn_label(cfg) + " leaks '" + kind +
                             "' on every path: acquired but never "
                             "released, abandoned, or transferred"});
        } else if (s.hi > 0) {
          out.push_back({path, cfg.header_line, "proto-leak",
                         fn_label(cfg) + " may leak '" + kind +
                             "': some path reaches the exit still "
                             "holding it"});
        }
      }
    }

    // ---- proto-ack-before-commit.
    if (!ack_call_nodes.empty() && !anno.acks_on_commit &&
        emitters.count(self) == 0) {
      if (!anno.commit_point) {
        std::set<std::size_t> seen;
        for (std::size_t n : ack_call_nodes) {
          if (!seen.insert(n).second) continue;
          out.push_back(
              {path, cfg.nodes[n].line, "proto-ack-before-commit",
               fn_label(cfg) +
                   " emits a commit ack outside any acks-on-commit or "
                   "commit-point context"});
        }
      } else {
        // BFS from entry; a `commit` node consumes the frontier.
        std::vector<char> reached(cfg.nodes.size(), 0);
        std::vector<std::size_t> work{kCfgEntry};
        reached[kCfgEntry] = 1;
        auto has_commit = [&events](std::size_t n) {
          for (const Event& e : events[n]) {
            if (e.type == Event::kCommit) return true;
          }
          return false;
        };
        while (!work.empty()) {
          const std::size_t n = work.back();
          work.pop_back();
          if (has_commit(n)) continue;  // past here is after the commit
          for (std::size_t ei : succ_edges[n]) {
            const std::size_t to = cfg.edges[ei].to;
            if (!reached[to]) {
              reached[to] = 1;
              work.push_back(to);
            }
          }
        }
        std::set<std::size_t> seen;
        for (std::size_t n : ack_call_nodes) {
          if (!seen.insert(n).second) continue;
          if (reached[n] && !has_commit(n)) {
            out.push_back(
                {path, cfg.nodes[n].line, "proto-ack-before-commit",
                 fn_label(cfg) +
                     " can emit the commit ack before reaching its "
                     "commit statement"});
          }
        }
      }
    }

    // ---- coro-borrow-across-suspend.
    for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
      for (const Event& e : events[n]) {
        if (e.type != Event::kBorrowDef) continue;
        // The borrowed variable: the identifier before the nearest `=` at
        // or before the borrow source inside this node.
        std::string var;
        for (std::size_t i = e.tok;
             i > cfg.nodes[n].begin && i < f.toks.size(); --i) {
          if (f.toks[i].text == "=" && f.toks[i].kind == TokKind::kPunct &&
              f.toks[i - 1].kind == TokKind::kIdent) {
            var = f.toks[i - 1].text;
            break;
          }
        }
        if (var.empty()) {
          if (e.what.find("annotation") != std::string::npos) {
            out.push_back({path, e.line, "proto-bad-annotation",
                           "borrow annotation on a statement without an "
                           "assignment to track"});
          }
          continue;  // unassigned borrow dies within the statement
        }
        // BFS over (node, crossed-suspension) states.
        std::set<std::pair<std::size_t, bool>> visited;
        std::vector<std::pair<std::size_t, bool>> work;
        for (std::size_t ei : succ_edges[n]) {
          work.emplace_back(cfg.edges[ei].to, cfg.edges[ei].suspension);
        }
        bool found = false;
        while (!work.empty() && !found) {
          auto [cur, crossed] = work.back();
          work.pop_back();
          if (!visited.insert({cur, crossed}).second) continue;
          bool killed = false;
          for_node_toks(cfg, cfg.nodes[cur], [&](std::size_t i) {
            if (killed || found) return;
            if (f.toks[i].kind != TokKind::kIdent || f.toks[i].text != var) {
              return;
            }
            if (i + 1 < f.toks.size() && f.toks[i + 1].text == "=") {
              killed = true;  // reassigned: the old borrow ends here
              return;
            }
            if (crossed) {
              out.push_back(
                  {path, cfg.nodes[cur].line, "coro-borrow-across-suspend",
                   "'" + var + "' borrows '" + e.kind + "' (line " +
                       std::to_string(e.line) +
                       ") but is used after a co_await suspension — the "
                       "borrow may be stale by resume time"});
              found = true;
            }
          });
          if (killed || found) continue;
          for (std::size_t ei : succ_edges[cur]) {
            work.emplace_back(cfg.edges[ei].to,
                              crossed || cfg.edges[ei].suspension);
          }
        }
      }
    }
  }

  // ---- coll-flag-overlap.
  if (has_flags) {
    check_flag_partitions(path, f, flag_params, flag_regions, flag_total,
                          flag_total_line, out);
  }
}

}  // namespace tca::lint::rules
