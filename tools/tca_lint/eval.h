// Minimal constant-expression evaluator shared by the register-map rules
// (rules_registers.cpp) and the collective flag-partition rules
// (rules_protocol.cpp): numbers, known identifiers, parentheses,
// * + - << >> | &. Covers every right-hand side in registers.h and every
// flag-region expression in src/coll; anything else reports failure and the
// caller decides whether that is an error or an ignorable constant.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "tca_lint/lexer.h"

namespace tca::lint::rules {

inline bool parse_number(const std::string& text, std::uint64_t* out) {
  std::string digits;
  for (char c : text) {
    if (c == '\'') continue;
    digits += c;
  }
  // Strip integer suffixes.
  while (!digits.empty()) {
    const char c = digits.back();
    if (c == 'u' || c == 'U' || c == 'l' || c == 'L') {
      digits.pop_back();
    } else {
      break;
    }
  }
  if (digits.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(digits.c_str(), &end, 0);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

/// Recursive-descent evaluator over a token range with an identifier
/// environment. Precedence (loosest to tightest): | &, << >>, + -, *.
struct Eval {
  const std::vector<Tok>& toks;
  std::size_t pos;
  std::size_t end;
  const std::map<std::string, std::uint64_t>& env;
  bool ok = true;

  std::uint64_t primary() {
    if (pos >= end) {
      ok = false;
      return 0;
    }
    const Tok& t = toks[pos];
    if (t.kind == TokKind::kNumber) {
      std::uint64_t v = 0;
      ok = ok && parse_number(t.text, &v);
      ++pos;
      return v;
    }
    if (t.kind == TokKind::kIdent) {
      // Swallow `std::uint64_t(...)`-style qualifiers conservatively: only
      // plain known identifiers evaluate.
      auto it = env.find(t.text);
      if (it == env.end()) {
        ok = false;
        return 0;
      }
      ++pos;
      return it->second;
    }
    if (t.text == "(") {
      ++pos;
      const std::uint64_t v = or_expr();
      if (pos < end && toks[pos].text == ")") {
        ++pos;
      } else {
        ok = false;
      }
      return v;
    }
    ok = false;
    return 0;
  }

  std::uint64_t mul_expr() {
    std::uint64_t v = primary();
    while (ok && pos < end && toks[pos].text == "*") {
      ++pos;
      v *= primary();
    }
    return v;
  }

  std::uint64_t add_expr() {
    std::uint64_t v = mul_expr();
    while (ok && pos < end &&
           (toks[pos].text == "+" || toks[pos].text == "-")) {
      const bool add = toks[pos].text == "+";
      ++pos;
      const std::uint64_t rhs = mul_expr();
      v = add ? v + rhs : v - rhs;
    }
    return v;
  }

  std::uint64_t shift_expr() {
    std::uint64_t v = add_expr();
    while (ok && pos < end &&
           (toks[pos].text == "<<" || toks[pos].text == ">>")) {
      const bool left = toks[pos].text == "<<";
      ++pos;
      const std::uint64_t rhs = add_expr();
      v = left ? (v << rhs) : (v >> rhs);
    }
    return v;
  }

  std::uint64_t or_expr() {
    std::uint64_t v = shift_expr();
    while (ok && pos < end &&
           (toks[pos].text == "|" || toks[pos].text == "&")) {
      const bool is_or = toks[pos].text == "|";
      ++pos;
      const std::uint64_t rhs = shift_expr();
      v = is_or ? (v | rhs) : (v & rhs);
    }
    return v;
  }
};

/// Collects `constexpr <type> kName = <expr>;` constants from a token
/// stream, evaluating each right-hand side against the constants gathered so
/// far (declaration order, like the compiler sees them). Unevaluable
/// constants are simply skipped — rules that need a specific name report its
/// absence themselves.
inline std::map<std::string, std::uint64_t> collect_constexpr_env(
    const LexedFile& f) {
  std::map<std::string, std::uint64_t> env;
  const auto& toks = f.toks;
  for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
    if (toks[i].text != "constexpr") continue;
    // Find `name = ... ;` within the declaration.
    std::size_t eq = i + 1;
    while (eq < toks.size() && toks[eq].text != "=" &&
           toks[eq].text != ";" && toks[eq].text != "{") {
      ++eq;
    }
    if (eq >= toks.size() || toks[eq].text != "=" || eq == i + 1) continue;
    if (toks[eq - 1].kind != TokKind::kIdent) continue;
    std::size_t semi = eq + 1;
    while (semi < toks.size() && toks[semi].text != ";") ++semi;
    if (semi >= toks.size()) continue;
    Eval ev{toks, eq + 1, semi, env};
    const std::uint64_t v = ev.or_expr();
    if (ev.ok && ev.pos == semi) env[toks[eq - 1].text] = v;
    i = semi;
  }
  return env;
}

}  // namespace tca::lint::rules
