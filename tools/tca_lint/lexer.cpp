#include "tca_lint/lexer.h"

#include <cctype>

namespace tca::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Two-character operators the rules care about. `::` must not split (the
/// range-for detector distinguishes `:` from `::`); the rest keep the
/// token stream compact.
bool two_char_op(char a, char b) {
  static constexpr const char* kOps[] = {"::", "->", "<<", ">>", "&&", "||",
                                         "==", "!=", "<=", ">=", "+=", "-=",
                                         "|=", "&=", "^=", "*=", "/="};
  for (const char* op : kOps) {
    if (op[0] == a && op[1] == b) return true;
  }
  return false;
}

}  // namespace

LexedFile lex(std::string_view src) {
  LexedFile out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();

  auto append_comment = [&out](int at, std::string_view text) {
    std::string& slot = out.comments[at];
    if (!slot.empty()) slot += ' ';
    slot.append(text);
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      std::size_t e = i + 2;
      while (e < n && src[e] != '\n') ++e;
      append_comment(line, src.substr(i + 2, e - i - 2));
      i = e;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const int start_line = line;
      std::size_t e = i + 2;
      while (e + 1 < n && !(src[e] == '*' && src[e + 1] == '/')) {
        if (src[e] == '\n') ++line;
        ++e;
      }
      append_comment(start_line, src.substr(i + 2, e - i - 2));
      i = (e + 1 < n) ? e + 2 : n;
      continue;
    }
    // Raw string literal (only the R"( form and delimited variants).
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t d = i + 2;
      while (d < n && src[d] != '(') ++d;
      const std::string closer =
          ")" + std::string(src.substr(i + 2, d - i - 2)) + "\"";
      std::size_t e = (d < n) ? d + 1 : n;
      while (e < n && src.compare(e, closer.size(), closer) != 0) {
        if (src[e] == '\n') ++line;
        ++e;
      }
      out.toks.push_back({TokKind::kString, "", line});
      i = (e < n) ? e + closer.size() : n;
      continue;
    }
    // String literal.
    if (c == '"') {
      std::size_t e = i + 1;
      std::string text;
      while (e < n && src[e] != '"') {
        if (src[e] == '\\' && e + 1 < n) {
          text += src[e + 1];
          e += 2;
          continue;
        }
        if (src[e] == '\n') ++line;  // unterminated; be forgiving
        text += src[e++];
      }
      out.toks.push_back({TokKind::kString, std::move(text), line});
      i = (e < n) ? e + 1 : n;
      continue;
    }
    // Character literal ('a', '\n', multi-char). A ' directly after an
    // identifier or digit would be a digit separator, but number lexing
    // below consumes those before we ever get here.
    if (c == '\'') {
      std::size_t e = i + 1;
      while (e < n && src[e] != '\'') {
        if (src[e] == '\\' && e + 1 < n) {
          e += 2;
          continue;
        }
        ++e;
      }
      out.toks.push_back({TokKind::kString, "", line});
      i = (e < n) ? e + 1 : n;
      continue;
    }
    // Number (integer or float, with ' separators and suffixes).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      std::size_t e = i;
      while (e < n && (ident_char(src[e]) || src[e] == '\'' ||
                       src[e] == '.')) {
        ++e;
      }
      out.toks.push_back(
          {TokKind::kNumber, std::string(src.substr(i, e - i)), line});
      i = e;
      continue;
    }
    // Identifier / keyword.
    if (ident_start(c)) {
      std::size_t e = i;
      while (e < n && ident_char(src[e])) ++e;
      out.toks.push_back(
          {TokKind::kIdent, std::string(src.substr(i, e - i)), line});
      i = e;
      continue;
    }
    // Punctuation.
    if (i + 1 < n && two_char_op(c, src[i + 1])) {
      out.toks.push_back(
          {TokKind::kPunct, std::string(src.substr(i, 2)), line});
      i += 2;
      continue;
    }
    out.toks.push_back({TokKind::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

std::size_t match_forward(const std::vector<Tok>& toks, std::size_t open) {
  if (open >= toks.size()) return toks.size();
  const std::string& o = toks[open].text;
  std::string close;
  if (o == "(") close = ")";
  else if (o == "[") close = "]";
  else if (o == "{") close = "}";
  else return toks.size();
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text == o) ++depth;
    else if (toks[i].text == close && --depth == 0) return i;
  }
  return toks.size();
}

std::size_t skip_angles(const std::vector<Tok>& toks, std::size_t lt) {
  if (lt >= toks.size() || toks[lt].text != "<") return lt;
  int depth = 0;
  int parens = 0;
  for (std::size_t i = lt; i < toks.size(); ++i) {
    const Tok& t = toks[i];
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "(") ++parens;
    else if (t.text == ")") {
      if (--parens < 0) return lt;  // closed an outer paren: not a template
    } else if (t.text == ";" || t.text == "{") {
      return lt;  // statements never span an argument list
    } else if (t.text == "<") {
      ++depth;
    } else if (t.text == ">") {
      if (--depth == 0) return i + 1;
    } else if (t.text == ">>") {
      depth -= 2;
      if (depth == 0) return i + 1;
      if (depth < 0) return lt;
    }
  }
  return lt;
}

}  // namespace tca::lint
