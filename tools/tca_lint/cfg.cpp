#include "tca_lint/cfg.h"

#include <algorithm>

namespace tca::lint {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

bool is_keyword(const std::string& t) {
  return t == "if" || t == "for" || t == "while" || t == "switch" ||
         t == "catch" || t == "return" || t == "sizeof" || t == "alignof" ||
         t == "decltype" || t == "noexcept" || t == "co_await" ||
         t == "co_return" || t == "co_yield" || t == "new" || t == "delete";
}

/// Finds the `{` of a lambda whose capture list starts at `intro` (`[`).
/// Returns kNone when the bracket run is not a lambda after all.
std::size_t lambda_body_open(const std::vector<Tok>& toks, std::size_t intro) {
  std::size_t i = match_forward(toks, intro);  // closing `]`
  if (i >= toks.size()) return kNone;
  ++i;
  if (i < toks.size() && toks[i].text == "(") {
    i = match_forward(toks, i);
    if (i >= toks.size()) return kNone;
    ++i;
  }
  // Quals and trailing return type up to the body.
  while (i < toks.size()) {
    const std::string& t = toks[i].text;
    if (t == "{") return i;
    if (t == ";" || t == ")" || t == "," || t == "]" || t == "}") return kNone;
    if (t == "<") {
      const std::size_t past = skip_angles(toks, i);
      i = past == i ? i + 1 : past;
      continue;
    }
    if (t == "(") {  // noexcept(...)
      i = match_forward(toks, i);
      if (i >= toks.size()) return kNone;
      ++i;
      continue;
    }
    ++i;
  }
  return kNone;
}

struct Body {
  std::string name;  // empty for lambdas
  bool is_lambda = false;
  int header_line = 0;
  std::size_t open = 0;
  std::size_t close = 0;
};

/// Walks back from the name token collecting `A::B::~C`-style qualified
/// names (and the first header-line token of the declaration).
std::string qualified_name(const std::vector<Tok>& toks, std::size_t name_at,
                          std::size_t* decl_begin) {
  std::string name = toks[name_at].text;
  std::size_t i = name_at;
  if (i > 0 && toks[i - 1].text == "~") {
    name = "~" + name;
    --i;
  }
  while (i >= 2 && toks[i - 1].text == "::" &&
         toks[i - 2].kind == TokKind::kIdent) {
    name = toks[i - 2].text + "::" + name;
    i -= 2;
  }
  // Header start: walk back to the token after the previous statement or
  // scope boundary.
  std::size_t b = i;
  while (b > 0) {
    const std::string& t = toks[b - 1].text;
    if (t == ";" || t == "{" || t == "}" || t == ":" || t == "(") break;
    --b;
  }
  *decl_begin = b;
  return name;
}

/// Scans `toks` for function definitions: `name (params) [quals] {`.
/// Nested discovered bodies are skipped so statements never masquerade as
/// definitions. Lambdas are collected separately (from anywhere).
std::vector<Body> discover_bodies(const std::vector<Tok>& toks) {
  std::vector<Body> out;
  std::vector<Body> lambdas;

  // Pass 1: named definitions, skipping each body once found.
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (is_lambda_intro(toks, i)) {
      // Don't let a lambda's params/body produce phantom definitions at this
      // level; its own content is scanned in pass 2.
      const std::size_t open = lambda_body_open(toks, i);
      if (open != kNone) {
        const std::size_t close = match_forward(toks, open);
        if (close < toks.size()) {
          i = close;
          continue;
        }
      }
    }
    if (toks[i].kind != TokKind::kIdent || toks[i + 1].text != "(" ||
        is_keyword(toks[i].text)) {
      continue;
    }
    const std::size_t close_paren = match_forward(toks, i + 1);
    if (close_paren >= toks.size()) continue;
    std::size_t j = close_paren + 1;
    bool plausible = true;
    while (j < toks.size() && plausible) {
      const std::string& t = toks[j].text;
      if (t == "{") break;
      if (t == "const" || t == "noexcept" || t == "override" ||
          t == "final" || t == "mutable" || t == "&" || t == "&&") {
        ++j;
      } else if (t == "(") {  // noexcept(...)
        j = match_forward(toks, j) + 1;
      } else if (t == "->") {
        // Trailing return type: skip type tokens up to `{` or `;`.
        ++j;
        while (j < toks.size() && toks[j].text != "{" &&
               toks[j].text != ";") {
          if (toks[j].text == "<") {
            const std::size_t past = skip_angles(toks, j);
            j = past == j ? j + 1 : past;
          } else {
            ++j;
          }
        }
      } else if (t == ":") {
        // Constructor init list: ident(...) or ident{...}, comma-separated.
        // A `{` preceded by an identifier or `>` is a member brace-init;
        // the body `{` follows `)`, `}`, or the init-list comma structure.
        ++j;
        while (j < toks.size()) {
          const std::string& u = toks[j].text;
          if (u == "(") {
            j = match_forward(toks, j) + 1;
          } else if (u == "{") {
            if (j > 0 && (toks[j - 1].kind == TokKind::kIdent ||
                          toks[j - 1].text == ">")) {
              j = match_forward(toks, j) + 1;
            } else {
              break;  // the body
            }
          } else if (u == ";" || u == ")") {
            plausible = false;
            break;
          } else {
            ++j;
          }
        }
        break;  // at `{` (body) or implausible
      } else {
        plausible = false;
      }
    }
    if (!plausible || j >= toks.size() || toks[j].text != "{") continue;
    const std::size_t body_close = match_forward(toks, j);
    if (body_close >= toks.size()) continue;
    Body b;
    std::size_t decl_begin = i;
    b.name = qualified_name(toks, i, &decl_begin);
    b.header_line = toks[decl_begin].line;
    b.open = j;
    b.close = body_close;
    out.push_back(b);
    i = body_close;
  }

  // Pass 2: lambdas, anywhere (inside named bodies or other lambdas).
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_lambda_intro(toks, i)) continue;
    const std::size_t open = lambda_body_open(toks, i);
    if (open == kNone) continue;
    const std::size_t close = match_forward(toks, open);
    if (close >= toks.size()) continue;
    Body b;
    b.is_lambda = true;
    b.header_line = toks[i].line;
    b.open = open;
    b.close = close;
    lambdas.push_back(b);
  }

  out.insert(out.end(), lambdas.begin(), lambdas.end());
  std::sort(out.begin(), out.end(),
            [](const Body& a, const Body& b) { return a.open < b.open; });
  return out;
}

/// Builds one FunctionCfg from a body range via recursive statement parsing.
class CfgBuilder {
 public:
  CfgBuilder(const std::vector<Tok>& toks, FunctionCfg& cfg)
      : toks_(toks), cfg_(cfg) {}

  void build() {
    cfg_.nodes.push_back({cfg_.body_open, cfg_.body_open, cfg_.header_line});
    cfg_.nodes.push_back({cfg_.body_close, cfg_.body_close,
                          toks_[cfg_.body_close].line});
    std::vector<std::size_t> outs{kCfgEntry};
    outs = parse_seq(cfg_.body_open + 1, cfg_.body_close, std::move(outs));
    connect(outs, kCfgExit);
  }

 private:
  struct Loop {
    std::size_t continue_target = kNone;
    std::vector<std::size_t> breaks;
  };

  std::size_t make_node(std::size_t begin, std::size_t end) {
    cfg_.nodes.push_back({begin, end, toks_[begin].line});
    return cfg_.nodes.size() - 1;
  }

  void edge(std::size_t from, std::size_t to, bool susp = false) {
    if (from == kNone || to == kNone) return;
    cfg_.edges.push_back({from, to, susp});
  }

  void connect(const std::vector<std::size_t>& froms, std::size_t to) {
    for (std::size_t f : froms) edge(f, to);
  }

  /// Advances past a nested lambda body if `i` sits on its intro; returns
  /// the index to continue scanning from (unchanged when not a lambda).
  std::size_t skip_lambda_at(std::size_t i) const {
    if (!is_lambda_intro(toks_, i)) return i;
    const std::size_t open = lambda_body_open(toks_, i);
    if (open == kNone) return i;
    const std::size_t close = match_forward(toks_, open);
    return close >= toks_.size() ? i : close;
  }

  /// Emits the node chain for one statement's token range, splitting at
  /// co_await suspension points (lambda bodies inside the range are opaque).
  /// Returns {entry, out}.
  std::pair<std::size_t, std::size_t> emit_chain(std::size_t a,
                                                 std::size_t b) {
    std::vector<std::size_t> cuts;
    for (std::size_t i = a; i < b; ++i) {
      const std::size_t past = skip_lambda_at(i);
      if (past != i) {
        i = past;
        continue;
      }
      if (toks_[i].text == "co_await") cuts.push_back(i);
    }
    std::size_t begin = a;
    std::size_t entry = kNone;
    std::size_t prev = kNone;
    for (std::size_t cut : cuts) {
      const std::size_t n = make_node(begin, cut + 1);
      if (entry == kNone) entry = n;
      if (prev != kNone) edge(prev, n, /*susp=*/true);
      prev = n;
      begin = cut + 1;
    }
    if (begin < b || entry == kNone) {
      // Final part (or whole statement when no co_await). A statement that
      // *ends* in co_await (`co_await x;`) still gets a resumed part so the
      // suspension is an edge, not a node-internal fact.
      const std::size_t n = make_node(begin == b ? b - 1 : begin, b);
      if (begin == b) cfg_.nodes.back().begin = b;  // empty resumed part
      if (entry == kNone) entry = n;
      if (prev != kNone) edge(prev, n, /*susp=*/true);
      prev = n;
    }
    return {entry, prev};
  }

  /// Parses statements in [i, end); wires `outs` into the first statement.
  /// Returns the dangling outs after the last statement.
  std::vector<std::size_t> parse_seq(std::size_t i, std::size_t end,
                                     std::vector<std::size_t> outs) {
    while (i < end) {
      if (toks_[i].text == ";") {  // empty statement
        ++i;
        continue;
      }
      auto [entry, st_outs, next] = parse_stmt(i, end);
      if (entry != kNone) {
        connect(outs, entry);
        outs = std::move(st_outs);
      }
      i = next;
    }
    return outs;
  }

  struct Parsed {
    std::size_t entry = kNone;
    std::vector<std::size_t> outs;
    std::size_t next = 0;
  };

  /// One statement starting at `i`.
  Parsed parse_stmt(std::size_t i, std::size_t end) {
    const std::string& t = toks_[i].text;

    if (t == "{") {
      const std::size_t close = match_forward(toks_, i);
      // A nested block: parse contents; synthesize a pass-through entry so
      // the caller has a single wiring point.
      const std::size_t entry = make_node(i, i + 1);
      auto outs = parse_seq(i + 1, std::min(close, end), {entry});
      return {entry, std::move(outs), std::min(close, end) + 1};
    }

    if (t == "if") {
      std::size_t close = i + 1 < end && toks_[i + 1].text == "constexpr"
                              ? match_forward(toks_, i + 2)
                              : match_forward(toks_, i + 1);
      auto [centry, cout] = emit_chain(i, std::min(close + 1, end));
      Parsed then = parse_stmt(close + 1, end);
      connect({cout}, then.entry);
      std::vector<std::size_t> outs = then.outs;
      std::size_t next = then.next;
      if (next < end && toks_[next].text == "else") {
        Parsed els = parse_stmt(next + 1, end);
        connect({cout}, els.entry);
        outs.insert(outs.end(), els.outs.begin(), els.outs.end());
        next = els.next;
      } else {
        outs.push_back(cout);  // false branch falls through
      }
      return {centry, std::move(outs), next};
    }

    if (t == "while" || t == "for") {
      const std::size_t close = match_forward(toks_, i + 1);
      const bool infinite = loop_is_infinite(i, close);
      auto [centry, cout] = emit_chain(i, std::min(close + 1, end));
      loops_.push_back({centry, {}});
      Parsed body = parse_stmt(close + 1, end);
      connect({cout}, body.entry);
      connect(body.outs, centry);  // back edges
      Loop loop = std::move(loops_.back());
      loops_.pop_back();
      std::vector<std::size_t> outs = std::move(loop.breaks);
      if (!infinite) outs.push_back(cout);
      return {centry, std::move(outs), body.next};
    }

    if (t == "do") {
      // Condition node created up front so `continue` has a target; its
      // token range is patched once the `while (...)` is located.
      const std::size_t cnode = make_node(i, i + 1);
      loops_.push_back({cnode, {}});
      Parsed body = parse_stmt(i + 1, end);
      Loop loop = std::move(loops_.back());
      loops_.pop_back();
      std::size_t next = body.next;
      bool infinite = false;
      if (next < end && toks_[next].text == "while") {
        const std::size_t close = match_forward(toks_, next + 1);
        infinite = loop_is_infinite(next, close);
        cfg_.nodes[cnode].begin = next;
        cfg_.nodes[cnode].end = std::min(close + 1, end);
        cfg_.nodes[cnode].line = toks_[next].line;
        next = std::min(close + 1, end);
        if (next < end && toks_[next].text == ";") ++next;
      }
      connect(body.outs, cnode);
      if (body.entry != kNone) edge(cnode, body.entry);  // back edge
      std::vector<std::size_t> outs = std::move(loop.breaks);
      if (!infinite) outs.push_back(cnode);
      const std::size_t entry = body.entry == kNone ? cnode : body.entry;
      return {entry, std::move(outs), next};
    }

    if (t == "switch") {
      const std::size_t close = match_forward(toks_, i + 1);
      auto [hentry, hout] = emit_chain(i, std::min(close + 1, end));
      std::size_t j = close + 1;
      std::vector<std::size_t> outs;
      if (j < end && toks_[j].text == "{") {
        const std::size_t body_close = std::min(match_forward(toks_, j), end);
        loops_.push_back({kNone, {}});  // break target (continue passes through)
        std::vector<std::size_t> fall;  // fallthrough from previous group
        bool has_default = false;
        bool pending = false;  // label(s) seen, dispatch edge not yet wired
        std::size_t k = j + 1;
        while (k < body_close) {
          if (toks_[k].text == "case") {
            while (k < body_close && toks_[k].text != ":") ++k;
            ++k;
            pending = true;
            continue;
          }
          if (toks_[k].text == "default") {
            has_default = true;
            while (k < body_close && toks_[k].text != ":") ++k;
            ++k;
            pending = true;
            continue;
          }
          if (toks_[k].text == ";") {
            ++k;
            continue;
          }
          Parsed st = parse_stmt(k, body_close);
          if (st.entry != kNone) {
            if (pending) edge(hout, st.entry);
            pending = false;
            connect(fall, st.entry);
            fall = std::move(st.outs);
          }
          k = st.next;
        }
        Loop sw = std::move(loops_.back());
        loops_.pop_back();
        outs = std::move(sw.breaks);
        outs.insert(outs.end(), fall.begin(), fall.end());
        if (!has_default) outs.push_back(hout);
        j = body_close + 1;
      } else {
        outs.push_back(hout);
      }
      return {hentry, std::move(outs), j};
    }

    if (t == "return" || t == "co_return") {
      const std::size_t semi = stmt_end(i, end);
      auto [entry, out] = emit_chain(i, semi);
      edge(out, kCfgExit);
      return {entry, {}, semi + 1};
    }

    if (t == "break" && !loops_.empty()) {
      const std::size_t n = make_node(i, std::min(i + 1, end));
      // Innermost breakable: a switch pushes a frame too.
      loops_.back().breaks.push_back(n);
      return {n, {}, stmt_end(i, end) + 1};
    }

    if (t == "continue" && !loops_.empty()) {
      const std::size_t n = make_node(i, std::min(i + 1, end));
      // `continue` skips switch frames (whose continue_target is kNone).
      for (auto it = loops_.rbegin(); it != loops_.rend(); ++it) {
        if (it->continue_target != kNone) {
          edge(n, it->continue_target);
          break;
        }
      }
      return {n, {}, stmt_end(i, end) + 1};
    }

    if (t == "try") {
      Parsed blk = parse_stmt(i + 1, end);
      std::vector<std::size_t> outs = blk.outs;
      std::size_t next = blk.next;
      while (next < end && toks_[next].text == "catch") {
        const std::size_t close = match_forward(toks_, next + 1);
        Parsed h = parse_stmt(close + 1, end);
        // Coarse: the handler is an alternative outcome of the block.
        if (blk.entry != kNone && h.entry != kNone) edge(blk.entry, h.entry);
        outs.insert(outs.end(), h.outs.begin(), h.outs.end());
        next = h.next;
      }
      return {blk.entry, std::move(outs), next};
    }

    // Plain statement (declaration, expression, ...): up to the `;` at this
    // nesting level, with balanced groups and lambda bodies skipped.
    const std::size_t semi = stmt_end(i, end);
    auto [entry, out] = emit_chain(i, semi);
    return {entry, {out}, semi + 1};
  }

  /// Index of the terminating `;` of a plain statement (or `end`).
  std::size_t stmt_end(std::size_t i, std::size_t end) const {
    while (i < end) {
      const std::size_t past = skip_lambda_at(i);
      if (past != i) {
        i = past + 1;
        continue;
      }
      const std::string& t = toks_[i].text;
      if (t == ";") return i;
      if (t == "(" || t == "[" || t == "{") {
        const std::size_t close = match_forward(toks_, i);
        i = close >= toks_.size() ? i + 1 : close + 1;
        continue;
      }
      ++i;
    }
    return end;
  }

  bool loop_is_infinite(std::size_t kw, std::size_t close_paren) const {
    // `for (;;)` / `while (true)` / `while (1)`.
    const std::size_t open = kw + 1;
    if (open >= toks_.size() || toks_[open].text != "(") return false;
    if (toks_[kw].text == "for") {
      // Condition section empty: `;` immediately followed by `;`.
      int semis = 0;
      for (std::size_t i = open + 1; i < close_paren; ++i) {
        if (toks_[i].text == "(" || toks_[i].text == "[" ||
            toks_[i].text == "{") {
          i = match_forward(toks_, i);
          continue;
        }
        if (toks_[i].text == ";") {
          ++semis;
          if (semis == 1) {
            // Peek the condition section for any token.
            for (std::size_t j = i + 1; j < close_paren; ++j) {
              if (toks_[j].text == ";") return j == i + 1;
            }
          }
        }
      }
      return false;
    }
    return close_paren == open + 2 &&
           (toks_[open + 1].text == "true" || toks_[open + 1].text == "1");
  }

  const std::vector<Tok>& toks_;
  FunctionCfg& cfg_;
  std::vector<Loop> loops_;
};

}  // namespace

bool is_lambda_intro(const std::vector<Tok>& toks, std::size_t i) {
  if (i >= toks.size() || toks[i].text != "[") return false;
  if (i + 1 < toks.size() && toks[i + 1].text == "[") return false;  // [[attr]]
  if (i == 0) return true;
  const Tok& p = toks[i - 1];
  // A `[` after a value expression is a subscript; after `]` it closes
  // `a[i][j]`; after `)` it subscripts a call result.
  if (p.kind == TokKind::kIdent && !is_keyword(p.text)) return false;
  return p.text != ")" && p.text != "]" && p.kind != TokKind::kNumber &&
         p.kind != TokKind::kString;
}

std::vector<FunctionCfg> build_cfgs(const LexedFile& f) {
  const auto& toks = f.toks;
  std::vector<FunctionCfg> out;
  const std::vector<Body> bodies = discover_bodies(toks);
  for (const Body& b : bodies) {
    FunctionCfg cfg;
    cfg.name = b.name;
    cfg.is_lambda = b.is_lambda;
    cfg.header_line = b.header_line;
    cfg.body_line = toks[b.open].line;
    cfg.body_open = b.open;
    cfg.body_close = b.close;
    for (const Body& inner : bodies) {
      if (inner.open > b.open && inner.close < b.close) {
        cfg.nested_lambdas.emplace_back(inner.open, inner.close);
      }
    }
    CfgBuilder builder(toks, cfg);
    builder.build();
    // Coroutine: co_* tokens at this body's own level.
    for (std::size_t i = b.open + 1; i < b.close; ++i) {
      bool nested = false;
      for (const auto& [open, close] : cfg.nested_lambdas) {
        if (i >= open && i <= close) {
          i = close;
          nested = true;
          break;
        }
      }
      if (nested) continue;
      const std::string& t = toks[i].text;
      if (t == "co_await" || t == "co_return" || t == "co_yield") {
        cfg.is_coroutine = true;
        break;
      }
    }
    out.push_back(std::move(cfg));
  }
  return out;
}

std::vector<std::vector<std::size_t>> cfg_successors(const FunctionCfg& cfg) {
  std::vector<std::vector<std::size_t>> succ(cfg.nodes.size());
  for (std::size_t e = 0; e < cfg.edges.size(); ++e) {
    succ[cfg.edges[e].from].push_back(e);
  }
  return succ;
}

}  // namespace tca::lint
