// Intraprocedural control-flow graphs over the tca_lint token stream.
//
// Not a compiler CFG: nodes are statements (split at `co_await` so a
// suspension point is a first-class edge), discovered by a recursive
// statement parser that understands if/else, for/while/do loops, switch,
// break/continue, return/co_return, and nested blocks. Function bodies are
// found by token-shape (`name (params) [quals] {`), which covers every
// definition style used in this codebase — free functions, out-of-line
// methods, class-inline methods, constructors with init lists — plus
// lambdas, whose bodies become their own graphs and are opaque single
// tokens-runs to the enclosing function.
//
// Guarantees the protocol rules (rules_protocol.cpp) build on:
//  * nodes[0] is the synthetic entry, nodes[1] the synthetic exit; every
//    return/co_return edge targets the exit.
//  * an edge with `suspension == true` crosses exactly one `co_await`; the
//    awaiting part of the statement ends the source node, the resumed part
//    starts the destination node.
//  * `for (;;)`, `while (true)` and `while (1)` get no loop-exit edge, so
//    a resource held across iterations of a service loop is not reported as
//    leaking through an unreachable exit.
//  * statements inside a nested lambda body belong only to the lambda's own
//    graph; the enclosing function's nodes skip those token ranges (listed
//    in `nested_lambdas` so event scanners can skip them too).
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "tca_lint/lexer.h"

namespace tca::lint {

/// Half-open token range [begin, end) of one statement part.
struct CfgNode {
  std::size_t begin = 0;
  std::size_t end = 0;
  int line = 0;  ///< line of the first token (entry/exit: header line)
};

struct CfgEdge {
  std::size_t from = 0;
  std::size_t to = 0;
  bool suspension = false;  ///< crosses a co_await
};

inline constexpr std::size_t kCfgEntry = 0;
inline constexpr std::size_t kCfgExit = 1;

struct FunctionCfg {
  /// Name as written at the definition (`Peach2Chip::on_write_commit`,
  /// `acquire_tag`); empty for lambdas.
  std::string name;
  bool is_lambda = false;
  /// Body contains co_await/co_return/co_yield at its own nesting level.
  bool is_coroutine = false;
  /// First line of the declaration header (return type), or the lambda
  /// intro line. Function-level annotations may sit on header_line - 1
  /// through body_line.
  int header_line = 0;
  int body_line = 0;  ///< line of the body's `{`
  std::size_t body_open = 0;   ///< token index of `{`
  std::size_t body_close = 0;  ///< token index of matching `}`
  std::vector<CfgNode> nodes;  ///< [0]=entry, [1]=exit, then statements
  std::vector<CfgEdge> edges;
  /// `{`..`}` token index ranges (inclusive) of every lambda body nested
  /// anywhere inside this function's body.
  std::vector<std::pair<std::size_t, std::size_t>> nested_lambdas;
};

/// Discovers every function definition and lambda in the file and builds
/// one CFG per body. Deterministic order: by body_open token index.
std::vector<FunctionCfg> build_cfgs(const LexedFile& f);

/// Successor adjacency (edge indices into cfg.edges) per node.
std::vector<std::vector<std::size_t>> cfg_successors(const FunctionCfg& cfg);

/// True when toks[i] starts a lambda capture list (as opposed to a
/// subscript or an attribute).
bool is_lambda_intro(const std::vector<Tok>& toks, std::size_t i);

}  // namespace tca::lint
