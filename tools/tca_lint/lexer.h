// Light C++ tokenizer for tca_lint.
//
// Not a compiler front end: produces just enough structure for the rule
// matchers — identifiers, numbers, strings, and punctuation with line
// numbers, comments collected per line (suppressions and register-map
// annotations live in comments), string/char-literal *contents* dropped from
// the token stream so rule keywords quoted in messages or tables never
// trigger the rules themselves.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace tca::lint {

enum class TokKind {
  kIdent,
  kNumber,
  kString,  // string literal (text = decoded-ish contents, unused by rules)
  kPunct,   // operators/punctuation; multi-char for ::, ->, <<, >>, &&, ...
};

struct Tok {
  TokKind kind;
  std::string text;
  int line = 0;
};

struct LexedFile {
  std::vector<Tok> toks;
  /// Comment text per line (line → concatenated // and /* */ contents).
  /// Block comments are keyed by their starting line.
  std::map<int, std::string> comments;
};

/// Tokenizes `source`. Never fails: unrecognized bytes become single-char
/// punctuation tokens.
LexedFile lex(std::string_view source);

/// Index of the matching closer for the opener at `open` (one of ( [ {),
/// or toks.size() when unbalanced.
std::size_t match_forward(const std::vector<Tok>& toks, std::size_t open);

/// Balanced skip over a template-argument list starting at `lt` (toks[lt]
/// must be "<"). Returns the index just past the matching ">", treating
/// ">>" as two closers. Returns `lt` itself when the angle run is not a
/// plausible template-argument list (hits ; or unbalanced parens first).
std::size_t skip_angles(const std::vector<Tok>& toks, std::size_t lt);

}  // namespace tca::lint
