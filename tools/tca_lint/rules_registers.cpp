// Register-map consistency rules.
//
// src/peach2/registers.h is the contract between the driver and the chip
// (Fig. 5 address-range registers): every offset the driver touches must be
// a named constant, and the named constants must describe a well-formed
// BAR0 window. The header is parsed directly — constants are evaluated with
// a tiny constant-expression evaluator, classification comes from the
// structured comment annotations:
//
//   // RO | RW | WO          absolute BAR0 register (8 bytes unless span:N)
//   // RW bank:dma           field relative to a DMA channel bank
//   // RW bank:route         field relative to a route-table entry
//   // alias                 channel-0 convenience alias (base + field)
//   span:N                   register occupies N bytes (e.g. per-port array)
//
// The same facts are re-stated in the header's constexpr kRegMap table
// (enforced by static_assert at compile time); the linter cross-checks the
// two representations so neither can rot alone.
#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "tca_lint/eval.h"
#include "tca_lint/lint.h"

namespace tca::lint::rules {

namespace {

using u64 = std::uint64_t;

enum class RegClass { kPlain, kGlobal, kDmaField, kRouteField, kAlias };

struct ParsedConst {
  std::string name;
  u64 value = 0;
  bool evaluated = false;
  int line = 0;
  RegClass cls = RegClass::kPlain;
  u64 span = 8;
};

/// True when `word` appears in `text` delimited by non-identifier chars.
bool has_word(const std::string& text, const std::string& word) {
  std::size_t at = 0;
  while ((at = text.find(word, at)) != std::string::npos) {
    const bool left_ok =
        at == 0 || (!std::isalnum(static_cast<unsigned char>(text[at - 1])) &&
                    text[at - 1] != '_' && text[at - 1] != ':');
    const std::size_t after = at + word.size();
    const bool right_ok =
        after >= text.size() ||
        (!std::isalnum(static_cast<unsigned char>(text[after])) &&
         text[after] != '_');
    if (left_ok && right_ok) return true;
    at = after;
  }
  return false;
}

RegClass classify(const std::string& comment, u64* span) {
  if (has_word(comment, "alias")) return RegClass::kAlias;
  const bool access = has_word(comment, "RO") || has_word(comment, "RW") ||
                      has_word(comment, "WO");
  if (!access) return RegClass::kPlain;
  const std::size_t sp = comment.find("span:");
  if (sp != std::string::npos) {
    u64 v = 0;
    if (parse_number(comment.substr(sp + 5,
                                    comment.find_first_not_of(
                                        "0123456789", sp + 5) -
                                        (sp + 5)),
                     &v) &&
        v > 0) {
      *span = v;
    }
  }
  if (comment.find("bank:dma") != std::string::npos) {
    return RegClass::kDmaField;
  }
  if (comment.find("bank:route") != std::string::npos) {
    return RegClass::kRouteField;
  }
  return RegClass::kGlobal;
}

struct TableEntry {
  u64 offset = 0;
  bool evaluated = false;
  std::string bank;  // kGlobal / kDmaChannel / kRouteEntry
  u64 span = 8;
  int line = 0;
};

struct ParsedHeader {
  std::vector<ParsedConst> consts;
  std::map<std::string, u64> env;
  std::vector<TableEntry> table;
  bool has_table = false;
};

ParsedHeader parse_header(const LexedFile& f) {
  ParsedHeader h;
  const std::vector<Tok>& toks = f.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;

    if (toks[i].text == "constexpr") {
      // Find `name = expr ;` before any `{` (skip function definitions and
      // brace-initialized tables — kRegMap is parsed separately below).
      std::size_t j = i + 1;
      std::size_t eq = 0;
      while (j < toks.size()) {
        const std::string& s = toks[j].text;
        if (s == ";" ) break;
        if (s == "{") {
          const std::size_t close = match_forward(toks, j);
          j = (close >= toks.size()) ? toks.size() : close;
          break;
        }
        if (s == "=" && eq == 0) {
          eq = j;
          // Brace-initialized: handled by the table parser.
          if (j + 1 < toks.size() && toks[j + 1].text == "{") {
            const std::size_t close = match_forward(toks, j + 1);
            j = (close >= toks.size()) ? toks.size() : close;
            eq = 0;
            break;
          }
        }
        ++j;
      }
      if (eq == 0 || eq == i + 1 || j >= toks.size() ||
          toks[j].text != ";") {
        continue;
      }
      const Tok& name_tok = toks[eq - 1];
      if (name_tok.kind != TokKind::kIdent) continue;

      ParsedConst pc;
      pc.name = name_tok.text;
      pc.line = name_tok.line;
      Eval ev{toks, eq + 1, j, h.env};
      const u64 v = ev.or_expr();
      pc.evaluated = ev.ok && ev.pos == j;
      pc.value = pc.evaluated ? v : 0;
      auto c = f.comments.find(pc.line);
      if (c != f.comments.end()) {
        pc.cls = classify(c->second, &pc.span);
      }
      if (pc.evaluated) h.env[pc.name] = pc.value;
      h.consts.push_back(std::move(pc));
      continue;
    }

    if (toks[i].text == "kRegMap") {
      // kRegMap[] = { {offset, RegAccess::kX, RegBank::kY, "Name"[, span]},
      // ... }; — require the `=` so mere *uses* of kRegMap (range-for in
      // the header's own validators) don't look like the declaration.
      std::size_t j = i + 1;
      bool saw_eq = false;
      while (j < toks.size() && toks[j].text != "{" && toks[j].text != ";") {
        if (toks[j].text == "=") saw_eq = true;
        ++j;
      }
      if (j >= toks.size() || toks[j].text != "{" || !saw_eq) continue;
      const std::size_t table_close = match_forward(toks, j);
      if (table_close >= toks.size()) continue;
      h.has_table = true;
      std::size_t k = j + 1;
      while (k < table_close) {
        if (toks[k].text != "{") {
          ++k;
          continue;
        }
        const std::size_t entry_close = match_forward(toks, k);
        if (entry_close >= toks.size() || entry_close > table_close) break;
        TableEntry e;
        e.line = toks[k].line;
        // Offset: everything up to the first top-level comma.
        std::size_t first_comma = entry_close;
        int depth = 0;
        for (std::size_t m = k + 1; m < entry_close; ++m) {
          const std::string& s = toks[m].text;
          if (s == "(" || s == "{" || s == "[") ++depth;
          else if (s == ")" || s == "}" || s == "]") --depth;
          else if (s == "," && depth == 0) {
            first_comma = m;
            break;
          }
        }
        Eval ev{toks, k + 1, first_comma, h.env};
        const u64 v = ev.or_expr();
        e.evaluated = ev.ok && ev.pos == first_comma;
        e.offset = e.evaluated ? v : 0;
        for (std::size_t m = first_comma; m < entry_close; ++m) {
          const Tok& t = toks[m];
          if (t.kind == TokKind::kIdent &&
              (t.text == "kGlobal" || t.text == "kDmaChannel" ||
               t.text == "kRouteEntry")) {
            e.bank = t.text;
          }
          if (t.kind == TokKind::kNumber && m + 1 >= entry_close) {
            parse_number(t.text, &e.span);
          }
          // `{off, acc, bank, "Name", N}` — span is the trailing number.
          if (t.kind == TokKind::kNumber && m + 1 < entry_close &&
              toks[m + 1].text == "}") {
            parse_number(t.text, &e.span);
          }
        }
        h.table.push_back(e);
        k = entry_close + 1;
      }
      i = table_close;
    }
  }
  return h;
}

struct Interval {
  u64 begin;
  u64 end;  // exclusive
  const ParsedConst* c;
};

}  // namespace

void check_register_map(const std::string& path, const LexedFile& f,
                        std::vector<Finding>& out) {
  const ParsedHeader h = parse_header(f);

  auto require = [&](const char* name, u64* out_v) {
    auto it = h.env.find(name);
    if (it == h.env.end()) {
      out.push_back({path, 1, "reg-map-parse",
                     std::string("required constant `") + name +
                         "` missing or unevaluable"});
      return false;
    }
    *out_v = it->second;
    return true;
  };

  u64 window = 0, dma_base = 0, dma_stride = 0, dma_banks = 0;
  u64 route_base = 0, route_stride = 0, route_entries = 0;
  if (!require("kWindowBytes", &window) ||
      !require("kDmaBankBase", &dma_base) ||
      !require("kDmaBankStride", &dma_stride) ||
      !require("kDmaChannelBanks", &dma_banks) ||
      !require("kRouteBase", &route_base) ||
      !require("kRouteStride", &route_stride) ||
      !require("kRouteEntries", &route_entries)) {
    return;
  }
  const u64 dma_region_end = dma_base + dma_banks * dma_stride;
  const u64 route_region_end = route_base + route_entries * route_stride;

  std::vector<Interval> globals;
  std::vector<const ParsedConst*> dma_fields, route_fields;

  for (const ParsedConst& c : h.consts) {
    if (c.cls == RegClass::kPlain) continue;
    if (!c.evaluated) {
      out.push_back({path, c.line, "reg-map-parse",
                     "annotated register `" + c.name +
                         "` has an unevaluable offset expression"});
      continue;
    }
    if (c.value % 8 != 0) {
      out.push_back({path, c.line, "reg-misaligned",
                     "register `" + c.name +
                         "` is not 8-byte aligned (all MMIO is 64-bit)"});
    }
    switch (c.cls) {
      case RegClass::kGlobal:
        if (c.value + c.span > window) {
          out.push_back({path, c.line, "reg-out-of-window",
                         "register `" + c.name +
                             "` lies outside the BAR0 window "
                             "[0, kWindowBytes)"});
        }
        globals.push_back({c.value, c.value + c.span, &c});
        break;
      case RegClass::kDmaField:
        if (c.value + 8 > dma_stride) {
          out.push_back({path, c.line, "reg-field-overflow",
                         "DMA bank field `" + c.name +
                             "` exceeds kDmaBankStride"});
        }
        dma_fields.push_back(&c);
        break;
      case RegClass::kRouteField:
        if (c.value + 8 > route_stride) {
          out.push_back({path, c.line, "reg-field-overflow",
                         "route-entry field `" + c.name +
                             "` exceeds kRouteStride"});
        }
        route_fields.push_back(&c);
        break;
      case RegClass::kAlias: {
        bool matches = false;
        for (const ParsedConst* fld : dma_fields) {
          if (c.value == dma_base + fld->value) {
            matches = true;
            break;
          }
        }
        if (!matches) {
          out.push_back({path, c.line, "reg-bad-alias",
                         "alias `" + c.name +
                             "` is not kDmaBankBase + <declared DMA bank "
                             "field>"});
        }
        break;
      }
      case RegClass::kPlain:
        break;
    }
  }

  // Overlaps among absolute registers.
  std::vector<Interval> sorted = globals;
  std::sort(sorted.begin(), sorted.end(),
            [](const Interval& a, const Interval& b) {
              return a.begin < b.begin;
            });
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i].begin < sorted[i - 1].end) {
      out.push_back({path, sorted[i].c->line, "reg-dup-offset",
                     "register `" + sorted[i].c->name + "` overlaps `" +
                         sorted[i - 1].c->name + "`"});
    }
  }
  // Absolute registers must not fall inside a decoded bank region.
  for (const Interval& g : globals) {
    const bool in_dma = g.begin < dma_region_end && g.end > dma_base;
    const bool in_route = g.begin < route_region_end && g.end > route_base;
    if (in_dma || in_route) {
      out.push_back({path, g.c->line, "reg-bank-overlap",
                     "register `" + g.c->name + "` falls inside the " +
                         (in_dma ? "DMA channel-bank" : "route-table") +
                         " region"});
    }
  }
  // Duplicate bank-relative fields.
  auto check_dup_fields = [&](const std::vector<const ParsedConst*>& fields,
                              const char* what) {
    for (std::size_t i = 0; i < fields.size(); ++i) {
      for (std::size_t j = i + 1; j < fields.size(); ++j) {
        if (fields[i]->value == fields[j]->value) {
          out.push_back({path, fields[j]->line, "reg-dup-offset",
                         std::string(what) + " field `" + fields[j]->name +
                             "` duplicates `" + fields[i]->name + "`"});
        }
      }
    }
  };
  check_dup_fields(dma_fields, "DMA bank");
  check_dup_fields(route_fields, "route-entry");

  // Cross-check against the kRegMap table.
  if (!h.has_table) {
    out.push_back({path, 1, "reg-table-mismatch",
                   "registers header declares no kRegMap table"});
    return;
  }
  auto key_of = [](const std::string& bank, u64 offset) {
    return bank + "@" + std::to_string(offset);
  };
  std::map<std::string, int> table_keys;  // key -> line
  for (const TableEntry& e : h.table) {
    if (!e.evaluated) {
      out.push_back({path, e.line, "reg-map-parse",
                     "kRegMap entry offset is unevaluable"});
      continue;
    }
    table_keys.emplace(key_of(e.bank, e.offset), e.line);
  }
  std::map<std::string, const ParsedConst*> const_keys;
  for (const ParsedConst& c : h.consts) {
    if (!c.evaluated) continue;
    if (c.cls == RegClass::kGlobal) {
      const_keys.emplace(key_of("kGlobal", c.value), &c);
    } else if (c.cls == RegClass::kDmaField) {
      const_keys.emplace(key_of("kDmaChannel", c.value), &c);
    } else if (c.cls == RegClass::kRouteField) {
      const_keys.emplace(key_of("kRouteEntry", c.value), &c);
    }
  }
  for (const auto& [key, c] : const_keys) {
    if (table_keys.find(key) == table_keys.end()) {
      out.push_back({path, c->line, "reg-table-mismatch",
                     "annotated register `" + c->name +
                         "` has no kRegMap entry"});
    }
  }
  for (const auto& [key, line] : table_keys) {
    if (const_keys.find(key) == const_keys.end()) {
      out.push_back({path, line, "reg-table-mismatch",
                     "kRegMap entry (" + key +
                         ") matches no annotated register constant"});
    }
  }
}

void check_magic_mmio(const std::string& path, const LexedFile& f,
                      std::vector<Finding>& out) {
  const std::vector<Tok>& toks = f.toks;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const std::string& name = toks[i].text;
    const bool is_reg_access =
        name == "write_register" || name == "read_register";
    const bool is_bank = name == "dma_bank";
    if (!is_reg_access && !is_bank) continue;
    if (toks[i + 1].text != "(") continue;
    const std::size_t lp = i + 1;
    const std::size_t rp = match_forward(toks, lp);
    if (rp >= toks.size()) continue;

    if (is_reg_access) {
      // Definitions/declarations start with a type name, calls with the
      // offset argument; only a literal first argument is banned.
      if (toks[lp + 1].kind == TokKind::kNumber) {
        out.push_back({path, toks[lp + 1].line, "reg-magic-mmio",
                       "MMIO register access via magic integer offset: use "
                       "the named peach2::regs:: constant"});
      }
    } else {
      // dma_bank(channel, field): the channel may be a literal, the field
      // must be a named constant.
      std::size_t second = 0;
      int depth = 0;
      for (std::size_t j = lp + 1; j < rp; ++j) {
        const std::string& s = toks[j].text;
        if (s == "(" || s == "{" || s == "[") ++depth;
        else if (s == ")" || s == "}" || s == "]") --depth;
        else if (s == "," && depth == 0) {
          second = j + 1;
          break;
        }
      }
      if (second != 0 && second < rp &&
          toks[second].kind == TokKind::kNumber) {
        out.push_back({path, toks[second].line, "reg-magic-mmio",
                       "dma_bank() called with a magic integer field "
                       "offset: use the kDmaBank* constant"});
      }
    }
  }
}

}  // namespace tca::lint::rules
