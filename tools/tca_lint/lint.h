// tca_lint — project-invariant static analysis for the TCA simulator.
//
// Three rule families over a light token stream (see lexer.h):
//
//  coroutine lifetime
//    coro-temporary-closure  capturing lambda coroutine invoked as a
//                            temporary: the closure dies at the end of the
//                            full-expression while the coroutine frame
//                            lives on (the PR 3 ASan bug class).
//    coro-ref-param          coroutine (or Task-returning function) taking
//                            a const-lvalue- or rvalue-reference parameter:
//                            both bind temporaries that die at the first
//                            suspension point. Take parameters by value.
//
//  determinism
//    det-wall-clock          wall-clock reads (system_clock, steady_clock,
//                            ...) outside bench/ — replay must depend only
//                            on simulated time.
//    det-raw-rand            rand()/random_device/std engines outside
//                            common/rng — all randomness flows through the
//                            seeded, cross-platform Rng.
//    det-unordered-iter      range-for over a container declared as
//                            std::unordered_{map,set,...}: iteration order
//                            is implementation-defined, so anything it
//                            feeds (trace, metrics, free lists) diverges
//                            across platforms.
//    det-shard-shared-state  mutable static in a shard-execution path
//                            (src/sim): epoch-mode workers run event bodies
//                            concurrently, so a static that is not
//                            const/std::atomic/thread_local both races and
//                            makes replay depend on thread interleaving.
//
//  register map (src/peach2/registers.h + MMIO call sites)
//    reg-magic-mmio          write_register/read_register/dma_bank called
//                            with a literal integer offset instead of a
//                            regs:: constant.
//    reg-misaligned          register offset not 8-byte aligned (all MMIO
//                            is 64-bit).
//    reg-dup-offset          two registers in the same bank namespace
//                            overlap.
//    reg-out-of-window       absolute offset outside [0, kWindowBytes).
//    reg-field-overflow      bank-relative field outside its bank stride.
//    reg-bank-overlap        absolute register falling inside the DMA
//                            channel-bank or route-table region.
//    reg-bad-alias           channel-0 alias that is not kDmaBankBase +
//                            <field>.
//    reg-table-mismatch      annotated register constant missing from
//                            kRegMap, or vice versa.
//    reg-map-parse           registers.h no longer parses (missing base
//                            constants, unevaluable annotated offset).
//
// Suppression: `// tca-lint: allow(rule-id): <justification>` on the same
// line as the finding or the line directly above. The justification is
// mandatory; a malformed or bare allow is itself a finding
// (lint-bad-suppression).
#pragma once

#include <string>
#include <vector>

#include "tca_lint/lexer.h"

namespace tca::lint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct Options {
  /// Project root: scans src/, tests/, tools/, examples/, bench/ (*.h,
  /// *.cpp), excluding lint fixtures, and analyzes src/peach2/registers.h.
  /// Path-scoped rule exemptions apply (bench/ may read the wall clock;
  /// common/rng may touch raw generators).
  std::string root;
  /// Explicit files to lint with *all* rules active (fixtures/tests).
  std::vector<std::string> files;
  /// Explicit register-map header to analyze (fixtures/tests).
  std::string registers_path;
};

/// Runs the configured lint; findings are sorted by (file, line, rule).
/// Suppressions have been applied.
std::vector<Finding> run_lint(const Options& opts);

/// All rule ids (for --list-rules and the self-tests).
std::vector<std::string> rule_ids();

namespace rules {

/// Symbol context shared across files within one run.
struct Context {
  /// Names declared anywhere in the run as unordered containers.
  std::vector<std::string> unordered_names;
};

/// Which path-scoped exemptions/scopes apply to a file.
struct FileScope {
  bool allow_wall_clock = false;   // bench/ measures real time
  bool allow_raw_rand = false;     // common/rng wraps the generator
  bool check_magic_mmio = true;    // driver/, peach2/, tests/ + fixtures
  bool check_shard_state = true;   // src/sim (shard-execution) + fixtures
};

void collect_unordered_names(const LexedFile& f, Context& ctx);

void check_coroutines(const std::string& path, const LexedFile& f,
                      std::vector<Finding>& out);
void check_determinism(const std::string& path, const LexedFile& f,
                       const Context& ctx, const FileScope& scope,
                       std::vector<Finding>& out);
void check_magic_mmio(const std::string& path, const LexedFile& f,
                      std::vector<Finding>& out);
void check_register_map(const std::string& path, const LexedFile& f,
                        std::vector<Finding>& out);

}  // namespace rules

}  // namespace tca::lint
