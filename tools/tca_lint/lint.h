// tca_lint — project-invariant static analysis for the TCA simulator.
//
// Four rule families over a light token stream (see lexer.h):
//
//  coroutine lifetime
//    coro-temporary-closure  capturing lambda coroutine invoked as a
//                            temporary: the closure dies at the end of the
//                            full-expression while the coroutine frame
//                            lives on (the PR 3 ASan bug class).
//    coro-ref-param          coroutine (or Task-returning function) taking
//                            a const-lvalue- or rvalue-reference parameter:
//                            both bind temporaries that die at the first
//                            suspension point. Take parameters by value.
//
//  determinism
//    det-wall-clock          wall-clock reads (system_clock, steady_clock,
//                            ...) outside bench/ — replay must depend only
//                            on simulated time.
//    det-raw-rand            rand()/random_device/std engines outside
//                            common/rng — all randomness flows through the
//                            seeded, cross-platform Rng.
//    det-unordered-iter      range-for over a container declared as
//                            std::unordered_{map,set,...}: iteration order
//                            is implementation-defined, so anything it
//                            feeds (trace, metrics, free lists) diverges
//                            across platforms.
//    det-shard-shared-state  mutable static in a shard-execution path
//                            (src/sim): epoch-mode workers run event bodies
//                            concurrently, so a static that is not
//                            const/std::atomic/thread_local both races and
//                            makes replay depend on thread interleaving.
//
//  register map (src/peach2/registers.h + MMIO call sites)
//    reg-magic-mmio          write_register/read_register/dma_bank called
//                            with a literal integer offset instead of a
//                            regs:: constant.
//    reg-misaligned          register offset not 8-byte aligned (all MMIO
//                            is 64-bit).
//    reg-dup-offset          two registers in the same bank namespace
//                            overlap.
//    reg-out-of-window       absolute offset outside [0, kWindowBytes).
//    reg-field-overflow      bank-relative field outside its bank stride.
//    reg-bank-overlap        absolute register falling inside the DMA
//                            channel-bank or route-table region.
//    reg-bad-alias           channel-0 alias that is not kDmaBankBase +
//                            <field>.
//    reg-table-mismatch      annotated register constant missing from
//                            kRegMap, or vice versa.
//    reg-map-parse           registers.h no longer parses (missing base
//                            constants, unevaluable annotated offset).
//
//  protocol lifecycle (flow-sensitive, over the CFGs of cfg.h; driven by
//  `// tca-protocol:` / `// tca-flags:` annotations — grammar in
//  rules_protocol.cpp and docs/ARCHITECTURE.md)
//    proto-leak              an acquired tag/credit/slot reaches the
//                            function exit without a release, abandon, or
//                            transfer on some (or every) path.
//    proto-double-release    a release reachable on a path where nothing is
//                            held.
//    proto-ack-before-commit PEARL ack emission (an `acks-on-commit`
//                            function) reachable before the commit edge of
//                            a `commit-point` function, or outside any
//                            acks-on-commit context at all — the PR 8
//                            ack-outruns-data-commit chaos bug, at lint
//                            time.
//    coro-borrow-across-suspend  a value borrowed from a `borrows(k)`
//                            function (arena frames, ...) used on a path
//                            that crossed a co_await suspension edge.
//    coll-flag-overlap       `tca-flags:` region declarations (the per-
//                            collective doorbell flag-word partitions) that
//                            overlap or exceed the declared total for some
//                            parameter assignment.
//    proto-bad-annotation    a tca-protocol/tca-flags annotation that does
//                            not parse or attaches to nothing — deleting
//                            annotated code without its annotation is
//                            itself a gate failure.
//
// Suppression: `// tca-lint: allow(rule-id): <justification>` on the same
// line as the finding or the line directly above. The justification is
// mandatory; a malformed or bare allow is itself a finding
// (lint-bad-suppression).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "tca_lint/lexer.h"

namespace tca::lint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct Options {
  /// Project root: scans src/, tests/, tools/, examples/, bench/ (*.h,
  /// *.cpp), excluding lint fixtures, and analyzes src/peach2/registers.h.
  /// Path-scoped rule exemptions apply (bench/ may read the wall clock;
  /// common/rng may touch raw generators).
  std::string root;
  /// Explicit files to lint with *all* rules active (fixtures/tests).
  std::vector<std::string> files;
  /// Explicit register-map header to analyze (fixtures/tests).
  std::string registers_path;
  /// When non-empty, per-file lex/finding results are cached here keyed by
  /// content hash, so repeated repo-wide runs skip unchanged files.
  std::string cache_dir;
};

/// Runs the configured lint; findings are sorted by (file, line, rule).
/// Suppressions have been applied.
std::vector<Finding> run_lint(const Options& opts);

/// All rule ids (for --list-rules and the self-tests).
std::vector<std::string> rule_ids();

namespace rules {

/// Call-site effects of a protocol-annotated function, registered by the
/// last `::` component of its name. `owns` and `commit-point` are NOT here:
/// they attach locally at the definition so that same-named methods on
/// different classes (RootComplex::on_tlp vs Peach2Chip::on_tlp) do not
/// inherit each other's obligations.
struct ProtoEffects {
  std::vector<std::string> acquires;  ///< calling yields one of each kind
  std::vector<std::string> releases;  ///< calling discharges one of each
  std::vector<std::string> abandons;  ///< discharges without completing
  std::vector<std::string> borrows;   ///< result borrows from this pool
  bool acks_on_commit = false;        ///< this call IS the PEARL ack
};

/// Symbol context shared across files within one run.
struct Context {
  /// Names declared anywhere in the run as unordered containers.
  std::vector<std::string> unordered_names;
  /// Protocol registry: last name component -> annotated call effects.
  std::map<std::string, ProtoEffects> protocol;
};

/// Which path-scoped exemptions/scopes apply to a file.
struct FileScope {
  bool allow_wall_clock = false;   // bench/ measures real time
  bool allow_raw_rand = false;     // common/rng wraps the generator
  bool check_magic_mmio = true;    // driver/, peach2/, tests/ + fixtures
  bool check_shard_state = true;   // src/sim (shard-execution) + fixtures
  bool check_protocol = true;      // src/ (annotated subsystems) + fixtures
};

void collect_unordered_names(const LexedFile& f, Context& ctx);
void collect_protocol_annotations(const LexedFile& f, Context& ctx);

void check_coroutines(const std::string& path, const LexedFile& f,
                      std::vector<Finding>& out);
void check_determinism(const std::string& path, const LexedFile& f,
                       const Context& ctx, const FileScope& scope,
                       std::vector<Finding>& out);
void check_magic_mmio(const std::string& path, const LexedFile& f,
                      std::vector<Finding>& out);
void check_register_map(const std::string& path, const LexedFile& f,
                        std::vector<Finding>& out);
void check_protocol(const std::string& path, const LexedFile& f,
                    const Context& ctx, std::vector<Finding>& out);

}  // namespace rules

}  // namespace tca::lint
