// tca_lint CLI.
//
//   tca_lint --root .                     lint the whole project
//   tca_lint file.cpp [file2.cpp ...]     lint explicit files (all rules)
//   tca_lint --registers path/to/regs.h   analyze a register map header
//   tca_lint --list-rules                 print the rule catalogue
//
// Exit codes: 0 clean, 1 findings, 2 usage error.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "tca_lint/lint.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: tca_lint [--root DIR] [--registers FILE] [--quiet] "
               "[--list-rules] [files...]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  tca::lint::Options opts;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (++i >= argc) return usage();
      opts.root = argv[i];
    } else if (arg == "--registers") {
      if (++i >= argc) return usage();
      opts.registers_path = argv[i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--list-rules") {
      for (const std::string& r : tca::lint::rule_ids()) {
        std::printf("%s\n", r.c_str());
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      opts.files.push_back(arg);
    }
  }
  if (opts.root.empty() && opts.files.empty() &&
      opts.registers_path.empty()) {
    return usage();
  }

  const std::vector<tca::lint::Finding> findings = tca::lint::run_lint(opts);
  if (!quiet) {
    for (const auto& f : findings) {
      std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                  f.rule.c_str(), f.message.c_str());
    }
    std::fprintf(stderr, "tca_lint: %zu finding(s)\n", findings.size());
  }
  return findings.empty() ? 0 : 1;
}
