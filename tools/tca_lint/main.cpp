// tca_lint CLI.
//
//   tca_lint --root .                     lint the whole project
//   tca_lint file.cpp [file2.cpp ...]     lint explicit files (all rules)
//   tca_lint --registers path/to/regs.h   analyze a register map header
//   tca_lint --cache-dir DIR              reuse per-file results by content
//                                         hash (warm runs lex nothing)
//   tca_lint --sarif out.sarif            also write SARIF 2.1.0 for code
//                                         scanning upload
//   tca_lint --list-rules                 print the rule catalogue
//
// Exit codes: 0 clean, 1 findings, 2 usage error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "tca_lint/lint.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: tca_lint [--root DIR] [--registers FILE] "
               "[--cache-dir DIR] [--sarif FILE] [--quiet] [--list-rules] "
               "[files...]\n");
  return 2;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Minimal SARIF 2.1.0: one run, the rule catalogue, one result per
/// finding. Enough for GitHub code scanning to annotate PR diffs.
bool write_sarif(const std::string& path,
                 const std::vector<tca::lint::Finding>& findings) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "{\n"
      << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [{\n"
      << "    \"tool\": {\"driver\": {\"name\": \"tca_lint\", "
         "\"rules\": [";
  bool first = true;
  for (const std::string& r : tca::lint::rule_ids()) {
    if (!first) out << ", ";
    first = false;
    out << "{\"id\": \"" << json_escape(r) << "\"}";
  }
  out << "]}},\n"
      << "    \"results\": [";
  first = true;
  for (const auto& f : findings) {
    if (!first) out << ",";
    first = false;
    out << "\n      {\"ruleId\": \"" << json_escape(f.rule)
        << "\", \"level\": \"error\", \"message\": {\"text\": \""
        << json_escape(f.message)
        << "\"}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \""
        << json_escape(f.file) << "\"}, \"region\": {\"startLine\": "
        << (f.line > 0 ? f.line : 1) << "}}}]}";
  }
  out << "\n    ]\n  }]\n}\n";
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  tca::lint::Options opts;
  bool quiet = false;
  std::string sarif_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (++i >= argc) return usage();
      opts.root = argv[i];
    } else if (arg == "--registers") {
      if (++i >= argc) return usage();
      opts.registers_path = argv[i];
    } else if (arg == "--cache-dir") {
      if (++i >= argc) return usage();
      opts.cache_dir = argv[i];
    } else if (arg == "--sarif") {
      if (++i >= argc) return usage();
      sarif_path = argv[i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--list-rules") {
      for (const std::string& r : tca::lint::rule_ids()) {
        std::printf("%s\n", r.c_str());
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      opts.files.push_back(arg);
    }
  }
  if (opts.root.empty() && opts.files.empty() &&
      opts.registers_path.empty()) {
    return usage();
  }

  const std::vector<tca::lint::Finding> findings = tca::lint::run_lint(opts);
  if (!quiet) {
    for (const auto& f : findings) {
      std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                  f.rule.c_str(), f.message.c_str());
    }
    std::fprintf(stderr, "tca_lint: %zu finding(s)\n", findings.size());
  }
  if (!sarif_path.empty() && !write_sarif(sarif_path, findings)) {
    std::fprintf(stderr, "tca_lint: cannot write SARIF to %s\n",
                 sarif_path.c_str());
    return 2;
  }
  return findings.empty() ? 0 : 1;
}
