// Determinism rules.
//
// The paper-figure arithmetic (Figs. 7-9, 12) must replay bit-identically:
// one seeded Rng, simulated time only, and no iteration order that the
// standard library is free to change between platforms. All banned names
// below are matched as whole identifiers; mentions inside comments or
// string literals never trigger (the lexer drops both).
#include <algorithm>
#include <string>
#include <vector>

#include "tca_lint/lint.h"

namespace tca::lint::rules {

namespace {

const char* const kWallClock[] = {
    "system_clock",     "steady_clock",  "high_resolution_clock",
    "gettimeofday",     "clock_gettime", "timespec_get",
    "utc_clock",        "file_clock",
};

const char* const kRawRand[] = {
    "rand",          "srand",        "rand_r",
    "random_device", "mt19937",      "mt19937_64",
    "minstd_rand",   "minstd_rand0", "default_random_engine",
    "ranlux24",      "ranlux48",     "knuth_b",
};

const char* const kUnorderedContainers[] = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset",
};

bool in_list(const std::string& s, const char* const* list, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (s == list[i]) return true;
  }
  return false;
}

template <std::size_t N>
bool in_list(const std::string& s, const char* const (&list)[N]) {
  return in_list(s, list, N);
}

}  // namespace

void collect_unordered_names(const LexedFile& f, Context& ctx) {
  const std::vector<Tok>& toks = f.toks;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent ||
        !in_list(toks[i].text, kUnorderedContainers)) {
      continue;
    }
    // std::unordered_map<K, V> name ...  — record `name`.
    const std::size_t after = skip_angles(toks, i + 1);
    if (after == i + 1) continue;  // no template args: a using-decl etc.
    if (after < toks.size() && toks[after].kind == TokKind::kIdent) {
      const std::string& name = toks[after].text;
      if (std::find(ctx.unordered_names.begin(), ctx.unordered_names.end(),
                    name) == ctx.unordered_names.end()) {
        ctx.unordered_names.push_back(name);
      }
    }
  }
}

namespace {

/// det-shard-shared-state: a mutable `static` in a shard-execution path.
/// Shard workers run event bodies concurrently in epoch mode, so any static
/// that is not const/constexpr, std::atomic, or thread_local is both a data
/// race and a replay hazard (its value depends on thread interleaving).
/// Token heuristic: scan the declaration from `static` to the first
/// top-level `;`, `=`, `{` or `(`; a `(` first means a function declaration
/// (never state), and any const/constexpr/atomic/thread_local/mutex token
/// means the state is immutable, synchronized, or per-thread.
void check_shard_statics(const std::string& path, const LexedFile& f,
                         std::vector<Finding>& out) {
  const std::vector<Tok>& toks = f.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || toks[i].text != "static") continue;
    // `thread_local static` / `const static` spellings: look one token back.
    if (i > 0 && toks[i - 1].kind == TokKind::kIdent &&
        (toks[i - 1].text == "thread_local" || toks[i - 1].text == "const" ||
         toks[i - 1].text == "constexpr")) {
      continue;
    }
    bool safe = false;
    bool is_function = false;
    std::string name;
    std::size_t j = i + 1;
    for (; j < toks.size(); ++j) {
      const Tok& u = toks[j];
      if (u.kind == TokKind::kIdent) {
        if (u.text == "const" || u.text == "constexpr" ||
            u.text == "consteval" || u.text == "atomic" ||
            u.text == "atomic_flag" || u.text == "thread_local" ||
            u.text == "mutex" || u.text == "once_flag") {
          safe = true;
          break;
        }
        name = u.text;
        continue;
      }
      if (u.kind != TokKind::kPunct) continue;
      if (u.text == "(") {
        is_function = true;  // also skips paren-init statics (rare here)
        break;
      }
      if (u.text == ";" || u.text == "=" || u.text == "{") break;
    }
    if (safe || is_function || name.empty()) continue;
    out.push_back(
        {path, toks[i].line, "det-shard-shared-state",
         "mutable static `" + name +
             "` in a shard-execution path: epoch-mode workers execute "
             "events concurrently, so unsynchronized statics race and make "
             "replay depend on thread interleaving — use std::atomic, "
             "thread_local, const, or per-shard state"});
    i = j;
  }
}

}  // namespace

void check_determinism(const std::string& path, const LexedFile& f,
                       const Context& ctx, const FileScope& scope,
                       std::vector<Finding>& out) {
  if (scope.check_shard_state) check_shard_statics(path, f, out);
  const std::vector<Tok>& toks = f.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Tok& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;

    if (!scope.allow_wall_clock && in_list(t.text, kWallClock)) {
      out.push_back({path, t.line, "det-wall-clock",
                     "wall-clock source `" + t.text +
                         "`: simulation logic must depend only on "
                         "Scheduler::now() so replay is bit-identical"});
      continue;
    }
    if (!scope.allow_raw_rand && in_list(t.text, kRawRand)) {
      out.push_back({path, t.line, "det-raw-rand",
                     "raw random source `" + t.text +
                         "`: draw from the seeded tca::Rng (common/rng) "
                         "instead"});
      continue;
    }

    // Range-for over an unordered container.
    if (t.text != "for") continue;
    if (i + 1 >= toks.size() || toks[i + 1].text != "(") continue;
    const std::size_t lp = i + 1;
    const std::size_t rp = match_forward(toks, lp);
    if (rp >= toks.size()) continue;
    // Classic for-loops contain a top-level `;`; range-fors a top-level `:`.
    std::size_t colon = 0;
    bool classic = false;
    int paren = 0, brace = 0, bracket = 0;
    for (std::size_t j = lp + 1; j < rp; ++j) {
      const Tok& u = toks[j];
      if (u.kind != TokKind::kPunct) continue;
      if (u.text == "(") ++paren;
      else if (u.text == ")") --paren;
      else if (u.text == "{") ++brace;
      else if (u.text == "}") --brace;
      else if (u.text == "[") ++bracket;
      else if (u.text == "]") --bracket;
      else if (paren == 0 && brace == 0 && bracket == 0) {
        if (u.text == ";") {
          classic = true;
          break;
        }
        if (u.text == ":" && colon == 0) colon = j;
      }
    }
    if (classic || colon == 0) continue;
    // The range expression's last identifier names the container for the
    // member / plain-variable spellings used in this codebase.
    std::string range_name;
    for (std::size_t j = colon + 1; j < rp; ++j) {
      if (toks[j].kind == TokKind::kIdent) range_name = toks[j].text;
    }
    if (!range_name.empty() &&
        std::find(ctx.unordered_names.begin(), ctx.unordered_names.end(),
                  range_name) != ctx.unordered_names.end()) {
      out.push_back(
          {path, t.line, "det-unordered-iter",
           "iteration over unordered container `" + range_name +
               "`: order is implementation-defined and anything it feeds "
               "(trace, metrics, free lists) diverges across platforms — "
               "use std::map / a sorted copy / an index loop"});
    }
  }
}

}  // namespace tca::lint::rules
