#include "tca_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

namespace tca::lint {

namespace fs = std::filesystem;

namespace {

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool path_contains(const std::string& path, const std::string& needle) {
  return path.find(needle) != std::string::npos;
}

/// A parsed `tca-lint: allow(rule[, rule...]): justification` directive.
struct Allow {
  std::vector<std::string> allowed_rules;
  bool well_formed = false;
};

Allow parse_allow(const std::string& comment) {
  Allow a;
  const std::size_t at = comment.find("tca-lint:");
  if (at == std::string::npos) return a;
  std::size_t p = comment.find("allow", at);
  if (p == std::string::npos) return a;
  p = comment.find('(', p);
  const std::size_t close = comment.find(')', p == std::string::npos ? 0 : p);
  if (p == std::string::npos || close == std::string::npos) return a;
  // Rule list.
  std::string name;
  for (std::size_t i = p + 1; i <= close; ++i) {
    const char c = comment[i];
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
        c == '_') {
      name += c;
    } else if (!name.empty()) {
      a.allowed_rules.push_back(name);
      name.clear();
    }
  }
  if (a.allowed_rules.empty()) return a;
  // Mandatory justification: `): <non-empty text>`.
  std::size_t j = close + 1;
  if (j >= comment.size() || comment[j] != ':') return a;
  ++j;
  while (j < comment.size() &&
         std::isspace(static_cast<unsigned char>(comment[j]))) {
    ++j;
  }
  if (j >= comment.size()) return a;
  a.well_formed = true;
  return a;
}

/// Applies the suppression mechanism: drops findings covered by a
/// well-formed allow on the same or preceding line, and reports malformed
/// allow directives.
void apply_suppressions(const std::string& path, const LexedFile& f,
                        std::vector<Finding>* findings) {
  std::map<int, Allow> allows;
  for (const auto& [line, text] : f.comments) {
    if (text.find("tca-lint:") == std::string::npos) continue;
    Allow a = parse_allow(text);
    if (a.allowed_rules.empty() && !a.well_formed) {
      // A tca-lint marker with no parsable allow(...) clause.
      findings->push_back({path, line, "lint-bad-suppression",
                           "unparsable tca-lint directive (expected "
                           "`tca-lint: allow(rule): justification`)"});
      continue;
    }
    if (!a.well_formed) {
      findings->push_back({path, line, "lint-bad-suppression",
                           "tca-lint allow without a justification — "
                           "`allow(rule): why it is safe` is mandatory"});
      continue;
    }
    allows.emplace(line, std::move(a));
  }
  auto covered = [&allows](const Finding& fi) {
    for (int line : {fi.line, fi.line - 1}) {
      auto it = allows.find(line);
      if (it == allows.end()) continue;
      const auto& rules = it->second.allowed_rules;
      if (std::find(rules.begin(), rules.end(), fi.rule) != rules.end()) {
        return true;
      }
    }
    return false;
  };
  findings->erase(
      std::remove_if(findings->begin(), findings->end(),
                     [&](const Finding& fi) {
                       return fi.rule != "lint-bad-suppression" &&
                              covered(fi);
                     }),
      findings->end());
}

struct FileEntry {
  std::string path;
  LexedFile lexed;
  rules::FileScope scope;
  bool is_registers = false;
};

}  // namespace

std::vector<std::string> rule_ids() {
  return {
      "coro-temporary-closure", "coro-ref-param",     "det-wall-clock",
      "det-raw-rand",           "det-unordered-iter",
      "det-shard-shared-state", "reg-magic-mmio",
      "reg-misaligned",         "reg-dup-offset",     "reg-out-of-window",
      "reg-field-overflow",     "reg-bank-overlap",   "reg-bad-alias",
      "reg-table-mismatch",     "reg-map-parse",      "lint-bad-suppression",
  };
}

std::vector<Finding> run_lint(const Options& opts) {
  std::vector<FileEntry> files;

  auto add_file = [&files](const std::string& path,
                           const rules::FileScope& scope, bool is_regs) {
    std::string text;
    if (!read_file(path, &text)) return false;
    files.push_back({path, lex(text), scope, is_regs});
    return true;
  };

  std::vector<Finding> out;

  if (!opts.root.empty()) {
    const fs::path root(opts.root);
    std::vector<std::string> paths;
    for (const char* dir :
         {"src", "tests", "tools", "examples", "bench"}) {
      const fs::path sub = root / dir;
      if (!fs::exists(sub)) continue;
      for (const auto& ent : fs::recursive_directory_iterator(sub)) {
        if (!ent.is_regular_file()) continue;
        const std::string ext = ent.path().extension().string();
        if (ext != ".h" && ext != ".cpp" && ext != ".hpp") continue;
        std::string p = ent.path().generic_string();
        if (path_contains(p, "lint/fixtures/")) continue;  // seeded bugs
        paths.push_back(std::move(p));
      }
    }
    std::sort(paths.begin(), paths.end());
    for (const std::string& p : paths) {
      rules::FileScope scope;
      scope.allow_wall_clock = path_contains(p, "bench/");
      scope.allow_raw_rand = path_contains(p, "common/rng");
      scope.check_magic_mmio = path_contains(p, "src/driver/") ||
                               path_contains(p, "src/peach2/") ||
                               path_contains(p, "tests/");
      scope.check_shard_state = path_contains(p, "src/sim/");
      add_file(p, scope, path_contains(p, "peach2/registers.h"));
    }
  }

  for (const std::string& p : opts.files) {
    rules::FileScope scope;  // explicit files: every rule active
    if (!add_file(p, scope, false)) {
      out.push_back({p, 0, "reg-map-parse", "cannot read file"});
    }
  }
  if (!opts.registers_path.empty()) {
    if (!add_file(opts.registers_path, rules::FileScope{}, true)) {
      out.push_back(
          {opts.registers_path, 0, "reg-map-parse", "cannot read file"});
    }
  }

  rules::Context ctx;
  for (const FileEntry& fe : files) {
    rules::collect_unordered_names(fe.lexed, ctx);
  }

  for (const FileEntry& fe : files) {
    std::vector<Finding> file_findings;
    rules::check_coroutines(fe.path, fe.lexed, file_findings);
    rules::check_determinism(fe.path, fe.lexed, ctx, fe.scope,
                             file_findings);
    if (fe.scope.check_magic_mmio) {
      rules::check_magic_mmio(fe.path, fe.lexed, file_findings);
    }
    if (fe.is_registers) {
      rules::check_register_map(fe.path, fe.lexed, file_findings);
    }
    apply_suppressions(fe.path, fe.lexed, &file_findings);
    out.insert(out.end(), file_findings.begin(), file_findings.end());
  }

  std::sort(out.begin(), out.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return out;
}

}  // namespace tca::lint
