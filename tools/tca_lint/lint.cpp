#include "tca_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace tca::lint {

namespace fs = std::filesystem;

namespace {

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool path_contains(const std::string& path, const std::string& needle) {
  return path.find(needle) != std::string::npos;
}

/// A parsed `tca-lint: allow(rule[, rule...]): justification` directive.
struct Allow {
  std::vector<std::string> allowed_rules;
  bool well_formed = false;
};

Allow parse_allow(const std::string& comment) {
  Allow a;
  const std::size_t at = comment.find("tca-lint:");
  if (at == std::string::npos) return a;
  std::size_t p = comment.find("allow", at);
  if (p == std::string::npos) return a;
  p = comment.find('(', p);
  const std::size_t close = comment.find(')', p == std::string::npos ? 0 : p);
  if (p == std::string::npos || close == std::string::npos) return a;
  // Rule list.
  std::string name;
  for (std::size_t i = p + 1; i <= close; ++i) {
    const char c = comment[i];
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
        c == '_') {
      name += c;
    } else if (!name.empty()) {
      a.allowed_rules.push_back(name);
      name.clear();
    }
  }
  if (a.allowed_rules.empty()) return a;
  // Mandatory justification: `): <non-empty text>`.
  std::size_t j = close + 1;
  if (j >= comment.size() || comment[j] != ':') return a;
  ++j;
  while (j < comment.size() &&
         std::isspace(static_cast<unsigned char>(comment[j]))) {
    ++j;
  }
  if (j >= comment.size()) return a;
  a.well_formed = true;
  return a;
}

/// Applies the suppression mechanism: drops findings covered by a
/// well-formed allow on the same or preceding line, and reports malformed
/// allow directives.
void apply_suppressions(const std::string& path, const LexedFile& f,
                        std::vector<Finding>* findings) {
  std::map<int, Allow> allows;
  for (const auto& [line, text] : f.comments) {
    if (text.find("tca-lint:") == std::string::npos) continue;
    Allow a = parse_allow(text);
    if (a.allowed_rules.empty() && !a.well_formed) {
      // A tca-lint marker with no parsable allow(...) clause.
      findings->push_back({path, line, "lint-bad-suppression",
                           "unparsable tca-lint directive (expected "
                           "`tca-lint: allow(rule): justification`)"});
      continue;
    }
    if (!a.well_formed) {
      findings->push_back({path, line, "lint-bad-suppression",
                           "tca-lint allow without a justification — "
                           "`allow(rule): why it is safe` is mandatory"});
      continue;
    }
    allows.emplace(line, std::move(a));
  }
  auto covered = [&allows](const Finding& fi) {
    for (int line : {fi.line, fi.line - 1}) {
      auto it = allows.find(line);
      if (it == allows.end()) continue;
      const auto& rules = it->second.allowed_rules;
      if (std::find(rules.begin(), rules.end(), fi.rule) != rules.end()) {
        return true;
      }
    }
    return false;
  };
  findings->erase(
      std::remove_if(findings->begin(), findings->end(),
                     [&](const Finding& fi) {
                       return fi.rule != "lint-bad-suppression" &&
                              covered(fi);
                     }),
      findings->end());
}

// ---------------------------------------------------------------------------
// Content-hash result cache (Options::cache_dir).
//
// Two validity levels per file:
//  * contributions (unordered-container names, protocol registry entries)
//    depend only on the file's own content — valid whenever the content
//    hash matches;
//  * findings additionally depend on every *other* file's contributions, so
//    they carry the run's context hash and go stale when any annotated
//    declaration anywhere changes.
// A warm run with no edits lexes nothing at all.

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(const std::string& s, std::uint64_t h = kFnvOffset) {
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = kDigits[v & 0xf];
    v >>= 4;
  }
  return s;
}

std::string join(const std::vector<std::string>& v) {
  std::string s;
  for (const std::string& e : v) {
    if (!s.empty()) s += ';';
    s += e;
  }
  return s;
}

std::vector<std::string> split(const std::string& s) {
  std::vector<std::string> v;
  std::string cur;
  for (char c : s) {
    if (c == ';') {
      if (!cur.empty()) v.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) v.push_back(cur);
  return v;
}

struct FileEntry {
  std::string path;
  std::string text;
  LexedFile lexed;
  bool is_lexed = false;
  rules::FileScope scope;
  bool is_registers = false;
  std::uint64_t key = 0;  ///< content + scope + rule-set hash
  std::string cache_path;
  // Cached state (when valid).
  bool contrib_cached = false;
  bool findings_cached = false;  ///< requires the ctx hash to match too
  std::vector<std::string> cached_unordered;
  std::map<std::string, rules::ProtoEffects> cached_proto;
  std::vector<Finding> cached_findings;
};

const LexedFile& ensure_lexed(FileEntry& fe) {
  if (!fe.is_lexed) {
    fe.lexed = lex(fe.text);
    fe.is_lexed = true;
  }
  return fe.lexed;
}

std::uint64_t scope_bits(const rules::FileScope& s, bool is_registers) {
  return (s.allow_wall_clock ? 1u : 0u) | (s.allow_raw_rand ? 2u : 0u) |
         (s.check_magic_mmio ? 4u : 0u) | (s.check_shard_state ? 8u : 0u) |
         (s.check_protocol ? 16u : 0u) | (is_registers ? 32u : 0u);
}

/// Loads a cache entry for `fe`; fills cached_* on content match.
void load_cache_entry(FileEntry& fe, bool check_ctx,
                      std::uint64_t ctx_hash) {
  std::ifstream in(fe.cache_path);
  if (!in) return;
  std::string line;
  if (!std::getline(in, line) || line != "tca-lint-cache v1") return;
  if (!std::getline(in, line) || line.rfind("key ", 0) != 0 ||
      line.substr(4) != hex64(fe.key)) {
    return;
  }
  std::vector<std::string> unordered;
  std::map<std::string, rules::ProtoEffects> proto;
  std::vector<Finding> findings;
  bool ctx_ok = false;
  while (std::getline(in, line)) {
    if (line.rfind("unordered ", 0) == 0) {
      unordered.push_back(line.substr(10));
    } else if (line.rfind("proto ", 0) == 0) {
      std::vector<std::string> cols;
      std::string cur;
      for (std::size_t i = 6; i <= line.size(); ++i) {
        if (i == line.size() || line[i] == '\t') {
          cols.push_back(cur);
          cur.clear();
        } else {
          cur += line[i];
        }
      }
      if (cols.size() != 6) return;  // corrupt: drop the whole entry
      rules::ProtoEffects eff;
      eff.acquires = split(cols[1]);
      eff.releases = split(cols[2]);
      eff.abandons = split(cols[3]);
      eff.borrows = split(cols[4]);
      eff.acks_on_commit = cols[5] == "1";
      proto[cols[0]] = std::move(eff);
    } else if (line.rfind("ctx ", 0) == 0) {
      ctx_ok = check_ctx && line.substr(4) == hex64(ctx_hash);
    } else if (line.rfind("finding ", 0) == 0) {
      std::vector<std::string> cols;
      std::string cur;
      for (std::size_t i = 8; i <= line.size(); ++i) {
        if (i == line.size() || line[i] == '\t') {
          cols.push_back(cur);
          cur.clear();
        } else {
          cur += line[i];
        }
      }
      if (cols.size() != 3) return;
      findings.push_back(
          {fe.path, std::atoi(cols[0].c_str()), cols[1], cols[2]});
    } else {
      return;  // unknown record: treat as corrupt
    }
  }
  fe.contrib_cached = true;
  fe.cached_unordered = std::move(unordered);
  fe.cached_proto = std::move(proto);
  if (ctx_ok) {
    fe.findings_cached = true;
    fe.cached_findings = std::move(findings);
  }
}

void store_cache_entry(const FileEntry& fe, std::uint64_t ctx_hash,
                       const std::vector<Finding>& findings) {
  std::ofstream outf(fe.cache_path, std::ios::trunc);
  if (!outf) return;
  outf << "tca-lint-cache v1\n";
  outf << "key " << hex64(fe.key) << "\n";
  for (const std::string& n : fe.cached_unordered) {
    outf << "unordered " << n << "\n";
  }
  for (const auto& [name, eff] : fe.cached_proto) {
    outf << "proto " << name << "\t" << join(eff.acquires) << "\t"
         << join(eff.releases) << "\t" << join(eff.abandons) << "\t"
         << join(eff.borrows) << "\t" << (eff.acks_on_commit ? 1 : 0)
         << "\n";
  }
  outf << "ctx " << hex64(ctx_hash) << "\n";
  for (const Finding& fi : findings) {
    outf << "finding " << fi.line << "\t" << fi.rule << "\t" << fi.message
         << "\n";
  }
}

}  // namespace

std::vector<std::string> rule_ids() {
  return {
      "coro-temporary-closure",
      "coro-ref-param",
      "coro-borrow-across-suspend",
      "det-wall-clock",
      "det-raw-rand",
      "det-unordered-iter",
      "det-shard-shared-state",
      "reg-magic-mmio",
      "reg-misaligned",
      "reg-dup-offset",
      "reg-out-of-window",
      "reg-field-overflow",
      "reg-bank-overlap",
      "reg-bad-alias",
      "reg-table-mismatch",
      "reg-map-parse",
      "proto-leak",
      "proto-double-release",
      "proto-ack-before-commit",
      "proto-bad-annotation",
      "coll-flag-overlap",
      "lint-bad-suppression",
  };
}

std::vector<Finding> run_lint(const Options& opts) {
  std::vector<FileEntry> files;
  std::vector<Finding> out;

  auto add_file = [&files](const std::string& path,
                           const rules::FileScope& scope, bool is_regs) {
    FileEntry fe;
    fe.path = path;
    if (!read_file(path, &fe.text)) return false;
    fe.scope = scope;
    fe.is_registers = is_regs;
    files.push_back(std::move(fe));
    return true;
  };

  if (!opts.root.empty()) {
    const fs::path root(opts.root);
    std::vector<std::string> paths;
    for (const char* dir :
         {"src", "tests", "tools", "examples", "bench"}) {
      const fs::path sub = root / dir;
      if (!fs::exists(sub)) continue;
      for (const auto& ent : fs::recursive_directory_iterator(sub)) {
        if (!ent.is_regular_file()) continue;
        const std::string ext = ent.path().extension().string();
        if (ext != ".h" && ext != ".cpp" && ext != ".hpp") continue;
        std::string p = ent.path().generic_string();
        if (path_contains(p, "lint/fixtures/")) continue;  // seeded bugs
        paths.push_back(std::move(p));
      }
    }
    std::sort(paths.begin(), paths.end());
    for (const std::string& p : paths) {
      rules::FileScope scope;
      scope.allow_wall_clock = path_contains(p, "bench/");
      scope.allow_raw_rand = path_contains(p, "common/rng");
      scope.check_magic_mmio = path_contains(p, "src/driver/") ||
                               path_contains(p, "src/peach2/") ||
                               path_contains(p, "tests/");
      scope.check_shard_state = path_contains(p, "src/sim/");
      // Protocol annotations live in src/; tests construct protocol
      // messages legitimately and tools/ documents the grammar, so neither
      // registers effects nor gets lifecycle-checked.
      scope.check_protocol = path_contains(p, "src/");
      add_file(p, scope, path_contains(p, "peach2/registers.h"));
    }
  }

  for (const std::string& p : opts.files) {
    rules::FileScope scope;  // explicit files: every rule active
    if (!add_file(p, scope, false)) {
      out.push_back({p, 0, "reg-map-parse", "cannot read file"});
    }
  }
  if (!opts.registers_path.empty()) {
    if (!add_file(opts.registers_path, rules::FileScope{}, true)) {
      out.push_back(
          {opts.registers_path, 0, "reg-map-parse", "cannot read file"});
    }
  }

  // -- Cache lookup (contribution level). The key folds in the rule set so
  // new rules invalidate stale entries wholesale.
  const bool use_cache = !opts.cache_dir.empty();
  if (use_cache) {
    std::error_code ec;
    fs::create_directories(opts.cache_dir, ec);
  }
  const std::uint64_t rules_hash = fnv1a(join(rule_ids()));
  for (FileEntry& fe : files) {
    fe.key = fnv1a(fe.text,
                   fnv1a(fe.path, rules_hash ^ scope_bits(fe.scope,
                                                          fe.is_registers)));
    if (use_cache) {
      fe.cache_path =
          (fs::path(opts.cache_dir) / (hex64(fnv1a(fe.path)) + ".lintcache"))
              .string();
      load_cache_entry(fe, /*check_ctx=*/false, 0);
    }
  }

  // -- Contributions: from cache when content matched, else computed.
  for (FileEntry& fe : files) {
    if (fe.contrib_cached) continue;
    rules::Context local;
    rules::collect_unordered_names(ensure_lexed(fe), local);
    if (fe.scope.check_protocol) {
      rules::collect_protocol_annotations(fe.lexed, local);
    }
    fe.cached_unordered = std::move(local.unordered_names);
    fe.cached_proto = std::move(local.protocol);
  }

  // -- Merge into the run context (sorted path order keeps it stable) and
  // hash it for the finding-level cache validity check.
  rules::Context ctx;
  {
    std::set<std::string> unordered;
    for (const FileEntry& fe : files) {
      unordered.insert(fe.cached_unordered.begin(),
                       fe.cached_unordered.end());
      for (const auto& [name, eff] : fe.cached_proto) {
        rules::ProtoEffects& merged = ctx.protocol[name];
        auto add = [](std::vector<std::string>& v,
                      const std::vector<std::string>& from) {
          for (const std::string& k : from) {
            if (std::find(v.begin(), v.end(), k) == v.end()) v.push_back(k);
          }
        };
        add(merged.acquires, eff.acquires);
        add(merged.releases, eff.releases);
        add(merged.abandons, eff.abandons);
        add(merged.borrows, eff.borrows);
        merged.acks_on_commit |= eff.acks_on_commit;
      }
    }
    ctx.unordered_names.assign(unordered.begin(), unordered.end());
  }
  std::uint64_t ctx_hash = kFnvOffset;
  {
    std::string blob = join(ctx.unordered_names);
    for (const auto& [name, eff] : ctx.protocol) {
      blob += '\n';
      blob += name + '\t' + join(eff.acquires) + '\t' + join(eff.releases) +
              '\t' + join(eff.abandons) + '\t' + join(eff.borrows) + '\t' +
              (eff.acks_on_commit ? '1' : '0');
    }
    // Kinds are sorted inside join inputs by construction order; sort the
    // vectors first so merge order cannot perturb the hash.
    ctx_hash = fnv1a(blob);
  }

  // -- Findings: cached when both content and context match.
  for (FileEntry& fe : files) {
    if (use_cache && fe.contrib_cached && !fe.findings_cached) {
      // Re-read the entry now that the context hash is known.
      fe.cached_findings.clear();
      load_cache_entry(fe, /*check_ctx=*/true, ctx_hash);
    }
    if (fe.findings_cached) {
      out.insert(out.end(), fe.cached_findings.begin(),
                 fe.cached_findings.end());
      continue;
    }
    const LexedFile& lf = ensure_lexed(fe);
    std::vector<Finding> file_findings;
    rules::check_coroutines(fe.path, lf, file_findings);
    rules::check_determinism(fe.path, lf, ctx, fe.scope, file_findings);
    if (fe.scope.check_magic_mmio) {
      rules::check_magic_mmio(fe.path, lf, file_findings);
    }
    if (fe.scope.check_protocol) {
      rules::check_protocol(fe.path, lf, ctx, file_findings);
    }
    if (fe.is_registers) {
      rules::check_register_map(fe.path, lf, file_findings);
    }
    apply_suppressions(fe.path, lf, &file_findings);
    if (use_cache) store_cache_entry(fe, ctx_hash, file_findings);
    out.insert(out.end(), file_findings.begin(), file_findings.end());
  }

  std::sort(out.begin(), out.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return out;
}

}  // namespace tca::lint
