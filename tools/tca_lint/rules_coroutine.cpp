// Coroutine-lifetime rules.
//
// The decidable core of the PR 3 bug class: a lambda coroutine's closure is
// an ordinary object, and the coroutine frame only stores a *reference* to
// it (captures live in the closure, not the frame). If the closure is a
// temporary — an immediately-invoked capturing lambda — every capture
// dangles from the first suspension point onward. Likewise, reference
// parameters that can bind temporaries (const T&, T&&) dangle once the
// caller's full-expression ends. Parameters passed *by value* are moved
// into the frame and are always safe.
#include <cstddef>
#include <string>
#include <vector>

#include "tca_lint/lint.h"

namespace tca::lint::rules {

namespace {

bool is_coro_keyword(const Tok& t) {
  return t.kind == TokKind::kIdent &&
         (t.text == "co_await" || t.text == "co_return" ||
          t.text == "co_yield");
}

/// True when toks[i] is a lambda-introducer `[` (not a subscript, not an
/// attribute `[[`).
bool is_lambda_intro(const std::vector<Tok>& toks, std::size_t i) {
  if (toks[i].kind != TokKind::kPunct || toks[i].text != "[") return false;
  if (i + 1 < toks.size() && toks[i + 1].text == "[") return false;
  if (i == 0) return true;
  const Tok& p = toks[i - 1];
  if (p.text == "[") return false;  // second bracket of an attribute
  // After a value (identifier, literal, call, index) a `[` is a subscript —
  // except after keywords that introduce an expression.
  if (p.kind == TokKind::kIdent) {
    return p.text == "return" || p.text == "co_return" ||
           p.text == "co_await" || p.text == "co_yield" || p.text == "else" ||
           p.text == "case" || p.text == "do";
  }
  if (p.kind == TokKind::kNumber) return false;
  if (p.kind == TokKind::kPunct && (p.text == ")" || p.text == "]")) {
    return false;
  }
  return true;
}

/// One parameter's tokens contain a reference that can bind a temporary.
bool param_binds_temporary(const std::vector<Tok>& toks, std::size_t begin,
                           std::size_t end) {
  bool has_const = false;
  bool has_ref = false;
  for (std::size_t i = begin; i < end; ++i) {
    const Tok& t = toks[i];
    if (t.kind == TokKind::kIdent && t.text == "const") has_const = true;
    if (t.kind == TokKind::kPunct && t.text == "&&") return true;  // rvalue
    if (t.kind == TokKind::kPunct && t.text == "&") has_ref = true;
  }
  return has_const && has_ref;
}

/// Scans a parameter list (open paren at `lp`) and reports dangerous
/// reference parameters. Returns the index of the matching `)`.
std::size_t check_params(const std::string& path, const std::vector<Tok>& toks,
                         std::size_t lp, const char* what,
                         std::vector<Finding>& out) {
  const std::size_t rp = match_forward(toks, lp);
  if (rp >= toks.size()) return rp;
  std::size_t start = lp + 1;
  int angle = 0, paren = 0, brace = 0;
  for (std::size_t i = lp + 1; i <= rp; ++i) {
    const Tok& t = toks[i];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "<") ++angle;
      else if (t.text == ">") --angle;
      else if (t.text == ">>") angle -= 2;
      else if (t.text == "(") ++paren;
      else if (t.text == ")" && i != rp) --paren;
      else if (t.text == "{") ++brace;
      else if (t.text == "}") --brace;
    }
    const bool at_end = (i == rp);
    const bool top_comma = (t.kind == TokKind::kPunct && t.text == "," &&
                            angle <= 0 && paren == 0 && brace == 0);
    if (at_end || top_comma) {
      if (i > start && param_binds_temporary(toks, start, i)) {
        out.push_back({path, toks[start].line, "coro-ref-param",
                       std::string(what) +
                           " takes a const-reference or rvalue-reference "
                           "parameter; it can bind a temporary that dies at "
                           "the first suspension — take it by value"});
      }
      start = i + 1;
    }
  }
  return rp;
}

struct LambdaInfo {
  std::size_t end = 0;  // index of the closing `}` of the body
  bool valid = false;
};

/// Parses the lambda at `intro`, emitting findings for it and every nested
/// lambda. `is_coro_out` reports whether the lambda's own body (excluding
/// nested lambda bodies) contains a coroutine keyword.
LambdaInfo scan_lambda(const std::string& path, const std::vector<Tok>& toks,
                       std::size_t intro, std::vector<Finding>& out);

/// Walks tokens in [begin, end) looking for lambda introducers (handling
/// them recursively) and coroutine keywords belonging to this level.
/// Returns whether a coroutine keyword was seen at this level.
bool walk_region(const std::string& path, const std::vector<Tok>& toks,
                 std::size_t begin, std::size_t end,
                 std::vector<Finding>& out) {
  bool coro = false;
  for (std::size_t i = begin; i < end;) {
    if (is_coro_keyword(toks[i])) {
      coro = true;
      ++i;
      continue;
    }
    if (is_lambda_intro(toks, i)) {
      LambdaInfo info = scan_lambda(path, toks, i, out);
      i = info.valid ? info.end + 1 : i + 1;
      continue;
    }
    ++i;
  }
  return coro;
}

LambdaInfo scan_lambda(const std::string& path, const std::vector<Tok>& toks,
                       std::size_t intro, std::vector<Finding>& out) {
  LambdaInfo info;
  const std::size_t cap_close = match_forward(toks, intro);
  if (cap_close >= toks.size()) return info;
  const bool has_captures = cap_close > intro + 1;

  // Optional parameter list.
  std::size_t i = cap_close + 1;
  std::size_t lp = toks.size(), rp = toks.size();
  if (i < toks.size() && toks[i].text == "(") {
    lp = i;
    rp = match_forward(toks, lp);
    if (rp >= toks.size()) return info;
    i = rp + 1;
  }

  // Skip specifiers and the trailing return type up to the body.
  while (i < toks.size() && toks[i].text != "{") {
    const Tok& t = toks[i];
    if (t.kind == TokKind::kIdent || t.text == "->" || t.text == "::" ||
        t.text == "*" || t.text == "&") {
      ++i;
      continue;
    }
    if (t.text == "<") {
      const std::size_t after = skip_angles(toks, i);
      if (after == i) return info;
      i = after;
      continue;
    }
    return info;  // `,` `)` `;` ...: a bare capture-default or subscript
  }
  if (i >= toks.size()) return info;

  const std::size_t body_open = i;
  const std::size_t body_close = match_forward(toks, body_open);
  if (body_close >= toks.size()) return info;

  const bool is_coro =
      walk_region(path, toks, body_open + 1, body_close, out);

  if (is_coro) {
    if (lp < toks.size()) {
      check_params(path, toks, lp, "lambda coroutine", out);
    }
    const bool invoked = body_close + 1 < toks.size() &&
                         toks[body_close + 1].text == "(";
    if (has_captures && invoked) {
      out.push_back(
          {path, toks[intro].line, "coro-temporary-closure",
           "capturing lambda coroutine invoked as a temporary: the closure "
           "is destroyed at the end of the full-expression while the "
           "coroutine frame (and its suspended references into the closure) "
           "lives on — name the closure or pass state as parameters"});
    }
  }

  info.end = body_close;
  info.valid = true;
  return info;
}

/// Detects `Task<...> name(params...)` declarations/definitions and checks
/// the parameter list. Matches both `Task` and `sim::Task` spellings.
void check_task_functions(const std::string& path,
                          const std::vector<Tok>& toks,
                          std::vector<Finding>& out) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || toks[i].text != "Task") continue;
    std::size_t j = i + 1;
    if (j >= toks.size() || toks[j].text != "<") continue;
    const std::size_t after = skip_angles(toks, j);
    if (after == j) continue;
    j = after;
    // Qualified function name: at least one identifier.
    bool has_name = false;
    while (j < toks.size() && (toks[j].kind == TokKind::kIdent ||
                               toks[j].text == "::")) {
      if (toks[j].kind == TokKind::kIdent) has_name = true;
      ++j;
    }
    if (!has_name || j >= toks.size() || toks[j].text != "(") continue;
    check_params(path, toks, j, "coroutine function", out);
  }
}

}  // namespace

void check_coroutines(const std::string& path, const LexedFile& f,
                      std::vector<Finding>& out) {
  walk_region(path, f.toks, 0, f.toks.size(), out);
  check_task_functions(path, f.toks, out);
}

}  // namespace tca::lint::rules
