// tca_chaos — seeded chaos-campaign runner for the TCA simulator.
//
// Draws deterministic random fault plans (cable flaps/cuts/retrains, BER
// bursts, stuck doorbells), composes each with a workload over a chosen
// fabric, and audits the system invariants tca::chaos enforces: byte
// conservation on every cable, no wedged tasks, route-table consistency,
// no unroutable traffic, monotonic simulated time, and same-seed replay
// determinism. Failing campaigns are ddmin-shrunk to a minimal reproducer
// rendered in the .campaign corpus format.
//
// Examples:
//   tca_chaos --seed 7 --campaigns 24
//   tca_chaos --campaigns 12 --topology torus:4x4 --workload halo
//   tca_chaos --seed 3 --campaigns 100 --replay-check
//   tca_chaos --corpus tests/chaos                # replay the corpus
//   tca_chaos --campaigns 50 --shrink-out /tmp/repro
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/chaos.h"

using namespace tca;

namespace {

struct Options {
  std::uint64_t seed = 1;
  std::uint32_t campaigns = 8;
  std::vector<std::string> topologies = {"ring:8", "torus:4x4", "torus:2x2x2"};
  std::string workload = "all";  // rotate through every workload
  bool replay_check = false;     // run each campaign twice, compare hashes
  std::string corpus_dir;        // replay *.campaign files instead
  std::string shrink_out;        // write minimized reproducers here
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed S] [--campaigns N]\n"
               "          [--topology ring:N,torus:XxY[,...]]\n"
               "          [--workload all|allreduce|halo|pingpong|mixed]\n"
               "          [--replay-check] [--corpus DIR] [--shrink-out DIR]\n",
               argv0);
  std::exit(2);
}

std::vector<std::string> split_commas(const std::string& arg) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= arg.size()) {
    const std::size_t comma = std::min(arg.find(',', pos), arg.size());
    if (comma > pos) out.push_back(arg.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (a == "--seed") {
      opt.seed = std::stoull(next());
    } else if (a == "--campaigns") {
      opt.campaigns = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (a == "--topology") {
      opt.topologies = split_commas(next());
      if (opt.topologies.empty()) usage(argv[0]);
    } else if (a == "--workload") {
      opt.workload = next();
    } else if (a == "--replay-check") {
      opt.replay_check = true;
    } else if (a == "--corpus") {
      opt.corpus_dir = next();
    } else if (a == "--shrink-out") {
      opt.shrink_out = next();
    } else {
      usage(argv[0]);
    }
  }
  return opt;
}

/// SplitMix64 step: decorrelates per-campaign seeds drawn from one CLI seed.
std::uint64_t mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

void print_result(const std::string& label, const chaos::CampaignSpec& spec,
                  const chaos::CampaignResult& r) {
  std::printf("%s seed=%llu topology=%s workload=%s: %s trace=%016llx "
              "metrics=%016llx ops_ok=%u ops_failed=%u failovers=%llu "
              "failbacks=%llu\n",
              label.c_str(), static_cast<unsigned long long>(spec.seed),
              chaos::topology_to_string(spec.topology).c_str(),
              chaos::to_string(spec.workload), r.passed() ? "PASS" : "FAIL",
              static_cast<unsigned long long>(r.trace_hash),
              static_cast<unsigned long long>(r.metrics_hash), r.ops_ok,
              r.ops_failed, static_cast<unsigned long long>(r.failovers),
              static_cast<unsigned long long>(r.failbacks));
  for (const std::string& v : r.violations) {
    std::printf("  violation: %s\n", v.c_str());
  }
}

/// Shrinks a failing campaign, prints (and optionally saves) the minimal
/// reproducer.
void handle_failure(const chaos::CampaignSpec& spec, const Options& opt,
                    int index) {
  chaos::ShrinkOutcome shrunk = chaos::shrink_campaign(spec);
  std::printf("  shrink: %zu -> %zu events in %u runs%s\n",
              shrunk.original_events, shrunk.minimized_events, shrunk.runs,
              shrunk.reproduced ? "" : " (did not reproduce)");
  const std::string rendered = shrunk.minimized.to_string();
  std::printf("  minimized reproducer:\n");
  std::istringstream lines(rendered);
  for (std::string line; std::getline(lines, line);) {
    std::printf("    %s\n", line.c_str());
  }
  if (!opt.shrink_out.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(opt.shrink_out, ec);
    const std::string path = opt.shrink_out + "/repro-" +
                             std::to_string(index) + ".campaign";
    std::ofstream out(path);
    out << "# minimized by tca_chaos --shrink-out\n" << rendered;
    std::printf("  wrote %s\n", path.c_str());
  }
}

void handle_failure(const chaos::CampaignSpec& spec, const Options& opt,
                    int index);

int run_corpus(const Options& opt) {
  std::vector<std::filesystem::path> files;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(opt.corpus_dir, ec)) {
    if (entry.path().extension() == ".campaign") {
      files.push_back(entry.path());
    }
  }
  if (ec) {
    std::fprintf(stderr, "error: cannot read corpus dir %s: %s\n",
                 opt.corpus_dir.c_str(), ec.message().c_str());
    return 2;
  }
  std::sort(files.begin(), files.end());
  int failures = 0;
  for (const auto& path : files) {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    auto spec = chaos::CampaignSpec::parse(buffer.str());
    if (!spec.is_ok()) {
      std::fprintf(stderr, "error: %s: %s\n", path.string().c_str(),
                   spec.status().to_string().c_str());
      ++failures;
      continue;
    }
    const chaos::CampaignResult r = chaos::run_campaign(spec.value());
    print_result("corpus " + path.filename().string(), spec.value(), r);
    if (!r.passed()) {
      handle_failure(spec.value(), opt, failures);
      ++failures;
    }
  }
  std::printf("corpus: %zu campaigns, %d failed\n", files.size(), failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  if (!opt.corpus_dir.empty()) return run_corpus(opt);

  const std::vector<std::string> workloads =
      opt.workload == "all"
          ? std::vector<std::string>{"allreduce", "halo", "pingpong", "mixed"}
          : std::vector<std::string>{opt.workload};

  int failures = 0;
  for (std::uint32_t i = 0; i < opt.campaigns; ++i) {
    chaos::CampaignSpec spec;
    spec.seed = mix(opt.seed ^ (static_cast<std::uint64_t>(i) *
                                0x9e3779b97f4a7c15ull));
    auto topo =
        chaos::parse_topology(opt.topologies[i % opt.topologies.size()]);
    if (!topo.is_ok()) {
      std::fprintf(stderr, "error: %s\n", topo.status().to_string().c_str());
      return 2;
    }
    spec.topology = topo.value();
    auto w = chaos::parse_workload(workloads[i % workloads.size()]);
    if (!w.is_ok()) {
      std::fprintf(stderr, "error: %s\n", w.status().to_string().c_str());
      return 2;
    }
    spec.workload = w.value();

    chaos::CampaignResult r = chaos::run_campaign(spec);
    bool failed = !r.passed();
    if (opt.replay_check && !failed) {
      const chaos::CampaignResult replay = chaos::run_campaign(spec);
      if (replay.trace_hash != r.trace_hash ||
          replay.metrics_hash != r.metrics_hash) {
        r.violations.push_back(
            "determinism: replay hashes differ (trace " +
            std::to_string(r.trace_hash) + " vs " +
            std::to_string(replay.trace_hash) + ", metrics " +
            std::to_string(r.metrics_hash) + " vs " +
            std::to_string(replay.metrics_hash) + ")");
        failed = true;
      }
    }
    print_result("campaign " + std::to_string(i), spec, r);
    if (failed) {
      ++failures;
      handle_failure(spec, opt, static_cast<int>(i));
    }
  }
  std::printf("%u campaigns, %d failed\n", opt.campaigns, failures);
  return failures == 0 ? 0 : 1;
}
