// tca_explore — command-line experiment runner for the TCA simulator.
//
// Lets a user sweep the design space without writing code: pick node count,
// topology, transfer kind, burst depth and sizes, and get the bandwidth /
// latency series for it.
//
// Examples:
//   tca_explore                                   # defaults: Fig. 7-style
//   tca_explore --nodes 8 --target remote-host --sizes 64,1024,4096
//   tca_explore --op read --burst 16
//   tca_explore --op pio --target remote-host --nodes 4 --dest 3
//   tca_explore --topology dual-ring --nodes 8 --target remote-gpu
//   tca_explore --stats                           # metrics JSON on stdout
//   tca_explore --stats-out metrics.json          # ... or to a file
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/trace.h"
#include "obs/metrics.h"

using namespace tca;
using bench::DmaRig;
using peach2::DmaDescriptor;
using peach2::DmaDirection;

namespace {

struct Options {
  std::uint32_t nodes = 2;
  fabric::Topology topology = fabric::Topology::kRing;
  std::string op = "write";           // write | read | pipelined | pio
  std::string target = "local-host";  // local-/remote- x host/gpu
  std::uint32_t burst = 255;
  std::uint32_t dest = 1;  // destination node for remote targets
  std::vector<std::uint32_t> sizes = {64, 256, 1024, 4096};
  std::string trace_path;  // chrome://tracing JSON output
  bool stats = false;      // print the metrics JSON snapshot at exit
  std::string stats_path;  // write the metrics JSON to a file instead
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--nodes N] [--topology ring|dual-ring] "
      "[--op write|read|pipelined|pio]\n"
      "          [--target local-host|local-gpu|remote-host|remote-gpu]\n"
      "          [--burst K] [--dest NODE] [--sizes a,b,c]\n"
      "          [--trace FILE] [--stats] [--stats-out FILE]\n",
      argv0);
  std::exit(2);
}

std::vector<std::uint32_t> parse_sizes(const std::string& arg) {
  std::vector<std::uint32_t> out;
  std::size_t pos = 0;
  while (pos < arg.size()) {
    const std::size_t comma = arg.find(',', pos);
    const std::string tok = arg.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    out.push_back(static_cast<std::uint32_t>(std::stoul(tok)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (a == "--nodes") {
      opt.nodes = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (a == "--topology") {
      const std::string t = next();
      if (t == "ring") {
        opt.topology = fabric::Topology::kRing;
      } else if (t == "dual-ring") {
        opt.topology = fabric::Topology::kDualRing;
      } else {
        usage(argv[0]);
      }
    } else if (a == "--op") {
      opt.op = next();
    } else if (a == "--target") {
      opt.target = next();
    } else if (a == "--burst") {
      opt.burst = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (a == "--dest") {
      opt.dest = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (a == "--sizes") {
      opt.sizes = parse_sizes(next());
    } else if (a == "--trace") {
      opt.trace_path = next();
    } else if (a == "--stats") {
      opt.stats = true;
    } else if (a == "--stats-out") {
      opt.stats_path = next();
    } else {
      usage(argv[0]);
    }
  }
  if (opt.op != "write" && opt.op != "read" && opt.op != "pipelined" &&
      opt.op != "pio") {
    usage(argv[0]);
  }
  if (opt.burst == 0 || opt.burst > calib::kMaxDescriptors) usage(argv[0]);
  if (opt.dest >= opt.nodes) usage(argv[0]);
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  if (!opt.trace_path.empty()) Trace::instance().enable();
  // Stats requested: also record latency samples (histograms in the JSON).
  if (opt.stats || !opt.stats_path.empty()) obs::set_sampling_enabled(true);

  sim::Scheduler sched;
  fabric::SubCluster tca(
      sched, fabric::SubClusterConfig{
                 .node_count = opt.nodes,
                 .topology = opt.topology,
                 .node_config = {.gpu_count = 2,
                                 .host_backing_bytes = 64ull << 20,
                                 .gpu_backing_bytes = 8ull << 20}});
  driver::Peach2Driver& drv = tca.driver(0);

  // Stage data and pin GPU windows.
  Rng rng(1);
  std::vector<std::byte> fill(tca.chip(0).internal_ram().size());
  rng.fill(fill);
  tca.chip(0).internal_ram().write(0, fill);
  std::vector<std::byte> hostfill(4 << 20);
  rng.fill(hostfill);
  for (std::uint32_t n = 0; n < opt.nodes; ++n) {
    tca.node(n).host_dram().write(0, hostfill);
    auto ptr = tca.node(n).gpu(0).mem_alloc(4 << 20);
    TCA_ASSERT(ptr.is_ok());
    TCA_ASSERT(tca.driver(n).p2p().pin(0, ptr.value(), 4 << 20).is_ok());
  }

  const bool remote = opt.target.rfind("remote", 0) == 0;
  const bool gpu = opt.target.find("gpu") != std::string::npos;
  const std::uint32_t dest_node = remote ? opt.dest : 0;
  auto target_addr = [&](std::uint64_t off) {
    return tca.layout().encode(dest_node,
                               gpu ? peach2::TcaTarget::kGpu0
                                   : peach2::TcaTarget::kHost,
                               off);
  };

  std::printf("tca_explore: %u-node %s, op=%s target=%s dest=node%u "
              "burst=%u\n",
              opt.nodes,
              opt.topology == fabric::Topology::kRing ? "ring" : "dual-ring",
              opt.op.c_str(), opt.target.c_str(), dest_node, opt.burst);

  TablePrinter table({"Size", "Elapsed", "Bandwidth", "Latency/op"});
  for (std::uint32_t size : opt.sizes) {
    TimePs elapsed = 0;
    const std::uint64_t total =
        static_cast<std::uint64_t>(opt.burst) * size;
    if (opt.op == "pio") {
      std::vector<std::byte> data(size, std::byte{0x11});
      const TimePs t0 = sched.now();
      for (std::uint32_t i = 0; i < opt.burst; ++i) {
        auto t = drv.pio_store(target_addr((i * size) % (1 << 20)), data);
        sched.run();
      }
      elapsed = sched.now() - t0;
    } else {
      std::vector<DmaDescriptor> chain;
      for (std::uint32_t i = 0; i < opt.burst; ++i) {
        const std::uint64_t off =
            (static_cast<std::uint64_t>(i) * size) % ((1 << 20) - size + 1);
        DmaDescriptor d{.length = size};
        if (opt.op == "write") {
          d.direction = DmaDirection::kWrite;
          d.src = drv.internal_global(off);
          d.dst = target_addr(off);
        } else if (opt.op == "read") {
          if (remote) {
            std::fprintf(stderr,
                         "error: remote reads are not supported by the "
                         "put-only fabric\n");
            return 2;
          }
          d.direction = DmaDirection::kRead;
          d.src = target_addr(off);
          d.dst = drv.internal_global(off);
        } else {  // pipelined
          d.direction = DmaDirection::kPipelined;
          d.src = drv.host_buffer_global(off);
          d.dst = target_addr(off);
        }
        chain.push_back(d);
      }
      auto t = drv.run_chain(std::move(chain));
      sched.run();
      elapsed = t.result();
    }
    table.add_row(
        {units::format_size(size), units::format_time(elapsed),
         TablePrinter::cell(units::gbytes_per_second(total, elapsed), 3) +
             " GB/s",
         units::format_time(elapsed / opt.burst)});
  }
  table.print();
  if (opt.stats || !opt.stats_path.empty()) {
    obs::MetricRegistry reg;
    tca.export_metrics(reg);
    if (Trace::instance().enabled()) reg.emit_trace_counters(sched.now());
    if (!opt.stats_path.empty()) {
      const Status st = reg.write_json(opt.stats_path);
      if (!st.is_ok()) {
        std::fprintf(stderr, "stats: %s\n", st.to_string().c_str());
        return 1;
      }
      std::printf("stats: %zu metrics -> %s\n", reg.size(),
                  opt.stats_path.c_str());
    }
    if (opt.stats) {
      std::printf("\n%s", reg.to_json().c_str());
    }
  }

  if (!opt.trace_path.empty()) {
    const Status st = Trace::instance().write_json(opt.trace_path);
    if (!st.is_ok()) {
      std::fprintf(stderr, "trace: %s\n", st.to_string().c_str());
      return 1;
    }
    std::printf("trace: %zu events -> %s (open in chrome://tracing)\n",
                Trace::instance().event_count(), opt.trace_path.c_str());
  }
  return 0;
}
