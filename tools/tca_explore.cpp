// tca_explore — command-line experiment runner for the TCA simulator.
//
// Lets a user sweep the design space without writing code: pick node count,
// topology, transfer kind, burst depth and sizes, and get the bandwidth /
// latency series for it.
//
// Examples:
//   tca_explore                                   # defaults: Fig. 7-style
//   tca_explore --nodes 8 --target remote-host --sizes 64,1024,4096
//   tca_explore --op read --burst 16
//   tca_explore --op pio --target remote-host --nodes 4 --dest 3
//   tca_explore --topology dual-ring --nodes 8 --target remote-gpu
//   tca_explore --stats                           # metrics JSON on stdout
//   tca_explore --stats-out metrics.json          # ... or to a file
//
// Fault campaigns (see fabric::FaultPlan::parse for the grammar):
//   tca_explore --target remote-host --fault-plan "flap:cable=0,at=5us,for=100us"
//   tca_explore --fault-plan "cut:cable=0,at=2us" --deadline 2000 --attempts 3
//   tca_explore --fault-plan "ber:cable=0,at=0,for=1ms,rate=1e-6" --stats
//   tca_explore --no-failover --fault-plan "cut:cable=0,at=2us" --deadline 500
//
// Collective workloads (tca::coll over the api::Runtime, GPU-resident):
//   tca_explore --workload allreduce --size 1048576 --nodes 8
//   tca_explore --workload halo --size 8192 --stats
//   tca_explore --workload allreduce --size 65536
//       --fault-plan "cut:cable=0,at=5us" --deadline 300 --attempts 4
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "api/tca.h"
#include "bench/bench_util.h"
#include "coll/communicator.h"
#include "common/trace.h"
#include "fabric/fault_plan.h"
#include "obs/metrics.h"

using namespace tca;
using bench::DmaRig;
using peach2::DmaDescriptor;
using peach2::DmaDirection;

namespace {

struct Options {
  std::uint32_t nodes = 2;
  bool nodes_set = false;  // --nodes given explicitly (torus cross-check)
  fabric::TopologySpec spec = fabric::TopologySpec::ring(2);
  std::string op = "write";           // write | read | pipelined | pio
  std::string target = "local-host";  // local-/remote- x host/gpu
  std::uint32_t burst = 255;
  std::uint32_t dest = 1;  // destination node for remote targets
  std::vector<std::uint32_t> sizes = {64, 256, 1024, 4096};
  std::string trace_path;  // chrome://tracing JSON output
  bool stats = false;      // print the metrics JSON snapshot at exit
  std::string stats_path;  // write the metrics JSON to a file instead
  fabric::FaultPlan fault_plan;   // deterministic fault campaign
  bool failover = true;           // ring failover on cable death
  std::uint32_t deadline_us = 0;  // per-attempt chain watchdog (0 = off)
  std::uint32_t attempts = 1;     // doorbell attempts per chain
  std::string workload;           // "" | allreduce | halo (tca::coll mode)
  std::uint64_t size = 1ull << 20;  // workload payload bytes
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--nodes N] [--topology ring|dual-ring|torus:XxY[xZ]] "
      "[--op write|read|pipelined|pio]\n"
      "          [--target local-host|local-gpu|remote-host|remote-gpu]\n"
      "          [--burst K] [--dest NODE] [--sizes a,b,c]\n"
      "          [--trace FILE] [--stats] [--stats-out FILE]\n"
      "          [--fault-plan SPEC] [--no-failover] [--deadline USEC]\n"
      "          [--attempts N]\n"
      "          [--workload allreduce|halo --size BYTES]\n",
      argv0);
  std::exit(2);
}

std::vector<std::uint32_t> parse_sizes(const std::string& arg) {
  std::vector<std::uint32_t> out;
  std::size_t pos = 0;
  while (pos < arg.size()) {
    const std::size_t comma = arg.find(',', pos);
    const std::string tok = arg.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    out.push_back(static_cast<std::uint32_t>(std::stoul(tok)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (a == "--nodes") {
      opt.nodes = static_cast<std::uint32_t>(std::stoul(next()));
      opt.nodes_set = true;
    } else if (a == "--topology") {
      auto spec = fabric::TopologySpec::parse(next());
      if (!spec.is_ok()) {
        std::fprintf(stderr, "error: %s\n",
                     spec.status().to_string().c_str());
        std::exit(2);
      }
      opt.spec = std::move(spec).value();
    } else if (a == "--op") {
      opt.op = next();
    } else if (a == "--target") {
      opt.target = next();
    } else if (a == "--burst") {
      opt.burst = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (a == "--dest") {
      opt.dest = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (a == "--sizes") {
      opt.sizes = parse_sizes(next());
    } else if (a == "--trace") {
      opt.trace_path = next();
    } else if (a == "--stats") {
      opt.stats = true;
    } else if (a == "--stats-out") {
      opt.stats_path = next();
    } else if (a == "--fault-plan") {
      auto plan = fabric::FaultPlan::parse(next());
      if (!plan.is_ok()) {
        std::fprintf(stderr, "error: %s\n", plan.status().to_string().c_str());
        std::exit(2);
      }
      opt.fault_plan = std::move(plan).value();
    } else if (a == "--no-failover") {
      opt.failover = false;
    } else if (a == "--deadline") {
      opt.deadline_us = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (a == "--attempts") {
      opt.attempts = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (a == "--workload") {
      opt.workload = next();
    } else if (a == "--size") {
      opt.size = std::stoull(next());
    } else {
      usage(argv[0]);
    }
  }
  if (!opt.workload.empty() && opt.workload != "allreduce" &&
      opt.workload != "halo") {
    usage(argv[0]);
  }
  if (!opt.workload.empty() && opt.size == 0) usage(argv[0]);
  if (opt.op != "write" && opt.op != "read" && opt.op != "pipelined" &&
      opt.op != "pio") {
    usage(argv[0]);
  }
  if (opt.burst == 0 || opt.burst > calib::kMaxDescriptors) usage(argv[0]);
  // Resolve the node count: ring/dual-ring parse without one (combine with
  // --nodes), while a torus spec derives it from its extents.
  if (opt.spec.kind() == fabric::TopologySpec::Kind::kTorus) {
    if (opt.nodes_set && opt.nodes != opt.spec.node_count()) {
      std::fprintf(stderr, "error: --nodes %u does not match %s (%u nodes)\n",
                   opt.nodes, opt.spec.to_string().c_str(),
                   opt.spec.node_count());
      std::exit(2);
    }
    opt.nodes = opt.spec.node_count();
  } else if (opt.spec.kind() == fabric::TopologySpec::Kind::kDualRing) {
    opt.spec = fabric::TopologySpec::dual_ring(opt.nodes);
  } else {
    opt.spec = fabric::TopologySpec::ring(opt.nodes);
  }
  if (opt.dest >= opt.nodes) usage(argv[0]);
  return opt;
}

/// --workload mode: drive one tca::coll collective (GPU-resident) over the
/// api::Runtime instead of raw driver chains, composing with --nodes,
/// --topology, --fault-plan, --no-failover, --deadline, --attempts,
/// --stats and --trace. A healthy run exits non-zero on verification
/// failure; under a fault campaign the printed outcome IS the experiment,
/// so the run exits zero either way.
int run_workload(const Options& opt) {
  sim::Scheduler sched;
  const api::TcaConfig config{
      .spec = opt.spec,
      .node_config = {.gpu_count = 2,
                      .host_backing_bytes = 64ull << 20,
                      .gpu_backing_bytes = 64ull << 20},
      .fault_plan = opt.fault_plan,
      .enable_failover = opt.failover};
  if (Status st = api::Runtime::validate_config(config); !st.is_ok()) {
    std::fprintf(stderr, "error: %s\n", st.to_string().c_str());
    return 2;
  }
  api::Runtime rt(sched, config);

  coll::CollConfig cfg;
  cfg.sync.max_attempts = opt.attempts;
  if (opt.deadline_us > 0) cfg.sync.deadline_ps = units::us(opt.deadline_us);
  // A fault campaign may kill a neighbor's doorbell outright; bound the
  // flag waits so the run reports kTimedOut instead of never terminating.
  if (!opt.fault_plan.empty() && cfg.flag_timeout_ps == 0) {
    cfg.flag_timeout_ps = units::ms(50);
  }
  auto comm_res = coll::Communicator::create(rt, cfg);
  if (!comm_res.is_ok()) {
    std::fprintf(stderr, "error: %s\n",
                 comm_res.status().to_string().c_str());
    return 2;
  }
  coll::Communicator& comm = comm_res.value();

  std::printf("tca_explore: %u-node %s, workload=%s size=%s\n", opt.nodes,
              opt.spec.to_string().c_str(), opt.workload.c_str(),
              units::format_size(opt.size).c_str());

  std::vector<Status> st(opt.nodes, Status::ok());
  bool verified = false;
  std::uint64_t payload = 0;  // per-rank payload bytes, for the GB/s line
  TimePs elapsed = 0;

  if (opt.workload == "allreduce") {
    std::uint64_t count = opt.size / sizeof(double);
    count -= count % opt.nodes;  // the ring partitions the vector evenly
    if (count == 0) {
      std::fprintf(stderr, "error: --size must cover at least %u doubles\n",
                   opt.nodes);
      return 2;
    }
    payload = count * sizeof(double);
    Rng rng(42);
    std::vector<std::vector<double>> in(opt.nodes);
    std::vector<api::Buffer> bufs(opt.nodes);
    for (std::uint32_t r = 0; r < opt.nodes; ++r) {
      in[r].resize(count);
      for (double& x : in[r]) x = rng.next_double() * 2.0 - 1.0;
      bufs[r] = rt.alloc_gpu(r, 0, payload).value();
      rt.write(bufs[r], 0, std::as_bytes(std::span(in[r])));
    }
    const TimePs t0 = sched.now();
    for (std::uint32_t r = 0; r < opt.nodes; ++r) {
      sim::spawn([](coll::Communicator& c, api::Buffer b, std::uint32_t rank,
                    std::uint64_t n, Status& out) -> sim::Task<> {
        out = co_await c.allreduce_sum(rank, b, 0, n);
      }(comm, bufs[r], r, count, st[r]));
    }
    sched.run();
    elapsed = sched.now() - t0;

    // Every rank must agree bitwise, and the agreed vector must match a
    // host-side reference sum (different fold order, hence the epsilon).
    std::vector<double> out0(count);
    rt.read(bufs[0], 0, std::as_writable_bytes(std::span(out0)));
    verified = true;
    for (std::uint32_t r = 1; r < opt.nodes; ++r) {
      std::vector<double> o(count);
      rt.read(bufs[r], 0, std::as_writable_bytes(std::span(o)));
      verified = verified &&
                 std::memcmp(o.data(), out0.data(), payload) == 0;
    }
    double max_err = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
      double ref = 0;
      for (const auto& v : in) ref += v[i];
      max_err = std::max(max_err, std::fabs(out0[i] - ref));
    }
    verified = verified && max_err < 1e-9 * opt.nodes;
  } else {  // halo
    const std::uint64_t row = opt.size;
    if (row > comm.config().pipeline_seg_bytes) {
      std::fprintf(stderr,
                   "error: halo row (%llu bytes) must fit one staging slot "
                   "(<= %llu bytes)\n",
                   static_cast<unsigned long long>(row),
                   static_cast<unsigned long long>(
                       comm.config().pipeline_seg_bytes));
      return 2;
    }
    payload = 2 * row;  // both boundary rows leave every rank
    // Slab layout: [recv_from_prev][send_to_prev][send_to_next]
    // [recv_from_next], with recognizable per-rank row patterns.
    auto row_byte = [](std::uint32_t rank, bool to_next) {
      return std::byte{
          static_cast<unsigned char>(0x10 + rank * 2 + (to_next ? 1 : 0))};
    };
    std::vector<api::Buffer> bufs(opt.nodes);
    for (std::uint32_t r = 0; r < opt.nodes; ++r) {
      bufs[r] = rt.alloc_gpu(r, 0, 4 * row).value();
      rt.write(bufs[r], 1 * row,
               std::vector<std::byte>(row, row_byte(r, false)));
      rt.write(bufs[r], 2 * row,
               std::vector<std::byte>(row, row_byte(r, true)));
    }
    const TimePs t0 = sched.now();
    for (std::uint32_t r = 0; r < opt.nodes; ++r) {
      sim::spawn([](coll::Communicator& c, api::Buffer b, std::uint32_t rank,
                    std::uint64_t rb, Status& out) -> sim::Task<> {
        out = co_await c.neighbor_exchange(
            rank, coll::HaloSpec{.buf = b,
                                 .send_to_next_off = 2 * rb,
                                 .send_to_prev_off = 1 * rb,
                                 .recv_from_prev_off = 0,
                                 .recv_from_next_off = 3 * rb,
                                 .bytes = rb});
      }(comm, bufs[r], r, row, st[r]));
    }
    sched.run();
    elapsed = sched.now() - t0;

    verified = true;
    for (std::uint32_t r = 0; r < opt.nodes; ++r) {
      const std::uint32_t prev = (r + opt.nodes - 1) % opt.nodes;
      const std::uint32_t next = (r + 1) % opt.nodes;
      std::vector<std::byte> got(row);
      rt.read(bufs[r], 0, got);  // from prev: prev's to_next row
      verified = verified &&
                 got == std::vector<std::byte>(row, row_byte(prev, true));
      rt.read(bufs[r], 3 * row, got);  // from next: next's to_prev row
      verified = verified &&
                 got == std::vector<std::byte>(row, row_byte(next, false));
    }
  }

  bool all_ok = true;
  for (std::uint32_t r = 0; r < opt.nodes; ++r) {
    if (!st[r].is_ok()) {
      all_ok = false;
      std::printf("rank %u: %s\n", r, st[r].to_string().c_str());
    }
  }
  const std::uint64_t aggregate = payload * opt.nodes;
  std::printf("%s: %s/rank in %s  (%s aggregate, %.3f GB/s)  verify: %s\n",
              opt.workload.c_str(), units::format_size(payload).c_str(),
              units::format_time(elapsed).c_str(),
              units::format_size(aggregate).c_str(),
              units::gbytes_per_second(aggregate, elapsed),
              verified ? "OK" : "FAILED");
  const coll::CollMetrics& m = comm.metrics();
  std::printf("coll: eager_ops=%llu ring_ops=%llu bytes=%llu "
              "staged_d2h=%llu host_carry=%llu put_retries=%llu\n",
              static_cast<unsigned long long>(m.eager_ops),
              static_cast<unsigned long long>(m.ring_ops),
              static_cast<unsigned long long>(m.bytes),
              static_cast<unsigned long long>(m.staged_d2h_bytes),
              static_cast<unsigned long long>(m.host_carry_bytes),
              static_cast<unsigned long long>(m.put_retries));

  if (!opt.fault_plan.empty()) {
    fabric::SubCluster& tca = rt.cluster();
    std::uint64_t dropped = 0, replays = 0;
    for (std::size_t k = 0; k < tca.cable_count(); ++k) {
      dropped += tca.cable(k).end_a().dropped_tlps() +
                 tca.cable(k).end_b().dropped_tlps();
      replays +=
          tca.cable(k).end_a().replays() + tca.cable(k).end_b().replays();
    }
    std::uint64_t error_irqs = 0;
    for (std::uint32_t n = 0; n < opt.nodes; ++n) {
      error_irqs += tca.chip(n).error_interrupts();
    }
    std::printf("fault-plan: %s\n", opt.fault_plan.to_string().c_str());
    std::printf(
        "recovery: failovers=%llu failbacks=%llu dropped_tlps=%llu "
        "replays=%llu error_irqs=%llu\n",
        static_cast<unsigned long long>(tca.failovers()),
        static_cast<unsigned long long>(tca.failbacks()),
        static_cast<unsigned long long>(dropped),
        static_cast<unsigned long long>(replays),
        static_cast<unsigned long long>(error_irqs));
  }

  if (opt.stats || !opt.stats_path.empty()) {
    obs::MetricRegistry reg;
    comm.export_metrics(reg);
    if (Trace::instance().enabled()) reg.emit_trace_counters(sched.now());
    if (!opt.stats_path.empty()) {
      const Status s = reg.write_json(opt.stats_path);
      if (!s.is_ok()) {
        std::fprintf(stderr, "stats: %s\n", s.to_string().c_str());
        return 1;
      }
      std::printf("stats: %zu metrics -> %s\n", reg.size(),
                  opt.stats_path.c_str());
    }
    if (opt.stats) std::printf("\n%s", reg.to_json().c_str());
  }
  if (!opt.trace_path.empty()) {
    const Status s = Trace::instance().write_json(opt.trace_path);
    if (!s.is_ok()) {
      std::fprintf(stderr, "trace: %s\n", s.to_string().c_str());
      return 1;
    }
    std::printf("trace: %zu events -> %s (open in chrome://tracing)\n",
                Trace::instance().event_count(), opt.trace_path.c_str());
  }
  if (all_ok && verified) return 0;
  return opt.fault_plan.empty() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  if (!opt.trace_path.empty()) Trace::instance().enable();
  // Stats requested: also record latency samples (histograms in the JSON).
  if (opt.stats || !opt.stats_path.empty()) obs::set_sampling_enabled(true);

  if (!opt.workload.empty()) return run_workload(opt);

  sim::Scheduler sched;
  fabric::SubCluster tca(
      sched, fabric::SubClusterConfig{
                 .spec = opt.spec,
                 .node_config = {.gpu_count = 2,
                                 .host_backing_bytes = 64ull << 20,
                                 .gpu_backing_bytes = 8ull << 20},
                 .fault_plan = opt.fault_plan,
                 .enable_failover = opt.failover});
  driver::Peach2Driver& drv = tca.driver(0);

  // Stage data and pin GPU windows.
  Rng rng(1);
  std::vector<std::byte> fill(tca.chip(0).internal_ram().size());
  rng.fill(fill);
  tca.chip(0).internal_ram().write(0, fill);
  std::vector<std::byte> hostfill(4 << 20);
  rng.fill(hostfill);
  for (std::uint32_t n = 0; n < opt.nodes; ++n) {
    tca.node(n).host_dram().write(0, hostfill);
    auto ptr = tca.node(n).gpu(0).mem_alloc(4 << 20);
    TCA_ASSERT(ptr.is_ok());
    TCA_ASSERT(tca.driver(n).p2p().pin(0, ptr.value(), 4 << 20).is_ok());
  }

  const bool remote = opt.target.rfind("remote", 0) == 0;
  const bool gpu = opt.target.find("gpu") != std::string::npos;
  const std::uint32_t dest_node = remote ? opt.dest : 0;
  auto target_addr = [&](std::uint64_t off) {
    return tca.layout().encode(dest_node,
                               gpu ? peach2::TcaTarget::kGpu0
                                   : peach2::TcaTarget::kHost,
                               off);
  };

  std::printf("tca_explore: %u-node %s, op=%s target=%s dest=node%u "
              "burst=%u\n",
              opt.nodes, opt.spec.to_string().c_str(), opt.op.c_str(),
              opt.target.c_str(), dest_node, opt.burst);

  TablePrinter table({"Size", "Elapsed", "Bandwidth", "Latency/op"});
  for (std::uint32_t size : opt.sizes) {
    TimePs elapsed = 0;
    const std::uint64_t total =
        static_cast<std::uint64_t>(opt.burst) * size;
    if (opt.op == "pio") {
      std::vector<std::byte> data(size, std::byte{0x11});
      const TimePs t0 = sched.now();
      for (std::uint32_t i = 0; i < opt.burst; ++i) {
        auto t = drv.pio_store(target_addr((i * size) % (1 << 20)), data);
        sched.run();
      }
      elapsed = sched.now() - t0;
    } else {
      std::vector<DmaDescriptor> chain;
      for (std::uint32_t i = 0; i < opt.burst; ++i) {
        const std::uint64_t off =
            (static_cast<std::uint64_t>(i) * size) % ((1 << 20) - size + 1);
        DmaDescriptor d{.length = size};
        if (opt.op == "write") {
          d.direction = DmaDirection::kWrite;
          d.src = drv.internal_global(off);
          d.dst = target_addr(off);
        } else if (opt.op == "read") {
          if (remote) {
            std::fprintf(stderr,
                         "error: remote reads are not supported by the "
                         "put-only fabric\n");
            return 2;
          }
          d.direction = DmaDirection::kRead;
          d.src = target_addr(off);
          d.dst = drv.internal_global(off);
        } else {  // pipelined
          d.direction = DmaDirection::kPipelined;
          d.src = drv.host_buffer_global(off);
          d.dst = target_addr(off);
        }
        chain.push_back(d);
      }
      if (opt.deadline_us > 0 || opt.attempts > 1) {
        auto t = drv.run_chain_reliable(
            std::move(chain),
            driver::RetryPolicy{
                .max_attempts = opt.attempts,
                .timeout_ps = opt.deadline_us > 0 ? units::us(opt.deadline_us)
                                                  : calib::kChainWatchdogPs});
        sched.run();
        const driver::ChainResult result = t.result();
        elapsed = result.elapsed;
        if (!result.status.is_ok()) {
          std::printf("  size %u: %s after %u attempt(s)\n", size,
                      result.status.to_string().c_str(), result.attempts);
        } else if (result.attempts > 1) {
          std::printf("  size %u: recovered on attempt %u\n", size,
                      result.attempts);
        }
      } else {
        auto t = drv.run_chain(std::move(chain));
        sched.run();
        elapsed = t.result();
      }
    }
    table.add_row(
        {units::format_size(size), units::format_time(elapsed),
         TablePrinter::cell(units::gbytes_per_second(total, elapsed), 3) +
             " GB/s",
         units::format_time(elapsed / opt.burst)});
  }
  table.print();

  if (!opt.fault_plan.empty()) {
    std::uint64_t dropped = 0, replays = 0;
    for (std::size_t k = 0; k < tca.cable_count(); ++k) {
      dropped += tca.cable(k).end_a().dropped_tlps() +
                 tca.cable(k).end_b().dropped_tlps();
      replays +=
          tca.cable(k).end_a().replays() + tca.cable(k).end_b().replays();
    }
    std::uint64_t error_irqs = 0;
    for (std::uint32_t n = 0; n < opt.nodes; ++n) {
      error_irqs += tca.chip(n).error_interrupts();
    }
    std::printf("fault-plan: %s\n", opt.fault_plan.to_string().c_str());
    std::printf(
        "recovery: failovers=%llu failbacks=%llu dropped_tlps=%llu "
        "replays=%llu error_irqs=%llu watchdog_timeouts=%llu retries=%llu\n",
        static_cast<unsigned long long>(tca.failovers()),
        static_cast<unsigned long long>(tca.failbacks()),
        static_cast<unsigned long long>(dropped),
        static_cast<unsigned long long>(replays),
        static_cast<unsigned long long>(error_irqs),
        static_cast<unsigned long long>(drv.watchdog_timeouts()),
        static_cast<unsigned long long>(drv.chain_retries()));
  }

  if (opt.stats || !opt.stats_path.empty()) {
    obs::MetricRegistry reg;
    tca.export_metrics(reg);
    if (Trace::instance().enabled()) reg.emit_trace_counters(sched.now());
    if (!opt.stats_path.empty()) {
      const Status st = reg.write_json(opt.stats_path);
      if (!st.is_ok()) {
        std::fprintf(stderr, "stats: %s\n", st.to_string().c_str());
        return 1;
      }
      std::printf("stats: %zu metrics -> %s\n", reg.size(),
                  opt.stats_path.c_str());
    }
    if (opt.stats) {
      std::printf("\n%s", reg.to_json().c_str());
    }
  }

  if (!opt.trace_path.empty()) {
    const Status st = Trace::instance().write_json(opt.trace_path);
    if (!st.is_ok()) {
      std::fprintf(stderr, "trace: %s\n", st.to_string().c_str());
      return 1;
    }
    std::printf("trace: %zu events -> %s (open in chrome://tracing)\n",
                Trace::instance().event_count(), opt.trace_path.c_str());
  }
  return 0;
}
