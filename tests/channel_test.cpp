// Multi-channel DMAC tests: independent per-channel state, concurrent
// chains from one driver, tag-window isolation, the auto-acquire path, and
// the register banks.
#include <gtest/gtest.h>

#include "api/tca.h"
#include "common/rng.h"
#include "fabric/sub_cluster.h"
#include "peach2/registers.h"

namespace tca::driver {
namespace {

using fabric::SubCluster;
using fabric::SubClusterConfig;
using peach2::DmaDescriptor;
using peach2::DmaDirection;
namespace regs = peach2::regs;
using units::us;

struct Rig {
  Rig(std::uint32_t nodes = 2)
      : cluster(sched, SubClusterConfig{
                           .spec = fabric::TopologySpec::ring(nodes),
                           .node_config = {.gpu_count = 2,
                                           .host_backing_bytes = 16 << 20,
                                           .gpu_backing_bytes = 4 << 20}}) {
    Rng rng(9);
    std::vector<std::byte> fill(cluster.chip(0).internal_ram().size());
    rng.fill(fill);
    cluster.chip(0).internal_ram().write(0, fill);
  }
  sim::Scheduler sched;
  SubCluster cluster;
};

TEST(Channels, ChipExposesFourIndependentEngines) {
  Rig rig;
  for (int ch = 0; ch < calib::kDmaChannels; ++ch) {
    EXPECT_EQ(rig.cluster.chip(0).dmac(ch).channel(), ch);
    EXPECT_FALSE(rig.cluster.chip(0).dmac(ch).busy());
  }
}

TEST(Channels, ConcurrentChainsOnDistinctChannels) {
  Rig rig;
  Peach2Driver& drv = rig.cluster.driver(0);
  auto& tca = rig.cluster;

  // Four chains, one per channel, all remote writes to distinct regions.
  std::vector<sim::Task<TimePs>> tasks;
  for (int ch = 0; ch < calib::kDmaChannels; ++ch) {
    std::vector<DmaDescriptor> chain{DmaDescriptor{
        .src = drv.internal_global(static_cast<std::uint64_t>(ch) << 16),
        .dst = tca.global_host(1, static_cast<std::uint64_t>(ch) << 16),
        .length = 32 << 10,
        .direction = DmaDirection::kWrite}};
    tasks.push_back(drv.run_chain(std::move(chain), ch));
  }
  rig.sched.run();

  std::vector<std::byte> got(32 << 10), want(32 << 10);
  for (int ch = 0; ch < calib::kDmaChannels; ++ch) {
    ASSERT_TRUE(tasks[static_cast<std::size_t>(ch)].done());
    tca.node(1).cpu().read_host(static_cast<std::uint64_t>(ch) << 16, got);
    tca.chip(0).internal_ram().read(static_cast<std::uint64_t>(ch) << 16,
                                    want);
    EXPECT_EQ(got, want) << "channel " << ch;
    EXPECT_EQ(tca.chip(0).dmac(ch).chains_completed(), 1u);
  }
}

TEST(Channels, ConcurrentChainsOverlapInTime) {
  // One big chain alone vs two big chains concurrently: the concurrent run
  // must finish in far less than 2x the solo time (they share the wire but
  // overlap fixed costs and pipeline stages).
  auto run = [](int chains) {
    Rig rig;
    Peach2Driver& drv = rig.cluster.driver(0);
    std::vector<sim::Task<TimePs>> tasks;
    for (int c = 0; c < chains; ++c) {
      std::vector<DmaDescriptor> chain;
      for (std::uint32_t i = 0; i < 64; ++i) {
        chain.push_back(
            {.src = drv.internal_global(
                 (static_cast<std::uint64_t>(c) * 64 + i) * 4096),
             .dst = rig.cluster.global_host(
                 1, (static_cast<std::uint64_t>(c) * 64 + i) * 4096),
             .length = 4096,
             .direction = DmaDirection::kWrite});
      }
      tasks.push_back(drv.run_chain(std::move(chain), c));
    }
    rig.sched.run();
    return rig.sched.now();
  };
  const TimePs solo = run(1);
  const TimePs dual = run(2);
  EXPECT_LT(dual, solo * 21 / 10);  // wire-shared but overlapped
  EXPECT_GT(dual, solo);            // they do share the one x8 link
}

TEST(Channels, AutoAcquireRunsMoreChainsThanChannels) {
  Rig rig;
  Peach2Driver& drv = rig.cluster.driver(0);
  int completed = 0;
  for (int i = 0; i < 10; ++i) {
    sim::spawn([](Peach2Driver& d, fabric::SubCluster& tca, int idx,
                  int& done) -> sim::Task<> {
      std::vector<DmaDescriptor> chain{DmaDescriptor{
          .src = d.internal_global(static_cast<std::uint64_t>(idx) * 8192),
          .dst = tca.global_host(1, static_cast<std::uint64_t>(idx) * 8192),
          .length = 8192,
          .direction = DmaDirection::kWrite}};
      co_await d.run_chain_auto(std::move(chain));
      ++done;
    }(drv, rig.cluster, i, completed));
  }
  rig.sched.run();
  EXPECT_EQ(completed, 10);

  std::vector<std::byte> got(8192), want(8192);
  for (int i = 0; i < 10; ++i) {
    rig.cluster.node(1).cpu().read_host(static_cast<std::uint64_t>(i) * 8192,
                                        got);
    rig.cluster.chip(0).internal_ram().read(
        static_cast<std::uint64_t>(i) * 8192, want);
    EXPECT_EQ(got, want) << "chain " << i;
  }
}

TEST(Channels, RegisterBanksAreIndependent) {
  Rig rig;
  auto& chip = rig.cluster.chip(0);
  chip.write_register(regs::dma_bank(2, regs::kDmaBankTableAddr), 0x1111);
  chip.write_register(regs::dma_bank(3, regs::kDmaBankWriteback), 0x2222);
  EXPECT_EQ(chip.read_register(regs::dma_bank(3, regs::kDmaBankWriteback)),
            0x2222u);
  EXPECT_EQ(chip.read_register(regs::dma_bank(2, regs::kDmaBankWriteback)),
            0u);
  // Status registers are per channel.
  EXPECT_EQ(chip.read_register(regs::dma_bank(1, regs::kDmaBankStatus)), 0u);
}

TEST(Channels, ErrorOnOneChannelDoesNotPoisonOthers) {
  Rig rig;
  Peach2Driver& drv = rig.cluster.driver(0);
  // Channel 1: invalid chain (remote read).
  auto bad = drv.run_chain(
      {DmaDescriptor{.src = rig.cluster.global_host(1, 0),
                     .dst = drv.internal_global(0),
                     .length = 64,
                     .direction = DmaDirection::kRead}},
      1);
  rig.sched.run();
  EXPECT_NE(rig.cluster.chip(0).dmac(1).status() & regs::kDmaStatusError, 0u);
  EXPECT_EQ(rig.cluster.chip(0).dmac(0).status() & regs::kDmaStatusError, 0u);

  // Channel 0 still works; checked API reports success.
  auto ok = drv.run_chain_checked(
      {DmaDescriptor{.src = drv.internal_global(0),
                     .dst = rig.cluster.global_host(1, 0),
                     .length = 4096,
                     .direction = DmaDirection::kWrite}});
  rig.sched.run();
  EXPECT_TRUE(ok.result().is_ok());
}

TEST(Channels, RemoteAcksRouteToTheOwningChannel) {
  // Two channels issue remote host writes concurrently: each delivery
  // notification must come home to its own channel (tag-window dispatch).
  Rig rig;
  Peach2Driver& drv = rig.cluster.driver(0);
  auto a = drv.run_chain(
      {DmaDescriptor{.src = drv.internal_global(0),
                     .dst = rig.cluster.global_host(1, 0),
                     .length = 4096,
                     .direction = DmaDirection::kWrite}},
      0);
  auto b = drv.run_chain(
      {DmaDescriptor{.src = drv.internal_global(8192),
                     .dst = rig.cluster.global_host(1, 8192),
                     .length = 4096,
                     .direction = DmaDirection::kWrite}},
      1);
  rig.sched.run();
  ASSERT_TRUE(a.done() && b.done());
  EXPECT_EQ(rig.cluster.chip(0).mailbox_count(), 2u);
  EXPECT_EQ(rig.cluster.chip(0).dmac(0).errors(), 0u);
  EXPECT_EQ(rig.cluster.chip(0).dmac(1).errors(), 0u);
}

TEST(Channels, DirectStartBypassesDriverAndTimesLikeRegisters) {
  // The DMAC's start() (test/bench backdoor) must behave like the MMIO
  // doorbell path: same status transitions, comparable elapsed time.
  Rig rig;
  auto& chip = rig.cluster.chip(0);
  auto& tca = rig.cluster;

  const peach2::DmaDescriptor desc{
      .src = rig.cluster.driver(0).internal_global(0),
      .dst = tca.global_host(1, 0),
      .length = 4096,
      .direction = DmaDirection::kWrite};

  // Direct path on channel 2.
  const TimePs t0 = rig.sched.now();
  ASSERT_TRUE(chip.dmac(2).start({desc}).is_ok());
  EXPECT_TRUE(chip.dmac(2).busy());
  EXPECT_FALSE(chip.dmac(2).start({desc}).is_ok());  // busy rejected
  rig.sched.run();
  const TimePs direct = rig.sched.now() - t0;
  EXPECT_FALSE(chip.dmac(2).busy());
  EXPECT_NE(chip.dmac(2).status() & regs::kDmaStatusDone, 0u);

  // Register path on channel 0.
  auto t = rig.cluster.driver(0).run_chain({desc}, 0);
  rig.sched.run();
  const TimePs mmio = t.result();
  // Same mechanism, modest bookkeeping differences only.
  EXPECT_NEAR(static_cast<double>(direct), static_cast<double>(mmio),
              static_cast<double>(units::us(1)));
}

TEST(Channels, ConcurrentMemcpyPeerFromOneNodeViaApi) {
  // Before multi-channel support, two in-flight memcpy_peer calls from one
  // node tripped the single-engine assertion; now they overlap on separate
  // channels.
  sim::Scheduler sched;
  api::Runtime rt(sched,
                  api::TcaConfig{.spec = fabric::TopologySpec::ring(2),
                                 .node_config = {.gpu_count = 2,
                                                 .host_backing_bytes =
                                                     16ull << 20,
                                                 .gpu_backing_bytes =
                                                     4ull << 20}});
  auto src = rt.alloc_host(0, 256 << 10).value();
  auto dst = rt.alloc_host(1, 256 << 10).value();
  std::vector<std::byte> a(64 << 10, std::byte{0xAA});
  std::vector<std::byte> b(64 << 10, std::byte{0xBB});
  rt.write(src, 0, a);
  rt.write(src, 128 << 10, b);

  int done = 0;
  for (int i = 0; i < 2; ++i) {
    sim::spawn([](api::Runtime& r, api::Buffer d, api::Buffer s,
                  std::uint64_t off, int& n) -> sim::Task<> {
      const Status st = co_await r.memcpy_peer(d, off, s, off, 64 << 10);
      EXPECT_TRUE(st.is_ok()) << st.to_string();
      ++n;
    }(rt, dst, src, static_cast<std::uint64_t>(i) * (128 << 10), done));
  }
  sched.run();
  EXPECT_EQ(done, 2);
  std::vector<std::byte> out(64 << 10);
  rt.read(dst, 0, out);
  EXPECT_EQ(out, a);
  rt.read(dst, 128 << 10, out);
  EXPECT_EQ(out, b);
}

}  // namespace
}  // namespace tca::driver
