// Tests for the TopologySpec value type and the torus generalization of
// the sub-cluster fabric: per-topology validation, the CLI parse grammar,
// dimension-order routing walked against the actual routing registers, the
// 1D-torus == ring degenerate-case gate (byte-identical traces), and the
// per-dimension torus failover acceptance pair.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/trace.h"
#include "fabric/sub_cluster.h"
#include "fabric/topology.h"
#include "peach2/nios.h"

namespace tca::fabric {
namespace {

using peach2::DmaDescriptor;
using peach2::DmaDirection;
using units::us;

struct TraceGuard {
  TraceGuard() {
    Trace::instance().clear();
    Trace::instance().enable();
  }
  ~TraceGuard() {
    Trace::instance().disable();
    Trace::instance().clear();
  }
};

/// Small per-node backing stores: mem::Dram allocates eagerly, so a 16-node
/// torus with the default sizes would reserve real gigabytes.
SubClusterConfig small_cluster(TopologySpec spec) {
  return SubClusterConfig{
      .spec = spec,
      .node_config = {.gpu_count = 0,
                      .host_backing_bytes = 4 << 20,
                      .gpu_backing_bytes = 1 << 20},
  };
}

TEST(TopologySpec, ValidatePerTopologyRules) {
  EXPECT_TRUE(TopologySpec::ring(8).validate().is_ok());
  EXPECT_FALSE(TopologySpec::ring(1).validate().is_ok());
  EXPECT_FALSE(TopologySpec::ring(6).validate().is_ok());   // not 2^k
  EXPECT_FALSE(TopologySpec::ring(32).validate().is_ok());  // > 16
  EXPECT_TRUE(TopologySpec::dual_ring(8).validate().is_ok());
  EXPECT_FALSE(TopologySpec::dual_ring(2).validate().is_ok());

  EXPECT_TRUE(TopologySpec::torus({4, 4}).validate().is_ok());
  EXPECT_TRUE(TopologySpec::torus({4, 4, 4}).validate().is_ok());
  EXPECT_TRUE(TopologySpec::torus({8, 8}).validate().is_ok());
  // The widest 2D torus that still fits the 64-entry register file.
  EXPECT_TRUE(TopologySpec::torus({32, 32}).validate().is_ok());
  EXPECT_FALSE(TopologySpec::torus({4, 6}).validate().is_ok());  // not 2^k
}

TEST(TopologySpec, ValidateErrorsNameTheViolatedDimension) {
  const Status undersized = TopologySpec::torus({4, 1}).validate();
  ASSERT_FALSE(undersized.is_ok());
  EXPECT_NE(undersized.to_string().find("dimension y"), std::string::npos)
      << undersized.to_string();

  // 127 + 1 route entries per node overflow the 64-entry register file;
  // the message points at the widest dimension (x).
  const Status wide = TopologySpec::torus({128, 2}).validate();
  ASSERT_FALSE(wide.is_ok());
  EXPECT_NE(wide.to_string().find("dimension x"), std::string::npos)
      << wide.to_string();
}

TEST(TopologySpec, ParseToStringRoundTrip) {
  for (const char* text : {"ring", "dual-ring", "torus:4x4", "torus:8",
                           "torus:4x2x2", "torus:32x32"}) {
    auto spec = TopologySpec::parse(text);
    ASSERT_TRUE(spec.is_ok()) << text;
    EXPECT_EQ(spec.value().to_string(), text);
  }
  EXPECT_FALSE(TopologySpec::parse("mesh").is_ok());
  EXPECT_FALSE(TopologySpec::parse("torus:").is_ok());
  EXPECT_FALSE(TopologySpec::parse("torus:4x").is_ok());
  EXPECT_FALSE(TopologySpec::parse("torus:4y4").is_ok());
  EXPECT_FALSE(TopologySpec::parse("torus:2x2x2x2").is_ok());  // > 3 dims
}

TEST(TopologySpec, CoordsAndHops) {
  const TopologySpec t = TopologySpec::torus({4, 2, 2});
  EXPECT_EQ(t.node_count(), 16u);
  EXPECT_EQ(t.node_at(t.coords(13)), 13u);
  // 13 = x1 y1 z1; 0 = origin: 1 + 1 + 1 wrap-free hops.
  EXPECT_EQ(t.hops(0, 13), 3u);
  // x distance uses the ring wrap: 0 -> 3 is one hop backwards.
  EXPECT_EQ(t.hops(0, 3), 1u);
  EXPECT_EQ(t.hops(5, 5), 0u);
}

TEST(TopologySpec, RingOrderIsHamiltonianAndUnitStride) {
  for (const TopologySpec& t :
       {TopologySpec::torus({4, 4}), TopologySpec::torus({4, 2, 2}),
        TopologySpec::torus({8, 8})}) {
    const std::vector<std::uint32_t> order = t.ring_order();
    ASSERT_EQ(order.size(), t.node_count());
    std::set<std::uint32_t> seen(order.begin(), order.end());
    EXPECT_EQ(seen.size(), t.node_count());  // a permutation
    // Consecutive positions (including the wrap back to position 0) are
    // fabric neighbors: every coll ring step is a single cable.
    for (std::size_t p = 0; p < order.size(); ++p) {
      const std::uint32_t a = order[p];
      const std::uint32_t b = order[(p + 1) % order.size()];
      EXPECT_EQ(t.hops(a, b), 1u) << t.to_string() << " pos " << p;
    }
  }
  // Identity on the paper's topologies, so ring schedules are unchanged.
  const std::vector<std::uint32_t> ring = TopologySpec::ring(8).ring_order();
  for (std::uint32_t r = 0; r < 8; ++r) EXPECT_EQ(ring[r], r);
}

/// Walks a packet for `to` through the actual routing registers starting at
/// `from` and returns the visited node sequence (excluding `from`).
std::vector<std::uint32_t> walk_route(SubCluster& tca,
                                      const TopologySpec& topo,
                                      std::uint32_t from, std::uint32_t to) {
  std::vector<std::uint32_t> path;
  std::uint32_t cur = from;
  while (cur != to) {
    const auto port = tca.chip(cur).routing().lookup(tca.layout().slice_base(to));
    if (!port.has_value()) {
      ADD_FAILURE() << "no route " << cur << " -> " << to;
      return path;
    }
    auto c = topo.coords(cur);
    bool stepped = false;
    for (std::uint32_t d = 0; d < topo.dims(); ++d) {
      const std::uint32_t e = topo.extent(d);
      if (*port == peach2::torus_plus_port(d)) {
        c[d] = (c[d] + 1) % e;
        stepped = true;
        break;
      }
      if (*port == peach2::torus_minus_port(d)) {
        c[d] = (c[d] + e - 1) % e;
        stepped = true;
        break;
      }
    }
    if (!stepped) {
      ADD_FAILURE() << "unexpected port " << to_string(*port);
      return path;
    }
    cur = topo.node_at(c);
    path.push_back(cur);
    if (path.size() > topo.node_count()) {
      ADD_FAILURE() << "route " << from << " -> " << to << " does not land";
      return path;
    }
  }
  return path;
}

class DimensionOrderRouting
    : public ::testing::TestWithParam<std::vector<std::uint32_t>> {};

TEST_P(DimensionOrderRouting, PathsAreMinimalAndLoopFree) {
  const TopologySpec topo = TopologySpec::torus(GetParam());
  sim::Scheduler sched;
  SubCluster tca(sched, small_cluster(topo));
  for (std::uint32_t from = 0; from < topo.node_count(); ++from) {
    for (std::uint32_t to = 0; to < topo.node_count(); ++to) {
      if (from == to) continue;
      const auto path = walk_route(tca, topo, from, to);
      // Path length equals the sum of per-dimension ring distances — the
      // dimension-order minimum — and hops() agrees.
      std::uint32_t expect = 0;
      for (std::uint32_t d = 0; d < topo.dims(); ++d) {
        expect += topo.ring_distance(d, topo.coords(from)[d],
                                     topo.coords(to)[d]);
      }
      EXPECT_EQ(path.size(), expect) << from << " -> " << to;
      EXPECT_EQ(topo.hops(from, to), expect);
      // No node repeats (in particular no livelock cycles).
      std::set<std::uint32_t> seen(path.begin(), path.end());
      EXPECT_EQ(seen.size(), path.size()) << from << " -> " << to;
      EXPECT_EQ(seen.count(from), 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Tori, DimensionOrderRouting,
                         ::testing::Values(std::vector<std::uint32_t>{4, 4},
                                           std::vector<std::uint32_t>{4, 2, 2},
                                           std::vector<std::uint32_t>{8}));

/// Drives one DMA chain (node 0 -> node 2 host) and returns the full chrome
/// trace JSON, our strongest equality witness: it captures cable names,
/// per-TLP routing, timestamps, and shard placement.
std::string trace_of(const TopologySpec& spec) {
  TraceGuard guard;
  sim::Scheduler sched;
  SubCluster tca(sched, small_cluster(spec));
  std::vector<std::byte> data(8 << 10);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i * 31 & 0xff);
  }
  tca.chip(0).internal_ram().write(0, data);
  auto t = tca.driver(0).run_chain(
      {DmaDescriptor{.src = tca.driver(0).internal_global(0),
                     .dst = tca.global_host(2, 0x4000),
                     .length = 8 << 10,
                     .direction = DmaDirection::kWrite}});
  sched.run();
  EXPECT_TRUE(t.done());
  return Trace::instance().to_json();
}

TEST(TorusDegenerateCase, OneDimensionalTorusMatchesRingByteForByte) {
  // The acceptance gate: torus:4 must be the paper's 4-node ring — same
  // cables, same routes, same event timeline, byte-identical trace.
  const std::string ring = trace_of(TopologySpec::ring(4));
  const std::string torus1d = trace_of(TopologySpec::torus({4}));
  ASSERT_FALSE(ring.empty());
  EXPECT_EQ(ring, torus1d);
}

TEST(TorusDegenerateCase, RoutingRegistersMatchRing) {
  sim::Scheduler s1, s2;
  SubCluster ring(s1, small_cluster(TopologySpec::ring(8)));
  SubCluster torus(s2, small_cluster(TopologySpec::torus({8})));
  for (std::uint32_t n = 0; n < 8; ++n) {
    const auto& a = ring.chip(n).routing();
    const auto& b = torus.chip(n).routing();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a.entry(i).mask, b.entry(i).mask);
      EXPECT_EQ(a.entry(i).lower, b.entry(i).lower);
      EXPECT_EQ(a.entry(i).upper, b.entry(i).upper);
      EXPECT_EQ(a.entry(i).port, b.entry(i).port);
    }
  }
}

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(TorusDegenerateCase, DeprecatedRingAccessorsDelegate) {
  sim::Scheduler sched;
  SubCluster tca(sched, small_cluster(TopologySpec::ring(8)));
  for (std::uint32_t to = 1; to < 8; ++to) {
    EXPECT_EQ(tca.ring_hops(0, to), tca.hops(0, to));
  }
  EXPECT_EQ(tca.ring_cable_usable(0), tca.cable_usable(0));
}
#pragma GCC diagnostic pop

// --- Torus failover acceptance pair (mirrors the PR 3 ring scenario) --------

TEST(TorusFailover, ChainCrossingKilledCableReroutesAndCompletes) {
  sim::Scheduler sched;
  auto config = small_cluster(TopologySpec::torus({4, 4}));
  // Cable 0 is row 0's x-cable between nodes 0 and 1; the 0 -> 1 transfer
  // rides it until the cut, then the NIOS flips row 0's +x routes to -x
  // (0 -> 3 -> 2 -> 1, still inside dimension x).
  config.fault_plan.cut(0, us(5));
  SubCluster tca(sched, config);

  std::vector<std::byte> data(64 << 10);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i * 13 & 0xff);
  }
  tca.chip(0).internal_ram().write(0, data);
  auto t = tca.driver(0).run_chain_reliable(
      {DmaDescriptor{.src = tca.driver(0).internal_global(0),
                     .dst = tca.global_host(1, 0x2000),
                     .length = 64 << 10,
                     .direction = DmaDirection::kWrite}},
      driver::RetryPolicy{.max_attempts = 3, .timeout_ps = us(200)});
  sched.run();
  ASSERT_TRUE(t.done());

  const auto result = t.result();
  EXPECT_TRUE(result.status.is_ok()) << result.status.to_string();
  EXPECT_FALSE(tca.cable_usable(0));
  EXPECT_GE(tca.failovers(), 1u);
  // The reroute stayed within the x dimension: node 0 now sends its +1
  // x-neighbor the long way around its own row ring.
  const auto port = tca.chip(0).routing().lookup(tca.layout().slice_base(1));
  ASSERT_TRUE(port.has_value());
  EXPECT_EQ(*port, peach2::PortId::kWest);

  std::vector<std::byte> out(64 << 10);
  tca.node(1).cpu().read_host(0x2000, out);
  EXPECT_EQ(out, data);
}

TEST(TorusFailover, WithoutFailoverTheWatchdogSurfacesTimedOut) {
  sim::Scheduler sched;
  auto config = small_cluster(TopologySpec::torus({4, 4}));
  config.fault_plan.cut(0, us(5));
  config.enable_failover = false;
  SubCluster tca(sched, config);

  std::vector<std::byte> data(64 << 10);
  tca.chip(0).internal_ram().write(0, data);
  auto t = tca.driver(0).run_chain_reliable(
      {DmaDescriptor{.src = tca.driver(0).internal_global(0),
                     .dst = tca.global_host(1, 0x2000),
                     .length = 64 << 10,
                     .direction = DmaDirection::kWrite}},
      driver::RetryPolicy{.max_attempts = 2, .timeout_ps = us(200)});
  sched.run();
  ASSERT_TRUE(t.done());

  // The clean failure mode: the simulation ran dry (no hang) and the
  // chain reports kTimedOut after exhausting its attempts.
  const auto result = t.result();
  EXPECT_EQ(result.status.code(), ErrorCode::kTimedOut);
  EXPECT_EQ(result.attempts, 2u);
  EXPECT_EQ(tca.failovers(), 0u);
}

// --- Overlapping fault windows ----------------------------------------------

TEST(OverlappingFaults, RetrainWhileSecondSameDimCableDown) {
  sim::Scheduler sched;
  auto config = small_cluster(TopologySpec::torus({4, 4}));
  // Row 0's x-ring (cables 0..3): cable 0 dies, the reroute goes -x, then
  // cable 1 dies inside the detour (row 0 is now partitioned around node
  // 1), and cable 0 retrains while cable 1 is still down. Every window
  // boundary forces a route rewrite; the registers must track each one
  // and end consistent with the final link state.
  config.fault_plan.cut(0, us(5)).cut(1, us(20)).up(0, us(40));
  SubCluster tca(sched, config);

  std::vector<std::byte> data(64 << 10);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i * 29 & 0xff);
  }
  tca.chip(0).internal_ram().write(0, data);
  // Issued into the double-fault overlap: both arcs of row 0 are dirty
  // until cable 0 retrains, so completion requires riding out the overlap.
  auto t = tca.driver(0).run_chain_reliable(
      {DmaDescriptor{.src = tca.driver(0).internal_global(0),
                     .dst = tca.global_host(1, 0x2000),
                     .length = 64 << 10,
                     .direction = DmaDirection::kWrite}},
      driver::RetryPolicy{.max_attempts = 8, .timeout_ps = us(200)});
  sched.run();
  ASSERT_TRUE(t.done());
  EXPECT_TRUE(t.result().status.is_ok()) << t.result().status.to_string();

  // cable 0 down, cable 1 down (tie-break rewrites), cable 0 up again:
  // at least two distinct degradation rewrites and one restoration.
  EXPECT_GE(tca.failovers(), 2u);
  EXPECT_GE(tca.failbacks(), 1u);
  EXPECT_FALSE(tca.cable_usable(1));
  EXPECT_TRUE(tca.cable_usable(0));
  EXPECT_TRUE(tca.routes_consistent());
  // Final state: cable 1 (nodes 1-2) is the only fault. Node 0 reaches
  // node 1 the +x way; node 2 reaches node 1 the long way around row 0.
  const auto port01 = tca.chip(0).routing().lookup(tca.layout().slice_base(1));
  ASSERT_TRUE(port01.has_value());
  EXPECT_EQ(*port01, peach2::PortId::kEast);
  const auto port21 = tca.chip(2).routing().lookup(tca.layout().slice_base(1));
  ASSERT_TRUE(port21.has_value());
  EXPECT_EQ(*port21, peach2::PortId::kEast);

  std::vector<std::byte> out(64 << 10);
  tca.node(1).cpu().read_host(0x2000, out);
  EXPECT_EQ(out, data);
}

TEST(OverlappingFaults, FlapsShorterThanServiceDelayNeverReroute) {
  sim::Scheduler sched;
  auto config = small_cluster(TopologySpec::torus({4, 4}));
  // Two back-to-back flaps, each far shorter than the NIOS 2 us service
  // delay: by the time the management processor services either down
  // interrupt the link is already retrained, so the transition is
  // superseded — no failover, no failback, no route rewrite, no chain
  // quiesce. The link layer's replay buffer absorbs the blips and the
  // in-flight chain completes with nothing but a delay.
  const TimePs service = peach2::NiosController::kServiceDelay;
  ASSERT_LT(units::ns(300) * 2 + units::ns(200), service);
  config.fault_plan.flap(0, us(5), units::ns(300))
      .flap(0, us(5) + units::ns(600), units::ns(200));
  SubCluster tca(sched, config);

  std::vector<std::byte> data(64 << 10);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i * 31 & 0xff);
  }
  tca.chip(0).internal_ram().write(0, data);
  auto t = tca.driver(0).run_chain(
      {DmaDescriptor{.src = tca.driver(0).internal_global(0),
                     .dst = tca.global_host(1, 0x2000),
                     .length = 64 << 10,
                     .direction = DmaDirection::kWrite}});
  sched.run();
  ASSERT_TRUE(t.done());

  EXPECT_EQ(tca.failovers(), 0u);
  EXPECT_EQ(tca.failbacks(), 0u);
  EXPECT_EQ(tca.chain_quiesces(), 0u);
  EXPECT_EQ(tca.abandoned_tlps(), 0u);
  EXPECT_TRUE(tca.cable_usable(0));
  EXPECT_TRUE(tca.routes_consistent());
  // The surprise-downs did knock TLPs off the wire; replay recovered them.
  EXPECT_GT(tca.cable(0).end_a().dropped_tlps() +
                tca.cable(0).end_b().dropped_tlps(),
            0u);

  std::vector<std::byte> out(64 << 10);
  tca.node(1).cpu().read_host(0x2000, out);
  EXPECT_EQ(out, data);
}

}  // namespace
}  // namespace tca::fabric
