// Tests for the observability layer: MetricRegistry semantics, JSON
// round-trip through MetricsSnapshot, and a system-level conservation check
// that the per-link byte counters exactly account for payload + TLP
// overhead on a 4-node ring transfer.
#include <gtest/gtest.h>

#include "api/tca.h"
#include "obs/metrics.h"

namespace tca::obs {
namespace {

TEST(MetricRegistry, CounterFindOrCreateAccumulates) {
  MetricRegistry reg;
  reg.counter("node0.peach2.dmac.ch2.descriptors").add();
  reg.counter("node0.peach2.dmac.ch2.descriptors").add(4);
  EXPECT_EQ(reg.counter_value("node0.peach2.dmac.ch2.descriptors"), 5u);
  EXPECT_TRUE(reg.has_counter("node0.peach2.dmac.ch2.descriptors"));
  EXPECT_FALSE(reg.has_counter("node0.peach2.dmac.ch3.descriptors"));
  EXPECT_EQ(reg.counter_value("absent"), 0u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricRegistry, ReferencesAreStableAcrossInsertions) {
  MetricRegistry reg;
  Counter& a = reg.counter("a");
  // Force rebalancing-ish churn; std::map nodes must not move.
  for (int i = 0; i < 256; ++i) {
    reg.counter("n" + std::to_string(i)).add();
  }
  a.add(7);
  EXPECT_EQ(reg.counter_value("a"), 7u);
}

TEST(MetricRegistry, GaugeKeepsLatestValue) {
  MetricRegistry reg;
  reg.gauge("fabric.node_count").set(4);
  reg.gauge("fabric.node_count").set(8);
  EXPECT_DOUBLE_EQ(reg.gauge_value("fabric.node_count"), 8.0);
}

TEST(MetricRegistry, HistogramMomentsAndPercentiles) {
  MetricRegistry reg;
  Histogram& h = reg.histogram("lat");
  for (int i = 1; i <= 100; ++i) h.record(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_NEAR(h.percentile(50), 50.0, 1.0);
  EXPECT_NEAR(h.percentile(95), 95.0, 1.0);
  EXPECT_NEAR(h.percentile(99), 99.0, 1.0);
  EXPECT_TRUE(reg.has_histogram("lat"));
}

TEST(MetricRegistry, ResetZeroesButKeepsNames) {
  MetricRegistry reg;
  reg.counter("c").add(9);
  reg.gauge("g").set(3.5);
  reg.histogram("h").record(42);
  const std::size_t before = reg.size();
  reg.reset();
  EXPECT_EQ(reg.size(), before);
  EXPECT_TRUE(reg.has_counter("c"));
  EXPECT_EQ(reg.counter_value("c"), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge_value("g"), 0.0);
  EXPECT_EQ(reg.histogram("h").count(), 0u);

  reg.clear();
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_FALSE(reg.has_counter("c"));
}

TEST(MetricRegistry, JsonRoundTripsThroughSnapshot) {
  MetricRegistry reg;
  reg.counter("pcie.cable.0-1.fwd.wire_bytes").set(8960);
  reg.counter("fabric.tlps").set(32);
  reg.gauge("fabric.node_count").set(4);
  Histogram& h = reg.histogram("api.memcpy.latency_ps");
  for (int i = 1; i <= 10; ++i) h.record(i * 1000);

  const std::string json = reg.to_json();
  auto parsed = MetricsSnapshot::from_json(json);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const MetricsSnapshot& snap = parsed.value();
  EXPECT_EQ(snap.counters.at("pcie.cable.0-1.fwd.wire_bytes"), 8960u);
  EXPECT_EQ(snap.counters.at("fabric.tlps"), 32u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("fabric.node_count"), 4.0);
  const HistogramSummary& hs = snap.histograms.at("api.memcpy.latency_ps");
  EXPECT_EQ(hs.count, 10u);
  EXPECT_DOUBLE_EQ(hs.mean, 5500.0);
  EXPECT_DOUBLE_EQ(hs.min, 1000.0);
  EXPECT_DOUBLE_EQ(hs.max, 10000.0);

  // A snapshot of the same registry agrees with the parsed document.
  const MetricsSnapshot direct = reg.snapshot();
  EXPECT_EQ(direct.counters, snap.counters);
  EXPECT_EQ(direct.gauges, snap.gauges);
}

TEST(MetricsSnapshot, FromJsonRejectsMalformedDocuments) {
  EXPECT_FALSE(MetricsSnapshot::from_json("").is_ok());
  EXPECT_FALSE(MetricsSnapshot::from_json("not json").is_ok());
  EXPECT_FALSE(MetricsSnapshot::from_json("{\"counters\": {}}").is_ok());
  EXPECT_FALSE(
      MetricsSnapshot::from_json(
          "{\"meta\": {\"schema\": \"other-v9\"}, \"counters\": {}}")
          .is_ok());
  // Minimal valid document.
  auto ok = MetricsSnapshot::from_json(
      "{\"meta\": {\"schema\": \"tca-metrics-v1\"}, \"counters\": {},"
      " \"gauges\": {}, \"histograms\": {}}");
  EXPECT_TRUE(ok.is_ok()) << ok.status().to_string();
}

TEST(SamplingGate, DefaultsOffAndToggles) {
  EXPECT_FALSE(sampling_enabled());
  set_sampling_enabled(true);
  EXPECT_TRUE(sampling_enabled());
  set_sampling_enabled(false);
  EXPECT_FALSE(sampling_enabled());
}

// ---------------------------------------------------------------------------
// System-level conservation: every byte injected at node 0 must show up,
// exactly accounted, on each cable it crosses and in the destination host.
// ---------------------------------------------------------------------------

class Conservation : public ::testing::Test {
 protected:
  static api::TcaConfig config() {
    return api::TcaConfig{
        .spec = fabric::TopologySpec::ring(4),
        .node_config = {.gpu_count = 2,
                        .host_backing_bytes = 8 << 20,
                        .gpu_backing_bytes = 4 << 20}};
  }
};

TEST_F(Conservation, RingTransferBytesAreExactlyAccounted) {
  sim::Scheduler sched;
  auto rt = api::Runtime::create(sched, config());
  ASSERT_TRUE(rt.is_ok());
  api::Runtime& tca = rt.value();

  constexpr std::uint64_t kBytes = 8192;  // > PIO threshold: DMA path
  auto src = tca.alloc_host(0, 64 << 10).value();
  auto dst = tca.alloc_host(2, 64 << 10).value();
  std::vector<std::byte> data(kBytes);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i * 7 + 1);
  }
  tca.write(src, 0, data);

  MetricRegistry before;
  tca.export_metrics(before);

  auto t = tca.memcpy_peer(dst, 0, src, 0, kBytes);
  sched.run();
  ASSERT_TRUE(t.result().is_ok()) << t.result().to_string();

  MetricRegistry after;
  tca.export_metrics(after);
  auto delta = [&](std::string_view name) {
    return after.counter_value(name) - before.counter_value(name);
  };

  // node0 -> node2 on a 4-ring: clockwise and counter-clockwise are tied
  // (2 hops each); the router breaks ties eastward, so the payload crosses
  // cables 0-1 and 1-2 in the forward direction.
  constexpr std::uint64_t kTlps =
      (kBytes + calib::kMaxPayloadBytes - 1) / calib::kMaxPayloadBytes;
  constexpr std::uint64_t kWire =
      kBytes + kTlps * calib::kTlpWithDataOverheadBytes;
  for (const char* cable : {"pcie.cable.0-1.fwd", "pcie.cable.1-2.fwd"}) {
    const std::string base(cable);
    EXPECT_EQ(delta(base + ".payload_bytes"), kBytes) << cable;
    EXPECT_EQ(delta(base + ".tlps"), kTlps) << cable;
    EXPECT_EQ(delta(base + ".wire_bytes"), kWire) << cable;
    EXPECT_EQ(delta(base + ".replays"), 0u) << cable;
  }
  // Nothing travelled back along the data path...
  EXPECT_EQ(delta("pcie.cable.0-1.rev.payload_bytes"), 0u);
  EXPECT_EQ(delta("pcie.cable.1-2.rev.payload_bytes"), 0u);
  // ...the PEARL ack returns the other way around the ring (2->3->0) as
  // header-only vendor messages: wire bytes but zero payload.
  EXPECT_GT(delta("pcie.cable.2-3.fwd.wire_bytes"), 0u);
  EXPECT_GT(delta("pcie.cable.3-0.fwd.wire_bytes"), 0u);
  EXPECT_EQ(delta("pcie.cable.2-3.fwd.payload_bytes"), 0u);
  EXPECT_EQ(delta("pcie.cable.3-0.fwd.payload_bytes"), 0u);

  // Fabric payload roll-up: the payload crossed exactly two cables.
  EXPECT_EQ(delta("fabric.payload_bytes"), 2 * kBytes);

  // Conservation at the endpoints: the destination host absorbed exactly
  // the bytes injected; the source host was read at least that much (the
  // descriptor fetch rides the same link).
  EXPECT_EQ(delta("node2.host.bytes_written"), kBytes);
  EXPECT_GE(delta("node0.host.bytes_read"), kBytes);
  EXPECT_EQ(delta("fabric.dma.bytes_written"), kBytes);
  EXPECT_EQ(delta("fabric.dma.errors"), 0u);
  EXPECT_EQ(delta("fabric.unroutable"), 0u);
}

TEST_F(Conservation, PioStoresBypassDmaCounters) {
  sim::Scheduler sched;
  auto rt = api::Runtime::create(sched, config());
  ASSERT_TRUE(rt.is_ok());
  api::Runtime& tca = rt.value();

  constexpr std::uint64_t kBytes = 256;  // <= PIO threshold
  auto src = tca.alloc_host(0, 4096).value();
  auto dst = tca.alloc_host(1, 4096).value();
  std::vector<std::byte> data(kBytes, std::byte{0x5a});
  tca.write(src, 0, data);

  MetricRegistry before;
  tca.export_metrics(before);
  auto t = tca.memcpy_peer(dst, 0, src, 0, kBytes);
  sched.run();
  ASSERT_TRUE(t.result().is_ok());
  MetricRegistry after;
  tca.export_metrics(after);
  auto delta = [&](std::string_view name) {
    return after.counter_value(name) - before.counter_value(name);
  };

  EXPECT_EQ(delta("node0.driver.pio_stores"), 1u);
  EXPECT_EQ(delta("node0.driver.pio_bytes"), kBytes);
  EXPECT_EQ(delta("fabric.dma.chains"), 0u);
  EXPECT_EQ(delta("pcie.cable.0-1.fwd.payload_bytes"), kBytes);
  EXPECT_EQ(delta("node1.host.bytes_written"), kBytes);
}

}  // namespace
}  // namespace tca::obs
