// Tests for the compute-node substrate: root-complex routing, host memory
// read/write semantics, CPU MMIO agent, GPU attachment, and the QPI
// peer-to-peer throttling the paper reports.
#include <gtest/gtest.h>

#include "calib/calibration.h"
#include "node/compute_node.h"
#include "sim/scheduler.h"

namespace tca::node {
namespace {

using units::ns;
using units::us;

std::vector<std::byte> pattern(std::size_t n, std::uint8_t seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((seed + 13 * i) & 0xff);
  }
  return v;
}

NodeConfig small_config() {
  return NodeConfig{.gpu_count = 4,
                    .host_backing_bytes = 8 << 20,
                    .gpu_backing_bytes = 4 << 20};
}

TEST(ComputeNode, BuildsWithFourGpus) {
  sim::Scheduler sched;
  ComputeNode n(sched, 0, small_config());
  EXPECT_EQ(n.gpu_count(), 4);
  EXPECT_EQ(n.gpu(0).config().socket, 0);
  EXPECT_EQ(n.gpu(1).config().socket, 0);
  EXPECT_EQ(n.gpu(2).config().socket, 1);
  EXPECT_EQ(n.gpu(3).config().socket, 1);
  EXPECT_EQ(n.gpu(0).bar1_base(), layout::gpu_bar_base(0));
}

TEST(ComputeNode, DeviceIdsUniquePerNode) {
  sim::Scheduler sched;
  ComputeNode a(sched, 0, small_config());
  ComputeNode b(sched, 1, small_config());
  EXPECT_NE(a.gpu_device_id(0), b.gpu_device_id(0));
  EXPECT_NE(a.cpu_device_id(), a.gpu_device_id(0));
}

TEST(CpuAgent, HostMemoryDirectAccess) {
  sim::Scheduler sched;
  ComputeNode n(sched, 0, small_config());
  auto data = pattern(64);
  n.cpu().write_host(0x1000, data);
  std::vector<std::byte> out(64);
  n.cpu().read_host(0x1000, out);
  EXPECT_EQ(out, data);
}

TEST(CpuAgent, MmioStoreToGpuBarViaRootComplex) {
  sim::Scheduler sched;
  ComputeNode n(sched, 0, small_config());
  auto& gpu = n.gpu(0);
  auto token = gpu.get_p2p_token(0);
  ASSERT_TRUE(token.is_ok());
  ASSERT_TRUE(gpu.pin_pages(token.value(), 0, 1 << 16).is_ok());

  auto data = pattern(128, 5);
  auto t = n.cpu().mmio_store(layout::gpu_bar_base(0) + 0x40, data);
  sched.run();
  ASSERT_TRUE(t.done());

  std::vector<std::byte> out(128);
  gpu.peek(0x40, out);
  EXPECT_EQ(out, data);
}

TEST(CpuAgent, MmioLoadFromGpuBar) {
  sim::Scheduler sched;
  ComputeNode n(sched, 0, small_config());
  auto& gpu = n.gpu(1);
  auto token = gpu.get_p2p_token(0);
  ASSERT_TRUE(token.is_ok());
  ASSERT_TRUE(gpu.pin_pages(token.value(), 0, 1 << 16).is_ok());
  auto data = pattern(512, 9);
  gpu.poke(0x200, data);

  auto t = n.cpu().mmio_load(layout::gpu_bar_base(1) + 0x200, 512);
  sched.run();
  ASSERT_TRUE(t.done());
  EXPECT_EQ(t.result(), data);
}

TEST(CpuAgent, ConcurrentLoadsUseDistinctTags) {
  sim::Scheduler sched;
  ComputeNode n(sched, 0, small_config());
  auto& gpu = n.gpu(0);
  auto token = gpu.get_p2p_token(0);
  ASSERT_TRUE(token.is_ok());
  ASSERT_TRUE(gpu.pin_pages(token.value(), 0, 1 << 16).is_ok());
  auto d1 = pattern(64, 1), d2 = pattern(64, 2);
  gpu.poke(0, d1);
  gpu.poke(4096, d2);

  auto t1 = n.cpu().mmio_load(layout::gpu_bar_base(0), 64);
  auto t2 = n.cpu().mmio_load(layout::gpu_bar_base(0) + 4096, 64);
  sched.run();
  EXPECT_EQ(t1.result(), d1);
  EXPECT_EQ(t2.result(), d2);
}

TEST(CpuAgent, PollDetectsChange) {
  sim::Scheduler sched;
  ComputeNode n(sched, 0, small_config());
  std::uint32_t zero = 0;
  n.cpu().write_host(0x500, std::as_bytes(std::span(&zero, 1)));

  auto poll = n.cpu().poll_host_until_change(0x500, 0);
  // Flip the value at 10 us via a scheduled write.
  sched.schedule_at(us(10), [&n] {
    std::uint32_t one = 1;
    n.cpu().write_host(0x500, std::as_bytes(std::span(&one, 1)));
  });
  sched.run();
  ASSERT_TRUE(poll.done());
  const TimePs detected = poll.result();
  EXPECT_GE(detected, us(10));
  EXPECT_LE(detected, us(10) + calib::kCpuPollIterationPs +
                           calib::kCpuPollDetectPs);
}

TEST(RootComplex, UnroutableTlpCounted) {
  sim::Scheduler sched;
  ComputeNode n(sched, 0, small_config());
  auto data = pattern(8);
  // Address mapped nowhere (beyond all BARs): crosses QPI once, then drops.
  auto t = n.cpu().mmio_store(0x70'0000'0000ull, data);
  sched.run();
  EXPECT_EQ(n.socket(1).unroutable_tlps(), 1u);
}

TEST(RootComplex, CrossSocketWriteTraversesQpi) {
  sim::Scheduler sched;
  ComputeNode n(sched, 0, small_config());
  auto& gpu2 = n.gpu(2);  // socket 1
  auto token = gpu2.get_p2p_token(0);
  ASSERT_TRUE(token.is_ok());
  ASSERT_TRUE(gpu2.pin_pages(token.value(), 0, 1 << 16).is_ok());

  auto data = pattern(256, 3);
  auto t = n.cpu().mmio_store(layout::gpu_bar_base(2) + 0x10, data);
  sched.run();

  std::vector<std::byte> out(256);
  gpu2.peek(0x10, out);
  EXPECT_EQ(out, data);
  // QPI path: throttled rate + extra latency makes this far slower than the
  // same store to a socket-0 GPU.
  EXPECT_GT(sched.now(), calib::kQpiExtraLatencyPs);
}

TEST(RootComplex, QpiPeerPathIsSeverelyDegraded) {
  // Paper: P2P over QPI degrades "up to several hundred Mbytes/sec".
  sim::Scheduler sched;
  ComputeNode n(sched, 0, small_config());
  auto& gpu2 = n.gpu(2);
  auto token = gpu2.get_p2p_token(0);
  ASSERT_TRUE(token.is_ok());
  constexpr std::uint64_t kTotal = 1 << 20;
  ASSERT_TRUE(gpu2.pin_pages(token.value(), 0, kTotal).is_ok());

  auto data = pattern(kTotal, 4);
  auto t = n.cpu().mmio_store(layout::gpu_bar_base(2), data);
  sched.run();

  const double rate = units::bytes_per_second(kTotal, sched.now());
  EXPECT_LT(rate, 400e6);
  EXPECT_GT(rate, 100e6);
}

TEST(RootComplex, HostReadAnsweredWithSplitCompletions) {
  sim::Scheduler sched;
  ComputeNode n(sched, 0, small_config());
  auto data = pattern(512, 6);
  n.host_dram().write(0x2000, data);

  // An uncached load against the host range exercises the RC's completer
  // path (split completions, kHostReadLatencyPs).
  auto t = n.cpu().mmio_load(layout::kHostBase + 0x2000, 512);
  sched.run();
  ASSERT_TRUE(t.done());
  EXPECT_EQ(t.result(), data);
  EXPECT_EQ(n.socket(0).host_bytes_read(), 512u);
  EXPECT_GE(sched.now(), calib::kHostReadLatencyPs);
}

TEST(Bios, QualifiedBoardMapsTheTcaWindow) {
  sim::Scheduler sched;
  ComputeNode n(sched, 0, small_config());  // X9DRG-QF default
  auto slot = n.try_attach_peach2_slot(100, layout::kPeach2RegBase, true);
  EXPECT_TRUE(slot.is_ok());
  EXPECT_GE(n.bios().claimed_bytes(), calib::kTcaWindowBytes);
}

TEST(Bios, CommodityBoardCannotMapTheWindow) {
  // Footnote 2: "Currently, only a few motherboards can support the PEACH2
  // board."
  sim::Scheduler sched;
  NodeConfig cfg = small_config();
  cfg.board = kCommodityBoard;
  ComputeNode n(sched, 0, cfg);
  auto slot = n.try_attach_peach2_slot(100, layout::kPeach2RegBase, true);
  ASSERT_FALSE(slot.is_ok());
  EXPECT_EQ(slot.status().code(), ErrorCode::kResourceExhausted);

  // The board still works without the TCA window (registers only).
  auto regs_only =
      n.try_attach_peach2_slot(101, layout::kPeach2RegBase, false);
  EXPECT_TRUE(regs_only.is_ok());
}

TEST(ComputeNode, TwoPeach2SlotsForLoopback) {
  sim::Scheduler sched;
  ComputeNode n(sched, 0, small_config());
  auto& port_a = n.attach_peach2_slot(100, layout::kPeach2RegBase, true);
  auto& port_b = n.attach_peach2_slot(
      101, layout::kPeach2RegBase + layout::kPeach2RegSize, false);
  (void)port_a;
  (void)port_b;
  SUCCEED();  // BAR overlap would have tripped the attach assertion
}

}  // namespace
}  // namespace tca::node
