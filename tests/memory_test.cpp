// Unit tests for the memory substrate: RangeMap decode and Dram storage.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "memory/dram.h"
#include "memory/range_map.h"

namespace tca::mem {
namespace {

TEST(RangeMap, FindInsideAndOutside) {
  RangeMap<std::string> map;
  ASSERT_TRUE(map.add(0x1000, 0x100, "host").is_ok());
  ASSERT_TRUE(map.add(0x2000, 0x200, "gpu0").is_ok());

  ASSERT_NE(map.find(0x1000), nullptr);
  EXPECT_EQ(map.find(0x1000)->value, "host");
  EXPECT_EQ(map.find(0x10ff)->value, "host");
  EXPECT_EQ(map.find(0x1100), nullptr);  // one past the end
  EXPECT_EQ(map.find(0x0fff), nullptr);
  EXPECT_EQ(map.find(0x21ff)->value, "gpu0");
}

TEST(RangeMap, RejectsOverlaps) {
  RangeMap<int> map;
  ASSERT_TRUE(map.add(0x1000, 0x100, 1).is_ok());
  EXPECT_FALSE(map.add(0x1080, 0x100, 2).is_ok());  // tail overlap
  EXPECT_FALSE(map.add(0x0f80, 0x100, 3).is_ok());  // head overlap
  EXPECT_FALSE(map.add(0x1000, 0x100, 4).is_ok());  // exact duplicate
  EXPECT_FALSE(map.add(0x0800, 0x1000, 5).is_ok()); // engulfing
  EXPECT_TRUE(map.add(0x1100, 0x100, 6).is_ok());   // adjacent is fine
  EXPECT_TRUE(map.add(0x0f00, 0x100, 7).is_ok());   // adjacent below
}

TEST(RangeMap, RejectsEmptyAndWrapping) {
  RangeMap<int> map;
  EXPECT_FALSE(map.add(0x1000, 0, 1).is_ok());
  EXPECT_FALSE(map.add(~0ull - 10, 100, 2).is_ok());
}

TEST(RangeMap, FindSpanRequiresFullContainment) {
  RangeMap<int> map;
  ASSERT_TRUE(map.add(0x1000, 0x100, 1).is_ok());
  EXPECT_NE(map.find_span(0x1000, 0x100), nullptr);
  EXPECT_NE(map.find_span(0x10f0, 0x10), nullptr);
  EXPECT_EQ(map.find_span(0x10f0, 0x11), nullptr);  // crosses the boundary
  EXPECT_EQ(map.find_span(0x2000, 1), nullptr);
}

TEST(RangeMap, RemoveByBase) {
  RangeMap<int> map;
  ASSERT_TRUE(map.add(0x1000, 0x100, 1).is_ok());
  EXPECT_TRUE(map.remove(0x1000));
  EXPECT_FALSE(map.remove(0x1000));
  EXPECT_EQ(map.find(0x1000), nullptr);
  EXPECT_TRUE(map.add(0x1000, 0x100, 2).is_ok());  // reusable after removal
}

TEST(RangeMap, IterationIsOrdered) {
  RangeMap<int> map;
  ASSERT_TRUE(map.add(0x3000, 0x100, 3).is_ok());
  ASSERT_TRUE(map.add(0x1000, 0x100, 1).is_ok());
  ASSERT_TRUE(map.add(0x2000, 0x100, 2).is_ok());
  std::vector<int> order;
  for (const auto& [base, range] : map) order.push_back(range.value);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Dram, ReadBackWhatWasWritten) {
  Dram dram(4096);
  Rng rng(5);
  std::vector<std::byte> data(512);
  rng.fill(data);
  dram.write(128, data);

  std::vector<std::byte> out(512);
  dram.read(128, out);
  EXPECT_EQ(out, data);
}

TEST(Dram, ViewsAliasStorage) {
  Dram dram(1024);
  std::vector<std::byte> data{std::byte{0xAA}, std::byte{0xBB}};
  dram.write(10, data);
  auto view = dram.view(10, 2);
  EXPECT_EQ(view[0], std::byte{0xAA});
  EXPECT_EQ(view[1], std::byte{0xBB});

  auto mut = dram.view_mut(10, 1);
  mut[0] = std::byte{0xCC};
  EXPECT_EQ(dram.view(10, 1)[0], std::byte{0xCC});
}

TEST(Dram, FillSetsEverything) {
  Dram dram(64);
  dram.fill(std::byte{0x5A});
  for (auto b : dram.view(0, 64)) EXPECT_EQ(b, std::byte{0x5A});
}

}  // namespace
}  // namespace tca::mem
