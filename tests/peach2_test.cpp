// Unit tests for PEACH2 building blocks: the TCA address layout, the
// mask/bound routing table, and DMA descriptor serialization.
#include <gtest/gtest.h>

#include "calib/calibration.h"
#include "peach2/descriptor.h"
#include "peach2/routing.h"
#include "peach2/tca_layout.h"

namespace tca::peach2 {
namespace {

TEST(TcaLayout, CreateValidates) {
  EXPECT_TRUE(TcaLayout::create(0, 1ull << 39, 8).is_ok());
  EXPECT_FALSE(TcaLayout::create(0, 1ull << 39, 3).is_ok());  // not pow2
  // Torus-scale fabrics partition the window beyond the paper's 16-node
  // ring (the ring bound now lives in fabric::TopologySpec::validate).
  EXPECT_TRUE(TcaLayout::create(0, 1ull << 39, 32).is_ok());
  EXPECT_TRUE(TcaLayout::create(0, 1ull << 39, 1024).is_ok());
  EXPECT_FALSE(TcaLayout::create(0, 1ull << 39, 2048).is_ok());  // > limit
  EXPECT_FALSE(TcaLayout::create(0, (1ull << 39) - 8, 8).is_ok());
  EXPECT_FALSE(TcaLayout::create(123, 1ull << 39, 8).is_ok());  // unaligned
}

TEST(TcaLayout, PaperGeometry) {
  // 512 GB window, 16 nodes -> 32 GB slices, 8 GB blocks.
  auto r = TcaLayout::create(calib::kTcaWindowBase, calib::kTcaWindowBytes, 16);
  ASSERT_TRUE(r.is_ok());
  const TcaLayout& l = r.value();
  EXPECT_EQ(l.slice_size(), 32ull << 30);
  EXPECT_EQ(l.block_size(), 8ull << 30);
}

TEST(TcaLayout, EncodeDecodeRoundTrip) {
  auto l = TcaLayout::create(1ull << 40, 1ull << 39, 8).value();
  for (std::uint32_t node : {0u, 3u, 7u}) {
    for (auto target : {TcaTarget::kGpu0, TcaTarget::kGpu1, TcaTarget::kHost,
                        TcaTarget::kInternal}) {
      const std::uint64_t addr = l.encode(node, target, 0x1234);
      auto loc = l.decode(addr);
      ASSERT_TRUE(loc.has_value());
      EXPECT_EQ(loc->node, node);
      EXPECT_EQ(loc->target, target);
      EXPECT_EQ(loc->offset, 0x1234u);
    }
  }
}

TEST(TcaLayout, DecodeOutsideWindow) {
  auto l = TcaLayout::create(1ull << 40, 1ull << 39, 8).value();
  EXPECT_FALSE(l.decode(0).has_value());
  EXPECT_FALSE(l.decode((1ull << 40) - 1).has_value());
  EXPECT_FALSE(l.decode((1ull << 40) + (1ull << 39)).has_value());
  EXPECT_TRUE(l.decode(1ull << 40).has_value());
}

TEST(TcaLayout, SlicesAreContiguousAndExhaustive) {
  auto l = TcaLayout::create(0, 1ull << 39, 4).value();
  for (std::uint32_t n = 0; n < 4; ++n) {
    auto first = l.decode(l.slice_base(n));
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->node, n);
    EXPECT_EQ(first->target, TcaTarget::kGpu0);
    auto last = l.decode(l.slice_base(n) + l.slice_size() - 1);
    ASSERT_TRUE(last.has_value());
    EXPECT_EQ(last->node, n);
    EXPECT_EQ(last->target, TcaTarget::kInternal);
  }
}

TEST(RoutingTable, MaskedMatchSelectsPort) {
  RoutingTable table;
  // Fig. 5 style: a 32 GB-aligned slice routes East.
  const std::uint64_t slice = 32ull << 30;
  ASSERT_TRUE(table.add({.mask = ~(slice - 1),
                         .lower = 2 * slice,
                         .upper = 2 * slice,
                         .port = PortId::kEast})
                  .is_ok());
  EXPECT_EQ(table.lookup(2 * slice), PortId::kEast);
  EXPECT_EQ(table.lookup(2 * slice + 12345), PortId::kEast);
  EXPECT_EQ(table.lookup(3 * slice - 1), PortId::kEast);
  EXPECT_FALSE(table.lookup(3 * slice).has_value());
  EXPECT_FALSE(table.lookup(0).has_value());
}

TEST(RoutingTable, FirstMatchWins) {
  RoutingTable table;
  ASSERT_TRUE(
      table.add({.mask = ~0xfffull, .lower = 0x1000, .upper = 0x1000,
                 .port = PortId::kEast})
          .is_ok());
  ASSERT_TRUE(
      table.add({.mask = 0, .lower = 0, .upper = 0, .port = PortId::kWest})
          .is_ok());  // catch-all
  EXPECT_EQ(table.lookup(0x1800), PortId::kEast);
  EXPECT_EQ(table.lookup(0x9999), PortId::kWest);
}

TEST(RoutingTable, RangeBounds) {
  RoutingTable table;
  ASSERT_TRUE(table.add({.mask = ~0ull, .lower = 100, .upper = 200,
                         .port = PortId::kSouth})
                  .is_ok());
  EXPECT_FALSE(table.lookup(99).has_value());
  EXPECT_EQ(table.lookup(100), PortId::kSouth);
  EXPECT_EQ(table.lookup(200), PortId::kSouth);
  EXPECT_FALSE(table.lookup(201).has_value());
}

TEST(RoutingTable, RejectsInvalidAndOverflow) {
  RoutingTable table;
  EXPECT_FALSE(table.add({.mask = ~0ull, .lower = 5, .upper = 1,
                          .port = PortId::kEast})
                   .is_ok());
  for (std::size_t i = 0; i < RoutingTable::kCapacity; ++i) {
    ASSERT_TRUE(table
                    .add({.mask = ~0ull, .lower = i * 10, .upper = i * 10 + 5,
                          .port = PortId::kEast})
                    .is_ok());
  }
  EXPECT_FALSE(table.add({.mask = ~0ull, .lower = 0, .upper = 0,
                          .port = PortId::kWest})
                   .is_ok());
}

TEST(Descriptor, SerializeDeserializeRoundTrip) {
  DmaDescriptor d{.src = 0x4000'1234'5678ull,
                  .dst = 0x7fff'0000'0042ull,
                  .length = 4096,
                  .direction = DmaDirection::kPipelined,
                  .flags = 0xdead};
  std::vector<std::byte> buf(DmaDescriptor::kWireSize);
  d.serialize(buf);
  DmaDescriptor back = DmaDescriptor::deserialize(buf);
  EXPECT_EQ(back.src, d.src);
  EXPECT_EQ(back.dst, d.dst);
  EXPECT_EQ(back.length, d.length);
  EXPECT_EQ(back.direction, d.direction);
  EXPECT_EQ(back.flags, d.flags);
}

TEST(Descriptor, TableSerializationIsDense) {
  std::vector<DmaDescriptor> chain(5);
  for (std::size_t i = 0; i < 5; ++i) {
    chain[i].src = i;
    chain[i].length = static_cast<std::uint32_t>(i * 100);
  }
  auto image = serialize_table(chain);
  EXPECT_EQ(image.size(), 5 * DmaDescriptor::kWireSize);
  for (std::size_t i = 0; i < 5; ++i) {
    auto d = DmaDescriptor::deserialize(
        std::span(image).subspan(i * DmaDescriptor::kWireSize));
    EXPECT_EQ(d.src, i);
    EXPECT_EQ(d.length, i * 100);
  }
}

TEST(PortId, Names) {
  EXPECT_STREQ(to_string(PortId::kNorth), "N");
  EXPECT_STREQ(to_string(PortId::kEast), "E");
  EXPECT_STREQ(to_string(PortId::kWest), "W");
  EXPECT_STREQ(to_string(PortId::kSouth), "S");
}

TEST(TcaTarget, Names) {
  EXPECT_STREQ(to_string(TcaTarget::kGpu0), "GPU0");
  EXPECT_STREQ(to_string(TcaTarget::kHost), "HOST");
}

}  // namespace
}  // namespace tca::peach2
