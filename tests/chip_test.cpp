// Direct Peach2Chip unit tests: a bare chip on test links (no node, no
// fabric builder), exercising the forwarding engine, register file, address
// conversion, internal region, and the put-only policy per port.
#include <gtest/gtest.h>

#include <memory>

#include "peach2/chip.h"
#include "peach2/dmac.h"
#include "peach2/nios.h"
#include "peach2/registers.h"

namespace tca::peach2 {
namespace {

namespace r = regs;
using units::ns;
using units::us;

/// Records whatever comes out of a chip port.
class PortProbe : public pcie::TlpSink {
 public:
  void on_tlp(pcie::Tlp tlp, pcie::LinkPort& port) override {
    port.release_rx(tlp.wire_bytes());
    received.push_back(std::move(tlp));
  }
  std::vector<pcie::Tlp> received;
};

/// A chip with every physical port on a probe link.
struct ChipRig {
  explicit ChipRig(sim::Scheduler& sched, std::uint32_t node_id = 0)
      : layout(TcaLayout::create(1ull << 40, 1ull << 39, 4).value()) {
    Peach2Config cfg{
        .device_id = 42,
        .node_id = node_id,
        .layout = layout,
        .reg_base = 0x30'0000'0000ull,
        .local_gpu0_base = 0x20'0000'0000ull,
        .local_gpu1_base = 0x22'0000'0000ull,
        .local_host_base = 0x0,
    };
    chip = std::make_unique<Peach2Chip>(sched, cfg);
    for (std::size_t p = 0; p < kPortCount; ++p) {
      links[p] = std::make_unique<pcie::PcieLink>(
          sched, pcie::LinkConfig{.gen = 2, .lanes = 8});
      chip->attach_port(static_cast<PortId>(p), links[p]->end_a());
      links[p]->end_b().set_sink(&probes[p]);
    }
  }

  pcie::LinkPort& far_end(PortId port) {
    return links[static_cast<std::size_t>(port)]->end_b();
  }
  PortProbe& probe(PortId port) {
    return probes[static_cast<std::size_t>(port)];
  }

  TcaLayout layout;
  std::unique_ptr<Peach2Chip> chip;
  std::array<std::unique_ptr<pcie::PcieLink>, kPortCount> links;
  std::array<PortProbe, kPortCount> probes;
};

std::vector<std::byte> bytes8(std::uint64_t v) {
  std::vector<std::byte> out(8);
  std::memcpy(out.data(), &v, 8);
  return out;
}

TEST(Chip, OwnSliceConvertsAndExitsNorth) {
  sim::Scheduler sched;
  ChipRig rig(sched, /*node_id=*/1);

  // A write for node 1's host block arrives from East; it must leave North
  // with the address converted to the local bus space.
  const std::uint64_t global =
      rig.layout.encode(1, TcaTarget::kHost, 0x1234);
  rig.far_end(PortId::kEast).send(pcie::Tlp::mem_write(global, bytes8(7)));
  sched.run();

  ASSERT_EQ(rig.probe(PortId::kNorth).received.size(), 1u);
  EXPECT_EQ(rig.probe(PortId::kNorth).received[0].address, 0x1234u);
  EXPECT_EQ(rig.chip->forwarded_tlps(), 1u);
}

TEST(Chip, GpuBlocksConvertToBarAddresses) {
  sim::Scheduler sched;
  ChipRig rig(sched, 0);
  rig.far_end(PortId::kWest).send(pcie::Tlp::mem_write(
      rig.layout.encode(0, TcaTarget::kGpu1, 0x40), bytes8(1)));
  sched.run();
  ASSERT_EQ(rig.probe(PortId::kNorth).received.size(), 1u);
  EXPECT_EQ(rig.probe(PortId::kNorth).received[0].address,
            0x22'0000'0040ull);
}

TEST(Chip, ForeignSliceFollowsRoutingTable) {
  sim::Scheduler sched;
  ChipRig rig(sched, 0);
  const std::uint64_t slice = rig.layout.slice_size();
  ASSERT_TRUE(rig.chip->routing()
                  .add({.mask = ~(slice - 1),
                        .lower = rig.layout.slice_base(2),
                        .upper = rig.layout.slice_base(2),
                        .port = PortId::kSouth})
                  .is_ok());

  rig.far_end(PortId::kNorth)
      .send(pcie::Tlp::mem_write(rig.layout.encode(2, TcaTarget::kHost, 0),
                                 bytes8(2)));
  sched.run();
  EXPECT_EQ(rig.probe(PortId::kSouth).received.size(), 1u);
  EXPECT_TRUE(rig.probe(PortId::kNorth).received.empty());
}

TEST(Chip, UnroutableForeignSliceDroppedAndCounted) {
  sim::Scheduler sched;
  ChipRig rig(sched, 0);
  rig.far_end(PortId::kNorth)
      .send(pcie::Tlp::mem_write(rig.layout.encode(3, TcaTarget::kHost, 0),
                                 bytes8(3)));
  sched.run();
  EXPECT_EQ(rig.chip->dropped_tlps(), 1u);
  for (std::size_t p = 0; p < kPortCount; ++p) {
    EXPECT_TRUE(rig.probes[p].received.empty());
  }
}

TEST(Chip, PutOnlyRejectsReadsFromFabricPorts) {
  sim::Scheduler sched;
  ChipRig rig(sched, 0);
  // MRd arriving from East targeting the local host: rejected.
  rig.far_end(PortId::kEast).send(pcie::Tlp::mem_read(
      rig.layout.encode(0, TcaTarget::kHost, 0), 64, /*req=*/9, 1));
  // MRd from the host toward a REMOTE node: rejected too.
  rig.far_end(PortId::kNorth).send(pcie::Tlp::mem_read(
      rig.layout.encode(2, TcaTarget::kHost, 0), 64, 9, 2));
  sched.run();
  EXPECT_EQ(rig.chip->dropped_tlps(), 2u);
}

TEST(Chip, LocalReadFromHostPortAllowed) {
  sim::Scheduler sched;
  ChipRig rig(sched, 0);
  // The host reading its own node's internal RAM: permitted (Port N).
  auto data = bytes8(0xABCD);
  rig.chip->internal_ram().write(0x100, data);
  rig.far_end(PortId::kNorth)
      .send(pcie::Tlp::mem_read(rig.chip->internal_block_base() +
                                    Peach2Chip::kInternalRamOffset + 0x100,
                                8, /*requester=*/9, 5));
  sched.run();
  ASSERT_EQ(rig.probe(PortId::kNorth).received.size(), 1u);
  const pcie::Tlp& cpl = rig.probe(PortId::kNorth).received[0];
  EXPECT_EQ(cpl.type, pcie::TlpType::kCompletion);
  EXPECT_EQ(cpl.payload, data);
  EXPECT_EQ(cpl.tag, 5);
}

TEST(Chip, InternalRamWriteOutOfBoundsDropped) {
  sim::Scheduler sched;
  ChipRig rig(sched, 0);
  const std::uint64_t beyond = rig.chip->internal_block_base() +
                               Peach2Chip::kInternalRamOffset +
                               rig.chip->internal_ram().size();
  rig.far_end(PortId::kNorth).send(pcie::Tlp::mem_write(beyond, bytes8(1)));
  // Also: a write into the mailbox page (offset < kInternalRamOffset).
  rig.far_end(PortId::kNorth)
      .send(pcie::Tlp::mem_write(rig.chip->internal_block_base() + 8,
                                 bytes8(2)));
  sched.run();
  EXPECT_EQ(rig.chip->dropped_tlps(), 2u);
}

TEST(Chip, RegisterFileFullMap) {
  sim::Scheduler sched;
  ChipRig rig(sched, 3);
  auto& chip = *rig.chip;

  EXPECT_EQ(chip.read_register(r::kChipId), r::kChipIdValue);
  EXPECT_EQ(chip.read_register(r::kLogicVersion), r::kLogicVersionValue);
  EXPECT_EQ(chip.read_register(r::kNodeId), 3u);
  chip.write_register(r::kNodeId, 2);
  EXPECT_EQ(chip.read_register(r::kNodeId), 2u);

  // Conversion registers.
  chip.write_register(r::kConvLocalHost, 0x1000);
  EXPECT_EQ(chip.read_register(r::kConvLocalHost), 0x1000u);
  EXPECT_EQ(chip.read_register(r::kConvWindowBase), rig.layout.window_base);
  EXPECT_EQ(chip.read_register(r::kConvNodeCount), 4u);

  // Link status: all four ports attached.
  for (std::size_t p = 0; p < kPortCount; ++p) {
    EXPECT_EQ(chip.read_register(r::kLinkStatusBase + 8 * p), r::kLinkUp);
  }

  // Unknown registers read as zero, writes are ignored.
  // tca-lint: allow(reg-magic-mmio): probing an unmapped offset is the point
  EXPECT_EQ(chip.read_register(0x9998), 0u);
  // tca-lint: allow(reg-magic-mmio): probing an unmapped offset is the point
  chip.write_register(0x9998, 0xdead);
  // tca-lint: allow(reg-magic-mmio): probing an unmapped offset is the point
  EXPECT_EQ(chip.read_register(0x9998), 0u);
}

TEST(Chip, RegisterMlpOverMmioWindow) {
  sim::Scheduler sched;
  ChipRig rig(sched, 0);
  // A register write TLP through the N port updates the file; a read TLP
  // returns a completion with the value.
  rig.far_end(PortId::kNorth)
      .send(pcie::Tlp::mem_write(0x30'0000'0000ull + r::kNodeId, bytes8(7)));
  sched.run();
  EXPECT_EQ(rig.chip->read_register(r::kNodeId), 7u);

  rig.far_end(PortId::kNorth)
      .send(pcie::Tlp::mem_read(0x30'0000'0000ull + r::kNodeId, 8, 9, 3));
  sched.run();
  ASSERT_EQ(rig.probe(PortId::kNorth).received.size(), 1u);
  std::uint64_t value = 0;
  std::memcpy(&value, rig.probe(PortId::kNorth).received[0].payload.data(),
              8);
  EXPECT_EQ(value, 7u);
}

TEST(Chip, VendorMsgToOwnMailboxCounts) {
  sim::Scheduler sched;
  ChipRig rig(sched, 0);
  rig.far_end(PortId::kEast)
      .send(pcie::Tlp::vendor_msg(rig.chip->internal_block_base(), 8, 33));
  sched.run();
  EXPECT_EQ(rig.chip->mailbox_count(), 1u);
  // Tag 33 belongs to channel 0's ack window; an unexpected ack counts as
  // a channel error (nothing pending).
  EXPECT_EQ(rig.chip->dmac(0).errors(), 1u);
}

TEST(Chip, ForwardingPreservesOrderWithinAPort) {
  sim::Scheduler sched;
  ChipRig rig(sched, 1);
  for (std::uint32_t i = 0; i < 8; ++i) {
    rig.far_end(PortId::kEast).send(pcie::Tlp::mem_write(
        rig.layout.encode(1, TcaTarget::kHost, i * 0x100), bytes8(i)));
  }
  sched.run();
  ASSERT_EQ(rig.probe(PortId::kNorth).received.size(), 8u);
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(rig.probe(PortId::kNorth).received[i].address, i * 0x100ull);
  }
}

TEST(Chip, NiosSeesAttachAndTransitions) {
  sim::Scheduler sched;
  ChipRig rig(sched, 0);
  EXPECT_EQ(rig.chip->nios().event_count(), kPortCount);  // attach events

  rig.links[1]->set_up(false);  // East down
  sched.run_for(NiosController::kServiceDelay + ns(10));
  EXPECT_EQ(rig.chip->nios().event_count(), kPortCount + 1);
  EXPECT_FALSE(rig.chip->nios().link_view(PortId::kEast));
  const std::uint64_t last = rig.chip->read_register(r::kNiosLastEvent);
  EXPECT_EQ(last & 0xff, static_cast<std::uint64_t>(PortId::kEast));
  EXPECT_EQ((last >> 8) & 1, 0u);  // down
}

}  // namespace
}  // namespace tca::peach2
