// Tests for the public TCA API: allocation, cudaMemcpyPeer-style transfers
// across every host/GPU source-destination combination, PIO-vs-DMA policy,
// block-stride chains, and flag synchronization.
#include <gtest/gtest.h>

#include "api/tca.h"

namespace tca::api {
namespace {

using units::ns;
using units::us;

std::vector<std::byte> pattern(std::size_t n, std::uint8_t seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((seed * 11 + i * 5) & 0xff);
  }
  return v;
}

TcaConfig small_config(std::uint32_t nodes = 2) {
  return TcaConfig{.spec = fabric::TopologySpec::ring(nodes),
                   .node_config = {.gpu_count = 2,
                                   .host_backing_bytes = 8 << 20,
                                   .gpu_backing_bytes = 4 << 20}};
}

TEST(Runtime, AllocHostRespectsCapacity) {
  sim::Scheduler sched;
  Runtime rt(sched, small_config());
  auto a = rt.alloc_host(0, 1 << 20);
  ASSERT_TRUE(a.is_ok());
  EXPECT_EQ(a.value().size, 1u << 20);
  EXPECT_TRUE(a.value().is_host());

  EXPECT_FALSE(rt.alloc_host(0, 0).is_ok());
  EXPECT_FALSE(rt.alloc_host(9, 64).is_ok());
  EXPECT_FALSE(rt.alloc_host(0, 1ull << 40).is_ok());
}

TEST(Runtime, AllocGpuPinsPages) {
  sim::Scheduler sched;
  Runtime rt(sched, small_config());
  auto b = rt.alloc_gpu(1, 0, 128 << 10);
  ASSERT_TRUE(b.is_ok());
  EXPECT_FALSE(b.value().is_host());
  EXPECT_TRUE(rt.cluster().node(1).gpu(0).is_pinned(
      b.value().block_offset, 128 << 10));
}

TEST(Runtime, AllocGpuRejectsCrossSocketGpus) {
  sim::Scheduler sched;
  Runtime rt(sched, small_config());
  EXPECT_FALSE(rt.alloc_gpu(0, 2, 4096).is_ok());
  EXPECT_FALSE(rt.alloc_gpu(0, 3, 4096).is_ok());
  EXPECT_FALSE(rt.alloc_gpu(0, -1, 4096).is_ok());
}

TEST(Runtime, WriteReadRoundTripHostAndGpu) {
  sim::Scheduler sched;
  Runtime rt(sched, small_config());
  auto host = rt.alloc_host(0, 4096).value();
  auto dev = rt.alloc_gpu(0, 1, 4096).value();

  auto data = pattern(1024, 3);
  rt.write(host, 100, data);
  rt.write(dev, 200, data);
  std::vector<std::byte> out(1024);
  rt.read(host, 100, out);
  EXPECT_EQ(out, data);
  rt.read(dev, 200, out);
  EXPECT_EQ(out, data);
}

struct CopyCase {
  bool src_host;
  bool dst_host;
  bool remote;
  std::uint64_t bytes;
};

class MemcpyPeerTest : public ::testing::TestWithParam<CopyCase> {};

TEST_P(MemcpyPeerTest, MovesBytesCorrectly) {
  const CopyCase& c = GetParam();
  sim::Scheduler sched;
  Runtime rt(sched, small_config());

  auto make = [&](bool host, std::uint32_t node) {
    return host ? rt.alloc_host(node, 64 << 10).value()
                : rt.alloc_gpu(node, 0, 64 << 10).value();
  };
  Buffer src = make(c.src_host, 0);
  Buffer dst = make(c.dst_host, c.remote ? 1 : 0);
  if (!c.remote && c.src_host == c.dst_host && !c.src_host) {
    // same-node GPU-to-GPU: use the second GPU as destination
    dst = rt.alloc_gpu(0, 1, 64 << 10).value();
  }

  auto data = pattern(c.bytes, 7);
  rt.write(src, 64, data);

  auto t = rt.memcpy_peer(dst, 128, src, 64, c.bytes);
  sched.run();
  ASSERT_TRUE(t.done());
  EXPECT_TRUE(t.result().is_ok()) << t.result().to_string();

  std::vector<std::byte> out(c.bytes);
  rt.read(dst, 128, out);
  EXPECT_EQ(out, data);
}

INSTANTIATE_TEST_SUITE_P(
    AllPaths, MemcpyPeerTest,
    ::testing::Values(
        CopyCase{true, true, false, 256},      // host->host local, PIO
        CopyCase{true, true, false, 8192},     // host->host local, DMA
        CopyCase{true, true, true, 64},        // host->host remote, PIO
        CopyCase{true, true, true, 32 << 10},  // host->host remote, DMA
        CopyCase{true, false, false, 4096},    // host->GPU local
        CopyCase{true, false, true, 4096},     // host->GPU remote
        CopyCase{false, true, false, 4096},    // GPU->host local
        CopyCase{false, true, true, 16 << 10}, // GPU->host remote
        CopyCase{false, false, false, 4096},   // GPU->GPU same node
        CopyCase{false, false, true, 4096}),   // GPU->GPU over nodes!
    [](const auto& param_info) {
      const CopyCase& c = param_info.param;
      std::string name = c.src_host ? "Host" : "Gpu";
      name += c.dst_host ? "ToHost" : "ToGpu";
      name += c.remote ? "Remote" : "Local";
      name += "_" + std::to_string(c.bytes);
      return name;
    });

TEST(Runtime, MemcpyPeerRejectsOutOfRange) {
  sim::Scheduler sched;
  Runtime rt(sched, small_config());
  auto a = rt.alloc_host(0, 4096).value();
  auto b = rt.alloc_host(1, 4096).value();
  auto t = rt.memcpy_peer(b, 4000, a, 0, 1024);
  sched.run();
  EXPECT_FALSE(t.result().is_ok());
}

TEST(Runtime, ShortHostCopiesUsePioLongOnesUseDma) {
  sim::Scheduler sched;
  Runtime rt(sched, small_config());
  auto src = rt.alloc_host(0, 64 << 10).value();
  auto dst = rt.alloc_host(1, 64 << 10).value();
  auto data = pattern(64 << 10, 2);
  rt.write(src, 0, data);

  const std::uint64_t chains_before =
      rt.cluster().chip(0).dmac().chains_completed();
  auto t1 = rt.memcpy_peer(dst, 0, src, 0, 128);  // <= threshold: PIO
  sched.run();
  EXPECT_TRUE(t1.result().is_ok());
  EXPECT_EQ(rt.cluster().chip(0).dmac().chains_completed(), chains_before);

  auto t2 = rt.memcpy_peer(dst, 0, src, 0, 8192);  // > threshold: DMA
  sched.run();
  EXPECT_TRUE(t2.result().is_ok());
  EXPECT_EQ(rt.cluster().chip(0).dmac().chains_completed(),
            chains_before + 1);
}

TEST(Runtime, GpuToGpuOverNodesIsTheHeadlineFeature) {
  // GPU memory on node 0 lands in GPU memory on node 1 without any host
  // copy: host_bytes_written on both nodes' RCs stays zero.
  sim::Scheduler sched;
  Runtime rt(sched, small_config());
  auto src = rt.alloc_gpu(0, 0, 32 << 10).value();
  auto dst = rt.alloc_gpu(1, 0, 32 << 10).value();
  auto data = pattern(32 << 10, 8);
  rt.write(src, 0, data);

  const std::uint64_t host_writes_before =
      rt.cluster().node(0).socket(0).host_bytes_written() +
      rt.cluster().node(1).socket(0).host_bytes_written();
  auto t = rt.memcpy_peer(dst, 0, src, 0, 32 << 10);
  sched.run();
  ASSERT_TRUE(t.result().is_ok());

  std::vector<std::byte> out(32 << 10);
  rt.read(dst, 0, out);
  EXPECT_EQ(out, data);
  // The DMA descriptor table write is host traffic, but the *payload* never
  // touches host memory: allow only the table bytes.
  const std::uint64_t host_writes_after =
      rt.cluster().node(0).socket(0).host_bytes_written() +
      rt.cluster().node(1).socket(0).host_bytes_written();
  EXPECT_EQ(host_writes_after, host_writes_before);
}

TEST(Runtime, BlockStrideMovesAllBlocks) {
  sim::Scheduler sched;
  Runtime rt(sched, small_config());
  auto src = rt.alloc_host(0, 64 << 10).value();
  auto dst = rt.alloc_host(1, 64 << 10).value();

  // 8 blocks of 512 B from stride-1024 source into stride-2048 dest.
  std::vector<std::vector<std::byte>> blocks;
  for (std::uint32_t i = 0; i < 8; ++i) {
    blocks.push_back(pattern(512, static_cast<std::uint8_t>(i + 1)));
    rt.write(src, i * 1024, blocks.back());
  }
  auto t = rt.memcpy_block_stride(dst, 0, 2048, src, 0, 1024, 512, 8);
  sched.run();
  ASSERT_TRUE(t.result().is_ok()) << t.result().to_string();

  for (std::uint32_t i = 0; i < 8; ++i) {
    std::vector<std::byte> out(512);
    rt.read(dst, i * 2048, out);
    EXPECT_EQ(out, blocks[i]) << "block " << i;
  }
}

TEST(Runtime, BlockStrideRejectsOverflowAndTooMany) {
  sim::Scheduler sched;
  Runtime rt(sched, small_config());
  auto src = rt.alloc_host(0, 8192).value();
  auto dst = rt.alloc_host(1, 8192).value();
  auto t1 = rt.memcpy_block_stride(dst, 0, 4096, src, 0, 4096, 512, 4);
  sched.run();
  EXPECT_FALSE(t1.result().is_ok());  // src extent 3*4096+512 > 8192
  auto t2 = rt.memcpy_block_stride(dst, 0, 0, src, 0, 0, 16, 300);
  sched.run();
  EXPECT_FALSE(t2.result().is_ok());  // > kMaxDescriptors
}

TEST(Runtime, BatchRunsManyCopiesInOneChain) {
  sim::Scheduler sched;
  Runtime rt(sched, small_config());
  auto src = rt.alloc_host(0, 64 << 10).value();
  auto dst_a = rt.alloc_host(1, 32 << 10).value();
  auto dst_b = rt.alloc_gpu(1, 0, 32 << 10).value();

  auto d1 = pattern(4096, 21), d2 = pattern(4096, 22);
  rt.write(src, 0, d1);
  rt.write(src, 8192, d2);

  const std::uint64_t chains0 = rt.cluster().chip(0).dmac().chains_completed();
  std::vector<Runtime::CopyOp> ops{
      {.dst = dst_a, .dst_off = 0, .src = src, .src_off = 0, .bytes = 4096},
      {.dst = dst_b, .dst_off = 100, .src = src, .src_off = 8192,
       .bytes = 4096}};
  auto t = rt.memcpy_peer_batch(0, std::move(ops));
  sched.run();
  ASSERT_TRUE(t.result().is_ok()) << t.result().to_string();
  EXPECT_EQ(rt.cluster().chip(0).dmac().chains_completed(), chains0 + 1);

  std::vector<std::byte> out(4096);
  rt.read(dst_a, 0, out);
  EXPECT_EQ(out, d1);
  rt.read(dst_b, 100, out);
  EXPECT_EQ(out, d2);
}

TEST(Runtime, BatchRejectsNonLocalSources) {
  sim::Scheduler sched;
  Runtime rt(sched, small_config());
  auto a = rt.alloc_host(0, 4096).value();
  auto b = rt.alloc_host(1, 4096).value();
  std::vector<Runtime::CopyOp> ops{
      {.dst = a, .dst_off = 0, .src = b, .src_off = 0, .bytes = 64}};
  auto t = rt.memcpy_peer_batch(0, std::move(ops));  // src on node 1!
  sched.run();
  EXPECT_FALSE(t.result().is_ok());
  EXPECT_EQ(t.result().code(), ErrorCode::kPermissionDenied);
}

TEST(Stream, CoalescesCopiesIntoOneChainPerNode) {
  sim::Scheduler sched;
  Runtime rt(sched, small_config());
  auto src = rt.alloc_host(0, 64 << 10).value();
  auto dst = rt.alloc_host(1, 64 << 10).value();

  Stream stream(rt);
  std::vector<std::vector<std::byte>> blobs;
  for (std::uint32_t i = 0; i < 6; ++i) {
    blobs.push_back(pattern(2048, static_cast<std::uint8_t>(40 + i)));
    rt.write(src, i * 4096, blobs.back());
    ASSERT_TRUE(
        stream.enqueue_copy(dst, i * 4096, src, i * 4096, 2048).is_ok());
  }
  EXPECT_EQ(stream.pending(), 6u);

  std::uint64_t chains0 = 0;
  for (int ch = 0; ch < calib::kDmaChannels; ++ch) {
    chains0 += rt.cluster().chip(0).dmac(ch).chains_completed();
  }
  auto t = stream.synchronize();
  sched.run();
  const SyncReport report = t.result();
  ASSERT_TRUE(report.ok()) << report.status.to_string();
  EXPECT_EQ(report.ops.size(), 6u);
  EXPECT_EQ(stream.pending(), 0u);

  std::uint64_t chains1 = 0;
  for (int ch = 0; ch < calib::kDmaChannels; ++ch) {
    chains1 += rt.cluster().chip(0).dmac(ch).chains_completed();
  }
  EXPECT_EQ(chains1, chains0 + 1);  // six copies, ONE chain

  for (std::uint32_t i = 0; i < 6; ++i) {
    std::vector<std::byte> out(2048);
    rt.read(dst, i * 4096, out);
    EXPECT_EQ(out, blobs[i]) << i;
  }
}

TEST(Stream, MultiSourceNodesRunConcurrently) {
  sim::Scheduler sched;
  Runtime rt(sched, small_config());
  auto buf0 = rt.alloc_host(0, 32 << 10).value();
  auto buf1 = rt.alloc_host(1, 32 << 10).value();
  auto a = pattern(8192, 60), b = pattern(8192, 61);
  rt.write(buf0, 0, a);
  rt.write(buf1, 0, b);

  Stream stream(rt);
  // Opposite directions in one stream: exchanged concurrently.
  ASSERT_TRUE(stream.enqueue_copy(buf1, 16 << 10, buf0, 0, 8192).is_ok());
  ASSERT_TRUE(stream.enqueue_copy(buf0, 16 << 10, buf1, 0, 8192).is_ok());
  auto t = stream.synchronize();
  sched.run();
  ASSERT_TRUE(t.result().ok());

  std::vector<std::byte> out(8192);
  rt.read(buf1, 16 << 10, out);
  EXPECT_EQ(out, a);
  rt.read(buf0, 16 << 10, out);
  EXPECT_EQ(out, b);
}

TEST(Stream, EnqueueValidatesEagerly) {
  sim::Scheduler sched;
  Runtime rt(sched, small_config());
  auto buf = rt.alloc_host(0, 4096).value();
  Stream stream(rt);
  EXPECT_FALSE(stream.enqueue_copy(buf, 4000, buf, 0, 1024).is_ok());
  EXPECT_EQ(stream.pending(), 0u);
  // Zero-byte copies are accepted and dropped.
  EXPECT_TRUE(stream.enqueue_copy(buf, 0, buf, 0, 0).is_ok());
  EXPECT_EQ(stream.pending(), 0u);
}

TEST(Stream, EmptySynchronizeIsCheap) {
  sim::Scheduler sched;
  Runtime rt(sched, small_config());
  Stream stream(rt);
  auto t = stream.synchronize();
  sched.run();
  const SyncReport report = t.result();
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.ops.empty());
  EXPECT_EQ(sched.now(), 0);
}

TEST(Runtime, NotifyAndWaitFlagSynchronize) {
  sim::Scheduler sched;
  Runtime rt(sched, small_config());
  auto flag = rt.alloc_host(1, 64).value();

  bool producer_done = false;
  sim::spawn([](Runtime& r, Buffer f, bool& done) -> sim::Task<> {
    co_await sim::Delay(r.scheduler(), us(5));
    co_await r.notify(0, f, 0, 0xCAFE);
    done = true;
  }(rt, flag, producer_done));

  auto consumer = rt.wait_flag(flag, 0, 0xCAFE);
  sched.run();
  EXPECT_TRUE(producer_done);
  EXPECT_TRUE(consumer.done());
  EXPECT_GE(sched.now(), us(5));
}

TEST(Runtime, WaitFlagGeWakesOnMonotonicCounters) {
  sim::Scheduler sched;
  Runtime rt(sched, small_config());
  auto flag = rt.alloc_host(1, 64).value();

  // Producer bumps the counter 1, 2, 3 at 5us intervals; a waiter for >= 2
  // wakes on the second bump even though it never sees the value 2 alone.
  sim::spawn([](Runtime& r, Buffer f) -> sim::Task<> {
    for (std::uint32_t v = 1; v <= 3; ++v) {
      co_await sim::Delay(r.scheduler(), us(5));
      co_await r.notify(0, f, 0, v);
    }
  }(rt, flag));

  auto waiter = rt.wait_flag_ge(flag, 0, 2);
  sched.run();
  ASSERT_TRUE(waiter.done());
  EXPECT_TRUE(waiter.result().is_ok());
  EXPECT_GE(sched.now(), us(10));

  // A waiter arriving after the counter already passed returns at once.
  const TimePs before = sched.now();
  auto late = rt.wait_flag_ge(flag, 0, 1);
  sched.run();
  EXPECT_TRUE(late.result().is_ok());
  EXPECT_EQ(sched.now(), before);
}

TEST(Runtime, WaitFlagGeTimesOutInsteadOfHanging) {
  sim::Scheduler sched;
  Runtime rt(sched, small_config());
  auto flag = rt.alloc_host(0, 64).value();

  auto waiter = rt.wait_flag_ge(flag, 0, 1, /*timeout_ps=*/us(50));
  sched.run();  // nobody ever signals: the run must go dry, not hang
  ASSERT_TRUE(waiter.done());
  EXPECT_EQ(waiter.result().code(), ErrorCode::kTimedOut);
  EXPECT_GE(sched.now(), us(50));
}

TEST(Runtime, MemcpyPioForcesPioAboveTheDmaThreshold) {
  sim::Scheduler sched;
  Runtime rt(sched, small_config());
  auto src = rt.alloc_host(0, 8192).value();
  auto dst = rt.alloc_host(1, 8192).value();
  auto data = pattern(4096, 33);
  rt.write(src, 0, data);

  // 4 KB would ride DMA under memcpy_peer's policy; memcpy_pio must move
  // it entirely with CPU stores — no chain completes.
  const std::uint64_t pio0 = rt.api_metrics().pio_ops;
  std::uint64_t chains0 = 0;
  for (int ch = 0; ch < calib::kDmaChannels; ++ch) {
    chains0 += rt.cluster().chip(0).dmac(ch).chains_completed();
  }
  auto t = rt.memcpy_pio(dst, 0, src, 0, 4096);
  sched.run();
  ASSERT_TRUE(t.result().is_ok()) << t.result().to_string();
  EXPECT_EQ(rt.api_metrics().pio_ops, pio0 + 1);
  std::uint64_t chains1 = 0;
  for (int ch = 0; ch < calib::kDmaChannels; ++ch) {
    chains1 += rt.cluster().chip(0).dmac(ch).chains_completed();
  }
  EXPECT_EQ(chains1, chains0);

  std::vector<std::byte> out(4096);
  rt.read(dst, 0, out);
  EXPECT_EQ(out, data);
}

TEST(Runtime, MemcpyPioRejectsGpuSources) {
  sim::Scheduler sched;
  Runtime rt(sched, small_config());
  auto src = rt.alloc_gpu(0, 0, 4096).value();
  auto dst = rt.alloc_host(1, 4096).value();
  auto t = rt.memcpy_pio(dst, 0, src, 0, 1024);  // CPU can't source BAR1
  sched.run();
  EXPECT_EQ(t.result().code(), ErrorCode::kInvalidArgument);
}

TEST(Runtime, MemcpyPeerReliableReportsZeroRetriesOnAHealthyFabric) {
  sim::Scheduler sched;
  Runtime rt(sched, small_config());
  auto src = rt.alloc_host(0, 32 << 10).value();
  auto dst = rt.alloc_host(1, 32 << 10).value();
  auto data = pattern(16 << 10, 44);
  rt.write(src, 0, data);

  std::uint32_t retries = 99;
  auto t = rt.memcpy_peer_reliable(
      dst, 0, src, 0, 16 << 10,
      SyncOptions{.deadline_ps = us(500), .max_attempts = 3}, &retries);
  sched.run();
  ASSERT_TRUE(t.result().is_ok()) << t.result().to_string();
  EXPECT_EQ(retries, 0u);
  std::vector<std::byte> out(16 << 10);
  rt.read(dst, 0, out);
  EXPECT_EQ(out, data);
}

TEST(Runtime, MemcpyPeerReliableRetriesAcrossACutCable) {
  sim::Scheduler sched;
  TcaConfig config = small_config(4);
  config.fault_plan.cut(0, us(5));  // dies with the first attempt in flight
  Runtime rt(sched, config);
  auto src = rt.alloc_host(0, 256 << 10).value();
  auto dst = rt.alloc_host(1, 256 << 10).value();
  auto data = pattern(256 << 10, 45);
  rt.write(src, 0, data);

  std::uint32_t retries = 0;
  auto t = rt.memcpy_peer_reliable(
      dst, 0, src, 0, 256 << 10,
      SyncOptions{.deadline_ps = us(150), .max_attempts = 3}, &retries);
  sched.run();
  ASSERT_TRUE(t.result().is_ok()) << t.result().to_string();
  EXPECT_GE(retries, 1u);
  EXPECT_GE(rt.cluster().failovers(), 1u);
  std::vector<std::byte> out(256 << 10);
  rt.read(dst, 0, out);
  EXPECT_EQ(out, data);  // delivered the long way around
}

TEST(Runtime, PioLatencyBeatsDmaForTinyMessages) {
  sim::Scheduler sched;
  Runtime rt(sched, small_config());
  auto src = rt.alloc_host(0, 4096).value();
  auto dst = rt.alloc_host(1, 4096).value();
  auto data = pattern(64, 9);
  rt.write(src, 0, data);

  const TimePs t0 = sched.now();
  auto pio = rt.memcpy_peer(dst, 0, src, 0, 64);
  sched.run();
  const TimePs pio_time = sched.now() - t0;

  const TimePs t1 = sched.now();
  auto dma = rt.memcpy_peer(dst, 1024, src, 0, 1024);  // forced DMA
  sched.run();
  const TimePs dma_time = sched.now() - t1;

  EXPECT_LT(pio_time, us(1));
  EXPECT_GT(dma_time, us(3));  // descriptor fetch + interrupt dominate
}

TEST(RuntimeCreate, AcceptsValidConfig) {
  sim::Scheduler sched;
  auto rt = Runtime::create(sched, small_config());
  ASSERT_TRUE(rt.is_ok()) << rt.status().to_string();
  EXPECT_EQ(rt.value().node_count(), 2u);
  // The moved-into Runtime must be fully usable.
  auto buf = rt.value().alloc_host(0, 4096);
  EXPECT_TRUE(buf.is_ok());
}

TEST(RuntimeCreate, RejectsBadNodeCounts) {
  sim::Scheduler sched;
  // ring(0) is the empty "unspecified" sentinel: the config defers to the
  // (deprecated) legacy fields, whose default is a valid 2-node ring.
  EXPECT_TRUE(Runtime::create(sched, small_config(0)).is_ok());
  EXPECT_FALSE(Runtime::create(sched, small_config(1)).is_ok());
  EXPECT_FALSE(Runtime::create(sched, small_config(3)).is_ok());   // not 2^k
  EXPECT_FALSE(Runtime::create(sched, small_config(32)).is_ok());  // > 16
  EXPECT_EQ(Runtime::create(sched, small_config(3)).status().code(),
            ErrorCode::kInvalidArgument);
}

TEST(RuntimeCreate, RejectsDualRingBelowFourNodes) {
  sim::Scheduler sched;
  TcaConfig cfg;
  cfg.spec = fabric::TopologySpec::dual_ring(2);
  EXPECT_FALSE(Runtime::create(sched, cfg).is_ok());
  cfg.spec = fabric::TopologySpec::dual_ring(4);
  EXPECT_TRUE(Runtime::create(sched, cfg).is_ok());
}

// Deliberate legacy-surface coverage: the deprecated node_count/topology
// fields must keep working for one release (an empty `spec` defers to
// them), so this test pins the compatibility path until they are removed.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(RuntimeCreate, DeprecatedEnumFieldsStillResolve) {
  sim::Scheduler sched;
  TcaConfig cfg = small_config();
  cfg.spec = {};  // empty spec: legacy fields decide
  cfg.node_count = 4;
  cfg.topology = fabric::Topology::kDualRing;
  EXPECT_EQ(Runtime::resolved_topology(cfg),
            fabric::TopologySpec::dual_ring(4));
  EXPECT_TRUE(Runtime::create(sched, cfg).is_ok());
  cfg.node_count = 3;  // legacy path feeds the same per-topology validation
  EXPECT_FALSE(Runtime::create(sched, cfg).is_ok());
}
#pragma GCC diagnostic pop

TEST(RuntimeCreate, RejectsBadBackingStores) {
  sim::Scheduler sched;
  TcaConfig cfg = small_config();
  cfg.node_config.gpu_count = 0;
  EXPECT_FALSE(Runtime::create(sched, cfg).is_ok());
  cfg = small_config();
  cfg.node_config.gpu_count = 5;
  EXPECT_FALSE(Runtime::create(sched, cfg).is_ok());
  cfg = small_config();
  cfg.node_config.host_backing_bytes = 1 << 20;  // descriptor table won't fit
  EXPECT_FALSE(Runtime::create(sched, cfg).is_ok());
  cfg = small_config();
  cfg.node_config.gpu_backing_bytes = 0;
  EXPECT_FALSE(Runtime::create(sched, cfg).is_ok());
}

TEST(Buffer, GpuIndexIsEmptyForHostBuffers) {
  sim::Scheduler sched;
  Runtime rt(sched, small_config());
  auto host = rt.alloc_host(0, 4096).value();
  EXPECT_FALSE(host.gpu_index().has_value());
  auto g0 = rt.alloc_gpu(0, 0, 4096).value();
  auto g1 = rt.alloc_gpu(0, 1, 4096).value();
  ASSERT_TRUE(g0.gpu_index().has_value());
  EXPECT_EQ(*g0.gpu_index(), 0);
  ASSERT_TRUE(g1.gpu_index().has_value());
  EXPECT_EQ(*g1.gpu_index(), 1);
}

TEST(Stream, BlockStrideEnqueuesOnePerBlock) {
  sim::Scheduler sched;
  Runtime rt(sched, small_config());
  auto src = rt.alloc_host(0, 64 << 10).value();
  auto dst = rt.alloc_host(1, 64 << 10).value();

  // Gather: 4 blocks of 2 KiB strided by 8 KiB at the source, packed
  // contiguously (stride == block size) at the destination.
  std::vector<std::vector<std::byte>> blobs;
  for (std::uint32_t i = 0; i < 4; ++i) {
    blobs.push_back(pattern(2048, static_cast<std::uint8_t>(70 + i)));
    rt.write(src, i * 8192, blobs.back());
  }
  Stream stream(rt);
  ASSERT_TRUE(stream
                  .enqueue_block_stride(dst, 0, 2048, src, 0, 8192,
                                        /*block_bytes=*/2048, /*count=*/4)
                  .is_ok());
  EXPECT_EQ(stream.pending(), 4u);
  auto t = stream.synchronize();
  sched.run();
  const SyncReport report = t.result();
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report.ops.size(), 4u);
  for (const auto& op : report.ops) EXPECT_TRUE(op.status.is_ok());

  for (std::uint32_t i = 0; i < 4; ++i) {
    std::vector<std::byte> out(2048);
    rt.read(dst, i * 2048, out);
    EXPECT_EQ(out, blobs[i]) << i;
  }
}

TEST(Stream, BlockStrideValidatesExtents) {
  sim::Scheduler sched;
  Runtime rt(sched, small_config());
  auto src = rt.alloc_host(0, 16 << 10).value();
  auto dst = rt.alloc_host(1, 16 << 10).value();
  Stream stream(rt);
  // Last source block would end at 3*8192 + 2048 > 16 KiB.
  EXPECT_FALSE(
      stream.enqueue_block_stride(dst, 0, 2048, src, 0, 8192, 2048, 4)
          .is_ok());
  EXPECT_EQ(stream.pending(), 0u);
  // Zero-count / zero-size are accepted no-ops.
  EXPECT_TRUE(
      stream.enqueue_block_stride(dst, 0, 2048, src, 0, 8192, 2048, 0)
          .is_ok());
  EXPECT_TRUE(
      stream.enqueue_block_stride(dst, 0, 2048, src, 0, 8192, 0, 4).is_ok());
  EXPECT_EQ(stream.pending(), 0u);
}

TEST(Stream, SyncReportCarriesPerOpStatuses) {
  sim::Scheduler sched;
  Runtime rt(sched, small_config());
  auto a = rt.alloc_host(0, 32 << 10).value();
  auto b = rt.alloc_host(1, 32 << 10).value();
  rt.write(a, 0, pattern(4096, 80));
  rt.write(b, 0, pattern(4096, 81));

  Stream stream(rt);
  ASSERT_TRUE(stream.enqueue_copy(b, 8192, a, 0, 4096).is_ok());
  ASSERT_TRUE(stream.enqueue_copy(a, 8192, b, 0, 4096).is_ok());
  ASSERT_TRUE(stream.enqueue_copy(b, 16 << 10, a, 0, 2048).is_ok());
  auto t = stream.synchronize();
  sched.run();
  const SyncReport report = t.result();
  EXPECT_TRUE(report.ok());
  ASSERT_EQ(report.ops.size(), 3u);
  // Per-op entries come back in enqueue order regardless of node grouping.
  for (std::size_t i = 0; i < report.ops.size(); ++i) {
    EXPECT_EQ(report.ops[i].index, i);
    EXPECT_TRUE(report.ops[i].status.is_ok()) << i;
  }
}

TEST(Runtime, ApiMetricsCountOpsAndPolicy) {
  sim::Scheduler sched;
  Runtime rt(sched, small_config());
  auto src = rt.alloc_host(0, 16 << 10).value();
  auto dst = rt.alloc_host(1, 16 << 10).value();
  rt.write(src, 0, pattern(4096, 90));

  auto small = rt.memcpy_peer(dst, 0, src, 0, 64);  // PIO path
  sched.run();
  auto big = rt.memcpy_peer(dst, 4096, src, 0, 4096);  // DMA path
  sched.run();
  ASSERT_TRUE(small.result().is_ok());
  ASSERT_TRUE(big.result().is_ok());

  const ApiMetrics& m = rt.api_metrics();
  EXPECT_EQ(m.memcpy_ops, 2u);
  EXPECT_EQ(m.memcpy_bytes, 64u + 4096u);
  EXPECT_EQ(m.pio_ops, 1u);
  EXPECT_EQ(m.dma_ops, 1u);

  obs::MetricRegistry reg;
  rt.export_metrics(reg);
  EXPECT_EQ(reg.counter_value("api.memcpy.ops"), 2u);
  EXPECT_EQ(reg.counter_value("api.memcpy.pio_ops"), 1u);
  EXPECT_EQ(reg.counter_value("api.memcpy.dma_ops"), 1u);
  // The fabric roll-up rides along in the same registry.
  EXPECT_TRUE(reg.has_counter("fabric.payload_bytes"));
}

}  // namespace
}  // namespace tca::api
