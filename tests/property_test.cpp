// Property-based tests (parameterized sweeps over seeds/sizes).
//
// Each suite checks an invariant against a reference model under randomized
// inputs: DMA chains vs a memcpy reference, routing delivery across ring
// sizes, link FIFO/content preservation, layout round-trips, RangeMap vs
// brute force, scheduler ordering, and MPI traffic integrity.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/rng.h"
#include "fabric/sub_cluster.h"
#include "memory/range_map.h"
#include "pcie/link.h"
#include "sim/scheduler.h"

namespace tca {
namespace {

using fabric::SubCluster;
using fabric::SubClusterConfig;
using peach2::DmaDescriptor;
using peach2::DmaDirection;

// --- Random DMA chains vs reference model -----------------------------------

class RandomDmaChains : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomDmaChains, MatchesMemcpyReference) {
  Rng rng(GetParam());
  sim::Scheduler sched;
  SubCluster tca(sched, SubClusterConfig{
                            .spec = fabric::TopologySpec::ring(2),
                            .node_config = {.gpu_count = 2,
                                            .host_backing_bytes = 8 << 20,
                                            .gpu_backing_bytes = 4 << 20}});
  driver::Peach2Driver& drv = tca.driver(0);

  // Stage random contents everywhere a descriptor may read from, and pin
  // GPU windows on both nodes.
  std::vector<std::byte> ram_img(tca.chip(0).internal_ram().size());
  rng.fill(ram_img);
  tca.chip(0).internal_ram().write(0, ram_img);

  constexpr std::uint64_t kRegion = 1 << 20;
  std::vector<std::byte> host0(kRegion), gpu0(kRegion);
  rng.fill(host0);
  rng.fill(gpu0);
  tca.node(0).host_dram().write(0, host0);
  for (std::uint32_t n = 0; n < 2; ++n) {
    for (int g = 0; g < 2; ++g) {
      auto& gpu = tca.node(n).gpu(g);
      auto ptr = gpu.mem_alloc(kRegion);
      ASSERT_TRUE(ptr.is_ok());
      ASSERT_TRUE(tca.driver(n).p2p().pin(g, ptr.value(), kRegion).is_ok());
    }
  }
  tca.node(0).gpu(0).poke(0, gpu0);

  // Expected images for every destination region.
  std::vector<std::byte> exp_ram = ram_img;
  std::map<std::pair<int, int>, std::vector<std::byte>> exp;  // {node,tgt}
  exp[{0, 0}] = gpu0;                                // node0 gpu0
  exp[{0, 1}] = std::vector<std::byte>(kRegion);     // node0 gpu1 (zero)
  exp[{0, 2}] = host0;                               // node0 host
  exp[{1, 0}] = std::vector<std::byte>(kRegion);
  exp[{1, 1}] = std::vector<std::byte>(kRegion);
  exp[{1, 2}] = std::vector<std::byte>(kRegion);

  // Build a random chain with disjoint slices (cursor per region).
  std::uint64_t ram_src_cursor = 0;                  // write sources
  std::uint64_t ram_dst_cursor = ram_img.size() / 2; // read destinations
  std::map<std::pair<int, int>, std::uint64_t> dst_cursor;  // per dst region
  std::uint64_t src_cursor = 0;  // shared cursor for host/gpu read sources

  std::vector<DmaDescriptor> chain;
  const std::uint32_t count = 1 + static_cast<std::uint32_t>(
      rng.next_below(16));
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto len =
        static_cast<std::uint32_t>(1 + rng.next_below(6000));
    const auto dir = static_cast<DmaDirection>(rng.next_below(3));
    DmaDescriptor d{.length = len, .direction = dir};

    auto pick_dst = [&](bool allow_remote) {
      const int node =
          allow_remote ? static_cast<int>(rng.next_below(2)) : 0;
      const int tgt = static_cast<int>(rng.next_below(3));  // gpu0/gpu1/host
      auto& cur = dst_cursor[{node, tgt}];
      // Destinations live in the upper half of each region so they can
      // never collide with (still-unread) source slices in the lower half.
      if (cur == 0) cur = kRegion / 2;
      const std::uint64_t off = cur;
      cur += len + 64;
      const auto target = tgt == 2 ? peach2::TcaTarget::kHost
                          : tgt == 0 ? peach2::TcaTarget::kGpu0
                                     : peach2::TcaTarget::kGpu1;
      return std::tuple(node, tgt, off,
                        tca.layout().encode(static_cast<std::uint32_t>(node),
                                            target, off));
    };
    auto pick_src = [&] {
      // Local host or local gpu0 (both staged with known contents); source
      // slices stay in the lower half of the region (see pick_dst).
      const bool host = rng.next_below(2) == 0;
      const std::uint64_t off = src_cursor;
      src_cursor += len + 64;
      EXPECT_LT(off + len, kRegion / 2);
      return std::tuple(
          host, off,
          tca.layout().encode(0,
                              host ? peach2::TcaTarget::kHost
                                   : peach2::TcaTarget::kGpu0,
                              off));
    };

    switch (dir) {
      case DmaDirection::kWrite: {
        const std::uint64_t src_off = ram_src_cursor;
        ram_src_cursor += len + 64;
        ASSERT_LT(src_off + len, ram_img.size() / 2);
        d.src = drv.internal_global(src_off);
        auto [node, tgt, off, addr] = pick_dst(true);
        ASSERT_LT(off + len, kRegion);
        d.dst = addr;
        std::copy_n(ram_img.begin() + static_cast<std::ptrdiff_t>(src_off),
                    len,
                    exp[{node, tgt}].begin() +
                        static_cast<std::ptrdiff_t>(off));
        break;
      }
      case DmaDirection::kRead: {
        auto [from_host, soff, saddr] = pick_src();
        ASSERT_LT(soff + len, kRegion);
        d.src = saddr;
        const std::uint64_t doff = ram_dst_cursor;
        ram_dst_cursor += len + 64;
        ASSERT_LT(doff + len, exp_ram.size());
        d.dst = drv.internal_global(doff);
        const auto& src_img = from_host ? host0 : gpu0;
        std::copy_n(src_img.begin() + static_cast<std::ptrdiff_t>(soff),
                    len,
                    exp_ram.begin() + static_cast<std::ptrdiff_t>(doff));
        break;
      }
      case DmaDirection::kPipelined: {
        auto [from_host, soff, saddr] = pick_src();
        ASSERT_LT(soff + len, kRegion);
        d.src = saddr;
        auto [node, tgt, off, addr] = pick_dst(true);
        ASSERT_LT(off + len, kRegion);
        d.dst = addr;
        const auto& src_img = from_host ? host0 : gpu0;
        std::copy_n(src_img.begin() + static_cast<std::ptrdiff_t>(soff),
                    len,
                    exp[{node, tgt}].begin() +
                        static_cast<std::ptrdiff_t>(off));
        break;
      }
    }
    chain.push_back(d);
  }

  auto t = drv.run_chain(std::move(chain));
  sched.run();
  ASSERT_TRUE(t.done());
  ASSERT_EQ(tca.chip(0).dmac().errors(), 0u);

  // Compare every region against the reference.
  std::vector<std::byte> got(kRegion);
  for (const auto& [key, image] : exp) {
    const auto [node, tgt] = key;
    auto& n = tca.node(static_cast<std::uint32_t>(node));
    if (tgt == 2) {
      n.host_dram().read(0, got);
    } else {
      n.gpu(tgt).peek(0, got);
    }
    EXPECT_EQ(got, image) << "region node" << node << " tgt" << tgt;
  }
  std::vector<std::byte> got_ram(exp_ram.size());
  tca.chip(0).internal_ram().read(0, got_ram);
  EXPECT_EQ(got_ram, exp_ram);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDmaChains,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

// --- Concurrent multi-channel chains vs reference ------------------------------

class ConcurrentChannels : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConcurrentChannels, DisjointRandomChainsAllLandCorrectly) {
  Rng rng(GetParam() * 7919);
  sim::Scheduler sched;
  SubCluster tca(sched, SubClusterConfig{
                            .spec = fabric::TopologySpec::ring(2),
                            .node_config = {.gpu_count = 2,
                                            .host_backing_bytes = 16 << 20,
                                            .gpu_backing_bytes = 4 << 20}});
  driver::Peach2Driver& drv = tca.driver(0);

  std::vector<std::byte> ram_img(tca.chip(0).internal_ram().size());
  rng.fill(ram_img);
  tca.chip(0).internal_ram().write(0, ram_img);

  // Each channel owns a disjoint 256 KiB window of the remote host region.
  constexpr std::uint64_t kWindow = 256 << 10;
  std::vector<std::byte> expected(calib::kDmaChannels * kWindow,
                                  std::byte{0});
  std::vector<sim::Task<TimePs>> tasks;
  for (int ch = 0; ch < calib::kDmaChannels; ++ch) {
    std::vector<peach2::DmaDescriptor> chain;
    std::uint64_t cursor = 0;
    const std::uint32_t count = 1 + static_cast<std::uint32_t>(
        rng.next_below(12));
    for (std::uint32_t i = 0; i < count; ++i) {
      const auto len =
          static_cast<std::uint32_t>(1 + rng.next_below(9000));
      if (cursor + len > kWindow) break;
      const std::uint64_t src_off =
          static_cast<std::uint64_t>(ch) * kWindow + cursor;
      const std::uint64_t dst_abs =
          static_cast<std::uint64_t>(ch) * kWindow + cursor;
      chain.push_back({.src = drv.internal_global(src_off),
                       .dst = tca.global_host(1, dst_abs),
                       .length = len,
                       .direction = peach2::DmaDirection::kWrite});
      std::copy_n(ram_img.begin() + static_cast<std::ptrdiff_t>(src_off),
                  len,
                  expected.begin() + static_cast<std::ptrdiff_t>(dst_abs));
      cursor += len + 64;
    }
    if (chain.empty()) continue;
    tasks.push_back(drv.run_chain(std::move(chain), ch));
  }
  sched.run();
  for (auto& t : tasks) ASSERT_TRUE(t.done());

  std::vector<std::byte> got(expected.size());
  tca.node(1).cpu().read_host(0, got);
  EXPECT_EQ(got, expected);
  for (int ch = 0; ch < calib::kDmaChannels; ++ch) {
    EXPECT_EQ(tca.chip(0).dmac(ch).errors(), 0u) << "channel " << ch;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConcurrentChannels,
                         ::testing::Values(101, 202, 303, 404, 505));

// --- Ring delivery across sizes ----------------------------------------------

class RingDelivery : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RingDelivery, AllToAllPioStoresArrive) {
  const std::uint32_t n = GetParam();
  sim::Scheduler sched;
  SubCluster tca(sched, SubClusterConfig{
                            .spec = fabric::TopologySpec::ring(n),
                            .node_config = {.gpu_count = 0,
                                            .host_backing_bytes = 4 << 20,
                                            .gpu_backing_bytes = 1 << 20}});
  // Every node stores a unique word into every other node.
  for (std::uint32_t from = 0; from < n; ++from) {
    for (std::uint32_t to = 0; to < n; ++to) {
      if (from == to) continue;
      const std::uint32_t value = 0xA000'0000u | (from << 8) | to;
      auto t = tca.driver(from).pio_store_u32(
          tca.global_host(to, 0x1000 + from * 8), value);
      (void)t;
      sched.run();
    }
  }
  for (std::uint32_t from = 0; from < n; ++from) {
    for (std::uint32_t to = 0; to < n; ++to) {
      if (from == to) continue;
      std::uint32_t got = 0;
      tca.node(to).cpu().read_host(0x1000 + from * 8,
                                   std::as_writable_bytes(
                                       std::span(&got, 1)));
      EXPECT_EQ(got, 0xA000'0000u | (from << 8) | to)
          << from << " -> " << to;
    }
  }
  // Nothing was dropped anywhere.
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(tca.chip(i).dropped_tlps(), 0u) << "chip " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(RingSizes, RingDelivery,
                         ::testing::Values(2, 4, 8, 16));

class DualRingDelivery : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DualRingDelivery, AllToAllAcrossRings) {
  const std::uint32_t n = GetParam();
  sim::Scheduler sched;
  SubCluster tca(sched, SubClusterConfig{
                            .spec = fabric::TopologySpec::dual_ring(n),
                            .node_config = {.gpu_count = 0,
                                            .host_backing_bytes = 4 << 20,
                                            .gpu_backing_bytes = 1 << 20}});
  for (std::uint32_t from = 0; from < n; ++from) {
    for (std::uint32_t to = 0; to < n; ++to) {
      if (from == to) continue;
      auto t = tca.driver(from).pio_store_u32(
          tca.global_host(to, 0x2000 + from * 8), from * 100 + to);
      (void)t;
      sched.run();
    }
  }
  for (std::uint32_t from = 0; from < n; ++from) {
    for (std::uint32_t to = 0; to < n; ++to) {
      if (from == to) continue;
      std::uint32_t got = ~0u;
      tca.node(to).cpu().read_host(0x2000 + from * 8,
                                   std::as_writable_bytes(
                                       std::span(&got, 1)));
      EXPECT_EQ(got, from * 100 + to) << from << " -> " << to;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(DualRingSizes, DualRingDelivery,
                         ::testing::Values(4, 8, 16));

// --- Link order/content preservation ------------------------------------------

class LinkFifo : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LinkFifo, RandomBurstArrivesInOrderIntact) {
  Rng rng(GetParam());
  sim::Scheduler sched;
  pcie::PcieLink link(sched, {.gen = 2, .lanes = 8, .rx_buffer_bytes = 2048});

  struct Sink : pcie::TlpSink {
    void on_tlp(pcie::Tlp tlp, pcie::LinkPort& port) override {
      port.release_rx(tlp.wire_bytes());
      received.push_back(std::move(tlp));
    }
    std::vector<pcie::Tlp> received;
  } sink;
  link.end_b().set_sink(&sink);

  std::vector<pcie::Tlp> sent;
  const std::size_t count = 20 + rng.next_below(60);
  for (std::size_t i = 0; i < count; ++i) {
    std::vector<std::byte> payload(1 + rng.next_below(256));
    rng.fill(payload);
    sent.push_back(pcie::Tlp::mem_write(i * 0x1000, payload));
  }
  std::size_t next = 0;
  std::function<void()> pump = [&] {
    while (next < sent.size() && link.end_a().can_send(sent[next])) {
      pcie::Tlp copy = sent[next];
      link.end_a().send(std::move(copy));
      ++next;
    }
  };
  link.end_a().set_tx_ready(pump);
  pump();
  sched.run();

  ASSERT_EQ(sink.received.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(sink.received[i].address, sent[i].address) << i;
    EXPECT_EQ(sink.received[i].payload, sent[i].payload) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinkFifo, ::testing::Values(7, 77, 777));

// --- TcaLayout round trip -------------------------------------------------------

class LayoutRoundTrip : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(LayoutRoundTrip, RandomEncodeDecode) {
  const std::uint32_t nodes = GetParam();
  auto layout = peach2::TcaLayout::create(calib::kTcaWindowBase,
                                          calib::kTcaWindowBytes, nodes)
                    .value();
  Rng rng(nodes * 1000 + 7);
  for (int i = 0; i < 2000; ++i) {
    const auto node = static_cast<std::uint32_t>(rng.next_below(nodes));
    const auto target = static_cast<peach2::TcaTarget>(rng.next_below(4));
    const std::uint64_t offset = rng.next_below(layout.block_size());
    const std::uint64_t addr = layout.encode(node, target, offset);
    auto loc = layout.decode(addr);
    ASSERT_TRUE(loc.has_value());
    EXPECT_EQ(loc->node, node);
    EXPECT_EQ(loc->target, target);
    EXPECT_EQ(loc->offset, offset);
  }
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, LayoutRoundTrip,
                         ::testing::Values(1, 2, 4, 8, 16));

// --- RangeMap vs brute force ----------------------------------------------------

TEST(RangeMapProperty, MatchesBruteForceReference) {
  Rng rng(424242);
  mem::RangeMap<int> map;
  std::vector<std::tuple<std::uint64_t, std::uint64_t, int>> reference;

  for (int step = 0; step < 500; ++step) {
    const std::uint64_t base = rng.next_below(1 << 16);
    const std::uint64_t size = 1 + rng.next_below(1 << 10);
    const bool ref_overlaps = std::any_of(
        reference.begin(), reference.end(), [&](const auto& r) {
          const auto [b, s, v] = r;
          return base < b + s && b < base + size;
        });
    const bool added = map.add(base, size, step).is_ok();
    EXPECT_EQ(added, !ref_overlaps) << "step " << step;
    if (added) reference.emplace_back(base, size, step);

    // Random lookups.
    for (int q = 0; q < 5; ++q) {
      const std::uint64_t addr = rng.next_below(1 << 17);
      const auto* found = map.find(addr);
      const auto it = std::find_if(
          reference.begin(), reference.end(), [&](const auto& r) {
            const auto [b, s, v] = r;
            return addr >= b && addr < b + s;
          });
      if (it == reference.end()) {
        EXPECT_EQ(found, nullptr);
      } else {
        ASSERT_NE(found, nullptr);
        EXPECT_EQ(found->value, std::get<2>(*it));
      }
    }
  }
}

// --- Scheduler ordering -----------------------------------------------------------

class SchedulerOrdering : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerOrdering, RandomEventsFireSorted) {
  Rng rng(GetParam());
  sim::Scheduler sched;
  std::vector<TimePs> fired;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    const TimePs t = static_cast<TimePs>(rng.next_below(1'000'000));
    sched.schedule_at(t, [&fired, &sched] { fired.push_back(sched.now()); });
  }
  sched.run();
  ASSERT_EQ(fired.size(), static_cast<std::size_t>(n));
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerOrdering,
                         ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace tca
